// Command apicount regenerates the paper's Table 2: per programming model,
// the lines of code implementing it on top of HAMSTER, the number of
// exported API calls, and the lines-per-call ratio. See internal/apicount
// for the counting methodology.
//
// Usage:
//
//	apicount [-dir models]
package main

import (
	"flag"
	"fmt"
	"os"

	"hamster/internal/apicount"
)

func main() {
	dir := flag.String("dir", "models", "directory containing the model packages")
	flag.Parse()

	rows, err := apicount.CountModels(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("Table 2: Implementation Complexity of Programming Models Using HAMSTER")
	fmt.Println()
	fmt.Print(apicount.Render(rows))
}
