// Command hamsterbench regenerates the paper's evaluation (§5): Table 1,
// Table 2, Figures 2–4, and the design-choice ablations, printing
// paper-style text renderings.
//
// Usage:
//
//	hamsterbench [-size small|default|paper] [-models DIR]
//	             [-table1] [-table2] [-fig2] [-fig3] [-fig4] [-ablations]
//	hamsterbench -json FILE [-faults PROFILE] [-faultseed SEED] [-parallel N]
//	hamsterbench -json FILE -checkpoint N [-incremental] [-parallel N]
//	hamsterbench -json FILE -aggregate [-prefetch] [-parallel N]
//	hamsterbench -json FILE -walltime [-parallel N]
//	hamsterbench -json FILE -walltime -pnodes
//	hamsterbench -json FILE -engines [-parallel N]
//	hamsterbench -json FILE -scaling [-parallel N]
//	hamsterbench -json FILE -serve [-parallel N]
//
// With no selection flags, everything runs. -json instead runs the kernel
// wall-clock benchmark (simulator throughput on the software DSM) and
// writes per-kernel wall-clock plus virtual-time measurements to FILE
// ("-" for stdout). -faults reruns that benchmark under a seeded fault
// campaign (see internal/simnet), adding retransmission counts per kernel;
// without it the measurement is unperturbed and bit-reproducible. The
// emitted JSON is self-describing: the envelope names the active fault
// profile, its seed, and the checkpoint and aggregation configurations
// (all zero/empty for the plain benchmark).
//
// -checkpoint N switches -json to the checkpoint-overhead benchmark
// (BENCH_3.json): each kernel's virtual time with checkpointing off next
// to the same run capturing a coordinated snapshot every N barriers, at 2
// and 4 nodes, with capture counts and snapshot bytes.
//
// -aggregate (and -prefetch) switch -json to the protocol-aggregation
// benchmark (BENCH_4.json): each kernel's virtual time and protocol
// message count with aggregation off next to the same run with batched
// diff flush + write-notice piggybacking (-aggregate) and adaptive
// sequential prefetch (-prefetch) on, at 2 and 4 nodes.
//
// -walltime switches -json to the wall-time suite (BENCH_5.json): the
// kernel wall-clock set and the aggregation matrix run once sequentially
// and once cell-parallel, recording both suite totals plus allocs/op and
// B/op on the pooled hot paths (page fetch, message send, diff flush).
//
// -walltime -pnodes switches to the parallel-node suite (BENCH_9.json):
// each cell — the 64- and 256-node scope-engine scaling shapes plus a
// user-messaging neighbor exchange — runs once under the free-running
// reference scheduler and once under the conservative lookahead gate
// (hamsterrun -pnodes), recording both walls and verifying the gate
// reproduced the reference's modeled results.
//
// -cpuprofile FILE collects a CPU profile for the whole invocation;
// -memprofile FILE writes a heap snapshot at clean exit. Inspect either
// with "go tool pprof FILE" (see DESIGN.md §5i for the workflow).
//
// -engines switches -json to the consistency-engine suite (BENCH_6.json):
// every selectable engine (scope, eager-rc, ivy) runs the identical
// kernel set at 2 and 4 nodes, recording virtual time, protocol
// messages, page faults, invalidations, and ownership migrations per
// cell; checksums must agree across engines for the same cell.
//
// -scaling switches -json to the scaling campaign (BENCH_7.json):
// strong- and weak-scaling kernel cells for the scope and ivy engines on
// the flat, rack, and fattree topology presets at 8, 16, 64, and 256
// nodes. Above 8 nodes the software DSM switches to hierarchical
// synchronization (tree barriers, distributed lock queues), so the
// campaign exercises both regimes; the rendering calls out the cluster
// size where IVY's migrating ownership overtakes home-based ScC.
//
// -serve switches -json to the serve campaign (BENCH_8.json): the
// server-shaped workloads of internal/serve — sharded KV store, event
// pipeline, sync/replication log — under the deterministic open-loop
// load generator, across substrates, consistency engines, cluster
// sizes, and Zipf skews. One headline cell multiplexes a two-million
// client-session population; one cell crashes a node mid-traffic on a
// 5%-drop wire and recovers it through the cluster orchestrator. Serve
// rows carry no wall or virtual readings, so the JSON is byte-identical
// at any -parallel setting.
//
// -parallel N runs independent benchmark cells on up to N goroutines
// (0 = GOMAXPROCS, 1 = sequential). Each cell owns a private simulated
// cluster, so modeled results — virtual times, checksums, message and
// retransmission counts — are identical at any parallelism and results
// are always emitted in canonical (sequential) order; only wall-clock
// readings vary with co-scheduling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hamster/internal/apicount"
	"hamster/internal/bench"
	"hamster/internal/prof"
	"hamster/internal/simnet"
)

func main() {
	size := flag.String("size", "default", "workload sizes: small, default, or paper")
	modelsDir := flag.String("models", "models", "path to the programming-model packages (Table 2)")
	t1 := flag.Bool("table1", false, "print Table 1 (benchmarks and working sets)")
	t2 := flag.Bool("table2", false, "print Table 2 (implementation complexity)")
	f2 := flag.Bool("fig2", false, "run Figure 2 (HAMSTER overhead vs native JiaJia)")
	f3 := flag.Bool("fig3", false, "run Figure 3 (hybrid vs software DSM)")
	f4 := flag.Bool("fig4", false, "run Figure 4 (hardware vs hybrid vs software DSM)")
	abl := flag.Bool("ablations", false, "run the design-choice ablations")
	jsonOut := flag.String("json", "", "run the kernel wall-clock benchmark and write JSON to this file (\"-\" for stdout)")
	faults := flag.String("faults", "", "rerun -json under a seeded fault campaign: "+strings.Join(simnet.FaultProfiles(), ", "))
	faultSeed := flag.Int64("faultseed", 1, "seed of the fault campaign's deterministic draws")
	ckptEvery := flag.Int("checkpoint", 0, "switch -json to the checkpoint-overhead benchmark, capturing every N barriers (0 = off)")
	ckptInc := flag.Bool("incremental", false, "capture dirty-page diffs after the first full snapshot (requires -checkpoint)")
	aggregate := flag.Bool("aggregate", false, "switch -json to the protocol-aggregation benchmark (batched diff flush + notice piggybacking)")
	prefetch := flag.Bool("prefetch", false, "also enable adaptive sequential prefetch in the aggregation benchmark (requires -aggregate)")
	par := flag.Int("parallel", 0, "run independent benchmark cells on up to N goroutines (0 = GOMAXPROCS, 1 = sequential); modeled results are identical at any setting")
	wall := flag.Bool("walltime", false, "switch -json to the simulator wall-time suite: sequential vs parallel totals plus hot-path allocation benchmarks")
	pnodes := flag.Bool("pnodes", false, "switch -walltime to the parallel-node suite: per-cell walls under the free-running scheduler vs the conservative lookahead gate")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at clean exit to this file")
	engines := flag.Bool("engines", false, "switch -json to the consistency-engine suite: every engine on the identical kernel set at 2 and 4 nodes")
	scaling := flag.Bool("scaling", false, "switch -json to the scaling campaign: kernel suite x engines x topologies at 8/16/64/256 nodes")
	serveFlag := flag.Bool("serve", false, "switch -json to the serve campaign: server workloads x substrates x engines x skew, with the 2M-session headline and crash-recovery cells")
	flag.Parse()

	// Flag validation happens before any benchmark runs: unknown -faults
	// profiles (the error lists the valid names) and checkpoint flag
	// combinations the harness cannot honor.
	if *ckptEvery < 0 {
		fmt.Fprintf(os.Stderr, "-checkpoint must be >= 0, got %d\n", *ckptEvery)
		os.Exit(2)
	}
	if *ckptInc && *ckptEvery == 0 {
		fmt.Fprintln(os.Stderr, "-incremental requires -checkpoint")
		os.Exit(2)
	}
	if *ckptEvery > 0 && *jsonOut == "" {
		fmt.Fprintln(os.Stderr, "-checkpoint requires -json: it selects the checkpoint-overhead benchmark")
		os.Exit(2)
	}
	if *ckptEvery > 0 && *faults != "" {
		fmt.Fprintln(os.Stderr, "-checkpoint and -faults are separate -json benchmarks; pass one of them")
		os.Exit(2)
	}
	if *prefetch && !*aggregate {
		fmt.Fprintln(os.Stderr, "-prefetch requires -aggregate")
		os.Exit(2)
	}
	if *par < 0 {
		fmt.Fprintf(os.Stderr, "-parallel must be >= 0, got %d\n", *par)
		os.Exit(2)
	}
	if *wall {
		if *jsonOut == "" {
			fmt.Fprintln(os.Stderr, "-walltime requires -json: it selects the wall-time suite")
			os.Exit(2)
		}
		if *aggregate || *ckptEvery > 0 || *faults != "" {
			fmt.Fprintln(os.Stderr, "-walltime, -aggregate, -checkpoint, and -faults are separate -json benchmarks; pass one of them")
			os.Exit(2)
		}
	}
	if *pnodes && !*wall {
		fmt.Fprintln(os.Stderr, "-pnodes requires -walltime: it selects the parallel-node wall-time suite")
		os.Exit(2)
	}
	if *aggregate {
		if *jsonOut == "" {
			fmt.Fprintln(os.Stderr, "-aggregate requires -json: it selects the protocol-aggregation benchmark")
			os.Exit(2)
		}
		if *ckptEvery > 0 || *faults != "" {
			fmt.Fprintln(os.Stderr, "-aggregate, -checkpoint, and -faults are separate -json benchmarks; pass one of them")
			os.Exit(2)
		}
	}
	if *engines {
		if *jsonOut == "" {
			fmt.Fprintln(os.Stderr, "-engines requires -json: it selects the consistency-engine suite")
			os.Exit(2)
		}
		if *wall || *aggregate || *ckptEvery > 0 || *faults != "" {
			fmt.Fprintln(os.Stderr, "-engines, -walltime, -aggregate, -checkpoint, and -faults are separate -json benchmarks; pass one of them")
			os.Exit(2)
		}
	}
	if *scaling {
		if *jsonOut == "" {
			fmt.Fprintln(os.Stderr, "-scaling requires -json: it selects the scaling campaign")
			os.Exit(2)
		}
		if *engines || *wall || *aggregate || *ckptEvery > 0 || *faults != "" {
			fmt.Fprintln(os.Stderr, "-scaling, -engines, -walltime, -aggregate, -checkpoint, and -faults are separate -json benchmarks; pass one of them")
			os.Exit(2)
		}
	}
	if *serveFlag {
		if *jsonOut == "" {
			fmt.Fprintln(os.Stderr, "-serve requires -json: it selects the serve campaign")
			os.Exit(2)
		}
		if *scaling || *engines || *wall || *aggregate || *ckptEvery > 0 || *faults != "" {
			fmt.Fprintln(os.Stderr, "-serve, -scaling, -engines, -walltime, -aggregate, -checkpoint, and -faults are separate -json benchmarks; pass one of them")
			os.Exit(2)
		}
	}
	var plan *simnet.FaultPlan
	var seed int64 // stays 0 when unperturbed: no fault plan, no jitter
	if *faults != "" {
		p, err := simnet.FaultProfile(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		plan, seed = &p, *faultSeed
	}
	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer func() {
		stopCPU()
		if err := prof.WriteHeap(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *jsonOut != "" {
		// The envelope of every BENCH_*.json names the knobs that shaped
		// the measurement, so the files are self-describing.
		type ckptConfig struct {
			Every       int  `json:"every"`
			Incremental bool `json:"incremental"`
		}
		type aggConfig struct {
			Batch    bool `json:"batch"`
			Prefetch bool `json:"prefetch"`
		}
		type envelope struct {
			Schema       string     `json:"schema"`
			Description  string     `json:"description"`
			FaultProfile string     `json:"fault_profile"`
			Seed         int64      `json:"seed"`
			Checkpoint   ckptConfig `json:"checkpoint"`
			Aggregation  *aggConfig `json:"aggregation,omitempty"`
			Results      any        `json:"results"`
		}
		var env envelope
		var render string
		if *serveFlag {
			rows, err := bench.ServeSuite(*par)
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				os.Exit(1)
			}
			env = envelope{
				Schema:      "hamster/serve/v8",
				Description: "serve campaign: server-shaped workloads (sharded KV store, event pipeline, sync/replication log) under a deterministic open-loop load generator with Zipfian key popularity, across substrates (smp, hybriddsm), consistency engines (scope, eager-rc, ivy), cluster sizes (4/16/64), and skews (0, 0.99); includes a 2M-session headline cell and a crash-recovery cell on a 5%-drop wire; rows carry no wall/virtual readings and replay byte-identically at any -parallel setting",
				Results:     rows,
			}
			render = bench.RenderServe(rows)
		} else if *scaling {
			rows, err := bench.ScalingSuite(*par)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
				os.Exit(1)
			}
			env = envelope{
				Schema:      "hamster/scaling/v7",
				Description: "scaling campaign: strong- and weak-scaling kernel cells for the scope and ivy engines on the flat, rack, and fattree topology presets at 8/16/64/256 nodes (swdsm; hierarchical tree barriers and distributed lock queues engage above 8 nodes); checksums agree across engines and fabrics per cell",
				Results:     rows,
			}
			render = bench.RenderScaling(rows)
		} else if *engines {
			rows, err := bench.EngineSuiteParallel(*par)
			if err != nil {
				fmt.Fprintf(os.Stderr, "engines: %v\n", err)
				os.Exit(1)
			}
			env = envelope{
				Schema:      "hamster/engines/v6",
				Description: "consistency engines: per-kernel virtual time, protocol messages, page faults, invalidations, and ownership migrations for every selectable engine (scope, eager-rc, ivy) on the identical kernel set (swdsm, 2 and 4 nodes); checksums agree across engines per cell",
				Results:     rows,
			}
			render = bench.RenderEngines(rows)
		} else if *wall && *pnodes {
			rep, err := bench.PWalltime()
			if err != nil {
				fmt.Fprintf(os.Stderr, "pwalltime: %v\n", err)
				os.Exit(1)
			}
			env = envelope{
				Schema:      "hamster/pwalltime/v9",
				Description: "parallel-node wall time: each cell (64- and 256-node scope-engine scaling shapes through the core services, plus a user-messaging neighbor exchange) run under the free-running reference scheduler and under the conservative lookahead gate (Config.ParallelNodes), with per-cell and suite walls; modeled results verified identical across schedulers (checksums exact, virtual exact for the messaging cell, ±1% hierarchical-sync schedule wobble for the at-scale DSM kernels); wall speedup depends on host_cores — both schedulers need real cores to diverge",
				Results:     rep,
			}
			render = bench.RenderPWalltime(rep)
		} else if *wall {
			rep, err := bench.Walltime(*par)
			if err != nil {
				fmt.Fprintf(os.Stderr, "walltime: %v\n", err)
				os.Exit(1)
			}
			env = envelope{
				Schema:      "hamster/walltime/v5",
				Description: "simulator wall-time engineering: sequential vs cell-parallel suite totals (kernel wall-clock set + aggregation matrix), per-cell results from the sequential leg, and pooled hot-path allocation benchmarks",
				Results:     rep,
			}
			render = bench.RenderWalltime(rep)
		} else if *aggregate {
			rows, err := bench.AggregationBenchParallel(true, *prefetch, *par)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aggregation: %v\n", err)
				os.Exit(1)
			}
			env = envelope{
				Schema: "hamster/aggregation/v4",
				Description: fmt.Sprintf("protocol aggregation: per-kernel virtual time and protocol message count with aggregation off vs batched diff flush + notice piggybacking%s (swdsm, 2 and 4 nodes)",
					map[bool]string{true: " + adaptive prefetch", false: ""}[*prefetch]),
				Aggregation: &aggConfig{Batch: true, Prefetch: *prefetch},
				Results:     rows,
			}
			render = bench.RenderAggregation(rows, true, *prefetch)
		} else if *ckptEvery > 0 {
			rows, err := bench.CheckpointOverheadParallel(*ckptEvery, *ckptInc, *par)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ckptoverhead: %v\n", err)
				os.Exit(1)
			}
			env = envelope{
				Schema: "hamster/ckptoverhead/v1",
				Description: fmt.Sprintf("checkpoint overhead: per-kernel virtual time with checkpointing off vs coordinated snapshots every %d barriers (swdsm, 2 and 4 nodes, core services)",
					*ckptEvery),
				Checkpoint: ckptConfig{Every: *ckptEvery, Incremental: *ckptInc},
				Results:    rows,
			}
			render = bench.RenderCheckpointOverhead(rows, *ckptEvery, *ckptInc)
		} else {
			desc := "simulator throughput: real wall-clock per kernel next to its modeled virtual time (swdsm, 4 nodes), with per-category virtual-time attribution"
			if *faults != "" {
				desc += fmt.Sprintf("; fault campaign %q", *faults)
			}
			rows, err := bench.KernelWallFaultsParallel(plan, *par)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kernelwall: %v\n", err)
				os.Exit(1)
			}
			env = envelope{
				Schema:       "hamster/kernelwall/v3",
				Description:  desc,
				FaultProfile: *faults,
				Seed:         seed,
				Results:      rows,
			}
			render = bench.RenderKernelWall(rows)
		}
		blob, err := json.MarshalIndent(env, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprint(os.Stderr, render)
		return
	}

	var sz bench.Sizes
	switch *size {
	case "small":
		sz = bench.Small()
	case "default":
		sz = bench.Default()
	case "paper":
		sz = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown -size %q\n", *size)
		os.Exit(2)
	}

	all := !*t1 && !*t2 && !*f2 && !*f3 && !*f4 && !*abl
	section := func(run bool, name string, f func()) {
		if !run && !all {
			return
		}
		start := time.Now()
		f()
		fmt.Printf("[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	fmt.Printf("HAMSTER evaluation harness — workload size %q\n\n", *size)
	section(*t1, "table1", func() {
		fmt.Println(bench.RenderTable1(bench.Table1(sz)))
	})
	section(*t2, "table2", func() {
		rows, err := apicount.CountModels(*modelsDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "table2: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("Table 2: Implementation Complexity of Programming Models Using HAMSTER")
		fmt.Println()
		fmt.Println(apicount.Render(rows))
	})
	section(*f2, "figure2", func() {
		fmt.Println(bench.RenderFigure2(bench.Figure2(sz)))
	})
	section(*f3, "figure3", func() {
		fmt.Println(bench.RenderFigure3(bench.Figure3(sz)))
	})
	section(*f4, "figure4", func() {
		fmt.Println(bench.RenderFigure4(bench.Figure4(sz)))
	})
	section(*abl, "ablations", func() {
		fmt.Println(bench.RenderAblations(bench.Ablations(sz)))
	})
}
