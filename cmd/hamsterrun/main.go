// Command hamsterrun executes one benchmark on one platform — the
// identical-binary experiment of §5.4: the same program, retargeted purely
// by configuration.
//
// Usage:
//
//	hamsterrun [-config FILE] [-platform smp|hybrid-dsm|software-dsm]
//	           [-nodes N] [-bench NAME] [-n SIZE] [-iters I] [-monitor]
//	           [-trace FILE] [-timebreakdown] [-pnodes]
//	           [-faults PROFILE] [-faultseed SEED]
//	           [-checkpoint N] [-incremental] [-recover]
//	           [-aggregate] [-prefetch] [-engine NAME] [-topology NAME]
//	           [-cpuprofile FILE] [-memprofile FILE]
//	hamsterrun -serve kv|pipeline|synclog [-clients N] [-zipf S] [...]
//
// A -config file (see internal/cluster for the format) overrides the
// -platform/-nodes flags, mirroring how the original framework switched
// platforms with a node configuration file.
//
// -checkpoint N captures a coordinated snapshot every N barriers on the
// software DSM; -incremental switches captures after the first to
// dirty-page diffs. -recover (requires -checkpoint and a -faults profile)
// rolls a planned node crash back to the last snapshot and re-admits the
// node instead of aborting. -aggregate turns on the software DSM's
// protocol aggregation layer (batched diff flush + write-notice
// piggybacking); -prefetch adds adaptive sequential page prefetch.
// -engine selects the software DSM's consistency engine (scope, eager-rc,
// or ivy); the ivy write-invalidate engine has no barrier epochs or diff
// traffic to hook, so it composes with neither -checkpoint/-recover nor
// -aggregate. -topology selects the software DSM's switch fabric (flat,
// rack, or fattree); above 8 nodes the DSM also switches to hierarchical
// synchronization (tree barriers, distributed lock queues). All flag
// combinations are validated before anything boots.
//
// -pnodes runs node goroutines truly concurrently behind the
// conservative lookahead gate (internal/vclock.Engine): queued-message
// delivery waits until no earlier-timestamped arrival can still be
// produced, so virtual times, checksums, and perfmon streams are
// identical to the default free-running scheduler (DESIGN.md §5i). It
// is incompatible with the thread-model platforms (Threaded mode).
//
// -cpuprofile FILE collects a CPU profile for the whole run;
// -memprofile FILE writes a heap snapshot at clean exit. Inspect either
// with "go tool pprof FILE" (see DESIGN.md §5i for the workflow).
//
// -serve replaces -bench with a server-shaped workload from
// internal/serve (kv, pipeline, or synclog) under the deterministic
// open-loop load generator. -clients sizes the simulated client-session
// population; -zipf sets the key-popularity skew (0 = uniform, 0.99 =
// the standard serving-benchmark hot-key skew). Both require -serve.
// -serve composes with -engine, -topology, -monitor (per-shard hot-page
// and latch-contention report rows), -faults, and — for the mid-traffic
// crash-recovery scenario — -checkpoint/-recover; it rejects -verify,
// -timeline, and -trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hamster"
	"hamster/internal/apps"
	"hamster/internal/cluster"
	"hamster/internal/core"
	"hamster/internal/perfmon"
	"hamster/internal/prof"
	"hamster/internal/serve"
	"hamster/internal/simnet"
	"hamster/models/jiajia"
)

func main() {
	cfgPath := flag.String("config", "", "cluster configuration file (overrides -platform/-nodes)")
	plat := flag.String("platform", "software-dsm", "smp, hybrid-dsm, or software-dsm")
	nodes := flag.Int("nodes", 4, "cluster size")
	benchName := flag.String("bench", "pi", "matmult, pi, sor, sor-opt, lu, water, or stream")
	n := flag.Int("n", 0, "problem size (0 = benchmark default)")
	iters := flag.Int("iters", 0, "iterations/steps (0 = benchmark default)")
	monitor := flag.Bool("monitor", false, "print per-node monitoring reports")
	verify := flag.Bool("verify", false, "trace the run and print the formal consistency report (§6)")
	timeline := flag.Bool("timeline", false, "attach the external sampler and print per-epoch activity (§4.3)")
	traceOut := flag.String("trace", "", "record protocol events and write a Chrome/Perfetto trace to this file")
	timeBreak := flag.Bool("timebreakdown", false, "print the per-node virtual-time attribution (compute/memory/protocol/network/stolen)")
	faults := flag.String("faults", "", "run a seeded fault campaign: "+strings.Join(simnet.FaultProfiles(), ", "))
	faultSeed := flag.Int64("faultseed", 1, "seed of the fault campaign's deterministic draws")
	ckptEvery := flag.Int("checkpoint", 0, "capture a coordinated snapshot every N barriers (0 = off; software DSM only)")
	ckptInc := flag.Bool("incremental", false, "capture dirty-page diffs after the first full snapshot (requires -checkpoint)")
	recoverNodes := flag.Bool("recover", false, "recover planned node crashes from the last snapshot (requires -checkpoint and -faults)")
	aggregate := flag.Bool("aggregate", false, "enable protocol aggregation: batched diff flush + write-notice piggybacking (software DSM only)")
	prefetch := flag.Bool("prefetch", false, "enable adaptive sequential page prefetch (requires -aggregate)")
	engine := flag.String("engine", "", "software DSM consistency engine: "+strings.Join(hamster.EngineNames(), ", "))
	topology := flag.String("topology", "", "software DSM switch fabric: "+strings.Join(hamster.TopologyNames(), ", "))
	pnodes := flag.Bool("pnodes", false, "run node goroutines concurrently behind the conservative lookahead gate (results identical to the sequential scheduler)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at clean exit to this file")
	serveW := flag.String("serve", "", "run a server workload instead of -bench: "+strings.Join(serve.Workloads, ", "))
	clients := flag.Int("clients", 0, "simulated client-session population for -serve (0 = workload default)")
	zipf := flag.Float64("zipf", 0, "Zipfian key-popularity skew for -serve (0 = uniform)")
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	cfg := hamster.Config{Nodes: *nodes}
	switch *plat {
	case "smp", "hardware-dsm":
		cfg.Platform = hamster.SMP
	case "hybrid-dsm", "numa":
		cfg.Platform = hamster.HybridDSM
	case "software-dsm", "swdsm", "beowulf":
		cfg.Platform = hamster.SWDSM
	default:
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", *plat)
		os.Exit(2)
	}
	if *cfgPath != "" {
		f, err := os.Open(*cfgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fileCfg, err := cluster.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg = fileCfg.RuntimeConfig()
	}

	scfg, err := serveOptions(*serveW, *clients, *zipf, cfg.Nodes, explicit)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	serveActive := *serveW != ""

	var kernel apps.Kernel
	var desc string
	if !serveActive {
		kernel, desc, err = pickKernel(*benchName, *n, *iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	// Everything the flags can get wrong is rejected here, before any node
	// boots: an unknown -faults profile (the error lists the valid names),
	// and checkpoint/recover combinations the runtime cannot honor.
	var plan simnet.FaultPlan
	haveFaults := *faults != ""
	if haveFaults {
		plan, err = simnet.FaultProfile(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *ckptEvery < 0 {
		fmt.Fprintf(os.Stderr, "-checkpoint must be >= 0, got %d\n", *ckptEvery)
		os.Exit(2)
	}
	if *ckptEvery > 0 && cfg.Platform != hamster.SWDSM {
		fmt.Fprintf(os.Stderr, "-checkpoint requires the software DSM (got platform %v): snapshots capture the DSM protocol state\n", cfg.Platform)
		os.Exit(2)
	}
	if *ckptInc && *ckptEvery == 0 {
		fmt.Fprintln(os.Stderr, "-incremental requires -checkpoint")
		os.Exit(2)
	}
	if *recoverNodes {
		if *ckptEvery == 0 {
			fmt.Fprintln(os.Stderr, "-recover requires -checkpoint: recovery rolls back to the last snapshot")
			os.Exit(2)
		}
		if !haveFaults {
			fmt.Fprintln(os.Stderr, "-recover requires a -faults profile with a planned crash (e.g. crash-node)")
			os.Exit(2)
		}
		if *verify || *timeline || *traceOut != "" {
			fmt.Fprintln(os.Stderr, "-recover replaces the runtime on rollback; -verify, -timeline, and -trace are not supported with it")
			os.Exit(2)
		}
	}
	if *prefetch && !*aggregate {
		fmt.Fprintln(os.Stderr, "-prefetch requires -aggregate")
		os.Exit(2)
	}
	if *aggregate {
		if cfg.Platform != hamster.SWDSM {
			fmt.Fprintf(os.Stderr, "-aggregate requires the software DSM (got platform %v): aggregation batches the DSM protocol's messages\n", cfg.Platform)
			os.Exit(2)
		}
		if *recoverNodes {
			fmt.Fprintln(os.Stderr, "-aggregate is not supported with -recover: rollback re-admission has not been qualified against batched message sequences")
			os.Exit(2)
		}
		cfg.SWDSMAggregation = hamster.Aggregation{Batch: true, Prefetch: *prefetch}
	}
	if *engine != "" {
		valid := false
		for _, n := range hamster.EngineNames() {
			if *engine == n {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "unknown -engine %q (valid: %s)\n", *engine, strings.Join(hamster.EngineNames(), ", "))
			os.Exit(2)
		}
		if cfg.Platform != hamster.SWDSM {
			fmt.Fprintf(os.Stderr, "-engine requires the software DSM (got platform %v): it selects the DSM's coherence protocol\n", cfg.Platform)
			os.Exit(2)
		}
		if *engine == "ivy" {
			if *recoverNodes {
				fmt.Fprintln(os.Stderr, "-recover is not supported with -engine ivy: rollback re-admission replays scope-protocol snapshots")
				os.Exit(2)
			}
			if *ckptEvery > 0 {
				fmt.Fprintln(os.Stderr, "-checkpoint is not supported with -engine ivy: snapshots hook the scope protocol's barrier epochs")
				os.Exit(2)
			}
			if *aggregate {
				fmt.Fprintln(os.Stderr, "-aggregate is not supported with -engine ivy: aggregation batches the scope protocol's diffs and notices")
				os.Exit(2)
			}
		}
		cfg.Engine = *engine
	}
	if *nodes <= 0 || cfg.Nodes <= 0 {
		fmt.Fprintf(os.Stderr, "-nodes must be >= 1, got %d\n", cfg.Nodes)
		os.Exit(2)
	}
	if *topology != "" {
		valid := false
		for _, n := range hamster.TopologyNames() {
			if *topology == n {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "unknown -topology %q (valid: %s)\n", *topology, strings.Join(hamster.TopologyNames(), ", "))
			os.Exit(2)
		}
		if cfg.Platform != hamster.SWDSM {
			fmt.Fprintf(os.Stderr, "-topology requires the software DSM (got platform %v): it shapes the DSM's switched interconnect\n", cfg.Platform)
			os.Exit(2)
		}
		cfg.Topology = *topology
	}
	if *pnodes {
		if cfg.Threaded {
			fmt.Fprintln(os.Stderr, "-pnodes is incompatible with Threaded mode: co-located tasks can send while their node blocks in a receive, which breaks the conservative engine's blocked-receiver horizon bound")
			os.Exit(2)
		}
		cfg.ParallelNodes = true
		fmt.Println("parallel node execution: conservative lookahead gate on")
	}
	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer func() {
		stopCPU()
		if err := prof.WriteHeap(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if serveActive {
		if *verify || *timeline || *traceOut != "" {
			fmt.Fprintln(os.Stderr, "-serve drives the fabric from the load generator; -verify, -timeline, and -trace are not supported with it")
			os.Exit(2)
		}
		if *ckptEvery > 0 {
			if *monitor || *timeBreak {
				fmt.Fprintln(os.Stderr, "-monitor and -timebreakdown are not supported with -serve -checkpoint: the recovery orchestrator releases the runtime before reporting")
				os.Exit(2)
			}
			runServeRecoverable(scfg, cfg, plan, *ckptEvery, *ckptInc, *recoverNodes, *faults, *faultSeed, haveFaults)
			return
		}
		runServe(scfg, cfg, plan, haveFaults, *faults, *faultSeed, *monitor, *timeBreak)
		return
	}

	if *ckptEvery > 0 {
		runRecoverable(cfg, plan, kernel, desc, *ckptEvery, *ckptInc, *recoverNodes, *monitor, *timeBreak, *faults, *faultSeed, haveFaults)
		return
	}

	sys, err := jiajia.Boot(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sys.Shutdown()

	fmt.Printf("running %s on %v with %d nodes (JiaJia model over HAMSTER)\n",
		desc, cfg.Platform, cfg.Nodes)
	if cfg.Engine != "" {
		fmt.Printf("consistency engine %q\n", cfg.Engine)
	}
	if *verify {
		sys.Runtime().StartTrace()
	}
	var sampler *core.Sampler
	if *timeline {
		sampler = sys.Runtime().AttachSampler()
	}
	if *traceOut != "" {
		sys.Runtime().Perf().Enable()
	}
	if haveFaults {
		sys.Runtime().SetFaults(plan)
		// Fault campaigns always record, so retries and timeouts show up
		// in the report (and the trace, if requested).
		sys.Runtime().Perf().Enable()
		fmt.Printf("fault campaign %q, seed %d\n", *faults, *faultSeed)
	}

	results, runErr := runGuarded(sys, kernel)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "\nrun aborted: %v\n", runErr)
		if *faults != "" {
			faultReport(sys, os.Stderr)
		}
		os.Exit(1)
	}

	fmt.Printf("\ncheck      %v\n", results[0].Check)
	fmt.Printf("total      %v (slowest node)\n", apps.MaxTotal(results))
	fmt.Printf("init       %v\n", maxP(results, func(t apps.Timings) hamster.Duration { return t.Init }))
	fmt.Printf("core       %v\n", maxP(results, func(t apps.Timings) hamster.Duration { return t.Core }))
	fmt.Printf("barriers   %v\n", maxP(results, func(t apps.Timings) hamster.Duration { return t.Bar }))
	if *faults != "" {
		fmt.Println()
		faultReport(sys, os.Stdout)
	}
	if *monitor {
		fmt.Println()
		fmt.Print(core.ClusterReport(sys.Runtime()))
	}
	if *verify {
		fmt.Println()
		fmt.Print(sys.Runtime().CheckConsistency().String())
	}
	if sampler != nil {
		sys.Runtime().DetachSampler()
		fmt.Println()
		fmt.Print(sampler.Timeline(0))
	}
	if *timeBreak {
		fmt.Println()
		fmt.Print(perfmon.Summary(sys.Runtime().TimeBreakdowns()))
	}
	if *traceOut != "" {
		rec := sys.Runtime().Perf()
		rec.Disable()
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		events := 0
		for n := 0; n < rec.Nodes(); n++ {
			events += rec.Len(n)
		}
		fmt.Printf("\nwrote %d protocol events to %s (open in ui.perfetto.dev or chrome://tracing)\n",
			events, *traceOut)
	}
}

func maxP(rs []apps.Result, sel func(apps.Timings) hamster.Duration) hamster.Duration {
	return apps.MaxPhase(rs, sel)
}

// serveOptions validates the -serve flag family before anything boots
// and builds the workload configuration, defaults filled. explicit
// reports which flags were given on the command line; with -serve unset
// it rejects the satellites (-clients, -zipf) that would silently do
// nothing.
func serveOptions(workload string, clients int, zipf float64, nodes int, explicit map[string]bool) (serve.Config, error) {
	if workload == "" {
		if explicit["clients"] {
			return serve.Config{}, fmt.Errorf("-clients requires -serve: it sizes a server workload's client-session population")
		}
		if explicit["zipf"] {
			return serve.Config{}, fmt.Errorf("-zipf requires -serve: it shapes a server workload's key popularity")
		}
		return serve.Config{}, nil
	}
	if explicit["bench"] {
		return serve.Config{}, fmt.Errorf("-serve %s replaces the kernel benchmark; it cannot be combined with -bench", workload)
	}
	if explicit["clients"] && clients < 1 {
		return serve.Config{}, fmt.Errorf("-clients must be >= 1, got %d", clients)
	}
	if zipf < 0 {
		return serve.Config{}, fmt.Errorf("-zipf must be >= 0 (0 = uniform key popularity), got %v", zipf)
	}
	scfg := serve.Config{Workload: workload, ZipfSkew: zipf}
	if explicit["clients"] {
		scfg.Sessions = uint64(clients)
	}
	scfg = scfg.WithDefaults(nodes)
	if err := scfg.Validate(nodes); err != nil {
		return serve.Config{}, err
	}
	return scfg, nil
}

// runServe drives a server workload through the core services: boot the
// runtime, inject any fault plan, run the load-generator fabric, print
// the report.
func runServe(scfg serve.Config, cfg hamster.Config, plan simnet.FaultPlan,
	haveFaults bool, faults string, faultSeed int64, monitor, timeBreak bool) {
	rt, err := hamster.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer rt.Close()
	fmt.Printf("serving %s workload on %v with %d nodes (%d client sessions, zipf %.2f)\n",
		scfg.Workload, cfg.Platform, cfg.Nodes, scfg.Sessions, scfg.ZipfSkew)
	if cfg.Engine != "" {
		fmt.Printf("consistency engine %q\n", cfg.Engine)
	}
	if haveFaults {
		rt.SetFaults(plan)
		fmt.Printf("fault campaign %q, seed %d\n", faults, faultSeed)
	}
	rep, err := serve.RunOnRuntime(scfg, rt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\nrun aborted: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(rep.Render())
	if monitor {
		fmt.Println()
		fmt.Print(core.ClusterReport(rt))
	}
	if timeBreak {
		fmt.Println()
		fmt.Print(perfmon.Summary(rt.TimeBreakdowns()))
	}
}

// runServeRecoverable executes the serve workload under the cluster
// orchestrator: coordinated snapshots every N barriers, planned crashes
// rolled back to the last snapshot and the victim re-admitted.
func runServeRecoverable(scfg serve.Config, cfg hamster.Config, plan simnet.FaultPlan,
	every int, incremental, recoverNodes bool, faults string, faultSeed int64, haveFaults bool) {
	cfg.CheckpointEvery = every
	cfg.CheckpointIncremental = incremental
	plan.Recover = recoverNodes
	mode := "full"
	if incremental {
		mode = "incremental"
	}
	fmt.Printf("serving %s workload on %v with %d nodes (core services, %s checkpoint every %d barriers)\n",
		scfg.Workload, cfg.Platform, cfg.Nodes, mode, every)
	if haveFaults {
		fmt.Printf("fault campaign %q, seed %d", faults, faultSeed)
		if recoverNodes {
			fmt.Print(", crash recovery on")
		}
		fmt.Println()
	}
	rep, recoveries, err := serve.RunRecoverable(scfg, cfg, plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\nrun aborted: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(rep.Render())
	if recoverNodes {
		fmt.Printf("recoveries %d\n", recoveries)
	}
}

// runRecoverable executes the kernel through the core services with
// coordinated checkpointing and, with recovery enabled, under the cluster
// supervisor that rolls planned crashes back to the last snapshot and
// re-admits the victim.
func runRecoverable(cfg hamster.Config, plan simnet.FaultPlan, kernel apps.Kernel, desc string,
	every int, incremental, recoverNodes, monitor, timeBreak bool, faults string, faultSeed int64, haveFaults bool) {
	cfg.CheckpointEvery = every
	cfg.CheckpointIncremental = incremental
	plan.Recover = recoverNodes
	mode := "full"
	if incremental {
		mode = "incremental"
	}
	fmt.Printf("running %s on %v with %d nodes (core services, %s checkpoint every %d barriers)\n",
		desc, cfg.Platform, cfg.Nodes, mode, every)
	if haveFaults {
		fmt.Printf("fault campaign %q, seed %d", faults, faultSeed)
		if recoverNodes {
			fmt.Print(", crash recovery on")
		}
		fmt.Println()
	}

	results, rt, recoveries, err := apps.RunRecoverable(cfg, plan, kernel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\nrun aborted: %v\n", err)
		os.Exit(1)
	}
	defer rt.Close()

	fmt.Printf("\ncheck      %v\n", results[0].Check)
	fmt.Printf("total      %v (slowest node)\n", apps.MaxTotal(results))
	fmt.Printf("init       %v\n", maxP(results, func(t apps.Timings) hamster.Duration { return t.Init }))
	fmt.Printf("core       %v\n", maxP(results, func(t apps.Timings) hamster.Duration { return t.Core }))
	fmt.Printf("barriers   %v\n", maxP(results, func(t apps.Timings) hamster.Duration { return t.Bar }))
	captures, bytes := rt.Checkpoints().Stats()
	fmt.Printf("snapshots  %d captured, %d bytes\n", captures, bytes)
	if recoverNodes {
		fmt.Printf("recoveries %d\n", recoveries)
	}
	if monitor {
		fmt.Println()
		fmt.Print(core.ClusterReport(rt))
	}
	if timeBreak {
		fmt.Println()
		fmt.Print(perfmon.Summary(rt.TimeBreakdowns()))
	}
}

// runGuarded executes the kernel, converting the clean panics of the
// degradation paths (unreachable pages, aborted barriers) into an error
// so the campaign can exit with diagnostics instead of a stack trace.
func runGuarded(sys *jiajia.System, kernel apps.Kernel) (results []apps.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return apps.RunOnJia(sys, kernel), nil
}

// faultReport prints what the fault campaign did to the run: wire-level
// drops, protocol retries and timeouts, and the failure detector's view
// of the cluster.
func faultReport(sys *jiajia.System, w *os.File) {
	rt := sys.Runtime()
	drops := rt.Network().Drops()
	if layer := rt.AMsg(); layer != nil && layer.Network() != rt.Network() {
		drops += layer.Network().Drops()
	}
	rec := rt.Perf()
	var retries, timeouts, downs uint64
	for n := 0; n < rec.Nodes(); n++ {
		counts := rec.KindCount(n)
		retries += counts[perfmon.EvRetry]
		timeouts += counts[perfmon.EvTimeout]
		downs += counts[perfmon.EvNodeDown]
	}
	fmt.Fprintf(w, "dropped msgs  %d\n", drops)
	fmt.Fprintf(w, "retries       %d\n", retries)
	fmt.Fprintf(w, "timeouts      %d\n", timeouts)
	if layer := rt.AMsg(); layer != nil {
		var suppressed uint64
		for n := 0; n < rt.Nodes(); n++ {
			_, s := layer.Stats(simnet.NodeID(n)).Faults()
			suppressed += s
		}
		fmt.Fprintf(w, "dup suppressed %d\n", suppressed)
		if layer.Network().Closed() {
			// The run aborted and tore the network down: probing now
			// would blame everyone. The abort diagnostic above already
			// names the unreachable node.
			fmt.Fprintln(w, "cluster health: run aborted before a sweep could complete")
		} else {
			mon := cluster.NewMonitor(layer, cluster.DefaultThreshold, rec)
			mon.Sweep(0)
			fmt.Fprintln(w, mon.Diagnostic())
		}
	} else if downs > 0 {
		fmt.Fprintf(w, "nodes declared down: %d\n", downs)
	}
}

func pickKernel(name string, n, iters int) (apps.Kernel, string, error) {
	def := func(v, d int) int {
		if v <= 0 {
			return d
		}
		return v
	}
	switch name {
	case "matmult":
		sz := def(n, 256)
		return func(m apps.Machine) apps.Result { return apps.MatMult(m, sz) },
			fmt.Sprintf("matmult %dx%d", sz, sz), nil
	case "pi":
		sz := def(n, 10_000_000)
		return func(m apps.Machine) apps.Result { return apps.PI(m, sz) },
			fmt.Sprintf("pi with %d intervals", sz), nil
	case "sor":
		sz, it := def(n, 256), def(iters, 8)
		return func(m apps.Machine) apps.Result { return apps.SOR(m, sz, it, false) },
			fmt.Sprintf("sor (unoptimized) %dx%d, %d iters", sz, sz, it), nil
	case "sor-opt":
		sz, it := def(n, 256), def(iters, 8)
		return func(m apps.Machine) apps.Result { return apps.SOR(m, sz, it, true) },
			fmt.Sprintf("sor (optimized) %dx%d, %d iters", sz, sz, it), nil
	case "lu":
		sz := def(n, 224)
		return func(m apps.Machine) apps.Result { return apps.LU(m, sz) },
			fmt.Sprintf("lu %dx%d", sz, sz), nil
	case "water":
		sz, it := def(n, 288), def(iters, 2)
		return func(m apps.Machine) apps.Result { return apps.Water(m, sz, it) },
			fmt.Sprintf("water with %d molecules, %d steps", sz, it), nil
	case "stream":
		sz, it := def(n, 65536), def(iters, 3)
		return func(m apps.Machine) apps.Result { return apps.Stream(m, sz, it, hamster.Block) },
			fmt.Sprintf("stream over %d doubles, %d iters", sz, it), nil
	default:
		return nil, "", fmt.Errorf("unknown benchmark %q", name)
	}
}
