package main

import (
	"strings"
	"testing"
)

// Every invalid -serve/-clients/-zipf combination must be rejected
// before any node boots, with an error descriptive enough to fix the
// command line from.
func TestServeOptionsRejects(t *testing.T) {
	cases := []struct {
		name     string
		workload string
		clients  int
		zipf     float64
		nodes    int
		explicit []string
		want     string
	}{
		{"clients without serve", "", 1000, 0, 4, []string{"clients"}, "-clients requires -serve"},
		{"zipf without serve", "", 0, 0.99, 4, []string{"zipf"}, "-zipf requires -serve"},
		{"serve with explicit bench", "kv", 0, 0, 4, []string{"serve", "bench"}, "cannot be combined with -bench"},
		{"zero clients", "kv", 0, 0, 4, []string{"serve", "clients"}, "-clients must be >= 1"},
		{"negative clients", "kv", -5, 0, 4, []string{"serve", "clients"}, "-clients must be >= 1"},
		{"negative zipf", "kv", 0, -0.5, 4, []string{"serve", "zipf"}, "-zipf must be >= 0"},
		{"unknown workload", "webscale", 0, 0, 4, []string{"serve"}, "unknown workload"},
		{"one node", "kv", 0, 0, 1, []string{"serve"}, "at least 2 nodes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			explicit := map[string]bool{}
			for _, f := range c.explicit {
				explicit[f] = true
			}
			_, err := serveOptions(c.workload, c.clients, c.zipf, c.nodes, explicit)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want mention of %q", err, c.want)
			}
		})
	}
}

// Valid combinations pass pre-boot validation and come back with
// defaults filled: the explicit client population sticks, an omitted
// one falls back to the workload default.
func TestServeOptionsAccepts(t *testing.T) {
	cfg, err := serveOptions("kv", 250_000, 0.99, 4, map[string]bool{"serve": true, "clients": true, "zipf": true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sessions != 250_000 || cfg.ZipfSkew != 0.99 {
		t.Fatalf("explicit -clients/-zipf not honored: sessions %d, skew %v", cfg.Sessions, cfg.ZipfSkew)
	}
	if cfg.Windows == 0 || cfg.RingSlots == 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}

	cfg, err = serveOptions("pipeline", 0, 0, 4, map[string]bool{"serve": true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sessions == 0 {
		t.Fatal("omitted -clients did not fall back to the workload default")
	}

	// No -serve and no satellites: inert zero config, no error.
	cfg, err = serveOptions("", 0, 0, 4, map[string]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workload != "" {
		t.Fatalf("inactive serve path produced a workload: %+v", cfg)
	}
}
