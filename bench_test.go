// Benchmarks regenerating the paper's evaluation, one per table and
// figure (plus the DESIGN.md ablations). Each benchmark iteration runs the
// complete experiment at test-scale working sets and reports the paper's
// headline metric via b.ReportMetric; run the hamsterbench command for
// full-size, paper-style renderings.
//
//	go test -bench=. -benchmem
package hamster_test

import (
	"testing"

	"hamster/internal/apicount"
	"hamster/internal/bench"
)

// BenchmarkTable1Workloads executes every Table 1 workload once on the
// software DSM through the full HAMSTER stack (the configuration the
// paper's Table 1 accompanies).
func BenchmarkTable1Workloads(b *testing.B) {
	sz := bench.Small()
	if rows := bench.Table1(sz); len(rows) != 5 {
		b.Fatalf("table 1 rows = %d", len(rows))
	}
	for i := 0; i < b.N; i++ {
		rows := bench.Figure2(sz) // runs all workloads native+HAMSTER
		if len(rows) != 10 {
			b.Fatal("workload sweep incomplete")
		}
	}
}

// BenchmarkTable2Complexity measures the Table 2 counting pass over the
// programming-model packages (the paper's nine plus the openmp extension).
func BenchmarkTable2Complexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := apicount.CountModels("models")
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("models counted = %d", len(rows))
		}
		var lines, calls int
		for _, r := range rows {
			lines += r.Lines
			calls += r.APICalls
		}
		b.ReportMetric(float64(lines)/float64(calls), "lines/call")
	}
}

// BenchmarkFigure2Overhead regenerates Figure 2 (HAMSTER vs native JiaJia,
// 4 nodes) and reports the worst-case absolute overhead percentage.
func BenchmarkFigure2Overhead(b *testing.B) {
	sz := bench.Small()
	for i := 0; i < b.N; i++ {
		rows := bench.Figure2(sz)
		worst := 0.0
		for _, r := range rows {
			if v := r.OverheadPct; v > worst {
				worst = v
			} else if -v > worst {
				worst = -v
			}
		}
		b.ReportMetric(worst, "max|overhead|%")
	}
}

// BenchmarkFigure3HybridVsSW regenerates Figure 3 (hybrid vs software DSM,
// 4 nodes) and reports the unoptimized SOR advantage — the paper's
// headline locality result.
func BenchmarkFigure3HybridVsSW(b *testing.B) {
	sz := bench.Small()
	for i := 0; i < b.N; i++ {
		rows := bench.Figure3(sz)
		for _, r := range rows {
			if r.Name == "SOR" {
				b.ReportMetric(r.AdvantagePct, "sor-advantage%")
			}
		}
	}
}

// BenchmarkFigure4ThreePlatforms regenerates Figure 4 (hardware vs hybrid
// vs software DSM, 2 nodes) and reports MatMult's hybrid speed relative to
// the SMP — the separate-memory-bus crossover.
func BenchmarkFigure4ThreePlatforms(b *testing.B) {
	sz := bench.Small()
	for i := 0; i < b.N; i++ {
		rows := bench.Figure4(sz)
		for _, r := range rows {
			if r.Name == "MatMult" {
				b.ReportMetric(r.HybridPct, "matmult-hybrid%")
			}
		}
	}
}

// BenchmarkAblationMessaging quantifies §3.3's coalesced messaging layer.
func BenchmarkAblationMessaging(b *testing.B) {
	sz := bench.Small()
	for i := 0; i < b.N; i++ {
		a := bench.AblationMessaging(sz)
		b.ReportMetric(float64(a.Rows[1].Time)/float64(a.Rows[0].Time), "separate/coalesced")
	}
}

// BenchmarkAblationConsistency quantifies relaxed vs sequential
// consistency (§4.5).
func BenchmarkAblationConsistency(b *testing.B) {
	sz := bench.Small()
	for i := 0; i < b.N; i++ {
		a := bench.AblationConsistency(sz)
		b.ReportMetric(float64(a.Rows[1].Time)/float64(a.Rows[0].Time), "seq/scope")
	}
}

// BenchmarkAblationPlacement quantifies the distribution annotations.
func BenchmarkAblationPlacement(b *testing.B) {
	sz := bench.Small()
	for i := 0; i < b.N; i++ {
		a := bench.AblationPlacement(sz)
		b.ReportMetric(float64(a.Rows[2].Time)/float64(a.Rows[0].Time), "fixed/block")
	}
}

// BenchmarkAblationPostedWrites quantifies the hybrid DSM's posted-write
// buffer on write-only initialization.
func BenchmarkAblationPostedWrites(b *testing.B) {
	sz := bench.Small()
	for i := 0; i < b.N; i++ {
		a := bench.AblationPostedWrites(sz)
		b.ReportMetric(float64(a.Rows[1].Time)/float64(a.Rows[0].Time), "pio/posted")
	}
}

// BenchmarkAblationMultiDSM quantifies §6's multi-DSM composition: the
// mixed workload's time under custom-tailored routing relative to the
// better pure engine.
func BenchmarkAblationMultiDSM(b *testing.B) {
	sz := bench.Small()
	for i := 0; i < b.N; i++ {
		a := bench.AblationMultiDSM(sz)
		best := a.Rows[0].Time
		if a.Rows[1].Time < best {
			best = a.Rows[1].Time
		}
		b.ReportMetric(float64(a.Rows[2].Time)/float64(best), "mix/best-pure")
	}
}

// BenchmarkAblationHomeMigration quantifies the software DSM's
// single-writer home migration.
func BenchmarkAblationHomeMigration(b *testing.B) {
	sz := bench.Small()
	for i := 0; i < b.N; i++ {
		a := bench.AblationHomeMigration(sz)
		b.ReportMetric(float64(a.Rows[1].Time)/float64(a.Rows[0].Time), "migrated/off")
	}
}
