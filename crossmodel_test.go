package hamster_test

import (
	"testing"

	"hamster"
	"hamster/models/anl"
	"hamster/models/hlrc"
	"hamster/models/jiajia"
	"hamster/models/openmp"
	"hamster/models/pthreads"
	"hamster/models/shmem"
	"hamster/models/smpspmd"
	"hamster/models/spmd"
	"hamster/models/treadmarks"
	"hamster/models/win32"
)

// TestCrossModelEquivalence runs the same computation — every worker
// increments a shared counter `perWorker` times under mutual exclusion —
// through all ten programming models on the software DSM. Identical
// results across models is the paper's §2 claim made executable: the thin
// model layers recreate different APIs over the same services without
// changing semantics.
func TestCrossModelEquivalence(t *testing.T) {
	const nodes = 3
	const perWorker = 8
	const want = int64(nodes * perWorker)
	cfg := hamster.Config{Platform: hamster.SWDSM, Nodes: nodes}

	t.Run("spmd", func(t *testing.T) {
		s, err := spmd.Boot(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		var got int64
		s.Run(func(p *spmd.Proc) {
			r := p.AllocGlobal(hamster.PageSize, "c")
			var lock int
			if p.Me() == 0 {
				lock = p.CreateLock()
			}
			p.Barrier()
			for i := 0; i < perWorker; i++ {
				p.Lock(lock)
				p.WriteI64(r.Base, p.ReadI64(r.Base)+1)
				p.Unlock(lock)
			}
			p.Barrier()
			if p.Me() == 0 {
				got = p.ReadI64(r.Base)
			}
		})
		if got != want {
			t.Fatalf("spmd: %d, want %d", got, want)
		}
	})

	t.Run("smpspmd", func(t *testing.T) {
		s, err := smpspmd.Boot(nodes)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		var got int64
		s.Run(func(p *smpspmd.Proc) {
			r := p.AllocShared(hamster.PageSize, "c")
			var lock int
			if p.Me() == 0 {
				lock = p.CreateLock()
			}
			p.Barrier()
			for i := 0; i < perWorker; i++ {
				p.Lock(lock)
				p.WriteI64(r.Base, p.ReadI64(r.Base)+1)
				p.Unlock(lock)
			}
			p.Barrier()
			if p.Me() == 0 {
				got = p.ReadI64(r.Base)
			}
		})
		if got != want {
			t.Fatalf("smpspmd: %d, want %d", got, want)
		}
	})

	t.Run("jiajia", func(t *testing.T) {
		s, err := jiajia.Boot(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		var got int64
		s.Run(func(j *jiajia.Jia) {
			a := j.Alloc(hamster.PageSize)
			j.Barrier()
			for i := 0; i < perWorker; i++ {
				j.Lock(1)
				j.WriteI64(a, j.ReadI64(a)+1)
				j.Unlock(1)
			}
			j.Barrier()
			if j.Pid() == 0 {
				got = j.ReadI64(a)
			}
		})
		if got != want {
			t.Fatalf("jiajia: %d, want %d", got, want)
		}
	})

	t.Run("hlrc", func(t *testing.T) {
		s, err := hlrc.Boot(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		var got int64
		s.Run(func(rc *hlrc.RC) {
			a := rc.Malloc(hamster.PageSize)
			for i := 0; i < perWorker; i++ {
				rc.Acquire(1)
				rc.WriteI64(a, rc.ReadI64(a)+1)
				rc.Release(1)
			}
			rc.Barrier()
			if rc.Pid() == 0 {
				got = rc.ReadI64(a)
			}
		})
		if got != want {
			t.Fatalf("hlrc: %d, want %d", got, want)
		}
	})

	t.Run("treadmarks", func(t *testing.T) {
		s, err := treadmarks.Boot(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		var got int64
		s.Run(func(tm *treadmarks.Tmk) {
			var r hamster.Region
			if tm.ProcID() == 0 {
				r = tm.Malloc(hamster.PageSize)
				tm.Distribute(r)
			} else {
				r = tm.Receive()
			}
			tm.Barrier(0)
			for i := 0; i < perWorker; i++ {
				tm.LockAcquire(1)
				tm.WriteI64(r.Base, tm.ReadI64(r.Base)+1)
				tm.LockRelease(1)
			}
			tm.Barrier(1)
			if tm.ProcID() == 0 {
				got = tm.ReadI64(r.Base)
			}
		})
		if got != want {
			t.Fatalf("treadmarks: %d, want %d", got, want)
		}
	})

	t.Run("anl", func(t *testing.T) {
		s, err := anl.Boot(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		var got int64
		s.MainEnv(func(a *anl.ANL) {
			gm := a.GMalloc(hamster.PageSize)
			lock := a.LockInit()
			work := func(w *anl.ANL) {
				for i := 0; i < perWorker; i++ {
					w.Lock(lock)
					w.WriteI64(gm, w.ReadI64(gm)+1)
					w.Unlock(lock)
				}
			}
			for i := 1; i < nodes; i++ {
				a.Create(work)
			}
			work(a)
			a.WaitForEnd(nodes - 1)
			a.Lock(lock)
			got = a.ReadI64(gm)
			a.Unlock(lock)
		})
		if got != want {
			t.Fatalf("anl: %d, want %d", got, want)
		}
	})

	t.Run("pthreads", func(t *testing.T) {
		s, err := pthreads.Boot(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		var got int64
		s.Main(func(pt *pthreads.PT) {
			addr := pt.Malloc(hamster.PageSize)
			m := pt.MutexInit()
			work := func(w *pthreads.PT) int64 {
				for i := 0; i < perWorker; i++ {
					w.MutexLock(m)
					w.WriteI64(addr, w.ReadI64(addr)+1)
					w.MutexUnlock(m)
				}
				return 0
			}
			var ths []*pthreads.Thread
			for i := 1; i < nodes; i++ {
				th, err := pt.Create(work)
				if err != nil {
					panic(err)
				}
				ths = append(ths, th)
			}
			work(pt)
			for _, th := range ths {
				pt.Join(th)
			}
			pt.MutexLock(m)
			got = pt.ReadI64(addr)
			pt.MutexUnlock(m)
		})
		if got != want {
			t.Fatalf("pthreads: %d, want %d", got, want)
		}
	})

	t.Run("win32", func(t *testing.T) {
		s, err := win32.Boot(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		var got int64
		s.Main(func(w *win32.W32) {
			addr := w.VirtualAlloc(hamster.PageSize)
			m := w.CreateMutex()
			work := func(wt *win32.W32) int64 {
				for i := 0; i < perWorker; i++ {
					wt.WaitForSingleObject(m, win32.Infinite)
					wt.WriteI64(addr, wt.ReadI64(addr)+1)
					wt.ReleaseMutex(m)
				}
				return 0
			}
			var hs []win32.Handle
			for i := 1; i < nodes; i++ {
				th, err := w.CreateThread(work)
				if err != nil {
					panic(err)
				}
				hs = append(hs, th)
			}
			work(w)
			w.WaitForMultipleObjects(hs, true, win32.Infinite)
			w.WaitForSingleObject(m, win32.Infinite)
			got = w.ReadI64(addr)
			w.ReleaseMutex(m)
		})
		if got != want {
			t.Fatalf("win32: %d, want %d", got, want)
		}
	})

	t.Run("shmem", func(t *testing.T) {
		s, err := shmem.Boot(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		var got int64
		s.Run(func(pe *shmem.PE) {
			ctr := pe.Malloc(8)
			pe.BarrierAll()
			for i := 0; i < perWorker; i++ {
				pe.AtomicAddI64(ctr, 1, 0)
			}
			pe.BarrierAll()
			if pe.MyPE() == 0 {
				got = pe.AtomicFetchAddI64(ctr, 0, 0)
			}
		})
		if got != want {
			t.Fatalf("shmem: %d, want %d", got, want)
		}
	})

	t.Run("openmp", func(t *testing.T) {
		s, err := openmp.Boot(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		var got int64
		s.Parallel(func(o *openmp.OMP) {
			acc := o.Shared(hamster.PageSize)
			for i := 0; i < perWorker; i++ {
				o.Critical(0, func() {
					o.WriteI64(acc, o.ReadI64(acc)+1)
				})
			}
			o.Barrier()
			o.Master(func() { got = o.ReadI64(acc) })
		})
		if got != want {
			t.Fatalf("openmp: %d, want %d", got, want)
		}
	})
}
