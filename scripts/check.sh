#!/bin/sh
# Full local verification: formatting, build, vet, and the test suite
# under the race detector. This is the gate the bulk-access fast path and
# the perfmon instrumentation must keep green — the block API and the
# per-word loops must stay observably identical (TestBlockWordEquivalence),
# the paper's figure shapes must hold, and every node's virtual-time
# attribution must sum exactly to its clock on all four substrates
# (TestAttributionInvariantAllSubstrates).
set -eux

cd "$(dirname "$0")/.."

# gofmt gate: fail loudly if any file is unformatted.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...

# Package-docs gate: every internal package must carry a proper
# "// Package <name> ..." doc comment (role, paper reference, and its
# concurrency/virtual-time contract live there).
for dir in internal/*/; do
    pkg=$(basename "$dir")
    if ! grep -qr "^// Package $pkg " "$dir"*.go; then
        echo "missing package doc comment for internal/$pkg" >&2
        exit 1
    fi
done

# ARCHITECTURE.md gate: the system map must only name internal packages
# that actually exist — a renamed or deleted package must take its
# documentation with it.
for pkg in $(grep -o 'internal/[a-z0-9]*' ARCHITECTURE.md | sort -u); do
    if [ ! -d "$pkg" ]; then
        echo "ARCHITECTURE.md names nonexistent package $pkg" >&2
        exit 1
    fi
done

# The attribution invariant is the load-bearing contract of the perfmon
# subsystem; run it by name under the race detector so a failure is
# unmistakable before the full suite starts.
go test -race -run 'TestAttributionInvariantAllSubstrates' ./internal/perfmon/

# The crash-recovery acceptance run is the checkpoint subsystem's
# load-bearing contract (bit-identical checksums across crash, rollback,
# and replay); run it by name under the race detector before the full
# suite for the same unmistakable-failure property.
go test -race -run 'TestCrashRecoveryKernels' ./internal/bench/

# Bench-identity gate: aggregation off must be bit-identical to the
# committed BENCH baselines (see scripts/benchcheck.sh — which also runs
# the BENCH_5 baseline cross-check and the parallel-runner byte-identity
# gate), and aggregation on must never move a checksum on any substrate.
sh scripts/benchcheck.sh
go test -race -run 'TestAggregationEquivalence' ./internal/bench/

# Hierarchical-synchronization gate: at 64 nodes the substrates switch
# to tree barriers and distributed lock queues; kernels must keep the
# scope/flat reference checksum on every engine and topology, including
# under a seeded lossy-wire fault campaign — run under the race detector
# because the lock queues' hint chains are touched from every node
# goroutine.
go test -race -run 'TestHierSyncKernels64|TestHierSyncFaults64' ./internal/bench/
go test -race -run 'TestDLockMutualExclusion64' ./internal/hsync/

# Consistency-engine conformance gate: the default engine must pass the
# whole litmus battery under the race detector (the other engines and the
# broken-engine negative control run in the same package's full suite).
go test -race -run 'TestLitmusDefaultEngine|TestLitmusCatchesBrokenEngine' ./internal/conscheck/

# Serve-conformance gate: the server workloads (sharded KV, pipeline,
# sync log) must produce the identical checksum AND identical latency
# quantiles on every substrate and every consistency engine — the serve
# fabric's portability contract. Run under the race detector because the
# SPSC rings and shard latches are touched from every node goroutine.
go test -race -run 'TestServeEngineConformance' ./internal/serve/

# Parallel-node identity gate: Config.ParallelNodes swaps the reference
# scheduler for the conservative lookahead engine, and nothing modeled
# may move. TestPNodesIdentity pins checksums, clocks, traffic, and
# perfmon event streams at 2/8/64 nodes; the determinism-stress pair
# replays a seeded 5%-drop campaign and a mid-traffic crash/recovery
# byte-identically. Run under the race detector because the gate is
# exactly the machinery that lets node goroutines run concurrently.
go test -race -run 'TestPNodesIdentity|TestPNodesFaultDeterminism|TestPNodesCrashRecoveryDeterminism' ./internal/bench/

# Allocation gates: the pooled hot paths must not allocate in steady
# state (page fetch and message send at exactly 0 allocs/op; diff flush
# with zero marginal cost per page). Plain mode only — the race runtime
# inserts its own allocations and would drown the signal.
go test -run 'ZeroAlloc' ./internal/bench/

# The pooled-buffer ownership chain must survive concurrent
# fetch/evict/invalidate/flush churn under the race detector (also part
# of the full suite below; named here so a pool regression is
# unmistakable).
go test -race -run 'TestPooledBufferAliasing' ./internal/swdsm/

go test -race ./...
