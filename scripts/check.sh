#!/bin/sh
# Full local verification: build, vet, and the test suite under the race
# detector. This is the gate the bulk-access fast path must keep green —
# the block API and the per-word loops must stay observably identical
# (TestBlockWordEquivalence) and the paper's figure shapes must hold.
#
# Known flake: TestFigure2OverheadIsSingleDigit's WATER 64 row compares
# two lock-heavy runs whose virtual times depend on goroutine scheduling;
# the race detector perturbs scheduling enough to push the overhead out
# of bounds in either direction (it does so on the seed tree as well).
# Rerun on failure there; all other tests are deterministic.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
