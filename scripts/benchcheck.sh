#!/bin/sh
# Bench-identity gate: the aggregation layer's off mode must cost exactly
# what the committed baselines cost. TestAggregationOffIdentity replays
# the standard kernel set and compares against BENCH_2.json (bare
# substrate) and BENCH_3.json (core services): checksums bit-exact,
# virtual times within 0.1% (goroutine scheduling can shift a stolen
# handler charge between nodes by ±15µs; that wobble predates the
# aggregation layer). Run plain (no -race): the pinned numbers are what
# ships in the JSON files — identity is about virtual time, not wall
# clock.
set -eux

cd "$(dirname "$0")/.."

go test -run 'TestAggregationOffIdentity' ./internal/bench/
