#!/bin/sh
# Bench-identity gate: the aggregation layer's off mode must cost exactly
# what the committed baselines cost. TestAggregationOffIdentity replays
# the standard kernel set and compares against BENCH_2.json (bare
# substrate) and BENCH_3.json (core services): checksums bit-exact,
# virtual times within 0.1% (goroutine scheduling can shift a stolen
# handler charge between nodes by ±15µs; that wobble predates the
# aggregation layer). Run plain (no -race): the pinned numbers are what
# ships in the JSON files — identity is about virtual time, not wall
# clock.
#
# Two further identity gates ride along, both plain-mode for the same
# reason:
#   - TestWalltimeBaselineIdentity: the committed BENCH_5.json (wall-time
#     suite) must carry BENCH_2's and BENCH_4's virtual times, checksums,
#     and message counts verbatim — its wall and allocation readings are
#     new, its physics are not.
#   - TestParallelRunnerByteIdentity: the cell-parallel campaign runner
#     must emit JSON byte-identical to -parallel 1 after zeroing wall
#     readings and normalizing the ±15µs virtual-time wobble (all
#     discrete fields exactly equal), including under a seeded 5%-drop
#     fault campaign.
#   - TestEngineDefaultIdentity: selecting no consistency engine must run
#     the exact pre-engine-interface protocol — default construction and
#     an explicit "scope" selection are bit-identical, and the committed
#     BENCH_6.json scope rows replay with checksums and message counts
#     exact (virtual times within the same 0.1%).
#   - TestTopologyFlatIdentity: the topology-aware fabric's flat preset
#     must be bit-identical to the pre-topology network on both the bare
#     substrate (BENCH_6) and core-services (BENCH_2/BENCH_4) measurement
#     paths — checksums, virtual times, and message counts exactly equal.
#   - TestServeParallelByteIdentity: the serve campaign carries no wall
#     or virtual readings at all, so its cell-parallel JSON must equal
#     -parallel 1 byte for byte with ZERO normalization, and the
#     committed BENCH_8.json results must replay field for field.
#   - TestPNodesScaling256Identity: the BENCH_7 headline cell (sor-opt
#     strong, scope engine, flat topology, 256 nodes) must replay its
#     committed checksum bit for bit under the conservative parallel
#     engine (Config.ParallelNodes), with the gated run's virtual wall
#     clock inside the hierarchical-sync wobble band of the sequential
#     one.
set -eux

cd "$(dirname "$0")/.."

go test -run 'TestAggregationOffIdentity|TestWalltimeBaselineIdentity|TestParallelRunnerByteIdentity|TestEngineDefaultIdentity|TestTopologyFlatIdentity|TestServeParallelByteIdentity|TestPNodesScaling256Identity' ./internal/bench/
