module hamster

go 1.22
