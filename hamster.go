// Package hamster is the public interface of the HAMSTER framework — a
// reproduction of "A Framework for Portable Shared Memory Programming"
// (Schulz & McKee, IPDPS 2003) as a Go library.
//
// HAMSTER decouples shared memory programming models from base
// architectures. One core middleware (the five management modules of §4.2:
// Memory, Consistency, Synchronization, Task, and Cluster Control
// management, plus per-module performance monitoring) runs on top of three
// very different platforms:
//
//   - an SMP with hardware cache coherence,
//   - a hybrid hardware/software DSM (SCI-VM-like NUMA cluster), and
//   - a pure software DSM (JiaJia-like Scope Consistency over Ethernet),
//
// and underneath ten programming models (package models/...): SPMD,
// SMP/SPMD, ANL macros, TreadMarks, HLRC, JiaJia, POSIX threads, Win32
// threads, the Cray shmem one-sided API, and an OpenMP-style fork-join
// extension. Applications written against any model run unmodified on any
// platform; only the Config changes.
//
// The platforms are simulated in-process: every node is a goroutine with a
// virtual clock, and memory, protocol, and network activity advance the
// clocks by calibrated costs (see internal/machine). Protocol state is
// real — a consistency bug yields wrong answers, not just wrong timings.
//
// Quickstart:
//
//	rt, err := hamster.New(hamster.Config{
//		Platform: hamster.SWDSM,
//		Nodes:    4,
//	})
//	if err != nil { ... }
//	defer rt.Close()
//	rt.Run(func(e *hamster.Env) {
//		r, _ := e.Mem.Alloc(4096, hamster.AllocOpts{Name: "acc", Collective: true})
//		lock := 0
//		if e.ID() == 0 {
//			lock = e.Sync.NewLock()
//		}
//		e.Sync.Barrier()
//		e.Sync.Lock(lock)
//		e.WriteF64(r.Base, e.ReadF64(r.Base)+1)
//		e.Sync.Unlock(lock)
//		e.Sync.Barrier()
//	})
package hamster

import (
	"hamster/internal/conscheck"
	"hamster/internal/consengine"
	"hamster/internal/core"
	"hamster/internal/machine"
	"hamster/internal/memsim"
	"hamster/internal/platform"
	"hamster/internal/simnet"
	"hamster/internal/swdsm"
	"hamster/internal/vclock"
)

// Core types, re-exported for applications and programming models.
type (
	// Config selects and parameterizes the base architecture.
	Config = core.Config
	// Runtime is one HAMSTER instance.
	Runtime = core.Runtime
	// Env is one node's handle on the HAMSTER interface.
	Env = core.Env
	// AllocOpts parameterizes global allocation.
	AllocOpts = core.AllocOpts
	// Event is a sticky cluster-wide event signal.
	Event = core.Event
	// CondVar is a non-sticky condition variable.
	CondVar = core.CondVar
	// Semaphore is a cluster-wide counting semaphore.
	Semaphore = core.Semaphore
	// Task is a joinable forwarded task.
	Task = core.Task
	// Module identifies a management module for monitoring.
	Module = core.Module
	// ConsModel names a memory consistency model.
	ConsModel = core.ConsModel
	// NodeParams describes a node for parameter queries.
	NodeParams = core.NodeParams
	// TraceRecorder collects execution traces for consistency checking.
	TraceRecorder = core.TraceRecorder
	// ConsistencyReport is the result of the formal consistency check
	// (vector-clock race detection + lockset discipline, §6).
	ConsistencyReport = conscheck.Report
	// ConsistencyRace is one detected data race.
	ConsistencyRace = conscheck.Race

	// Addr is a global memory address.
	Addr = memsim.Addr
	// Region is one global allocation.
	Region = memsim.Region
	// Policy is a memory distribution annotation.
	Policy = memsim.Policy
	// PlatformKind names a base architecture.
	PlatformKind = platform.Kind
	// Caps describes a substrate's memory system.
	Caps = platform.Caps
	// SubstrateStats are per-node substrate counters.
	SubstrateStats = platform.Stats
	// MachineParams is the cost model of the simulated testbed.
	MachineParams = machine.Params
	// MessagingMode selects the §3.3 messaging integration.
	MessagingMode = machine.MessagingMode
	// Aggregation configures the software DSM's protocol aggregation
	// layer (Config.SWDSMAggregation): batched diff flush, write-notice
	// piggybacking, adaptive prefetch. Zero value = off, bit-identical
	// to the baseline protocol.
	Aggregation = swdsm.Aggregation

	// Time is virtual nanoseconds since simulation start.
	Time = vclock.Time
	// Duration is a span of virtual time.
	Duration = vclock.Duration
)

// Base architectures.
const (
	// SMP is a hardware-coherent shared memory multiprocessor.
	SMP = platform.SMP
	// HybridDSM is an SCI-VM-like NUMA cluster.
	HybridDSM = platform.HybridDSM
	// SWDSM is a JiaJia-like software DSM over Ethernet.
	SWDSM = platform.SWDSM
)

// Distribution policies.
const (
	// Block splits a region into contiguous per-node chunks.
	Block = memsim.Block
	// Cyclic places consecutive pages on consecutive nodes.
	Cyclic = memsim.Cyclic
	// FirstTouch assigns a page's home at first access.
	FirstTouch = memsim.FirstTouch
	// Fixed places all pages on one node.
	Fixed = memsim.Fixed
)

// Messaging integration modes.
const (
	// Coalesced is HAMSTER's single shared messaging layer (§3.3).
	Coalesced = machine.Coalesced
	// Separate models unintegrated messaging stacks (native baseline).
	Separate = machine.Separate
)

// Management modules (monitoring keys).
const (
	ModMem     = core.ModMem
	ModCons    = core.ModCons
	ModSync    = core.ModSync
	ModTask    = core.ModTask
	ModCluster = core.ModCluster
)

// Consistency models.
const (
	Sequential = core.Sequential
	Processor  = core.Processor
	Release    = core.Release
	Scope      = core.Scope
	Entry      = core.Entry
)

// PageSize is the DSM page size in bytes.
const PageSize = memsim.PageSize

// WordSize is the accessor granularity in bytes.
const WordSize = memsim.WordSize

// New builds a runtime for the configured platform.
func New(cfg Config) (*Runtime, error) { return core.New(cfg) }

// EngineNames lists the selectable software-DSM consistency engines
// (Config.Engine): "scope" (the default home-based Scope Consistency
// protocol), "eager-rc" (eager Release Consistency), and "ivy"
// (write-invalidate with distributed dynamic ownership, sequential
// consistency).
func EngineNames() []string { return consengine.Names() }

// TopologyNames lists the simulated switch-fabric presets accepted by
// Config.Topology: "flat" (the all-to-all legacy network), "rack"
// (top-of-rack switches with oversubscribed uplinks), and "fattree"
// (three switch tiers with full bisection bandwidth).
func TopologyNames() []string { return simnet.TopologyNames() }

// DefaultParams returns the cost model calibrated to the paper's testbed
// (four dual-Xeon nodes, SCI + switched Fast Ethernet).
func DefaultParams() MachineParams { return machine.Default() }

// ClusterReport renders the monitoring summary of every node.
func ClusterReport(rt *Runtime) string { return core.ClusterReport(rt) }
