// SOR three ways: the §5.4 portability experiment.
//
// The identical SOR solver (internal/apps, written once against the
// Machine interface) runs on all three base architectures — hardware DSM
// (SMP), hybrid DSM (SCI-VM-like), and software DSM (JiaJia-like) —
// switched purely by configuration, and once more through a cluster
// configuration file to show the unified-startup path (§3.3). The numeric
// checksum must agree everywhere; the virtual times show each platform's
// character.
//
// Run:
//
//	go run ./examples/sor
package main

import (
	"fmt"
	"strings"

	"hamster"
	"hamster/internal/apps"
	"hamster/internal/cluster"
	"hamster/models/jiajia"
)

const (
	gridN = 128
	iters = 4
	nodes = 4
)

func main() {
	kernel := func(m apps.Machine) apps.Result {
		return apps.SOR(m, gridN, iters, true)
	}

	fmt.Printf("SOR %dx%d, %d iterations, %d nodes — identical binary, three platforms\n\n",
		gridN, gridN, iters, nodes)

	for _, kind := range []hamster.PlatformKind{hamster.SMP, hamster.HybridDSM, hamster.SWDSM} {
		sys, err := jiajia.Boot(hamster.Config{Platform: kind, Nodes: nodes})
		if err != nil {
			panic(err)
		}
		results := apps.RunOnJia(sys, kernel)
		st := sys.Runtime().Env(1).Mon.Substrate()
		fmt.Printf("%-18s check=%.6f  time=%-12v faults=%-4d diffs=%-4d remote-reads=%d\n",
			kind.String(), results[0].Check, apps.MaxTotal(results),
			st.PageFaults, st.DiffsCreated, st.RemoteReads)
		sys.Shutdown()
	}

	// The same run driven by a configuration file (§3.3 unified startup).
	conf := `
platform  = software-dsm
messaging = coalesced
node = smile0
node = smile1
node = smile2
node = smile3
`
	fileCfg, err := cluster.Parse(strings.NewReader(conf))
	if err != nil {
		panic(err)
	}
	sys, err := jiajia.Boot(fileCfg.RuntimeConfig())
	if err != nil {
		panic(err)
	}
	defer sys.Shutdown()
	results := apps.RunOnJia(sys, kernel)
	fmt.Printf("\nvia config file (%d nodes, %s): check=%.6f time=%v\n",
		len(fileCfg.Nodes), "software-dsm", results[0].Check, apps.MaxTotal(results))
}
