// One-sided histogramming with the Cray SHMEM model.
//
// Each PE classifies a slice of synthetic samples into buckets and pushes
// its counts into PE 0's histogram with one-sided atomic adds — no receive
// code anywhere, the defining property of the put/get model family that
// HAMSTER supports at the far end of its spectrum (§5.2). A reduction and
// a broadcast then give every PE the total count for verification.
//
// Run:
//
//	go run ./examples/shmem_histogram
package main

import (
	"fmt"

	"hamster"
	"hamster/models/shmem"
)

const (
	pes     = 4
	buckets = 16
	samples = 100_000
)

func main() {
	sys, err := shmem.Boot(hamster.Config{Platform: hamster.HybridDSM, Nodes: pes})
	if err != nil {
		panic(err)
	}
	defer sys.Shutdown()

	sys.Run(func(pe *shmem.PE) {
		hist := pe.Malloc(buckets * 8) // symmetric: one instance per PE
		pe.BarrierAll()

		// Classify this PE's share of a deterministic sample stream and
		// accumulate into PE 0's histogram instance, one-sidedly.
		counts := make([]int64, buckets)
		for i := pe.MyPE(); i < samples; i += pe.NPEs() {
			v := (i*2654435761 + 12345) % 1_000_003 // cheap hash stream
			counts[v%buckets]++
		}
		pe.Compute(4 * samples / uint64(pe.NPEs()))
		for b := 0; b < buckets; b++ {
			if counts[b] != 0 {
				pe.AtomicAddI64(hist.Index(b), counts[b], 0)
			}
		}
		pe.BarrierAll()

		// Verify: PE 0 sums its instance; everyone cross-checks via a
		// collective reduction of their local sample counts.
		var local int64
		for _, c := range counts {
			local += c
		}
		total := pe.SumToAllF64(float64(local))
		if pe.MyPE() == 0 {
			var got int64
			for b := 0; b < buckets; b++ {
				got += pe.GetI64(hist.Index(b), 0)
			}
			fmt.Printf("histogram total on PE 0: %d (reduced: %.0f, expected: %d)\n",
				got, total, samples)
			fmt.Println("\nbucket counts:")
			for b := 0; b < buckets; b++ {
				c := pe.GetI64(hist.Index(b), 0)
				fmt.Printf("  %2d: %6d %s\n", b, c, bar(int(c), samples/buckets))
			}
			fmt.Printf("\nvirtual time: %v\n", pe.Env().Now())
		}
		pe.BarrierAll()
	})
}

func bar(n, full int) string {
	w := n * 30 / (full * 2)
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
