// Consistency verification: the §6 "formal mechanism for reasoning about
// memory consistency", live.
//
// The same producer/consumer program is run twice on the software DSM with
// execution tracing enabled. The first version forgets the barrier between
// the writers and the readers — under Scope Consistency the readers may
// legally see stale zeros, and the checker pinpoints the unordered
// accesses. The second version synchronizes properly and is certified
// data-race-free.
//
// Run:
//
//	go run ./examples/verify
package main

import (
	"fmt"

	"hamster"
)

const nodes = 3

func run(name string, withBarrier bool) {
	rt, err := hamster.New(hamster.Config{Platform: hamster.SWDSM, Nodes: nodes})
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	rt.StartTrace()
	rt.Run(func(e *hamster.Env) {
		r, err := e.Mem.Alloc(hamster.PageSize, hamster.AllocOpts{
			Name: "shared", Policy: hamster.Block, Collective: true,
		})
		if err != nil {
			panic(err)
		}
		// Every node writes one slot...
		e.WriteF64(r.Base+hamster.Addr(8*e.ID()), float64(e.ID()+1))
		if withBarrier {
			e.Sync.Barrier()
		}
		// ...then reads everyone's slots.
		sum := 0.0
		for n := 0; n < e.N(); n++ {
			sum += e.ReadF64(r.Base + hamster.Addr(8*n))
		}
		_ = sum
	})
	rep := rt.CheckConsistency()

	fmt.Printf("=== %s ===\n%s\n", name, rep)
}

func main() {
	run("missing barrier (racy)", false)
	run("with barrier (correct)", true)
	fmt.Println("The checker uses vector-clock happens-before analysis plus")
	fmt.Println("Eraser-style locksets over the trace the core records — run any")
	fmt.Println("benchmark with `hamsterrun -verify` to certify it the same way.")
}
