// A distributed software pipeline with the POSIX-threads model.
//
// Three pipeline stages run as threads pinned to different cluster nodes
// (pthread_create forwarded to the target node — the §5.2 forwarding
// mechanism). Stages hand work items through shared-memory ring buffers
// guarded by a distributed mutex + condition variable pair, exactly like a
// local pthreads pipeline — the point of the model is that the same
// idioms work across a cluster.
//
// Stage 0 produces integers, stage 1 squares them, stage 2 accumulates.
//
// Run:
//
//	go run ./examples/threads_pipeline
package main

import (
	"fmt"

	"hamster"
	"hamster/models/pthreads"
)

const (
	items    = 200
	ringSize = 8
)

// ring is a shared-memory ring buffer: head, tail, and slots live in
// global memory; a mutex+cond pair coordinates the two sides.
type ring struct {
	base hamster.Addr // [0]=head, [1]=tail, [2..2+ringSize)=slots
	m    *pthreads.Mutex
	c    *pthreads.Cond
}

func newRing(pt *pthreads.PT) *ring {
	return &ring{base: pt.Malloc(hamster.PageSize), m: pt.MutexInit(), c: pt.CondInit()}
}

func (r *ring) push(pt *pthreads.PT, v int64) {
	pt.MutexLock(r.m)
	for pt.ReadI64(r.base+8)-pt.ReadI64(r.base) >= ringSize {
		pt.CondWait(r.c, r.m)
	}
	tail := pt.ReadI64(r.base + 8)
	pt.WriteI64(r.base+hamster.Addr(16+8*(tail%ringSize)), v)
	pt.WriteI64(r.base+8, tail+1)
	pt.CondBroadcast(r.c)
	pt.MutexUnlock(r.m)
}

func (r *ring) pop(pt *pthreads.PT) int64 {
	pt.MutexLock(r.m)
	for pt.ReadI64(r.base+8) == pt.ReadI64(r.base) {
		pt.CondWait(r.c, r.m)
	}
	head := pt.ReadI64(r.base)
	v := pt.ReadI64(r.base + hamster.Addr(16+8*(head%ringSize)))
	pt.WriteI64(r.base, head+1)
	pt.CondBroadcast(r.c)
	pt.MutexUnlock(r.m)
	return v
}

func main() {
	sys, err := pthreads.Boot(hamster.Config{Platform: hamster.HybridDSM, Nodes: 3})
	if err != nil {
		panic(err)
	}
	defer sys.Shutdown()

	sys.Main(func(pt *pthreads.PT) {
		aToB := newRing(pt)
		bToC := newRing(pt)

		squarer, err := pt.CreateOn(1, func(w *pthreads.PT) int64 {
			for {
				v := aToB.pop(w)
				if v < 0 {
					bToC.push(w, -1)
					return 0
				}
				w.Compute(2)
				bToC.push(w, v*v)
			}
		})
		if err != nil {
			panic(err)
		}
		summer, err := pt.CreateOn(2, func(w *pthreads.PT) int64 {
			var sum int64
			for {
				v := bToC.pop(w)
				if v < 0 {
					return sum
				}
				sum += v
			}
		})
		if err != nil {
			panic(err)
		}

		// The main thread is the producer (stage 0 on node 0).
		for i := int64(1); i <= items; i++ {
			aToB.push(pt, i)
		}
		aToB.push(pt, -1) // poison pill

		pt.Join(squarer)
		got := pt.Join(summer)
		want := int64(items) * (items + 1) * (2*items + 1) / 6 // sum of squares
		fmt.Printf("pipeline result: %d (want %d) — stages on nodes 0, %d, %d\n",
			got, want, squarer.Node(), summer.Node())
		fmt.Printf("virtual time: %v\n", pt.Env().Now())
		if got != want {
			panic("pipeline result mismatch")
		}
	})
}
