// Quickstart: the HAMSTER core API in one page.
//
// Four simulated nodes cooperatively estimate pi by Monte-Carlo-free
// numeric integration: each node integrates its stripe, accumulates into
// a lock-protected global cell, and node 0 prints the result plus the
// monitoring counters that the Performance Monitoring module (§4.3)
// maintains per management module.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"hamster"
)

func main() {
	rt, err := hamster.New(hamster.Config{
		Platform: hamster.SWDSM, // try hamster.SMP or hamster.HybridDSM
		Nodes:    4,
	})
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	const intervals = 1_000_000
	var lock int

	rt.Run(func(e *hamster.Env) {
		// Collective allocation: every node gets the same region.
		acc, err := e.Mem.Alloc(hamster.PageSize, hamster.AllocOpts{
			Name: "pi.acc", Policy: hamster.Fixed, Collective: true,
		})
		if err != nil {
			panic(err)
		}
		if e.ID() == 0 {
			lock = e.Sync.NewLock()
		}
		e.Sync.Barrier()

		// Each node integrates a stripe of 4/(1+x^2).
		h := 1.0 / intervals
		sum := 0.0
		for i := e.ID(); i < intervals; i += e.N() {
			x := h * (float64(i) + 0.5)
			sum += 4.0 / (1.0 + x*x)
		}
		e.Compute(6 * intervals / uint64(e.N())) // charge the flops

		// Lock-protected global accumulation.
		e.Sync.Lock(lock)
		e.WriteF64(acc.Base, e.ReadF64(acc.Base)+sum*h)
		e.Sync.Unlock(lock)
		e.Sync.Barrier()

		if e.ID() == 0 {
			fmt.Printf("pi ≈ %.9f\n", e.ReadF64(acc.Base))
			fmt.Printf("virtual time: %v on %v\n\n", e.Now(), hamster.SWDSM)
			fmt.Print(e.Mon.Report())
		}
	})
}
