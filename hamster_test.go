package hamster_test

import (
	"math"
	"testing"

	"hamster"
)

// TestQuickstart exercises the doc-comment example end to end on every
// platform: the public facade must be sufficient for a complete program.
func TestQuickstart(t *testing.T) {
	for _, kind := range []hamster.PlatformKind{hamster.SMP, hamster.HybridDSM, hamster.SWDSM} {
		t.Run(kind.String(), func(t *testing.T) {
			rt, err := hamster.New(hamster.Config{Platform: kind, Nodes: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()

			const intervals = 100_000
			var lock int
			var pi float64
			rt.Run(func(e *hamster.Env) {
				acc, err := e.Mem.Alloc(hamster.PageSize, hamster.AllocOpts{
					Name: "pi.acc", Policy: hamster.Fixed, Collective: true,
				})
				if err != nil {
					panic(err)
				}
				if e.ID() == 0 {
					lock = e.Sync.NewLock()
				}
				e.Sync.Barrier()
				h := 1.0 / intervals
				sum := 0.0
				for i := e.ID(); i < intervals; i += e.N() {
					x := h * (float64(i) + 0.5)
					sum += 4.0 / (1.0 + x*x)
				}
				e.Compute(6 * intervals / uint64(e.N()))
				e.Sync.Lock(lock)
				e.WriteF64(acc.Base, e.ReadF64(acc.Base)+sum*h)
				e.Sync.Unlock(lock)
				e.Sync.Barrier()
				if e.ID() == 0 {
					pi = e.ReadF64(acc.Base)
				}
			})
			if math.Abs(pi-math.Pi) > 1e-6 {
				t.Fatalf("pi = %v", pi)
			}
			if rt.MaxTime() == 0 {
				t.Fatal("no virtual time elapsed")
			}
			if rep := hamster.ClusterReport(rt); rep == "" {
				t.Fatal("empty cluster report")
			}
		})
	}
}

// TestFacadeConstants pins the re-exported constant wiring.
func TestFacadeConstants(t *testing.T) {
	if hamster.PageSize != 4096 || hamster.WordSize != 8 {
		t.Fatal("page constants wrong")
	}
	if hamster.SMP.String() != "hardware-dsm(smp)" {
		t.Fatal("platform kinds not wired")
	}
	p := hamster.DefaultParams()
	if p.CPU.FlopNs == 0 {
		t.Fatal("default params empty")
	}
	if hamster.Sequential.String() != "sequential" || hamster.Scope.String() != "scope" {
		t.Fatal("consistency models not wired")
	}
	if hamster.ModSync.String() != "synchronization" {
		t.Fatal("modules not wired")
	}
}
