package win32

import (
	"sync/atomic"
	"testing"

	"hamster"
)

func boot(t testing.TB, kind hamster.PlatformKind, nodes int) *System {
	t.Helper()
	s, err := Boot(hamster.Config{Platform: kind, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestCreateThreadAndWait(t *testing.T) {
	s := boot(t, hamster.SWDSM, 2)
	s.Main(func(w *W32) {
		th, err := w.CreateThread(func(wt *W32) int64 { return 1234 })
		if err != nil {
			panic(err)
		}
		if r := w.WaitForSingleObject(th, Infinite); r != WaitObject0 {
			panic("wait failed")
		}
		code, done := w.GetExitCodeThread(th)
		if !done || code != 1234 {
			panic("exit code wrong")
		}
		w.CloseHandle(th)
	})
}

func TestMutexHandle(t *testing.T) {
	s := boot(t, hamster.SMP, 2)
	s.Main(func(w *W32) {
		addr := w.VirtualAlloc(hamster.PageSize)
		m := w.CreateMutex()
		worker := func(wt *W32) int64 {
			for i := 0; i < 10; i++ {
				wt.WaitForSingleObject(m, Infinite)
				wt.WriteI64(addr, wt.ReadI64(addr)+1)
				wt.ReleaseMutex(m)
			}
			return 0
		}
		th, _ := w.CreateThread(worker)
		worker(w)
		w.WaitForSingleObject(th, Infinite)
		w.WaitForSingleObject(m, Infinite)
		total := w.ReadI64(addr)
		w.ReleaseMutex(m)
		if total != 20 {
			panic("mutex counter wrong")
		}
	})
}

func TestMutexZeroTimeoutPolls(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.Main(func(w *W32) {
		m := w.CreateMutex()
		if w.WaitForSingleObject(m, 0) != WaitObject0 {
			panic("poll on free mutex failed")
		}
		if w.WaitForSingleObject(m, 0) != WaitTimeout {
			panic("poll on held mutex must time out")
		}
		w.ReleaseMutex(m)
	})
}

func TestAutoResetEvent(t *testing.T) {
	s := boot(t, hamster.SWDSM, 2)
	s.Main(func(w *W32) {
		ev := w.CreateEvent(false, false) // auto-reset, unsignaled
		th, _ := w.CreateThread(func(wt *W32) int64 {
			wt.WaitForSingleObject(ev, Infinite)
			return 7
		})
		w.SetEvent(ev)
		if w.WaitForSingleObject(th, Infinite) != WaitObject0 {
			panic("thread never woke")
		}
		// Auto-reset: the signal was consumed.
		if w.WaitForSingleObject(ev, 0) != WaitTimeout {
			panic("auto-reset event still signaled")
		}
	})
}

func TestManualResetEvent(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.Main(func(w *W32) {
		ev := w.CreateEvent(true, true) // manual-reset, initially signaled
		if w.WaitForSingleObject(ev, 0) != WaitObject0 {
			panic("initially signaled event not signaled")
		}
		// Manual reset: still signaled after a wait.
		if w.WaitForSingleObject(ev, 0) != WaitObject0 {
			panic("manual-reset event consumed")
		}
		w.ResetEvent(ev)
		if w.WaitForSingleObject(ev, 0) != WaitTimeout {
			panic("reset event still signaled")
		}
	})
}

func TestSemaphore(t *testing.T) {
	s := boot(t, hamster.SMP, 2)
	s.Main(func(w *W32) {
		sem := w.CreateSemaphore(2, 2)
		if w.WaitForSingleObject(sem, 0) != WaitObject0 {
			panic("first unit missing")
		}
		if w.WaitForSingleObject(sem, 0) != WaitObject0 {
			panic("second unit missing")
		}
		if w.WaitForSingleObject(sem, 0) != WaitTimeout {
			panic("semaphore over-granted")
		}
		if !w.ReleaseSemaphore(sem, 2) {
			panic("release failed")
		}
		if w.ReleaseSemaphore(sem, 1) {
			panic("release beyond max succeeded")
		}
	})
}

func TestCriticalSection(t *testing.T) {
	s := boot(t, hamster.SMP, 2)
	s.Main(func(w *W32) {
		cs := w.InitializeCriticalSection()
		var counter atomic.Int64
		th, _ := w.CreateThread(func(wt *W32) int64 {
			for i := 0; i < 50; i++ {
				wt.EnterCriticalSection(cs)
				counter.Add(1)
				wt.LeaveCriticalSection(cs)
			}
			return 0
		})
		for i := 0; i < 50; i++ {
			w.EnterCriticalSection(cs)
			counter.Add(1)
			w.LeaveCriticalSection(cs)
		}
		w.WaitForSingleObject(th, Infinite)
		if counter.Load() != 100 {
			panic("critical section lost updates")
		}
	})
}

func TestWaitForMultipleObjectsAll(t *testing.T) {
	s := boot(t, hamster.SWDSM, 3)
	s.Main(func(w *W32) {
		var hs []Handle
		for i := 0; i < 2; i++ {
			th, _ := w.CreateThread(func(wt *W32) int64 {
				wt.Compute(1000)
				return 0
			})
			hs = append(hs, th)
		}
		if w.WaitForMultipleObjects(hs, true, Infinite) != WaitObject0 {
			panic("WaitAll failed")
		}
	})
}

func TestPulseEvent(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.Main(func(w *W32) {
		ev := w.CreateEvent(true, false)
		w.PulseEvent(ev)
		// After a pulse with no waiters the event is unsignaled.
		if w.WaitForSingleObject(ev, 0) != WaitTimeout {
			panic("pulse left the event signaled")
		}
	})
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.Main(func(w *W32) {
		before := w.Env().Now()
		w.Sleep(5)
		if w.Env().Elapsed(before) < 5_000_000 {
			panic("Sleep did not advance virtual time")
		}
	})
}

func TestThreadIDs(t *testing.T) {
	s := boot(t, hamster.SMP, 2)
	s.Main(func(w *W32) {
		if w.GetCurrentThreadID() != 0 {
			panic("main thread id wrong")
		}
		th, _ := w.CreateThread(func(wt *W32) int64 { return wt.GetCurrentThreadID() })
		w.WaitForSingleObject(th, Infinite)
		code, _ := w.GetExitCodeThread(th)
		if code == 0 {
			panic("worker thread id must differ from main")
		}
	})
}
