// Package win32 implements a distributed Win32-threads programming model
// on top of HAMSTER (the WIN32 row of Table 2 — the largest port in the
// paper because of the breadth of the handle-based API). Threads, mutexes,
// events, and semaphores are uniform kernel objects waited on through
// WaitForSingleObject/WaitForMultipleObjects, which is exactly what the
// model layer reconstructs from HAMSTER's synchronization services.
//
// Method names mirror the Win32 entry points:
//
//	CreateThread          -> W32.CreateThread / CreateThreadOn
//	ExitThread            -> (return from the thread function)
//	GetCurrentThreadId    -> W32.GetCurrentThreadID
//	WaitForSingleObject   -> W32.WaitForSingleObject
//	WaitForMultipleObjects-> W32.WaitForMultipleObjects
//	CreateMutex           -> W32.CreateMutex
//	ReleaseMutex          -> W32.ReleaseMutex
//	CreateEvent           -> W32.CreateEvent
//	SetEvent / ResetEvent -> W32.SetEvent / ResetEvent
//	PulseEvent            -> W32.PulseEvent
//	CreateSemaphore       -> W32.CreateSemaphore
//	ReleaseSemaphore      -> W32.ReleaseSemaphore
//	InitializeCriticalSection -> W32.InitializeCriticalSection
//	EnterCriticalSection  -> W32.EnterCriticalSection
//	TryEnterCriticalSection -> W32.TryEnterCriticalSection
//	LeaveCriticalSection  -> W32.LeaveCriticalSection
//	Sleep                 -> W32.Sleep
//	CloseHandle           -> W32.CloseHandle
//	GetExitCodeThread     -> W32.GetExitCodeThread
package win32

import (
	"fmt"
	"sync"

	"hamster"
)

// Wait results, mirroring the Win32 constants.
const (
	WaitObject0 = 0
	WaitTimeout = 258
	WaitFailed  = ^uint32(0)
)

// Infinite is the Win32 INFINITE timeout.
const Infinite = ^uint32(0)

// System is one booted distributed-Win32 world.
type System struct {
	rt     *hamster.Runtime
	mu     sync.Mutex
	nextID int64
	nextNd int
}

// Boot starts the model (Threaded mode forced).
func Boot(cfg hamster.Config) (*System, error) {
	cfg.Threaded = true
	rt, err := hamster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("win32: %w", err)
	}
	return &System{rt: rt, nextID: 1, nextNd: 1}, nil
}

// Shutdown stops the model.
func (s *System) Shutdown() { s.rt.Close() }

// Runtime exposes the underlying runtime.
func (s *System) Runtime() *hamster.Runtime { return s.rt }

// Main runs the initial thread on node 0.
func (s *System) Main(main func(w *W32)) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		main(&W32{e: s.rt.Env(0), sys: s, tid: 0})
	}()
	<-done
}

// W32 is one thread's handle on the API surface.
type W32 struct {
	e   *hamster.Env
	sys *System
	tid int64
}

// Handle is a waitable kernel object.
type Handle interface {
	// wait blocks until the object is signaled, consuming the signal
	// where the object type requires it (auto-reset events, mutexes,
	// semaphore units). tryOnly attempts without blocking.
	wait(w *W32, tryOnly bool) bool
	closeHandle()
}

// ThreadHandle is a thread object; signaled when the thread exits.
type ThreadHandle struct {
	tid  int64
	task *hamster.Task
	exit int64
	done bool
	mu   sync.Mutex
}

func (t *ThreadHandle) wait(w *W32, tryOnly bool) bool {
	t.mu.Lock()
	done := t.done
	t.mu.Unlock()
	if done {
		return true
	}
	if tryOnly {
		return false
	}
	code := w.e.Task.Join(t.task)
	t.mu.Lock()
	t.done = true
	t.exit = code
	t.mu.Unlock()
	return true
}

func (t *ThreadHandle) closeHandle() {}

// MutexHandle is a mutex object; "signaled" means acquirable.
type MutexHandle struct {
	lock int
}

func (m *MutexHandle) wait(w *W32, tryOnly bool) bool {
	if tryOnly {
		return w.e.Sync.TryLock(m.lock)
	}
	w.e.Sync.Lock(m.lock)
	return true
}

func (m *MutexHandle) closeHandle() {}

// EventHandle is an event object (manual- or auto-reset).
type EventHandle struct {
	manual bool
	mu     sync.Mutex
	state  bool
	cv     *hamster.CondVar
}

func (ev *EventHandle) wait(w *W32, tryOnly bool) bool {
	ev.mu.Lock()
	for !ev.state {
		if tryOnly {
			ev.mu.Unlock()
			return false
		}
		w.e.Sync.CondWait(ev.cv,
			func() { ev.mu.Unlock() },
			func() { ev.mu.Lock() })
	}
	if !ev.manual {
		ev.state = false // auto-reset consumes the signal
	}
	ev.mu.Unlock()
	return true
}

func (ev *EventHandle) closeHandle() {}

// SemaphoreHandle is a semaphore object.
type SemaphoreHandle struct {
	sem *hamster.Semaphore
}

func (s *SemaphoreHandle) wait(w *W32, tryOnly bool) bool {
	if tryOnly {
		return w.e.Sync.SemTryAcquire(s.sem)
	}
	w.e.Sync.SemAcquire(s.sem)
	return true
}

func (s *SemaphoreHandle) closeHandle() {}

// CreateThread starts a thread on the next node, round-robin.
func (w *W32) CreateThread(fn func(w *W32) int64) (*ThreadHandle, error) {
	w.sys.mu.Lock()
	node := w.sys.nextNd % w.e.N()
	w.sys.nextNd++
	w.sys.mu.Unlock()
	return w.CreateThreadOn(node, fn)
}

// CreateThreadOn starts a thread on an explicit node (the forwarding case
// of §5.2: the creation routine executes on the node the thread runs on).
func (w *W32) CreateThreadOn(node int, fn func(w *W32) int64) (*ThreadHandle, error) {
	w.sys.mu.Lock()
	tid := w.sys.nextID
	w.sys.nextID++
	w.sys.mu.Unlock()
	task, err := w.e.Task.SpawnOn(node, func(e *hamster.Env) int64 {
		return fn(&W32{e: e, sys: w.sys, tid: tid})
	})
	if err != nil {
		return nil, fmt.Errorf("win32: CreateThread: %w", err)
	}
	return &ThreadHandle{tid: tid, task: task}, nil
}

// GetCurrentThreadID returns the caller's thread id.
func (w *W32) GetCurrentThreadID() int64 { return w.tid }

// GetExitCodeThread returns a finished thread's exit code.
func (w *W32) GetExitCodeThread(t *ThreadHandle) (int64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exit, t.done
}

// WaitForSingleObject waits for a handle. Timeout 0 polls; Infinite
// blocks. (Finite nonzero timeouts are not modeled — virtual time has no
// spontaneous progress to time out against.)
func (w *W32) WaitForSingleObject(h Handle, timeoutMs uint32) uint32 {
	if timeoutMs == 0 {
		if h.wait(w, true) {
			return WaitObject0
		}
		return WaitTimeout
	}
	if h.wait(w, false) {
		return WaitObject0
	}
	return WaitFailed
}

// WaitForMultipleObjects with waitAll waits for every handle in order;
// without waitAll it polls for any signaled handle, blocking on the first
// if none is ready (an approximation documented for this model).
func (w *W32) WaitForMultipleObjects(handles []Handle, waitAll bool, timeoutMs uint32) uint32 {
	if waitAll {
		for _, h := range handles {
			if r := w.WaitForSingleObject(h, timeoutMs); r != WaitObject0 {
				return r
			}
		}
		return WaitObject0
	}
	for i, h := range handles {
		if h.wait(w, true) {
			return WaitObject0 + uint32(i)
		}
	}
	if timeoutMs == 0 {
		return WaitTimeout
	}
	h := handles[0]
	if h.wait(w, false) {
		return WaitObject0
	}
	return WaitFailed
}

// CreateMutex creates a mutex object.
func (w *W32) CreateMutex() *MutexHandle {
	return &MutexHandle{lock: w.e.Sync.NewLock()}
}

// ReleaseMutex releases a mutex.
func (w *W32) ReleaseMutex(m *MutexHandle) { w.e.Sync.Unlock(m.lock) }

// CreateEvent creates an event object.
func (w *W32) CreateEvent(manualReset, initialState bool) *EventHandle {
	return &EventHandle{manual: manualReset, state: initialState, cv: w.e.Sync.NewCond()}
}

// SetEvent signals an event.
func (w *W32) SetEvent(ev *EventHandle) {
	ev.mu.Lock()
	ev.state = true
	ev.mu.Unlock()
	w.e.Sync.CondBroadcast(ev.cv)
}

// ResetEvent clears an event.
func (w *W32) ResetEvent(ev *EventHandle) {
	ev.mu.Lock()
	ev.state = false
	ev.mu.Unlock()
}

// PulseEvent signals then immediately resets: current waiters wake, the
// event stays unsignaled.
func (w *W32) PulseEvent(ev *EventHandle) {
	ev.mu.Lock()
	ev.state = true
	ev.mu.Unlock()
	w.e.Sync.CondBroadcast(ev.cv)
	ev.mu.Lock()
	ev.state = false
	ev.mu.Unlock()
}

// CreateSemaphore creates a semaphore object.
func (w *W32) CreateSemaphore(initial, max int) *SemaphoreHandle {
	return &SemaphoreHandle{sem: w.e.Sync.NewSemaphore(initial, max)}
}

// ReleaseSemaphore returns count units; false if the maximum would be
// exceeded.
func (w *W32) ReleaseSemaphore(s *SemaphoreHandle, count int) bool {
	return w.e.Sync.SemRelease(s.sem, count)
}

// CriticalSection is a CRITICAL_SECTION: a cheap intra-program lock
// without consistency actions (Win32 critical sections are process-local;
// the distributed model prices them as raw locks).
type CriticalSection struct {
	raw int
}

// InitializeCriticalSection prepares a critical section.
func (w *W32) InitializeCriticalSection() *CriticalSection {
	return &CriticalSection{raw: w.e.Sync.NewRawLock()}
}

// EnterCriticalSection acquires it.
func (w *W32) EnterCriticalSection(cs *CriticalSection) { w.e.Sync.RawLock(cs.raw) }

// LeaveCriticalSection releases it.
func (w *W32) LeaveCriticalSection(cs *CriticalSection) { w.e.Sync.RawUnlock(cs.raw) }

// Sleep advances this thread's virtual time by ms milliseconds.
func (w *W32) Sleep(ms uint32) {
	w.e.Runtime().Substrate().Clock(w.e.ID()).Advance(hamster.Duration(ms) * 1_000_000)
}

// CloseHandle releases a kernel object.
func (w *W32) CloseHandle(h Handle) { h.closeHandle() }

// ReadF64 loads from shared memory.
func (w *W32) ReadF64(a hamster.Addr) float64 { return w.e.ReadF64(a) }

// WriteF64 stores to shared memory.
func (w *W32) WriteF64(a hamster.Addr, v float64) { w.e.WriteF64(a, v) }

// ReadI64 loads an int64 from shared memory.
func (w *W32) ReadI64(a hamster.Addr) int64 { return w.e.ReadI64(a) }

// WriteI64 stores an int64 to shared memory.
func (w *W32) WriteI64(a hamster.Addr, v int64) { w.e.WriteI64(a, v) }

// VirtualAlloc allocates shared memory.
func (w *W32) VirtualAlloc(bytes uint64) hamster.Addr {
	r, err := w.e.Mem.Alloc(bytes, hamster.AllocOpts{Name: "VirtualAlloc", Policy: hamster.Block})
	if err != nil {
		panic(fmt.Sprintf("win32: VirtualAlloc: %v", err))
	}
	return r.Base
}

// Compute charges local CPU work.
func (w *W32) Compute(flops uint64) { w.e.Compute(flops) }

// Env exposes the raw HAMSTER services.
func (w *W32) Env() *hamster.Env { return w.e }
