package jiajia

import (
	"strings"
	"testing"

	"hamster"
)

func boot(t testing.TB, kind hamster.PlatformKind, nodes int) *System {
	t.Helper()
	s, err := Boot(hamster.Config{Platform: kind, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestPidHosts(t *testing.T) {
	s := boot(t, hamster.SWDSM, 4)
	var pids [4]bool
	s.Run(func(j *Jia) {
		if j.Hosts() != 4 {
			panic("jiahosts wrong")
		}
		pids[j.Pid()] = true
	})
	for i, ok := range pids {
		if !ok {
			t.Fatalf("host %d missing", i)
		}
	}
}

func TestAllocLockBarrier(t *testing.T) {
	s := boot(t, hamster.SWDSM, 3)
	var final int64
	s.Run(func(j *Jia) {
		arr := j.Alloc(hamster.PageSize)
		j.Barrier()
		for i := 0; i < 7; i++ {
			j.Lock(5)
			j.WriteI64(arr, j.ReadI64(arr)+1)
			j.Unlock(5)
		}
		j.Barrier()
		if j.Pid() == 0 {
			j.Lock(5)
			final = j.ReadI64(arr)
			j.Unlock(5)
		}
	})
	if final != 21 {
		t.Fatalf("counter = %d, want 21", final)
	}
}

func TestAlloc3Cyclic(t *testing.T) {
	s := boot(t, hamster.SWDSM, 2)
	s.Run(func(j *Jia) {
		a := j.Alloc3(4*hamster.PageSize, 0)
		j.Barrier()
		// Cyclic placement: page 1 homes on host 1.
		if j.Pid() == 1 {
			j.WriteF64(a+hamster.PageSize, 1.0)
			if st := j.Env().Mon.Substrate(); st.TwinsCreated != 0 {
				panic("cyclic page not local to host 1")
			}
		}
		j.Barrier()
	})
}

func TestCondVars(t *testing.T) {
	s := boot(t, hamster.SWDSM, 2)
	s.Run(func(j *Jia) {
		if j.Pid() == 0 {
			j.Compute(10000)
			j.Setcv(3)
		} else {
			j.Waitcv(3)
		}
		j.Wait()
	})
}

func TestClockAndLockWrap(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.Run(func(j *Jia) {
		j.Compute(1_000_000)
		if j.Clock() <= 0 {
			panic("jia_clock returned no time")
		}
		// Lock ids wrap modulo the table size, like JiaJia's.
		j.Lock(MaxLocks + 2)
		j.Unlock(MaxLocks + 2)
	})
}

func TestErrorPanics(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "boom") {
			t.Fatalf("jia_error did not propagate: %v", r)
		}
	}()
	s.Run(func(j *Jia) {
		j.Error("boom %d", 42)
	})
}

func TestScopeConsistencyThroughModel(t *testing.T) {
	// The JiaJia model on the JiaJia-like substrate: a host's update is
	// visible to another host only after synchronization.
	s := boot(t, hamster.SWDSM, 2)
	s.Run(func(j *Jia) {
		a := j.Alloc(hamster.PageSize)
		j.Barrier()
		if j.Pid() == 0 {
			j.Lock(1)
			j.WriteF64(a, 2.5)
			j.Unlock(1)
		}
		j.Barrier()
		if got := j.ReadF64(a); got != 2.5 {
			panic("update lost across barrier")
		}
		j.Barrier()
	})
}

func TestStatServices(t *testing.T) {
	s := boot(t, hamster.SWDSM, 2)
	s.Run(func(j *Jia) {
		a := j.Alloc(hamster.PageSize)
		j.Barrier()
		j.Startstat()
		if j.Pid() == 1 {
			j.Lock(2)
			j.WriteF64(a, 1)
			j.Unlock(2)
			st := j.Stopstat()
			if st.LockAcquires == 0 || st.Writes == 0 {
				panic("jia_stopstat missed the interval's activity")
			}
			if j.Printstat() == "" {
				panic("jia_printstat empty")
			}
		}
		j.Barrier()
	})
}
