// Package jiajia implements the JiaJia programming model (Hu, Shi, Tang
// 1999) on top of HAMSTER: the jia_* API of the software DSM whose
// benchmark suite the paper evaluates with (§5.1). Calls map almost one to
// one onto HAMSTER services — the paper's Table 2 reports about 6 lines per
// call for this model.
//
// Go method names mirror the original C entry points:
//
//	jia_init     -> Boot / System.Run
//	jia_exit     -> System.Shutdown
//	jiapid       -> Jia.Pid
//	jiahosts     -> Jia.Hosts
//	jia_alloc    -> Jia.Alloc
//	jia_lock     -> Jia.Lock
//	jia_unlock   -> Jia.Unlock
//	jia_barrier  -> Jia.Barrier
//	jia_wait     -> Jia.Wait
//	jia_setcv / jia_waitcv -> Jia.Setcv / Jia.Waitcv
//	jia_clock    -> Jia.Clock
//	jia_error    -> Jia.Error
package jiajia

import (
	"fmt"

	"hamster"
)

// MaxLocks mirrors JiaJia's static lock table size.
const MaxLocks = 64

// MaxCVs mirrors JiaJia's condition-variable table size.
const MaxCVs = 16

// System is one booted JiaJia world.
type System struct {
	rt    *hamster.Runtime
	locks [MaxLocks]int
	cvs   [MaxCVs]*hamster.Event
}

// Boot performs jia_init: it starts the runtime and creates the static
// lock and condition-variable tables.
func Boot(cfg hamster.Config) (*System, error) {
	rt, err := hamster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("jiajia: %w", err)
	}
	s := &System{rt: rt}
	e := rt.Env(0)
	for i := range s.locks {
		s.locks[i] = e.Sync.NewLock()
	}
	for i := range s.cvs {
		s.cvs[i] = e.Sync.NewEvent()
	}
	return s, nil
}

// Shutdown performs jia_exit.
func (s *System) Shutdown() { s.rt.Close() }

// Runtime exposes the underlying runtime.
func (s *System) Runtime() *hamster.Runtime { return s.rt }

// Run executes the application on every host.
func (s *System) Run(main func(j *Jia)) {
	s.rt.Run(func(e *hamster.Env) {
		main(&Jia{e: e, sys: s})
	})
}

// Jia is one host's handle (the jia_* call surface).
type Jia struct {
	e   *hamster.Env
	sys *System
}

// Pid returns jiapid, the host rank.
func (j *Jia) Pid() int { return j.e.ID() }

// Hosts returns jiahosts, the host count.
func (j *Jia) Hosts() int { return j.e.N() }

// Alloc performs jia_alloc: global allocation, block-distributed across
// hosts, synchronous on all hosts (implicit barrier).
func (j *Jia) Alloc(bytes uint64) hamster.Addr {
	r, err := j.e.Mem.Alloc(bytes, hamster.AllocOpts{
		Name: "jia_alloc", Policy: hamster.Block, Collective: true,
	})
	if err != nil {
		j.Error("jia_alloc: %v", err)
	}
	return r.Base
}

// Alloc3 performs jia_alloc3: allocation with an explicit starting host
// (pages placed round-robin starting there; we map it to cyclic placement).
func (j *Jia) Alloc3(bytes uint64, starthost int) hamster.Addr {
	_ = starthost
	r, err := j.e.Mem.Alloc(bytes, hamster.AllocOpts{
		Name: "jia_alloc3", Policy: hamster.Cyclic, Collective: true,
	})
	if err != nil {
		j.Error("jia_alloc3: %v", err)
	}
	return r.Base
}

// Lock performs jia_lock.
func (j *Jia) Lock(id int) { j.e.Sync.Lock(j.sys.locks[id%MaxLocks]) }

// Unlock performs jia_unlock.
func (j *Jia) Unlock(id int) { j.e.Sync.Unlock(j.sys.locks[id%MaxLocks]) }

// Barrier performs jia_barrier.
func (j *Jia) Barrier() { j.e.Sync.Barrier() }

// Setcv performs jia_setcv: signal a condition variable.
func (j *Jia) Setcv(cv int) { j.e.Sync.Signal(j.sys.cvs[cv%MaxCVs]) }

// Waitcv performs jia_waitcv: wait on a condition variable.
func (j *Jia) Waitcv(cv int) { j.e.Sync.Wait(j.sys.cvs[cv%MaxCVs]) }

// Wait performs jia_wait: a full barrier used as a quiesce point.
func (j *Jia) Wait() { j.e.Sync.Barrier() }

// Clock performs jia_clock: seconds of virtual time.
func (j *Jia) Clock() float64 { return float64(j.e.Now()) / 1e9 }

// Error performs jia_error: report and abort.
func (j *Jia) Error(format string, args ...any) {
	panic(fmt.Sprintf("jiajia: host %d: %s", j.Pid(), fmt.Sprintf(format, args...)))
}

// ReadF64 loads from shared memory (C code dereferences the jia_alloc'd
// pointer; Go spells the access out).
func (j *Jia) ReadF64(a hamster.Addr) float64 { return j.e.ReadF64(a) }

// WriteF64 stores to shared memory.
func (j *Jia) WriteF64(a hamster.Addr, v float64) { j.e.WriteF64(a, v) }

// ReadI64 loads an int64 from shared memory.
func (j *Jia) ReadI64(a hamster.Addr) int64 { return j.e.ReadI64(a) }

// WriteI64 stores an int64 to shared memory.
func (j *Jia) WriteI64(a hamster.Addr, v int64) { j.e.WriteI64(a, v) }

// ReadF64Block loads a contiguous float64 run (the bulk fast path; JiaJia
// C code would memcpy out of the jia_alloc'd region).
func (j *Jia) ReadF64Block(a hamster.Addr, dst []float64) { j.e.ReadF64Block(a, dst) }

// WriteF64Block stores a contiguous float64 run.
func (j *Jia) WriteF64Block(a hamster.Addr, src []float64) { j.e.WriteF64Block(a, src) }

// ReadI64Block loads a contiguous int64 run.
func (j *Jia) ReadI64Block(a hamster.Addr, dst []int64) { j.e.ReadI64Block(a, dst) }

// WriteI64Block stores a contiguous int64 run.
func (j *Jia) WriteI64Block(a hamster.Addr, src []int64) { j.e.WriteI64Block(a, src) }

// Compute charges local CPU work.
func (j *Jia) Compute(flops uint64) { j.e.Compute(flops) }

// Env exposes the raw HAMSTER services.
func (j *Jia) Env() *hamster.Env { return j.e }

// Startstat performs jia_startstat: reset the statistics counters so a
// measurement interval can begin (§4.3 names JiaJia's performance
// statistics among the model-specific monitoring facilities HAMSTER
// generalizes).
func (j *Jia) Startstat() { j.e.Mon.ResetAll() }

// Stopstat performs jia_stopstat: snapshot the interval's counters.
func (j *Jia) Stopstat() hamster.SubstrateStats { return j.e.Mon.Substrate() }

// Printstat performs jia_printstat: render this host's monitoring report.
func (j *Jia) Printstat() string { return j.e.Mon.Report() }

// Errexit performs jia_errexit — jia_error under its other common name.
func (j *Jia) Errexit(format string, args ...any) { j.Error(format, args...) }
