// Package openmp implements an OpenMP-style fork-join programming model
// on top of HAMSTER. The paper names OpenMP "the most notable effort"
// toward shared memory standardization (§1) and claims its model list
// "can be easily extended"; this package is that claim exercised — a
// tenth model, added after the original nine, from the same services.
//
// The mapping follows the OpenMP 1.0 C API:
//
//	#pragma omp parallel     -> System.Parallel
//	omp_get_thread_num       -> OMP.ThreadNum
//	omp_get_num_threads      -> OMP.NumThreads
//	#pragma omp for          -> OMP.For (static) / OMP.ForDynamic
//	#pragma omp critical     -> OMP.Critical
//	#pragma omp single       -> OMP.Single
//	#pragma omp master       -> OMP.Master
//	#pragma omp barrier      -> OMP.Barrier
//	reduction(+:x)           -> OMP.ReduceSumF64
//	omp_set_lock/unset_lock  -> OMP.SetLock / UnsetLock
//	omp_get_wtime            -> OMP.Wtime
//
// Each OpenMP "thread" is one cluster node; shared variables live in
// HAMSTER's global memory, so the same OpenMP-ish program runs on the
// SMP, the hybrid DSM, or the software DSM unchanged.
package openmp

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"hamster"
)

// LockCount sizes the omp_lock_t table.
const LockCount = 32

// System is one booted OpenMP world.
type System struct {
	rt    *hamster.Runtime
	locks [LockCount]int
	ctl   int // raw lock serializing runtime-internal control state

	mu      sync.Mutex
	singles map[int]bool // single-region sequence -> already executed
	nextIdx int          // dynamic-for dispenser
	forSeq  int
}

// Boot starts the model on the configured platform.
func Boot(cfg hamster.Config) (*System, error) {
	rt, err := hamster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("openmp: %w", err)
	}
	s := &System{rt: rt, singles: make(map[int]bool)}
	e := rt.Env(0)
	for i := range s.locks {
		s.locks[i] = e.Sync.NewLock()
	}
	s.ctl = e.Sync.NewRawLock()
	return s, nil
}

// Shutdown stops the model.
func (s *System) Shutdown() { s.rt.Close() }

// Runtime exposes the underlying runtime.
func (s *System) Runtime() *hamster.Runtime { return s.rt }

// Parallel executes fn as a parallel region: one implicit thread per
// node, with the implicit barrier OpenMP puts at the region's end.
func (s *System) Parallel(fn func(o *OMP)) {
	s.rt.Run(func(e *hamster.Env) {
		o := &OMP{e: e, sys: s, singleSeq: new(int)}
		fn(o)
		e.Sync.Barrier()
	})
}

// OMP is one thread's handle inside a parallel region.
type OMP struct {
	e         *hamster.Env
	sys       *System
	singleSeq *int
}

// ThreadNum returns omp_get_thread_num.
func (o *OMP) ThreadNum() int { return o.e.ID() }

// NumThreads returns omp_get_num_threads.
func (o *OMP) NumThreads() int { return o.e.N() }

// Barrier performs #pragma omp barrier.
func (o *OMP) Barrier() { o.e.Sync.Barrier() }

// For runs a statically scheduled worksharing loop over [lo, hi): thread
// t executes the t-th contiguous chunk, with the implicit barrier at the
// end (no nowait clause).
func (o *OMP) For(lo, hi int, body func(i int)) {
	n := hi - lo
	if n < 0 {
		n = 0
	}
	per := (n + o.NumThreads() - 1) / o.NumThreads()
	start := lo + o.ThreadNum()*per
	end := start + per
	if start > hi {
		start = hi
	}
	if end > hi {
		end = hi
	}
	for i := start; i < end; i++ {
		body(i)
	}
	o.e.Sync.Barrier()
}

// ForDynamic runs a dynamically scheduled worksharing loop: threads grab
// chunks of the given size from a shared dispenser until the range is
// exhausted, then hit the implicit barrier. The dispenser handoff is
// priced as a raw lock round trip.
func (o *OMP) ForDynamic(lo, hi, chunk int, body func(i int)) {
	if chunk < 1 {
		chunk = 1
	}
	s := o.sys
	// Reset the dispenser once per loop instance: the first thread to
	// arrive with a fresh sequence number claims the reset.
	o.e.Sync.RawLock(s.ctl)
	if s.forSeq%o.NumThreads() == 0 {
		s.nextIdx = lo
	}
	s.forSeq++
	o.e.Sync.RawUnlock(s.ctl)
	o.e.Sync.Barrier()

	for {
		o.e.Sync.RawLock(s.ctl)
		start := s.nextIdx
		s.nextIdx += chunk
		o.e.Sync.RawUnlock(s.ctl)
		if start >= hi {
			break
		}
		end := start + chunk
		if end > hi {
			end = hi
		}
		for i := start; i < end; i++ {
			body(i)
		}
	}
	o.e.Sync.Barrier()
}

// Critical performs #pragma omp critical (name): a named global mutex
// with consistency semantics around the section.
func (o *OMP) Critical(name int, fn func()) {
	l := o.sys.locks[name%LockCount]
	o.e.Sync.Lock(l)
	fn()
	o.e.Sync.Unlock(l)
}

// Single performs #pragma omp single: exactly one thread executes fn; all
// threads synchronize at the implicit barrier afterwards.
func (o *OMP) Single(fn func()) {
	seq := *o.singleSeq
	*o.singleSeq++
	s := o.sys
	o.e.Sync.RawLock(s.ctl)
	s.mu.Lock()
	mine := !s.singles[seq]
	if mine {
		s.singles[seq] = true
	}
	s.mu.Unlock()
	o.e.Sync.RawUnlock(s.ctl)
	if mine {
		fn()
	}
	// The implicit barrier publishes the single's writes to everyone.
	o.e.Sync.Barrier()
}

// Master performs #pragma omp master: thread 0 executes, no barrier.
func (o *OMP) Master(fn func()) {
	if o.ThreadNum() == 0 {
		fn()
	}
}

// ReduceSumF64 performs reduction(+:x): combines one value per thread and
// returns the total to all of them.
func (o *OMP) ReduceSumF64(v float64) float64 {
	const tagUp, tagDown = 0x0517, 0x0518
	if o.ThreadNum() == 0 {
		acc := v
		for i := 1; i < o.NumThreads(); i++ {
			payload, _, ok := o.e.Cluster.Recv(tagUp)
			if !ok {
				panic("openmp: reduction interrupted")
			}
			acc += getF64(payload)
		}
		o.e.Cluster.Broadcast(tagDown, encF64(acc))
		return acc
	}
	o.e.Cluster.Send(0, tagUp, encF64(v))
	payload, _, ok := o.e.Cluster.Recv(tagDown)
	if !ok {
		panic("openmp: reduction interrupted")
	}
	return getF64(payload)
}

// SetLock performs omp_set_lock.
func (o *OMP) SetLock(i int) { o.e.Sync.Lock(o.sys.locks[i%LockCount]) }

// UnsetLock performs omp_unset_lock.
func (o *OMP) UnsetLock(i int) { o.e.Sync.Unlock(o.sys.locks[i%LockCount]) }

// TestLock performs omp_test_lock.
func (o *OMP) TestLock(i int) bool { return o.e.Sync.TryLock(o.sys.locks[i%LockCount]) }

// Wtime performs omp_get_wtime: seconds of virtual time.
func (o *OMP) Wtime() float64 { return float64(o.e.Now()) / 1e9 }

// Shared allocates shared memory visible to all threads.
func (o *OMP) Shared(bytes uint64) hamster.Addr {
	r, err := o.e.Mem.Alloc(bytes, hamster.AllocOpts{Name: "omp_shared", Policy: hamster.Block, Collective: true})
	if err != nil {
		panic(fmt.Sprintf("openmp: shared alloc: %v", err))
	}
	return r.Base
}

// ReadF64 loads from shared memory.
func (o *OMP) ReadF64(a hamster.Addr) float64 { return o.e.ReadF64(a) }

// WriteF64 stores to shared memory.
func (o *OMP) WriteF64(a hamster.Addr, v float64) { o.e.WriteF64(a, v) }

// ReadI64 loads an int64 from shared memory.
func (o *OMP) ReadI64(a hamster.Addr) int64 { return o.e.ReadI64(a) }

// WriteI64 stores an int64 to shared memory.
func (o *OMP) WriteI64(a hamster.Addr, v int64) { o.e.WriteI64(a, v) }

// Compute charges local CPU work.
func (o *OMP) Compute(flops uint64) { o.e.Compute(flops) }

// Env exposes the raw HAMSTER services.
func (o *OMP) Env() *hamster.Env { return o.e }

func encF64(v float64) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
	return buf
}

func getF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
