package openmp

import (
	"math"
	"sync/atomic"
	"testing"

	"hamster"
)

func boot(t testing.TB, kind hamster.PlatformKind, nodes int) *System {
	t.Helper()
	s, err := Boot(hamster.Config{Platform: kind, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestParallelIdentity(t *testing.T) {
	s := boot(t, hamster.SMP, 4)
	var seen [4]atomic.Bool
	s.Parallel(func(o *OMP) {
		if o.NumThreads() != 4 {
			panic("num_threads wrong")
		}
		seen[o.ThreadNum()].Store(true)
	})
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("thread %d never ran", i)
		}
	}
}

func TestStaticFor(t *testing.T) {
	s := boot(t, hamster.SWDSM, 3)
	const n = 100
	var hits [n]atomic.Int32
	s.Parallel(func(o *OMP) {
		o.For(0, n, func(i int) {
			hits[i].Add(1)
		})
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d executed %d times", i, hits[i].Load())
		}
	}
}

func TestDynamicForCoversRangeExactlyOnce(t *testing.T) {
	s := boot(t, hamster.SMP, 4)
	const n = 137
	var hits [n]atomic.Int32
	s.Parallel(func(o *OMP) {
		o.ForDynamic(0, n, 5, func(i int) {
			hits[i].Add(1)
		})
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d executed %d times", i, hits[i].Load())
		}
	}
}

func TestDynamicForTwoInstances(t *testing.T) {
	// Consecutive dynamic loops must each reset the dispenser.
	s := boot(t, hamster.SMP, 2)
	var first, second atomic.Int32
	s.Parallel(func(o *OMP) {
		o.ForDynamic(0, 20, 3, func(i int) { first.Add(1) })
		o.ForDynamic(0, 30, 4, func(i int) { second.Add(1) })
	})
	if first.Load() != 20 || second.Load() != 30 {
		t.Fatalf("loops covered %d and %d iterations, want 20 and 30", first.Load(), second.Load())
	}
}

func TestCriticalProtectsSharedCounter(t *testing.T) {
	for _, kind := range []hamster.PlatformKind{hamster.SMP, hamster.SWDSM} {
		t.Run(kind.String(), func(t *testing.T) {
			s := boot(t, kind, 3)
			var total int64
			s.Parallel(func(o *OMP) {
				acc := o.Shared(hamster.PageSize)
				for k := 0; k < 10; k++ {
					o.Critical(0, func() {
						o.WriteI64(acc, o.ReadI64(acc)+1)
					})
				}
				o.Barrier()
				o.Master(func() { total = o.ReadI64(acc) })
			})
			if total != 30 {
				t.Fatalf("counter = %d, want 30", total)
			}
		})
	}
}

func TestSingleRunsExactlyOnce(t *testing.T) {
	s := boot(t, hamster.SWDSM, 3)
	var runs atomic.Int32
	s.Parallel(func(o *OMP) {
		for k := 0; k < 4; k++ {
			o.Single(func() { runs.Add(1) })
		}
	})
	if runs.Load() != 4 {
		t.Fatalf("4 single regions ran %d times total, want 4", runs.Load())
	}
}

func TestSinglePublishesToAll(t *testing.T) {
	s := boot(t, hamster.SWDSM, 3)
	s.Parallel(func(o *OMP) {
		x := o.Shared(hamster.PageSize)
		o.Single(func() { o.WriteF64(x, 7.25) })
		if got := o.ReadF64(x); got != 7.25 {
			panic("single's write not visible after implicit barrier")
		}
	})
}

func TestReduction(t *testing.T) {
	s := boot(t, hamster.HybridDSM, 4)
	s.Parallel(func(o *OMP) {
		got := o.ReduceSumF64(float64(o.ThreadNum() + 1))
		if got != 10 {
			panic("reduction wrong")
		}
	})
}

func TestOMPPi(t *testing.T) {
	// The canonical OpenMP example: pi by reduction over a parallel for.
	s := boot(t, hamster.SWDSM, 4)
	const n = 100_000
	var pi float64
	s.Parallel(func(o *OMP) {
		h := 1.0 / n
		local := 0.0
		o.For(0, n, func(i int) {
			x := h * (float64(i) + 0.5)
			local += 4.0 / (1.0 + x*x)
		})
		o.Compute(6 * n / uint64(o.NumThreads()))
		total := o.ReduceSumF64(local * h)
		o.Master(func() { pi = total })
	})
	if math.Abs(pi-math.Pi) > 1e-6 {
		t.Fatalf("pi = %v", pi)
	}
}

func TestLocksAndWtime(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.Parallel(func(o *OMP) {
		if !o.TestLock(3) {
			panic("test_lock on free lock failed")
		}
		if o.TestLock(3) {
			panic("test_lock on held lock succeeded")
		}
		o.UnsetLock(3)
		o.SetLock(3)
		o.UnsetLock(3)
		o.Compute(1_000_000)
		if o.Wtime() <= 0 {
			panic("omp_get_wtime returned nothing")
		}
	})
}

func TestForEmptyAndUnevenRanges(t *testing.T) {
	s := boot(t, hamster.SMP, 3)
	s.Parallel(func(o *OMP) {
		o.For(5, 5, func(i int) { panic("empty range must not execute") })
		count := 0
		o.For(0, 2, func(i int) { count++ }) // fewer items than threads
		_ = count
	})
}
