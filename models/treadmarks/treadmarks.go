// Package treadmarks implements the TreadMarks programming model (Amza et
// al. 1996) on top of HAMSTER. TreadMarks is the model the paper singles
// out as the cheapest port (§5.2, Table 2: ~25 lines over 13 calls):
// almost every Tmk_* routine maps directly onto a HAMSTER service. The one
// exception is its single-node allocation scheme — Tmk_malloc allocates on
// the calling node only, and a separate Tmk_distribute routine delivers
// the allocation to the other nodes; that routine is the only piece
// implemented "fully by hand" on the messaging layer.
//
// Go method names mirror the original C entry points:
//
//	Tmk_startup      -> Boot / System.Run
//	Tmk_exit         -> System.Shutdown / Tmk.Exit
//	Tmk_nprocs       -> Tmk.Nprocs
//	Tmk_proc_id      -> Tmk.ProcID
//	Tmk_malloc       -> Tmk.Malloc
//	Tmk_free         -> Tmk.Free
//	Tmk_distribute   -> Tmk.Distribute (sender) / Tmk.Receive (others)
//	Tmk_barrier      -> Tmk.Barrier
//	Tmk_lock_acquire -> Tmk.LockAcquire
//	Tmk_lock_release -> Tmk.LockRelease
package treadmarks

import (
	"fmt"

	"hamster"
)

// MaxLocks mirrors TreadMarks' static lock count.
const MaxLocks = 1024

// System is one booted TreadMarks world.
type System struct {
	rt    *hamster.Runtime
	locks []int
}

// Boot performs Tmk_startup.
func Boot(cfg hamster.Config) (*System, error) {
	rt, err := hamster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("treadmarks: %w", err)
	}
	s := &System{rt: rt, locks: make([]int, MaxLocks)}
	e := rt.Env(0)
	for i := range s.locks {
		s.locks[i] = e.Sync.NewLock()
	}
	return s, nil
}

// Shutdown performs the system side of Tmk_exit.
func (s *System) Shutdown() { s.rt.Close() }

// Runtime exposes the underlying runtime.
func (s *System) Runtime() *hamster.Runtime { return s.rt }

// Run executes the application on every process.
func (s *System) Run(main func(t *Tmk)) {
	s.rt.Run(func(e *hamster.Env) {
		main(&Tmk{e: e, sys: s})
	})
}

// Tmk is one process's handle (the Tmk_* call surface).
type Tmk struct {
	e   *hamster.Env
	sys *System
}

// ProcID returns Tmk_proc_id.
func (t *Tmk) ProcID() int { return t.e.ID() }

// Nprocs returns Tmk_nprocs.
func (t *Tmk) Nprocs() int { return t.e.N() }

// Malloc performs Tmk_malloc: allocation local to THIS process — no
// barrier, no other process knows about it until Distribute.
func (t *Tmk) Malloc(bytes uint64) hamster.Region {
	r, err := t.e.Mem.Alloc(bytes, hamster.AllocOpts{
		Name: "Tmk_malloc", Policy: hamster.Fixed, FixedNode: t.e.ID(),
	})
	if err != nil {
		panic(fmt.Sprintf("treadmarks: Tmk_malloc: %v", err))
	}
	return r
}

// Free performs Tmk_free.
func (t *Tmk) Free(r hamster.Region) {
	if err := t.e.Mem.Free(r); err != nil {
		panic(fmt.Sprintf("treadmarks: Tmk_free: %v", err))
	}
}

// Distribute performs Tmk_distribute on the allocating side: the region's
// metadata is shipped to every other process over the messaging layer.
// This is the single hand-written routine of the port.
func (t *Tmk) Distribute(r hamster.Region) { t.e.Mem.Distribute(r) }

// Receive completes Tmk_distribute on the other processes.
func (t *Tmk) Receive() hamster.Region {
	r, ok := t.e.Mem.AcceptRegion()
	if !ok {
		panic("treadmarks: Tmk_distribute receive interrupted")
	}
	return r
}

// Barrier performs Tmk_barrier. TreadMarks numbers its barriers; all
// barriers are global here, so the id only guards against mismatched use.
func (t *Tmk) Barrier(id int) {
	_ = id
	t.e.Sync.Barrier()
}

// LockAcquire performs Tmk_lock_acquire.
func (t *Tmk) LockAcquire(id int) { t.e.Sync.Lock(t.sys.locks[id%MaxLocks]) }

// LockRelease performs Tmk_lock_release.
func (t *Tmk) LockRelease(id int) { t.e.Sync.Unlock(t.sys.locks[id%MaxLocks]) }

// Exit performs the per-process side of Tmk_exit (a final barrier so that
// no process tears down while others still compute).
func (t *Tmk) Exit() { t.e.Sync.Barrier() }

// ReadF64 loads from shared memory.
func (t *Tmk) ReadF64(a hamster.Addr) float64 { return t.e.ReadF64(a) }

// WriteF64 stores to shared memory.
func (t *Tmk) WriteF64(a hamster.Addr, v float64) { t.e.WriteF64(a, v) }

// ReadI64 loads an int64 from shared memory.
func (t *Tmk) ReadI64(a hamster.Addr) int64 { return t.e.ReadI64(a) }

// WriteI64 stores an int64 to shared memory.
func (t *Tmk) WriteI64(a hamster.Addr, v int64) { t.e.WriteI64(a, v) }

// Compute charges local CPU work.
func (t *Tmk) Compute(flops uint64) { t.e.Compute(flops) }

// Env exposes the raw HAMSTER services.
func (t *Tmk) Env() *hamster.Env { return t.e }
