package treadmarks

import (
	"testing"

	"hamster"
)

func boot(t testing.TB, kind hamster.PlatformKind, nodes int) *System {
	t.Helper()
	s, err := Boot(hamster.Config{Platform: kind, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestProcIDAndNprocs(t *testing.T) {
	s := boot(t, hamster.SWDSM, 3)
	s.Run(func(tm *Tmk) {
		if tm.Nprocs() != 3 || tm.ProcID() < 0 || tm.ProcID() > 2 {
			panic("identity broken")
		}
	})
}

func TestMallocDistribute(t *testing.T) {
	// The TreadMarks allocation pattern: proc 0 mallocs locally, then
	// distributes; everyone ends up sharing the same region.
	s := boot(t, hamster.SWDSM, 3)
	s.Run(func(tm *Tmk) {
		var r hamster.Region
		if tm.ProcID() == 0 {
			r = tm.Malloc(hamster.PageSize)
			tm.Distribute(r)
			tm.WriteF64(r.Base, 6.5)
		} else {
			r = tm.Receive()
		}
		tm.Barrier(0)
		if got := tm.ReadF64(r.Base); got != 6.5 {
			panic("distributed region not shared")
		}
		tm.Barrier(1)
	})
}

func TestSingleNodeAllocationIsLocal(t *testing.T) {
	// Tmk_malloc places pages on the allocating node — no implicit
	// barrier, no consistency overhead for other nodes (the paper's
	// §5.2 contrast with global allocation).
	s := boot(t, hamster.SWDSM, 2)
	s.Run(func(tm *Tmk) {
		if tm.ProcID() == 1 {
			r := tm.Malloc(2 * hamster.PageSize)
			tm.WriteF64(r.Base, 1)
			if st := tm.Env().Mon.Substrate(); st.PageFaults != 0 || st.TwinsCreated != 0 {
				panic("Tmk_malloc was not node-local")
			}
			tm.Free(r)
		}
		tm.Barrier(0)
	})
}

func TestLocksAcquireRelease(t *testing.T) {
	s := boot(t, hamster.HybridDSM, 4)
	var total int64
	s.Run(func(tm *Tmk) {
		var r hamster.Region
		if tm.ProcID() == 0 {
			r = tm.Malloc(hamster.PageSize)
			tm.Distribute(r)
		} else {
			r = tm.Receive()
		}
		tm.Barrier(0)
		for i := 0; i < 5; i++ {
			tm.LockAcquire(9)
			tm.WriteI64(r.Base, tm.ReadI64(r.Base)+1)
			tm.LockRelease(9)
		}
		tm.Barrier(1)
		if tm.ProcID() == 0 {
			tm.LockAcquire(9)
			total = tm.ReadI64(r.Base)
			tm.LockRelease(9)
		}
		tm.Exit()
	})
	if total != 20 {
		t.Fatalf("counter = %d, want 20", total)
	}
}

func TestRunsOnAllPlatforms(t *testing.T) {
	for _, kind := range []hamster.PlatformKind{hamster.SMP, hamster.HybridDSM, hamster.SWDSM} {
		t.Run(kind.String(), func(t *testing.T) {
			s := boot(t, kind, 2)
			s.Run(func(tm *Tmk) {
				var r hamster.Region
				if tm.ProcID() == 0 {
					r = tm.Malloc(hamster.PageSize)
					tm.Distribute(r)
					tm.WriteI64(r.Base, 77)
				} else {
					r = tm.Receive()
				}
				tm.Barrier(0)
				if tm.ReadI64(r.Base) != 77 {
					panic("value lost")
				}
			})
		})
	}
}
