package hlrc

import (
	"testing"

	"hamster"
)

func boot(t testing.TB, kind hamster.PlatformKind, nodes int) *System {
	t.Helper()
	s, err := Boot(hamster.Config{Platform: kind, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestIdentity(t *testing.T) {
	s := boot(t, hamster.SWDSM, 2)
	s.Run(func(rc *RC) {
		if rc.Nprocs() != 2 || rc.Pid() > 1 {
			panic("identity broken")
		}
	})
}

func TestMallocIsGlobalSynchronous(t *testing.T) {
	s := boot(t, hamster.SWDSM, 3)
	addrs := make([]hamster.Addr, 3)
	s.Run(func(rc *RC) {
		addrs[rc.Pid()] = rc.Malloc(hamster.PageSize)
	})
	if addrs[0] != addrs[1] || addrs[1] != addrs[2] {
		t.Fatalf("rc_malloc returned different addresses: %v", addrs)
	}
}

func TestAcquireReleaseCriticalSection(t *testing.T) {
	s := boot(t, hamster.SWDSM, 4)
	var total int64
	s.Run(func(rc *RC) {
		a := rc.Malloc(hamster.PageSize)
		for i := 0; i < 6; i++ {
			rc.Acquire(2)
			rc.WriteI64(a, rc.ReadI64(a)+1)
			rc.Release(2)
		}
		rc.Barrier()
		if rc.Pid() == 0 {
			rc.Acquire(2)
			total = rc.ReadI64(a)
			rc.Release(2)
		}
	})
	if total != 24 {
		t.Fatalf("counter = %d, want 24", total)
	}
}

func TestFlushPublishes(t *testing.T) {
	s := boot(t, hamster.SWDSM, 2)
	s.Run(func(rc *RC) {
		a := rc.Malloc(hamster.PageSize)
		if rc.Pid() == 1 {
			rc.WriteF64(a, 8.5)
			rc.Flush()
		}
		rc.Barrier()
		if got := rc.ReadF64(a); got != 8.5 {
			panic("flush did not publish the write")
		}
		rc.Barrier()
	})
}

func TestFreeByAddress(t *testing.T) {
	s := boot(t, hamster.SWDSM, 2)
	s.Run(func(rc *RC) {
		a := rc.Malloc(hamster.PageSize)
		rc.Barrier()
		if rc.Pid() == 0 {
			rc.Free(a)
		}
		rc.Barrier()
	})
}

func TestTime(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.Run(func(rc *RC) {
		rc.Compute(500_000)
		if rc.Time() <= 0 {
			panic("rc_time returned nothing")
		}
	})
}
