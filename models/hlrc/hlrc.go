// Package hlrc implements the Home-based Lazy Release Consistency API
// (Rangarajan et al. 1999) on top of HAMSTER. Like JiaJia, HLRC uses
// global synchronous allocation with an implicit barrier; its API is a
// compact set of release-consistency primitives, which makes it the
// thinnest port in the paper's Table 2 (~5.5 lines per call).
//
// Go method names mirror the original entry points:
//
//	rc_init     -> Boot / System.Run
//	rc_exit     -> System.Shutdown
//	rc_pid      -> RC.Pid
//	rc_nprocs   -> RC.Nprocs
//	rc_malloc   -> RC.Malloc
//	rc_free     -> RC.Free
//	rc_acquire  -> RC.Acquire
//	rc_release  -> RC.Release
//	rc_barrier  -> RC.Barrier
//	rc_flush    -> RC.Flush
//	rc_time     -> RC.Time
package hlrc

import (
	"fmt"

	"hamster"
)

// MaxLocks mirrors HLRC's static lock table.
const MaxLocks = 256

// System is one booted HLRC world.
type System struct {
	rt    *hamster.Runtime
	locks []int
}

// Boot performs rc_init.
func Boot(cfg hamster.Config) (*System, error) {
	rt, err := hamster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("hlrc: %w", err)
	}
	s := &System{rt: rt, locks: make([]int, MaxLocks)}
	e := rt.Env(0)
	for i := range s.locks {
		s.locks[i] = e.Sync.NewLock()
	}
	return s, nil
}

// Shutdown performs rc_exit.
func (s *System) Shutdown() { s.rt.Close() }

// Runtime exposes the underlying runtime.
func (s *System) Runtime() *hamster.Runtime { return s.rt }

// Run executes the application on every process.
func (s *System) Run(main func(rc *RC)) {
	s.rt.Run(func(e *hamster.Env) {
		main(&RC{e: e, sys: s})
	})
}

// RC is one process's handle (the rc_* call surface).
type RC struct {
	e   *hamster.Env
	sys *System
}

// Pid returns rc_pid.
func (r *RC) Pid() int { return r.e.ID() }

// Nprocs returns rc_nprocs.
func (r *RC) Nprocs() int { return r.e.N() }

// Malloc performs rc_malloc: global synchronous allocation on all nodes.
func (r *RC) Malloc(bytes uint64) hamster.Addr {
	reg, err := r.e.Mem.Alloc(bytes, hamster.AllocOpts{
		Name: "rc_malloc", Policy: hamster.Block, Collective: true,
	})
	if err != nil {
		panic(fmt.Sprintf("hlrc: rc_malloc: %v", err))
	}
	return reg.Base
}

// Free performs rc_free.
func (r *RC) Free(a hamster.Addr) {
	reg, ok := r.e.Mem.RegionOf(a)
	if !ok {
		panic("hlrc: rc_free of unknown address")
	}
	if err := r.e.Mem.Free(reg); err != nil {
		panic(fmt.Sprintf("hlrc: rc_free: %v", err))
	}
}

// Acquire performs rc_acquire.
func (r *RC) Acquire(lock int) { r.e.Sync.Lock(r.sys.locks[lock%MaxLocks]) }

// Release performs rc_release.
func (r *RC) Release(lock int) { r.e.Sync.Unlock(r.sys.locks[lock%MaxLocks]) }

// Barrier performs rc_barrier.
func (r *RC) Barrier() { r.e.Sync.Barrier() }

// Flush performs rc_flush: push all local modifications home and drop
// stale copies (the full consistency action).
func (r *RC) Flush() { r.e.Cons.Fence() }

// Time performs rc_time: seconds of virtual time.
func (r *RC) Time() float64 { return float64(r.e.Now()) / 1e9 }

// ReadF64 loads from shared memory.
func (r *RC) ReadF64(a hamster.Addr) float64 { return r.e.ReadF64(a) }

// WriteF64 stores to shared memory.
func (r *RC) WriteF64(a hamster.Addr, v float64) { r.e.WriteF64(a, v) }

// ReadI64 loads an int64 from shared memory.
func (r *RC) ReadI64(a hamster.Addr) int64 { return r.e.ReadI64(a) }

// WriteI64 stores an int64 to shared memory.
func (r *RC) WriteI64(a hamster.Addr, v int64) { r.e.WriteI64(a, v) }

// Compute charges local CPU work.
func (r *RC) Compute(flops uint64) { r.e.Compute(flops) }

// Env exposes the raw HAMSTER services.
func (r *RC) Env() *hamster.Env { return r.e }
