package pthreads

import (
	"sync/atomic"
	"testing"

	"hamster"
)

func boot(t testing.TB, kind hamster.PlatformKind, nodes int) *System {
	t.Helper()
	s, err := Boot(hamster.Config{Platform: kind, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestCreateJoinAcrossNodes(t *testing.T) {
	s := boot(t, hamster.SWDSM, 3)
	s.Main(func(pt *PT) {
		var nodes [3]atomic.Bool
		nodes[pt.Node()].Store(true)
		var ths []*Thread
		for i := 0; i < 2; i++ {
			th, err := pt.Create(func(w *PT) int64 {
				nodes[w.Node()].Store(true)
				return int64(w.Self() * 10)
			})
			if err != nil {
				panic(err)
			}
			ths = append(ths, th)
		}
		for _, th := range ths {
			code := pt.Join(th)
			if code != th.tid*10 {
				panic("exit code mismatch")
			}
		}
		for i := range nodes {
			if !nodes[i].Load() {
				panic("round-robin placement missed a node")
			}
		}
	})
}

func TestCreateOnExplicitNode(t *testing.T) {
	s := boot(t, hamster.SMP, 4)
	s.Main(func(pt *PT) {
		th, err := pt.CreateOn(3, func(w *PT) int64 { return int64(w.Node()) })
		if err != nil {
			panic(err)
		}
		if pt.Join(th) != 3 {
			panic("thread did not run on node 3")
		}
	})
}

func TestMutexProtectsSharedCounter(t *testing.T) {
	for _, kind := range []hamster.PlatformKind{hamster.SMP, hamster.SWDSM} {
		t.Run(kind.String(), func(t *testing.T) {
			s := boot(t, kind, 2)
			s.Main(func(pt *PT) {
				addr := pt.Malloc(hamster.PageSize)
				m := pt.MutexInit()
				work := func(w *PT) int64 {
					for i := 0; i < 20; i++ {
						w.MutexLock(m)
						w.WriteI64(addr, w.ReadI64(addr)+1)
						w.MutexUnlock(m)
					}
					return 0
				}
				th1, _ := pt.Create(work)
				th2, _ := pt.Create(work)
				work(pt)
				pt.Join(th1)
				pt.Join(th2)
				pt.MutexLock(m)
				total := pt.ReadI64(addr)
				pt.MutexUnlock(m)
				if total != 60 {
					panic("mutex counter wrong")
				}
				pt.MutexDestroy(m)
			})
		})
	}
}

func TestMutexTryLock(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.Main(func(pt *PT) {
		m := pt.MutexInit()
		if !pt.MutexTryLock(m) {
			panic("trylock on free mutex failed")
		}
		if pt.MutexTryLock(m) {
			panic("trylock on held mutex succeeded")
		}
		pt.MutexUnlock(m)
	})
}

func TestCondProducerConsumer(t *testing.T) {
	s := boot(t, hamster.SWDSM, 2)
	s.Main(func(pt *PT) {
		addr := pt.Malloc(hamster.PageSize)
		m := pt.MutexInit()
		c := pt.CondInit()

		consumer, _ := pt.Create(func(w *PT) int64 {
			w.MutexLock(m)
			for w.ReadI64(addr) == 0 {
				w.CondWait(c, m)
			}
			v := w.ReadI64(addr)
			w.MutexUnlock(m)
			return v
		})

		pt.MutexLock(m)
		pt.WriteI64(addr, 99)
		pt.CondSignal(c)
		pt.MutexUnlock(m)

		if pt.Join(consumer) != 99 {
			panic("consumer saw wrong value")
		}
	})
}

func TestBarrierWait(t *testing.T) {
	s := boot(t, hamster.SMP, 2)
	s.Main(func(pt *PT) {
		const parties = 3
		b := pt.BarrierInit(parties)
		var serial atomic.Int32
		var ths []*Thread
		for i := 0; i < parties-1; i++ {
			th, _ := pt.Create(func(w *PT) int64 {
				for round := 0; round < 5; round++ {
					if w.BarrierWait(b) {
						serial.Add(1)
					}
				}
				return 0
			})
			ths = append(ths, th)
		}
		for round := 0; round < 5; round++ {
			if pt.BarrierWait(b) {
				serial.Add(1)
			}
		}
		for _, th := range ths {
			pt.Join(th)
		}
		if serial.Load() != 5 {
			panic("exactly one serial thread per round expected")
		}
	})
}

func TestOnce(t *testing.T) {
	s := boot(t, hamster.SMP, 2)
	s.Main(func(pt *PT) {
		var o Once
		var runs atomic.Int32
		fn := func() { runs.Add(1) }
		th, _ := pt.Create(func(w *PT) int64 {
			w.DoOnce(&o, fn)
			return 0
		})
		pt.DoOnce(&o, fn)
		pt.Join(th)
		if runs.Load() != 1 {
			panic("once ran more than once")
		}
	})
}

func TestSelfEqualYield(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.Main(func(pt *PT) {
		if pt.Self() != 0 || !pt.Equal(pt.Self(), 0) || pt.Equal(0, 1) {
			panic("identity ops broken")
		}
		pt.Yield()
		pt.Compute(10)
	})
}
