// Package pthreads implements a distributed POSIX-threads programming
// model on top of HAMSTER (§5.2's "distributed thread APIs", detailed in
// Schulz PACT 2000). Threads are placed across cluster nodes; creation
// forwards to the node the thread should run on via the Task Management
// module's messaging — the forwarding framework the paper deliberately
// keeps out of the core services and builds in the model layer instead.
//
// Method names mirror the pthread_* entry points:
//
//	pthread_create        -> PT.Create / PT.CreateOn
//	pthread_join          -> PT.Join
//	pthread_self          -> PT.Self
//	pthread_equal         -> PT.Equal
//	pthread_yield         -> PT.Yield
//	pthread_mutex_init    -> PT.MutexInit
//	pthread_mutex_lock    -> PT.MutexLock
//	pthread_mutex_trylock -> PT.MutexTryLock
//	pthread_mutex_unlock  -> PT.MutexUnlock
//	pthread_mutex_destroy -> PT.MutexDestroy
//	pthread_cond_init     -> PT.CondInit
//	pthread_cond_wait     -> PT.CondWait
//	pthread_cond_signal   -> PT.CondSignal
//	pthread_cond_broadcast-> PT.CondBroadcast
//	pthread_barrier_init  -> PT.BarrierInit
//	pthread_barrier_wait  -> PT.BarrierWait
//	pthread_once          -> PT.Once
//
// The distributed semantics match the local ones: a mutex locked on node
// 0 excludes a locker on node 3, and the consistency model guarantees
// mutex-protected data is coherent across nodes.
package pthreads

import (
	"fmt"
	"runtime"
	"sync"

	"hamster"
)

// System is one booted distributed-pthreads world.
type System struct {
	rt     *hamster.Runtime
	mu     sync.Mutex
	nextID int64
	nextNd int
}

// Boot starts the model. Threaded mode is forced: multiple threads may
// time-share one node.
func Boot(cfg hamster.Config) (*System, error) {
	cfg.Threaded = true
	rt, err := hamster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("pthreads: %w", err)
	}
	return &System{rt: rt, nextID: 1, nextNd: 1}, nil
}

// Shutdown stops the model.
func (s *System) Shutdown() { s.rt.Close() }

// Runtime exposes the underlying runtime.
func (s *System) Runtime() *hamster.Runtime { return s.rt }

// Main runs the initial thread on node 0.
func (s *System) Main(main func(pt *PT)) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		main(&PT{e: s.rt.Env(0), sys: s, tid: 0})
	}()
	<-done
}

// PT is one thread's handle on the pthread call surface.
type PT struct {
	e   *hamster.Env
	sys *System
	tid int64
}

// Thread is a joinable thread handle (pthread_t).
type Thread struct {
	tid  int64
	task *hamster.Task
}

// TID returns the thread's id (the value pthread_create writes back).
func (t *Thread) TID() int64 { return t.tid }

// Node returns the node the thread runs on (a distributed-model
// extension).
func (t *Thread) Node() int { return t.task.Node() }

// Create performs pthread_create with default attributes: the new thread
// is placed on the next node round-robin.
func (p *PT) Create(fn func(pt *PT) int64) (*Thread, error) {
	p.sys.mu.Lock()
	node := p.sys.nextNd % p.e.N()
	p.sys.nextNd++
	p.sys.mu.Unlock()
	return p.CreateOn(node, fn)
}

// CreateOn performs pthread_create with an explicit node attribute: the
// create call is forwarded to that node, which starts the thread locally.
func (p *PT) CreateOn(node int, fn func(pt *PT) int64) (*Thread, error) {
	p.sys.mu.Lock()
	tid := p.sys.nextID
	p.sys.nextID++
	p.sys.mu.Unlock()

	task, err := p.e.Task.SpawnOn(node, func(e *hamster.Env) int64 {
		return fn(&PT{e: e, sys: p.sys, tid: tid})
	})
	if err != nil {
		return nil, fmt.Errorf("pthreads: create: %w", err)
	}
	return &Thread{tid: tid, task: task}, nil
}

// Join performs pthread_join, returning the thread's exit value.
func (p *PT) Join(th *Thread) int64 { return p.e.Task.Join(th.task) }

// Self performs pthread_self.
func (p *PT) Self() int64 { return p.tid }

// Equal performs pthread_equal.
func (p *PT) Equal(a, b int64) bool { return a == b }

// Node returns the node this thread runs on (an extension the distributed
// model needs; local pthreads have no equivalent).
func (p *PT) Node() int { return p.e.ID() }

// Yield performs pthread_yield / sched_yield.
func (p *PT) Yield() { runtime.Gosched() }

// Mutex is a distributed pthread_mutex_t.
type Mutex struct {
	lock      int
	destroyed bool
}

// MutexInit performs pthread_mutex_init: the mutex is a consistency lock,
// so locking it also makes protected data coherent.
func (p *PT) MutexInit() *Mutex { return &Mutex{lock: p.e.Sync.NewLock()} }

// MutexLock performs pthread_mutex_lock.
func (p *PT) MutexLock(m *Mutex) { p.e.Sync.Lock(m.lock) }

// MutexTryLock performs pthread_mutex_trylock.
func (p *PT) MutexTryLock(m *Mutex) bool { return p.e.Sync.TryLock(m.lock) }

// MutexUnlock performs pthread_mutex_unlock.
func (p *PT) MutexUnlock(m *Mutex) { p.e.Sync.Unlock(m.lock) }

// MutexDestroy performs pthread_mutex_destroy.
func (p *PT) MutexDestroy(m *Mutex) { m.destroyed = true }

// Cond is a distributed pthread_cond_t.
type Cond struct {
	cv *hamster.CondVar
}

// CondInit performs pthread_cond_init.
func (p *PT) CondInit() *Cond { return &Cond{cv: p.e.Sync.NewCond()} }

// CondWait performs pthread_cond_wait: atomically release the mutex, wait
// for a signal, reacquire. As POSIX allows, wakeups may be spurious —
// callers loop on their predicate.
func (p *PT) CondWait(c *Cond, m *Mutex) {
	p.e.Sync.CondWait(c.cv,
		func() { p.e.Sync.Unlock(m.lock) },
		func() { p.e.Sync.Lock(m.lock) })
}

// CondSignal performs pthread_cond_signal.
func (p *PT) CondSignal(c *Cond) { p.e.Sync.CondSignal(c.cv) }

// CondBroadcast performs pthread_cond_broadcast.
func (p *PT) CondBroadcast(c *Cond) { p.e.Sync.CondBroadcast(c.cv) }

// Barrier is a pthread_barrier_t, built from the model's own mutex and
// condition variable (the classic two-phase counter barrier), so it works
// for any thread count, not just one thread per node.
type Barrier struct {
	m      *Mutex
	c      *Cond
	count  int
	needed int
	gen    uint64
}

// BarrierInit performs pthread_barrier_init for count participants.
func (p *PT) BarrierInit(count int) *Barrier {
	return &Barrier{m: p.MutexInit(), c: p.CondInit(), needed: count}
}

// BarrierWait performs pthread_barrier_wait. One caller per generation
// returns true (PTHREAD_BARRIER_SERIAL_THREAD).
func (p *PT) BarrierWait(b *Barrier) bool {
	p.MutexLock(b.m)
	gen := b.gen
	b.count++
	if b.count == b.needed {
		b.count = 0
		b.gen++
		p.CondBroadcast(b.c)
		p.MutexUnlock(b.m)
		return true
	}
	for gen == b.gen {
		p.CondWait(b.c, b.m)
	}
	p.MutexUnlock(b.m)
	return false
}

// Once is a pthread_once_t.
type Once struct {
	mu   sync.Mutex
	done bool
}

// DoOnce performs pthread_once.
func (p *PT) DoOnce(o *Once, fn func()) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.done {
		o.done = true
		fn()
	}
}

// ReadF64 loads from shared memory.
func (p *PT) ReadF64(a hamster.Addr) float64 { return p.e.ReadF64(a) }

// WriteF64 stores to shared memory.
func (p *PT) WriteF64(a hamster.Addr, v float64) { p.e.WriteF64(a, v) }

// ReadI64 loads an int64 from shared memory.
func (p *PT) ReadI64(a hamster.Addr) int64 { return p.e.ReadI64(a) }

// WriteI64 stores an int64 to shared memory.
func (p *PT) WriteI64(a hamster.Addr, v int64) { p.e.WriteI64(a, v) }

// Malloc allocates shared memory visible to all threads.
func (p *PT) Malloc(bytes uint64) hamster.Addr {
	r, err := p.e.Mem.Alloc(bytes, hamster.AllocOpts{Name: "pthread_heap", Policy: hamster.Block})
	if err != nil {
		panic(fmt.Sprintf("pthreads: malloc: %v", err))
	}
	return r.Base
}

// Compute charges local CPU work.
func (p *PT) Compute(flops uint64) { p.e.Compute(flops) }

// Env exposes the raw HAMSTER services.
func (p *PT) Env() *hamster.Env { return p.e }
