// Package anl implements the ANL macro programming model (the PARMACS
// macros used by the SPLASH benchmark suites) on top of HAMSTER. The C
// originals are m4 macros (MAIN_ENV, CREATE, G_MALLOC, LOCK, BARRIER,
// ...); here they are methods with the same names and shapes.
//
// Execution model: the master runs on node 0 and CREATEs one worker per
// remaining node (the standard one-process-per-processor SPLASH setup);
// BARRIER is then the global barrier across all tasks.
//
//	MAIN_ENV/MAIN_INITENV -> Boot / System.MainEnv
//	MAIN_END              -> System.Shutdown
//	CREATE                -> ANL.Create
//	WAIT_FOR_END          -> ANL.WaitForEnd
//	G_MALLOC              -> ANL.GMalloc
//	LOCKINIT/LOCK/UNLOCK  -> ANL.LockInit / Lock / Unlock
//	ALOCKINIT/ALOCK/AULOCK-> ANL.ALockInit / ALock / AUnlock
//	BARINIT/BARRIER       -> ANL.BarInit / Barrier
//	GET_PID               -> ANL.GetPid
//	CLOCK                 -> ANL.Clock
package anl

import (
	"fmt"
	"sync"

	"hamster"
)

// System is one booted ANL world.
type System struct {
	rt      *hamster.Runtime
	mu      sync.Mutex
	nextPid int
	nextNd  int
	tasks   []*hamster.Task
}

// Boot prepares the environment (MAIN_ENV + MAIN_INITENV). Threaded mode
// is forced: CREATE places tasks on nodes that also run the master's
// allocations and barriers.
func Boot(cfg hamster.Config) (*System, error) {
	cfg.Threaded = true
	rt, err := hamster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("anl: %w", err)
	}
	return &System{rt: rt, nextPid: 1, nextNd: 1}, nil
}

// Shutdown performs MAIN_END.
func (s *System) Shutdown() { s.rt.Close() }

// Runtime exposes the underlying runtime.
func (s *System) Runtime() *hamster.Runtime { return s.rt }

// MainEnv runs the master program on node 0.
func (s *System) MainEnv(main func(a *ANL)) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		main(&ANL{e: s.rt.Env(0), sys: s, pid: 0})
	}()
	<-done
}

// ANL is one task's macro surface.
type ANL struct {
	e   *hamster.Env
	sys *System
	pid int
}

// GetPid returns the task id (master = 0).
func (a *ANL) GetPid() int { return a.pid }

// NProcs returns the node count (the usual SPLASH P).
func (a *ANL) NProcs() int { return a.e.N() }

// Create performs CREATE(worker): the worker starts on the next node,
// round-robin, with its own pid.
func (a *ANL) Create(worker func(a *ANL)) {
	s := a.sys
	s.mu.Lock()
	pid := s.nextPid
	s.nextPid++
	node := s.nextNd % a.e.N()
	s.nextNd++
	s.mu.Unlock()

	task, err := a.e.Task.SpawnOn(node, func(e *hamster.Env) int64 {
		worker(&ANL{e: e, sys: s, pid: pid})
		return 0
	})
	if err != nil {
		panic(fmt.Sprintf("anl: CREATE: %v", err))
	}
	s.mu.Lock()
	s.tasks = append(s.tasks, task)
	s.mu.Unlock()
}

// WaitForEnd performs WAIT_FOR_END(n): join the first n created workers.
func (a *ANL) WaitForEnd(n int) {
	s := a.sys
	s.mu.Lock()
	tasks := append([]*hamster.Task(nil), s.tasks...)
	s.mu.Unlock()
	if n > len(tasks) {
		n = len(tasks)
	}
	for _, t := range tasks[:n] {
		a.e.Task.Join(t)
	}
}

// GMalloc performs G_MALLOC: the master allocates shared memory; workers
// see it through the shared address space (the pointer travels in the
// program, as in the C macros).
func (a *ANL) GMalloc(bytes uint64) hamster.Addr {
	r, err := a.e.Mem.Alloc(bytes, hamster.AllocOpts{Name: "G_MALLOC", Policy: hamster.Block})
	if err != nil {
		panic(fmt.Sprintf("anl: G_MALLOC: %v", err))
	}
	return r.Base
}

// LockInit performs LOCKDEC+LOCKINIT.
func (a *ANL) LockInit() int { return a.e.Sync.NewLock() }

// Lock performs LOCK.
func (a *ANL) Lock(id int) { a.e.Sync.Lock(id) }

// Unlock performs UNLOCK.
func (a *ANL) Unlock(id int) { a.e.Sync.Unlock(id) }

// ALockInit performs ALOCKDEC+ALOCKINIT: an array of n locks; returns the
// base id.
func (a *ANL) ALockInit(n int) int {
	base := a.e.Sync.NewLock()
	for i := 1; i < n; i++ {
		a.e.Sync.NewLock()
	}
	return base
}

// ALock performs ALOCK(base, i).
func (a *ANL) ALock(base, i int) { a.e.Sync.Lock(base + i) }

// AUnlock performs AULOCK(base, i).
func (a *ANL) AUnlock(base, i int) { a.e.Sync.Unlock(base + i) }

// BarInit performs BARDEC+BARINIT. All barriers are the global barrier;
// the returned id exists for macro fidelity.
func (a *ANL) BarInit() int { return 0 }

// Barrier performs BARRIER(b, P) for the standard one-task-per-node
// configuration.
func (a *ANL) Barrier(id int) {
	_ = id
	a.e.Sync.Barrier()
}

// Clock performs CLOCK(t): virtual microseconds, the SPLASH convention.
func (a *ANL) Clock() uint64 { return uint64(a.e.Now()) / 1000 }

// ReadF64 loads from shared memory.
func (a *ANL) ReadF64(addr hamster.Addr) float64 { return a.e.ReadF64(addr) }

// WriteF64 stores to shared memory.
func (a *ANL) WriteF64(addr hamster.Addr, v float64) { a.e.WriteF64(addr, v) }

// ReadI64 loads an int64 from shared memory.
func (a *ANL) ReadI64(addr hamster.Addr) int64 { return a.e.ReadI64(addr) }

// WriteI64 stores an int64 to shared memory.
func (a *ANL) WriteI64(addr hamster.Addr, v int64) { a.e.WriteI64(addr, v) }

// Compute charges local CPU work.
func (a *ANL) Compute(flops uint64) { a.e.Compute(flops) }

// Env exposes the raw HAMSTER services.
func (a *ANL) Env() *hamster.Env { return a.e }
