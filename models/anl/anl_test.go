package anl

import (
	"sync/atomic"
	"testing"

	"hamster"
)

func boot(t testing.TB, kind hamster.PlatformKind, nodes int) *System {
	t.Helper()
	s, err := Boot(hamster.Config{Platform: kind, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestMasterWorkerPids(t *testing.T) {
	s := boot(t, hamster.SMP, 4)
	var pids [4]atomic.Bool
	s.MainEnv(func(a *ANL) {
		pids[a.GetPid()].Store(true)
		for i := 1; i < a.NProcs(); i++ {
			a.Create(func(w *ANL) {
				pids[w.GetPid()].Store(true)
			})
		}
		a.WaitForEnd(a.NProcs() - 1)
	})
	for i := range pids {
		if !pids[i].Load() {
			t.Fatalf("pid %d never ran", i)
		}
	}
}

func TestSplashStyleSum(t *testing.T) {
	// The canonical SPLASH shape: master G_MALLOCs, CREATEs P-1 workers,
	// everyone sums a slice under LOCK, BARRIER, master reads the total.
	for _, kind := range []hamster.PlatformKind{hamster.SMP, hamster.SWDSM} {
		t.Run(kind.String(), func(t *testing.T) {
			s := boot(t, kind, 3)
			var total int64
			s.MainEnv(func(a *ANL) {
				gm := a.GMalloc(hamster.PageSize)
				lock := a.LockInit()
				bar := a.BarInit()

				work := func(w *ANL) {
					part := int64(0)
					for i := w.GetPid(); i < 30; i += w.NProcs() {
						part += int64(i)
					}
					w.Lock(lock)
					w.WriteI64(gm, w.ReadI64(gm)+part)
					w.Unlock(lock)
					w.Barrier(bar)
				}
				for i := 1; i < a.NProcs(); i++ {
					a.Create(work)
				}
				work(a) // the master participates
				a.WaitForEnd(a.NProcs() - 1)
				a.Lock(lock)
				total = a.ReadI64(gm)
				a.Unlock(lock)
			})
			if total != 435 { // sum 0..29
				t.Fatalf("total = %d, want 435", total)
			}
		})
	}
}

func TestArrayLocks(t *testing.T) {
	s := boot(t, hamster.SMP, 2)
	s.MainEnv(func(a *ANL) {
		base := a.ALockInit(4)
		gm := a.GMalloc(hamster.PageSize)
		a.Create(func(w *ANL) {
			for i := 0; i < 4; i++ {
				w.ALock(base, i)
				w.WriteI64(gm+hamster.Addr(8*i), w.ReadI64(gm+hamster.Addr(8*i))+1)
				w.AUnlock(base, i)
			}
		})
		for i := 0; i < 4; i++ {
			a.ALock(base, i)
			a.WriteI64(gm+hamster.Addr(8*i), a.ReadI64(gm+hamster.Addr(8*i))+1)
			a.AUnlock(base, i)
		}
		a.WaitForEnd(1)
		for i := 0; i < 4; i++ {
			a.ALock(base, i)
			if a.ReadI64(gm+hamster.Addr(8*i)) != 2 {
				panic("array lock slot wrong")
			}
			a.AUnlock(base, i)
		}
	})
}

func TestClockAdvances(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.MainEnv(func(a *ANL) {
		before := a.Clock()
		a.Compute(10_000_000)
		if a.Clock() <= before {
			panic("CLOCK did not advance")
		}
	})
}

func TestWorkersRunOnDistinctNodes(t *testing.T) {
	s := boot(t, hamster.SWDSM, 3)
	var nodes [3]atomic.Bool
	s.MainEnv(func(a *ANL) {
		nodes[a.Env().ID()].Store(true)
		for i := 1; i < 3; i++ {
			a.Create(func(w *ANL) {
				nodes[w.Env().ID()].Store(true)
			})
		}
		a.WaitForEnd(2)
	})
	for i := range nodes {
		if !nodes[i].Load() {
			t.Fatalf("no task ran on node %d", i)
		}
	}
}
