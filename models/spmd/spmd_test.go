package spmd

import (
	"testing"

	"hamster"
)

func boot(t testing.TB, kind hamster.PlatformKind, nodes int) *System {
	t.Helper()
	s, err := Boot(hamster.Config{Platform: kind, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestIdentity(t *testing.T) {
	s := boot(t, hamster.SWDSM, 4)
	seen := make([]bool, 4)
	s.Run(func(p *Proc) {
		if p.NProcs() != 4 {
			panic("wrong NProcs")
		}
		seen[p.Me()] = true
	})
	for i, ok := range seen {
		if !ok {
			t.Fatalf("process %d never ran", i)
		}
	}
}

func TestAllocBarrierLockCounter(t *testing.T) {
	for _, kind := range []hamster.PlatformKind{hamster.SMP, hamster.HybridDSM, hamster.SWDSM} {
		t.Run(kind.String(), func(t *testing.T) {
			s := boot(t, kind, 3)
			var total int64
			s.Run(func(p *Proc) {
				r := p.AllocGlobal(hamster.PageSize, "counter")
				var lock int
				if p.Me() == 0 {
					lock = p.CreateLock()
				}
				p.Barrier()
				for i := 0; i < 10; i++ {
					p.Lock(lock)
					p.WriteI64(r.Base, p.ReadI64(r.Base)+1)
					p.Unlock(lock)
				}
				p.Barrier()
				if p.Me() == 0 {
					p.Lock(lock)
					total = p.ReadI64(r.Base)
					p.Unlock(lock)
				}
			})
			if total != 30 {
				t.Fatalf("counter = %d, want 30", total)
			}
		})
	}
}

func TestReduceAndBroadcast(t *testing.T) {
	s := boot(t, hamster.SWDSM, 4)
	s.Run(func(p *Proc) {
		sum := p.ReduceF64(float64(p.Me()+1), Sum) // 1+2+3+4
		if sum != 10 {
			panic("sum reduce wrong")
		}
		max := p.ReduceF64(float64(p.Me()), Max)
		if max != 3 {
			panic("max reduce wrong")
		}
		min := p.ReduceF64(float64(p.Me()), Min)
		if min != 0 {
			panic("min reduce wrong")
		}
		v := p.BcastF64(2, float64(p.Me())*7)
		if v != 14 {
			panic("broadcast wrong")
		}
	})
}

func TestPointToPointMessaging(t *testing.T) {
	s := boot(t, hamster.HybridDSM, 2)
	s.Run(func(p *Proc) {
		if p.Me() == 0 {
			p.Send(1, 3, []byte("payload"))
		} else {
			data, from := p.Recv(3)
			if from != 0 || string(data) != "payload" {
				panic("message corrupted")
			}
		}
	})
}

func TestAllocGlobalWithPolicy(t *testing.T) {
	s := boot(t, hamster.SWDSM, 2)
	s.Run(func(p *Proc) {
		r := p.AllocGlobalWith(hamster.PageSize, "fixed", hamster.Fixed, 1)
		if p.Me() == 1 {
			p.WriteF64(r.Base, 5) // local write at its home
			if st := p.Stats(); st.PageFaults != 0 {
				panic("fixed placement ignored")
			}
		}
		p.Barrier()
	})
}

func TestProbeAndTiming(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.Run(func(p *Proc) {
		if !p.Probe().HardwareCoherent {
			panic("SMP must be coherent")
		}
		start := p.Time()
		p.Compute(1000)
		if p.Elapsed(start) == 0 {
			panic("Elapsed broken")
		}
		p.ResetStats()
		if p.Env() == nil {
			panic("Env escape hatch broken")
		}
	})
}

func TestTryLock(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.Run(func(p *Proc) {
		l := p.CreateLock()
		if !p.TryLock(l) {
			panic("first TryLock failed")
		}
		if p.TryLock(l) {
			panic("second TryLock succeeded while held")
		}
		p.Unlock(l)
	})
}

func TestFreeGlobal(t *testing.T) {
	s := boot(t, hamster.SWDSM, 2)
	s.Run(func(p *Proc) {
		r := p.AllocGlobal(hamster.PageSize, "temp")
		p.Barrier()
		if p.Me() == 0 {
			p.FreeGlobal(r)
		}
		p.Barrier()
	})
}

func TestEventsAndSpawn(t *testing.T) {
	s, err := Boot(hamster.Config{Platform: hamster.SMP, Nodes: 2, Threaded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	s.Run(func(p *Proc) {
		if p.Me() != 0 {
			return
		}
		ev := p.CreateEvent()
		task, err := p.Spawn(1, func(q *Proc) int64 {
			q.Compute(1000)
			q.SetEvent(ev)
			return int64(q.Me())
		})
		if err != nil {
			panic(err)
		}
		p.WaitEvent(ev)
		if p.Join(task) != 1 {
			panic("spawned task wrong result")
		}
		if p.QueryNode(1).ID != 1 {
			panic("QueryNode broken")
		}
	})
}
