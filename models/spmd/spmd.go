// Package spmd implements HAMSTER's custom SPMD programming model: a
// user-friendly abstraction over the raw HAMSTER services (§5.2). It was
// the first model implemented in the original project and forms the basis
// for the DSM-style models (JiaJia, HLRC); its calls bundle broader
// functionality (reductions, broadcasts, timed sections) at the price of a
// larger implementation, which is why the paper's Table 2 shows it near
// the top of the lines-per-call range.
//
// All allocation calls are collective with an implicit barrier, matching
// the SPMD/JiaJia/HLRC allocation style.
package spmd

import (
	"encoding/binary"
	"fmt"
	"math"

	"hamster"
)

// System is one booted SPMD world.
type System struct {
	rt *hamster.Runtime
}

// Boot starts the SPMD system on the configured platform.
func Boot(cfg hamster.Config) (*System, error) {
	rt, err := hamster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("spmd: %w", err)
	}
	return &System{rt: rt}, nil
}

// Shutdown stops the system.
func (s *System) Shutdown() { s.rt.Close() }

// Runtime exposes the underlying runtime (monitoring, experiments).
func (s *System) Runtime() *hamster.Runtime { return s.rt }

// Run executes main once per process, SPMD style.
func (s *System) Run(main func(p *Proc)) {
	s.rt.Run(func(e *hamster.Env) {
		main(&Proc{e: e})
	})
}

// Proc is one SPMD process's handle.
type Proc struct {
	e *hamster.Env
}

// Me returns the process id.
func (p *Proc) Me() int { return p.e.ID() }

// NProcs returns the number of processes.
func (p *Proc) NProcs() int { return p.e.N() }

// AllocGlobal reserves shared memory, block-distributed, with an implicit
// barrier; every process receives the same region.
func (p *Proc) AllocGlobal(bytes uint64, name string) hamster.Region {
	r, err := p.e.Mem.Alloc(bytes, hamster.AllocOpts{
		Name: name, Policy: hamster.Block, Collective: true,
	})
	if err != nil {
		panic(fmt.Sprintf("spmd: AllocGlobal: %v", err))
	}
	return r
}

// AllocGlobalWith reserves shared memory with an explicit distribution
// annotation (still collective).
func (p *Proc) AllocGlobalWith(bytes uint64, name string, pol hamster.Policy, fixed int) hamster.Region {
	r, err := p.e.Mem.Alloc(bytes, hamster.AllocOpts{
		Name: name, Policy: pol, FixedNode: fixed, Collective: true,
	})
	if err != nil {
		panic(fmt.Sprintf("spmd: AllocGlobalWith: %v", err))
	}
	return r
}

// FreeGlobal releases a region (call from one process, then Barrier).
func (p *Proc) FreeGlobal(r hamster.Region) {
	if err := p.e.Mem.Free(r); err != nil {
		panic(fmt.Sprintf("spmd: FreeGlobal: %v", err))
	}
}

// Probe reports the memory subsystem's capabilities.
func (p *Proc) Probe() hamster.Caps { return p.e.Mem.Probe() }

// ReadF64 loads a float64 from global memory.
func (p *Proc) ReadF64(a hamster.Addr) float64 { return p.e.ReadF64(a) }

// WriteF64 stores a float64 to global memory.
func (p *Proc) WriteF64(a hamster.Addr, v float64) { p.e.WriteF64(a, v) }

// ReadI64 loads an int64 from global memory.
func (p *Proc) ReadI64(a hamster.Addr) int64 { return p.e.ReadI64(a) }

// WriteI64 stores an int64 to global memory.
func (p *Proc) WriteI64(a hamster.Addr, v int64) { p.e.WriteI64(a, v) }

// Compute charges local CPU work (flops).
func (p *Proc) Compute(flops uint64) { p.e.Compute(flops) }

// Barrier synchronizes all processes.
func (p *Proc) Barrier() { p.e.Sync.Barrier() }

// CreateLock makes a new global lock (call from process 0 before use).
func (p *Proc) CreateLock() int { return p.e.Sync.NewLock() }

// Lock acquires a global lock.
func (p *Proc) Lock(id int) { p.e.Sync.Lock(id) }

// Unlock releases a global lock.
func (p *Proc) Unlock(id int) { p.e.Sync.Unlock(id) }

// TryLock attempts a lock without blocking.
func (p *Proc) TryLock(id int) bool { return p.e.Sync.TryLock(id) }

// Reduction operators.
type ReduceOp int

// Supported reduction operators.
const (
	Sum ReduceOp = iota
	Max
	Min
)

// ReduceF64 performs a cluster-wide reduction; every process receives the
// result. Built from the messaging layer: leaves send to the root, the
// root combines and broadcasts.
func (p *Proc) ReduceF64(val float64, op ReduceOp) float64 {
	const tagUp, tagDown = 0x52aa, 0x52bb
	enc := func(v float64) []byte {
		buf := make([]byte, 8)
		putF64(buf, v)
		return buf
	}
	if p.Me() == 0 {
		acc := val
		for i := 1; i < p.NProcs(); i++ {
			payload, _, ok := p.e.Cluster.Recv(tagUp)
			if !ok {
				panic("spmd: reduce interrupted")
			}
			v := getF64(payload)
			switch op {
			case Sum:
				acc += v
			case Max:
				if v > acc {
					acc = v
				}
			case Min:
				if v < acc {
					acc = v
				}
			}
		}
		p.e.Cluster.Broadcast(tagDown, enc(acc))
		return acc
	}
	p.e.Cluster.Send(0, tagUp, enc(val))
	payload, _, ok := p.e.Cluster.Recv(tagDown)
	if !ok {
		panic("spmd: reduce interrupted")
	}
	return getF64(payload)
}

// BcastF64 broadcasts a value from root to all processes.
func (p *Proc) BcastF64(root int, val float64) float64 {
	const tag = 0x52cc
	if p.Me() == root {
		buf := make([]byte, 8)
		putF64(buf, val)
		p.e.Cluster.Broadcast(tag, buf)
		return val
	}
	payload, _, ok := p.e.Cluster.Recv(tag)
	if !ok {
		panic("spmd: bcast interrupted")
	}
	return getF64(payload)
}

// Send transmits bytes to another process (external messaging, §3.3).
func (p *Proc) Send(to int, tag uint32, data []byte) { p.e.Cluster.Send(to, tag, data) }

// Recv receives bytes with a tag.
func (p *Proc) Recv(tag uint32) ([]byte, int) {
	payload, from, ok := p.e.Cluster.Recv(tag)
	if !ok {
		panic("spmd: recv interrupted")
	}
	return payload, from
}

// Time returns this process's virtual time (timing support, §4.4).
func (p *Proc) Time() hamster.Time { return p.e.Now() }

// Elapsed measures a timed section.
func (p *Proc) Elapsed(since hamster.Time) hamster.Duration { return p.e.Elapsed(since) }

// Stats snapshots the substrate counters for this process.
func (p *Proc) Stats() hamster.SubstrateStats { return p.e.Mon.Substrate() }

// ResetStats clears the per-module call counters.
func (p *Proc) ResetStats() { p.e.Mon.ResetAll() }

// Env grants access to the raw HAMSTER services (escape hatch for codes
// that need a service the SPMD abstraction does not surface).
func (p *Proc) Env() *hamster.Env { return p.e }

func putF64(b []byte, v float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
}

func getF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// CreateEvent makes a sticky cluster-wide event (the SPMD model exports
// most HAMSTER services in user-friendly form; events back run-time
// systems built on it).
func (p *Proc) CreateEvent() *hamster.Event { return p.e.Sync.NewEvent() }

// SetEvent fires an event.
func (p *Proc) SetEvent(ev *hamster.Event) { p.e.Sync.Signal(ev) }

// WaitEvent blocks until an event has fired.
func (p *Proc) WaitEvent(ev *hamster.Event) { p.e.Sync.Wait(ev) }

// Spawn forwards a task to another process's node and returns a joinable
// handle (the Task Management service surfaced in the SPMD model).
func (p *Proc) Spawn(node int, fn func(q *Proc) int64) (*hamster.Task, error) {
	return p.e.Task.SpawnOn(node, func(e *hamster.Env) int64 {
		return fn(&Proc{e: e})
	})
}

// Join waits for a spawned task and returns its exit value.
func (p *Proc) Join(t *hamster.Task) int64 { return p.e.Task.Join(t) }

// QueryNode returns another node's parameters (Cluster Control service).
func (p *Proc) QueryNode(id int) hamster.NodeParams { return p.e.Cluster.QueryNode(id) }
