// Package smpspmd implements the SMP/SPMD programming model of Table 2:
// the SPMD abstraction specialized for shared memory multiprocessors. Per
// §3.3, multiprocessors are integrated into HAMSTER two ways — this model
// takes the process-parallel route, treating each CPU as a separate SPMD
// "node" while exposing the SMP-specific properties (hardware coherence,
// bus topology) that SPMD codes can exploit.
package smpspmd

import (
	"fmt"

	"hamster"
	"hamster/models/spmd"
)

// System is one booted SMP/SPMD world.
type System struct {
	inner *spmd.System
	cpus  int
}

// Boot starts the model on an SMP with the given CPU count. The platform
// is forced to SMP — that specialization is the model's reason to exist.
func Boot(cpus int) (*System, error) {
	inner, err := spmd.Boot(hamster.Config{Platform: hamster.SMP, Nodes: cpus})
	if err != nil {
		return nil, fmt.Errorf("smpspmd: %w", err)
	}
	return &System{inner: inner, cpus: cpus}, nil
}

// Shutdown stops the system.
func (s *System) Shutdown() { s.inner.Shutdown() }

// Runtime exposes the underlying runtime.
func (s *System) Runtime() *hamster.Runtime { return s.inner.Runtime() }

// Run executes main once per CPU.
func (s *System) Run(main func(p *Proc)) {
	s.inner.Run(func(sp *spmd.Proc) {
		main(&Proc{Proc: sp, sys: s})
	})
}

// Proc is one CPU's handle: the full SPMD call surface plus the
// SMP-specific services.
type Proc struct {
	*spmd.Proc
	sys *System
}

// NumCPUs returns the processor count of the multiprocessor.
func (p *Proc) NumCPUs() int { return p.sys.cpus }

// HardwareCoherent reports that no software consistency actions are
// needed — SMP codes may skip flush/acquire discipline entirely.
func (p *Proc) HardwareCoherent() bool { return p.Probe().HardwareCoherent }

// CacheMisses exposes the bus-level cache miss counter, the statistic SMP
// tuning revolves around.
func (p *Proc) CacheMisses() uint64 { return p.Stats().CacheMisses }

// LocalBarrier is a cheap CPU-local synchronization (all CPUs share one
// OS image, so this is the same global barrier — named separately because
// SPMD codes ported from clusters distinguish the two).
func (p *Proc) LocalBarrier() { p.Barrier() }

// AllocShared allocates hardware-coherent shared memory; placement
// annotations are meaningless on UMA hardware, so none are taken.
func (p *Proc) AllocShared(bytes uint64, name string) hamster.Region {
	return p.AllocGlobal(bytes, name)
}
