package smpspmd

import (
	"testing"

	"hamster"
)

func boot(t testing.TB, cpus int) *System {
	t.Helper()
	s, err := Boot(cpus)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestForcesSMPPlatform(t *testing.T) {
	s := boot(t, 2)
	if s.Runtime().Substrate().Kind() != hamster.SMP {
		t.Fatal("smpspmd must run on the SMP substrate")
	}
}

func TestSMPSpecificServices(t *testing.T) {
	s := boot(t, 2)
	s.Run(func(p *Proc) {
		if p.NumCPUs() != 2 {
			panic("NumCPUs wrong")
		}
		if !p.HardwareCoherent() {
			panic("SMP must be hardware coherent")
		}
		r := p.AllocShared(hamster.PageSize, "shared")
		if p.Me() == 0 {
			p.WriteF64(r.Base, 7.75)
		}
		p.LocalBarrier()
		if p.ReadF64(r.Base) != 7.75 {
			panic("coherence broken")
		}
		p.LocalBarrier()
		if p.CacheMisses() == 0 {
			panic("cache model inactive")
		}
	})
}

func TestInheritedSPMDSurface(t *testing.T) {
	s := boot(t, 3)
	var total int64
	s.Run(func(p *Proc) {
		r := p.AllocShared(hamster.PageSize, "ctr")
		var lock int
		if p.Me() == 0 {
			lock = p.CreateLock()
		}
		p.Barrier()
		p.Lock(lock)
		p.WriteI64(r.Base, p.ReadI64(r.Base)+int64(p.Me()))
		p.Unlock(lock)
		p.Barrier()
		if p.Me() == 0 {
			total = p.ReadI64(r.Base)
		}
	})
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
}
