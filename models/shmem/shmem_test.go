package shmem

import (
	"testing"

	"hamster"
)

func boot(t testing.TB, kind hamster.PlatformKind, nodes int) *System {
	t.Helper()
	s, err := Boot(hamster.Config{Platform: kind, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func TestSymmetricHeapInstancesAreSeparate(t *testing.T) {
	s := boot(t, hamster.HybridDSM, 3)
	s.Run(func(pe *PE) {
		x := pe.Malloc(64)
		// Everyone writes its own instance.
		pe.PutOneF64(x, float64(pe.MyPE()+1), pe.MyPE())
		pe.BarrierAll()
		// Each PE's instance holds its own value.
		for target := 0; target < pe.NPEs(); target++ {
			if got := pe.GetOneF64(x, target); got != float64(target+1) {
				panic("symmetric instances aliased")
			}
		}
		pe.BarrierAll()
	})
}

func TestOneSidedPutVisibleAfterBarrier(t *testing.T) {
	for _, kind := range []hamster.PlatformKind{hamster.SMP, hamster.HybridDSM, hamster.SWDSM} {
		t.Run(kind.String(), func(t *testing.T) {
			s := boot(t, kind, 2)
			s.Run(func(pe *PE) {
				buf := pe.Malloc(256)
				if pe.MyPE() == 0 {
					src := []float64{1.5, 2.5, 3.5}
					pe.PutF64(buf, src, 1) // one-sided: PE 1 does nothing
				}
				pe.BarrierAll()
				if pe.MyPE() == 1 {
					dst := make([]float64, 3)
					pe.GetF64(dst, buf, 1) // read own instance
					if dst[0] != 1.5 || dst[1] != 2.5 || dst[2] != 3.5 {
						panic("put data lost")
					}
				}
				pe.BarrierAll()
			})
		})
	}
}

func TestPutGetI64AndOffset(t *testing.T) {
	s := boot(t, hamster.HybridDSM, 2)
	s.Run(func(pe *PE) {
		x := pe.Malloc(128)
		if pe.MyPE() == 0 {
			pe.PutI64(x.Index(3), -42, 1)
		}
		pe.BarrierAll()
		if pe.MyPE() == 1 {
			if pe.GetI64(x.Index(3), 1) != -42 {
				panic("indexed put/get failed")
			}
		}
		pe.BarrierAll()
	})
}

func TestReductionsAndBroadcast(t *testing.T) {
	s := boot(t, hamster.SWDSM, 4)
	s.Run(func(pe *PE) {
		if got := pe.SumToAllF64(float64(pe.MyPE() + 1)); got != 10 {
			panic("sum_to_all wrong")
		}
		if got := pe.MaxToAllF64(float64(pe.MyPE())); got != 3 {
			panic("max_to_all wrong")
		}
		if got := pe.MinToAllF64(float64(pe.MyPE())); got != 0 {
			panic("min_to_all wrong")
		}
		if got := pe.BroadcastF64(1, float64(pe.MyPE()*100)); got != 100 {
			panic("broadcast wrong")
		}
	})
}

func TestAtomics(t *testing.T) {
	s := boot(t, hamster.HybridDSM, 4)
	s.Run(func(pe *PE) {
		ctr := pe.Malloc(8)
		pe.BarrierAll()
		// Everyone atomically increments PE 0's instance.
		for i := 0; i < 5; i++ {
			pe.AtomicAddI64(ctr, 1, 0)
		}
		pe.BarrierAll()
		if pe.MyPE() == 0 {
			// Fetch-add returns the prior value.
			old := pe.AtomicFetchAddI64(ctr, 0, 0)
			if old != 20 {
				panic("atomic adds lost")
			}
		}
		pe.BarrierAll()
	})
}

func TestLocks(t *testing.T) {
	s := boot(t, hamster.SWDSM, 3)
	s.Run(func(pe *PE) {
		acc := pe.Malloc(8)
		pe.BarrierAll()
		for i := 0; i < 4; i++ {
			pe.SetLock(7)
			v := pe.GetI64(acc, 0)
			pe.PutI64(acc, v+1, 0)
			pe.ClearLock(7)
		}
		pe.BarrierAll()
		if pe.MyPE() == 0 {
			pe.SetLock(7)
			if pe.GetI64(acc, 0) != 12 {
				panic("lock counter wrong")
			}
			pe.ClearLock(7)
		}
		pe.BarrierAll()
	})
}

func TestTestLock(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	s.Run(func(pe *PE) {
		if !pe.TestLock(3) {
			panic("test_lock on free lock failed")
		}
		if pe.TestLock(3) {
			panic("test_lock on held lock succeeded")
		}
		pe.ClearLock(3)
	})
}

func TestWaitUntil(t *testing.T) {
	s := boot(t, hamster.HybridDSM, 2)
	s.Run(func(pe *PE) {
		flag := pe.Malloc(8)
		pe.BarrierAll()
		if pe.MyPE() == 0 {
			pe.Compute(100000)
			pe.PutI64(flag, 1, 1) // set PE 1's flag
			pe.Quiet()
		} else {
			pe.WaitUntilI64(flag, CmpEQ, 1)
		}
		pe.BarrierAll()
	})
}

func TestQuietAndFence(t *testing.T) {
	s := boot(t, hamster.HybridDSM, 2)
	s.Run(func(pe *PE) {
		x := pe.Malloc(8)
		if pe.MyPE() == 0 {
			pe.PutOneF64(x, 3.25, 1)
			pe.Fence()
			pe.Quiet()
		}
		pe.BarrierAll()
		if pe.MyPE() == 1 && pe.GetOneF64(x, 1) != 3.25 {
			panic("put lost after quiet")
		}
		pe.BarrierAll()
	})
}

func TestFreeCollective(t *testing.T) {
	s := boot(t, hamster.SWDSM, 2)
	s.Run(func(pe *PE) {
		x := pe.Malloc(64)
		pe.Free(x)
	})
}

func TestOutOfRangeOffsetPanics(t *testing.T) {
	s := boot(t, hamster.SMP, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-instance offset")
		}
	}()
	s.Run(func(pe *PE) {
		x := pe.Malloc(8)
		pe.GetOneF64(x.Offset(hamster.PageSize+8), 0)
	})
}
