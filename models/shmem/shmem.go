// Package shmem implements the Cray SHMEM one-sided put/get programming
// model (Cray T3E, SG-2178) on top of HAMSTER — the far end of the model
// spectrum from the thread APIs (§5.2, Table 2). SHMEM's defining features
// are the symmetric heap (an allocation yields one instance per PE at the
// same logical address) and one-sided remote memory access: put/get move
// data without any action by the target PE, which maps naturally onto
// HAMSTER's global memory abstraction and especially well onto the hybrid
// DSM's hardware remote access.
//
// Method names mirror the original entry points:
//
//	shmem_init / start_pes     -> Boot / System.Run
//	shmem_my_pe / _num_pes     -> PE.MyPE / PE.NPEs
//	shmem_malloc / shmem_free  -> PE.Malloc / PE.Free
//	shmem_double_p / _g        -> PE.PutOneF64 / PE.GetOneF64
//	shmem_double_put / _get    -> PE.PutF64 / PE.GetF64
//	shmem_put64 / get64        -> PE.PutI64 / PE.GetI64
//	shmem_barrier_all          -> PE.BarrierAll
//	shmem_quiet                -> PE.Quiet
//	shmem_fence                -> PE.Fence
//	shmem_double_sum_to_all    -> PE.SumToAllF64
//	shmem_double_max_to_all    -> PE.MaxToAllF64
//	shmem_broadcast64          -> PE.BroadcastF64
//	shmem_atomic_add           -> PE.AtomicAddI64
//	shmem_atomic_fetch_add     -> PE.AtomicFetchAddI64
//	shmem_set_lock / clear/test-> PE.SetLock / ClearLock / TestLock
//	shmem_wait_until           -> PE.WaitUntilI64
package shmem

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"

	"hamster"
)

// SymAddr addresses a slot in the symmetric heap: the same SymAddr names
// each PE's own instance of the allocation.
type SymAddr struct {
	idx int
	off uint64
}

// Offset returns the symmetric address advanced by n bytes.
func (a SymAddr) Offset(n uint64) SymAddr { return SymAddr{idx: a.idx, off: a.off + n} }

// Index returns the word index form (off/8) helper for array code.
func (a SymAddr) Index(i int) SymAddr { return a.Offset(uint64(i) * 8) }

// LockCount is the size of the static SHMEM lock table.
const LockCount = 64

// System is one booted SHMEM world.
type System struct {
	rt    *hamster.Runtime
	mu    sync.Mutex
	heaps []symHeap
	locks [LockCount]int
	atoms [64]int // lock shards serializing remote atomics
}

type symHeap struct {
	base  hamster.Addr
	chunk uint64 // per-PE instance size, page aligned
}

// Boot performs shmem_init / start_pes.
func Boot(cfg hamster.Config) (*System, error) {
	rt, err := hamster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("shmem: %w", err)
	}
	s := &System{rt: rt}
	e := rt.Env(0)
	for i := range s.locks {
		s.locks[i] = e.Sync.NewLock()
	}
	for i := range s.atoms {
		s.atoms[i] = e.Sync.NewLock()
	}
	return s, nil
}

// Shutdown stops the model.
func (s *System) Shutdown() { s.rt.Close() }

// Runtime exposes the underlying runtime.
func (s *System) Runtime() *hamster.Runtime { return s.rt }

// Run executes the application on every PE.
func (s *System) Run(main func(pe *PE)) {
	s.rt.Run(func(e *hamster.Env) {
		main(&PE{e: e, sys: s})
	})
}

// PE is one processing element's handle.
type PE struct {
	e   *hamster.Env
	sys *System
}

// MyPE returns shmem_my_pe.
func (p *PE) MyPE() int { return p.e.ID() }

// NPEs returns shmem_n_pes.
func (p *PE) NPEs() int { return p.e.N() }

// Malloc performs shmem_malloc: a collective symmetric-heap allocation.
// Every PE receives the same SymAddr, naming a per-PE instance placed in
// that PE's local memory.
func (p *PE) Malloc(bytes uint64) SymAddr {
	npes := uint64(p.e.N())
	chunk := (bytes + hamster.PageSize - 1) / hamster.PageSize * hamster.PageSize
	r, err := p.e.Mem.Alloc(chunk*npes, hamster.AllocOpts{
		Name: "shmem_malloc", Policy: hamster.Block, Collective: true,
	})
	if err != nil {
		panic(fmt.Sprintf("shmem: malloc: %v", err))
	}
	p.sys.mu.Lock()
	idx := -1
	for i, h := range p.sys.heaps {
		if h.base == r.Base {
			idx = i
			break
		}
	}
	if idx < 0 {
		p.sys.heaps = append(p.sys.heaps, symHeap{base: r.Base, chunk: chunk})
		idx = len(p.sys.heaps) - 1
	}
	p.sys.mu.Unlock()
	return SymAddr{idx: idx}
}

// Free performs shmem_free (collective).
func (p *PE) Free(a SymAddr) {
	p.sys.mu.Lock()
	h := p.sys.heaps[a.idx]
	p.sys.mu.Unlock()
	p.e.Sync.Barrier()
	if p.MyPE() == 0 {
		reg, ok := p.e.Mem.RegionOf(h.base)
		if ok {
			_ = p.e.Mem.Free(reg)
		}
	}
	p.e.Sync.Barrier()
}

// translate resolves a symmetric address on a target PE.
func (p *PE) translate(a SymAddr, pe int) hamster.Addr {
	p.sys.mu.Lock()
	h := p.sys.heaps[a.idx]
	p.sys.mu.Unlock()
	if a.off >= h.chunk {
		panic(fmt.Sprintf("shmem: symmetric offset %d outside instance of %d bytes", a.off, h.chunk))
	}
	return h.base + hamster.Addr(uint64(pe)*h.chunk+a.off)
}

// PutOneF64 performs shmem_double_p: store one value into target PE's
// instance. One-sided: the target takes no action.
func (p *PE) PutOneF64(target SymAddr, v float64, pe int) {
	p.e.WriteF64(p.translate(target, pe), v)
}

// GetOneF64 performs shmem_double_g.
func (p *PE) GetOneF64(src SymAddr, pe int) float64 {
	return p.e.ReadF64(p.translate(src, pe))
}

// PutF64 performs shmem_double_put: a contiguous block store.
func (p *PE) PutF64(target SymAddr, src []float64, pe int) {
	base := p.translate(target, pe)
	for i, v := range src {
		p.e.WriteF64(base+hamster.Addr(8*i), v)
	}
}

// GetF64 performs shmem_double_get.
func (p *PE) GetF64(dst []float64, src SymAddr, pe int) {
	base := p.translate(src, pe)
	for i := range dst {
		dst[i] = p.e.ReadF64(base + hamster.Addr(8*i))
	}
}

// PutI64 performs shmem_put64 for one word.
func (p *PE) PutI64(target SymAddr, v int64, pe int) {
	p.e.WriteI64(p.translate(target, pe), v)
}

// GetI64 performs shmem_get64 for one word.
func (p *PE) GetI64(src SymAddr, pe int) int64 {
	return p.e.ReadI64(p.translate(src, pe))
}

// BarrierAll performs shmem_barrier_all: completes all outstanding puts
// and synchronizes all PEs. Consistency actions ride on the substrate
// barrier.
func (p *PE) BarrierAll() { p.e.Sync.Barrier() }

// Quiet performs shmem_quiet: waits for completion (and global
// visibility) of this PE's outstanding puts.
func (p *PE) Quiet() { p.e.Cons.Fence() }

// Fence performs shmem_fence: orders puts to each PE. The simulated
// substrates deliver puts in order already, so this is a cheap local
// ordering point (priced as a fence instruction).
func (p *PE) Fence() { p.e.Cons.Fence() }

// SumToAllF64 performs shmem_double_sum_to_all over all PEs.
func (p *PE) SumToAllF64(v float64) float64 {
	return p.reduce(v, func(a, b float64) float64 { return a + b })
}

// MaxToAllF64 performs shmem_double_max_to_all.
func (p *PE) MaxToAllF64(v float64) float64 {
	return p.reduce(v, func(a, b float64) float64 {
		if b > a {
			return b
		}
		return a
	})
}

// MinToAllF64 performs shmem_double_min_to_all.
func (p *PE) MinToAllF64(v float64) float64 {
	return p.reduce(v, func(a, b float64) float64 {
		if b < a {
			return b
		}
		return a
	})
}

// reduce combines one value per PE at PE 0 and redistributes the result
// over the cluster messaging layer.
func (p *PE) reduce(v float64, combine func(a, b float64) float64) float64 {
	const tagUp, tagDown = 0x5100, 0x5101
	if p.MyPE() == 0 {
		acc := v
		for i := 1; i < p.NPEs(); i++ {
			payload, _, ok := p.e.Cluster.Recv(tagUp)
			if !ok {
				panic("shmem: reduction interrupted")
			}
			acc = combine(acc, getF64(payload))
		}
		p.e.Cluster.Broadcast(tagDown, encF64(acc))
		return acc
	}
	p.e.Cluster.Send(0, tagUp, encF64(v))
	payload, _, ok := p.e.Cluster.Recv(tagDown)
	if !ok {
		panic("shmem: reduction interrupted")
	}
	return getF64(payload)
}

// BroadcastF64 performs shmem_broadcast64 for one value from root.
func (p *PE) BroadcastF64(root int, v float64) float64 {
	const tag = 0x5102
	if p.MyPE() == root {
		p.e.Cluster.Broadcast(tag, encF64(v))
		return v
	}
	payload, _, ok := p.e.Cluster.Recv(tag)
	if !ok {
		panic("shmem: broadcast interrupted")
	}
	return getF64(payload)
}

func encF64(v float64) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
	return buf
}

func getF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// AtomicAddI64 performs shmem_atomic_add on target PE's instance.
func (p *PE) AtomicAddI64(target SymAddr, delta int64, pe int) {
	p.AtomicFetchAddI64(target, delta, pe)
}

// AtomicFetchAddI64 performs shmem_atomic_fetch_add, returning the prior
// value. Remote atomics serialize through a lock shard (as SHMEM
// implementations without native network atomics do).
func (p *PE) AtomicFetchAddI64(target SymAddr, delta int64, pe int) int64 {
	addr := p.translate(target, pe)
	shard := p.sys.atoms[int(addr/8)%len(p.sys.atoms)]
	p.e.Sync.Lock(shard)
	old := p.e.ReadI64(addr)
	p.e.WriteI64(addr, old+delta)
	p.e.Sync.Unlock(shard)
	return old
}

// SetLock performs shmem_set_lock.
func (p *PE) SetLock(i int) { p.e.Sync.Lock(p.sys.locks[i%LockCount]) }

// ClearLock performs shmem_clear_lock.
func (p *PE) ClearLock(i int) { p.e.Sync.Unlock(p.sys.locks[i%LockCount]) }

// TestLock performs shmem_test_lock (true = lock obtained).
func (p *PE) TestLock(i int) bool { return p.e.Sync.TryLock(p.sys.locks[i%LockCount]) }

// Comparison operators for WaitUntilI64, mirroring SHMEM_CMP_*.
type Cmp int

// Comparison operators.
const (
	CmpEQ Cmp = iota
	CmpNE
	CmpGT
	CmpGE
	CmpLT
	CmpLE
)

// WaitUntilI64 performs shmem_wait_until on this PE's own instance:
// blocks until a remote put makes the condition true. Polls with
// consistency refreshes; each poll charges a sync-scale cost.
func (p *PE) WaitUntilI64(a SymAddr, cmp Cmp, value int64) {
	addr := p.translate(a, p.MyPE())
	for {
		v := p.e.ReadI64(addr)
		sat := false
		switch cmp {
		case CmpEQ:
			sat = v == value
		case CmpNE:
			sat = v != value
		case CmpGT:
			sat = v > value
		case CmpGE:
			sat = v >= value
		case CmpLT:
			sat = v < value
		case CmpLE:
			sat = v <= value
		}
		if sat {
			return
		}
		p.e.Cons.Fence() // discard stale copies so the next read refetches
		runtime.Gosched()
	}
}

// Compute charges local CPU work.
func (p *PE) Compute(flops uint64) { p.e.Compute(flops) }

// Env exposes the raw HAMSTER services.
func (p *PE) Env() *hamster.Env { return p.e }
