package apps

import (
	"hamster/internal/memsim"
	"hamster/internal/vclock"
)

// PI integrates 4/(1+x²) over [0,1] with n rectangles (the classic pi
// benchmark from the JiaJia distribution). Work is embarrassingly
// parallel; the only communication is the lock-protected accumulation of
// per-process partial sums, so every platform runs it at essentially
// local speed — the near-zero bars of Figures 2–4.
func PI(m Machine, n int) Result {
	t0 := m.Now()
	acc := m.Alloc(memsim.PageSize, "pi.acc", memsim.Fixed)

	var barT vclock.Duration
	timedBarrier(m, &barT)
	initT := vclock.Since(t0, m.Now())

	coreStart := m.Now()
	h := 1.0 / float64(n)
	sum := 0.0
	for i := m.ID(); i < n; i += m.N() {
		x := h * (float64(i) + 0.5)
		sum += 4.0 / (1.0 + x*x)
	}
	// ~6 flops per rectangle, charged in one batch.
	m.Compute(uint64(6 * (n / m.N())))
	coreT := vclock.Since(coreStart, m.Now())

	m.Lock(0)
	m.WriteF64(acc, m.ReadF64(acc)+sum*h)
	m.Unlock(0)
	timedBarrier(m, &barT)

	check := m.ReadF64(acc)
	timedBarrier(m, &barT)

	return Result{
		Check: check,
		T: Timings{
			Total: vclock.Since(t0, m.Now()),
			Init:  initT,
			Core:  coreT,
			Bar:   barT,
		},
	}
}
