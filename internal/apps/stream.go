package apps

import (
	"hamster/internal/memsim"
	"hamster/internal/vclock"
)

// Stream is a placement-sensitive microkernel used by the distribution-
// policy ablation: every process sweeps the whole array once (read),
// then updates its strided share (write), for iters rounds. With Block
// placement most of a process's writes are local; with Fixed placement
// everything concentrates on one home; FirstTouch follows the first
// sweep's reader.
func Stream(m Machine, n, iters int, pol memsim.Policy) Result {
	t0 := m.Now()
	arr := m.Alloc(uint64(n)*8, "stream", pol)
	var barT vclock.Duration

	lo, hi := blockRange(n, m.N(), m.ID())
	mine := make([]float64, hi-lo)
	for i := lo; i < hi; i++ {
		mine[i-lo] = float64(i)
	}
	m.WriteF64Block(f64(arr, lo), mine)
	timedBarrier(m, &barT)
	initT := vclock.Since(t0, m.Now())

	coreStart := m.Now()
	sum := 0.0
	sweep := make([]float64, n)
	for it := 0; it < iters; it++ {
		m.ReadF64Block(f64(arr, 0), sweep)
		for i := 0; i < n; i++ {
			sum += sweep[i]
		}
		// The read sweep and the update phase must be separated by a
		// barrier: without it, one process's whole-array read races
		// another's block update. (Found by the §6 consistency checker —
		// internal/apps.TestAllKernelsAreDRF.)
		timedBarrier(m, &barT)
		m.ReadF64Block(f64(arr, lo), mine)
		for i := range mine {
			mine[i]++
		}
		m.WriteF64Block(f64(arr, lo), mine)
		m.Compute(uint64(2 * n))
		timedBarrier(m, &barT)
	}
	coreT := vclock.Since(coreStart, m.Now())

	check := 0.0
	for i := 0; i < n; i += 8 {
		check += m.ReadF64(f64(arr, i))
	}
	timedBarrier(m, &barT)
	return Result{
		Check: check,
		T: Timings{
			Total: vclock.Since(t0, m.Now()),
			Init:  initT,
			Core:  coreT,
			Bar:   barT,
		},
	}
}

// OwnerWrites is the home-migration ablation kernel: every process
// repeatedly rewrites its own block of an array whose pages all live on
// node 0 (Fixed placement). Without migration each iteration pays twin +
// full-page diff + transfer per page; with single-writer home migration
// the pages move to their writers and the loop turns local.
func OwnerWrites(m Machine, n, iters int, pol memsim.Policy) Result {
	t0 := m.Now()
	arr := m.Alloc(uint64(n)*8, "ownerwrites", pol)
	lo, hi := blockRange(n, m.N(), m.ID())
	var barT vclock.Duration

	for i := lo; i < hi; i++ {
		m.WriteF64(f64(arr, i), float64(i))
	}
	timedBarrier(m, &barT)
	initT := vclock.Since(t0, m.Now())

	coreStart := m.Now()
	for it := 0; it < iters; it++ {
		for i := lo; i < hi; i++ {
			m.WriteF64(f64(arr, i), float64(it+i))
		}
		m.Compute(uint64(hi - lo))
		timedBarrier(m, &barT)
	}
	coreT := vclock.Since(coreStart, m.Now())

	// One shared validation sweep after the final barrier.
	check := 0.0
	for i := 0; i < n; i += 64 {
		check += m.ReadF64(f64(arr, i))
	}
	timedBarrier(m, &barT)
	return Result{
		Check: check,
		T: Timings{
			Total: vclock.Since(t0, m.Now()),
			Init:  initT,
			Core:  coreT,
			Bar:   barT,
		},
	}
}

// DisjointLocks is the protocol ablation kernel: every process updates
// its own counters, each under its own lock, so the lock scopes are
// disjoint — but the counters are packed onto shared pages. Under Scope
// Consistency nobody is ever invalidated (no process acquires another's
// locks); under eager Release Consistency every release broadcasts
// notices and every acquire invalidates, so the shared pages ping-pong.
func DisjointLocks(m Machine, counters, iters int) Result {
	t0 := m.Now()
	arr := m.Alloc(uint64(counters)*8, "disjoint", memsim.Cyclic)
	var barT vclock.Duration
	timedBarrier(m, &barT)
	initT := vclock.Since(t0, m.Now())

	coreStart := m.Now()
	for it := 0; it < iters; it++ {
		for c := m.ID(); c < counters; c += m.N() {
			l := c % LockTableSize
			m.Lock(l)
			m.WriteI64(f64(arr, c), m.ReadI64(f64(arr, c))+1)
			m.Unlock(l)
		}
	}
	coreT := vclock.Since(coreStart, m.Now())
	timedBarrier(m, &barT)

	check := 0.0
	for c := 0; c < counters; c++ {
		check += float64(m.ReadI64(f64(arr, c)))
	}
	timedBarrier(m, &barT)
	return Result{
		Check: check,
		T: Timings{
			Total: vclock.Since(t0, m.Now()),
			Init:  initT,
			Core:  coreT,
			Bar:   barT,
		},
	}
}
