package apps

import (
	"encoding/binary"

	"hamster"
	"hamster/internal/cluster"
	"hamster/internal/core"
	"hamster/internal/simnet"
)

// Checkpointer is the optional Machine extension for application-assisted
// checkpointing: bindings over the core services expose the runtime's
// state registry, bindings over bare substrates do not. Kernels probe for
// it and run identically either way.
type Checkpointer interface {
	RegisterCheckpointable(name string, save func() []byte, restore func([]byte)) bool
}

func (m *envMachine) RegisterCheckpointable(name string, save func() []byte, restore func([]byte)) bool {
	return m.e.RegisterCheckpointable(name, save, restore)
}

func (m *jiaMachine) RegisterCheckpointable(name string, save func() []byte, restore func([]byte)) bool {
	return m.j.Env().RegisterCheckpointable(name, save, restore)
}

// AddReportSection forwards workload report sections to the monitor
// (core.Env.AddReportSection). Kernels probe for the method the same
// way they probe Checkpointer; bindings over bare substrates simply
// lack it.
func (m *envMachine) AddReportSection(title string, render func() string) {
	m.e.AddReportSection(title, render)
}

func (m *jiaMachine) AddReportSection(title string, render func() string) {
	m.j.Env().AddReportSection(title, render)
}

// progress returns a phase counter registered with the machine's
// checkpoint service when it has one: snapshots capture the counter, and
// on a resumed run it starts at the captured value, letting the kernel
// skip completed phases — including their barriers, which keeps the
// resumed run's barrier numbering aligned with the original's. Without a
// checkpoint service it is a plain zero-initialized counter.
func progress(m Machine, name string) *int64 {
	p := new(int64)
	if c, ok := m.(Checkpointer); ok {
		c.RegisterCheckpointable(name,
			func() []byte {
				b := make([]byte, 8)
				binary.LittleEndian.PutUint64(b, uint64(*p))
				return b
			},
			func(b []byte) {
				if len(b) == 8 {
					*p = int64(binary.LittleEndian.Uint64(b))
				}
			})
	}
	return p
}

// RunRecoverable executes a kernel through the full core services under a
// fault plan, recovering from planned node crashes via the cluster
// orchestrator. Returns the final attempt's per-node results, its runtime
// (caller closes it), and how many recoveries the run needed.
func RunRecoverable(cfg hamster.Config, plan simnet.FaultPlan, kernel Kernel) ([]Result, *hamster.Runtime, int, error) {
	results := make([]Result, cfg.Nodes)
	var locks []int
	rt, recoveries, err := cluster.RunRecoverable(cfg, plan,
		func(rt *core.Runtime) {
			// Pre-run setup replays on every attempt; on a resumed runtime
			// NewLock hands back the restored lock table.
			locks = make([]int, LockTableSize)
			e0 := rt.Env(0)
			for i := range locks {
				locks[i] = e0.Sync.NewLock()
			}
		},
		func(e *core.Env) {
			results[e.ID()] = kernel(&envMachine{e: e, locks: locks})
		})
	if err != nil {
		return nil, nil, recoveries, err
	}
	return results, rt, recoveries, nil
}
