package apps

import (
	"fmt"
	"sync"

	"hamster"
	"hamster/internal/memsim"
	"hamster/internal/platform"
	"hamster/internal/vclock"
	"hamster/models/jiajia"
)

// Kernel is a benchmark entry point bound to its parameters.
type Kernel func(m Machine) Result

// RunOnSubstrate executes a kernel directly on a bare substrate — the
// "native execution" baseline of §5.3 (e.g., unmodified JiaJia): no
// framework dispatch costs, no monitoring, the DSM's own messaging. It
// returns one Result per node.
func RunOnSubstrate(sub platform.Substrate, kernel Kernel) []Result {
	world := &nativeWorld{sub: sub}
	for i := 0; i < LockTableSize; i++ {
		world.locks[i] = sub.NewLock()
	}
	results := make([]Result, sub.Nodes())
	var wg sync.WaitGroup
	for id := 0; id < sub.Nodes(); id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = kernel(&nativeMachine{w: world, id: id})
		}(id)
	}
	wg.Wait()
	return results
}

type nativeWorld struct {
	sub   platform.Substrate
	locks [LockTableSize]int

	mu     sync.Mutex
	allocs []memsim.Region
}

type nativeMachine struct {
	w       *nativeWorld
	id      int
	collIdx int
}

func (m *nativeMachine) ID() int { return m.id }
func (m *nativeMachine) N() int  { return m.w.sub.Nodes() }

// Alloc provides the collective allocation the bare substrate lacks:
// node 0 allocates, a barrier publishes, all nodes return the same base.
func (m *nativeMachine) Alloc(bytes uint64, name string, pol memsim.Policy) memsim.Addr {
	w := m.w
	if m.id == 0 {
		r, err := w.sub.Alloc(bytes, name, pol, 0)
		if err != nil {
			panic(fmt.Sprintf("apps: native alloc: %v", err))
		}
		w.mu.Lock()
		w.allocs = append(w.allocs, r)
		w.mu.Unlock()
	}
	w.sub.Barrier(m.id)
	w.mu.Lock()
	r := w.allocs[m.collIdx]
	w.mu.Unlock()
	m.collIdx++
	return r.Base
}

func (m *nativeMachine) ReadF64(a memsim.Addr) float64     { return m.w.sub.ReadF64(m.id, a) }
func (m *nativeMachine) WriteF64(a memsim.Addr, v float64) { m.w.sub.WriteF64(m.id, a, v) }
func (m *nativeMachine) ReadI64(a memsim.Addr) int64       { return m.w.sub.ReadI64(m.id, a) }
func (m *nativeMachine) WriteI64(a memsim.Addr, v int64)   { m.w.sub.WriteI64(m.id, a, v) }

func (m *nativeMachine) ReadF64Block(a memsim.Addr, dst []float64) {
	m.w.sub.ReadF64Block(m.id, a, dst)
}
func (m *nativeMachine) WriteF64Block(a memsim.Addr, src []float64) {
	m.w.sub.WriteF64Block(m.id, a, src)
}
func (m *nativeMachine) ReadI64Block(a memsim.Addr, dst []int64) {
	m.w.sub.ReadI64Block(m.id, a, dst)
}
func (m *nativeMachine) WriteI64Block(a memsim.Addr, src []int64) {
	m.w.sub.WriteI64Block(m.id, a, src)
}
func (m *nativeMachine) Compute(flops uint64) { m.w.sub.Compute(m.id, flops) }
func (m *nativeMachine) Lock(i int)           { m.w.sub.Acquire(m.id, m.w.locks[i%LockTableSize]) }
func (m *nativeMachine) Unlock(i int)         { m.w.sub.Release(m.id, m.w.locks[i%LockTableSize]) }
func (m *nativeMachine) Barrier()             { m.w.sub.Barrier(m.id) }
func (m *nativeMachine) Now() vclock.Time     { return m.w.sub.Clock(m.id).Now() }

// RunOnJia executes a kernel through the full HAMSTER stack with the
// JiaJia programming model on top — the framework path of Figure 2 and the
// identical-binary path of Figures 3–4. The kernel code is byte-for-byte
// the same as in RunOnSubstrate; only the Machine binding differs.
func RunOnJia(sys *jiajia.System, kernel Kernel) []Result {
	results := make([]Result, sys.Runtime().Nodes())
	sys.Run(func(j *jiajia.Jia) {
		results[j.Pid()] = kernel(&jiaMachine{j: j})
	})
	return results
}

type jiaMachine struct {
	j *jiajia.Jia
}

func (m *jiaMachine) ID() int { return m.j.Pid() }
func (m *jiaMachine) N() int  { return m.j.Hosts() }

func (m *jiaMachine) Alloc(bytes uint64, name string, pol memsim.Policy) memsim.Addr {
	// The jia_* API offers block (jia_alloc) and cyclic (jia_alloc3)
	// distribution; Fixed falls back to jia_alloc, whose block layout
	// puts small allocations on host 0 anyway.
	switch pol {
	case memsim.Cyclic:
		return memsim.Addr(m.j.Alloc3(bytes, 0))
	default:
		return memsim.Addr(m.j.Alloc(bytes))
	}
}

func (m *jiaMachine) ReadF64(a memsim.Addr) float64     { return m.j.ReadF64(a) }
func (m *jiaMachine) WriteF64(a memsim.Addr, v float64) { m.j.WriteF64(a, v) }
func (m *jiaMachine) ReadI64(a memsim.Addr) int64       { return m.j.ReadI64(a) }
func (m *jiaMachine) WriteI64(a memsim.Addr, v int64)   { m.j.WriteI64(a, v) }

func (m *jiaMachine) ReadF64Block(a memsim.Addr, dst []float64)  { m.j.ReadF64Block(a, dst) }
func (m *jiaMachine) WriteF64Block(a memsim.Addr, src []float64) { m.j.WriteF64Block(a, src) }
func (m *jiaMachine) ReadI64Block(a memsim.Addr, dst []int64)    { m.j.ReadI64Block(a, dst) }
func (m *jiaMachine) WriteI64Block(a memsim.Addr, src []int64)   { m.j.WriteI64Block(a, src) }
func (m *jiaMachine) Compute(flops uint64)                       { m.j.Compute(flops) }
func (m *jiaMachine) Lock(i int)                                 { m.j.Lock(i % LockTableSize) }
func (m *jiaMachine) Unlock(i int)                               { m.j.Unlock(i % LockTableSize) }
func (m *jiaMachine) Barrier()                                   { m.j.Barrier() }
func (m *jiaMachine) Now() vclock.Time                           { return m.j.Env().Now() }

// RunOnEnv executes a kernel directly against HAMSTER's core services (no
// programming-model layer) — used by examples and by ablations that vary
// core parameters.
func RunOnEnv(rt *hamster.Runtime, kernel Kernel) []Result {
	locks := make([]int, LockTableSize)
	e0 := rt.Env(0)
	for i := range locks {
		locks[i] = e0.Sync.NewLock()
	}
	results := make([]Result, rt.Nodes())
	rt.Run(func(e *hamster.Env) {
		results[e.ID()] = kernel(&envMachine{e: e, locks: locks})
	})
	return results
}

type envMachine struct {
	e     *hamster.Env
	locks []int
}

func (m *envMachine) ID() int { return m.e.ID() }
func (m *envMachine) N() int  { return m.e.N() }

func (m *envMachine) Alloc(bytes uint64, name string, pol memsim.Policy) memsim.Addr {
	r, err := m.e.Mem.Alloc(bytes, hamster.AllocOpts{Name: name, Policy: pol, Collective: true})
	if err != nil {
		panic(fmt.Sprintf("apps: env alloc: %v", err))
	}
	return r.Base
}

func (m *envMachine) ReadF64(a memsim.Addr) float64     { return m.e.ReadF64(a) }
func (m *envMachine) WriteF64(a memsim.Addr, v float64) { m.e.WriteF64(a, v) }
func (m *envMachine) ReadI64(a memsim.Addr) int64       { return m.e.ReadI64(a) }
func (m *envMachine) WriteI64(a memsim.Addr, v int64)   { m.e.WriteI64(a, v) }

func (m *envMachine) ReadF64Block(a memsim.Addr, dst []float64)  { m.e.ReadF64Block(a, dst) }
func (m *envMachine) WriteF64Block(a memsim.Addr, src []float64) { m.e.WriteF64Block(a, src) }
func (m *envMachine) ReadI64Block(a memsim.Addr, dst []int64)    { m.e.ReadI64Block(a, dst) }
func (m *envMachine) WriteI64Block(a memsim.Addr, src []int64)   { m.e.WriteI64Block(a, src) }
func (m *envMachine) Compute(flops uint64)                       { m.e.Compute(flops) }
func (m *envMachine) Lock(i int)                                 { m.e.Sync.Lock(m.locks[i%LockTableSize]) }
func (m *envMachine) Unlock(i int)                               { m.e.Sync.Unlock(m.locks[i%LockTableSize]) }
func (m *envMachine) Barrier()                                   { m.e.Sync.Barrier() }
func (m *envMachine) Now() vclock.Time                           { return m.e.Now() }

// MaxTotal returns the slowest node's total time — the SPMD wall clock.
func MaxTotal(results []Result) vclock.Duration {
	var max vclock.Duration
	for _, r := range results {
		if r.T.Total > max {
			max = r.T.Total
		}
	}
	return max
}

// MaxPhase extracts the slowest node's value for one phase selector.
func MaxPhase(results []Result, sel func(Timings) vclock.Duration) vclock.Duration {
	var max vclock.Duration
	for _, r := range results {
		if v := sel(r.T); v > max {
			max = v
		}
	}
	return max
}

// RunOnEnvSeq is RunOnEnv under the Sequential consistency model of the
// consistency API: every read is preceded and every write followed by a
// full fence. It exists for the consistency ablation — demonstrating why
// relaxed models are indispensable on loosely coupled platforms (§4.5).
func RunOnEnvSeq(rt *hamster.Runtime, kernel Kernel) []Result {
	locks := make([]int, LockTableSize)
	e0 := rt.Env(0)
	for i := range locks {
		locks[i] = e0.Sync.NewLock()
	}
	results := make([]Result, rt.Nodes())
	rt.Run(func(e *hamster.Env) {
		results[e.ID()] = kernel(&seqMachine{envMachine{e: e, locks: locks}})
	})
	return results
}

type seqMachine struct {
	envMachine
}

func (m *seqMachine) ReadF64(a memsim.Addr) float64 {
	m.e.Cons.Fence()
	return m.e.ReadF64(a)
}

func (m *seqMachine) WriteF64(a memsim.Addr, v float64) {
	m.e.WriteF64(a, v)
	m.e.Cons.Fence()
}

func (m *seqMachine) ReadI64(a memsim.Addr) int64 {
	m.e.Cons.Fence()
	return m.e.ReadI64(a)
}

func (m *seqMachine) WriteI64(a memsim.Addr, v int64) {
	m.e.WriteI64(a, v)
	m.e.Cons.Fence()
}

// The sequential-consistency ablation fences around EVERY word, so its
// block accessors degrade to fenced word loops — a block cannot be
// allowed to skip the per-access fences the model is defined by.

func (m *seqMachine) ReadF64Block(a memsim.Addr, dst []float64) {
	for i := range dst {
		dst[i] = m.ReadF64(f64(a, i))
	}
}

func (m *seqMachine) WriteF64Block(a memsim.Addr, src []float64) {
	for i, v := range src {
		m.WriteF64(f64(a, i), v)
	}
}

func (m *seqMachine) ReadI64Block(a memsim.Addr, dst []int64) {
	for i := range dst {
		dst[i] = m.ReadI64(f64(a, i))
	}
}

func (m *seqMachine) WriteI64Block(a memsim.Addr, src []int64) {
	for i, v := range src {
		m.WriteI64(f64(a, i), v)
	}
}
