// Package apps contains the benchmark kernels of the paper's evaluation
// (Table 1): Matrix Multiplication, PI, Successive Over-Relaxation, LU
// decomposition, and the WATER molecular dynamics code — the programs from
// the JiaJia distribution, adapted and optimized for a DSM API.
//
// Kernels are written against the Machine interface so that the identical
// code runs on a bare substrate (the "native JiaJia" baseline of §5.3) or
// through the HAMSTER framework and any of its programming models — the
// identical-binary property of §5.4. All kernels compute real results and
// return a checksum, so a consistency-protocol bug shows up as a numeric
// mismatch across platforms, not just as an odd timing.
package apps

import (
	"hamster/internal/memsim"
	"hamster/internal/vclock"
)

// Machine is the platform surface a kernel needs: SPMD identity, global
// memory with placement, synchronization, compute charging, and timing.
type Machine interface {
	// ID is this process's rank; N the process count.
	ID() int
	N() int

	// Alloc collectively reserves global memory with a placement policy;
	// all processes receive the same base address.
	Alloc(bytes uint64, name string, pol memsim.Policy) memsim.Addr

	ReadF64(a memsim.Addr) float64
	WriteF64(a memsim.Addr, v float64)
	ReadI64(a memsim.Addr) int64
	WriteI64(a memsim.Addr, v int64)

	// Block accessors move contiguous word runs through the substrate's
	// bulk fast path: same modeled cost and consistency actions as the
	// per-word loop, much cheaper to simulate. A block must not span a
	// synchronization point.
	ReadF64Block(a memsim.Addr, dst []float64)
	WriteF64Block(a memsim.Addr, src []float64)
	ReadI64Block(a memsim.Addr, dst []int64)
	WriteI64Block(a memsim.Addr, src []int64)

	// Compute charges local CPU work in floating-point operations.
	Compute(flops uint64)

	// Lock/Unlock address a pre-provisioned global lock table.
	Lock(i int)
	Unlock(i int)
	// Barrier synchronizes all processes.
	Barrier()

	// Now returns this process's virtual time.
	Now() vclock.Time
}

// LockTableSize is the number of locks adapters must provision.
const LockTableSize = 64

// Timings breaks a kernel run into the phases reported by the paper's
// LU split (Figure 2: all / without init / computational core / barriers).
type Timings struct {
	Total vclock.Duration // whole kernel
	Init  vclock.Duration // initialization (write-only population)
	Core  vclock.Duration // computational core without synchronization
	Bar   vclock.Duration // time spent in barriers
}

// Result is one process's view of a kernel run.
type Result struct {
	Check float64 // platform-independent numeric checksum
	T     Timings
}

// f64 addresses element i of a float64 array at base.
func f64(base memsim.Addr, i int) memsim.Addr {
	return base + memsim.Addr(8*i)
}

// timedBarrier crosses the barrier and accumulates the wait into *bar.
func timedBarrier(m Machine, bar *vclock.Duration) {
	t0 := m.Now()
	m.Barrier()
	*bar += vclock.Since(t0, m.Now())
}

// blockRange splits n items into contiguous per-process blocks and
// returns process id's [lo, hi) range.
func blockRange(n, procs, id int) (lo, hi int) {
	per := (n + procs - 1) / procs
	lo = id * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
