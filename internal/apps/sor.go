package apps

import (
	"hamster/internal/memsim"
	"hamster/internal/vclock"
)

// SOR runs red-black Successive Over-Relaxation on an n×n grid for iters
// sweeps (the JiaJia SOR benchmark). The optimized variant partitions the
// grid into contiguous row blocks — each process only exchanges boundary
// rows with its neighbors, the locality optimization §5.4 discusses. The
// unoptimized variant deals rows round-robin, so nearly every page is
// shared by several writers and the page-based software DSM drowns in
// faults, diffs, and invalidations while the hybrid DSM just pays per-word
// remote accesses — the big unopt-SOR bar of Figure 3.
func SOR(m Machine, n, iters int, optimized bool) Result {
	t0 := m.Now()
	grid := m.Alloc(uint64(n)*uint64(n)*8, "sor.grid", memsim.Block)

	var barT vclock.Duration
	var myRows []int
	if optimized {
		lo, hi := blockRange(n, m.N(), m.ID())
		for i := lo; i < hi; i++ {
			myRows = append(myRows, i)
		}
	} else {
		for i := m.ID(); i < n; i += m.N() {
			myRows = append(myRows, i)
		}
	}

	// prog counts completed phases (1 = init, 1+s = s color sweeps). A
	// resumed run starts with the captured value and skips completed
	// phases together with their barriers, so the remaining barriers line
	// up with the original run's numbering.
	prog := progress(m, "sor.phase")

	// Init: each process populates its rows, one block transfer per row;
	// boundary values are fixed.
	rowBuf := make([]float64, n)
	if *prog < 1 {
		for _, i := range myRows {
			for j := 0; j < n; j++ {
				v := 0.0
				if i == 0 || j == 0 || i == n-1 || j == n-1 {
					v = float64((i+j)%3 + 1)
				}
				rowBuf[j] = v
			}
			m.WriteF64Block(f64(grid, i*n), rowBuf)
		}
		*prog = 1
		timedBarrier(m, &barT)
	}
	initT := vclock.Since(t0, m.Now())

	const omega = 0.5
	coreT := vclock.Duration(0)
	for it := 0; it < iters; it++ {
		for color := 0; color < 2; color++ {
			phase := int64(2 + it*2 + color)
			if *prog >= phase {
				continue
			}
			cs := m.Now()
			for _, i := range myRows {
				if i == 0 || i == n-1 {
					continue
				}
				// Own row: one block read serves old/left/right. The
				// neighbor rows must stay word reads of the opposite color
				// only — a whole-row read would race the neighbors' same-
				// phase writes to their active cells.
				m.ReadF64Block(f64(grid, i*n), rowBuf)
				for j := 1 + (i+color)%2; j < n-1; j += 2 {
					up := m.ReadF64(f64(grid, (i-1)*n+j))
					down := m.ReadF64(f64(grid, (i+1)*n+j))
					left := rowBuf[j-1]
					right := rowBuf[j+1]
					old := rowBuf[j]
					m.WriteF64(f64(grid, i*n+j),
						old+omega*((up+down+left+right)/4-old))
				}
				m.Compute(uint64(7 * (n - 2) / 2))
			}
			coreT += vclock.Since(cs, m.Now())
			*prog = phase
			timedBarrier(m, &barT)
		}
	}

	// Checksum: interior norm row-sampled (read by all, shared pages).
	check := 0.0
	for i := 1; i < n-1; i += n / 8 {
		m.ReadF64Block(f64(grid, i*n+1), rowBuf[:n-2])
		for j := 1; j < n-1; j++ {
			check += rowBuf[j-1]
		}
	}
	timedBarrier(m, &barT)

	return Result{
		Check: check,
		T: Timings{
			Total: vclock.Since(t0, m.Now()),
			Init:  initT,
			Core:  coreT,
			Bar:   barT,
		},
	}
}
