package apps

import (
	"hamster/internal/memsim"
	"hamster/internal/vclock"
)

// LU performs an in-place LU decomposition (Gaussian elimination without
// pivoting, diagonally dominant input) of an n×n matrix with rows dealt
// cyclically across processes — the JiaJia LU benchmark. Per §5.3/§5.4 the
// interesting structure is:
//
//   - a write-only initialization phase that is very expensive on a
//     software DSM (every remote page costs twin + full-page diff) but
//     cheap with hybrid posted writes,
//   - a computational core where each elimination step broadcasts the
//     pivot row through shared memory, and
//   - one barrier per elimination step, so barrier cost is magnified:
//     the "LU bar" series of Figures 2–4.
func LU(m Machine, n int) Result {
	t0 := m.Now()
	// Rows are padded to whole pages, as the JiaJia-adapted benchmarks
	// pad their arrays: without padding, cyclically owned rows share
	// pages and page-based DSMs drown in false sharing. With padding,
	// row i occupies its own page(s) and — under cyclic placement — is
	// homed on its owner.
	rowWords := (n*8 + memsim.PageSize - 1) / memsim.PageSize * memsim.PageSize / 8
	stride := rowWords
	mat := m.Alloc(uint64(n)*uint64(stride)*8, "lu.A", memsim.Cyclic)

	var barT vclock.Duration

	// Init: process 0 populates the whole matrix — the serial, write-only
	// initialization §5.4 calls out: on a software DSM every remote page
	// costs a fault, a twin, and a full-page diff, while the hybrid DSM
	// streams posted remote writes.
	if m.ID() == 0 {
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := float64((i*j)%9)/16.0 + 0.25
				if i == j {
					v = float64(n) // diagonal dominance: no pivoting needed
				}
				row[j] = v
			}
			m.WriteF64Block(f64(mat, i*stride), row)
		}
	}
	timedBarrier(m, &barT)
	initT := vclock.Since(t0, m.Now())

	coreT := vclock.Duration(0)
	pivRow := make([]float64, n)
	myRow := make([]float64, n)
	for k := 0; k < n-1; k++ {
		cs := m.Now()
		pivot := m.ReadF64(f64(mat, k*stride+k))
		// One block fetch of the pivot row's trailing segment serves every
		// row this process eliminates in this step.
		piv := pivRow[:n-k-1]
		m.ReadF64Block(f64(mat, k*stride+k+1), piv)
		for i := k + 1; i < n; i++ {
			if i%m.N() != m.ID() {
				continue
			}
			factor := m.ReadF64(f64(mat, i*stride+k)) / pivot
			m.WriteF64(f64(mat, i*stride+k), factor)
			row := myRow[:n-k-1]
			m.ReadF64Block(f64(mat, i*stride+k+1), row)
			for j := range row {
				row[j] -= factor * piv[j]
			}
			m.WriteF64Block(f64(mat, i*stride+k+1), row)
			m.Compute(uint64(2*(n-k-1) + 2))
		}
		coreT += vclock.Since(cs, m.Now())
		timedBarrier(m, &barT)
	}

	// Checksum: trace of the factored matrix (product of U's diagonal
	// would overflow; the trace is stable and owner-independent).
	check := 0.0
	for i := 0; i < n; i++ {
		check += m.ReadF64(f64(mat, i*stride+i))
	}
	timedBarrier(m, &barT)

	return Result{
		Check: check,
		T: Timings{
			Total: vclock.Since(t0, m.Now()),
			Init:  initT,
			Core:  coreT,
			Bar:   barT,
		},
	}
}
