package apps

import (
	"hamster/internal/memsim"
	"hamster/internal/vclock"
)

// MatMult multiplies two n×n matrices, rows of the result partitioned in
// blocks across processes (the JiaJia mat benchmark). A and C are
// block-distributed so each process initializes and produces its own rows
// locally; B is read by every process and block-distributed, so remote
// rows are fetched once and then served from the page cache — the reason
// MatMult runs well on DSM systems and, being memory bound, even beats the
// bus-contended SMP in Figure 4.
func MatMult(m Machine, n int) Result {
	t0 := m.Now()
	bytes := uint64(n) * uint64(n) * 8
	a := m.Alloc(bytes, "mat.A", memsim.Block)
	b := m.Alloc(bytes, "mat.B", memsim.Block)
	c := m.Alloc(bytes, "mat.C", memsim.Block)
	lo, hi := blockRange(n, m.N(), m.ID())

	var barT vclock.Duration

	// prog counts completed phases (1 = init, 2 = core). A resumed run
	// starts with the captured value and skips completed phases together
	// with their barriers (see SOR).
	prog := progress(m, "mat.phase")

	// Init: every process populates its own row block of A and B, one
	// block transfer per row.
	rowA := make([]float64, n)
	rowB := make([]float64, n)
	if *prog < 1 {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				rowA[j] = float64((i+j)%7) / 8.0
				rowB[j] = float64((i*j)%5) / 4.0
			}
			m.WriteF64Block(f64(a, i*n), rowA)
			m.WriteF64Block(f64(b, i*n), rowB)
		}
		*prog = 1
		timedBarrier(m, &barT)
	}
	initT := vclock.Since(t0, m.Now())

	// Core: C[i][j] = sum_k A[i][k]*B[k][j]. The inner loop stays strictly
	// word-based: the interleaved A-row/B-column page touches are the
	// memory-bound access pattern Figure 4 measures — B's column walk
	// cycles more pages than the direct-mapped CPU cache holds, so every
	// interleaved A touch conflict-misses too, and the contended SMP bus
	// pays for both streams. Hoisting the A row into one block transfer
	// per element halves the SMP's misses and erases the DSM crossover.
	// The wall-clock cost of the word loop is recovered inside the
	// substrates (see the swdsm fast-frame set), not by changing the
	// kernel's access sequence.
	coreStart := m.Now()
	coreT := vclock.Duration(0)
	if *prog < 2 {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k < n; k++ {
					sum += m.ReadF64(f64(a, i*n+k)) * m.ReadF64(f64(b, k*n+j))
				}
				m.Compute(uint64(2 * n))
				m.WriteF64(f64(c, i*n+j), sum)
			}
		}
		coreT = vclock.Since(coreStart, m.Now())
		*prog = 2
		timedBarrier(m, &barT)
	}

	// Checksum: trace of C (every process computes it; pages are shared).
	check := 0.0
	for i := 0; i < n; i++ {
		check += m.ReadF64(f64(c, i*n+i))
	}
	timedBarrier(m, &barT)

	return Result{
		Check: check,
		T: Timings{
			Total: vclock.Since(t0, m.Now()),
			Init:  initT,
			Core:  coreT,
			Bar:   barT,
		},
	}
}
