package apps

import (
	"hamster/internal/memsim"
	"hamster/internal/vclock"
)

// Water runs a simplified WATER molecular-dynamics simulation (the
// SPLASH-lineage code from the JiaJia distribution) for nmol molecules
// and steps time steps: O(n²) pairwise short-range forces accumulated
// into shared arrays under a lock table, then a barrier and a local
// integration of each process's own molecules. The paper evaluates 288
// and 343 molecules. The lock-protected accumulation makes WATER the
// synchronization-heavy point of the suite: platforms with cheap locks
// (SMP, hybrid DSM) pull ahead of the Ethernet DSM.
func Water(m Machine, nmol, steps int) Result {
	t0 := m.Now()
	pos := m.Alloc(uint64(nmol)*3*8, "water.pos", memsim.Block)
	force := m.Alloc(uint64(nmol)*3*8, "water.force", memsim.Block)

	var barT vclock.Duration
	lo, hi := blockRange(nmol, m.N(), m.ID())

	// Init: each process places its own molecules on a jittered lattice.
	side := 1
	for side*side*side < nmol {
		side++
	}
	for i := lo; i < hi; i++ {
		x := float64(i%side) + 0.3*float64((i*7)%10)/10
		y := float64((i/side)%side) + 0.3*float64((i*13)%10)/10
		z := float64(i/(side*side)) + 0.3*float64((i*29)%10)/10
		m.WriteF64(f64(pos, 3*i+0), x)
		m.WriteF64(f64(pos, 3*i+1), y)
		m.WriteF64(f64(pos, 3*i+2), z)
		for d := 0; d < 3; d++ {
			m.WriteF64(f64(force, 3*i+d), 0)
		}
	}
	timedBarrier(m, &barT)
	initT := vclock.Since(t0, m.Now())

	const cutoff2 = 2.25 // squared interaction cutoff
	const dt = 0.002
	coreT := vclock.Duration(0)

	// local accumulates this process's force contributions for every
	// molecule; it models process-private memory (as in SPLASH WATER) and
	// is merged into the shared arrays once per step under the lock table.
	local := make([]float64, 3*nmol)

	for step := 0; step < steps; step++ {
		// Force phase: process owns pairs (i,j), i in [lo,hi), j > i.
		// Contributions accumulate locally; only the merge is shared.
		cs := m.Now()
		for i := range local {
			local[i] = 0
		}
		for i := lo; i < hi; i++ {
			xi := m.ReadF64(f64(pos, 3*i+0))
			yi := m.ReadF64(f64(pos, 3*i+1))
			zi := m.ReadF64(f64(pos, 3*i+2))
			interacting := 0
			for j := i + 1; j < nmol; j++ {
				dx := xi - m.ReadF64(f64(pos, 3*j+0))
				dy := yi - m.ReadF64(f64(pos, 3*j+1))
				dz := zi - m.ReadF64(f64(pos, 3*j+2))
				r2 := dx*dx + dy*dy + dz*dz
				if r2 >= cutoff2 || r2 == 0 {
					continue
				}
				interacting++
				// Soft repulsive pair force ~ (1 - r²/rc²)/r². The real
				// WATER potential evaluates O(250) flops per interacting
				// molecule pair (nine atom-atom distances plus the
				// intra-molecular terms); the simplified force keeps the
				// data movement while Compute charges the realistic cost.
				s := (1 - r2/cutoff2) / r2
				fx, fy, fz := s*dx, s*dy, s*dz
				local[3*i+0] += fx
				local[3*i+1] += fy
				local[3*i+2] += fz
				local[3*j+0] -= fx // Newton's third law
				local[3*j+1] -= fy
				local[3*j+2] -= fz
			}
			m.Compute(uint64(8*(nmol-i) + 250*interacting))
		}
		// Merge phase: lock-protected accumulation into the shared force
		// array — WATER's synchronization-heavy part. Molecules are
		// batched per lock shard, the way the SPLASH codes update a whole
		// partition under one lock acquisition; the shard order is
		// staggered by process id (also SPLASH practice) so the processes
		// do not convoy on shard 0, 1, 2, ... in lockstep.
		shards := LockTableSize
		if nmol < shards {
			shards = nmol
		}
		for k := 0; k < shards; k++ {
			shard := (k + m.ID()*shards/m.N()) % shards
			dirty := false
			for j := shard; j < nmol; j += LockTableSize {
				if local[3*j] != 0 || local[3*j+1] != 0 || local[3*j+2] != 0 {
					dirty = true
					break
				}
			}
			if !dirty {
				continue
			}
			m.Lock(shard)
			for j := shard; j < nmol; j += LockTableSize {
				if local[3*j] == 0 && local[3*j+1] == 0 && local[3*j+2] == 0 {
					continue
				}
				m.WriteF64(f64(force, 3*j+0), m.ReadF64(f64(force, 3*j+0))+local[3*j+0])
				m.WriteF64(f64(force, 3*j+1), m.ReadF64(f64(force, 3*j+1))+local[3*j+1])
				m.WriteF64(f64(force, 3*j+2), m.ReadF64(f64(force, 3*j+2))+local[3*j+2])
			}
			m.Unlock(shard)
		}
		coreT += vclock.Since(cs, m.Now())
		timedBarrier(m, &barT)

		// Integration phase: each process moves its own molecules and
		// clears their forces for the next step.
		cs = m.Now()
		for i := lo; i < hi; i++ {
			for d := 0; d < 3; d++ {
				p := m.ReadF64(f64(pos, 3*i+d))
				f := m.ReadF64(f64(force, 3*i+d))
				m.WriteF64(f64(pos, 3*i+d), p+dt*dt*f)
				m.WriteF64(f64(force, 3*i+d), 0)
			}
			m.Compute(18)
		}
		coreT += vclock.Since(cs, m.Now())
		timedBarrier(m, &barT)
	}

	// Checksum: sum of coordinates (order-independent to float jitter is
	// avoided because force accumulation is deterministic per molecule
	// only up to lock order; we sum positions which integrate summed
	// forces — addition order differences stay in the last bits, so round
	// to 6 decimals).
	check := 0.0
	for i := 0; i < nmol; i++ {
		for d := 0; d < 3; d++ {
			check += m.ReadF64(f64(pos, 3*i+d))
		}
	}
	check = float64(int64(check*1e6)) / 1e6
	timedBarrier(m, &barT)

	return Result{
		Check: check,
		T: Timings{
			Total: vclock.Since(t0, m.Now()),
			Init:  initT,
			Core:  coreT,
			Bar:   barT,
		},
	}
}
