package apps

import (
	"math/rand"
	"testing"

	"hamster"
	"hamster/internal/memsim"
	"hamster/internal/swdsm"
)

// randomProgram builds a deterministic random SPMD program: R rounds, in
// each of which every node performs a random number of lock-protected
// increments on randomly chosen counters (counters share pages, so the
// protocols see heavy false sharing), followed by a global barrier. The
// exact expected value of every counter is computable from the same
// seeds, so any protocol bug — lost diff, missed invalidation, broken
// lock — corrupts the result.
type randomProgram struct {
	nodes    int
	counters int
	rounds   int
	seed     int64
}

// expected computes the per-counter totals the program must produce.
func (p randomProgram) expected() []int64 {
	totals := make([]int64, p.counters)
	for node := 0; node < p.nodes; node++ {
		rng := rand.New(rand.NewSource(p.seed + int64(node)))
		for round := 0; round < p.rounds; round++ {
			ops := 1 + rng.Intn(8)
			for op := 0; op < ops; op++ {
				c := rng.Intn(p.counters)
				k := 1 + rng.Intn(3)
				totals[c] += int64(k)
			}
		}
	}
	return totals
}

// kernel returns the program as an apps.Kernel. Counters live in one
// region (packed, maximal false sharing); counter c is protected by lock
// c%LockTableSize.
func (p randomProgram) kernel() Kernel {
	return func(m Machine) Result {
		arr := m.Alloc(uint64(p.counters)*8, "stress", memsim.Cyclic)
		m.Barrier()
		rng := rand.New(rand.NewSource(p.seed + int64(m.ID())))
		for round := 0; round < p.rounds; round++ {
			ops := 1 + rng.Intn(8)
			for op := 0; op < ops; op++ {
				c := rng.Intn(p.counters)
				k := 1 + rng.Intn(3)
				l := c % LockTableSize
				m.Lock(l)
				m.WriteI64(f64(arr, c), m.ReadI64(f64(arr, c))+int64(k))
				m.Unlock(l)
			}
			m.Barrier()
		}
		// Everyone validates every counter after the final barrier.
		check := 0.0
		for c := 0; c < p.counters; c++ {
			check += float64(m.ReadI64(f64(arr, c)))
		}
		m.Barrier()
		return Result{Check: check}
	}
}

func TestRandomProgramsAgreeOnAllPlatforms(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		p := randomProgram{nodes: 3, counters: 24, rounds: 5, seed: seed * 7919}
		want := p.expected()
		var wantSum float64
		for _, v := range want {
			wantSum += float64(v)
		}
		for name, sub := range substrates(t, p.nodes) {
			res := RunOnSubstrate(sub, p.kernel())
			got := checksEqual(t, name, res)
			if got != wantSum {
				t.Fatalf("seed %d on %s: counter sum = %v, want %v", seed, name, got, wantSum)
			}
		}
	}
}

func TestRandomProgramWithHomeMigration(t *testing.T) {
	// The same random programs with home migration enabled: migration
	// must never change results, only costs.
	for seed := int64(1); seed <= 3; seed++ {
		p := randomProgram{nodes: 4, counters: 16, rounds: 6, seed: seed * 104729}
		want := p.expected()
		var wantSum float64
		for _, v := range want {
			wantSum += float64(v)
		}
		d, err := swdsm.New(swdsm.Config{Nodes: p.nodes, MigrateAfter: 1})
		if err != nil {
			t.Fatal(err)
		}
		res := RunOnSubstrate(d, p.kernel())
		got := checksEqual(t, "migrating", res)
		d.Close()
		if got != wantSum {
			t.Fatalf("seed %d with migration: sum = %v, want %v", seed, got, wantSum)
		}
	}
}

func TestRandomProgramsAreDRF(t *testing.T) {
	// The generator must only emit data-race-free programs — verified by
	// the formal checker, which closes the loop: if the generator were
	// buggy, the cross-platform equivalence above would be meaningless.
	p := randomProgram{nodes: 3, counters: 12, rounds: 4, seed: 42}
	rt, err := hamster.New(hamster.Config{Platform: hamster.SWDSM, Nodes: p.nodes})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.StartTrace()
	RunOnEnv(rt, p.kernel())
	rep := rt.CheckConsistency()
	if !rep.DRF() {
		t.Fatalf("random program generator produced a racy program:\n%s", rep)
	}
}
