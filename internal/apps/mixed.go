package apps

import (
	"hamster/internal/memsim"
	"hamster/internal/vclock"
)

// MixedRW is the workload for the multi-DSM composition experiment (the
// paper's §6 hypothesis that "individual system performances are
// dependent upon application characteristics"). It combines two regions
// with opposite characters:
//
//   - a producer/consumer stream (allocated Block): each owner rewrites
//     its block, then EVERY node reads the whole region — dense
//     sequential remote reads that a page-based DSM amortizes beautifully
//     and a word-granular remote-access DSM pays per word;
//   - a scatter region (allocated Cyclic): each node writes single words
//     into pages homed elsewhere — posted remote stores are nearly free,
//     while a page-based DSM pays fault+twin+diff per touched page.
//
// Routing each region to the engine that suits it (multidsm) should beat
// both single-engine configurations.
func MixedRW(m Machine, streamWords, scatterPages, iters int) Result {
	t0 := m.Now()
	stream := m.Alloc(uint64(streamWords)*8, "mixed.stream", memsim.Block)
	scatter := m.Alloc(uint64(scatterPages)*memsim.PageSize, "mixed.scatter", memsim.Cyclic)
	wordsPerPage := memsim.PageSize / 8

	var barT vclock.Duration
	lo, hi := blockRange(streamWords, m.N(), m.ID())
	timedBarrier(m, &barT)
	initT := vclock.Since(t0, m.Now())

	coreStart := m.Now()
	sum := 0.0
	for it := 0; it < iters; it++ {
		// Producers: rewrite the owned stream block.
		for i := lo; i < hi; i++ {
			m.WriteF64(f64(stream, i), float64(it*streamWords+i))
		}
		timedBarrier(m, &barT)

		// Consumers: dense read of the whole stream.
		for i := 0; i < streamWords; i++ {
			sum += m.ReadF64(f64(stream, i))
		}
		m.Compute(uint64(streamWords))

		// Scattered single-word writes into remote pages.
		for p := 0; p < scatterPages; p++ {
			m.WriteF64(f64(scatter, p*wordsPerPage+m.ID()), float64(it+m.ID()))
		}
		timedBarrier(m, &barT)
	}
	coreT := vclock.Since(coreStart, m.Now())

	// Checksum: the stream sum plus a sample of the scatter region.
	check := sum
	for p := 0; p < scatterPages; p++ {
		for n := 0; n < m.N(); n++ {
			check += m.ReadF64(f64(scatter, p*wordsPerPage+n))
		}
	}
	timedBarrier(m, &barT)

	return Result{
		Check: check,
		T: Timings{
			Total: vclock.Since(t0, m.Now()),
			Init:  initT,
			Core:  coreT,
			Bar:   barT,
		},
	}
}
