package apps

import (
	"math"
	"testing"

	"hamster"
	"hamster/internal/hybriddsm"
	"hamster/internal/memsim"
	"hamster/internal/platform"
	"hamster/internal/smp"
	"hamster/internal/swdsm"
	"hamster/models/jiajia"
)

func substrates(t testing.TB, nodes int) map[string]platform.Substrate {
	t.Helper()
	sw, err := swdsm.New(swdsm.Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hybriddsm.New(hybriddsm.Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := smp.New(smp.Config{CPUs: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sw.Close(); hy.Close(); sm.Close() })
	return map[string]platform.Substrate{"swdsm": sw, "hybrid": hy, "smp": sm}
}

func checksEqual(t *testing.T, name string, results []Result) float64 {
	t.Helper()
	for i := 1; i < len(results); i++ {
		if results[i].Check != results[0].Check {
			t.Fatalf("%s: node %d check %v != node 0 check %v",
				name, i, results[i].Check, results[0].Check)
		}
	}
	return results[0].Check
}

func TestPIConvergesEverywhere(t *testing.T) {
	for name, sub := range substrates(t, 4) {
		res := RunOnSubstrate(sub, func(m Machine) Result { return PI(m, 20000) })
		check := checksEqual(t, name, res)
		if math.Abs(check-math.Pi) > 1e-4 {
			t.Fatalf("%s: pi = %v", name, check)
		}
	}
}

func TestMatMultMatchesSerialReference(t *testing.T) {
	const n = 24
	// Serial reference of the trace of C.
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = float64((i+j)%7) / 8.0
			b[i*n+j] = float64((i*j)%5) / 4.0
		}
	}
	want := 0.0
	for i := 0; i < n; i++ {
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += a[i*n+k] * b[k*n+i]
		}
		want += sum
	}
	for name, sub := range substrates(t, 3) {
		res := RunOnSubstrate(sub, func(m Machine) Result { return MatMult(m, n) })
		check := checksEqual(t, name, res)
		if math.Abs(check-want) > 1e-9 {
			t.Fatalf("%s: trace = %v, want %v", name, check, want)
		}
	}
}

func TestKernelsAgreeAcrossPlatformsAndPaths(t *testing.T) {
	// The strongest correctness statement in the suite: every kernel
	// produces the identical checksum on all three platforms, both on the
	// bare substrate and through the HAMSTER+JiaJia stack.
	kernels := map[string]Kernel{
		"matmult":   func(m Machine) Result { return MatMult(m, 20) },
		"pi":        func(m Machine) Result { return PI(m, 5000) },
		"sor-opt":   func(m Machine) Result { return SOR(m, 24, 3, true) },
		"sor-unopt": func(m Machine) Result { return SOR(m, 24, 3, false) },
		"lu":        func(m Machine) Result { return LU(m, 20) },
		"water":     func(m Machine) Result { return Water(m, 32, 2) },
	}
	for kname, kernel := range kernels {
		var ref float64
		first := true
		for sname, sub := range substrates(t, 2) {
			res := RunOnSubstrate(sub, kernel)
			check := checksEqual(t, sname+"/"+kname, res)
			if first {
				ref = check
				first = false
			} else if check != ref {
				t.Fatalf("%s on %s: check %v != ref %v", kname, sname, check, ref)
			}
		}
		for _, kind := range []hamster.PlatformKind{hamster.SMP, hamster.HybridDSM, hamster.SWDSM} {
			sys, err := jiajia.Boot(hamster.Config{Platform: kind, Nodes: 2})
			if err != nil {
				t.Fatal(err)
			}
			res := RunOnJia(sys, kernel)
			check := checksEqual(t, "jia/"+kname, res)
			sys.Shutdown()
			if check != ref {
				t.Fatalf("%s via HAMSTER/jiajia on %v: check %v != ref %v", kname, kind, check, ref)
			}
		}
	}
}

func TestRunOnEnvPath(t *testing.T) {
	rt, err := hamster.New(hamster.Config{Platform: hamster.SWDSM, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res := RunOnEnv(rt, func(m Machine) Result { return PI(m, 5000) })
	if math.Abs(checksEqual(t, "env/pi", res)-math.Pi) > 1e-3 {
		t.Fatal("env path broke PI")
	}
}

func TestTimingsPopulated(t *testing.T) {
	subs := substrates(t, 2)
	res := RunOnSubstrate(subs["swdsm"], func(m Machine) Result { return LU(m, 16) })
	for id, r := range res {
		if r.T.Total == 0 || r.T.Core == 0 || r.T.Bar == 0 || r.T.Init == 0 {
			t.Fatalf("node %d timings missing: %+v", id, r.T)
		}
		if r.T.Init+r.T.Core > r.T.Total {
			t.Fatalf("node %d phases exceed total: %+v", id, r.T)
		}
	}
	if MaxTotal(res) == 0 {
		t.Fatal("MaxTotal zero")
	}
	if MaxPhase(res, func(tm Timings) vdur { return tm.Bar }) == 0 {
		t.Fatal("MaxPhase zero")
	}
}

type vdur = hamster.Duration

func TestUnoptSORSuffersOnSWDSM(t *testing.T) {
	// The locality claim behind Figure 3: on the software DSM, the
	// unoptimized interleaved-row SOR must be much slower than the
	// block-partitioned one; on the hybrid DSM the gap must be smaller.
	gap := func(sub platform.Substrate) float64 {
		opt := MaxTotal(RunOnSubstrate(sub, func(m Machine) Result { return SOR(m, 64, 3, true) }))
		unopt := MaxTotal(RunOnSubstrate(sub, func(m Machine) Result { return SOR(m, 64, 3, false) }))
		return float64(unopt) / float64(opt)
	}
	subs := substrates(t, 4)
	swGap := gap(subs["swdsm"])
	hyGap := gap(subs["hybrid"])
	if swGap < 1.5 {
		t.Fatalf("SW-DSM unopt/opt ratio = %.2f, want substantial slowdown", swGap)
	}
	if hyGap >= swGap {
		t.Fatalf("hybrid gap %.2f should be below SW-DSM gap %.2f", hyGap, swGap)
	}
}

func TestLUInitExpensiveOnSWDSM(t *testing.T) {
	// §5.4: "the typical write-only initialization is very expensive in
	// Software-DSM systems" — the hybrid's posted writes must beat the
	// software DSM's twin+diff machinery on the init phase.
	subs := substrates(t, 4)
	swInit := MaxPhase(RunOnSubstrate(subs["swdsm"], func(m Machine) Result { return LU(m, 48) }),
		func(tm Timings) vdur { return tm.Init })
	hyInit := MaxPhase(RunOnSubstrate(subs["hybrid"], func(m Machine) Result { return LU(m, 48) }),
		func(tm Timings) vdur { return tm.Init })
	if float64(swInit) < 2*float64(hyInit) {
		t.Fatalf("LU init: swdsm %v vs hybrid %v — expected SW-DSM at least 2x worse", swInit, hyInit)
	}
}

func TestBlockRange(t *testing.T) {
	cases := []struct {
		n, procs, id, lo, hi int
	}{
		{10, 3, 0, 0, 4},
		{10, 3, 1, 4, 8},
		{10, 3, 2, 8, 10},
		{4, 8, 7, 4, 4}, // more procs than items: empty tail ranges
	}
	for _, c := range cases {
		lo, hi := blockRange(c.n, c.procs, c.id)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("blockRange(%d,%d,%d) = [%d,%d), want [%d,%d)",
				c.n, c.procs, c.id, lo, hi, c.lo, c.hi)
		}
	}
}

func TestAllKernelsAreDRF(t *testing.T) {
	// Every benchmark kernel, traced end to end through the HAMSTER stack
	// and verified by the formal consistency checker (§6): the whole
	// suite must be data-race-free under the synchronization it performs,
	// or its results would be undefined under relaxed consistency.
	kernels := map[string]Kernel{
		"matmult":   func(m Machine) Result { return MatMult(m, 16) },
		"pi":        func(m Machine) Result { return PI(m, 1000) },
		"sor-opt":   func(m Machine) Result { return SOR(m, 16, 2, true) },
		"sor-unopt": func(m Machine) Result { return SOR(m, 16, 2, false) },
		"lu":        func(m Machine) Result { return LU(m, 12) },
		"water":     func(m Machine) Result { return Water(m, 16, 2) },
		"stream":    func(m Machine) Result { return Stream(m, 256, 2, memsim.Block) },
		"mixed":     func(m Machine) Result { return MixedRW(m, 512, 4, 2) },
	}
	for name, kernel := range kernels {
		t.Run(name, func(t *testing.T) {
			rt, err := hamster.New(hamster.Config{Platform: hamster.SWDSM, Nodes: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			rt.StartTrace()
			RunOnEnv(rt, kernel)
			rep := rt.CheckConsistency()
			if !rep.DRF() {
				t.Fatalf("kernel %s has a data race:\n%s", name, rep)
			}
			if rep.Events == 0 {
				t.Fatal("empty trace")
			}
		})
	}
}

func TestMixedRWAgreesAcrossPlatforms(t *testing.T) {
	kernel := func(m Machine) Result { return MixedRW(m, 1024, 4, 2) }
	var ref float64
	first := true
	for name, sub := range substrates(t, 2) {
		res := RunOnSubstrate(sub, kernel)
		check := checksEqual(t, name+"/mixed", res)
		if first {
			ref, first = check, false
		} else if check != ref {
			t.Fatalf("%s: mixed check %v != %v", name, check, ref)
		}
	}
}
