package amsg

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"hamster/internal/machine"
	"hamster/internal/simnet"
	"hamster/internal/vclock"
)

func testLayer(nodes int) (*Layer, []*vclock.Clock) {
	clocks := make([]*vclock.Clock, nodes)
	for i := range clocks {
		clocks[i] = &vclock.Clock{}
	}
	link := machine.Link{LatencyNs: 1000, NsPerByte: 10, SendSWNs: 100, RecvSWNs: 200, HandlerNs: 50}
	net := simnet.New(link, clocks)
	return New(net, link), clocks
}

func TestCallRoundTrip(t *testing.T) {
	l, clocks := testLayer(2)
	const kind Kind = 1
	l.Register(1, kind, func(from NodeID, req []byte) ([]byte, vclock.Duration) {
		if from != 0 {
			t.Errorf("handler saw from=%d, want 0", from)
		}
		return append([]byte("re:"), req...), 25
	})
	resp := l.Call(0, 1, kind, []byte("ping"))
	if string(resp) != "re:ping" {
		t.Fatalf("resp = %q", resp)
	}
	// Caller: send(100) + lat(1000) + 4*10 + handler(50+25) + lat(1000) + 7*10 + recv(200)
	want := vclock.Time(100 + 1000 + 40 + 75 + 1000 + 70 + 200)
	if got := clocks[0].Now(); got != want {
		t.Fatalf("caller clock = %d, want %d", got, want)
	}
	// Target charged stolen handler cycles only.
	if got := clocks[1].Stolen(); got != 75 {
		t.Fatalf("target stolen = %d, want 75", got)
	}
}

func TestLocalCallBypassesNetwork(t *testing.T) {
	l, clocks := testLayer(2)
	const kind Kind = 2
	l.Register(0, kind, func(NodeID, []byte) ([]byte, vclock.Duration) {
		return []byte("ok"), 10
	})
	resp := l.Call(0, 0, kind, nil)
	if string(resp) != "ok" {
		t.Fatalf("resp = %q", resp)
	}
	if got := clocks[0].Now(); got != vclock.Time(LocalCallNs)+10 {
		t.Fatalf("caller clock = %d, want %d", got, uint64(LocalCallNs)+10)
	}
	if clocks[0].Stolen() != 0 {
		t.Fatal("local call must not steal")
	}
}

func TestNotifyOneWay(t *testing.T) {
	l, clocks := testLayer(2)
	const kind Kind = 3
	var got []byte
	var mu sync.Mutex
	l.Register(1, kind, func(_ NodeID, req []byte) ([]byte, vclock.Duration) {
		mu.Lock()
		got = append([]byte(nil), req...)
		mu.Unlock()
		return nil, 5
	})
	l.Notify(0, 1, kind, []byte("wn"))
	mu.Lock()
	defer mu.Unlock()
	if string(got) != "wn" {
		t.Fatalf("handler saw %q", got)
	}
	// One-way: caller pays send side only (no latency wait, no recv).
	if c := clocks[0].Now(); c != 100+20 {
		t.Fatalf("caller clock = %d, want 120", c)
	}
	if s := clocks[1].Stolen(); s != 55 {
		t.Fatalf("target stolen = %d, want 55", s)
	}
}

func TestCallAllAndNotifyOthers(t *testing.T) {
	l, _ := testLayer(4)
	const kind Kind = 4
	var hits [4]int
	var mu sync.Mutex
	for id := 0; id < 4; id++ {
		id := id
		l.Register(NodeID(id), kind, func(NodeID, []byte) ([]byte, vclock.Duration) {
			mu.Lock()
			hits[id]++
			mu.Unlock()
			return []byte{byte(id)}, 0
		})
	}
	resps := l.CallAll(0, kind, nil)
	for id, r := range resps {
		if len(r) != 1 || r[0] != byte(id) {
			t.Fatalf("CallAll resp[%d] = %v", id, r)
		}
	}
	l.NotifyOthers(0, kind, nil)
	mu.Lock()
	defer mu.Unlock()
	if hits[0] != 1 {
		t.Fatalf("node 0 hit %d times, want 1 (CallAll only)", hits[0])
	}
	for id := 1; id < 4; id++ {
		if hits[id] != 2 {
			t.Fatalf("node %d hit %d times, want 2", id, hits[id])
		}
	}
}

func TestUnregisteredKindPanics(t *testing.T) {
	l, _ := testLayer(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unregistered kind")
		}
	}()
	l.Call(0, 1, 99, nil)
}

func TestStatsCounting(t *testing.T) {
	l, _ := testLayer(2)
	const kind Kind = 5
	l.Register(1, kind, func(NodeID, []byte) ([]byte, vclock.Duration) {
		return make([]byte, 8), 0
	})
	l.Call(0, 1, kind, make([]byte, 16))
	l.Call(0, 1, kind, make([]byte, 16))
	calls, _, reqB, rspB := l.Stats(0).Snapshot()
	if calls != 2 || reqB != 32 || rspB != 16 {
		t.Fatalf("caller stats = %d calls, %d req, %d rsp", calls, reqB, rspB)
	}
	_, serviced, _, _ := l.Stats(1).Snapshot()
	if serviced != 2 {
		t.Fatalf("target serviced = %d, want 2", serviced)
	}
}

func TestConcurrentCallsSameTarget(t *testing.T) {
	l, clocks := testLayer(3)
	const kind Kind = 6
	var mu sync.Mutex
	counter := 0
	l.Register(2, kind, func(NodeID, []byte) ([]byte, vclock.Duration) {
		mu.Lock()
		counter++
		mu.Unlock()
		return nil, 0
	})
	var wg sync.WaitGroup
	const per = 100
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Call(NodeID(c), 2, kind, nil)
			}
		}(c)
	}
	wg.Wait()
	if counter != 2*per {
		t.Fatalf("handler ran %d times, want %d", counter, 2*per)
	}
	if clocks[2].Stolen() == 0 {
		t.Fatal("target must have absorbed stolen cycles")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	e := NewEnc(64)
	e.U8(7).U16(300).U32(70000).U64(1 << 40).I64(-42).F64(3.25).Blob([]byte("abc")).Raw([]byte{9, 9})
	d := NewDec(e.Bytes())
	if d.U8() != 7 || d.U16() != 300 || d.U32() != 70000 || d.U64() != 1<<40 {
		t.Fatal("unsigned round trip failed")
	}
	if d.I64() != -42 {
		t.Fatal("I64 round trip failed")
	}
	if d.F64() != 3.25 {
		t.Fatal("F64 round trip failed")
	}
	if !bytes.Equal(d.Blob(), []byte("abc")) {
		t.Fatal("Blob round trip failed")
	}
	if !bytes.Equal(d.Raw(2), []byte{9, 9}) {
		t.Fatal("Raw round trip failed")
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", d.Remaining())
	}
}

// Property: any sequence of (u64, f64, blob) triples survives a round trip.
func TestCodecProperty(t *testing.T) {
	f := func(us []uint64, fs []float64, blobs [][]byte) bool {
		e := NewEnc(0)
		for _, u := range us {
			e.U64(u)
		}
		for _, v := range fs {
			e.F64(v)
		}
		for _, b := range blobs {
			e.Blob(b)
		}
		d := NewDec(e.Bytes())
		for _, u := range us {
			if d.U64() != u {
				return false
			}
		}
		for _, v := range fs {
			got := d.F64()
			if got != v && !(got != got && v != v) { // NaN-safe compare
				return false
			}
		}
		for _, b := range blobs {
			if !bytes.Equal(d.Blob(), b) {
				return false
			}
		}
		return d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCall(b *testing.B) {
	l, _ := testLayer(2)
	const kind Kind = 7
	l.Register(1, kind, func(NodeID, []byte) ([]byte, vclock.Duration) { return nil, 0 })
	for i := 0; i < b.N; i++ {
		l.Call(0, 1, kind, nil)
	}
}
