package amsg

import (
	"encoding/binary"
	"math"
	"sync"
)

// Enc is an append-style binary encoder for protocol payloads. All fields
// are little-endian. The zero value is ready to use.
type Enc struct {
	buf []byte
}

// NewEnc returns an encoder with the given capacity hint.
func NewEnc(capacity int) *Enc { return &Enc{buf: make([]byte, 0, capacity)} }

// encPool recycles encoders (struct plus backing buffer) for protocol
// hot paths. Ownership rule: a pooled encoder's buffer may be released
// with Free only after the Call/Notify that carried it RETURNS — the
// fault-free active-message path runs the handler synchronously on the
// caller's goroutine, so by then no reference to the request remains.
// A payload handed to the queued-message path (simnet.Send) must NEVER
// be freed: the receiver holds it for an unbounded time.
var encPool = sync.Pool{New: func() any { return new(Enc) }}

// GetEnc returns a pooled encoder, reset to empty but keeping whatever
// backing capacity it accumulated in earlier lives.
func GetEnc() *Enc {
	e := encPool.Get().(*Enc)
	e.buf = e.buf[:0]
	return e
}

// Free recycles the encoder and its buffer. See encPool for when this is
// legal; after Free the encoder and any slice obtained from Bytes are
// invalid.
func (e *Enc) Free() { encPool.Put(e) }

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) *Enc {
	e.buf = append(e.buf, v)
	return e
}

// U16 appends a 16-bit value.
func (e *Enc) U16(v uint16) *Enc {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
	return e
}

// U32 appends a 32-bit value.
func (e *Enc) U32(v uint32) *Enc {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
	return e
}

// U64 appends a 64-bit value.
func (e *Enc) U64(v uint64) *Enc {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
	return e
}

// I64 appends a signed 64-bit value.
func (e *Enc) I64(v int64) *Enc { return e.U64(uint64(v)) }

// F64 appends a float64.
func (e *Enc) F64(v float64) *Enc { return e.U64(math.Float64bits(v)) }

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(b []byte) *Enc {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// U64s appends a count-prefixed list of 64-bit values — the batched
// protocols' page-list payload shape (one header amortized over the run).
func (e *Enc) U64s(vs []uint64) *Enc {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
	return e
}

// Raw appends bytes without a length prefix.
func (e *Enc) Raw(b []byte) *Enc {
	e.buf = append(e.buf, b...)
	return e
}

// Dec is the matching sequential decoder. Decoding past the end panics:
// protocol payloads are internal, so a short buffer is a programming error.
type Dec struct {
	buf []byte
	off int
}

// NewDec wraps a payload for decoding.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// MakeDec is NewDec by value: handlers that decode on the hot path use it
// to keep the decoder on the stack instead of allocating one per message.
func MakeDec(b []byte) Dec { return Dec{buf: b} }

// Remaining reports how many bytes are left.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	v := d.buf[d.off]
	d.off++
	return v
}

// U16 reads a 16-bit value.
func (d *Dec) U16() uint16 {
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

// U32 reads a 32-bit value.
func (d *Dec) U32() uint32 {
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a 64-bit value.
func (d *Dec) U64() uint64 {
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads a signed 64-bit value.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Blob reads a length-prefixed byte slice (aliasing the underlying buffer).
func (d *Dec) Blob() []byte {
	n := int(d.U32())
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64s reads a count-prefixed list of 64-bit values (see Enc.U64s).
func (d *Dec) U64s() []uint64 {
	n := int(d.U32())
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	return out
}

// Raw reads n bytes without a length prefix (aliasing the buffer).
func (d *Dec) Raw(n int) []byte {
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}
