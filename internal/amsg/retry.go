package amsg

// Reliability protocol for active messages over a faulty interconnect.
//
// The fault-free layer can treat a Call as one indivisible round trip
// because the simulated wire never loses anything. Under a
// simnet.FaultPlan with drops, partitions, or node schedules, every
// transmission can vanish, so Call/Notify switch to a request/ack
// protocol:
//
//	SEND:    charge send software + request serialization, draw the
//	         request's fate from the link's seeded stream.
//	EXECUTE: if the request arrives, the target runs the handler exactly
//	         once per idempotency key — a retransmitted request only
//	         replays the stored response (duplicate suppression), charging
//	         the target a bare interrupt.
//	ACK:     the response (or, for one-way messages, a NIC-level ack)
//	         rides back and can be lost too.
//	TIMEOUT: a lost request or ack costs the caller the current
//	         retransmission timeout plus seeded jitter in virtual time,
//	         then the attempt repeats with the timeout doubled (bounded
//	         exponential backoff) until MaxAttempts is exhausted.
//
// Because timeouts are virtual-time charges and every loss/duplicate
// decision comes from the per-link deterministic streams (see
// simnet/faults.go), a seeded fault campaign replays bit-identically.
// On a clean first attempt the caller and target are charged exactly
// what the fault-free path charges, so a plan that never fires is
// cost-invisible.

import (
	"errors"
	"fmt"
	"sync"

	"hamster/internal/machine"
	"hamster/internal/perfmon"
	"hamster/internal/vclock"
)

// ErrClosed reports that the network was torn down while a call was in
// flight. Closing the network wakes callers blocked in retry loops; they
// must not be left waiting for an ack that can never come.
var ErrClosed = errors.New("amsg: network closed")

// UnreachableError reports a call abandoned because the target could not
// be reached — either its retry budget ran out or the cluster health
// monitor had already marked the node down.
type UnreachableError struct {
	Node     NodeID
	Kind     Kind
	Attempts int // transmission attempts made; 0 when the node was pre-marked down
	// Executed reports whether the handler ran despite the failure (a
	// request got through but every ack was lost). Callers whose handlers
	// have side effects must treat Executed == true as an ambiguous
	// outcome, not a clean no-op.
	Executed bool
}

// Error formats the diagnostic.
func (e *UnreachableError) Error() string {
	if e.Attempts == 0 {
		return fmt.Sprintf("node %d is marked down (kind-%d request not sent)", e.Node, e.Kind)
	}
	return fmt.Sprintf("node %d unreachable: kind-%d call abandoned after %d attempts", e.Node, e.Kind, e.Attempts)
}

// DefaultMaxAttempts bounds transmissions per logical call when the
// policy does not say otherwise.
const DefaultMaxAttempts = 8

// RetryPolicy tunes the reliability protocol. The zero value of any
// field selects a default derived from the link profile.
type RetryPolicy struct {
	// MaxAttempts bounds transmissions per logical call (first try plus
	// retries); exhausting it yields UnreachableError.
	MaxAttempts int
	// Timeout is the virtual-time ack deadline of the first attempt. It
	// doubles after every loss, up to MaxBackoff.
	Timeout vclock.Duration
	// MaxBackoff caps the per-attempt timeout.
	MaxBackoff vclock.Duration
}

// withDefaults fills zero fields from the link profile: the base timeout
// is twice a maximal clean round trip, the backoff cap 64× that.
func (p RetryPolicy) withDefaults(link machine.Link) RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.Timeout == 0 {
		p.Timeout = 2 * (2*link.LatencyNs + link.SendSWNs + link.RecvSWNs + link.HandlerNs)
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = p.Timeout << 6
	}
	return p
}

// SetRetryPolicy replaces the layer's retry policy; zero fields keep
// their link-derived defaults. Call it at startup, before traffic.
func (l *Layer) SetRetryPolicy(p RetryPolicy) {
	l.policy = l.fitPolicy(p)
}

// fitPolicy fills defaults and, when the Timeout itself was defaulted,
// widens it by the topology's worst-case round-trip of extra hop latency
// so cross-pod calls do not look like losses to the retransmission timer.
// An explicitly configured Timeout is honored verbatim.
func (l *Layer) fitPolicy(p RetryPolicy) RetryPolicy {
	widen := p.Timeout == 0
	p = p.withDefaults(l.link)
	if widen {
		p.Timeout += 2 * l.net.Topology().MaxExtraLatencyNs()
	}
	return p
}

// RetryPolicyInUse returns the effective (default-filled) policy.
func (l *Layer) RetryPolicyInUse() RetryPolicy { return l.policy }

// callKey is the idempotency key of one logical call: the caller plus a
// per-caller sequence number, assigned once per Call/Notify and reused
// across its retransmissions.
type callKey struct {
	from NodeID
	seq  uint64
}

// svcTable is one target node's duplicate-suppression state: responses
// of calls still in flight, keyed by idempotency key. Entries are
// dropped when the logical call completes, so the table stays bounded by
// the number of concurrent callers.
type svcTable struct {
	mu   sync.Mutex
	done map[callKey][]byte
}

func (t *svcTable) lookup(k callKey) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.done[k]
	return r, ok
}

func (t *svcTable) store(k callKey, resp []byte) {
	t.mu.Lock()
	if t.done == nil {
		t.done = make(map[callKey][]byte)
	}
	t.done[k] = resp
	t.mu.Unlock()
}

func (t *svcTable) forget(k callKey) {
	t.mu.Lock()
	delete(t.done, k)
	t.mu.Unlock()
}

// MarkDown records that a peer has been declared failed (the cluster
// health monitor's notice path): subsequent calls to it fail immediately
// with UnreachableError instead of burning a full retry cycle first.
// Fail-stop is permanent for a run — there is no way back up.
func (l *Layer) MarkDown(node NodeID) {
	l.down[node].Store(true)
	l.anyDown.Store(true)
	// A fail-stopped peer must also stop bounding the conservative
	// delivery horizon (no-op when the network is ungated): the fault
	// plan eats its outbound traffic, so its frozen clock says nothing
	// about what survivors can still receive.
	l.net.MarkNodeDown(node)
}

// NodeDown reports whether MarkDown has been called for a node.
func (l *Layer) NodeDown(node NodeID) bool {
	return l.anyDown.Load() && l.down[node].Load()
}

// callReliable runs the request/ack protocol for one remote call. h is
// the already-resolved handler; oneway selects Notify semantics (no
// response payload, NIC-level ack, no receive-side software on the clean
// path).
func (l *Layer) callReliable(from, to NodeID, kind Kind, h Handler, req []byte, oneway bool) ([]byte, error) {
	caller := l.net.Clock(from)
	target := l.net.Clock(to)
	pol := l.policy
	key := callKey{from: from, seq: l.callSeq[from].Add(1)}
	tbl := &l.svc[to]
	defer tbl.forget(key)

	rto := pol.Timeout
	for attempt := 1; ; attempt++ {
		if l.net.Closed() {
			return nil, ErrClosed
		}
		start := caller.Now()
		// Send software and request serialization are spent whether or
		// not the wire delivers the packet.
		caller.AdvanceCat(vclock.CatNetwork,
			l.net.ScaledSW(from, l.link.SendSWNs)+l.net.PayloadNs(from, to, len(req)))
		sendT := caller.Now()

		lost := l.net.LinkLost(from, to, sendT)
		var resp []byte
		var service vclock.Duration
		if !lost {
			// Request arrived: execute exactly once per idempotency key.
			// A retransmission finds the stored response and replays it,
			// charging the target a bare suppressed interrupt.
			service = l.net.ScaledSW(to, l.link.HandlerNs)
			if cached, dup := tbl.lookup(key); dup {
				resp = cached
				l.addSuppressed(to)
			} else {
				r, extra := h(from, req)
				tbl.store(key, r)
				resp = r
				service += l.net.ScaledSW(to, extra)
			}
			target.Steal(service)
			if rec := l.rec; rec != nil && rec.Enabled() {
				rec.Record(int(to), perfmon.EvService, target.Now(), service, uint64(from), uint64(kind))
			}
			// A network-duplicated copy of the request costs the target
			// one more suppressed interrupt, nothing else.
			if l.net.LinkDup(from, to) {
				target.Steal(l.net.ScaledSW(to, l.link.HandlerNs))
				l.addSuppressed(to)
			}
			// The response (or ack) can be lost on the way back. The
			// fate comes from the caller's own link stream (AckLost) so
			// that no two goroutines ever share a draw counter.
			lost = l.net.AckLost(from, to, sendT)
		}

		if !lost {
			if !oneway {
				// Clean round trip: the caller's timeline absorbs the
				// request wire, the service time, and the response travel
				// — exactly the fault-free Call charges.
				caller.AdvanceCat(vclock.CatNetwork, l.net.WireNs(from, to, 0))
				caller.AdvanceCat(vclock.CatProtocol, service)
				caller.AdvanceCat(vclock.CatNetwork, l.net.WireNs(to, from, len(resp))+
					l.net.ScaledSW(from, l.link.RecvSWNs))
			}
			// One-way: the ack is absorbed by the NIC; a clean posted
			// send costs what the fault-free Notify costs.
			l.count(from, to, len(req), len(resp))
			return resp, nil
		}

		// Lost request or ack: the caller burns the retransmission timer
		// (plus seeded jitter, so concurrent retries desynchronize) in
		// virtual time.
		wait := rto + l.net.FaultJitter(from, to, rto/4+1)
		caller.AdvanceCat(vclock.CatNetwork, wait)
		if rec := l.rec; rec != nil && rec.Enabled() {
			rec.Record(int(from), perfmon.EvTimeout, start, vclock.Since(start, caller.Now()), uint64(to), uint64(attempt))
		}
		if attempt >= pol.MaxAttempts {
			l.count(from, to, len(req), 0)
			_, executed := tbl.lookup(key)
			return nil, &UnreachableError{Node: to, Kind: kind, Attempts: attempt, Executed: executed}
		}
		if rec := l.rec; rec != nil && rec.Enabled() {
			rec.Record(int(from), perfmon.EvRetry, caller.Now(), 0, uint64(to), uint64(attempt))
		}
		l.addRetry(from)
		rto *= 2
		if rto > pol.MaxBackoff {
			rto = pol.MaxBackoff
		}
	}
}

func (l *Layer) addRetry(id NodeID)      { l.stats[id].retries.Add(1) }
func (l *Layer) addSuppressed(id NodeID) { l.stats[id].suppressed.Add(1) }
