// Package amsg provides the active-message layer of the HAMSTER framework.
//
// All internal communication in the framework — page fetches, diff
// propagation, lock handoffs, barrier coordination, thread-call forwarding —
// "uses some form of active message present within the HAMSTER modules"
// (§5.2). This package implements that shared layer on top of the simulated
// interconnect. It is the *coalesced* messaging layer of §3.3: one instance
// serves the DSM internals, the programming models, and user-level
// messaging, so the two base systems never compete for the (simulated) NIC.
//
// The central primitive is Call: a synchronous request/response exchange in
// which the caller's goroutine executes the registered handler against the
// target node's state. The target node is charged the handler cost as
// stolen cycles (modeling SIGIO-style interrupt processing), while the
// caller's clock absorbs the full round-trip. Handlers must protect the
// state they touch with that node's own locks.
package amsg

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hamster/internal/machine"
	"hamster/internal/perfmon"
	"hamster/internal/simnet"
	"hamster/internal/vclock"
)

// Kind re-exports simnet.Kind for convenience.
type Kind = simnet.Kind

// NodeID re-exports simnet.NodeID.
type NodeID = simnet.NodeID

// Handler services one active-message kind on behalf of a target node.
// It receives the caller, the request payload, and returns the response
// payload plus any additional service cost beyond the link's base handler
// cost (for example the memory-copy cost of extracting a page).
type Handler func(from NodeID, req []byte) (resp []byte, extra vclock.Duration)

// Layer is one coalesced active-message layer over a network.
type Layer struct {
	net  *simnet.Network
	link machine.Link

	// handlers is a copy-on-write registry: Register publishes a cloned
	// map through the atomic pointer, so the per-call lookup is lock-free.
	// Registration happens at startup (and is cheap enough to clone), the
	// lookup happens on every protocol message.
	handlers atomic.Pointer[map[Kind][]Handler]
	regMu    sync.Mutex // serializes Register's clone-and-swap

	stats []CallStats

	// Reliability state (see retry.go): the retry policy, per-caller
	// idempotency-key counters, per-target duplicate-suppression tables,
	// and the set of peers declared down by the health monitor.
	policy  RetryPolicy
	callSeq []atomic.Uint64
	svc     []svcTable
	down    []atomic.Bool
	anyDown atomic.Bool

	rec *perfmon.Recorder // protocol event recorder; nil until attached
}

// CallStats counts active-message activity per node. The counters are
// independent atomics — a call bumps the caller's and target's counters
// without any cross-node serialization (the old per-struct mutex put two
// lock acquisitions on every protocol message).
type CallStats struct {
	calls      atomic.Uint64 // calls issued by this node
	serviced   atomic.Uint64 // handler executions on behalf of this node
	reqBytes   atomic.Uint64
	rspBytes   atomic.Uint64
	retries    atomic.Uint64 // retransmissions issued by this node
	suppressed atomic.Uint64 // duplicate requests this node absorbed without re-executing
}

// Snapshot returns a copy of the counters.
func (s *CallStats) Snapshot() (calls, serviced, reqBytes, rspBytes uint64) {
	return s.calls.Load(), s.serviced.Load(), s.reqBytes.Load(), s.rspBytes.Load()
}

// Faults returns the reliability counters: retransmissions issued by
// this node and duplicate requests it suppressed.
func (s *CallStats) Faults() (retries, suppressed uint64) {
	return s.retries.Load(), s.suppressed.Load()
}

// New creates an active-message layer over net using the given link costs
// (normally the same profile the network itself was built with).
func New(net *simnet.Network, link machine.Link) *Layer {
	l := &Layer{
		net:     net,
		link:    link,
		stats:   make([]CallStats, net.Size()),
		callSeq: make([]atomic.Uint64, net.Size()),
		svc:     make([]svcTable, net.Size()),
		down:    make([]atomic.Bool, net.Size()),
	}
	l.policy = l.fitPolicy(RetryPolicy{})
	empty := make(map[Kind][]Handler)
	l.handlers.Store(&empty)
	return l
}

// Network returns the underlying simulated network.
func (l *Layer) Network() *simnet.Network { return l.net }

// SetRecorder attaches a protocol event recorder to the layer and to the
// network underneath it (nil detaches both). The layer records EvService
// for every handler execution stolen from a target node.
func (l *Layer) SetRecorder(rec *perfmon.Recorder) {
	l.rec = rec
	l.net.SetRecorder(rec)
}

// Register installs a handler for kind on the given target node.
// Registration happens at startup, before traffic; re-registration
// replaces the previous handler.
func (l *Layer) Register(target NodeID, kind Kind, h Handler) {
	l.regMu.Lock()
	defer l.regMu.Unlock()
	old := *l.handlers.Load()
	next := make(map[Kind][]Handler, len(old)+1)
	for k, hs := range old {
		next[k] = hs
	}
	hs := make([]Handler, l.net.Size())
	copy(hs, next[kind])
	hs[target] = h
	next[kind] = hs
	l.handlers.Store(&next)
}

// LocalCallNs is the cost of a call that stays on the caller's node
// (loopback dispatch, no NIC involvement).
const LocalCallNs vclock.Duration = 500

// handlerFor resolves the handler for kind on node to, panicking on an
// unregistered kind (a programming error, not a runtime fault).
func (l *Layer) handlerFor(to NodeID, kind Kind) Handler {
	hs := (*l.handlers.Load())[kind]
	if hs == nil || hs[to] == nil {
		panic(fmt.Sprintf("amsg: no handler for kind %d on node %d", kind, to))
	}
	return hs[to]
}

// Call performs a synchronous request/response against the target node.
// The caller's clock is charged the full round trip; the target's clock is
// charged the handler cost as stolen cycles. Calls to the caller's own
// node cost LocalCallNs plus the handler's extra cost and steal nothing.
// Under an active fault plan the call runs the request/ack protocol of
// retry.go; an unreachable target or a closed network panics with the
// diagnostic — callers that can degrade gracefully use CallErr instead.
func (l *Layer) Call(from, to NodeID, kind Kind, req []byte) []byte {
	resp, err := l.CallErr(from, to, kind, req)
	if err != nil {
		panic(fmt.Sprintf("amsg: kind-%d call from node %d: %v", kind, from, err))
	}
	return resp
}

// CallErr is Call with graceful failure: instead of panicking it returns
// ErrClosed when the network is torn down mid-call and *UnreachableError
// when the target's retry budget is exhausted or it was marked down. The
// handler is guaranteed to have executed exactly once when err is nil and
// at most once otherwise.
func (l *Layer) CallErr(from, to NodeID, kind Kind, req []byte) ([]byte, error) {
	h := l.handlerFor(to, kind)
	caller := l.net.Clock(from)

	if from == to {
		resp, extra := h(from, req)
		caller.AdvanceCat(vclock.CatProtocol, LocalCallNs+extra)
		l.count(from, to, len(req), len(resp))
		return resp, nil
	}
	if l.NodeDown(to) {
		return nil, &UnreachableError{Node: to, Kind: kind}
	}
	if l.net.CallFaultsActive() {
		return l.callReliable(from, to, kind, h, req, false)
	}

	// Fault-free fast path: one indivisible round trip.
	// Request travel: sender software + wire (topology-dependent: extra
	// hop latency and oversubscribed uplink bytes when the pair spans
	// racks; WireNs is the legacy expression on the flat fabric).
	caller.AdvanceCat(vclock.CatNetwork, l.link.SendSWNs+
		l.net.WireNs(from, to, len(req)))

	// Handler executes "at" the target: the target absorbs the interrupt
	// cost, the caller's timeline includes the service time.
	resp, extra := h(from, req)
	service := l.link.HandlerNs + extra
	target := l.net.Clock(to)
	target.Steal(service)
	caller.AdvanceCat(vclock.CatProtocol, service)
	if rec := l.rec; rec != nil && rec.Enabled() {
		rec.Record(int(to), perfmon.EvService, target.Now(), service, uint64(from), uint64(kind))
	}

	// Response travel back.
	caller.AdvanceCat(vclock.CatNetwork, l.net.WireNs(to, from, len(resp))+
		l.link.RecvSWNs)

	l.count(from, to, len(req), len(resp))
	return resp, nil
}

// Notify is a one-way active message: the handler runs at the target (cost
// stolen) but the caller does not wait for a response and is charged only
// the send-side costs. Used for write-notice pushes and similar
// fire-and-forget protocol traffic. Like Call, it panics when the target
// is unreachable; NotifyErr is the graceful variant.
func (l *Layer) Notify(from, to NodeID, kind Kind, req []byte) {
	if err := l.NotifyErr(from, to, kind, req); err != nil {
		panic(fmt.Sprintf("amsg: kind-%d notify from node %d: %v", kind, from, err))
	}
}

// NotifyErr is Notify with graceful failure. Under an active fault plan
// the message is acknowledged at the NIC level and retransmitted on
// loss, so err == nil guarantees the handler executed exactly once; the
// clean-path cost stays that of a posted send.
func (l *Layer) NotifyErr(from, to NodeID, kind Kind, req []byte) error {
	h := l.handlerFor(to, kind)
	caller := l.net.Clock(from)
	if from == to {
		_, extra := h(from, req)
		caller.AdvanceCat(vclock.CatProtocol, LocalCallNs+extra)
		l.count(from, to, len(req), 0)
		return nil
	}
	if l.NodeDown(to) {
		return &UnreachableError{Node: to, Kind: kind}
	}
	if l.net.CallFaultsActive() {
		_, err := l.callReliable(from, to, kind, h, req, true)
		return err
	}
	// Posted send: no latency term (the write is pipelined), but the
	// payload still serializes onto the — possibly oversubscribed — path.
	caller.AdvanceCat(vclock.CatNetwork, l.link.SendSWNs+
		l.net.PayloadNs(from, to, len(req)))
	_, extra := h(from, req)
	service := l.link.HandlerNs + extra
	target := l.net.Clock(to)
	target.Steal(service)
	if rec := l.rec; rec != nil && rec.Enabled() {
		rec.Record(int(to), perfmon.EvService, target.Now(), service, uint64(from), uint64(kind))
	}
	l.count(from, to, len(req), 0)
	return nil
}

// CallAll issues Call to every node (including the caller, which runs the
// handler locally) and returns the responses indexed by node.
func (l *Layer) CallAll(from NodeID, kind Kind, req []byte) [][]byte {
	out := make([][]byte, l.net.Size())
	for id := 0; id < l.net.Size(); id++ {
		out[id] = l.Call(from, NodeID(id), kind, req)
	}
	return out
}

// NotifyOthers sends a one-way message to every node except the caller.
func (l *Layer) NotifyOthers(from NodeID, kind Kind, req []byte) {
	for id := 0; id < l.net.Size(); id++ {
		if NodeID(id) == from {
			continue
		}
		l.Notify(from, NodeID(id), kind, req)
	}
}

func (l *Layer) count(from, to NodeID, req, rsp int) {
	s := &l.stats[from]
	s.calls.Add(1)
	s.reqBytes.Add(uint64(req))
	s.rspBytes.Add(uint64(rsp))
	if from != to {
		l.stats[to].serviced.Add(1)
	}
}

// Stats returns the per-node counters for node id.
func (l *Layer) Stats(id NodeID) *CallStats { return &l.stats[id] }
