package amsg

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hamster/internal/perfmon"
	"hamster/internal/simnet"
	"hamster/internal/vclock"
)

// A network that duplicates requests must never re-execute a
// non-idempotent handler: the duplicate-suppression table replays the
// stored response instead.
func TestDuplicateNeverDoubleExecutes(t *testing.T) {
	l, _ := testLayer(2)
	l.Network().SetFaults(simnet.FaultPlan{DuplicateProb: 0.5, Seed: 11})
	const kind Kind = 1
	var mu sync.Mutex
	executions := 0
	l.Register(1, kind, func(_ NodeID, req []byte) ([]byte, vclock.Duration) {
		mu.Lock()
		executions++
		mu.Unlock()
		return req, 0
	})
	const calls = 200
	for i := 0; i < calls; i++ {
		resp := l.Call(0, 1, kind, []byte{byte(i)})
		if len(resp) != 1 || resp[0] != byte(i) {
			t.Fatalf("call %d: resp %v", i, resp)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if executions != calls {
		t.Fatalf("handler executed %d times for %d calls", executions, calls)
	}
	_, suppressed := l.Stats(1).Faults()
	if suppressed == 0 {
		t.Fatal("DuplicateProb 0.5 never produced a suppressed duplicate")
	}
}

// Closing the network must wake a caller blocked in the retry loop with
// ErrClosed — it cannot be left waiting for an ack that will never come.
func TestCloseWakesBlockedCall(t *testing.T) {
	l, _ := testLayer(2)
	l.Network().SetFaults(simnet.FaultPlan{DropProb: 1, Seed: 1})
	l.SetRetryPolicy(RetryPolicy{MaxAttempts: 1 << 30})
	const kind Kind = 2
	l.Register(1, kind, func(NodeID, []byte) ([]byte, vclock.Duration) { return nil, 0 })

	errc := make(chan error, 1)
	go func() {
		_, err := l.CallErr(0, 1, kind, nil)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the retry loop spin
	l.Network().Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the blocked caller")
	}
}

// Retransmission under random loss: the handler still runs exactly once
// per logical call, responses stay correct, and the whole schedule —
// including every backoff wait — replays bit-identically for the seed.
func TestRetryExactlyOnceAndDeterministic(t *testing.T) {
	const calls = 80
	run := func() (callerT vclock.Time, executions int, retries uint64) {
		l, clocks := testLayer(2)
		l.Network().SetFaults(simnet.FaultPlan{DropProb: 0.25, Seed: 21})
		// A generous budget: at 25% loss a default 8-attempt budget has
		// about a 0.03% chance per call of running dry, which over many
		// calls is a real flake; 20 attempts pushes that below 1e-7.
		l.SetRetryPolicy(RetryPolicy{MaxAttempts: 20})
		const kind Kind = 3
		l.Register(1, kind, func(_ NodeID, req []byte) ([]byte, vclock.Duration) {
			executions++
			return append([]byte("re:"), req...), 10
		})
		for i := 0; i < calls; i++ {
			resp := l.Call(0, 1, kind, []byte{byte(i)})
			if string(resp) != "re:"+string([]byte{byte(i)}) {
				t.Fatalf("call %d: resp %q", i, resp)
			}
		}
		retries, _ = l.Stats(0).Faults()
		return clocks[0].Now(), executions, retries
	}
	t1, exec1, retries1 := run()
	t2, exec2, retries2 := run()
	if exec1 != calls || exec2 != calls {
		t.Fatalf("handler executed %d/%d times for %d calls", exec1, exec2, calls)
	}
	if retries1 == 0 {
		t.Fatal("DropProb 0.35 never forced a retry")
	}
	if t1 != t2 || retries1 != retries2 {
		t.Fatalf("same seed: clocks %d/%d, retries %d/%d", t1, t2, retries1, retries2)
	}
}

// Exhausting the retry budget yields UnreachableError naming the target,
// the kind, and the attempt count.
func TestUnreachableAfterMaxAttempts(t *testing.T) {
	l, _ := testLayer(2)
	l.Network().SetFaults(simnet.FaultPlan{DropProb: 1, Seed: 1})
	const kind Kind = 4
	executed := false
	l.Register(1, kind, func(NodeID, []byte) ([]byte, vclock.Duration) {
		executed = true
		return nil, 0
	})
	_, err := l.CallErr(0, 1, kind, nil)
	var ue *UnreachableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnreachableError", err)
	}
	if ue.Node != 1 || ue.Kind != kind || ue.Attempts != DefaultMaxAttempts {
		t.Fatalf("UnreachableError = %+v", ue)
	}
	if ue.Executed || executed {
		t.Fatal("DropProb 1 delivered a request")
	}
	if err := l.NotifyErr(0, 1, kind, nil); !errors.As(err, &ue) {
		t.Fatalf("NotifyErr = %v, want *UnreachableError", err)
	}
}

// A peer marked down by the health monitor is fenced: calls fail
// immediately, burning no attempts and no virtual time.
func TestMarkDownFailsFast(t *testing.T) {
	l, clocks := testLayer(2)
	const kind Kind = 5
	l.Register(1, kind, func(NodeID, []byte) ([]byte, vclock.Duration) { return nil, 0 })
	l.MarkDown(1)
	_, err := l.CallErr(0, 1, kind, nil)
	var ue *UnreachableError
	if !errors.As(err, &ue) || ue.Attempts != 0 {
		t.Fatalf("err = %v, want pre-send UnreachableError", err)
	}
	if got := clocks[0].Now(); got != 0 {
		t.Fatalf("fenced call charged %d ns", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Call to a down node must panic")
		}
	}()
	l.Call(0, 1, kind, nil)
}

// Timeouts and retries surface as perfmon events attributed to the
// caller, with the attempt ordinal in Arg2.
func TestRetryEventsRecorded(t *testing.T) {
	l, _ := testLayer(2)
	rec := perfmon.New(2, 0)
	l.SetRecorder(rec)
	rec.Enable()
	l.Network().SetFaults(simnet.FaultPlan{DropProb: 1, Seed: 1})
	l.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	const kind Kind = 6
	l.Register(1, kind, func(NodeID, []byte) ([]byte, vclock.Duration) { return nil, 0 })
	if _, err := l.CallErr(0, 1, kind, nil); err == nil {
		t.Fatal("expected failure under DropProb 1")
	}
	counts := rec.KindCount(0)
	if counts[perfmon.EvTimeout] != 3 {
		t.Fatalf("EvTimeout count = %d, want 3", counts[perfmon.EvTimeout])
	}
	if counts[perfmon.EvRetry] != 2 {
		t.Fatalf("EvRetry count = %d, want 2 (last attempt does not retry)", counts[perfmon.EvRetry])
	}
}

// A plan that activates the reliability protocol but never fires (a
// crash far in the future) must charge exactly what the fault-free path
// charges: the request/ack machinery is cost-invisible on clean rounds.
func TestFaultPathCostIdentity(t *testing.T) {
	const kind Kind = 7
	handler := func(_ NodeID, req []byte) ([]byte, vclock.Duration) {
		return append([]byte("re:"), req...), 25
	}
	run := func(plan bool) (caller, stolen vclock.Time, notifyCaller vclock.Time) {
		l, clocks := testLayer(2)
		if plan {
			l.Network().SetFaults(simnet.FaultPlan{
				NodeFaults: []simnet.NodeFault{{Node: 1, CrashAt: 1 << 60}},
				Seed:       99,
			})
			if !l.Network().CallFaultsActive() {
				t.Fatal("plan should route calls through the reliability protocol")
			}
		}
		l.Register(1, kind, handler)
		if resp := l.Call(0, 1, kind, []byte("ping")); string(resp) != "re:ping" {
			t.Fatalf("resp = %q", resp)
		}
		caller = clocks[0].Now()
		stolen = vclock.Time(clocks[1].Stolen())
		l.Notify(0, 1, kind, []byte("wn"))
		notifyCaller = clocks[0].Now()
		return
	}
	c0, s0, n0 := run(false)
	c1, s1, n1 := run(true)
	if c0 != c1 || s0 != s1 || n0 != n1 {
		t.Fatalf("reliable path diverged from fault-free costs: call %d vs %d, stolen %d vs %d, notify %d vs %d",
			c0, c1, s0, s1, n0, n1)
	}
}
