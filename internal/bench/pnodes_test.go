package bench

import (
	"encoding/binary"
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"hamster"
	"hamster/internal/apps"
	"hamster/internal/checkpoint"
	"hamster/internal/perfmon"
	"hamster/internal/simnet"
	"hamster/internal/vclock"
)

// The parallel-node identity gates: Config.ParallelNodes swaps the
// free-running reference scheduler for the conservative lookahead engine
// (internal/vclock.Engine), and NOTHING modeled may move — per-node
// checksums, per-node virtual clocks, network statistics, and per-node
// perfmon event streams must be byte-identical, because the gate delays
// host-time delivery decisions without ever touching a virtual charge.
// The messaging workload pins all four observables exactly at 2, 8, and
// 64 nodes — its traffic runs entirely on the gated network, where every
// charge is a pure function of virtual time. The DSM kernels pin
// checksums exactly everywhere; their virtual times get the ±1% band the
// BENCH_9 suite uses, because the full core path carries a pre-existing
// scheduling-order wobble under EITHER scheduler (goroutine scheduling
// can shift a stolen handler charge between nodes — see benchcheck.sh —
// and above hsync.Threshold the distributed lock queues add the
// schedule-dependence documented in scaling.go).

// ringObs is every observable of one msgring run: per-node checksums and
// clocks, network totals, and per-node protocol event streams.
type ringObs struct {
	sums   []float64
	clocks []vclock.Time
	msgs   uint64
	bytes  uint64
	events [][]perfmon.Event
}

// runRingObs drives the gated user-messaging network through the same
// receive-balanced neighbor exchange as BENCH_9's msgring cell, with the
// protocol event recorder on, and returns everything observable.
func runRingObs(t *testing.T, nodes, rounds int, pnodes bool) ringObs {
	t.Helper()
	rt, err := hamster.New(hamster.Config{
		Platform: hamster.SWDSM, Nodes: nodes,
		ParallelNodes: pnodes, PerfEventCap: 4 * rounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Perf().Enable()
	obs := ringObs{sums: make([]float64, nodes), clocks: make([]vclock.Time, nodes)}
	rt.Run(func(e *hamster.Env) {
		c := e.Cluster
		self, n := c.Self(), c.NumNodes()
		var sum float64
		for r := 0; r < rounds; r++ {
			e.Compute(uint64(64 * (self + 1)))
			buf := make([]byte, 8) // sender owns payload bytes; fresh per send
			binary.LittleEndian.PutUint64(buf, uint64(self)<<32|uint64(uint32(r)))
			c.Send((self+1)%n, uint32(r), buf)
			payload, from, ok := c.Recv(uint32(r))
			if !ok {
				return
			}
			v := binary.LittleEndian.Uint64(payload)
			sum += float64(v>>32) + float64(uint32(v))*1e-3 + float64(from)*1e-6
		}
		obs.sums[self] = sum
		obs.clocks[self] = e.Now()
	})
	obs.msgs, obs.bytes = rt.Network().TotalTraffic()
	obs.events = make([][]perfmon.Event, nodes)
	for i := 0; i < nodes; i++ {
		obs.events[i] = rt.Perf().Events(i)
	}
	return obs
}

// runKernelObs runs one kernel through the core services and returns the
// per-node results and the cluster's virtual wall clock.
func runKernelObs(t *testing.T, nodes int, pnodes bool, kernel apps.Kernel) ([]apps.Result, vclock.Duration) {
	t.Helper()
	rt, err := hamster.New(hamster.Config{Platform: hamster.SWDSM, Nodes: nodes, ParallelNodes: pnodes})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res := apps.RunOnEnv(rt, kernel)
	return res, apps.MaxTotal(res)
}

// TestPNodesIdentity pins the gated scheduler bit-identical to the
// reference scheduler at 2, 8, and 64 nodes.
func TestPNodesIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-size identity campaign")
	}
	for _, nodes := range []int{2, 8, 64} {
		seq := runRingObs(t, nodes, 40, false)
		par := runRingObs(t, nodes, 40, true)
		if !reflect.DeepEqual(par.sums, seq.sums) {
			t.Fatalf("%d nodes: gate moved msgring checksums:\nseq %v\npar %v", nodes, seq.sums, par.sums)
		}
		if !reflect.DeepEqual(par.clocks, seq.clocks) {
			t.Fatalf("%d nodes: gate moved msgring clocks:\nseq %v\npar %v", nodes, seq.clocks, par.clocks)
		}
		if par.msgs != seq.msgs || par.bytes != seq.bytes {
			t.Fatalf("%d nodes: gate moved traffic: %d/%d vs %d/%d",
				nodes, par.msgs, par.bytes, seq.msgs, seq.bytes)
		}
		for i := range seq.events {
			if !reflect.DeepEqual(par.events[i], seq.events[i]) {
				t.Fatalf("%d nodes: gate moved node %d's perfmon event stream (%d vs %d events)",
					nodes, i, len(par.events[i]), len(seq.events[i]))
			}
		}
	}
	kernel := func(m apps.Machine) apps.Result { return apps.SOR(m, 64, 2, true) }
	for _, nodes := range []int{2, 8, 64} {
		seqRes, seqVirt := runKernelObs(t, nodes, false, kernel)
		parRes, parVirt := runKernelObs(t, nodes, true, kernel)
		for i := range seqRes {
			if parRes[i].Check != seqRes[i].Check {
				t.Fatalf("%d nodes: gate moved node %d's kernel checksum: %v vs %v",
					nodes, i, parRes[i].Check, seqRes[i].Check)
			}
		}
		if !virtualWithin(uint64(parVirt), uint64(seqVirt), 0.01) {
			t.Fatalf("%d nodes: kernel virtual time outside the wobble band: %v vs %v",
				nodes, parVirt, seqVirt)
		}
	}
}

// TestPNodesFaultDeterminism pins the gated scheduler under a seeded
// 5%-drop campaign: drops and retransmissions are drawn from per-link
// seeded streams, so the parallel engine must reproduce the sequential
// run's checksum and retry count exactly (virtual time gets the core
// path's wobble band, as in TestPNodesIdentity).
func TestPNodesFaultDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("seeded fault campaign")
	}
	kernel := func(m apps.Machine) apps.Result { return apps.SOR(m, 96, 4, true) }
	run := func(pnodes bool) (check float64, virt vclock.Duration, retries uint64) {
		rt, err := hamster.New(hamster.Config{Platform: hamster.SWDSM, Nodes: 8, ParallelNodes: pnodes})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		rt.SetFaults(simnet.FaultPlan{DropProb: 0.05, Seed: 3})
		res := apps.RunOnEnv(rt, kernel)
		for i := 0; i < 8; i++ {
			r, _ := rt.AMsg().Stats(simnet.NodeID(i)).Faults()
			retries += r
		}
		return res[0].Check, apps.MaxTotal(res), retries
	}
	seqCheck, seqVirt, seqRetries := run(false)
	parCheck, parVirt, parRetries := run(true)
	if seqRetries == 0 {
		t.Fatal("5% drop campaign forced no retries — the plan did not bind")
	}
	if parCheck != seqCheck || parRetries != seqRetries ||
		!virtualWithin(uint64(parVirt), uint64(seqVirt), 0.01) {
		t.Fatalf("gate moved the fault campaign: check %v vs %v, virtual %v vs %v, retries %d vs %d",
			parCheck, seqCheck, parVirt, seqVirt, parRetries, seqRetries)
	}
}

// TestPNodesCrashRecoveryDeterminism pins the gated scheduler through a
// mid-traffic planned crash with checkpoint recovery: the rollback, the
// node re-admission (SetRetired/MarkDown transitions on the engine), and
// the replayed epochs must land on the sequential run's checksums and
// recovery count.
func TestPNodesCrashRecoveryDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery campaign")
	}
	kernel := func(m apps.Machine) apps.Result { return apps.SOR(m, 96, 4, true) }
	base := hamster.Config{Platform: hamster.SWDSM, Nodes: 4}
	rt, err := hamster.New(base)
	if err != nil {
		t.Fatal(err)
	}
	baseVirtual := apps.MaxTotal(apps.RunOnEnv(rt, kernel))
	rt.Close()
	plan := simnet.FaultPlan{
		NodeFaults: []simnet.NodeFault{{Node: 1, CrashAt: vclock.Time(baseVirtual / 2)}},
		Recover:    true,
		Seed:       3,
	}
	run := func(pnodes bool) (check float64, recoveries int) {
		cfg := base
		cfg.ParallelNodes = pnodes
		cfg.CheckpointEvery = 2
		cfg.CheckpointIncremental = true
		cfg.CheckpointSink = checkpoint.NewMemorySink(64)
		res, rt, recs, err := apps.RunRecoverable(cfg, plan, kernel)
		if err != nil {
			t.Fatal(err)
		}
		rt.Close()
		return res[0].Check, recs
	}
	seqCheck, seqRecs := run(false)
	parCheck, parRecs := run(true)
	if seqRecs < 1 {
		t.Fatalf("planned crash needed no recovery (crash at %v)", plan.NodeFaults[0].CrashAt)
	}
	if parCheck != seqCheck || parRecs != seqRecs {
		t.Fatalf("gate moved the crash-recovery run: check %v vs %v, recoveries %d vs %d",
			parCheck, seqCheck, parRecs, seqRecs)
	}
}

// TestPNodesScaling256Identity replays the BENCH_7 headline cell
// (sor-opt, strong scaling, scope engine, flat topology, 256 nodes)
// through the core services under the parallel engine: the checksum must
// equal the committed campaign value bit for bit, and the gated run's
// virtual wall clock must sit in the same wobble band as the sequential
// one. Part of scripts/benchcheck.sh.
func TestPNodesScaling256Identity(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node replay")
	}
	raw, err := os.ReadFile("../../BENCH_7.json")
	if err != nil {
		t.Skipf("no committed BENCH_7.json: %v", err)
	}
	var b7 struct {
		Schema  string          `json:"schema"`
		Results []ScalingResult `json:"results"`
	}
	if err := json.Unmarshal(raw, &b7); err != nil {
		t.Fatal(err)
	}
	if b7.Schema != "hamster/scaling/v7" {
		t.Fatalf("BENCH_7.json schema %q, want hamster/scaling/v7", b7.Schema)
	}
	var committed *ScalingResult
	for i := range b7.Results {
		r := &b7.Results[i]
		if r.Kernel == "sor-opt" && r.Mode == "strong" && r.Engine == "scope" &&
			r.Topology == "flat" && r.Nodes == 256 {
			committed = r
			break
		}
	}
	if committed == nil {
		t.Fatal("BENCH_7.json has no sor-opt/strong/scope/flat/256 cell")
	}
	kernel := func(m apps.Machine) apps.Result { return apps.SOR(m, 256, 2, true) }
	seqRes, seqVirt := runKernelObs(t, 256, false, kernel)
	parRes, parVirt := runKernelObs(t, 256, true, kernel)
	if seqRes[0].Check != committed.Check {
		t.Fatalf("sequential 256-node checksum no longer matches BENCH_7: %v, committed %v",
			seqRes[0].Check, committed.Check)
	}
	if parRes[0].Check != committed.Check {
		t.Fatalf("gated 256-node checksum diverged from BENCH_7: %v, committed %v",
			parRes[0].Check, committed.Check)
	}
	if !virtualWithin(uint64(parVirt), uint64(seqVirt), 0.01) {
		t.Fatalf("gated 256-node virtual time outside the wobble band: %v vs %v", parVirt, seqVirt)
	}
}
