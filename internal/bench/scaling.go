package bench

// BENCH_7 — the rack-scale scaling campaign (ROADMAP item 1). The kernel
// suite runs on both page-protocol families (home-based scope
// consistency vs IVY write-invalidate) at 8/16/64/256 nodes across
// topology presets, in two modes:
//
//   - strong: the problem size is fixed, so per-node work shrinks as the
//     cluster grows and synchronization/communication dominates;
//   - weak: the problem grows with the cluster, so per-node work is
//     constant and the curves isolate the protocols' scaling overheads.
//
// The headline result is the ScC/IVY crossover: at small scale the
// home-based scope protocol wins (deferred diffs, cheap notices), but
// its barrier notice exchange and home-directed diff flushes concentrate
// traffic, while IVY's ownership migrates to the writers — so as the
// cluster and the topology penalty grow, write-invalidate catches up and
// overtakes on kernels whose sharing is migratory. RenderScaling calls
// the crossover out explicitly.
//
// Determinism: scope-engine cells are bit-reproducible. The IVY engine's
// message counts (and therefore virtual times) are schedule-dependent
// under contention (documented in internal/ivy), and above
// hsync.Threshold nodes the distributed lock queues add the same caveat
// for both engines; checksums are exact in every cell and are
// cross-checked between engines here.

import (
	"fmt"
	"time"

	"hamster/internal/apps"
	"hamster/internal/consengine"
	"hamster/internal/ivy"
	"hamster/internal/memsim"
	"hamster/internal/platform"
	"hamster/internal/simnet"
	"hamster/internal/swdsm"
	"hamster/internal/vclock"
)

// ScalingResult is one (kernel, mode, engine, topology, nodes) cell.
type ScalingResult struct {
	Kernel   string `json:"kernel"`
	Mode     string `json:"mode"` // "strong" or "weak"
	Engine   string `json:"engine"`
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes"`
	// Problem is the kernel's size parameter for this cell (weak cells
	// grow it with the cluster).
	Problem       int     `json:"problem"`
	WallNs        int64   `json:"wall_ns"`
	VirtualNs     uint64  `json:"virtual_ns"`
	Msgs          uint64  `json:"protocol_msgs"`
	PageFaults    uint64  `json:"page_faults"`
	Invalidations uint64  `json:"invalidations"`
	Check         float64 `json:"check"`
}

// ScalingNodeCounts is the cluster-size axis of the campaign.
var ScalingNodeCounts = []int{8, 16, 64, 256}

// scalingTopologies is the topology axis: the legacy flat fabric as the
// baseline, the oversubscribed rack fabric as the stress case, and the
// full-bisection fat tree between them.
var scalingTopologies = []string{simnet.TopoFlat, simnet.TopoRack, simnet.TopoFatTree}

// scalingEngines is the protocol axis: the two page-protocol families.
var scalingEngines = []string{consengine.ScopeName, consengine.IVYName}

// scalingKernel is one workload in the campaign; size maps a cluster
// size to the kernel's problem parameter.
type scalingKernel struct {
	name string
	mode string
	size func(nodes int) int
	run  func(n int) apps.Kernel
}

func scalingKernels() []scalingKernel {
	return []scalingKernel{
		// Strong scaling: fixed totals, shrinking per-node shares.
		{"sor-opt", "strong", func(int) int { return 256 },
			func(n int) apps.Kernel { return func(m apps.Machine) apps.Result { return apps.SOR(m, n, 2, true) } }},
		{"matmult", "strong", func(int) int { return 128 },
			func(n int) apps.Kernel { return func(m apps.Machine) apps.Result { return apps.MatMult(m, n) } }},
		// Weak scaling: per-node share held constant.
		{"sor-opt", "weak", func(nodes int) int { return 4 * nodes },
			func(n int) apps.Kernel { return func(m apps.Machine) apps.Result { return apps.SOR(m, n, 2, true) } }},
		{"stream", "weak", func(nodes int) int { return 256 * nodes },
			func(n int) apps.Kernel {
				return func(m apps.Machine) apps.Result { return apps.Stream(m, n, 2, memsim.Block) }
			}},
	}
}

// BuildEngineTopo is BuildEngine with a topology: a bare software-DSM
// cluster running the named consistency engine over the named switch
// fabric.
func BuildEngineTopo(name string, nodes int, topology string) (consengine.Engine, error) {
	eng, err := consengine.NormalizeName(name)
	if err != nil {
		return nil, err
	}
	topo, err := simnet.TopologyPreset(topology)
	if err != nil {
		return nil, err
	}
	if eng == consengine.IVYName {
		return ivy.New(ivy.Config{Nodes: nodes, Topology: topo})
	}
	cfg := swdsm.Config{Nodes: nodes, Topology: topo}
	if eng == consengine.EagerRCName {
		cfg.Protocol = swdsm.EagerRC
	}
	return swdsm.New(cfg)
}

// scalingRun executes one cell on a private cluster.
func scalingRun(engine, topology string, nodes int, kernel apps.Kernel) (vclock.Duration, float64, platform.Stats, error) {
	d, err := BuildEngineTopo(engine, nodes, topology)
	if err != nil {
		return 0, 0, platform.Stats{}, err
	}
	defer d.Close()
	res := apps.RunOnSubstrate(d, kernel)
	var st platform.Stats
	for i := 0; i < nodes; i++ {
		s := d.NodeStats(i)
		st.ProtocolMsgs += s.ProtocolMsgs
		st.PageFaults += s.PageFaults
		st.Invalidations += s.Invalidations
	}
	return apps.MaxTotal(res), res[0].Check, st, nil
}

// ScalingSuite measures the full campaign with up to `parallel` cells
// concurrent (each cell owns a private cluster, see runCells). Returns
// an error if any cell fails or any checksum disagrees across engines
// and topologies within the same (kernel, mode, nodes) group — protocols
// and fabrics change costs, never results.
func ScalingSuite(parallel int) ([]ScalingResult, error) {
	type cell struct {
		k     scalingKernel
		topo  string
		eng   string
		nodes int
	}
	var cells []cell
	for _, k := range scalingKernels() {
		for _, nodes := range ScalingNodeCounts {
			for _, topo := range scalingTopologies {
				for _, eng := range scalingEngines {
					cells = append(cells, cell{k, topo, eng, nodes})
				}
			}
		}
	}
	rows, err := runCells(parallel, len(cells), func(i int) (ScalingResult, error) {
		c := cells[i]
		size := c.k.size(c.nodes)
		start := time.Now()
		virt, check, st, err := scalingRun(c.eng, c.topo, c.nodes, c.k.run(size))
		wall := time.Since(start)
		if err != nil {
			return ScalingResult{}, fmt.Errorf("bench: scaling %s/%s %s@%s/%d: %w",
				c.k.name, c.k.mode, c.eng, c.topo, c.nodes, err)
		}
		return ScalingResult{
			Kernel:        c.k.name,
			Mode:          c.k.mode,
			Engine:        c.eng,
			Topology:      c.topo,
			Nodes:         c.nodes,
			Problem:       size,
			WallNs:        wall.Nanoseconds(),
			VirtualNs:     uint64(virt),
			Msgs:          st.ProtocolMsgs,
			PageFaults:    st.PageFaults,
			Invalidations: st.Invalidations,
			Check:         check,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	// Checksum agreement within each (kernel, mode, nodes) group: the
	// engine and the fabric must not move the answer.
	ref := map[string]float64{}
	for _, r := range rows {
		key := fmt.Sprintf("%s/%s/%d", r.Kernel, r.Mode, r.Nodes)
		if r.Engine == consengine.ScopeName && r.Topology == simnet.TopoFlat {
			ref[key] = r.Check
		}
	}
	for _, r := range rows {
		key := fmt.Sprintf("%s/%s/%d", r.Kernel, r.Mode, r.Nodes)
		want, ok := ref[key]
		if !ok {
			return nil, fmt.Errorf("bench: no scope/flat reference for %s", key)
		}
		if r.Check != want {
			return nil, fmt.Errorf("bench: %s@%s moved the %s checksum: %v vs scope/flat's %v",
				r.Engine, r.Topology, key, r.Check, want)
		}
	}
	return rows, nil
}

// RenderScaling prints the campaign as per-kernel scaling tables plus
// the ScC/IVY crossover summary.
func RenderScaling(rows []ScalingResult) string {
	s := "Scaling campaign (BENCH_7: kernel suite × engines × topologies × cluster sizes)\n"
	s += "virtual times; strong = fixed problem, weak = problem grows with nodes\n\n"
	s += fmt.Sprintf("  %-10s %-7s %-9s %-8s %5s %8s %14s %10s %9s\n",
		"kernel", "mode", "engine", "topology", "nodes", "problem", "virtual", "msgs", "faults")
	for _, r := range rows {
		s += fmt.Sprintf("  %-10s %-7s %-9s %-8s %5d %8d %14v %10d %9d\n",
			r.Kernel, r.Mode, r.Engine, r.Topology, r.Nodes, r.Problem,
			vclock.Duration(r.VirtualNs), r.Msgs, r.PageFaults)
	}
	s += "\n" + RenderCrossover(rows)
	return s
}

// RenderCrossover reports, per (kernel, mode, topology), the cluster
// size from which IVY's virtual time beats the scope engine's at every
// measured scale — the point where home-based ScC stops winning. A lead
// that evaporates at larger sizes (ivy marginally ahead at 8 nodes,
// behind at 256) is not a crossover: the question is who wins as the
// cluster grows, so the scan looks for the last lead change.
func RenderCrossover(rows []ScalingResult) string {
	virt := map[string]uint64{}
	for _, r := range rows {
		virt[fmt.Sprintf("%s/%s/%s/%s/%d", r.Kernel, r.Mode, r.Engine, r.Topology, r.Nodes)] = r.VirtualNs
	}
	s := "ScC vs IVY crossover (cluster size from which write-invalidate stays ahead):\n"
	for _, k := range scalingKernels() {
		for _, topo := range scalingTopologies {
			cross := 0
			for _, nodes := range ScalingNodeCounts {
				sc := virt[fmt.Sprintf("%s/%s/%s/%s/%d", k.name, k.mode, consengine.ScopeName, topo, nodes)]
				iv := virt[fmt.Sprintf("%s/%s/%s/%s/%d", k.name, k.mode, consengine.IVYName, topo, nodes)]
				if sc == 0 || iv == 0 {
					continue
				}
				if iv < sc {
					if cross == 0 {
						cross = nodes
					}
				} else {
					cross = 0
				}
			}
			if cross > 0 {
				s += fmt.Sprintf("  %-10s %-7s %-8s ivy overtakes scope at %d nodes\n", k.name, k.mode, topo, cross)
			} else {
				s += fmt.Sprintf("  %-10s %-7s %-8s scope holds the lead through %d nodes\n",
					k.name, k.mode, topo, ScalingNodeCounts[len(ScalingNodeCounts)-1])
			}
		}
	}
	return s
}
