package bench

import (
	"encoding/json"
	"os"
	"testing"
)

// TestWalltimeBaselineIdentity cross-checks the committed BENCH files
// against each other — no simulation, just the invariant that makes the
// wall-time work trustworthy: BENCH_5's per-cell modeled results are the
// same physics as the older baselines. Its kernelwall cells must carry
// BENCH_2's virtual times and checksums exactly, and its aggregation
// cells BENCH_4's; only wall-clock and allocation readings are new
// measurements. The committed file also pins the hot-path allocation
// story: page-fetch and message-send at 0 allocs/op.
func TestWalltimeBaselineIdentity(t *testing.T) {
	var b5 struct {
		Results WalltimeReport `json:"results"`
	}
	var b2 struct {
		Results []KernelWallResult `json:"results"`
	}
	var b4 struct {
		Results []AggregationResult `json:"results"`
	}
	for path, into := range map[string]any{
		"../../BENCH_5.json": &b5,
		"../../BENCH_2.json": &b2,
		"../../BENCH_4.json": &b4,
	} {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}

	if got, want := len(b5.Results.KernelWall), len(b2.Results); got != want {
		t.Fatalf("BENCH_5 kernelwall rows %d, BENCH_2 has %d", got, want)
	}
	for i, r := range b5.Results.KernelWall {
		want := b2.Results[i]
		if r.Kernel != want.Kernel {
			t.Fatalf("kernelwall row %d kernel %q, BENCH_2 %q", i, r.Kernel, want.Kernel)
		}
		if r.VirtualNs != want.VirtualNs {
			t.Errorf("%s: BENCH_5 virtual %d != BENCH_2 %d", r.Kernel, r.VirtualNs, want.VirtualNs)
		}
		if r.Check != want.Check {
			t.Errorf("%s: BENCH_5 checksum %v != BENCH_2 %v", r.Kernel, r.Check, want.Check)
		}
	}

	if got, want := len(b5.Results.Aggregation), len(b4.Results); got != want {
		t.Fatalf("BENCH_5 aggregation rows %d, BENCH_4 has %d", got, want)
	}
	for i, r := range b5.Results.Aggregation {
		want := b4.Results[i]
		if r.Kernel != want.Kernel || r.Nodes != want.Nodes {
			t.Fatalf("aggregation row %d is %s/%d, BENCH_4 has %s/%d",
				i, r.Kernel, r.Nodes, want.Kernel, want.Nodes)
		}
		if r.VirtualOffNs != want.VirtualOffNs || r.VirtualAggNs != want.VirtualAggNs {
			t.Errorf("%s/%d: BENCH_5 virtual %d/%d != BENCH_4 %d/%d", r.Kernel, r.Nodes,
				r.VirtualOffNs, r.VirtualAggNs, want.VirtualOffNs, want.VirtualAggNs)
		}
		if r.Check != want.Check {
			t.Errorf("%s/%d: BENCH_5 checksum %v != BENCH_4 %v", r.Kernel, r.Nodes, r.Check, want.Check)
		}
		if r.MsgsOff != want.MsgsOff || r.MsgsAgg != want.MsgsAgg {
			t.Errorf("%s/%d: BENCH_5 protocol messages %d/%d != BENCH_4 %d/%d", r.Kernel, r.Nodes,
				r.MsgsOff, r.MsgsAgg, want.MsgsOff, want.MsgsAgg)
		}
	}

	for _, p := range b5.Results.AllocBenchmarks {
		if (p.Path == "page-fetch" || p.Path == "message-send") && p.AllocsPerOp != 0 {
			t.Errorf("%s: committed BENCH_5 records %d allocs/op, the pooled path must be 0", p.Path, p.AllocsPerOp)
		}
	}
}
