package bench

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"time"

	"hamster"
	"hamster/internal/apps"
	"hamster/internal/vclock"
)

// The parallel-node wall-time suite (BENCH_9.json, schema
// hamster/pwalltime/v9): each cell runs once under the free-running
// reference scheduler and once with Config.ParallelNodes — the
// conservative lookahead gate of internal/vclock.Engine — and records
// both walls next to the modeled results, which the suite verifies the
// gate did not move (DESIGN.md §5i). The cells are the 64- and 256-node
// scope-engine scaling shapes from BENCH_7 run through the core
// services, plus a neighbor-exchange workload on the user-level
// messaging layer — the network the gate actually arbitrates — so the
// suite measures both the gate's overhead when idle and its cost when
// every receive is horizon-checked.
//
// Wall-clock speedup depends on real cores: both schedulers spawn one
// goroutine per node, so on a single-core host (host_cores records it)
// the two legs differ only by gate overhead and the speedup sits near
// 1x. The modeled-result identity columns are host-independent.

// PNodesCellResult is one workload measured under both schedulers.
type PNodesCellResult struct {
	Workload string `json:"workload"`
	Nodes    int    `json:"nodes"`
	// Problem is the kernel's size parameter (the round count for the
	// messaging workload).
	Problem      int     `json:"problem"`
	WallSeqNs    int64   `json:"wall_seq_ns"`
	WallPNodesNs int64   `json:"wall_pnodes_ns"`
	Speedup      float64 `json:"speedup"`
	// VirtualNs and Check come from the sequential leg; the parallel leg
	// must reproduce them (checksums exactly, virtual time exactly for
	// the messaging cell and within ±1% for the DSM kernels: above
	// hsync.Threshold nodes the distributed lock queues and tree
	// barriers make virtual-time attribution schedule-dependent under
	// EITHER scheduler — see the determinism note in scaling.go — so the
	// tolerance covers run-to-run wobble, not gate drift).
	VirtualNs uint64  `json:"virtual_ns"`
	Check     float64 `json:"check"`
	// UserMsgs counts cluster-control messages — the gated traffic.
	// Zero for the DSM kernels: their protocol runs on the synchronous
	// active-message layer, which the gate never delays (DESIGN.md §5i).
	UserMsgs uint64 `json:"user_msgs"`
}

// PWalltimeReport is the BENCH_9.json payload.
type PWalltimeReport struct {
	HostCores         int                `json:"host_cores"`
	GoMaxProcs        int                `json:"gomaxprocs"`
	SuiteSeqWallNs    int64              `json:"suite_seq_wall_ns"`
	SuitePNodesWallNs int64              `json:"suite_pnodes_wall_ns"`
	SuiteSpeedup      float64            `json:"suite_speedup"`
	Cells             []PNodesCellResult `json:"cells"`
}

// pnodesKernelCell runs one kernel through the core services on a
// private software-DSM cluster, under either scheduler.
func pnodesKernelCell(nodes int, pnodes bool, kernel apps.Kernel) (time.Duration, uint64, float64, error) {
	rt, err := hamster.New(hamster.Config{Platform: hamster.SWDSM, Nodes: nodes, ParallelNodes: pnodes})
	if err != nil {
		return 0, 0, 0, err
	}
	defer rt.Close()
	start := time.Now()
	res := apps.RunOnEnv(rt, kernel)
	wall := time.Since(start)
	return wall, uint64(apps.MaxTotal(res)), res[0].Check, nil
}

// msgRingCell drives the user-level messaging layer directly: every
// round each node computes an unequal slice of work, sends one tagged
// message to its right neighbor, and receives the matching one from its
// left — the receive-balanced exchange shape the conservative gate
// requires (DESIGN.md §5i). One sender per (receiver, tag) makes the
// modeled results a pure function of virtual time under BOTH
// schedulers, so the identity requirement here is exact.
func msgRingCell(nodes, rounds int, pnodes bool) (wall time.Duration, virt uint64, check float64, msgs uint64, err error) {
	rt, err := hamster.New(hamster.Config{Platform: hamster.SWDSM, Nodes: nodes, ParallelNodes: pnodes})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer rt.Close()
	sums := make([]float64, nodes)
	clocks := make([]vclock.Time, nodes)
	start := time.Now()
	rt.Run(func(e *hamster.Env) {
		c := e.Cluster
		self, n := c.Self(), c.NumNodes()
		var sum float64
		for r := 0; r < rounds; r++ {
			e.Compute(uint64(64 * (self + 1))) // unequal work: the horizon must bind
			// The sender owns the payload bytes for the message's whole
			// lifetime (simnet.Send does not copy), so each round sends a
			// fresh slice.
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, uint64(self)<<32|uint64(uint32(r)))
			c.Send((self+1)%n, uint32(r), buf)
			payload, from, ok := c.Recv(uint32(r))
			if !ok {
				return
			}
			v := binary.LittleEndian.Uint64(payload)
			sum += float64(v>>32) + float64(uint32(v))*1e-3 + float64(from)*1e-6
		}
		sums[self] = sum
		clocks[self] = e.Now()
	})
	wall = time.Since(start)
	for i := 0; i < nodes; i++ {
		if uint64(clocks[i]) > virt {
			virt = uint64(clocks[i])
		}
		check += sums[i]
	}
	msgs, _ = rt.Network().TotalTraffic()
	return wall, virt, check, msgs, nil
}

// PWalltime measures the parallel-node suite: every cell sequentially
// and under the lookahead gate, verifying the gate reproduced the
// reference scheduler's modeled results.
func PWalltime() (*PWalltimeReport, error) {
	rep := &PWalltimeReport{
		HostCores:  runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	kernels := []struct {
		name    string
		nodes   int
		problem int
		kernel  apps.Kernel
	}{
		// The BENCH_7 scaling shapes (sor-opt strong, scope/flat) at the
		// two sizes the campaign's wall time is dominated by.
		{"sor-opt", 64, 256, func(m apps.Machine) apps.Result { return apps.SOR(m, 256, 2, true) }},
		{"sor-opt", 256, 256, func(m apps.Machine) apps.Result { return apps.SOR(m, 256, 2, true) }},
	}
	for _, k := range kernels {
		wallSeq, virtSeq, checkSeq, err := pnodesKernelCell(k.nodes, false, k.kernel)
		if err != nil {
			return nil, fmt.Errorf("bench: pwalltime %s/%d seq: %w", k.name, k.nodes, err)
		}
		wallPar, virtPar, checkPar, err := pnodesKernelCell(k.nodes, true, k.kernel)
		if err != nil {
			return nil, fmt.Errorf("bench: pwalltime %s/%d pnodes: %w", k.name, k.nodes, err)
		}
		if checkPar != checkSeq {
			return nil, fmt.Errorf("bench: pwalltime: gate moved %s/%d checksum: %v vs %v",
				k.name, k.nodes, checkPar, checkSeq)
		}
		if !virtualWithin(virtPar, virtSeq, 0.01) {
			return nil, fmt.Errorf("bench: pwalltime: gate moved %s/%d virtual time: %d vs %d",
				k.name, k.nodes, virtPar, virtSeq)
		}
		rep.Cells = append(rep.Cells, PNodesCellResult{
			Workload:     k.name,
			Nodes:        k.nodes,
			Problem:      k.problem,
			WallSeqNs:    wallSeq.Nanoseconds(),
			WallPNodesNs: wallPar.Nanoseconds(),
			Speedup:      float64(wallSeq) / float64(wallPar),
			VirtualNs:    virtSeq,
			Check:        checkSeq,
		})
	}
	const ringNodes, ringRounds = 64, 100
	wallSeq, virtSeq, checkSeq, msgs, err := msgRingCell(ringNodes, ringRounds, false)
	if err != nil {
		return nil, fmt.Errorf("bench: pwalltime msgring seq: %w", err)
	}
	wallPar, virtPar, checkPar, _, err := msgRingCell(ringNodes, ringRounds, true)
	if err != nil {
		return nil, fmt.Errorf("bench: pwalltime msgring pnodes: %w", err)
	}
	if checkPar != checkSeq || virtPar != virtSeq {
		return nil, fmt.Errorf("bench: pwalltime: gate moved msgring results: check %v vs %v, virtual %d vs %d",
			checkPar, checkSeq, virtPar, virtSeq)
	}
	rep.Cells = append(rep.Cells, PNodesCellResult{
		Workload:     "msgring",
		Nodes:        ringNodes,
		Problem:      ringRounds,
		WallSeqNs:    wallSeq.Nanoseconds(),
		WallPNodesNs: wallPar.Nanoseconds(),
		Speedup:      float64(wallSeq) / float64(wallPar),
		VirtualNs:    virtSeq,
		Check:        checkSeq,
		UserMsgs:     msgs,
	})
	for _, c := range rep.Cells {
		rep.SuiteSeqWallNs += c.WallSeqNs
		rep.SuitePNodesWallNs += c.WallPNodesNs
	}
	rep.SuiteSpeedup = float64(rep.SuiteSeqWallNs) / float64(rep.SuitePNodesWallNs)
	return rep, nil
}

// RenderPWalltime prints the parallel-node suite as text.
func RenderPWalltime(r *PWalltimeReport) string {
	s := fmt.Sprintf("Parallel-node wall time (conservative lookahead gate; host cores %d, GOMAXPROCS %d)\n\n",
		r.HostCores, r.GoMaxProcs)
	s += fmt.Sprintf("  %-10s %5s %8s %12s %12s %8s %14s %9s\n",
		"workload", "nodes", "problem", "wall seq", "wall pnodes", "speedup", "virtual", "usermsgs")
	for _, c := range r.Cells {
		s += fmt.Sprintf("  %-10s %5d %8d %12v %12v %7.2fx %14v %9d\n",
			c.Workload, c.Nodes, c.Problem,
			time.Duration(c.WallSeqNs).Round(time.Microsecond),
			time.Duration(c.WallPNodesNs).Round(time.Microsecond),
			c.Speedup, vclock.Duration(c.VirtualNs), c.UserMsgs)
	}
	s += fmt.Sprintf("\n  suite       seq %v   pnodes %v   speedup %.2fx\n",
		time.Duration(r.SuiteSeqWallNs).Round(time.Millisecond),
		time.Duration(r.SuitePNodesWallNs).Round(time.Millisecond),
		r.SuiteSpeedup)
	s += "  modeled results verified identical across schedulers (checksums exact; virtual exact for\n"
	s += "  msgring, within the ±1% hierarchical-sync schedule wobble for the at-scale DSM kernels)\n"
	return s
}

// virtualWithin reports whether a is within frac of b.
func virtualWithin(a, b uint64, frac float64) bool {
	return math.Abs(float64(a)-float64(b)) <= float64(b)*frac
}
