package bench

// Scaling-campaign gates:
//
//   - TestTopologyFlatIdentity (run by scripts/benchcheck.sh): the
//     topology-aware fabric's flat preset must be bit-identical to the
//     pre-topology network on both measurement paths — the bare
//     substrate the engine suite (BENCH_6) uses and the full core
//     services the kernelwall/aggregation suites (BENCH_2/BENCH_4) use.
//     On a plain build (how benchcheck.sh runs it) checksums, virtual
//     times, and message counts are bit-exact on the scope engine: the
//     topology layer must be invisible until a non-flat preset is asked
//     for. Under -race, virtual times relax to 0.5% — the race
//     scheduler's pre-existing stolen-charge attribution wobble (see
//     race_off.go, TestEngineDefaultIdentity) moves them by tens of
//     microseconds for reasons unrelated to topology. The ivy engine
//     pins checksums only: its probable-owner chain lengths depend on
//     request arrival order under contention (see DESIGN §5f), so
//     virtual time and message counts differ between any two runs,
//     topology or not.
//   - TestHierSyncKernels64 / TestHierSyncFaults64 (run under -race by
//     scripts/check.sh): above hsync.Threshold the substrates switch to
//     tree barriers and distributed lock queues; kernels at 64 nodes
//     must still produce the scope/flat reference checksum on every
//     engine and topology, including under a seeded lossy-ethernet
//     fault campaign with retransmissions.

import (
	"math"
	"testing"

	"hamster"
	"hamster/internal/apps"
	"hamster/internal/consengine"
	"hamster/internal/simnet"
	"hamster/internal/vclock"
	"hamster/models/jiajia"
)

// virtEqual compares two virtual times under the identity pin: bit-exact
// on a plain build, within 0.5% under -race (the race scheduler's
// stolen-charge attribution wobble; see race_off.go).
func virtEqual(a, b vclock.Duration) bool {
	if !raceEnabled {
		return a == b
	}
	return math.Abs(float64(a)-float64(b)) <= float64(a)*0.005
}

func TestTopologyFlatIdentity(t *testing.T) {
	// Bare-substrate path (the BENCH_6 measurement path): default
	// construction (zero Topology) vs the explicit flat preset, for both
	// page-protocol families.
	for _, eng := range []string{consengine.ScopeName, consengine.IVYName} {
		for _, c := range engineKernels() {
			_, defVirt, defCheck, defStats, err := engineRun(eng, 4, c.kernel)
			if err != nil {
				t.Fatal(err)
			}
			flatVirt, flatCheck, flatStats, err := scalingRun(eng, simnet.TopoFlat, 4, c.kernel)
			if err != nil {
				t.Fatal(err)
			}
			if defCheck != flatCheck {
				t.Errorf("%s/%s: default != explicit flat: check %v/%v",
					eng, c.name, defCheck, flatCheck)
			}
			// Message counts and virtual times are pinned on scope only:
			// ivy's forwarding-chain lengths are schedule-dependent, so
			// two runs of the *same* configuration already differ there.
			if eng == consengine.ScopeName {
				if defStats.ProtocolMsgs != flatStats.ProtocolMsgs {
					t.Errorf("%s/%s: default != explicit flat: msgs %d/%d",
						eng, c.name, defStats.ProtocolMsgs, flatStats.ProtocolMsgs)
				}
				if !virtEqual(defVirt, flatVirt) {
					t.Errorf("%s/%s: default != explicit flat: virtual %v/%v",
						eng, c.name, defVirt, flatVirt)
				}
			}
		}
	}

	// Core-services path (the BENCH_2/BENCH_4 measurement path): a
	// Config with no Topology vs Topology "flat" must boot the identical
	// cluster: checksums bit-exact, virtual time under the same
	// plain-exact / race-tolerant pin (the full core path carries the
	// same scheduling-order wobble under -race; see
	// TestCrashRecoveryKernels).
	kernel := smallAggKernels()[0].kernel
	run := func(topology string) (hamster.Duration, float64) {
		sys, err := jiajia.Boot(hamster.Config{Platform: hamster.SWDSM, Nodes: 4, Topology: topology})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Shutdown()
		res := apps.RunOnJia(sys, kernel)
		return apps.MaxTotal(res), res[0].Check
	}
	defVirt, defCheck := run("")
	flatVirt, flatCheck := run(simnet.TopoFlat)
	if defCheck != flatCheck {
		t.Errorf("core path: default != explicit flat: check %v/%v", defCheck, flatCheck)
	}
	if !virtEqual(defVirt, flatVirt) {
		t.Errorf("core path: default != explicit flat: virtual %v/%v", defVirt, flatVirt)
	}
}

// hierKernel is small enough to run at 64 nodes under -race but still
// crosses pages on every node (sor over a 256x256 grid, two sweeps).
func hierKernel(m apps.Machine) apps.Result { return apps.SOR(m, 256, 2, true) }

func TestHierSyncKernels64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node kernels on every engine and topology")
	}
	// The scope/flat cell is the reference; every other (engine,
	// topology) pair must agree bit-for-bit on the checksum even though
	// tree barriers and distributed lock queues re-route every
	// synchronization step.
	_, want, _, err := scalingRun(consengine.ScopeName, simnet.TopoFlat, 64, hierKernel)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []string{consengine.ScopeName, consengine.IVYName} {
		for _, topo := range simnet.TopologyNames() {
			virt, check, _, err := scalingRun(eng, topo, 64, hierKernel)
			if err != nil {
				t.Fatalf("%s@%s: %v", eng, topo, err)
			}
			if check != want {
				t.Errorf("%s@%s: checksum %v, want %v", eng, topo, check, want)
			}
			if virt == 0 {
				t.Errorf("%s@%s: zero virtual time", eng, topo)
			}
		}
	}
}

func TestHierSyncFaults64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node fault campaign")
	}
	// Hierarchical synchronization must survive a lossy wire: same
	// checksum with 1% of messages dropped and retransmitted as with a
	// clean network. The fault plan only names nodes 0 and 1, so it is
	// cluster-size independent.
	run := func(faults string) float64 {
		sys, err := jiajia.Boot(hamster.Config{Platform: hamster.SWDSM, Nodes: 64, Topology: simnet.TopoRack})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Shutdown()
		if faults != "" {
			plan, err := simnet.FaultProfile(faults, 7)
			if err != nil {
				t.Fatal(err)
			}
			sys.Runtime().SetFaults(plan)
		}
		res := apps.RunOnJia(sys, hierKernel)
		return res[0].Check
	}
	clean := run("")
	lossy := run("lossy-ethernet")
	if clean != lossy {
		t.Errorf("lossy-ethernet moved the checksum: %v vs clean %v", lossy, clean)
	}
}
