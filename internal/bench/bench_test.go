package bench

import (
	"math"
	"strings"
	"testing"
)

func TestTable1Render(t *testing.T) {
	rows := Table1(Default())
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	out := RenderTable1(rows)
	for _, want := range []string{"Matrix Multiplication", "WATER", "288 / 343"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestAllSeriesShape(t *testing.T) {
	series := AllSeries(Small())
	if len(series) != 10 {
		t.Fatalf("series count = %d, want 10 (paper's x-axis)", len(series))
	}
	workloads := Workloads(Small())
	if len(workloads) != 7 {
		t.Fatalf("workload count = %d, want 7", len(workloads))
	}
	names := map[string]bool{}
	for _, w := range workloads {
		names[w.Name] = true
	}
	for _, s := range series {
		if !names[s.Workload] {
			t.Fatalf("series %s references unknown workload %s", s.Name, s.Workload)
		}
	}
}

func TestFigure2OverheadIsSingleDigit(t *testing.T) {
	// §5.3: "a very small influence on overall performance behavior: in
	// single-digit percentages. In many cases, we even observe slight
	// performance increases."
	rows := Figure2(Small())
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	sawGain := false
	for _, r := range rows {
		// WATER is the one lock-heavy series: both the native and the
		// framework run acquire contended VLocks, so their virtual
		// times depend on the real-time grant order the Go scheduler
		// happens to produce. The overhead is a RATIO of two such
		// runs, so ±1% of wobble per run compounds — and the race
		// detector perturbs scheduling enough to push a 10% bound over
		// the line. 25% still verifies the paper's claim (small
		// overhead, far from the hundreds of percent a broken
		// messaging layer produces) without betting on grant order.
		// All other series are synchronization-free and deterministic.
		bound := 10.0
		if strings.HasPrefix(r.Name, "WATER") {
			bound = 25.0
		}
		if math.Abs(r.OverheadPct) > bound {
			t.Errorf("%s: overhead %.2f%% outside bound %.0f%%", r.Name, r.OverheadPct, bound)
		}
		if r.OverheadPct < 0 {
			sawGain = true
		}
	}
	if !sawGain {
		t.Error("expected at least one performance gain (negative overhead)")
	}
	t.Logf("\n%s", RenderFigure2(rows))
}

func TestFigure3HybridWins(t *testing.T) {
	// Figure 3's shape: the hybrid DSM outperforms the software DSM
	// overall; the gap is large for the unoptimized SOR and the LU
	// series, small for the locality-optimized codes and PI.
	rows := Figure3(Small())
	byName := map[string]Fig3Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	for _, name := range []string{"SOR", "LU all", "LU bar"} {
		if byName[name].AdvantagePct < 10 {
			t.Errorf("%s: hybrid advantage %.1f%%, expected substantial", name, byName[name].AdvantagePct)
		}
	}
	if pi := byName["PI"].AdvantagePct; math.Abs(pi) > 10 {
		t.Errorf("PI: advantage %.1f%%, expected near zero", pi)
	}
	if byName["SOR"].AdvantagePct <= byName["SOR opt"].AdvantagePct {
		t.Errorf("unopt SOR advantage (%.1f%%) must exceed opt SOR (%.1f%%) — the locality claim",
			byName["SOR"].AdvantagePct, byName["SOR opt"].AdvantagePct)
	}
	neg := 0
	for _, r := range rows {
		if r.AdvantagePct < -10 {
			neg++
		}
	}
	if neg > 1 {
		t.Errorf("%d series show hybrid clearly losing — Figure 3 shows hybrid >= SW overall", neg)
	}
	t.Logf("\n%s", RenderFigure3(rows))
}

func TestFigure4SMPWinsExceptMatMult(t *testing.T) {
	// Figure 4's shape: the SMP outperforms both DSM systems for most
	// codes; the exception is the memory-bound MatMult, which profits
	// from the DSM nodes' separate memory buses.
	rows := Figure4(Small())
	byName := map[string]Fig4Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	mm := byName["MatMult"]
	if mm.HybridPct <= 100 && mm.SWPct <= 100 {
		t.Errorf("MatMult: neither DSM beats the SMP (hybrid %.1f%%, sw %.1f%%) — the separate-bus effect is missing",
			mm.HybridPct, mm.SWPct)
	}
	slower := 0
	for _, r := range rows {
		if r.Name == "MatMult" {
			continue
		}
		if r.HybridPct < 100 || r.SWPct < 100 {
			slower++
		}
	}
	if slower < 6 {
		t.Errorf("only %d non-MatMult series run slower than SMP on a DSM; expected the tight coupling to win most", slower)
	}
	t.Logf("\n%s", RenderFigure4(rows))
}

func TestAblationsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations take a few seconds")
	}
	results := Ablations(Small())
	if len(results) != 7 {
		t.Fatalf("ablation count = %d", len(results))
	}
	get := func(name string) AblationResult {
		for _, a := range results {
			if strings.Contains(a.Name, name) {
				return a
			}
		}
		t.Fatalf("ablation %q missing", name)
		return AblationResult{}
	}
	msg := get("messaging")
	if msg.Rows[0].Time >= msg.Rows[1].Time {
		t.Error("coalesced messaging must beat separate stacks")
	}
	cons := get("consistency")
	if float64(cons.Rows[1].Time) < 3*float64(cons.Rows[0].Time) {
		t.Error("sequential consistency must be dramatically slower than scope")
	}
	place := get("distribution")
	if place.Rows[0].Time >= place.Rows[2].Time {
		t.Error("block placement must beat all-on-node-0 for the stream kernel")
	}
	posted := get("posted")
	if float64(posted.Rows[1].Time) < 2*float64(posted.Rows[0].Time) {
		t.Error("PIO writes must be far slower than posted writes for write-only init")
	}
	mix := get("multi-DSM")
	if mix.Rows[2].Time >= mix.Rows[0].Time || mix.Rows[2].Time >= mix.Rows[1].Time {
		t.Error("custom-tailored mix must beat both pure engines (§6)")
	}
	mig := get("migration")
	if float64(mig.Rows[0].Time) < 1.3*float64(mig.Rows[1].Time) {
		t.Error("home migration must substantially speed up the single-writer stream")
	}
	proto := get("protocol")
	if float64(proto.Rows[1].Time) < 1.3*float64(proto.Rows[0].Time) {
		t.Error("eager RC must be substantially slower than scope on disjoint scopes")
	}
	t.Logf("\n%s", RenderAblations(results))
}

func TestBarRendering(t *testing.T) {
	if got := bar(0, 10, 10); !strings.Contains(got, "|") || strings.Contains(got, "#") {
		t.Fatalf("zero bar wrong: %q", got)
	}
	if got := bar(10, 10, 10); strings.Count(got, "#") != 5 {
		t.Fatalf("full positive bar wrong: %q", got)
	}
	if got := bar(-1000, 10, 10); strings.Count(got, "#") != 5 {
		t.Fatalf("clamped negative bar wrong: %q", got)
	}
}

func TestPctHelpers(t *testing.T) {
	if pctDiff(110, 100) != 10 {
		t.Fatal("pctDiff wrong")
	}
	if pctDiff(5, 0) != 0 {
		t.Fatal("pctDiff zero base must not divide by zero")
	}
	if speedPct(100, 50) != 200 {
		t.Fatal("speedPct wrong")
	}
	if speedPct(100, 0) != 0 {
		t.Fatal("speedPct zero time must not divide by zero")
	}
}
