package bench

import (
	"fmt"

	"hamster"
	"hamster/internal/checkpoint"
	"hamster/internal/consengine"
	"hamster/internal/hybriddsm"
	"hamster/internal/platform"
	"hamster/internal/serve"
	"hamster/internal/simnet"
	"hamster/internal/smp"
)

// The serve campaign (BENCH_8): server-shaped workloads from
// internal/serve — the sharded KV store, the event pipeline, and the
// sync/replication log — driven by the deterministic open-loop load
// generator across substrates, consistency engines, cluster sizes, and
// key-popularity skews. One headline cell multiplexes a two-million
// client-session population; one cell crashes a node mid-traffic on a
// lossy wire and recovers it through the cluster orchestrator.
//
// Unlike the other campaigns, serve rows carry NO wall or virtual
// times: every reported quantity (latency quantiles, busy horizon,
// throughput, counters, checksums) is a pure function of the cell's
// seed and configuration, so the emitted JSON is byte-identical at any
// cell parallelism and across crash recovery — pinned by
// TestServeParallelByteIdentity in scripts/benchcheck.sh.

// ServeResult is one campaign cell.
type ServeResult struct {
	Workload string `json:"workload"`
	// Platform is a bare substrate ("smp", "hybriddsm") or a
	// consistency-engine cluster ("scope", "eager-rc", "ivy").
	Platform string  `json:"platform"`
	Nodes    int     `json:"nodes"`
	Zipf     float64 `json:"zipf"`
	// Sessions is the configured client-session population;
	// SessionsTouched how many distinct sessions issued at least one op.
	Sessions        uint64 `json:"sessions"`
	SessionsTouched uint64 `json:"sessions_touched"`
	Ops             uint64 `json:"ops"`
	Stalls          uint64 `json:"stall_events"`

	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	MeanNs         uint64  `json:"latency_mean_ns"`
	P50Ns          uint64  `json:"latency_p50_ns"`
	P95Ns          uint64  `json:"latency_p95_ns"`
	P99Ns          uint64  `json:"latency_p99_ns"`
	HorizonNs      uint64  `json:"horizon_ns"`
	MaxBusyNs      uint64  `json:"max_busy_ns"`

	// Checksum is the order-independent store digest, hex-rendered so
	// JSON consumers cannot lose low bits to float conversion.
	Checksum string `json:"checksum"`

	// Faulted cells run through the core services under a lossy-wire
	// fault plan with a planned mid-traffic crash; Recoveries counts the
	// crash-recovery cycles the run needed.
	Faulted    bool `json:"faulted,omitempty"`
	Recoveries int  `json:"recoveries,omitempty"`
}

// serveCell is one cell's full specification.
type serveCell struct {
	workload string
	platform string
	nodes    int
	cfg      serve.Config
	faulted  bool
}

// serveCellConfig builds the standard per-cell serve config. Every cell
// shares the seed and horizon so rows differ only along the declared
// axes.
func serveCellConfig(workload string, zipf float64) serve.Config {
	return serve.Config{
		Workload: workload,
		Seed:     1009,
		Windows:  16,
		Sessions: 200_000,
		ZipfSkew: zipf,
	}
}

// serveHeadlineConfig is the headline cell: a two-million client-session
// population at a 600 ns mean aggregate gap over an 80 ms horizon —
// about two million ops, enough offered load to saturate the hottest
// shard's home node, so offered and achieved throughput visibly diverge.
func serveHeadlineConfig() serve.Config {
	return serve.Config{
		Workload:  serve.WorkloadKV,
		Seed:      1009,
		Windows:   160,
		WindowNs:  500_000,
		MeanGapNs: 600,
		Sessions:  2_000_000,
		ZipfSkew:  0.99,
	}
}

// serveCells enumerates the campaign.
func serveCells() []serveCell {
	var cells []serveCell
	// Substrate axis: the KV store on hardware-coherent and hybrid
	// machines, uniform and skewed.
	for _, sub := range []string{"smp", "hybriddsm"} {
		for _, nodes := range []int{4, 16} {
			for _, zipf := range []float64{0, 0.99} {
				cells = append(cells, serveCell{serve.WorkloadKV, sub, nodes,
					serveCellConfig(serve.WorkloadKV, zipf), false})
			}
		}
	}
	// Engine axis: the KV store on every consistency engine.
	for _, eng := range []string{consengine.ScopeName, consengine.EagerRCName, consengine.IVYName} {
		for _, nodes := range []int{4, 16} {
			for _, zipf := range []float64{0, 0.99} {
				cells = append(cells, serveCell{serve.WorkloadKV, eng, nodes,
					serveCellConfig(serve.WorkloadKV, zipf), false})
			}
		}
	}
	// Scale-out: 64 nodes under skew on the two page-protocol families.
	for _, eng := range []string{consengine.ScopeName, consengine.IVYName} {
		cells = append(cells, serveCell{serve.WorkloadKV, eng, 64,
			serveCellConfig(serve.WorkloadKV, 0.99), false})
	}
	// The other workloads on the two protocol families.
	for _, w := range []string{serve.WorkloadPipeline, serve.WorkloadSyncLog} {
		for _, eng := range []string{consengine.ScopeName, consengine.IVYName} {
			for _, nodes := range []int{4, 16} {
				cells = append(cells, serveCell{w, eng, nodes,
					serveCellConfig(w, 0.99), false})
			}
		}
	}
	// Headline: millions of sessions, saturating offered load.
	cells = append(cells, serveCell{serve.WorkloadKV, consengine.ScopeName, 16,
		serveHeadlineConfig(), false})
	// Faulted: the 4-node skewed KV cell rerun through the core services
	// on a 5%-drop wire with a planned mid-traffic crash of node 1,
	// recovered through cluster.RunRecoverable. Its checksum must equal
	// the matching unfaulted scope cell's.
	cells = append(cells, serveCell{serve.WorkloadKV, consengine.ScopeName, 4,
		serveCellConfig(serve.WorkloadKV, 0.99), true})
	return cells
}

// serveBuild constructs the cell's platform.
func serveBuild(platformName string, nodes int) (platform.Substrate, error) {
	switch platformName {
	case "smp":
		return smp.New(smp.Config{CPUs: nodes})
	case "hybriddsm":
		return hybriddsm.New(hybriddsm.Config{Nodes: nodes})
	default:
		return BuildEngineTopo(platformName, nodes, simnet.TopoFlat)
	}
}

// serveFaultPlan is the faulted cell's plan: a lossy wire plus a planned
// crash of node 1 at 1.5 virtual ms — mid-traffic, several rounds in.
func serveFaultPlan() simnet.FaultPlan {
	return simnet.FaultPlan{
		NodeFaults: []simnet.NodeFault{{Node: 1, CrashAt: 1_500_000}},
		DropProb:   0.05,
		Recover:    true,
		Seed:       3,
	}
}

// serveRunCell executes one cell.
func serveRunCell(c serveCell) (ServeResult, error) {
	var rep *serve.Report
	var recoveries int
	if c.faulted {
		hcfg := hamster.Config{
			Platform:        platform.SWDSM,
			Nodes:           c.nodes,
			CheckpointEvery: 4,
			CheckpointSink:  checkpoint.NewMemorySink(64),
		}
		var err error
		rep, recoveries, err = serve.RunRecoverable(c.cfg, hcfg, serveFaultPlan())
		if err != nil {
			return ServeResult{}, fmt.Errorf("bench: serve faulted cell %s/%d: %w", c.workload, c.nodes, err)
		}
		if recoveries < 1 {
			return ServeResult{}, fmt.Errorf("bench: serve faulted cell %s/%d: planned crash needed no recovery", c.workload, c.nodes)
		}
	} else {
		sub, err := serveBuild(c.platform, c.nodes)
		if err != nil {
			return ServeResult{}, fmt.Errorf("bench: serve %s/%s/%d: %w", c.workload, c.platform, c.nodes, err)
		}
		defer sub.Close()
		rep, err = serve.RunOnSubstrate(c.cfg, sub)
		if err != nil {
			return ServeResult{}, fmt.Errorf("bench: serve %s/%s/%d: %w", c.workload, c.platform, c.nodes, err)
		}
	}
	return ServeResult{
		Workload:        c.workload,
		Platform:        c.platform,
		Nodes:           c.nodes,
		Zipf:            c.cfg.ZipfSkew,
		Sessions:        rep.Cfg.Sessions,
		SessionsTouched: rep.Sessions,
		Ops:             rep.Applied,
		Stalls:          rep.Stalled,
		OfferedPerSec:   rep.OfferedPerSec,
		AchievedPerSec:  rep.AchievedPerSec,
		MeanNs:          rep.MeanNs,
		P50Ns:           rep.P50Ns,
		P95Ns:           rep.P95Ns,
		P99Ns:           rep.P99Ns,
		HorizonNs:       rep.HorizonNs,
		MaxBusyNs:       rep.MaxBusyNs,
		Checksum:        fmt.Sprintf("%#016x", rep.Checksum),
		Faulted:         c.faulted,
		Recoveries:      recoveries,
	}, nil
}

// ServeSuite measures the serve campaign with up to `parallel` cells
// concurrent. After the run it cross-checks determinism's observable
// half: within each (workload, nodes, zipf, horizon) group the checksum
// must be identical on every platform, and the faulted recoverable cell
// must land on its unfaulted twin's checksum exactly.
func ServeSuite(parallel int) ([]ServeResult, error) {
	cells := serveCells()
	rows, err := runCells(parallel, len(cells), func(i int) (ServeResult, error) {
		return serveRunCell(cells[i])
	})
	if err != nil {
		return nil, err
	}
	// Group key: everything that legitimately changes the op stream.
	key := func(r ServeResult) string {
		return fmt.Sprintf("%s/%d/%.2f/%d/%d", r.Workload, r.Nodes, r.Zipf, r.HorizonNs, r.Sessions)
	}
	ref := map[string]string{}
	for _, r := range rows {
		k := key(r)
		if want, ok := ref[k]; !ok {
			ref[k] = r.Checksum
		} else if r.Checksum != want {
			return nil, fmt.Errorf("bench: serve %s on %s moved the checksum: %s, want %s",
				k, r.Platform, r.Checksum, want)
		}
	}
	for _, r := range rows {
		if r.Faulted && r.Checksum != ref[key(r)] {
			return nil, fmt.Errorf("bench: serve faulted cell diverged from its unfaulted twin: %s vs %s",
				r.Checksum, ref[key(r)])
		}
	}
	return rows, nil
}

// RenderServe prints the campaign as a substrate × engine table plus
// the headline saturation and recovery callouts.
func RenderServe(rows []ServeResult) string {
	s := "Serve campaign (BENCH_8: server workloads × substrates × engines × skew)\n"
	s += "open-loop load, virtual-time latency; no wall readings — every column replays bit-identically\n\n"
	s += fmt.Sprintf("  %-9s %-10s %5s %5s %9s %9s %11s %11s %8s %8s %8s\n",
		"workload", "platform", "nodes", "zipf", "ops", "stalls", "offered/s", "achieved/s", "p50", "p95", "p99")
	for _, r := range rows {
		flag := " "
		if r.Faulted {
			flag = "F"
		}
		s += fmt.Sprintf("  %-9s %-10s %5d %5.2f %9d %9d %11.0f %11.0f %8d %8d %8d %s\n",
			r.Workload, r.Platform, r.Nodes, r.Zipf, r.Ops, r.Stalls,
			r.OfferedPerSec, r.AchievedPerSec, r.P50Ns, r.P95Ns, r.P99Ns, flag)
	}
	for _, r := range rows {
		if r.Sessions >= 1_000_000 {
			s += fmt.Sprintf("\n  headline: %s on %s/%d multiplexed a %d-session population (%d distinct sessions issued traffic);\n"+
				"  offered %.1fM ops/s vs achieved %.1fM ops/s — the hot shard's home node saturates (busy %d ns over a %d ns horizon)\n",
				r.Workload, r.Platform, r.Nodes, r.Sessions, r.SessionsTouched,
				r.OfferedPerSec/1e6, r.AchievedPerSec/1e6, r.MaxBusyNs, r.HorizonNs)
		}
		if r.Faulted {
			s += fmt.Sprintf("\n  recovery: the faulted cell (5%% drops, node 1 crashed mid-traffic) recovered %d time(s)\n"+
				"  through the cluster orchestrator and landed on the unfaulted checksum %s exactly\n",
				r.Recoveries, r.Checksum)
		}
	}
	return s
}
