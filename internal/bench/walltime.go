package bench

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"hamster/internal/vclock"
)

// The walltime suite (BENCH_5.json): how fast the simulator itself runs.
// It executes the two heavy measurement suites — the kernel wall-clock
// set and the aggregation matrix — once sequentially and once with cells
// in parallel, records both suite totals, and carries the per-cell
// results of the sequential leg (whose wall readings are uncontended).
// The parallel leg must reproduce the sequential leg's modeled numbers:
// checksums bit-exact, virtual times within the pre-existing ±15µs
// stolen-charge attribution wobble (see TestAggregationOffIdentity).
// Alloc probes append allocs/op and B/op for the pooled hot paths.

// AllocProbeResult is one hot-path allocation measurement.
type AllocProbeResult struct {
	Path        string `json:"path"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// WalltimeReport is the BENCH_5.json payload.
type WalltimeReport struct {
	Parallelism      int                 `json:"parallelism"`
	HostCores        int                 `json:"host_cores"`
	SequentialWallNs int64               `json:"suite_sequential_wall_ns"`
	ParallelWallNs   int64               `json:"suite_parallel_wall_ns"`
	KernelWall       []KernelWallResult  `json:"kernelwall"`
	Aggregation      []AggregationResult `json:"aggregation"`
	AllocBenchmarks  []AllocProbeResult  `json:"alloc_benchmarks"`
}

// walltimeSuite runs both heavy suites at the given cell parallelism and
// returns the results plus the total wall time.
func walltimeSuite(parallel int) ([]KernelWallResult, []AggregationResult, time.Duration, error) {
	start := time.Now()
	kw, err := KernelWallFaultsParallel(nil, parallel)
	if err != nil {
		return nil, nil, 0, err
	}
	agg, err := AggregationBenchParallel(true, true, parallel)
	if err != nil {
		return nil, nil, 0, err
	}
	return kw, agg, time.Since(start), nil
}

// Walltime measures the suite sequentially and at `parallel` (<= 0 means
// GOMAXPROCS), verifies the parallel leg reproduced the sequential leg's
// modeled results, and measures the hot-path allocation probes.
func Walltime(parallel int) (*WalltimeReport, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	kwSeq, aggSeq, seq, err := walltimeSuite(1)
	if err != nil {
		return nil, err
	}
	kwPar, aggPar, par, err := walltimeSuite(parallel)
	if err != nil {
		return nil, err
	}
	for i, s := range kwSeq {
		p := kwPar[i]
		if p.Check != s.Check {
			return nil, fmt.Errorf("bench: walltime: parallel run moved %s checksum: %v vs %v",
				s.Kernel, p.Check, s.Check)
		}
		if !virtualClose(p.VirtualNs, s.VirtualNs) {
			return nil, fmt.Errorf("bench: walltime: parallel run moved %s virtual time: %d vs %d",
				s.Kernel, p.VirtualNs, s.VirtualNs)
		}
	}
	for i, s := range aggSeq {
		p := aggPar[i]
		if p.Check != s.Check {
			return nil, fmt.Errorf("bench: walltime: parallel run moved %s/%d checksum: %v vs %v",
				s.Kernel, s.Nodes, p.Check, s.Check)
		}
		if !virtualClose(p.VirtualOffNs, s.VirtualOffNs) || !virtualClose(p.VirtualAggNs, s.VirtualAggNs) {
			return nil, fmt.Errorf("bench: walltime: parallel run moved %s/%d virtual time", s.Kernel, s.Nodes)
		}
	}
	probes, err := MeasureAllocProbes()
	if err != nil {
		return nil, err
	}
	return &WalltimeReport{
		Parallelism:      parallel,
		HostCores:        runtime.NumCPU(),
		SequentialWallNs: seq.Nanoseconds(),
		ParallelWallNs:   par.Nanoseconds(),
		KernelWall:       kwSeq,
		Aggregation:      aggSeq,
		AllocBenchmarks:  probes,
	}, nil
}

// virtualClose applies the 0.1% stolen-charge tolerance the committed
// baselines use.
func virtualClose(a, b uint64) bool {
	return math.Abs(float64(a)-float64(b)) <= float64(b)*0.001
}

// MeasureAllocProbes benchmarks the pooled hot paths with allocation
// reporting (the same ops the allocs_test.go gates pin to zero / to
// K-independence).
func MeasureAllocProbes() ([]AllocProbeResult, error) {
	var out []AllocProbeResult
	run := func(path string, op func()) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
		out = append(out, AllocProbeResult{
			Path:        path,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	fetchOp, fetchClose, err := pageFetchProbe()
	if err != nil {
		return nil, err
	}
	run("page-fetch", fetchOp)
	fetchClose()
	msgOp, msgClose := messageSendProbe()
	run("message-send", msgOp)
	msgClose()
	flushOp, flushClose, err := diffFlushProbe(8)
	if err != nil {
		return nil, err
	}
	run("diff-flush-k8", flushOp)
	flushClose()
	return out, nil
}

// RenderWalltime prints the walltime report as text.
func RenderWalltime(r *WalltimeReport) string {
	s := fmt.Sprintf("Suite wall time (kernelwall + aggregation; host cores %d)\n\n", r.HostCores)
	s += fmt.Sprintf("  sequential  %12v\n", time.Duration(r.SequentialWallNs).Round(time.Millisecond))
	s += fmt.Sprintf("  parallel %-2d %12v\n\n", r.Parallelism, time.Duration(r.ParallelWallNs).Round(time.Millisecond))
	s += fmt.Sprintf("  %-10s %12s %14s\n", "kernel", "wall", "virtual")
	for _, row := range r.KernelWall {
		s += fmt.Sprintf("  %-10s %12v %14v\n", row.Kernel,
			time.Duration(row.WallNs).Round(time.Microsecond), vclock.Duration(row.VirtualNs))
	}
	s += "\n"
	s += fmt.Sprintf("  %-14s %10s %10s %10s\n", "path", "ns/op", "allocs/op", "B/op")
	for _, p := range r.AllocBenchmarks {
		s += fmt.Sprintf("  %-14s %10d %10d %10d\n", p.Path, p.NsPerOp, p.AllocsPerOp, p.BytesPerOp)
	}
	return s
}
