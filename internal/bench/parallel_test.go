package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"hamster/internal/simnet"
)

// TestParallelRunnerByteIdentity pins the campaign runner's contract:
// running independent benchmark cells concurrently must reproduce the
// sequential run. Each cell owns a private simulated cluster and results
// merge in canonical cell order, so every discrete field — kernels,
// node counts, checksums, protocol message counts, batch and prefetch
// statistics, fault-campaign retransmissions — must be exactly equal,
// and the final JSON byte-identical, once two classes of legitimately
// run-to-run-varying readings are normalized:
//
//   - wall_ns (real-time measurement; zeroed on both sides);
//   - virtual times and their derived percentages, which carry the
//     pre-existing ±15µs stolen-charge scheduling wobble (a handler
//     charge lands on whichever clock reads first; see
//     TestAggregationOffIdentity) even between two sequential runs.
//     These must agree within the documented 0.1% tolerance and are
//     then copied from the sequential row before the byte comparison.
//
// The seeded 5%-drop campaign is the sharpest probe: its per-link draw
// streams are positional, so any cross-cell state leak in the parallel
// runner would change retry counts and checksums instantly — and those
// are compared exactly.
func TestParallelRunnerByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full aggregation matrix and fault campaign")
	}

	marshal := func(v any) []byte {
		blob, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	// Full BENCH_4 aggregation suite (batch + prefetch, 2 and 4 nodes).
	seqAgg, err := AggregationBenchParallel(true, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	parAgg, err := AggregationBenchParallel(true, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqAgg) != len(parAgg) {
		t.Fatalf("aggregation suite: %d cells sequential, %d parallel", len(seqAgg), len(parAgg))
	}
	for i := range parAgg {
		s, p := &seqAgg[i], &parAgg[i]
		if !virtualClose(p.VirtualOffNs, s.VirtualOffNs) || !virtualClose(p.VirtualAggNs, s.VirtualAggNs) {
			t.Errorf("%s/%d: parallel virtual %d/%d strays beyond 0.1%% from sequential %d/%d",
				s.Kernel, s.Nodes, p.VirtualOffNs, p.VirtualAggNs, s.VirtualOffNs, s.VirtualAggNs)
		}
		p.VirtualOffNs, p.VirtualAggNs, p.SpeedupPct = s.VirtualOffNs, s.VirtualAggNs, s.SpeedupPct
		s.WallNs, p.WallNs = 0, 0
	}
	if s, p := marshal(seqAgg), marshal(parAgg); !bytes.Equal(s, p) {
		t.Errorf("aggregation suite: -parallel 4 JSON differs from -parallel 1 beyond wall/virtual normalization:\nsequential:\n%s\nparallel:\n%s", s, p)
	}

	// Seeded 5%-drop fault campaign over the kernel wall set.
	plan := &simnet.FaultPlan{DropProb: 0.05, Seed: 3}
	seqKW, err := KernelWallFaultsParallel(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	parKW, err := KernelWallFaultsParallel(plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqKW) != len(parKW) {
		t.Fatalf("fault campaign: %d cells sequential, %d parallel", len(seqKW), len(parKW))
	}
	for i := range parKW {
		s, p := &seqKW[i], &parKW[i]
		if !virtualClose(p.VirtualNs, s.VirtualNs) {
			t.Errorf("%s: parallel virtual %d strays beyond 0.1%% from sequential %d",
				s.Kernel, p.VirtualNs, s.VirtualNs)
		}
		for cat, sv := range s.BreakdownNs {
			// The wobble shifts whole stolen charges between nodes and
			// categories; bound it absolutely, well above ±15µs per shift.
			if pv := p.BreakdownNs[cat]; math.Abs(float64(pv)-float64(sv)) > 200_000 {
				t.Errorf("%s: parallel %s breakdown %d strays from sequential %d", s.Kernel, cat, pv, sv)
			}
		}
		p.VirtualNs, p.BreakdownNs = s.VirtualNs, s.BreakdownNs
		s.WallNs, p.WallNs = 0, 0
	}
	if s, p := marshal(seqKW), marshal(parKW); !bytes.Equal(s, p) {
		t.Errorf("fault campaign: -parallel 4 JSON differs from -parallel 1 beyond wall/virtual normalization:\nsequential:\n%s\nparallel:\n%s", s, p)
	}
}
