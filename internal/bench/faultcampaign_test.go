package bench

import (
	"testing"

	"hamster/internal/apps"
	"hamster/internal/simnet"
	"hamster/internal/swdsm"
	"hamster/internal/vclock"
)

// The fault-campaign acceptance run: SOR and MatMult on a 4-node
// software DSM under increasing drop rates. Correctness must not move
// (every lost message is retransmitted), the zero-rate plan must cost
// exactly what no plan costs, retries must appear once the wire is
// lossy, and a seeded campaign must replay bit-identically.
func TestFaultCampaignKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-kernel fault campaign")
	}
	kernels := []struct {
		name   string
		kernel apps.Kernel
	}{
		{"sor", func(m apps.Machine) apps.Result { return apps.SOR(m, 96, 4, true) }},
		{"matmult", func(m apps.Machine) apps.Result { return apps.MatMult(m, 48) }},
	}
	run := func(t *testing.T, kernel apps.Kernel, plan *simnet.FaultPlan) (check float64, virtual vclock.Duration, retries uint64) {
		d, err := swdsm.New(swdsm.Config{Nodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if plan != nil {
			d.Layer().Network().SetFaults(*plan)
		}
		res := apps.RunOnSubstrate(d, kernel)
		for i := 0; i < 4; i++ {
			r, _ := d.Layer().Stats(simnet.NodeID(i)).Faults()
			retries += r
		}
		return res[0].Check, apps.MaxTotal(res), retries
	}
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			baseCheck, baseVirtual, _ := run(t, k.kernel, nil)

			// DropProb 0: installing the plan must be invisible.
			check0, virtual0, retries0 := run(t, k.kernel, &simnet.FaultPlan{DropProb: 0, Seed: 3})
			if check0 != baseCheck || virtual0 != baseVirtual || retries0 != 0 {
				t.Fatalf("zero-drop plan perturbed the run: check %v vs %v, virtual %v vs %v, retries %d",
					check0, baseCheck, virtual0, baseVirtual, retries0)
			}

			for _, rate := range []float64{0.01, 0.05} {
				plan := &simnet.FaultPlan{DropProb: rate, Seed: 3}
				check, virtual, retries := run(t, k.kernel, plan)
				if check != baseCheck {
					t.Fatalf("drop %v changed the result: check %v, want %v", rate, check, baseCheck)
				}
				if virtual < baseVirtual {
					t.Fatalf("drop %v shrank virtual time: %v < %v", rate, virtual, baseVirtual)
				}
				// Same seed, same campaign: bit-identical replay.
				check2, virtual2, retries2 := run(t, k.kernel, plan)
				if check2 != check || virtual2 != virtual || retries2 != retries {
					t.Fatalf("drop %v replay diverged: virtual %v vs %v, retries %d vs %d",
						rate, virtual2, virtual, retries2, retries)
				}
				if rate >= 0.05 && retries == 0 {
					t.Fatalf("drop %v forced no retries", rate)
				}
			}
		})
	}
}
