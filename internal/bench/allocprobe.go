package bench

import (
	"fmt"

	"hamster/internal/machine"
	"hamster/internal/memsim"
	"hamster/internal/simnet"
	"hamster/internal/swdsm"
	"hamster/internal/vclock"
)

// Allocation probes for the hot paths the zero-copy work targets: one
// remote page-fetch cycle, one simnet message send/receive, and one
// scope-consistency release flushing K dirty pages. Each probe returns a
// steady-state op plus a teardown; the same ops feed the
// testing.AllocsPerRun regression gates (allocs_test.go), the -benchmem
// microbenchmarks, and the BENCH_5 walltime report — so the gated number
// is the reported number.

// pageFetchProbe builds a 2-node software DSM whose page cache is smaller
// than the probed working set: every read from node 1 misses, fetches the
// page from its home (node 0), installs it, and evicts the LRU victim.
// One op performs `pages` full fetch+install+evict cycles. Steady state
// must not allocate: reply buffers, cache entries, and request encoders
// all recycle through pools.
func pageFetchProbe() (op func(), close func(), err error) {
	const pages = 4
	d, err := swdsm.New(swdsm.Config{Nodes: 2, CachePages: pages / 2})
	if err != nil {
		return nil, nil, err
	}
	r, err := d.Alloc(pages*memsim.PageSize, "fetchprobe", memsim.Fixed, 0)
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	op = func() {
		for i := 0; i < pages; i++ {
			d.ReadF64(1, r.Base+memsim.Addr(i*memsim.PageSize))
		}
	}
	return op, d.Close, nil
}

// messageSendProbe drives the raw simulated network: one op sends a
// payload from node 0 to node 1, receives it, and returns the Message to
// the pool. The payload buffer is owned by the probe and reused, so a
// zero-alloc op certifies the whole per-message path — fault-state load,
// stats, enqueue, dequeue — free of per-message garbage.
func messageSendProbe() (op func(), close func()) {
	clocks := []*vclock.Clock{{}, {}}
	net := simnet.New(machine.Default().Ethernet, clocks)
	payload := make([]byte, 64)
	op = func() {
		net.Send(0, 1, 1, 0, payload)
		if m := net.TryRecv(1, simnet.AnyKind, nil); m != nil {
			m.Free()
		}
	}
	return op, net.Close
}

// gatedExchangeProbe drives the conservatively gated message path: a
// 2-node network with the lookahead engine enabled, both nodes owned by
// the probe's goroutine. Node 0 sends, node 1's clock is advanced past
// the horizon, and the gated Recv path (engine session, safety check,
// indexed dequeue) delivers. One op certifies the gating hot path —
// horizon evaluation included, since the first safety check runs the
// fast clock scan — allocation-free.
func gatedExchangeProbe() (op func(), close func()) {
	clocks := []*vclock.Clock{{}, {}}
	link := machine.Default().Ethernet
	net := simnet.New(link, clocks)
	net.EnableGate()
	payload := make([]byte, 64)
	op = func() {
		net.Send(0, 1, 1, 0, payload)
		// Push the sender's clock past the arrival so delivery is safe on
		// the fast path (clock + lookahead ≥ arrival).
		clocks[0].Advance(2 * vclock.Duration(link.LatencyNs+64*link.NsPerByte))
		if m := net.TryRecv(1, simnet.AnyKind, nil); m == nil {
			panic("gatedExchangeProbe: delivery not safe")
		} else {
			m.Free()
		}
	}
	return op, net.Close
}

// horizonProbe exercises the engine's slow-path horizon bound — the
// Dijkstra activation pass over receive-waiting peers — at a 64-node
// cluster, certifying that repeated evaluation reuses the engine's
// scratch and allocates nothing.
func horizonProbe() (op func(), close func()) {
	const nodes = 64
	clocks := make([]*vclock.Clock, nodes)
	for i := range clocks {
		clocks[i] = &vclock.Clock{}
	}
	net := simnet.New(machine.Default().Ethernet, clocks)
	g := net.EnableGate()
	g.GateBegin()
	for p := 2; p < nodes; p++ {
		g.GateRecvWait(p) // a cluster mostly blocked in Recv
	}
	g.GateEnd()
	op = func() {
		g.Horizon(0)
	}
	return op, net.Close
}

// deepQueueProbe drives one send/receive of a "hot" message kind while a
// backlog of `backlog` messages of a different kind sits in the same
// endpoint's queue. The per-(node, kind) bucket index means the receive
// scans only its own kind's bucket, so the op's cost — and its zero
// allocations — must be independent of the cold backlog's depth; the
// paired microbenchmark (BenchmarkDeepQueueRecv) reports both depths so
// a regression to the old full-queue match scan is visible as a
// depth-proportional slowdown.
func deepQueueProbe(backlog int) (op func(), close func()) {
	clocks := []*vclock.Clock{{}, {}}
	net := simnet.New(machine.Default().Ethernet, clocks)
	payload := make([]byte, 64)
	const hot, cold = simnet.Kind(1), simnet.Kind(2)
	for i := 0; i < backlog; i++ {
		net.Send(0, 1, cold, uint32(i), payload)
	}
	op = func() {
		net.Send(0, 1, hot, 0, payload)
		if m := net.TryRecv(1, hot, nil); m != nil {
			m.Free()
		}
	}
	return op, net.Close
}

// diffFlushProbe builds a 2-node DSM with batched diff flush on. One op
// is a full scope interval: node 1 acquires, writes one word on each of K
// remote pages (creating K twins), and releases — flushing all K diffs in
// home-grouped batches — then node 0 acquires and releases to drain the
// write notices. The allocation gate asserts the MARGINAL cost of a
// flushed page is zero: ops at K=64 must allocate no more than ops at
// K=8, because twins, diffs, encoders, and reply buffers are pooled and
// only the per-flush bookkeeping (notice list, batch map) allocates.
func diffFlushProbe(k int) (op func(), close func(), err error) {
	d, err := swdsm.New(swdsm.Config{
		Nodes:       2,
		CachePages:  2 * k,
		Aggregation: swdsm.Aggregation{Batch: true},
	})
	if err != nil {
		return nil, nil, err
	}
	r, err := d.Alloc(uint64(k)*memsim.PageSize, fmt.Sprintf("flushprobe%d", k), memsim.Fixed, 0)
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	l := d.NewLock()
	var tick float64
	op = func() {
		tick++ // distinct value each interval so every diff is non-empty
		d.Acquire(1, l)
		for i := 0; i < k; i++ {
			d.WriteF64(1, r.Base+memsim.Addr(i*memsim.PageSize), tick)
		}
		d.Release(1, l)
		d.Acquire(0, l)
		d.Release(0, l)
	}
	return op, d.Close, nil
}
