package bench

import (
	"fmt"

	"hamster/internal/machine"
	"hamster/internal/memsim"
	"hamster/internal/simnet"
	"hamster/internal/swdsm"
	"hamster/internal/vclock"
)

// Allocation probes for the hot paths the zero-copy work targets: one
// remote page-fetch cycle, one simnet message send/receive, and one
// scope-consistency release flushing K dirty pages. Each probe returns a
// steady-state op plus a teardown; the same ops feed the
// testing.AllocsPerRun regression gates (allocs_test.go), the -benchmem
// microbenchmarks, and the BENCH_5 walltime report — so the gated number
// is the reported number.

// pageFetchProbe builds a 2-node software DSM whose page cache is smaller
// than the probed working set: every read from node 1 misses, fetches the
// page from its home (node 0), installs it, and evicts the LRU victim.
// One op performs `pages` full fetch+install+evict cycles. Steady state
// must not allocate: reply buffers, cache entries, and request encoders
// all recycle through pools.
func pageFetchProbe() (op func(), close func(), err error) {
	const pages = 4
	d, err := swdsm.New(swdsm.Config{Nodes: 2, CachePages: pages / 2})
	if err != nil {
		return nil, nil, err
	}
	r, err := d.Alloc(pages*memsim.PageSize, "fetchprobe", memsim.Fixed, 0)
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	op = func() {
		for i := 0; i < pages; i++ {
			d.ReadF64(1, r.Base+memsim.Addr(i*memsim.PageSize))
		}
	}
	return op, d.Close, nil
}

// messageSendProbe drives the raw simulated network: one op sends a
// payload from node 0 to node 1, receives it, and returns the Message to
// the pool. The payload buffer is owned by the probe and reused, so a
// zero-alloc op certifies the whole per-message path — fault-state load,
// stats, enqueue, dequeue — free of per-message garbage.
func messageSendProbe() (op func(), close func()) {
	clocks := []*vclock.Clock{{}, {}}
	net := simnet.New(machine.Default().Ethernet, clocks)
	payload := make([]byte, 64)
	any := func(*simnet.Message) bool { return true }
	op = func() {
		net.Send(0, 1, 1, 0, payload)
		if m := net.TryRecv(1, any); m != nil {
			m.Free()
		}
	}
	return op, net.Close
}

// diffFlushProbe builds a 2-node DSM with batched diff flush on. One op
// is a full scope interval: node 1 acquires, writes one word on each of K
// remote pages (creating K twins), and releases — flushing all K diffs in
// home-grouped batches — then node 0 acquires and releases to drain the
// write notices. The allocation gate asserts the MARGINAL cost of a
// flushed page is zero: ops at K=64 must allocate no more than ops at
// K=8, because twins, diffs, encoders, and reply buffers are pooled and
// only the per-flush bookkeeping (notice list, batch map) allocates.
func diffFlushProbe(k int) (op func(), close func(), err error) {
	d, err := swdsm.New(swdsm.Config{
		Nodes:       2,
		CachePages:  2 * k,
		Aggregation: swdsm.Aggregation{Batch: true},
	})
	if err != nil {
		return nil, nil, err
	}
	r, err := d.Alloc(uint64(k)*memsim.PageSize, fmt.Sprintf("flushprobe%d", k), memsim.Fixed, 0)
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	l := d.NewLock()
	var tick float64
	op = func() {
		tick++ // distinct value each interval so every diff is non-empty
		d.Acquire(1, l)
		for i := 0; i < k; i++ {
			d.WriteF64(1, r.Base+memsim.Addr(i*memsim.PageSize), tick)
		}
		d.Release(1, l)
		d.Acquire(0, l)
		d.Release(0, l)
	}
	return op, d.Close, nil
}
