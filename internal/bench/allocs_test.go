package bench

import (
	"fmt"
	"testing"
)

// The allocation regression gates: the pooled hot paths must not allocate
// in steady state. testing.AllocsPerRun runs each op once to warm the
// pools (plus the explicit warmup below, which also materializes home
// frames, fast-path entries, and map buckets), then averages mallocs over
// the measured runs — any pool regression shows up as a fractional
// average and fails the gate.

func warm(op func(), times int) {
	for i := 0; i < times; i++ {
		op()
	}
}

// skipUnderRace skips an allocation gate when the race detector is on:
// the race runtime allocates on instrumented paths, which would fail the
// zero-alloc assertions for reasons unrelated to the pools. check.sh
// runs the gates plain before the -race suite.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("race runtime allocates on instrumented paths; run plain for allocation gates")
	}
}

// TestPageFetchZeroAlloc pins the remote page-fetch cycle — request
// encode, synchronous fetch call, reply install, LRU eviction — at zero
// steady-state heap allocations.
func TestPageFetchZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	op, close, err := pageFetchProbe()
	if err != nil {
		t.Fatal(err)
	}
	defer close()
	warm(op, 8)
	if avg := testing.AllocsPerRun(50, op); avg != 0 {
		t.Errorf("page-fetch cycle allocates %.2f objects/op, want 0", avg)
	}
}

// TestMessageSendZeroAlloc pins the per-message simnet path — fault-state
// load, stats, enqueue, dequeue, pool return — at zero steady-state heap
// allocations.
func TestMessageSendZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	op, close := messageSendProbe()
	defer close()
	warm(op, 8)
	if avg := testing.AllocsPerRun(50, op); avg != 0 {
		t.Errorf("message send/recv allocates %.2f objects/op, want 0", avg)
	}
}

// TestDiffFlushMarginalZeroAlloc pins the MARGINAL allocation cost of a
// flushed page at zero: an interval flushing 64 dirty pages must allocate
// no more than one flushing 8, because twins, diffs, encoders, and reply
// buffers are pooled — only the per-interval bookkeeping (notice slice,
// batch grouping) may allocate, and that cost is independent of K.
func TestDiffFlushMarginalZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	measure := func(k int) float64 {
		op, close, err := diffFlushProbe(k)
		if err != nil {
			t.Fatal(err)
		}
		defer close()
		warm(op, 8)
		return testing.AllocsPerRun(50, op)
	}
	a8, a64 := measure(8), measure(64)
	if a64 > a8 {
		t.Errorf("interval flushing 64 pages allocates %.2f objects/op vs %.2f at 8 pages; marginal page cost must be zero", a64, a8)
	}
}

// TestGatedExchangeZeroAlloc pins the conservatively gated message path
// — engine session, fast-path safety check, indexed dequeue, queue-min
// maintenance — at zero steady-state heap allocations.
func TestGatedExchangeZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	op, close := gatedExchangeProbe()
	defer close()
	warm(op, 8)
	if avg := testing.AllocsPerRun(50, op); avg != 0 {
		t.Errorf("gated send/recv allocates %.2f objects/op, want 0", avg)
	}
}

// TestHorizonEvalZeroAlloc pins the engine's slow-path horizon bound —
// the Dijkstra activation pass over 62 receive-waiting peers at a
// 64-node cluster — at zero steady-state heap allocations: repeated
// evaluation must reuse the engine's scratch vectors.
func TestHorizonEvalZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	op, close := horizonProbe()
	defer close()
	warm(op, 8)
	if avg := testing.AllocsPerRun(50, op); avg != 0 {
		t.Errorf("horizon evaluation allocates %.2f objects/op, want 0", avg)
	}
}

// Microbenchmarks for the same ops (run with -bench . -benchmem).

func BenchmarkPageFetch(b *testing.B) {
	op, close, err := pageFetchProbe()
	if err != nil {
		b.Fatal(err)
	}
	defer close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
}

func BenchmarkMessageSend(b *testing.B) {
	op, close := messageSendProbe()
	defer close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
}

func BenchmarkDiffFlush(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(byteSizeName(k), func(b *testing.B) {
			op, close, err := diffFlushProbe(k)
			if err != nil {
				b.Fatal(err)
			}
			defer close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
	}
}

func BenchmarkGatedExchange(b *testing.B) {
	op, close := gatedExchangeProbe()
	defer close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
}

func BenchmarkHorizonEval(b *testing.B) {
	op, close := horizonProbe()
	defer close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
}

// BenchmarkDeepQueueRecv shows the per-(node, kind) bucket index: the
// hot-kind receive must cost the same whether the endpoint's queue holds
// zero or 512 cold-kind messages (the old single-queue match scan was
// linear in the full backlog).
func BenchmarkDeepQueueRecv(b *testing.B) {
	for _, backlog := range []int{0, 512} {
		b.Run(fmt.Sprintf("backlog=%d", backlog), func(b *testing.B) {
			op, close := deepQueueProbe(backlog)
			defer close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
	}
}

func byteSizeName(k int) string {
	if k == 8 {
		return "k=8"
	}
	return "k=64"
}
