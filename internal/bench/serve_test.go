package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"testing"
)

// TestServeParallelByteIdentity pins the serve campaign's sharpest
// contract: rows carry no wall or virtual readings, so the cell-parallel
// run must be byte-identical to the sequential one with NO normalization
// at all — latency quantiles, throughputs, session counts, stall
// counts, recovery counts, and checksums exactly equal. The committed
// BENCH_8.json must replay the same way: its results array is a pure
// function of the seeds in this package.
func TestServeParallelByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full serve campaign, twice")
	}
	seq, err := ServeSuite(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ServeSuite(4)
	if err != nil {
		t.Fatal(err)
	}
	marshal := func(v any) []byte {
		blob, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	if s, p := marshal(seq), marshal(par); !bytes.Equal(s, p) {
		t.Fatalf("serve campaign: -parallel 4 JSON differs from -parallel 1 with zero normalization:\nsequential:\n%s\nparallel:\n%s", s, p)
	}

	// Committed-artifact replay: BENCH_8.json's results must equal a
	// fresh run field for field.
	blob, err := os.ReadFile("../../BENCH_8.json")
	if err != nil {
		t.Skipf("no committed BENCH_8.json yet: %v", err)
	}
	var env struct {
		Schema  string        `json:"schema"`
		Results []ServeResult `json:"results"`
	}
	if err := json.Unmarshal(blob, &env); err != nil {
		t.Fatal(err)
	}
	if env.Schema != "hamster/serve/v8" {
		t.Fatalf("BENCH_8.json schema %q, want hamster/serve/v8", env.Schema)
	}
	if !reflect.DeepEqual(env.Results, seq) {
		for i := range seq {
			if i >= len(env.Results) || !reflect.DeepEqual(env.Results[i], seq[i]) {
				t.Fatalf("BENCH_8.json row %d no longer replays:\ncommitted: %+v\nfresh:     %+v",
					i, env.Results[i], seq[i])
			}
		}
		t.Fatalf("BENCH_8.json has %d rows, fresh run has %d", len(env.Results), len(seq))
	}
}

// The serve campaign must include its two acceptance anchors: a cell
// multiplexing at least a million client sessions, and a faulted cell
// recovered through the cluster orchestrator.
func TestServeSuiteAnchors(t *testing.T) {
	cells := serveCells()
	var headline, faulted bool
	for _, c := range cells {
		if c.cfg.Sessions >= 1_000_000 {
			headline = true
		}
		if c.faulted {
			faulted = true
		}
	}
	if !headline {
		t.Fatal("no campaign cell reaches a 1M client-session population")
	}
	if !faulted {
		t.Fatal("no campaign cell runs the mid-traffic crash-recovery scenario")
	}
}
