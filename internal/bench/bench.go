// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§5) from the simulated platforms.
//
//   - Table 1: benchmarks and working sets.
//   - Table 2: implementation complexity of the programming models
//     (delegated to internal/apicount).
//   - Figure 2: overhead of execution with HAMSTER compared to native
//     execution on JiaJia, 4 nodes.
//   - Figure 3: performance of Hybrid-DSM with SW-DSM as baseline, 4 nodes.
//   - Figure 4: Hardware- vs Hybrid- vs Software-DSM, 2 nodes.
//
// Absolute numbers depend on the simulator's cost model; the reproduction
// target is the shape — signs, rough factors, crossovers (see
// EXPERIMENTS.md).
package bench

import (
	"fmt"
	"strings"

	"hamster"
	"hamster/internal/apps"
	"hamster/internal/machine"
	"hamster/internal/swdsm"
	"hamster/internal/vclock"
	"hamster/models/jiajia"
)

// Sizes fixes the working sets. The paper uses 1024×1024 matrices; the
// defaults here are scaled so the whole suite runs in seconds while
// preserving the access-pattern structure (WATER keeps the paper's
// molecule counts).
type Sizes struct {
	MatN       int
	PIIters    int
	SORN       int
	SORIters   int
	LUN        int
	Water1     int
	Water2     int
	WaterSteps int
	// CachePages scales the modeled CPU cache with the working sets
	// (0 = the testbed's 128-page / 512 KiB cache). Shrinking working
	// sets without shrinking the cache would erase the memory-bound
	// behavior Figure 4's MatMult crossover depends on.
	CachePages int
}

// Small returns test-sized workloads. PI keeps a large interval count in
// every configuration: its inner loop is pure local arithmetic, so it is
// cheap in real time, and a compute-starved PI would misrepresent the
// paper's "embarrassingly parallel" series as synchronization-bound.
func Small() Sizes {
	return Sizes{MatN: 48, PIIters: 8_000_000, SORN: 64, SORIters: 3,
		LUN: 48, Water1: 48, Water2: 64, WaterSteps: 2, CachePages: 8}
}

// Default returns the harness workloads (a minute or two for all figures).
func Default() Sizes {
	return Sizes{MatN: 256, PIIters: 30_000_000, SORN: 256, SORIters: 8,
		LUN: 224, Water1: 288, Water2: 343, WaterSteps: 2}
}

// Paper returns the paper's working sets (tens of minutes of real time).
func Paper() Sizes {
	return Sizes{MatN: 1024, PIIters: 200_000_000, SORN: 1024, SORIters: 10,
		LUN: 1024, Water1: 288, Water2: 343, WaterSteps: 3}
}

// params returns the cost model for this sizes configuration.
func (sz Sizes) params() machine.Params {
	p := machine.Default()
	if sz.CachePages > 0 {
		p.Bus.CachePages = sz.CachePages
	}
	return p
}

// Workload is one benchmark binary to execute.
type Workload struct {
	Name   string
	Kernel apps.Kernel
}

// Workloads enumerates the benchmark runs (LU and WATER runs feed several
// figure series each).
func Workloads(sz Sizes) []Workload {
	return []Workload{
		{"matmult", func(m apps.Machine) apps.Result { return apps.MatMult(m, sz.MatN) }},
		{"pi", func(m apps.Machine) apps.Result { return apps.PI(m, sz.PIIters) }},
		{"sor-opt", func(m apps.Machine) apps.Result { return apps.SOR(m, sz.SORN, sz.SORIters, true) }},
		{"sor", func(m apps.Machine) apps.Result { return apps.SOR(m, sz.SORN, sz.SORIters, false) }},
		{"lu", func(m apps.Machine) apps.Result { return apps.LU(m, sz.LUN) }},
		{"water1", func(m apps.Machine) apps.Result { return apps.Water(m, sz.Water1, sz.WaterSteps) }},
		{"water2", func(m apps.Machine) apps.Result { return apps.Water(m, sz.Water2, sz.WaterSteps) }},
	}
}

// Series is one bar of the figures: a workload plus a phase extractor.
type Series struct {
	Name     string
	Workload string
	Extract  func([]apps.Result) vclock.Duration
}

// AllSeries enumerates the ten series of Figures 2–4 in paper order.
func AllSeries(sz Sizes) []Series {
	total := apps.MaxTotal
	phase := func(sel func(apps.Timings) vclock.Duration) func([]apps.Result) vclock.Duration {
		return func(rs []apps.Result) vclock.Duration { return apps.MaxPhase(rs, sel) }
	}
	return []Series{
		{"MatMult", "matmult", total},
		{"PI", "pi", total},
		{"SOR opt", "sor-opt", total},
		{"SOR", "sor", total},
		{"LU all", "lu", total},
		{"LU", "lu", phase(func(t apps.Timings) vclock.Duration { return t.Total - t.Init })},
		{"LU core", "lu", phase(func(t apps.Timings) vclock.Duration { return t.Core })},
		{"LU bar", "lu", phase(func(t apps.Timings) vclock.Duration { return t.Bar })},
		{fmt.Sprintf("WATER %d", sz.Water1), "water1", total},
		{fmt.Sprintf("WATER %d", sz.Water2), "water2", total},
	}
}

// runNative runs every workload on unmodified "native JiaJia": the bare
// software-DSM substrate with its own (uncoalesced) messaging stack.
func runNative(sz Sizes, nodes int) map[string][]apps.Result {
	out := make(map[string][]apps.Result)
	for _, w := range Workloads(sz) {
		d, err := swdsm.New(swdsm.Config{
			Nodes:  nodes,
			Params: sz.params().WithMessaging(machine.Separate),
		})
		if err != nil {
			panic(err)
		}
		out[w.Name] = apps.RunOnSubstrate(d, w.Kernel)
		d.Close()
	}
	return out
}

// runHamster runs every workload through HAMSTER with the JiaJia model on
// the given platform.
func runHamster(sz Sizes, kind hamster.PlatformKind, nodes int) map[string][]apps.Result {
	out := make(map[string][]apps.Result)
	for _, w := range Workloads(sz) {
		sys, err := jiajia.Boot(hamster.Config{Platform: kind, Nodes: nodes, Params: sz.params()})
		if err != nil {
			panic(err)
		}
		out[w.Name] = apps.RunOnJia(sys, w.Kernel)
		sys.Shutdown()
	}
	return out
}

// Fig2Row is one bar of Figure 2.
type Fig2Row struct {
	Name        string
	Native      vclock.Duration
	Hamster     vclock.Duration
	OverheadPct float64 // positive = HAMSTER slower than native
}

// Figure2 measures HAMSTER overhead versus native JiaJia execution on
// four nodes.
func Figure2(sz Sizes) []Fig2Row {
	const nodes = 4
	native := runNative(sz, nodes)
	ham := runHamster(sz, hamster.SWDSM, nodes)
	var rows []Fig2Row
	for _, s := range AllSeries(sz) {
		n := s.Extract(native[s.Workload])
		h := s.Extract(ham[s.Workload])
		rows = append(rows, Fig2Row{
			Name:        s.Name,
			Native:      n,
			Hamster:     h,
			OverheadPct: pctDiff(h, n),
		})
	}
	return rows
}

// Fig3Row is one bar of Figure 3.
type Fig3Row struct {
	Name         string
	SW           vclock.Duration
	Hybrid       vclock.Duration
	AdvantagePct float64 // positive = hybrid faster
}

// Figure3 compares Hybrid-DSM against Software-DSM on four nodes with
// identical binaries (only the HAMSTER configuration differs).
func Figure3(sz Sizes) []Fig3Row {
	const nodes = 4
	sw := runHamster(sz, hamster.SWDSM, nodes)
	hy := runHamster(sz, hamster.HybridDSM, nodes)
	var rows []Fig3Row
	for _, s := range AllSeries(sz) {
		tSW := s.Extract(sw[s.Workload])
		tHy := s.Extract(hy[s.Workload])
		rows = append(rows, Fig3Row{
			Name:         s.Name,
			SW:           tSW,
			Hybrid:       tHy,
			AdvantagePct: pctDiff(tSW, tHy),
		})
	}
	return rows
}

// Fig4Row is one benchmark of Figure 4: three platforms on two nodes
// (or two CPUs for the hardware-DSM/SMP case), speeds normalized to the
// hardware DSM.
type Fig4Row struct {
	Name      string
	HW        vclock.Duration
	Hybrid    vclock.Duration
	SW        vclock.Duration
	HybridPct float64 // speed relative to HW (=100%)
	SWPct     float64
}

// Figure4 compares Hardware-, Hybrid-, and Software-DSM on two nodes.
func Figure4(sz Sizes) []Fig4Row {
	const nodes = 2
	hw := runHamster(sz, hamster.SMP, nodes)
	hy := runHamster(sz, hamster.HybridDSM, nodes)
	sw := runHamster(sz, hamster.SWDSM, nodes)
	var rows []Fig4Row
	for _, s := range AllSeries(sz) {
		tHW := s.Extract(hw[s.Workload])
		tHy := s.Extract(hy[s.Workload])
		tSW := s.Extract(sw[s.Workload])
		rows = append(rows, Fig4Row{
			Name: s.Name, HW: tHW, Hybrid: tHy, SW: tSW,
			HybridPct: speedPct(tHW, tHy),
			SWPct:     speedPct(tHW, tSW),
		})
	}
	return rows
}

// Table1Row describes one benchmark and its working set.
type Table1Row struct {
	Benchmark  string
	WorkingSet string
}

// Table1 lists the benchmarks with the configured working sets.
func Table1(sz Sizes) []Table1Row {
	return []Table1Row{
		{"Matrix Multiplication", fmt.Sprintf("%dx%d matrix", sz.MatN, sz.MatN)},
		{"Computation of pi", fmt.Sprintf("%d intervals", sz.PIIters)},
		{"Successive Over Relaxation (SOR)", fmt.Sprintf("%dx%d matrix", sz.SORN, sz.SORN)},
		{"LU Decomposition", fmt.Sprintf("%dx%d matrix", sz.LUN, sz.LUN)},
		{"WATER (Molecular Simulation)", fmt.Sprintf("%d / %d molecules", sz.Water1, sz.Water2)},
	}
}

// pctDiff returns (a-b)/b in percent.
func pctDiff(a, b vclock.Duration) float64 {
	if b == 0 {
		return 0
	}
	return (float64(a) - float64(b)) / float64(b) * 100
}

// speedPct returns the speed of x relative to the reference ref (=100%):
// faster than ref yields > 100.
func speedPct(ref, x vclock.Duration) float64 {
	if x == 0 {
		return 0
	}
	return float64(ref) / float64(x) * 100
}

// bar renders a signed horizontal ASCII bar for ±scale percent.
func bar(pct, scale float64, width int) string {
	if scale <= 0 {
		scale = 1
	}
	half := width / 2
	n := int(pct / scale * float64(half))
	if n > half {
		n = half
	}
	if n < -half {
		n = -half
	}
	b := []byte(strings.Repeat(" ", width+1))
	b[half] = '|'
	if n >= 0 {
		for i := 1; i <= n; i++ {
			b[half+i] = '#'
		}
	} else {
		for i := 1; i <= -n; i++ {
			b[half-i] = '#'
		}
	}
	return string(b)
}

// RenderFigure2 formats Figure 2 with signed bars.
func RenderFigure2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Figure 2: Overhead of Execution with HAMSTER Compared to Native\n")
	b.WriteString("Execution on JiaJia (4 Nodes); positive = slowdown\n\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %7.2f%%  %s  (native %v, hamster %v)\n",
			r.Name, r.OverheadPct, bar(r.OverheadPct, 8, 32), r.Native, r.Hamster)
	}
	return b.String()
}

// RenderFigure3 formats Figure 3 with signed bars.
func RenderFigure3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3: Performance of Hybrid-DSM with SW-DSM as Baseline (4 Nodes);\n")
	b.WriteString("positive = advantage for Hybrid-DSM\n\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %7.1f%%  %s  (sw %v, hybrid %v)\n",
			r.Name, r.AdvantagePct, bar(r.AdvantagePct, 60, 32), r.SW, r.Hybrid)
	}
	return b.String()
}

// RenderFigure4 formats Figure 4 as grouped speed percentages.
func RenderFigure4(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("Figure 4: Performance of Hardware-, Hybrid-, and Software-DSM (2 Nodes);\n")
	b.WriteString("speed relative to Hardware-DSM = 100%\n\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "", "Hardware", "Hybrid", "Software")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9.0f%% %9.1f%% %9.1f%%   (hw %v)\n",
			r.Name, 100.0, r.HybridPct, r.SWPct, r.HW)
	}
	return b.String()
}

// RenderTable1 formats Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Benchmarks and Their Working Sets\n\n")
	fmt.Fprintf(&b, "%-36s %s\n", "Benchmark", "Working Set")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %s\n", r.Benchmark, r.WorkingSet)
	}
	return b.String()
}
