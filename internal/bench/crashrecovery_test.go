package bench

import (
	"testing"

	"hamster"
	"hamster/internal/apps"
	"hamster/internal/checkpoint"
	"hamster/internal/platform"
	"hamster/internal/simnet"
	"hamster/internal/vclock"
)

// The crash-recovery acceptance run: SOR and MatMult on a 4-node software
// DSM with coordinated checkpointing. Disabled checkpointing must leave
// results untouched, enabled checkpointing must not move them, incremental
// captures must be strictly smaller than the full snapshot, a planned node
// crash under Recover must roll back and finish with the fault-free
// checksum, and a seeded recovery must replay to bit-identical results.
// Virtual-time totals on the full core path carry a pre-existing
// scheduling-order wobble of a few microseconds (present on the seed,
// without checkpointing, under -race), so the invariants here are the
// stable ones: checksums and recovery counts. The zero-cost-when-disabled
// timing guarantee is asserted on the deterministic bare-substrate path by
// the BENCH_2 comparison in kernelwall_test.go.
func TestCrashRecoveryKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-kernel crash-recovery campaign")
	}
	kernels := []struct {
		name   string
		every  int
		kernel apps.Kernel
	}{
		{"sor", 2, func(m apps.Machine) apps.Result { return apps.SOR(m, 96, 4, true) }},
		{"matmult", 1, func(m apps.Machine) apps.Result { return apps.MatMult(m, 48) }},
	}
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			base := hamster.Config{Platform: platform.SWDSM, Nodes: 4}
			rt, err := hamster.New(base)
			if err != nil {
				t.Fatal(err)
			}
			res := apps.RunOnEnv(rt, k.kernel)
			rt.Close()
			baseCheck, baseVirtual := res[0].Check, apps.MaxTotal(res)

			// Checkpointing disabled: the recovery path must be invisible —
			// identical checksum, zero recoveries.
			offRes, offRt, offRec, err := apps.RunRecoverable(base, simnet.FaultPlan{}, k.kernel)
			if err != nil {
				t.Fatal(err)
			}
			offRt.Close()
			if offRec != 0 || offRes[0].Check != baseCheck {
				t.Fatalf("disabled checkpointing perturbed the run: check %v vs %v, recoveries %d",
					offRes[0].Check, baseCheck, offRec)
			}

			// Checkpointing enabled, no faults: results identical, capture
			// work charged, and every incremental snapshot strictly smaller
			// than the full one it chains to.
			ckptCfg := base
			ckptCfg.CheckpointEvery = k.every
			ckptCfg.CheckpointIncremental = true
			sink := checkpoint.NewMemorySink(64)
			ckptCfg.CheckpointSink = sink
			onRes, onRt, onRec, err := apps.RunRecoverable(ckptCfg, simnet.FaultPlan{}, k.kernel)
			if err != nil {
				t.Fatal(err)
			}
			captures, capBytes := onRt.Checkpoints().Stats()
			onRt.Close()
			if onRec != 0 || onRes[0].Check != baseCheck {
				t.Fatalf("checkpointing changed the result: check %v, want %v", onRes[0].Check, baseCheck)
			}
			chain := sink.Chain()
			if len(chain) < 2 || captures != len(chain) || capBytes == 0 {
				t.Fatalf("expected a sealed chain: %d snapshots, stats %d captures / %d bytes",
					len(chain), captures, capBytes)
			}
			if chain[0].Incremental {
				t.Fatal("first snapshot is not a full capture")
			}
			full := chain[0].Bytes()
			for _, sn := range chain[1:] {
				if !sn.Incremental {
					continue
				}
				if got := sn.Bytes(); got >= full {
					t.Fatalf("incremental snapshot %d captured %d bytes, full captured %d", sn.Seq, got, full)
				}
			}

			// A planned crash of node 1 mid-run with recovery: the run must
			// roll back to the last epoch, re-admit the node, and finish
			// with the fault-free checksum.
			plan := simnet.FaultPlan{
				NodeFaults: []simnet.NodeFault{{Node: 1, CrashAt: vclock.Time(baseVirtual / 2)}},
				Recover:    true,
				Seed:       3,
			}
			recCfg := base
			recCfg.CheckpointEvery = k.every
			recCfg.CheckpointIncremental = true
			recCfg.CheckpointSink = checkpoint.NewMemorySink(64)
			recRes, recRt, recs, err := apps.RunRecoverable(recCfg, plan, k.kernel)
			if err != nil {
				t.Fatal(err)
			}
			recRt.Close()
			if recs < 1 {
				t.Fatalf("planned crash needed no recovery (crash at %v)", plan.NodeFaults[0].CrashAt)
			}
			if recRes[0].Check != baseCheck {
				t.Fatalf("recovered checksum diverged: %v, want %v", recRes[0].Check, baseCheck)
			}

			// Same seed, same plan: the whole crash-and-recover history
			// replays to bit-identical results.
			repCfg := recCfg
			repCfg.CheckpointSink = checkpoint.NewMemorySink(64)
			repRes, repRt, repRecs, err := apps.RunRecoverable(repCfg, plan, k.kernel)
			if err != nil {
				t.Fatal(err)
			}
			repRt.Close()
			if repRecs != recs || repRes[0].Check != recRes[0].Check {
				t.Fatalf("recovery replay diverged: recoveries %d vs %d, check %v vs %v",
					repRecs, recs, repRes[0].Check, recRes[0].Check)
			}
		})
	}
}
