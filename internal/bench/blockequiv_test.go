package bench

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hamster/internal/hybriddsm"
	"hamster/internal/memsim"
	"hamster/internal/multidsm"
	"hamster/internal/platform"
	"hamster/internal/smp"
	"hamster/internal/swdsm"
)

// The block accessors are a wall-clock fast path only: they must charge
// exactly the virtual time, produce exactly the memory contents, and count
// exactly the protocol events (faults, twins, diffs, misses) of the
// equivalent per-word loop. This property test drives two fresh instances
// of every substrate through the same random access program — one through
// the block API, one through per-word loops — and requires clocks, stats,
// read values, and final memory to be identical.

const (
	equivNodes   = 4
	equivPageWds = memsim.PageSize / memsim.WordSize
)

// equivOp is one step of a generated access program.
type equivOp struct {
	node  int
	start int // word index into the combined regions
	words int
	kind  int // 0 ReadF64, 1 WriteF64, 2 ReadI64, 3 WriteI64, 4 Fence
}

// genEquivOps derives a deterministic access program from one seed. Spans
// are up to three pages long so they cross page boundaries, and start
// anywhere, so they hit remote homes (Block/Cyclic placement over 4 nodes)
// — on swdsm that includes remote-fetch spans and multi-writer diffs.
func genEquivOps(rng *rand.Rand, totalWords int) []equivOp {
	ops := make([]equivOp, 0, 48)
	for i := 0; i < 40; i++ {
		if rng.Intn(8) == 0 {
			ops = append(ops, equivOp{node: rng.Intn(equivNodes), kind: 4})
			continue
		}
		start := rng.Intn(totalWords - 1)
		max := totalWords - start
		if max > 3*equivPageWds {
			max = 3 * equivPageWds
		}
		ops = append(ops, equivOp{
			node:  rng.Intn(equivNodes),
			start: start,
			words: 1 + rng.Intn(max),
			kind:  rng.Intn(4),
		})
	}
	return ops
}

// buildEquivSub constructs a fresh substrate. The multidsm instance routes
// the two test regions to different engines, so block spans crossing the
// region boundary exercise the engine-split path.
func buildEquivSub(t *testing.T, kind string) platform.Substrate {
	t.Helper()
	var (
		sub platform.Substrate
		err error
	)
	switch kind {
	case "smp":
		sub, err = smp.New(smp.Config{CPUs: equivNodes})
	case "hybrid":
		sub, err = hybriddsm.New(hybriddsm.Config{Nodes: equivNodes})
	case "swdsm":
		sub, err = swdsm.New(swdsm.Config{Nodes: equivNodes})
	case "multi":
		sub, err = multidsm.New(multidsm.Config{
			Nodes:         equivNodes,
			PolicyRoutes:  map[memsim.Policy]multidsm.Engine{memsim.Cyclic: multidsm.Hybrid},
			DefaultEngine: multidsm.SW,
		})
	default:
		t.Fatalf("unknown substrate kind %q", kind)
	}
	if err != nil {
		t.Fatalf("build %s: %v", kind, err)
	}
	return sub
}

// runEquivProgram executes the program on sub and returns every value read,
// plus a final word-by-word dump of both regions (after fencing all nodes,
// so swdsm diffs are home). Reads are logged as raw bits so F64 and I64
// paths share one log.
func runEquivProgram(sub platform.Substrate, ops []equivOp, useBlocks bool) []uint64 {
	rA, err := sub.Alloc(4*memsim.PageSize, "equiv.A", memsim.Block, 0)
	if err != nil {
		panic(err)
	}
	rB, err := sub.Alloc(4*memsim.PageSize, "equiv.B", memsim.Cyclic, 0)
	if err != nil {
		panic(err)
	}
	if rB.Base != rA.End() {
		panic("equiv regions not adjacent")
	}
	base := rA.Base
	totalWords := int((rA.Size + rB.Size) / memsim.WordSize)

	var log []uint64
	addr := func(w int) memsim.Addr { return base + memsim.Addr(w*memsim.WordSize) }
	for oi, op := range ops {
		switch op.kind {
		case 4:
			sub.Fence(op.node)
		case 0:
			if useBlocks {
				dst := make([]float64, op.words)
				sub.ReadF64Block(op.node, addr(op.start), dst)
				for _, v := range dst {
					log = append(log, math.Float64bits(v))
				}
			} else {
				for i := 0; i < op.words; i++ {
					log = append(log, math.Float64bits(sub.ReadF64(op.node, addr(op.start+i))))
				}
			}
		case 1:
			if useBlocks {
				src := make([]float64, op.words)
				for i := range src {
					src[i] = float64(oi*1000 + i)
				}
				sub.WriteF64Block(op.node, addr(op.start), src)
			} else {
				for i := 0; i < op.words; i++ {
					sub.WriteF64(op.node, addr(op.start+i), float64(oi*1000+i))
				}
			}
		case 2:
			if useBlocks {
				dst := make([]int64, op.words)
				sub.ReadI64Block(op.node, addr(op.start), dst)
				for _, v := range dst {
					log = append(log, uint64(v))
				}
			} else {
				for i := 0; i < op.words; i++ {
					log = append(log, uint64(sub.ReadI64(op.node, addr(op.start+i))))
				}
			}
		case 3:
			if useBlocks {
				src := make([]int64, op.words)
				for i := range src {
					src[i] = int64(oi*1000 + i)
				}
				sub.WriteI64Block(op.node, addr(op.start), src)
			} else {
				for i := 0; i < op.words; i++ {
					sub.WriteI64(op.node, addr(op.start+i), int64(oi*1000+i))
				}
			}
		}
	}
	for id := 0; id < equivNodes; id++ {
		sub.Fence(id)
	}
	for w := 0; w < totalWords; w++ {
		log = append(log, uint64(sub.ReadI64(0, addr(w))))
	}
	return log
}

// normStats clears the counters that intentionally differ between the two
// paths: BlockReads/BlockWrites count API calls, not accesses.
func normStats(s platform.Stats) platform.Stats {
	s.BlockReads = 0
	s.BlockWrites = 0
	return s
}

func checkBlockWordEquivalence(t *testing.T, kind string, seed int64) error {
	ops := genEquivOps(rand.New(rand.NewSource(seed)), 8*equivPageWds)

	blockSub := buildEquivSub(t, kind)
	defer blockSub.Close()
	wordSub := buildEquivSub(t, kind)
	defer wordSub.Close()

	blockLog := runEquivProgram(blockSub, ops, true)
	wordLog := runEquivProgram(wordSub, ops, false)

	if len(blockLog) != len(wordLog) {
		return fmt.Errorf("seed %d: read-log length %d (block) vs %d (word)",
			seed, len(blockLog), len(wordLog))
	}
	for i := range blockLog {
		if blockLog[i] != wordLog[i] {
			return fmt.Errorf("seed %d: read/memory word %d: %#x (block) vs %#x (word)",
				seed, i, blockLog[i], wordLog[i])
		}
	}
	for id := 0; id < equivNodes; id++ {
		bt, wt := blockSub.Clock(id).Now(), wordSub.Clock(id).Now()
		if bt != wt {
			return fmt.Errorf("seed %d: node %d virtual time %v (block) vs %v (word)",
				seed, id, bt, wt)
		}
		bs, ws := normStats(blockSub.NodeStats(id)), normStats(wordSub.NodeStats(id))
		if bs != ws {
			return fmt.Errorf("seed %d: node %d stats differ:\nblock: %+v\nword:  %+v",
				seed, id, bs, ws)
		}
	}
	return nil
}

// TestBlockWordEquivalence is the cross-substrate property test: for
// random access programs, the block API and the per-word loop are
// indistinguishable in everything but wall-clock.
func TestBlockWordEquivalence(t *testing.T) {
	for _, kind := range []string{"smp", "hybrid", "swdsm", "multi"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			cfg := &quick.Config{
				MaxCount: 20,
				Rand:     rand.New(rand.NewSource(42)),
			}
			if err := quick.Check(func(seed int64) bool {
				if err := checkBlockWordEquivalence(t, kind, seed); err != nil {
					t.Error(err)
					return false
				}
				return true
			}, cfg); err != nil {
				t.Fatalf("equivalence property failed: %v", err)
			}
		})
	}
}
