package bench

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"hamster"
	"hamster/internal/apps"
	"hamster/internal/hybriddsm"
	"hamster/internal/memsim"
	"hamster/internal/multidsm"
	"hamster/internal/platform"
	"hamster/internal/simnet"
	"hamster/internal/smp"
	"hamster/internal/swdsm"
)

// smallAggKernels are reduced workloads for the -race-friendly tests.
func smallAggKernels() []struct {
	name   string
	kernel apps.Kernel
} {
	return []struct {
		name   string
		kernel apps.Kernel
	}{
		{"sor", func(m apps.Machine) apps.Result { return apps.SOR(m, 96, 4, true) }},
		{"matmult", func(m apps.Machine) apps.Result { return apps.MatMult(m, 48) }},
	}
}

// TestAggregationOffIdentity is the off-mode identity gate: with the
// zero-value Aggregation config, the protocol must cost exactly what it
// cost before the aggregation layer existed. Two committed baselines pin
// this:
//
//   - BENCH_2.json (bare substrate, 4 nodes): checksums must match
//     bit-for-bit; virtual times within 0.1%.
//   - BENCH_3.json (full core services, 2 and 4 nodes): same contract.
//
// Checksums are exact because aggregation-off runs the pre-aggregation
// code paths verbatim. Virtual times get a 0.1% tolerance because both
// paths carry a pre-existing ±15µs scheduling wobble (stolen handler
// charges land on whichever clock reads first, so goroutine scheduling —
// notably under -race — can shift a charge between nodes), which predates
// and is unrelated to aggregation.
func TestAggregationOffIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel set against committed baselines")
	}

	var bench2 struct {
		Results []KernelWallResult `json:"results"`
	}
	raw, err := os.ReadFile("../../BENCH_2.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &bench2); err != nil {
		t.Fatal(err)
	}
	rows, err := KernelWall()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(bench2.Results) {
		t.Fatalf("kernelwall rows %d, baseline has %d", len(rows), len(bench2.Results))
	}
	for i, r := range rows {
		want := bench2.Results[i]
		if r.Kernel != want.Kernel {
			t.Fatalf("row %d kernel %q, baseline %q", i, r.Kernel, want.Kernel)
		}
		base := float64(want.VirtualNs)
		if diff := math.Abs(float64(r.VirtualNs) - base); diff > base*0.001 {
			t.Errorf("%s: off-mode virtual time %d strays %.0fns from committed %d (> 0.1%%)",
				r.Kernel, r.VirtualNs, diff, want.VirtualNs)
		}
		if r.Check != want.Check {
			t.Errorf("%s: off-mode checksum %v != committed %v", r.Kernel, r.Check, want.Check)
		}
	}

	var bench3 struct {
		Results []CheckpointOverheadResult `json:"results"`
	}
	raw, err = os.ReadFile("../../BENCH_3.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &bench3); err != nil {
		t.Fatal(err)
	}
	kernels := map[string]apps.Kernel{}
	for _, c := range aggKernels() {
		kernels[c.name] = c.kernel
	}
	for _, want := range bench3.Results {
		got, err := runCore(hamster.Config{Platform: hamster.SWDSM, Nodes: want.Nodes}, kernels[want.Kernel])
		if err != nil {
			t.Fatal(err)
		}
		if got.check != want.Check {
			t.Errorf("%s/%d: off-mode checksum %v != committed %v",
				want.Kernel, want.Nodes, got.check, want.Check)
		}
		off := float64(want.VirtualOffNs)
		if diff := math.Abs(float64(uint64(got.virtual)) - off); diff > off*0.001 {
			t.Errorf("%s/%d: off-mode virtual time %d strays %.0fns from committed %d (> 0.1%%)",
				want.Kernel, want.Nodes, uint64(got.virtual), diff, want.VirtualOffNs)
		}
	}
}

// buildAggSub constructs a substrate with the given aggregation setting.
// SMP and the hybrid DSM have no aggregation layer — they serve as
// controls: for them "on" and "off" build identical instances, so the test
// doubles as a run-to-run determinism check.
func buildAggSub(t *testing.T, kind string, agg swdsm.Aggregation) platform.Substrate {
	t.Helper()
	var (
		sub platform.Substrate
		err error
	)
	switch kind {
	case "smp":
		sub, err = smp.New(smp.Config{CPUs: equivNodes})
	case "hybriddsm":
		sub, err = hybriddsm.New(hybriddsm.Config{Nodes: equivNodes})
	case "swdsm":
		sub, err = swdsm.New(swdsm.Config{Nodes: equivNodes, Aggregation: agg})
	case "multidsm":
		sub, err = multidsm.New(multidsm.Config{
			Nodes:         equivNodes,
			PolicyRoutes:  map[memsim.Policy]multidsm.Engine{memsim.Cyclic: multidsm.Hybrid},
			DefaultEngine: multidsm.SW,
			Aggregation:   agg,
		})
	default:
		t.Fatalf("unknown substrate kind %q", kind)
	}
	if err != nil {
		t.Fatalf("build %s: %v", kind, err)
	}
	return sub
}

// TestAggregationEquivalence runs the small kernels on every substrate
// with aggregation off and fully on: checksums must be bit-identical.
// Aggregation changes message economics, never results.
func TestAggregationEquivalence(t *testing.T) {
	on := swdsm.Aggregation{Batch: true, Prefetch: true}
	for _, kind := range []string{"smp", "hybriddsm", "swdsm", "multidsm"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			for _, c := range smallAggKernels() {
				offSub := buildAggSub(t, kind, swdsm.Aggregation{})
				offCheck := apps.RunOnSubstrate(offSub, c.kernel)[0].Check
				offSub.Close()

				onSub := buildAggSub(t, kind, on)
				onCheck := apps.RunOnSubstrate(onSub, c.kernel)[0].Check
				onSub.Close()

				if onCheck != offCheck {
					t.Errorf("%s: aggregation moved the checksum: %v (on) vs %v (off)",
						c.name, onCheck, offCheck)
				}
			}
		})
	}
}

// TestAggregationMessageReduction is the acceptance gate for the on mode:
// across the standard kernel suite the swdsm protocol message count must
// drop by at least 40% (it drops ~48% at 2 nodes and ~42% at 4), the
// streaming kernel individually must clear 40% (prefetch collapses its
// fault traffic), and the SOR and MatMult 4-node virtual times must
// improve measurably. Everything here is deterministic — the asserted
// margins cannot flake.
func TestAggregationMessageReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel set at two cluster sizes")
	}
	on := swdsm.Aggregation{Batch: true, Prefetch: true}
	for _, nodes := range []int{2, 4} {
		var msgsOff, msgsAgg uint64
		for _, c := range aggKernels() {
			offVirt, offCheck, offStats, err := aggRun(nodes, swdsm.Aggregation{}, c.kernel)
			if err != nil {
				t.Fatal(err)
			}
			aggVirt, aggCheck, aggStats, err := aggRun(nodes, on, c.kernel)
			if err != nil {
				t.Fatal(err)
			}
			if aggCheck != offCheck {
				t.Fatalf("%s/%d: aggregation moved the checksum: %v vs %v", c.name, nodes, aggCheck, offCheck)
			}
			if aggStats.ProtocolMsgs >= offStats.ProtocolMsgs {
				t.Errorf("%s/%d: no message reduction: %d -> %d", c.name, nodes,
					offStats.ProtocolMsgs, aggStats.ProtocolMsgs)
			}
			msgsOff += offStats.ProtocolMsgs
			msgsAgg += aggStats.ProtocolMsgs

			if c.name == "stream" {
				if red := reductionPct(offStats.ProtocolMsgs, aggStats.ProtocolMsgs); red < 40 {
					t.Errorf("stream/%d: message reduction %.1f%% < 40%%", nodes, red)
				}
			}
			if nodes == 4 && (c.name == "sor-opt" || c.name == "matmult") {
				speedup := 100 * (float64(offVirt) - float64(aggVirt)) / float64(offVirt)
				if speedup < 2 {
					t.Errorf("%s/4: virtual-time improvement %.2f%% not measurable (< 2%%)", c.name, speedup)
				}
			}
		}
		if red := reductionPct(msgsOff, msgsAgg); red < 40 {
			t.Errorf("suite at %d nodes: total message reduction %.1f%% < 40%% (%d -> %d)",
				nodes, red, msgsOff, msgsAgg)
		}
	}
}

func reductionPct(off, on uint64) float64 {
	return 100 * (float64(off) - float64(on)) / float64(off)
}

// TestAggregationFaultReplay re-verifies the fault-campaign determinism
// contract with aggregation on: under a seeded 5% message-drop plan the
// batched/prefetching protocol must produce the baseline checksum, force
// retransmissions, and replay bit-identically — batch contents and
// prefetch runs are pure functions of program state, so the positional
// fate draws line up on every run.
func TestAggregationFaultReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign replay")
	}
	on := swdsm.Aggregation{Batch: true, Prefetch: true}
	run := func(t *testing.T, kernel apps.Kernel, plan *simnet.FaultPlan) (check float64, virtual hamster.Duration, retries uint64) {
		d, err := swdsm.New(swdsm.Config{Nodes: 4, Aggregation: on})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if plan != nil {
			d.Layer().Network().SetFaults(*plan)
		}
		res := apps.RunOnSubstrate(d, kernel)
		for i := 0; i < 4; i++ {
			r, _ := d.Layer().Stats(simnet.NodeID(i)).Faults()
			retries += r
		}
		return res[0].Check, apps.MaxTotal(res), retries
	}
	for _, k := range smallAggKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			baseCheck, _, _ := run(t, k.kernel, nil)
			plan := &simnet.FaultPlan{DropProb: 0.05, Seed: 3}
			check, virtual, retries := run(t, k.kernel, plan)
			if check != baseCheck {
				t.Fatalf("5%% drop changed the result: %v, want %v", check, baseCheck)
			}
			if retries == 0 {
				t.Fatal("5% drop forced no retries")
			}
			check2, virtual2, retries2 := run(t, k.kernel, plan)
			if check2 != check || virtual2 != virtual || retries2 != retries {
				t.Fatalf("replay diverged: virtual %v vs %v, retries %d vs %d",
					virtual2, virtual, retries2, retries)
			}
		})
	}
}

// TestAggregationCheckpointCompat runs the aggregated protocol under
// incremental checkpointing: batched diff application must feed the
// capture dirty-page tracking exactly like per-page application, so the
// checkpointed run's result matches the uncheckpointed one.
func TestAggregationCheckpointCompat(t *testing.T) {
	on := swdsm.Aggregation{Batch: true, Prefetch: true}
	for _, c := range smallAggKernels() {
		plain, err := runCore(hamster.Config{
			Platform: hamster.SWDSM, Nodes: 4, SWDSMAggregation: on,
		}, c.kernel)
		if err != nil {
			t.Fatal(err)
		}
		ckpt, err := runCore(hamster.Config{
			Platform: hamster.SWDSM, Nodes: 4, SWDSMAggregation: on,
			CheckpointEvery: 2, CheckpointIncremental: true,
		}, c.kernel)
		if err != nil {
			t.Fatal(err)
		}
		if ckpt.check != plain.check {
			t.Errorf("%s: checkpointing under aggregation moved the checksum: %v vs %v",
				c.name, ckpt.check, plain.check)
		}
	}
}
