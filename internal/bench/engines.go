package bench

import (
	"fmt"
	"time"

	"hamster/internal/apps"
	"hamster/internal/consengine"
	"hamster/internal/ivy"
	"hamster/internal/platform"
	"hamster/internal/swdsm"
	"hamster/internal/vclock"
)

// EngineResult is one kernel's measurement on one consistency engine at
// one cluster size. All engines run the identical kernel binary on a bare
// software-DSM cluster; checksums must agree across engines for the same
// (kernel, nodes) cell — a consistency engine changes costs, never
// results. Message counts and virtual times differ by protocol: the
// write-invalidate engine pays synchronous invalidation rounds for its
// sequential consistency, the scope/eager-rc engines defer work to
// synchronization points.
type EngineResult struct {
	Kernel    string `json:"kernel"`
	Engine    string `json:"engine"`
	Model     string `json:"model"`
	Nodes     int    `json:"nodes"`
	WallNs    int64  `json:"wall_ns"`
	VirtualNs uint64 `json:"virtual_ns"`
	// Msgs counts protocol messages originated by all nodes (page
	// fetches, diffs, notices, invalidations, ownership transfers,
	// lock/barrier traffic).
	Msgs          uint64  `json:"protocol_msgs"`
	PageFaults    uint64  `json:"page_faults"`
	Invalidations uint64  `json:"invalidations"`
	Migrations    uint64  `json:"migrations"`
	Check         float64 `json:"check"`
}

// engineKernels is the per-engine kernel set: the aggregation suite's
// workloads scaled down, because the write-invalidate engine's sharing
// traffic grows much faster with the working set than the scope
// protocol's (every false-shared write is a synchronous ownership round
// trip, not a deferred diff).
func engineKernels() []struct {
	name   string
	kernel apps.Kernel
} {
	return []struct {
		name   string
		kernel apps.Kernel
	}{
		{"matmult", func(m apps.Machine) apps.Result { return apps.MatMult(m, 64) }},
		{"sor-opt", func(m apps.Machine) apps.Result { return apps.SOR(m, 96, 4, true) }},
		{"lu", func(m apps.Machine) apps.Result { return apps.LU(m, 64) }},
		{"stream", func(m apps.Machine) apps.Result { return apps.Stream(m, 1<<13, 4, 0) }},
	}
}

// BuildEngine constructs a bare software-DSM cluster running the named
// consistency engine ("" selects the default). This is the same selection
// core.New performs for Config.Engine, without the core services wrapped
// around it — the measurement path stays deterministic for the scope
// engines.
func BuildEngine(name string, nodes int) (consengine.Engine, error) {
	eng, err := consengine.NormalizeName(name)
	if err != nil {
		return nil, err
	}
	if eng == consengine.IVYName {
		return ivy.New(ivy.Config{Nodes: nodes})
	}
	cfg := swdsm.Config{Nodes: nodes}
	if eng == consengine.EagerRCName {
		cfg.Protocol = swdsm.EagerRC
	}
	return swdsm.New(cfg)
}

// engineRun executes one kernel on one engine and returns the engine's
// declared model, the run's virtual time, checksum, and summed node
// counters.
func engineRun(name string, nodes int, kernel apps.Kernel) (consengine.Model, vclock.Duration, float64, platform.Stats, error) {
	d, err := BuildEngine(name, nodes)
	if err != nil {
		return 0, 0, 0, platform.Stats{}, err
	}
	defer d.Close()
	res := apps.RunOnSubstrate(d, kernel)
	var st platform.Stats
	for i := 0; i < nodes; i++ {
		s := d.NodeStats(i)
		st.ProtocolMsgs += s.ProtocolMsgs
		st.PageFaults += s.PageFaults
		st.Invalidations += s.Invalidations
		st.HomeMigrations += s.HomeMigrations
	}
	return d.DeclaredModel(), apps.MaxTotal(res), res[0].Check, st, nil
}

// EngineSuite measures every selectable consistency engine on the
// per-engine kernel set at 2 and 4 nodes. Returns an error if any
// engine's checksum disagrees with the default engine's for the same
// (kernel, nodes) cell.
func EngineSuite() ([]EngineResult, error) {
	return EngineSuiteParallel(1)
}

// EngineSuiteParallel is EngineSuite with up to `parallel` (engine,
// kernel, nodes) cells measured concurrently. Each cell owns a private
// cluster (see runCells), so checksums and the scope engines' virtual
// times and message counts are unchanged by co-scheduling; the
// write-invalidate engine's message counts are schedule-dependent under
// contention at any parallelism (its checksums are not).
func EngineSuiteParallel(parallel int) ([]EngineResult, error) {
	type cell struct {
		nodes  int
		engine string
		name   string
		kernel apps.Kernel
	}
	var cells []cell
	for _, nodes := range []int{2, 4} {
		for _, k := range engineKernels() {
			for _, eng := range consengine.Names() {
				cells = append(cells, cell{nodes, eng, k.name, k.kernel})
			}
		}
	}
	rows, err := runCells(parallel, len(cells), func(i int) (EngineResult, error) {
		c := cells[i]
		start := time.Now()
		model, virt, check, st, err := engineRun(c.engine, c.nodes, c.kernel)
		wall := time.Since(start)
		if err != nil {
			return EngineResult{}, fmt.Errorf("bench: engine %s %s/%d: %w", c.engine, c.name, c.nodes, err)
		}
		return EngineResult{
			Kernel:        c.name,
			Engine:        c.engine,
			Model:         model.String(),
			Nodes:         c.nodes,
			WallNs:        wall.Nanoseconds(),
			VirtualNs:     uint64(virt),
			Msgs:          st.ProtocolMsgs,
			PageFaults:    st.PageFaults,
			Invalidations: st.Invalidations,
			Migrations:    st.HomeMigrations,
			Check:         check,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	// Cross-engine agreement: every engine must compute the same answer
	// as the default engine on the same cell.
	ref := map[string]float64{}
	for _, r := range rows {
		if r.Engine == consengine.ScopeName {
			ref[fmt.Sprintf("%s/%d", r.Kernel, r.Nodes)] = r.Check
		}
	}
	for _, r := range rows {
		want, ok := ref[fmt.Sprintf("%s/%d", r.Kernel, r.Nodes)]
		if !ok {
			return nil, fmt.Errorf("bench: no scope reference for %s/%d", r.Kernel, r.Nodes)
		}
		if r.Check != want {
			return nil, fmt.Errorf("bench: engine %s moved the %s/%d checksum: %v vs scope's %v",
				r.Engine, r.Kernel, r.Nodes, r.Check, want)
		}
	}
	return rows, nil
}

// RenderEngines prints the measurements as a text table.
func RenderEngines(rows []EngineResult) string {
	s := "Consistency engines (swdsm; identical kernels, checksums agree per cell)\n\n"
	s += fmt.Sprintf("  %-10s %-9s %-11s %5s %14s %9s %8s %8s %7s\n",
		"kernel", "engine", "model", "nodes", "virtual", "msgs", "faults", "invals", "migr")
	for _, r := range rows {
		s += fmt.Sprintf("  %-10s %-9s %-11s %5d %14v %9d %8d %8d %7d\n",
			r.Kernel, r.Engine, r.Model, r.Nodes, vclock.Duration(r.VirtualNs),
			r.Msgs, r.PageFaults, r.Invalidations, r.Migrations)
	}
	return s
}
