package bench

import (
	"fmt"
	"time"

	"hamster/internal/apps"
	"hamster/internal/simnet"
	"hamster/internal/swdsm"
	"hamster/internal/vclock"
)

// KernelWallResult is one kernel's simulator-throughput measurement: how
// much REAL time the simulation took (wall_ns) next to the modeled result
// it produced (virtual_ns). The bulk-access fast path moves only the
// former; the latter must stay put (see TestBlockWordEquivalence).
type KernelWallResult struct {
	Kernel    string  `json:"kernel"`
	Substrate string  `json:"substrate"`
	Nodes     int     `json:"nodes"`
	WallNs    int64   `json:"wall_ns"`
	VirtualNs uint64  `json:"virtual_ns"`
	Check     float64 `json:"check"`
	// BreakdownNs attributes virtual time by category, summed over all
	// nodes. Per node the categories sum exactly to the node's clock.
	BreakdownNs map[string]uint64 `json:"breakdown_ns"`
	// Retries counts active-message retransmissions over all nodes.
	// Only present under a fault plan — unperturbed runs never retry.
	Retries uint64 `json:"retries,omitempty"`
}

// KernelWall runs the standard kernel set on a 4-node software DSM — the
// substrate whose per-word simulation overhead dominates large runs — and
// reports wall-clock plus virtual time per kernel. The workloads mirror
// BenchmarkSWDSMKernelWall so numbers are comparable with `go test -bench`.
func KernelWall() ([]KernelWallResult, error) { return KernelWallFaults(nil) }

// KernelWallFaults is KernelWall under a fault plan (nil for the
// unperturbed benchmark): the same kernels over an interconnect that
// drops, delays, or degrades, with retransmissions counted per kernel.
// Virtual times stay deterministic for a fixed plan and seed.
func KernelWallFaults(plan *simnet.FaultPlan) ([]KernelWallResult, error) {
	return KernelWallFaultsParallel(plan, 1)
}

// KernelWallFaultsParallel is KernelWallFaults with up to `parallel`
// kernels measured concurrently. Each cell builds its own private
// cluster, so virtual times and checksums are unchanged by
// co-scheduling and results merge in canonical kernel order (see
// runCells); only the wall-clock readings feel the contention.
func KernelWallFaultsParallel(plan *simnet.FaultPlan, parallel int) ([]KernelWallResult, error) {
	const nodes = 4
	cases := []struct {
		name   string
		kernel apps.Kernel
	}{
		{"matmult", func(m apps.Machine) apps.Result { return apps.MatMult(m, 96) }},
		{"sor-opt", func(m apps.Machine) apps.Result { return apps.SOR(m, 192, 6, true) }},
		{"lu", func(m apps.Machine) apps.Result { return apps.LU(m, 96) }},
		{"stream", func(m apps.Machine) apps.Result { return apps.Stream(m, 1<<15, 8, 0) }},
	}
	return runCells(parallel, len(cases), func(ci int) (KernelWallResult, error) {
		c := cases[ci]
		d, err := swdsm.New(swdsm.Config{Nodes: nodes})
		if err != nil {
			return KernelWallResult{}, fmt.Errorf("bench: kernelwall %s: %w", c.name, err)
		}
		if plan != nil {
			d.Layer().Network().SetFaults(*plan)
		}
		start := time.Now()
		res := apps.RunOnSubstrate(d, c.kernel)
		wall := time.Since(start)
		var agg vclock.Breakdown
		var retries uint64
		for i := 0; i < nodes; i++ {
			agg = agg.Add(d.Clock(i).Breakdown())
			r, _ := d.Layer().Stats(simnet.NodeID(i)).Faults()
			retries += r
		}
		d.Close()
		return KernelWallResult{
			Kernel:    c.name,
			Substrate: "swdsm",
			Nodes:     nodes,
			WallNs:    wall.Nanoseconds(),
			VirtualNs: uint64(apps.MaxTotal(res)),
			Check:     res[0].Check,
			BreakdownNs: map[string]uint64{
				"compute":  uint64(agg.Compute),
				"memory":   uint64(agg.Memory),
				"protocol": uint64(agg.Protocol),
				"network":  uint64(agg.Network),
				"stolen":   uint64(agg.Stolen),
			},
			Retries: retries,
		}, nil
	})
}

// RenderKernelWall prints the measurements as a text table.
func RenderKernelWall(rows []KernelWallResult) string {
	s := "Kernel wall-clock (simulator throughput, swdsm, 4 nodes)\n\n"
	s += fmt.Sprintf("  %-10s %12s %14s\n", "kernel", "wall", "virtual")
	for _, r := range rows {
		s += fmt.Sprintf("  %-10s %12v %14v\n",
			r.Kernel, time.Duration(r.WallNs).Round(time.Microsecond),
			vclock.Duration(r.VirtualNs))
	}
	return s
}
