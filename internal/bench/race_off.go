//go:build !race

package bench

// raceEnabled reports whether the binary was built with the race
// detector. The byte-identity tests demand exact virtual times, which
// the race scheduler's stolen-charge attribution wobble cannot provide.
const raceEnabled = false
