package bench

import (
	"fmt"
	"time"

	"hamster/internal/apps"
	"hamster/internal/platform"
	"hamster/internal/swdsm"
	"hamster/internal/vclock"
)

// AggregationResult is one kernel's protocol-aggregation measurement at
// one cluster size: virtual time and protocol message count with
// aggregation off next to the same run with the aggregation layer on.
// Both legs run on the bare software DSM (the deterministic measurement
// path — see TestAggregationOffIdentity), so off-leg numbers are
// bit-reproducible and the per-kernel checksums must be identical.
type AggregationResult struct {
	Kernel       string `json:"kernel"`
	Substrate    string `json:"substrate"`
	Nodes        int    `json:"nodes"`
	WallNs       int64  `json:"wall_ns"`
	VirtualOffNs uint64 `json:"virtual_ns_off"`
	VirtualAggNs uint64 `json:"virtual_ns_agg"`
	// SpeedupPct is (off-agg)/off in percent — how much modeled time the
	// aggregation layer saves.
	SpeedupPct float64 `json:"speedup_pct"`
	// MsgsOff/MsgsAgg count protocol messages originated by all nodes
	// (fetches, diffs/batches, notice deliveries, lock/barrier traffic).
	MsgsOff uint64 `json:"protocol_msgs_off"`
	MsgsAgg uint64 `json:"protocol_msgs_agg"`
	// MsgReductionPct is (off-agg)/off in percent — the headline
	// aggregation figure (acceptance asks ≥ 40% on the swdsm kernels).
	MsgReductionPct float64 `json:"msg_reduction_pct"`
	DiffBatches     uint64  `json:"diff_batches"`
	BatchedDiffs    uint64  `json:"batched_diffs"`
	PrefetchPages   uint64  `json:"prefetch_pages"`
	PrefetchHits    uint64  `json:"prefetch_hits"`
	PrefetchWaste   uint64  `json:"prefetch_waste"`
	Check           float64 `json:"check"`
}

// aggKernels is the standard kernel set (mirrors KernelWall workloads).
func aggKernels() []struct {
	name   string
	kernel apps.Kernel
} {
	return []struct {
		name   string
		kernel apps.Kernel
	}{
		{"matmult", func(m apps.Machine) apps.Result { return apps.MatMult(m, 96) }},
		{"sor-opt", func(m apps.Machine) apps.Result { return apps.SOR(m, 192, 6, true) }},
		{"lu", func(m apps.Machine) apps.Result { return apps.LU(m, 96) }},
		{"stream", func(m apps.Machine) apps.Result { return apps.Stream(m, 1<<15, 8, 0) }},
	}
}

// aggRun executes one kernel on a bare software DSM and returns its
// virtual time, checksum, and summed node counters.
func aggRun(nodes int, agg swdsm.Aggregation, kernel apps.Kernel) (vclock.Duration, float64, platform.Stats, error) {
	d, err := swdsm.New(swdsm.Config{Nodes: nodes, Aggregation: agg})
	if err != nil {
		return 0, 0, platform.Stats{}, err
	}
	defer d.Close()
	res := apps.RunOnSubstrate(d, kernel)
	var st platform.Stats
	for i := 0; i < nodes; i++ {
		s := d.NodeStats(i)
		st.ProtocolMsgs += s.ProtocolMsgs
		st.DiffBatches += s.DiffBatches
		st.BatchedDiffs += s.BatchedDiffs
		st.PrefetchRuns += s.PrefetchRuns
		st.PrefetchPages += s.PrefetchPages
		st.PrefetchHits += s.PrefetchHits
		st.PrefetchWaste += s.PrefetchWaste
	}
	return apps.MaxTotal(res), res[0].Check, st, nil
}

// AggregationBench measures the protocol aggregation layer: the standard
// kernel set on the bare software DSM at 2 and 4 nodes, aggregation off
// against the selected mechanisms on. Returns an error if any kernel's
// checksum moves — aggregation must change costs, never results.
func AggregationBench(batch, prefetch bool) ([]AggregationResult, error) {
	return AggregationBenchParallel(batch, prefetch, 1)
}

// AggregationBenchParallel is AggregationBench with up to `parallel`
// (kernel, nodes) cells measured concurrently. A cell spans both legs —
// off then on — so the off/on comparison always comes from adjacent runs,
// and every cell owns a private cluster: virtual times, message counts,
// and checksums are unchanged by co-scheduling, and results merge in the
// canonical (nodes, kernel) order (see runCells).
func AggregationBenchParallel(batch, prefetch bool, parallel int) ([]AggregationResult, error) {
	on := swdsm.Aggregation{Batch: batch, Prefetch: prefetch}
	type cell struct {
		nodes  int
		name   string
		kernel apps.Kernel
	}
	var cells []cell
	for _, nodes := range []int{2, 4} {
		for _, c := range aggKernels() {
			cells = append(cells, cell{nodes, c.name, c.kernel})
		}
	}
	return runCells(parallel, len(cells), func(i int) (AggregationResult, error) {
		c := cells[i]
		offVirt, offCheck, offStats, err := aggRun(c.nodes, swdsm.Aggregation{}, c.kernel)
		if err != nil {
			return AggregationResult{}, fmt.Errorf("bench: aggregation %s/%d off: %w", c.name, c.nodes, err)
		}
		start := time.Now()
		aggVirt, aggCheck, aggStats, err := aggRun(c.nodes, on, c.kernel)
		wall := time.Since(start)
		if err != nil {
			return AggregationResult{}, fmt.Errorf("bench: aggregation %s/%d on: %w", c.name, c.nodes, err)
		}
		if aggCheck != offCheck {
			return AggregationResult{}, fmt.Errorf("bench: aggregation %s/%d moved the checksum: %v vs %v",
				c.name, c.nodes, aggCheck, offCheck)
		}
		offNs, aggNs := uint64(offVirt), uint64(aggVirt)
		return AggregationResult{
			Kernel:          c.name,
			Substrate:       "swdsm",
			Nodes:           c.nodes,
			WallNs:          wall.Nanoseconds(),
			VirtualOffNs:    offNs,
			VirtualAggNs:    aggNs,
			SpeedupPct:      100 * (float64(offNs) - float64(aggNs)) / float64(offNs),
			MsgsOff:         offStats.ProtocolMsgs,
			MsgsAgg:         aggStats.ProtocolMsgs,
			MsgReductionPct: 100 * (float64(offStats.ProtocolMsgs) - float64(aggStats.ProtocolMsgs)) / float64(offStats.ProtocolMsgs),
			DiffBatches:     aggStats.DiffBatches,
			BatchedDiffs:    aggStats.BatchedDiffs,
			PrefetchPages:   aggStats.PrefetchPages,
			PrefetchHits:    aggStats.PrefetchHits,
			PrefetchWaste:   aggStats.PrefetchWaste,
			Check:           aggCheck,
		}, nil
	})
}

// RenderAggregation prints the measurements as a text table.
func RenderAggregation(rows []AggregationResult, batch, prefetch bool) string {
	s := fmt.Sprintf("Protocol aggregation (swdsm; batch=%v prefetch=%v)\n\n", batch, prefetch)
	s += fmt.Sprintf("  %-10s %5s %14s %14s %8s %9s %9s %8s\n",
		"kernel", "nodes", "virtual off", "virtual agg", "speedup", "msgs off", "msgs agg", "msgs -%")
	for _, r := range rows {
		s += fmt.Sprintf("  %-10s %5d %14v %14v %7.2f%% %9d %9d %7.1f%%\n",
			r.Kernel, r.Nodes, vclock.Duration(r.VirtualOffNs), vclock.Duration(r.VirtualAggNs),
			r.SpeedupPct, r.MsgsOff, r.MsgsAgg, r.MsgReductionPct)
	}
	return s
}
