package bench

import (
	"fmt"
	"time"

	"hamster"
	"hamster/internal/apps"
)

// CheckpointOverheadResult is one kernel's checkpoint-cost measurement at
// one cluster size: the modeled virtual time of the run with checkpointing
// off next to the same run with coordinated snapshots every `every`
// barriers, plus what the captures cost in snapshot bytes.
type CheckpointOverheadResult struct {
	Kernel       string `json:"kernel"`
	Substrate    string `json:"substrate"`
	Nodes        int    `json:"nodes"`
	WallNs       int64  `json:"wall_ns"`
	VirtualOffNs uint64 `json:"virtual_ns_off"`
	VirtualOnNs  uint64 `json:"virtual_ns_ckpt"`
	// OverheadPct is (on-off)/off in percent — the figure the
	// EXPERIMENTS.md checkpoint table quotes.
	OverheadPct  float64 `json:"overhead_pct"`
	Captures     int     `json:"captures"`
	CaptureBytes uint64  `json:"capture_bytes"`
	Check        float64 `json:"check"`
}

// CheckpointOverhead measures checkpoint cost for the standard kernel set
// on the software DSM at 2 and 4 nodes. Both legs run through the full
// core services (checkpointing lives there), so the off-leg is the honest
// baseline for the on-leg; workload sizes mirror KernelWall. The off-leg
// checksum must match the on-leg's — captures must never move results.
func CheckpointOverhead(every int, incremental bool) ([]CheckpointOverheadResult, error) {
	return CheckpointOverheadParallel(every, incremental, 1)
}

// CheckpointOverheadParallel is CheckpointOverhead with up to `parallel`
// (kernel, nodes) cells measured concurrently; each cell runs both legs
// on private clusters and results merge in canonical order (see
// runCells).
func CheckpointOverheadParallel(every int, incremental bool, parallel int) ([]CheckpointOverheadResult, error) {
	cases := []struct {
		name   string
		kernel apps.Kernel
	}{
		{"matmult", func(m apps.Machine) apps.Result { return apps.MatMult(m, 96) }},
		{"sor-opt", func(m apps.Machine) apps.Result { return apps.SOR(m, 192, 6, true) }},
		{"lu", func(m apps.Machine) apps.Result { return apps.LU(m, 96) }},
		{"stream", func(m apps.Machine) apps.Result { return apps.Stream(m, 1<<15, 8, 0) }},
	}
	type cell struct {
		nodes  int
		name   string
		kernel apps.Kernel
	}
	var cells []cell
	for _, nodes := range []int{2, 4} {
		for _, c := range cases {
			cells = append(cells, cell{nodes, c.name, c.kernel})
		}
	}
	return runCells(parallel, len(cells), func(i int) (CheckpointOverheadResult, error) {
		c := cells[i]
		off, err := runCore(hamster.Config{Platform: hamster.SWDSM, Nodes: c.nodes}, c.kernel)
		if err != nil {
			return CheckpointOverheadResult{}, fmt.Errorf("bench: ckptoverhead %s/%d off: %w", c.name, c.nodes, err)
		}
		onCfg := hamster.Config{
			Platform:              hamster.SWDSM,
			Nodes:                 c.nodes,
			CheckpointEvery:       every,
			CheckpointIncremental: incremental,
		}
		start := time.Now()
		rt, err := hamster.New(onCfg)
		if err != nil {
			return CheckpointOverheadResult{}, fmt.Errorf("bench: ckptoverhead %s/%d: %w", c.name, c.nodes, err)
		}
		res := apps.RunOnEnv(rt, c.kernel)
		wall := time.Since(start)
		captures, bytes := rt.Checkpoints().Stats()
		rt.Close()
		if res[0].Check != off.check {
			return CheckpointOverheadResult{}, fmt.Errorf("bench: ckptoverhead %s/%d: checkpointing moved the checksum: %v vs %v",
				c.name, c.nodes, res[0].Check, off.check)
		}
		offNs, onNs := uint64(off.virtual), uint64(apps.MaxTotal(res))
		return CheckpointOverheadResult{
			Kernel:       c.name,
			Substrate:    "swdsm",
			Nodes:        c.nodes,
			WallNs:       wall.Nanoseconds(),
			VirtualOffNs: offNs,
			VirtualOnNs:  onNs,
			OverheadPct:  100 * (float64(onNs) - float64(offNs)) / float64(offNs),
			Captures:     captures,
			CaptureBytes: bytes,
			Check:        res[0].Check,
		}, nil
	})
}

type coreRun struct {
	virtual hamster.Duration
	check   float64
}

func runCore(cfg hamster.Config, kernel apps.Kernel) (coreRun, error) {
	rt, err := hamster.New(cfg)
	if err != nil {
		return coreRun{}, err
	}
	res := apps.RunOnEnv(rt, kernel)
	rt.Close()
	return coreRun{virtual: apps.MaxTotal(res), check: res[0].Check}, nil
}

// RenderCheckpointOverhead prints the measurements as a text table.
func RenderCheckpointOverhead(rows []CheckpointOverheadResult, every int, incremental bool) string {
	mode := "full"
	if incremental {
		mode = "incremental"
	}
	s := fmt.Sprintf("Checkpoint overhead (swdsm, %s capture every %d barriers)\n\n", mode, every)
	s += fmt.Sprintf("  %-10s %5s %14s %14s %9s %9s %10s\n",
		"kernel", "nodes", "virtual off", "virtual ckpt", "overhead", "captures", "bytes")
	for _, r := range rows {
		s += fmt.Sprintf("  %-10s %5d %14v %14v %8.2f%% %9d %10d\n",
			r.Kernel, r.Nodes, hamster.Duration(r.VirtualOffNs), hamster.Duration(r.VirtualOnNs),
			r.OverheadPct, r.Captures, r.CaptureBytes)
	}
	return s
}
