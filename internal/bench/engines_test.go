package bench

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"

	"hamster/internal/apps"
	"hamster/internal/consengine"
)

// TestEngineDefaultIdentity is the default-engine identity gate
// (scripts/benchcheck.sh): selecting no engine must run the exact
// pre-engine-interface protocol. Two checks pin this:
//
//   - A default-constructed cluster and an explicit "scope" selection
//     must produce bit-identical virtual time, checksum, and message
//     count on the same kernel.
//   - The committed BENCH_6.json scope rows must replay with checksums
//     and message counts bit-exact and virtual times within 0.1% (the
//     pre-existing ±15µs handler-steal scheduling wobble; see
//     TestAggregationOffIdentity). Only the scope rows are pinned: the
//     write-invalidate engine's message counts are schedule-dependent
//     under contention, so its rows are covered by the checksum-agreement
//     invariant instead.
func TestEngineDefaultIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel replays against the committed baseline")
	}

	kernels := map[string]apps.Kernel{}
	for _, c := range engineKernels() {
		kernels[c.name] = c.kernel
	}

	for _, c := range smallAggKernels() {
		_, defVirt, defCheck, defStats, err := engineRun("", 4, c.kernel)
		if err != nil {
			t.Fatal(err)
		}
		_, scopeVirt, scopeCheck, scopeStats, err := engineRun(consengine.ScopeName, 4, c.kernel)
		if err != nil {
			t.Fatal(err)
		}
		if defCheck != scopeCheck || defVirt != scopeVirt || defStats.ProtocolMsgs != scopeStats.ProtocolMsgs {
			t.Errorf("%s: default engine != explicit scope: check %v/%v virtual %v/%v msgs %d/%d",
				c.name, defCheck, scopeCheck, defVirt, scopeVirt,
				defStats.ProtocolMsgs, scopeStats.ProtocolMsgs)
		}
	}

	var bench6 struct {
		Results []EngineResult `json:"results"`
	}
	raw, err := os.ReadFile("../../BENCH_6.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &bench6); err != nil {
		t.Fatal(err)
	}
	pinned := 0
	for _, want := range bench6.Results {
		if want.Engine != consengine.ScopeName {
			continue
		}
		pinned++
		kernel, ok := kernels[want.Kernel]
		if !ok {
			t.Fatalf("baseline names unknown kernel %q", want.Kernel)
		}
		_, virt, check, st, err := engineRun(want.Engine, want.Nodes, kernel)
		if err != nil {
			t.Fatal(err)
		}
		if check != want.Check {
			t.Errorf("%s/%d: scope checksum %v != committed %v", want.Kernel, want.Nodes, check, want.Check)
		}
		if st.ProtocolMsgs != want.Msgs {
			t.Errorf("%s/%d: scope messages %d != committed %d", want.Kernel, want.Nodes, st.ProtocolMsgs, want.Msgs)
		}
		base := float64(want.VirtualNs)
		if diff := math.Abs(float64(uint64(virt)) - base); diff > base*0.001 {
			t.Errorf("%s/%d: scope virtual time %d strays %.0fns from committed %d (> 0.1%%)",
				want.Kernel, want.Nodes, uint64(virt), diff, want.VirtualNs)
		}
	}
	if want := len(engineKernels()) * 2; pinned != want {
		t.Fatalf("baseline pins %d scope rows, want %d", pinned, want)
	}
}

// TestEngineSuiteAgreement runs the whole engine matrix and checks its
// invariants: every (kernel, nodes) cell computes the same checksum on
// every engine (EngineSuiteParallel enforces this internally and would
// error), each engine carries its declared model, and the
// write-invalidate engine actually exercised its protocol (ownership
// transfers or invalidations happened).
func TestEngineSuiteAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine matrix")
	}
	rows, err := EngineSuiteParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	want := len(consengine.Names()) * len(engineKernels()) * 2
	if len(rows) != want {
		t.Fatalf("suite rows = %d, want %d", len(rows), want)
	}
	models := map[string]string{
		consengine.ScopeName:   "scope",
		consengine.EagerRCName: "release",
		consengine.IVYName:     "sequential",
	}
	var ivyProtocol uint64
	for _, r := range rows {
		if r.Model != models[r.Engine] {
			t.Errorf("%s/%s/%d declares %q, want %q", r.Engine, r.Kernel, r.Nodes, r.Model, models[r.Engine])
		}
		if r.VirtualNs == 0 || r.Msgs == 0 {
			t.Errorf("%s/%s/%d measured nothing: virtual %d msgs %d", r.Engine, r.Kernel, r.Nodes, r.VirtualNs, r.Msgs)
		}
		if r.Engine == consengine.IVYName {
			ivyProtocol += r.Invalidations + r.Migrations
		}
	}
	if ivyProtocol == 0 {
		t.Error("ivy rows show no invalidations or ownership transfers")
	}
	table := RenderEngines(rows)
	if !strings.Contains(table, "ivy") || !strings.Contains(table, "sequential") {
		t.Fatalf("rendering: %q", table)
	}
}

// TestBuildEngineUnknown: the bench builder reports the valid selector
// list, same as core.Config.Engine.
func TestBuildEngineUnknown(t *testing.T) {
	if _, err := BuildEngine("tso", 2); err == nil || !strings.Contains(err.Error(), "scope, eager-rc, ivy") {
		t.Fatalf("err = %v", err)
	}
}
