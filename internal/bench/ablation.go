package bench

import (
	"fmt"
	"strings"

	"hamster"
	"hamster/internal/apps"
	"hamster/internal/hybriddsm"
	"hamster/internal/memsim"
	"hamster/internal/multidsm"
	"hamster/internal/swdsm"
	"hamster/internal/vclock"
	"hamster/models/jiajia"
)

// AblationRow is one configuration of a design-choice experiment.
type AblationRow struct {
	Config string
	Time   vclock.Duration
}

// AblationResult is one complete ablation.
type AblationResult struct {
	Name string
	Note string
	Rows []AblationRow
}

// AblationMessaging quantifies §3.3's messaging integration: the same
// HAMSTER/JiaJia binary on the software DSM with the coalesced messaging
// layer versus two separate (competing) stacks.
func AblationMessaging(sz Sizes) AblationResult {
	run := func(mode hamster.MessagingMode) vclock.Duration {
		sys, err := jiajia.Boot(hamster.Config{
			Platform: hamster.SWDSM, Nodes: 4, Messaging: mode, Params: sz.params(),
		})
		if err != nil {
			panic(err)
		}
		defer sys.Shutdown()
		res := apps.RunOnJia(sys, func(m apps.Machine) apps.Result {
			return apps.SOR(m, sz.SORN, sz.SORIters, false)
		})
		return apps.MaxTotal(res)
	}
	return AblationResult{
		Name: "messaging integration (coalesced vs separate stacks)",
		Note: "unoptimized SOR on SW-DSM, 4 nodes; every fault/sync message pays the stack penalty when separate",
		Rows: []AblationRow{
			{"coalesced", run(hamster.Coalesced)},
			{"separate", run(hamster.Separate)},
		},
	}
}

// AblationConsistency quantifies §4.5: the same kernel under the
// substrate's relaxed (scope) model versus the Sequential model of the
// consistency API (fence around every access).
func AblationConsistency(sz Sizes) AblationResult {
	n := sz.SORN / 4
	if n < 16 {
		n = 16
	}
	kernel := func(m apps.Machine) apps.Result { return apps.SOR(m, n, 2, true) }
	run := func(seq bool) vclock.Duration {
		rt, err := hamster.New(hamster.Config{Platform: hamster.SWDSM, Nodes: 2, Params: sz.params()})
		if err != nil {
			panic(err)
		}
		defer rt.Close()
		if seq {
			return apps.MaxTotal(apps.RunOnEnvSeq(rt, kernel))
		}
		return apps.MaxTotal(apps.RunOnEnv(rt, kernel))
	}
	return AblationResult{
		Name: "consistency model (scope vs sequential)",
		Note: fmt.Sprintf("SOR %dx%d on SW-DSM, 2 nodes; sequential fences around every access", n, n),
		Rows: []AblationRow{
			{"scope (relaxed)", run(false)},
			{"sequential", run(true)},
		},
	}
}

// AblationPlacement quantifies the Memory Management module's
// distribution annotations on the hybrid DSM: block versus cyclic versus
// single-node placement for a streaming kernel.
func AblationPlacement(sz Sizes) AblationResult {
	n := 256 * sz.SORN // enough doubles that placement dominates
	run := func(pol memsim.Policy) vclock.Duration {
		// The core path honors every distribution annotation (the jia_*
		// API only exposes block and cyclic allocation).
		rt, err := hamster.New(hamster.Config{Platform: hamster.HybridDSM, Nodes: 4, Params: sz.params()})
		if err != nil {
			panic(err)
		}
		defer rt.Close()
		res := apps.RunOnEnv(rt, func(m apps.Machine) apps.Result {
			return apps.Stream(m, n, 3, pol)
		})
		return apps.MaxTotal(res)
	}
	return AblationResult{
		Name: "distribution annotation (hybrid DSM)",
		Note: fmt.Sprintf("stream over %d doubles, 4 nodes; placement decides how many accesses leave the node", n),
		Rows: []AblationRow{
			{"block", run(memsim.Block)},
			{"cyclic", run(memsim.Cyclic)},
			{"fixed(node0)", run(memsim.Fixed)},
		},
	}
}

// AblationPostedWrites quantifies the hybrid DSM's posted-write buffer on
// LU's write-only initialization phase.
func AblationPostedWrites(sz Sizes) AblationResult {
	run := func(disable bool) vclock.Duration {
		d, err := hybriddsm.New(hybriddsm.Config{Nodes: 4, DisablePostedWrites: disable, Params: sz.params()})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		res := apps.RunOnSubstrate(d, func(m apps.Machine) apps.Result {
			return apps.LU(m, sz.LUN)
		})
		return apps.MaxPhase(res, func(t apps.Timings) vclock.Duration { return t.Init })
	}
	return AblationResult{
		Name: "posted remote writes (hybrid DSM)",
		Note: fmt.Sprintf("LU %dx%d init phase, 4 nodes; PIO stores pay full remote latency per word", sz.LUN, sz.LUN),
		Rows: []AblationRow{
			{"posted writes", run(false)},
			{"synchronous PIO", run(true)},
		},
	}
}

// AblationMultiDSM runs the §6 multi-DSM composition experiment: a mixed
// workload (dense read stream + scattered remote writes) on the two-engine
// substrate, with all regions on the software engine, all on the (raw,
// uncached) hybrid engine, and finally with each region routed to the
// engine that suits it.
func AblationMultiDSM(sz Sizes) AblationResult {
	streamWords := 64 * sz.SORN
	const scatterPages, iters = 24, 3
	kernel := func(m apps.Machine) apps.Result {
		return apps.MixedRW(m, streamWords, scatterPages, iters)
	}
	run := func(routes map[memsim.Policy]multidsm.Engine, def multidsm.Engine) vclock.Duration {
		d, err := multidsm.New(multidsm.Config{
			Nodes: 4, Params: sz.params(),
			PolicyRoutes: routes, DefaultEngine: def,
			HybridCacheThreshold: -1,
		})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		return apps.MaxTotal(apps.RunOnSubstrate(d, kernel))
	}
	return AblationResult{
		Name: "multi-DSM composition (§6 future work)",
		Note: fmt.Sprintf("stream of %d doubles + %d scattered-write pages, 4 nodes; regions routed per engine", streamWords, scatterPages),
		Rows: []AblationRow{
			{"all on sw-dsm", run(nil, multidsm.SW)},
			{"all on hybrid (raw)", run(nil, multidsm.Hybrid)},
			{"custom-tailored mix", run(map[memsim.Policy]multidsm.Engine{
				memsim.Block:  multidsm.SW,
				memsim.Cyclic: multidsm.Hybrid,
			}, multidsm.SW)},
		},
	}
}

// AblationHomeMigration quantifies the software DSM's single-writer home
// migration (JiaJia's optimization) on a workload where every node
// repeatedly rewrites a block homed elsewhere.
func AblationHomeMigration(sz Sizes) AblationResult {
	n := 64 * sz.SORN
	run := func(migrateAfter int) vclock.Duration {
		d, err := swdsm.New(swdsm.Config{
			Nodes: 4, Params: sz.params(), MigrateAfter: migrateAfter,
		})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		res := apps.RunOnSubstrate(d, func(m apps.Machine) apps.Result {
			// Fixed placement homes everything on node 0; nodes 1-3 are
			// single writers of their blocks — migration bait.
			return apps.OwnerWrites(m, n, 12, memsim.Fixed)
		})
		return apps.MaxTotal(res)
	}
	return AblationResult{
		Name: "home migration (software DSM single-writer optimization)",
		Note: fmt.Sprintf("each node rewrites its block of %d doubles homed on node 0, 12 iterations", n),
		Rows: []AblationRow{
			{"migration off", run(0)},
			{"migrate after 2", run(2)},
		},
	}
}

// AblationProtocol compares the software DSM's Scope Consistency against
// eager Release Consistency (§4.5's model spectrum) on a workload with
// disjoint lock scopes but shared pages: scope keeps everyone's cached
// pages valid, eager RC broadcasts and invalidates on every release.
func AblationProtocol(sz Sizes) AblationResult {
	run := func(proto swdsm.Protocol) vclock.Duration {
		d, err := swdsm.New(swdsm.Config{Nodes: 4, Params: sz.params(), Protocol: proto})
		if err != nil {
			panic(err)
		}
		defer d.Close()
		res := apps.RunOnSubstrate(d, func(m apps.Machine) apps.Result {
			return apps.DisjointLocks(m, 48, 8)
		})
		return apps.MaxTotal(res)
	}
	return AblationResult{
		Name: "consistency protocol (scope vs eager release consistency)",
		Note: "48 single-writer counters under 48 disjoint locks, shared pages, 4 nodes, 8 rounds",
		Rows: []AblationRow{
			{"scope consistency", run(swdsm.ScopeConsistency)},
			{"eager RC", run(swdsm.EagerRC)},
		},
	}
}

// Ablations runs every design-choice experiment DESIGN.md calls out.
func Ablations(sz Sizes) []AblationResult {
	return []AblationResult{
		AblationMessaging(sz),
		AblationConsistency(sz),
		AblationPlacement(sz),
		AblationPostedWrites(sz),
		AblationMultiDSM(sz),
		AblationHomeMigration(sz),
		AblationProtocol(sz),
	}
}

// RenderAblations formats the ablation results.
func RenderAblations(results []AblationResult) string {
	var b strings.Builder
	b.WriteString("Ablations: design choices called out in DESIGN.md\n")
	for _, a := range results {
		fmt.Fprintf(&b, "\n%s\n  %s\n", a.Name, a.Note)
		base := a.Rows[0].Time
		for _, r := range a.Rows {
			rel := 1.0
			if base > 0 {
				rel = float64(r.Time) / float64(base)
			}
			fmt.Fprintf(&b, "  %-18s %12v  (%.2fx)\n", r.Config, r.Time, rel)
		}
	}
	return b.String()
}
