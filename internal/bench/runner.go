package bench

import (
	"runtime"
	"sync"
)

// runCells executes n independent measurement cells with at most
// `parallel` in flight, depositing every cell's result at its own index.
// Each cell builds its own cluster (network, clocks, address space), so
// cells share no simulation state and their virtual times are unaffected
// by co-scheduling; only wall-clock readings feel the contention. Because
// results land by index, the output order is the canonical cell order —
// byte-identical to a sequential run — no matter how the scheduler
// interleaves cells.
//
// parallel <= 0 selects GOMAXPROCS. With parallel == 1 cells run inline
// and the first error aborts the remainder (the historical sequential
// behavior); otherwise every cell runs to completion and the error
// reported is the first in canonical order, so error selection is
// deterministic too.
func runCells[T any](parallel, n int, run func(i int) (T, error)) ([]T, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	out := make([]T, n)
	if parallel <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			r, err := run(i)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	if parallel > n {
		parallel = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
