package cluster

import (
	"errors"
	"strings"
	"testing"

	"hamster/internal/amsg"
	"hamster/internal/machine"
	"hamster/internal/perfmon"
	"hamster/internal/simnet"
	"hamster/internal/vclock"
)

func testHealthLayer(nodes int) (*amsg.Layer, []*vclock.Clock) {
	clocks := make([]*vclock.Clock, nodes)
	for i := range clocks {
		clocks[i] = &vclock.Clock{}
	}
	link := machine.Link{LatencyNs: 1000, NsPerByte: 10, SendSWNs: 100, RecvSWNs: 200, HandlerNs: 50}
	net := simnet.New(link, clocks)
	return amsg.New(net, link), clocks
}

// A healthy cluster probes clean: every peer stays Up and the
// diagnostic says so.
func TestMonitorAllUp(t *testing.T) {
	l, _ := testHealthLayer(3)
	m := NewMonitor(l, 0, nil)
	if m.Threshold() != DefaultThreshold {
		t.Fatalf("threshold = %d, want default %d", m.Threshold(), DefaultThreshold)
	}
	if down := m.Sweep(0); down != nil {
		t.Fatalf("sweep of a healthy cluster found %v down", down)
	}
	for id := 0; id < 3; id++ {
		if st := m.Status(amsg.NodeID(id)); st != Up {
			t.Fatalf("node %d status = %v, want up", id, st)
		}
	}
	if d := m.Diagnostic(); d != "cluster health: all nodes up" {
		t.Fatalf("diagnostic = %q", d)
	}
}

// A fail-stopped node misses consecutive heartbeats until the threshold
// marks it Down: one sweep detects it, records EvNodeDown, fences it in
// the amsg layer, and the diagnostic names it.
func TestMonitorDetectsCrashedNode(t *testing.T) {
	l, _ := testHealthLayer(3)
	rec := perfmon.New(3, 0)
	l.SetRecorder(rec)
	rec.Enable()
	// Node 2 is dead from the start; keep the retry budget small so the
	// test doesn't burn eight backoff cycles per probe.
	l.Network().SetFaults(simnet.FaultPlan{
		NodeFaults: []simnet.NodeFault{{Node: 2, CrashAt: 1}},
		Seed:       5,
	})
	l.SetRetryPolicy(amsg.RetryPolicy{MaxAttempts: 2})
	m := NewMonitor(l, 0, rec)

	down := m.Sweep(0)
	if len(down) != 1 || down[0] != 2 {
		t.Fatalf("sweep found %v down, want [2]", down)
	}
	if st := m.Status(2); st != Down {
		t.Fatalf("node 2 status = %v, want down", st)
	}
	if st := m.Status(1); st != Up {
		t.Fatalf("node 1 status = %v, want up", st)
	}
	if rec.KindCount(0)[perfmon.EvNodeDown] != 1 {
		t.Fatal("EvNodeDown was not recorded")
	}
	if !l.NodeDown(2) {
		t.Fatal("monitor did not fence the dead node in the amsg layer")
	}
	// Fenced: subsequent calls fail immediately, zero attempts.
	_, err := l.CallErr(0, 2, KindHeartbeat, nil)
	var ue *amsg.UnreachableError
	if !errors.As(err, &ue) || ue.Attempts != 0 {
		t.Fatalf("post-down call err = %v, want fenced UnreachableError", err)
	}
	d := m.Diagnostic()
	if !strings.Contains(d, "node 2 DOWN after 3 missed heartbeats") || !strings.Contains(d, "nodes 0,1 up") {
		t.Fatalf("diagnostic = %q", d)
	}
	// Down is sticky: probing again stays Down without new traffic.
	if st := m.Probe(0, 2); st != Down {
		t.Fatalf("re-probe of a down node = %v, want down", st)
	}
}
