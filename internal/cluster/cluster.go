// Package cluster implements HAMSTER's unified startup configuration
// (§3.3): one node-configuration file format shared by all base
// architectures, replacing the per-system mechanisms (JiaJia's internal
// remote job start, the SCI-VM's script-based startup, OS process control
// on multiprocessors).
//
// The format is line-oriented:
//
//	# comment
//	platform  = software-dsm | hybrid-dsm | smp
//	messaging = coalesced | separate
//	threaded  = true | false
//	node      = <name> [<address>]
//	cache_pages     = <n>      (software DSM page cache)
//	migrate_after   = <n>      (software DSM home migration, 0 = off)
//	cache_threshold = <n>      (hybrid DSM read-cache trigger, -1 = off)
//	posted_writes   = true | false
//
// Repeating "node" lines enumerate the cluster; on SMP platforms each node
// line stands for one CPU.
package cluster

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hamster/internal/core"
	"hamster/internal/machine"
	"hamster/internal/platform"
)

// NodeSpec names one node of the cluster.
type NodeSpec struct {
	Name    string
	Address string
}

// FileConfig is a parsed configuration file.
type FileConfig struct {
	Platform       platform.Kind
	Messaging      machine.MessagingMode
	Threaded       bool
	Nodes          []NodeSpec
	CachePages     int
	MigrateAfter   int
	CacheThreshold int
	PostedWrites   bool
}

// Default returns the configuration used when a key is absent: a
// four-node software-DSM cluster with coalesced messaging.
func Default() FileConfig {
	return FileConfig{
		Platform:     platform.SWDSM,
		Messaging:    machine.Coalesced,
		PostedWrites: true,
	}
}

// Parse reads a configuration file.
func Parse(r io.Reader) (FileConfig, error) {
	cfg := Default()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, found := strings.Cut(line, "=")
		if !found {
			return cfg, fmt.Errorf("cluster: line %d: expected key = value, got %q", lineNo, line)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if err := cfg.set(key, value); err != nil {
			return cfg, fmt.Errorf("cluster: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return cfg, err
	}
	if len(cfg.Nodes) == 0 {
		return cfg, fmt.Errorf("cluster: no node lines in configuration")
	}
	return cfg, nil
}

func (c *FileConfig) set(key, value string) error {
	switch key {
	case "platform":
		switch value {
		case "software-dsm", "swdsm", "beowulf":
			c.Platform = platform.SWDSM
		case "hybrid-dsm", "sci-vm", "numa":
			c.Platform = platform.HybridDSM
		case "smp", "hardware-dsm":
			c.Platform = platform.SMP
		default:
			return fmt.Errorf("unknown platform %q", value)
		}
	case "messaging":
		switch value {
		case "coalesced", "integrated":
			c.Messaging = machine.Coalesced
		case "separate", "native":
			c.Messaging = machine.Separate
		default:
			return fmt.Errorf("unknown messaging mode %q", value)
		}
	case "threaded":
		b, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("bad threaded value %q", value)
		}
		c.Threaded = b
	case "node":
		fields := strings.Fields(value)
		if len(fields) == 0 {
			return fmt.Errorf("empty node line")
		}
		spec := NodeSpec{Name: fields[0]}
		if len(fields) > 1 {
			spec.Address = fields[1]
		}
		c.Nodes = append(c.Nodes, spec)
	case "cache_pages":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("bad cache_pages %q", value)
		}
		c.CachePages = n
	case "migrate_after":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("bad migrate_after %q", value)
		}
		c.MigrateAfter = n
	case "cache_threshold":
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("bad cache_threshold %q", value)
		}
		c.CacheThreshold = n
	case "posted_writes":
		b, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("bad posted_writes %q", value)
		}
		c.PostedWrites = b
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// RuntimeConfig converts a parsed file into a core configuration — the
// single switch point that retargets an unmodified binary (§5.4).
func (c FileConfig) RuntimeConfig() core.Config {
	return core.Config{
		Platform:                  c.Platform,
		Nodes:                     len(c.Nodes),
		Messaging:                 c.Messaging,
		Threaded:                  c.Threaded,
		SWDSMCachePages:           c.CachePages,
		SWDSMMigrateAfter:         c.MigrateAfter,
		HybridCacheThreshold:      c.CacheThreshold,
		HybridDisablePostedWrites: !c.PostedWrites,
	}
}

// Render writes the configuration back out in file format.
func (c FileConfig) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "platform = %s\n", platformName(c.Platform))
	if c.Messaging == machine.Separate {
		b.WriteString("messaging = separate\n")
	} else {
		b.WriteString("messaging = coalesced\n")
	}
	if c.Threaded {
		b.WriteString("threaded = true\n")
	}
	if c.CachePages != 0 {
		fmt.Fprintf(&b, "cache_pages = %d\n", c.CachePages)
	}
	if c.MigrateAfter != 0 {
		fmt.Fprintf(&b, "migrate_after = %d\n", c.MigrateAfter)
	}
	if c.CacheThreshold != 0 {
		fmt.Fprintf(&b, "cache_threshold = %d\n", c.CacheThreshold)
	}
	if !c.PostedWrites {
		b.WriteString("posted_writes = false\n")
	}
	for _, n := range c.Nodes {
		if n.Address != "" {
			fmt.Fprintf(&b, "node = %s %s\n", n.Name, n.Address)
		} else {
			fmt.Fprintf(&b, "node = %s\n", n.Name)
		}
	}
	return b.String()
}

func platformName(k platform.Kind) string {
	switch k {
	case platform.SMP:
		return "smp"
	case platform.HybridDSM:
		return "hybrid-dsm"
	default:
		return "software-dsm"
	}
}
