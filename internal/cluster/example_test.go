package cluster_test

import (
	"encoding/binary"
	"fmt"

	"hamster/internal/cluster"
	"hamster/internal/core"
	"hamster/internal/memsim"
	"hamster/internal/platform"
	"hamster/internal/simnet"
)

// ExampleRunRecoverable runs a phased accumulation under a fault plan that
// crashes node 1 mid-run. Checkpointing at every barrier epoch plus a
// registered per-node phase counter lets the supervisor roll the cluster
// back to the last sealed snapshot, re-admit the victim, and replay: the
// resumed attempt skips completed phases (and their barriers), so the
// final total matches a fault-free run.
func ExampleRunRecoverable() {
	cfg := core.Config{
		Platform:        platform.SWDSM,
		Nodes:           4,
		CheckpointEvery: 1, // snapshot at every barrier epoch
	}
	plan := simnet.FaultPlan{
		NodeFaults: []simnet.NodeFault{{Node: 1, CrashAt: 2_000_000}},
		Recover:    true,
		Seed:       1,
	}

	const phases = 6
	var total float64
	rt, recoveries, err := cluster.RunRecoverable(cfg, plan, nil,
		func(e *core.Env) {
			r, err := e.Mem.Alloc(memsim.PageSize, core.AllocOpts{
				Name: "cells", Policy: memsim.Block, Collective: true,
			})
			if err != nil {
				panic(err)
			}
			// One phase counter per node: snapshots capture it, and a
			// resumed run starts from the captured value, skipping phases
			// (and barriers) the crashed attempt already completed.
			prog := new(int64)
			e.RegisterCheckpointable(fmt.Sprintf("phase-%d", e.ID()),
				func() []byte {
					b := make([]byte, 8)
					binary.LittleEndian.PutUint64(b, uint64(*prog))
					return b
				},
				func(b []byte) {
					if len(b) == 8 {
						*prog = int64(binary.LittleEndian.Uint64(b))
					}
				})
			slot := r.Base + memsim.Addr(8*e.ID())
			for phase := int64(1); phase <= phases; phase++ {
				if *prog >= phase {
					continue
				}
				e.WriteF64(slot, e.ReadF64(slot)+float64(phase))
				e.Compute(500_000)
				*prog = phase
				e.Sync.Barrier()
			}
			if e.ID() == 0 {
				total = 0
				for n := 0; n < e.N(); n++ {
					total += e.ReadF64(r.Base + memsim.Addr(8*n))
				}
			}
		})
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	fmt.Printf("recoveries = %d, total = %g\n", recoveries, total)
	// Output: recoveries = 1, total = 84
}
