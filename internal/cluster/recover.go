package cluster

// Crash recovery: the rollback half of HAMSTER's cluster control. A run
// under a fault plan with Recover set is supervised here — when a planned
// crash takes the run down, the health monitor declares the victim dead
// (firing its OnNodeDown subscribers), the surviving state is rolled back
// to the last sealed checkpoint epoch, and a replacement node is
// re-admitted through the unified startup path: the next attempt boots via
// the exact same core construction as a fresh run, seeded with the
// materialized snapshot, and resumes from the captured barrier.

import (
	"fmt"

	"hamster/internal/amsg"
	"hamster/internal/checkpoint"
	"hamster/internal/core"
	"hamster/internal/simnet"
)

// RunRecoverable executes an SPMD program under a fault plan, recovering
// from planned node crashes when plan.Recover is set. setup (optional)
// runs once per boot attempt before the parallel phase — lock tables and
// other pre-run calls go there so the resumed attempt replays them; body
// is the per-node program. It returns the runtime of the successful
// attempt (for clocks, perfmon, checkpoint stats; the caller closes it)
// and how many recoveries were needed.
//
// Recovery is deterministic: the victim is the not-yet-recovered planned
// crash with the lowest crash time, the restore point is whatever the
// checkpoint sink holds (nothing sealed yet = restart from scratch), and
// the victim's crash entry is stripped from the plan so the re-admitted
// node survives the retry. Same seed, same plan → bit-identical replay.
func RunRecoverable(cfg core.Config, plan simnet.FaultPlan, setup func(*core.Runtime), body func(*core.Env)) (*core.Runtime, int, error) {
	if cfg.CheckpointEvery > 0 && cfg.CheckpointSink == nil {
		// The sink must outlive each attempt's runtime, or the snapshots
		// would die with the crashed run.
		cfg.CheckpointSink = checkpoint.NewMemorySink(cfg.CheckpointKeep)
	}
	remaining := plan
	recoveries := 0
	var rs *checkpoint.RestoreSet
	for {
		rt, err := core.NewResumed(cfg, rs)
		if err != nil {
			return nil, recoveries, err
		}
		var mon *Monitor
		if rt.AMsg() != nil {
			mon = NewMonitor(rt.AMsg(), 0, rt.Perf())
		}
		rt.SetFaults(remaining)
		if setup != nil {
			setup(rt)
		}
		reason := runGuarded(rt, body)
		if reason == nil {
			return rt, recoveries, nil
		}
		rt.Close()
		if !remaining.Recover {
			if mon != nil {
				return nil, recoveries, fmt.Errorf("cluster: run failed (%v); %s", reason, mon.Diagnostic())
			}
			return nil, recoveries, fmt.Errorf("cluster: run failed: %v", reason)
		}
		victim := -1
		for i, nf := range remaining.NodeFaults {
			if nf.CrashAt <= 0 {
				continue
			}
			if victim < 0 || nf.CrashAt < remaining.NodeFaults[victim].CrashAt {
				victim = i
			}
		}
		if victim < 0 {
			return nil, recoveries, fmt.Errorf("cluster: run failed with no planned crash left to recover from: %v", reason)
		}
		node := remaining.NodeFaults[victim].Node
		if mon != nil {
			// Drive the failure through the detector so EvNodeDown is
			// recorded and OnNodeDown subscribers see the transition.
			mon.NoteDown(amsg.NodeID(node), fmt.Sprintf("run aborted: %v", reason))
		}
		if cfg.CheckpointSink != nil {
			rs, err = checkpoint.Materialize(cfg.CheckpointSink.Chain())
			if err != nil {
				return nil, recoveries, err
			}
		}
		// Strip the consumed crash; the re-admitted replacement node keeps
		// the plan's remaining faults (slow factors, link faults, later
		// crashes of other nodes).
		nf := append([]simnet.NodeFault(nil), remaining.NodeFaults[:victim]...)
		remaining.NodeFaults = append(nf, remaining.NodeFaults[victim+1:]...)
		recoveries++
	}
}

// runGuarded runs the SPMD body and converts the run's first panic (a
// planned crash surfaces as one) into a value.
func runGuarded(rt *core.Runtime, body func(*core.Env)) (reason any) {
	defer func() { reason = recover() }()
	rt.Run(body)
	return nil
}
