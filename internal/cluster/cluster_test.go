package cluster

import (
	"strings"
	"testing"
	"testing/quick"

	"hamster/internal/core"
	"hamster/internal/machine"
	"hamster/internal/platform"
)

const sample = `
# the paper's testbed: four dual-Xeon nodes
platform  = software-dsm
messaging = coalesced
node = smile0 192.168.1.10
node = smile1 192.168.1.11
node = smile2 192.168.1.12
node = smile3 192.168.1.13
cache_pages = 2048
`

func TestParseSample(t *testing.T) {
	cfg, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Platform != platform.SWDSM || len(cfg.Nodes) != 4 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Nodes[2].Name != "smile2" || cfg.Nodes[2].Address != "192.168.1.12" {
		t.Fatalf("node 2 = %+v", cfg.Nodes[2])
	}
	if cfg.CachePages != 2048 {
		t.Fatalf("cache_pages = %d", cfg.CachePages)
	}
	rc := cfg.RuntimeConfig()
	if rc.Nodes != 4 || rc.Platform != platform.SWDSM || rc.SWDSMCachePages != 2048 {
		t.Fatalf("runtime config = %+v", rc)
	}
}

func TestParsePlatformAliases(t *testing.T) {
	for alias, want := range map[string]platform.Kind{
		"swdsm": platform.SWDSM, "beowulf": platform.SWDSM,
		"hybrid-dsm": platform.HybridDSM, "sci-vm": platform.HybridDSM, "numa": platform.HybridDSM,
		"smp": platform.SMP, "hardware-dsm": platform.SMP,
	} {
		cfg, err := Parse(strings.NewReader("platform = " + alias + "\nnode = a\n"))
		if err != nil {
			t.Fatalf("%s: %v", alias, err)
		}
		if cfg.Platform != want {
			t.Fatalf("%s -> %v, want %v", alias, cfg.Platform, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"platform = vax\nnode = a\n",
		"messaging = smoke\nnode = a\n",
		"nonsense line\n",
		"unknownkey = 1\nnode = a\n",
		"cache_pages = minus\nnode = a\n",
		"threaded = maybe\nnode = a\n",
		"node = \n",
		"platform = smp\n", // no nodes
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}

func TestHybridOptions(t *testing.T) {
	cfg, err := Parse(strings.NewReader(
		"platform = hybrid-dsm\nnode = a\nnode = b\ncache_threshold = -1\nposted_writes = false\n"))
	if err != nil {
		t.Fatal(err)
	}
	rc := cfg.RuntimeConfig()
	if rc.HybridCacheThreshold != -1 || !rc.HybridDisablePostedWrites {
		t.Fatalf("rc = %+v", rc)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(strings.NewReader(orig.Render()))
	if err != nil {
		t.Fatalf("re-parse of rendered config failed: %v\n%s", err, orig.Render())
	}
	if again.Platform != orig.Platform || len(again.Nodes) != len(orig.Nodes) ||
		again.CachePages != orig.CachePages || again.Messaging != orig.Messaging {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", orig, again)
	}
}

// Property: Render/Parse round trip preserves every field for arbitrary
// configurations.
func TestRenderParseProperty(t *testing.T) {
	f := func(platSel, msgSel uint8, threaded, posted bool, pages uint16, thresh int16, names []string) bool {
		if len(names) == 0 {
			return true
		}
		cfg := Default()
		cfg.Platform = []platform.Kind{platform.SMP, platform.HybridDSM, platform.SWDSM}[int(platSel)%3]
		if msgSel%2 == 1 {
			cfg.Messaging = machine.Separate
		}
		cfg.Threaded = threaded
		cfg.PostedWrites = posted
		cfg.CachePages = int(pages)
		cfg.CacheThreshold = int(thresh)
		for i, n := range names {
			name := strings.Map(func(r rune) rune {
				if r > ' ' && r < 127 && r != '=' && r != '#' {
					return r
				}
				return -1
			}, n)
			if name == "" {
				name = "n"
			}
			cfg.Nodes = append(cfg.Nodes, NodeSpec{Name: name, Address: ""})
			_ = i
		}
		again, err := Parse(strings.NewReader(cfg.Render()))
		if err != nil {
			return false
		}
		return again.Platform == cfg.Platform &&
			again.Messaging == cfg.Messaging &&
			again.Threaded == cfg.Threaded &&
			again.PostedWrites == cfg.PostedWrites &&
			again.CachePages == cfg.CachePages &&
			again.CacheThreshold == cfg.CacheThreshold &&
			len(again.Nodes) == len(cfg.Nodes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDrivesRuntime(t *testing.T) {
	// End to end: a config file boots a working runtime (§3.3 unified
	// startup).
	cfg, err := Parse(strings.NewReader("platform = smp\nnode = cpu0\nnode = cpu1\n"))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(cfg.RuntimeConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Nodes() != 2 || rt.Substrate().Kind() != platform.SMP {
		t.Fatal("runtime does not match config")
	}
}
