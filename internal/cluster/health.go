package cluster

// Cluster health monitoring: the graceful-degradation half of HAMSTER's
// cluster control (§4.2). A Monitor probes peers with heartbeat active
// messages; a peer that misses enough consecutive probes is declared
// down, recorded as a perfmon EvNodeDown event, reported through
// Diagnostic, and — via the amsg notice path — fenced off so subsequent
// protocol calls to it fail fast instead of burning full retry cycles.
//
// Probes run on the prober's goroutine in virtual time: a probe of a
// healthy peer costs one clean active-message round trip, a probe of a
// dead one costs the full retry/backoff budget. Detection is therefore
// as deterministic as the fault plan that killed the node.

import (
	"fmt"
	"strings"
	"sync"

	"hamster/internal/amsg"
	"hamster/internal/perfmon"
	"hamster/internal/vclock"
)

// KindHeartbeat is the reserved active-message kind of the liveness
// probe (below simnet.UserKindBase; user traffic cannot collide).
const KindHeartbeat amsg.Kind = 1000

// HeartbeatCost is the extra service cost of answering a probe beyond
// the link's base handler cost.
const HeartbeatCost vclock.Duration = 200

// DefaultThreshold is the number of consecutive missed probes after
// which a peer is declared down.
const DefaultThreshold = 3

// NodeStatus is a Monitor's opinion of one peer.
type NodeStatus int

// The health states. A node goes Up → Suspect on the first missed
// probe and Suspect → Down at the threshold; Down is permanent (the
// fault model is fail-stop).
const (
	Up NodeStatus = iota
	Suspect
	Down
)

// String names the status.
func (s NodeStatus) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	default:
		return "unknown"
	}
}

// Monitor is a cluster-wide failure detector over an active-message
// layer. All methods are safe for concurrent use; any node may probe
// from its own goroutine.
type Monitor struct {
	layer     *amsg.Layer
	threshold int
	rec       *perfmon.Recorder

	mu     sync.Mutex
	missed []int
	status []NodeStatus
	reason []string
	hooks  []func(amsg.NodeID)
}

// NewMonitor builds a monitor over the layer and registers the heartbeat
// echo handler on every node. threshold <= 0 selects DefaultThreshold;
// rec may be nil.
func NewMonitor(layer *amsg.Layer, threshold int, rec *perfmon.Recorder) *Monitor {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	size := layer.Network().Size()
	m := &Monitor{
		layer:     layer,
		threshold: threshold,
		rec:       rec,
		missed:    make([]int, size),
		status:    make([]NodeStatus, size),
		reason:    make([]string, size),
	}
	echo := func(from amsg.NodeID, req []byte) ([]byte, vclock.Duration) {
		return req, HeartbeatCost
	}
	for id := 0; id < size; id++ {
		layer.Register(amsg.NodeID(id), KindHeartbeat, echo)
	}
	return m
}

// Probe sends one heartbeat from → to and folds the outcome into the
// health state, returning the peer's status afterwards. Reaching the
// miss threshold marks the peer down, records EvNodeDown, and fences it
// off in the amsg layer.
func (m *Monitor) Probe(from, to amsg.NodeID) NodeStatus {
	if from == to {
		return Up
	}
	m.mu.Lock()
	if m.status[to] == Down {
		m.mu.Unlock()
		return Down
	}
	m.mu.Unlock()

	_, err := m.layer.CallErr(from, to, KindHeartbeat, nil)

	m.mu.Lock()
	if err == nil {
		m.missed[to] = 0
		m.status[to] = Up
		m.mu.Unlock()
		return Up
	}
	m.missed[to]++
	m.status[to] = Suspect
	m.reason[to] = err.Error()
	declared := m.missed[to] >= m.threshold
	misses := m.missed[to]
	var hooks []func(amsg.NodeID)
	if declared {
		m.status[to] = Down
		hooks = m.hooks
	}
	st := m.status[to]
	m.mu.Unlock()

	if declared {
		m.layer.MarkDown(to)
		if m.rec != nil && m.rec.Enabled() {
			m.rec.Record(int(from), perfmon.EvNodeDown,
				m.layer.Network().Clock(from).Now(), 0, uint64(to), uint64(misses))
		}
		// Hooks run outside the monitor lock: a subscriber may probe,
		// query status, or kick off recovery from its callback.
		for _, fn := range hooks {
			fn(to)
		}
	}
	return st
}

// OnNodeDown subscribes fn to down transitions: it is called once per
// node declared down (by Probe or NoteDown), after the peer has been
// fenced off in the amsg layer and outside the monitor lock. Subscribe
// before probing starts; the recovery orchestrator uses this to trigger
// checkpoint rollback instead of polling Status.
func (m *Monitor) OnNodeDown(fn func(amsg.NodeID)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hooks = append(m.hooks, fn)
}

// NoteDown records an externally detected failure (e.g. a capture commit
// or protocol call that errored out mid-run) as a Down transition,
// fencing the node and firing the OnNodeDown hooks exactly as a probe
// would. Idempotent: a node already down fires nothing.
func (m *Monitor) NoteDown(id amsg.NodeID, reason string) {
	m.mu.Lock()
	if m.status[id] == Down {
		m.mu.Unlock()
		return
	}
	m.status[id] = Down
	m.reason[id] = reason
	if m.missed[id] == 0 {
		m.missed[id] = m.threshold
	}
	hooks := m.hooks
	m.mu.Unlock()

	m.layer.MarkDown(id)
	if m.rec != nil && m.rec.Enabled() {
		m.rec.Record(0, perfmon.EvNodeDown,
			m.layer.Network().Clock(0).Now(), 0, uint64(id), uint64(m.threshold))
	}
	for _, fn := range hooks {
		fn(id)
	}
}

// Sweep probes every peer of from, repeating up to the miss threshold so
// a single sweep is enough to take a dead node all the way to Down.
// Returns the nodes found down.
func (m *Monitor) Sweep(from amsg.NodeID) []amsg.NodeID {
	var down []amsg.NodeID
	for id := 0; id < len(m.status); id++ {
		to := amsg.NodeID(id)
		if to == from {
			continue
		}
		st := m.Probe(from, to)
		for i := 1; i < m.threshold && st == Suspect; i++ {
			st = m.Probe(from, to)
		}
		if st == Down {
			down = append(down, to)
		}
	}
	return down
}

// Status returns the monitor's current opinion of a node.
func (m *Monitor) Status(id amsg.NodeID) NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.status[id]
}

// Threshold returns the consecutive-miss count that marks a node down.
func (m *Monitor) Threshold() int { return m.threshold }

// Diagnostic renders a one-paragraph cluster health report, the text a
// failed fault campaign prints on exit.
func (m *Monitor) Diagnostic() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var up, bad []string
	for id, st := range m.status {
		switch st {
		case Up:
			up = append(up, fmt.Sprint(id))
		case Suspect:
			bad = append(bad, fmt.Sprintf("node %d SUSPECT after %d missed heartbeats (%s)",
				id, m.missed[id], m.reason[id]))
		case Down:
			bad = append(bad, fmt.Sprintf("node %d DOWN after %d missed heartbeats (%s)",
				id, m.missed[id], m.reason[id]))
		}
	}
	s := "cluster health: "
	if len(bad) == 0 {
		return s + "all nodes up"
	}
	s += strings.Join(bad, "; ")
	if len(up) > 0 {
		s += "; nodes " + strings.Join(up, ",") + " up"
	}
	return s
}
