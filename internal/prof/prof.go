// Package prof wraps runtime/pprof for the command-line tools: a CPU
// profile that runs for the life of the process and a heap snapshot
// written at exit. Both hamsterrun and hamsterbench expose the same
// -cpuprofile/-memprofile flags through these two helpers, so the
// profiling workflow (see DESIGN.md §5i) is identical across commands.
//
// Profiles are written only on a clean return from main; error paths
// that os.Exit early skip them, which is acceptable — a run that died
// validating flags has no interesting profile.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile streaming to path and returns the stop
// function that must run (defer it) before the process exits. An empty
// path is a no-op: the returned stop does nothing and err is nil, so
// callers can wire the flag unconditionally.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap forces a GC (so the profile reflects live objects, not
// garbage awaiting collection) and writes a heap profile to path. An
// empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
