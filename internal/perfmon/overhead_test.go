package perfmon_test

import (
	"testing"
	"time"

	"hamster/internal/memsim"
	"hamster/internal/perfmon"
	"hamster/internal/platform"
	"hamster/internal/smp"
	"hamster/internal/swdsm"
)

// The disabled-recorder contract: the word-access hot path performs ZERO
// allocations with a recorder attached. The guard is one nil check plus
// one atomic load; no event arguments may be evaluated.
func TestAccessHotPathZeroAllocs(t *testing.T) {
	subs := []struct {
		name  string
		build func() (platform.Substrate, error)
	}{
		{"swdsm", func() (platform.Substrate, error) { return swdsm.New(swdsm.Config{Nodes: 1}) }},
		{"smp", func() (platform.Substrate, error) { return smp.New(smp.Config{CPUs: 1}) }},
	}
	for _, tc := range subs {
		t.Run(tc.name, func(t *testing.T) {
			sub, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()
			rec := perfmon.New(1, 0)
			sub.SetRecorder(rec)
			region, err := sub.Alloc(memsim.PageSize, "hot", memsim.Block, 0)
			if err != nil {
				t.Fatal(err)
			}
			a := region.Base
			// Warm any lazily grown internal state before measuring.
			for i := 0; i < 1024; i++ {
				sub.WriteF64(0, a, float64(i))
				_ = sub.ReadF64(0, a)
			}
			allocs := testing.AllocsPerRun(1000, func() {
				sub.WriteF64(0, a, 1.0)
				_ = sub.ReadF64(0, a)
			})
			if allocs != 0 {
				t.Fatalf("disabled recorder: %v allocs per access pair, want 0", allocs)
			}
			// Enabled recording stays allocation-free too: slots are
			// claimed in the preallocated ring.
			rec.Enable()
			allocs = testing.AllocsPerRun(1000, func() {
				sub.WriteF64(0, a, 1.0)
				_ = sub.ReadF64(0, a)
			})
			if allocs != 0 {
				t.Fatalf("enabled recorder: %v allocs per access pair, want 0", allocs)
			}
		})
	}
}

// BenchmarkTracingDisabledOverhead measures the local word-access loop
// with an attached-but-disabled recorder and enforces the <2% slowdown
// budget against the identical loop on a bare substrate. Only run under
// -bench, so the wall-clock comparison never flakes the regular suite.
func BenchmarkTracingDisabledOverhead(b *testing.B) {
	build := func(attach bool) (*swdsm.DSM, memsim.Addr) {
		d, err := swdsm.New(swdsm.Config{Nodes: 1})
		if err != nil {
			b.Fatal(err)
		}
		if attach {
			d.SetRecorder(perfmon.New(1, 0))
		}
		region, err := d.Alloc(memsim.PageSize, "hot", memsim.Block, 0)
		if err != nil {
			b.Fatal(err)
		}
		return d, region.Base
	}

	const loops = 1 << 16
	measure := func(d *swdsm.DSM, a memsim.Addr) time.Duration {
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 7; trial++ {
			start := time.Now()
			for i := 0; i < loops; i++ {
				d.WriteF64(0, a, float64(i))
				_ = d.ReadF64(0, a)
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}

	bare, bareAddr := build(false)
	defer bare.Close()
	traced, tracedAddr := build(true)
	defer traced.Close()
	measure(bare, bareAddr) // warm both before comparing
	measure(traced, tracedAddr)
	bareBest := measure(bare, bareAddr)
	tracedBest := measure(traced, tracedAddr)

	slowdown := float64(tracedBest-bareBest) / float64(bareBest)
	b.ReportMetric(slowdown*100, "%slowdown")
	if slowdown > 0.02 {
		b.Errorf("attached-but-disabled recorder costs %.2f%% on the access hot path, budget is 2%% (bare %v, traced %v)",
			slowdown*100, bareBest, tracedBest)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traced.WriteF64(0, tracedAddr, float64(i))
		_ = traced.ReadF64(0, tracedAddr)
	}
}
