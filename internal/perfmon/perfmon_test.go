package perfmon

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"hamster/internal/vclock"
)

func TestRecorderDisabledDropsEverything(t *testing.T) {
	r := New(2, 8)
	r.Record(0, EvPageFault, 10, 5, 1, 2)
	if r.Len(0) != 0 {
		t.Fatalf("disabled recorder retained %d events", r.Len(0))
	}
	r.Enable()
	r.Record(0, EvPageFault, 10, 5, 1, 2)
	if r.Len(0) != 1 {
		t.Fatalf("enabled recorder retained %d events, want 1", r.Len(0))
	}
	r.Disable()
	r.Record(0, EvPageFault, 20, 5, 1, 2)
	if r.Len(0) != 1 {
		t.Fatalf("re-disabled recorder retained %d events, want 1", r.Len(0))
	}
}

func TestRecorderKeepsFirstNAndCountsDrops(t *testing.T) {
	r := New(1, 4)
	r.Enable()
	for i := 0; i < 10; i++ {
		r.Record(0, EvMsgSend, vclock.Time(i), 0, uint64(i), 0)
	}
	if got := r.Len(0); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Dropped(0); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	for i, ev := range r.Events(0) {
		if ev.Arg1 != uint64(i) {
			t.Fatalf("event %d has Arg1 %d; first-N retention broken", i, ev.Arg1)
		}
	}
}

func TestRecorderConcurrentRecord(t *testing.T) {
	const (
		workers = 8
		perW    = 500
	)
	r := New(1, workers*perW)
	r.Enable()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				r.Record(0, EvService, vclock.Time(i), 1, uint64(w), uint64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Len(0); got != workers*perW {
		t.Fatalf("Len = %d, want %d", got, workers*perW)
	}
	if got := r.Dropped(0); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	// Every slot must have been written exactly once: count per worker.
	perWorker := make(map[uint64]int)
	for _, ev := range r.Events(0) {
		perWorker[ev.Arg1]++
	}
	for w := uint64(0); w < workers; w++ {
		if perWorker[w] != perW {
			t.Fatalf("worker %d wrote %d retained events, want %d", w, perWorker[w], perW)
		}
	}
}

func TestRecorderReset(t *testing.T) {
	r := New(2, 4)
	r.Enable()
	r.Record(0, EvBarrier, 1, 0, 0, 0)
	r.Record(1, EvBarrier, 1, 0, 0, 0)
	r.ResetNode(0)
	if r.Len(0) != 0 || r.Len(1) != 1 {
		t.Fatalf("ResetNode: Len = %d/%d, want 0/1", r.Len(0), r.Len(1))
	}
	r.Reset()
	if r.Len(1) != 0 {
		t.Fatalf("Reset left %d events on node 1", r.Len(1))
	}
	if !r.Enabled() {
		t.Fatal("Reset changed the enabled state")
	}
}

func TestWriteChromeTraceStructure(t *testing.T) {
	r := New(2, 16)
	r.Enable()
	r.Record(0, EvPageFault, 100, 50, 7, 1)
	r.Record(0, EvBarrier, 200, 25, 0, 0)
	r.Record(1, EvLockAcquire, 150, 10, 3, 0)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			PID   int     `json:"pid"`
			Scope string  `json:"s"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var meta, slices, instants int
	for _, ev := range trace.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
		case "X":
			slices++
		case "i":
			instants++
			if ev.Scope != "g" {
				t.Fatalf("instant marker %q has scope %q, want global", ev.Name, ev.Scope)
			}
			if !strings.HasPrefix(ev.Name, "barrier-epoch-") {
				t.Fatalf("unexpected instant marker %q", ev.Name)
			}
		}
	}
	if meta != 2 {
		t.Fatalf("got %d process_name records, want one per node (2)", meta)
	}
	if slices != 3 {
		t.Fatalf("got %d slices, want 3", slices)
	}
	if instants != 1 {
		t.Fatalf("got %d barrier markers, want 1", instants)
	}
}

func TestSummaryRowsSumExactly(t *testing.T) {
	bds := []vclock.Breakdown{
		{Compute: 100, Memory: 50, Protocol: 25, Network: 20, Stolen: 5},
		{Compute: 10, Network: 90},
	}
	s := Summary(bds)
	if !strings.Contains(s, "node") || !strings.Contains(s, "all") {
		t.Fatalf("summary missing header or total row:\n%s", s)
	}
	if !strings.Contains(s, "200ns") { // node 0 total
		t.Fatalf("summary missing node 0 total:\n%s", s)
	}
}

func TestEventSummaryCountsAndDrops(t *testing.T) {
	r := New(1, 2)
	r.Enable()
	r.Record(0, EvMsgSend, 1, 0, 0, 0)
	r.Record(0, EvMsgSend, 2, 0, 0, 0)
	r.Record(0, EvMsgSend, 3, 0, 0, 0) // dropped
	s := r.EventSummary()
	if !strings.Contains(s, "msg-send") || !strings.Contains(s, "(dropped)") {
		t.Fatalf("unexpected event summary:\n%s", s)
	}
}
