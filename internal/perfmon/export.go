package perfmon

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"hamster/internal/vclock"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Object
// Format" with a traceEvents array), as loaded by Perfetto and
// chrome://tracing. Virtual nanoseconds are exported as microseconds
// (the format's native unit) with fractional precision preserved.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int32          `json:"pid"`
	TID   int32          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func micros(d vclock.Duration) float64 { return float64(d) / 1e3 }

// WriteChromeTrace serializes the recorder's events as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Each node becomes one track (pid = node, with a
// process_name metadata record), spanning events become complete ("X")
// slices on the node's timeline, and barrier crossings additionally emit
// global instant markers so epoch boundaries are visible across all
// tracks. Quiescent use only.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	trace := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for node := 0; node < r.Nodes(); node++ {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   int32(node),
			TID:   0,
			Args:  map[string]any{"name": fmt.Sprintf("node %d", node)},
		})
		for _, ev := range r.Events(node) {
			ce := chromeEvent{
				Name:  ev.Kind.String(),
				Phase: "X",
				TS:    micros(vclock.Duration(ev.At)),
				PID:   ev.Node,
				TID:   0,
				Cat:   eventCategory(ev.Kind),
				Args: map[string]any{
					"arg1": ev.Arg1,
					"arg2": ev.Arg2,
				},
			}
			d := micros(ev.Dur)
			ce.Dur = &d
			trace.TraceEvents = append(trace.TraceEvents, ce)
			if ev.Kind == EvBarrier {
				// A global instant marker at the crossing (the
				// slice's end) makes epoch boundaries visible
				// across every track in the Perfetto UI.
				trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
					Name:  fmt.Sprintf("barrier-epoch-%d", ev.Arg1),
					Phase: "i",
					TS:    micros(vclock.Duration(ev.At) + ev.Dur),
					PID:   ev.Node,
					TID:   0,
					Scope: "g",
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// eventCategory groups event kinds for the trace viewer's filter box.
func eventCategory(k EventKind) string {
	switch k {
	case EvPageFault, EvTwinCreate, EvDiffCreate, EvDiffApply,
		EvWriteNotice, EvInvalidate, EvHomeMigrate,
		EvBatchFlush, EvPrefetch, EvPrefetchWaste:
		return "dsm"
	case EvRemoteRead, EvRemoteWrite, EvMsgSend, EvMsgRecv:
		return "network"
	case EvLockAcquire, EvLockRelease, EvBarrier:
		return "sync"
	case EvService, EvServeOp:
		return "service"
	default:
		return "other"
	}
}

// Summary formats per-node time breakdowns as a text table: one row per
// node with its category split (absolute and percent of that node's
// total), followed by an all-node total row. The breakdowns come from
// vclock.Clock.Breakdown at quiescence, so each row's categories sum to
// that node's final virtual time exactly.
func Summary(breakdowns []vclock.Breakdown) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %14s %14s %14s %14s %14s %14s\n",
		"node", "total", "compute", "memory", "protocol", "network", "stolen")
	cell := func(d, total vclock.Duration) string {
		if total == 0 {
			return fmt.Sprintf("%14s", d.String())
		}
		return fmt.Sprintf("%s %4.1f%%", fmt.Sprintf("%7s", d.String()), 100*float64(d)/float64(total))
	}
	var all vclock.Breakdown
	for node, bd := range breakdowns {
		all = all.Add(bd)
		total := bd.Total()
		fmt.Fprintf(&b, "%-6d %14s %s %s %s %s %s\n",
			node, vclock.Duration(total).String(),
			cell(bd.Compute, total), cell(bd.Memory, total), cell(bd.Protocol, total),
			cell(bd.Network, total), cell(bd.Stolen, total))
	}
	total := all.Total()
	fmt.Fprintf(&b, "%-6s %14s %s %s %s %s %s\n",
		"all", vclock.Duration(total).String(),
		cell(all.Compute, total), cell(all.Memory, total), cell(all.Protocol, total),
		cell(all.Network, total), cell(all.Stolen, total))
	return b.String()
}

// EventSummary tallies the recorder's retained events by kind across all
// nodes, formatted as a "kind count" table sorted by count descending.
func (r *Recorder) EventSummary() string {
	counts := make(map[EventKind]uint64)
	var dropped uint64
	for node := 0; node < r.Nodes(); node++ {
		for k, c := range r.KindCount(node) {
			counts[k] += c
		}
		dropped += r.Dropped(node)
	}
	kinds := make([]EventKind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if counts[kinds[i]] != counts[kinds[j]] {
			return counts[kinds[i]] > counts[kinds[j]]
		}
		return kinds[i] < kinds[j]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s\n", "event", "count")
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-14s %10d\n", k.String(), counts[k])
	}
	if dropped > 0 {
		fmt.Fprintf(&b, "%-14s %10d\n", "(dropped)", dropped)
	}
	return b.String()
}
