// Package perfmon is the performance-monitoring subsystem of §4.3 grown
// into a first-class service: a per-node, lock-free protocol event
// recorder with virtual timestamps, plus exporters (Chrome trace-event
// JSON for Perfetto, and per-node/per-category text summaries) and the
// virtual-time attribution surface built on vclock.Breakdown.
//
// Design constraints, in order:
//
//  1. Near-zero cost when disabled. The hot path is
//     `if rec != nil && rec.Enabled() { ... }`: one nil check and one
//     atomic load, no allocations, no argument evaluation. Substrate
//     access paths stay allocation-free (benchmark-enforced).
//  2. Lock-free when enabled. Each node owns a fixed-capacity event
//     buffer; writers claim slots with one atomic add. The recorder
//     keeps the FIRST capacity events per node and counts the rest as
//     dropped — every slot is written exactly once, so concurrent
//     writers (a node's owner goroutine plus protocol handlers charging
//     stolen service work) never collide on a slot.
//  3. Attribution never perturbs the model. Event recording and
//     category tagging are observers; virtual times are bit-identical
//     with tracing on, off, or absent.
//
// Read APIs (Events, Snapshot) are for quiescent use: call them after
// the SPMD run has joined, exactly like platform.Substrate.NodeStats.
package perfmon

import (
	"sync/atomic"

	"hamster/internal/vclock"
)

// EventKind identifies one protocol event type.
type EventKind uint8

// The recorded protocol event kinds.
const (
	// EvPageFault is a remote page fetch into the local cache.
	// Arg1 = page id, Arg2 = home node.
	EvPageFault EventKind = iota
	// EvTwinCreate is the first write of an interval twinning a cached
	// page. Arg1 = page id.
	EvTwinCreate
	// EvDiffCreate is a twin/copy diff computed at release time.
	// Arg1 = page id, Arg2 = diff bytes.
	EvDiffCreate
	// EvDiffApply is a diff applied to the authoritative home copy.
	// Arg1 = page id, Arg2 = diff bytes.
	EvDiffApply
	// EvWriteNotice is a write-notice set published at a release point.
	// Arg1 = number of noticed pages, Arg2 = lock id (or ^0 for global).
	EvWriteNotice
	// EvInvalidate is a set of cached pages dropped at an acquire point.
	// Arg1 = number of pages invalidated.
	EvInvalidate
	// EvRemoteRead is a word-granular remote read run over the SAN.
	// Arg1 = page id, Arg2 = word count.
	EvRemoteRead
	// EvRemoteWrite is a word-granular remote write run over the SAN.
	// Arg1 = page id, Arg2 = word count.
	EvRemoteWrite
	// EvLockAcquire spans a lock acquisition including the wait.
	// Arg1 = lock id.
	EvLockAcquire
	// EvLockRelease is a lock release. Arg1 = lock id.
	EvLockRelease
	// EvBarrier spans a barrier crossing including the rendezvous wait.
	// Arg1 = the node's barrier epoch (pre-increment).
	EvBarrier
	// EvMsgSend is a queued-message transmission. Arg1 = peer,
	// Arg2 = payload bytes.
	EvMsgSend
	// EvMsgRecv is a queued-message reception. Arg1 = peer,
	// Arg2 = payload bytes.
	EvMsgRecv
	// EvService is protocol handler work absorbed by this node as
	// stolen cycles (active-message servicing). Arg1 = calling node,
	// Arg2 = message kind.
	EvService
	// EvHomeMigrate is a page home migrating to this node.
	// Arg1 = page id, Arg2 = old home.
	EvHomeMigrate
	// EvRetry is an active-message retransmission after an ack timeout.
	// Arg1 = target node, Arg2 = retry ordinal (1 = first retransmission).
	EvRetry
	// EvTimeout spans one abandoned wait for an active-message ack,
	// including the attempt's send-side work and backoff. Arg1 = target
	// node, Arg2 = attempt number.
	EvTimeout
	// EvNodeDown is the failure detector declaring a peer dead.
	// Arg1 = the down node, Arg2 = consecutive missed heartbeats.
	EvNodeDown
	// EvCkptBegin marks the start of a coordinated checkpoint capture on
	// this node. Arg1 = checkpoint sequence number, Arg2 = barrier epoch.
	EvCkptBegin
	// EvCkptEnd spans one node's checkpoint capture work (page copies,
	// diff scans, commit). Arg1 = checkpoint sequence number,
	// Arg2 = captured payload bytes.
	EvCkptEnd
	// EvRestore spans a node's state restoration from a checkpoint during
	// crash recovery. Arg1 = checkpoint sequence number, Arg2 = restored
	// page count.
	EvRestore
	// EvBatchFlush spans one aggregated diff-flush call delivering all of
	// a release point's diffs for one home in a single message.
	// Arg1 = home node, Arg2 = page diffs in the batch.
	EvBatchFlush
	// EvPrefetch spans one speculative multi-page fetch issued by the
	// sequential-stride tracker. Arg1 = first prefetched page,
	// Arg2 = pages in the run.
	EvPrefetch
	// EvPrefetchWaste is a misprediction: a prefetched page dropped
	// (evicted or invalidated) before any access used it. Arg1 = page.
	EvPrefetchWaste
	// EvServeOp spans one applied serve-workload op in the modeled
	// queue: At = service start, Dur = modeled service time.
	// Arg1 = shard, Arg2 = op kind (internal/serve).
	EvServeOp

	numEventKinds
)

// String names the event kind (also the Chrome trace event name).
func (k EventKind) String() string {
	switch k {
	case EvPageFault:
		return "page-fault"
	case EvTwinCreate:
		return "twin-create"
	case EvDiffCreate:
		return "diff-create"
	case EvDiffApply:
		return "diff-apply"
	case EvWriteNotice:
		return "write-notice"
	case EvInvalidate:
		return "invalidate"
	case EvRemoteRead:
		return "remote-read"
	case EvRemoteWrite:
		return "remote-write"
	case EvLockAcquire:
		return "lock-acquire"
	case EvLockRelease:
		return "lock-release"
	case EvBarrier:
		return "barrier"
	case EvMsgSend:
		return "msg-send"
	case EvMsgRecv:
		return "msg-recv"
	case EvService:
		return "service"
	case EvHomeMigrate:
		return "home-migrate"
	case EvRetry:
		return "retry"
	case EvTimeout:
		return "timeout"
	case EvNodeDown:
		return "node-down"
	case EvCkptBegin:
		return "ckpt-begin"
	case EvCkptEnd:
		return "ckpt-end"
	case EvRestore:
		return "restore"
	case EvBatchFlush:
		return "batch-flush"
	case EvPrefetch:
		return "prefetch"
	case EvPrefetchWaste:
		return "prefetch-waste"
	case EvServeOp:
		return "serve-op"
	default:
		return "unknown"
	}
}

// Event is one recorded protocol event. At is the node's virtual time
// when the operation began; Dur is its span on that node's timeline
// (zero for instantaneous bookkeeping events). Arg1/Arg2 carry
// kind-specific detail (see the kind constants).
type Event struct {
	At   vclock.Time
	Dur  vclock.Duration
	Arg1 uint64
	Arg2 uint64
	Node int32
	Kind EventKind
}

// DefaultCapacity is the per-node event capacity used when a Recorder is
// built with capacity 0: generous enough for verification-sized runs
// (a 2-node SOR records a few thousand events) while bounding memory at
// ~2.5 MiB per node.
const DefaultCapacity = 1 << 16

// Recorder collects typed protocol events for a fixed set of nodes.
// Construct once per runtime, attach to the substrate/messaging layers,
// and toggle with Enable/Disable. The zero cost-when-disabled contract
// is the caller's half too: guard argument evaluation with Enabled().
type Recorder struct {
	on    atomic.Bool
	rings []ring
}

type ring struct {
	pos atomic.Uint64 // total events ever offered; slots [0,cap) hold the first cap
	buf []Event
	_   [32]byte // keep neighboring rings off one cache line
}

// New builds a recorder for nodes nodes with the given per-node event
// capacity (0 = DefaultCapacity). The recorder starts disabled.
func New(nodes, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{rings: make([]ring, nodes)}
	for i := range r.rings {
		r.rings[i].buf = make([]Event, capacity)
	}
	return r
}

// Nodes returns the number of per-node event buffers.
func (r *Recorder) Nodes() int { return len(r.rings) }

// Enabled reports whether events are being recorded — the one atomic
// load on the hot path.
func (r *Recorder) Enabled() bool { return r.on.Load() }

// Enable starts recording.
func (r *Recorder) Enable() { r.on.Store(true) }

// Disable stops recording. Already-recorded events remain readable.
func (r *Recorder) Disable() { r.on.Store(false) }

// Record appends one event to node's buffer. Lock-free and
// allocation-free; safe from any goroutine. Callers normally guard with
// Enabled() to skip argument evaluation, but Record re-checks so an
// unguarded call on a disabled recorder is a cheap no-op.
func (r *Recorder) Record(node int, kind EventKind, at vclock.Time, dur vclock.Duration, arg1, arg2 uint64) {
	if !r.on.Load() {
		return
	}
	rg := &r.rings[node]
	idx := rg.pos.Add(1) - 1
	if idx >= uint64(len(rg.buf)) {
		return // counted as dropped; first-N retention keeps slots write-once
	}
	rg.buf[idx] = Event{
		At:   at,
		Dur:  dur,
		Arg1: arg1,
		Arg2: arg2,
		Node: int32(node),
		Kind: kind,
	}
}

// Len reports how many events are retained for a node.
func (r *Recorder) Len(node int) int {
	n := r.rings[node].pos.Load()
	if n > uint64(len(r.rings[node].buf)) {
		return len(r.rings[node].buf)
	}
	return int(n)
}

// Dropped reports how many events exceeded a node's capacity.
func (r *Recorder) Dropped(node int) uint64 {
	n := r.rings[node].pos.Load()
	if c := uint64(len(r.rings[node].buf)); n > c {
		return n - c
	}
	return 0
}

// Events returns a copy of one node's retained events in record order.
// Quiescent use only.
func (r *Recorder) Events(node int) []Event {
	out := make([]Event, r.Len(node))
	copy(out, r.rings[node].buf[:len(out)])
	return out
}

// AllEvents returns every node's retained events, ordered by node then
// record order. Quiescent use only.
func (r *Recorder) AllEvents() []Event {
	var out []Event
	for n := range r.rings {
		out = append(out, r.Events(n)...)
	}
	return out
}

// KindCount tallies one node's retained events by kind.
func (r *Recorder) KindCount(node int) map[EventKind]uint64 {
	out := make(map[EventKind]uint64, int(numEventKinds))
	for _, ev := range r.Events(node) {
		out[ev.Kind]++
	}
	return out
}

// Reset discards all recorded events (retention restarts from zero).
// Quiescent use only; the enabled/disabled state is unchanged.
func (r *Recorder) Reset() {
	for i := range r.rings {
		r.rings[i].pos.Store(0)
	}
}

// ResetNode discards one node's recorded events. Quiescent use only.
func (r *Recorder) ResetNode(node int) {
	r.rings[node].pos.Store(0)
}
