package perfmon_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"hamster/internal/apps"
	"hamster/internal/hybriddsm"
	"hamster/internal/multidsm"
	"hamster/internal/perfmon"
	"hamster/internal/platform"
	"hamster/internal/smp"
	"hamster/internal/swdsm"
	"hamster/internal/vclock"
)

// The attribution invariant: after a quiescent run, every node's
// per-category totals sum to its final virtual time EXACTLY — not
// approximately. Every clock advance in every substrate must be tagged,
// and tagging must never change the charge.
func TestAttributionInvariantAllSubstrates(t *testing.T) {
	const nodes = 4
	kernel := func(m apps.Machine) apps.Result { return apps.SOR(m, 64, 4, false) }

	subs := []struct {
		name  string
		build func() (platform.Substrate, error)
	}{
		{"smp", func() (platform.Substrate, error) {
			return smp.New(smp.Config{CPUs: nodes})
		}},
		{"swdsm", func() (platform.Substrate, error) {
			return swdsm.New(swdsm.Config{Nodes: nodes})
		}},
		{"hybriddsm", func() (platform.Substrate, error) {
			return hybriddsm.New(hybriddsm.Config{Nodes: nodes})
		}},
		{"multidsm", func() (platform.Substrate, error) {
			return multidsm.New(multidsm.Config{Nodes: nodes})
		}},
	}
	for _, tc := range subs {
		t.Run(tc.name, func(t *testing.T) {
			sub, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()
			// Recording on or off must not matter; run with it on to
			// exercise the instrumented paths too.
			rec := perfmon.New(nodes, 0)
			sub.SetRecorder(rec)
			rec.Enable()
			apps.RunOnSubstrate(sub, kernel)
			for n := 0; n < nodes; n++ {
				clk := sub.Clock(n)
				bd := clk.Breakdown()
				if got, want := bd.Total(), vclock.Duration(clk.Now()); got != want {
					t.Errorf("node %d: breakdown sums to %d, clock is %d (diff %d): %+v",
						n, got, want, int64(want)-int64(got), bd)
				}
				if clk.Now() == 0 {
					t.Errorf("node %d: clock never advanced", n)
				}
			}
		})
	}
}

// The protocol life cycle of a migratory write on the software DSM must
// appear in order on a node's event stream: the page faults in, the first
// write twins it, the release diffs it, the write notice publishes it,
// and the barrier closes the interval.
func TestGoldenEventSequenceSWDSM(t *testing.T) {
	d, err := swdsm.New(swdsm.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rec := perfmon.New(2, 0)
	d.SetRecorder(rec)
	rec.Enable()

	// A 100-wide grid makes rows straddle page boundaries, so the rows at
	// the block split live on pages written by BOTH nodes: the non-home
	// writer must fault, twin, diff, and notice.
	res := apps.RunOnSubstrate(d, func(m apps.Machine) apps.Result {
		return apps.SOR(m, 100, 4, false)
	})
	_ = res

	want := []perfmon.EventKind{
		perfmon.EvPageFault, perfmon.EvTwinCreate, perfmon.EvDiffCreate,
		perfmon.EvWriteNotice, perfmon.EvBarrier,
	}
	found := false
	for n := 0; n < 2 && !found; n++ {
		evs := rec.Events(n)
		i := 0
		for _, ev := range evs {
			if i < len(want) && ev.Kind == want[i] {
				i++
			}
		}
		found = i == len(want)
	}
	if !found {
		var b strings.Builder
		for n := 0; n < 2; n++ {
			fmt.Fprintf(&b, "node %d:", n)
			for k, c := range rec.KindCount(n) {
				fmt.Fprintf(&b, " %v=%d", k, c)
			}
			b.WriteString("\n")
		}
		t.Fatalf("no node's stream contains the ordered subsequence %v\n%s", want, b.String())
	}
}

// A trace exported from a real 4-node run must parse back as structurally
// valid Chrome trace JSON: one named track per node, slices only on valid
// pids, and globally scoped barrier-epoch markers present.
func TestChromeTraceRoundTripSWDSM(t *testing.T) {
	const nodes = 4
	d, err := swdsm.New(swdsm.Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rec := perfmon.New(nodes, 0)
	d.SetRecorder(rec)
	rec.Enable()
	apps.RunOnSubstrate(d, func(m apps.Machine) apps.Result {
		return apps.SOR(m, 100, 4, false)
	})
	rec.Disable()

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			PID   int            `json:"pid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}

	tracks := make(map[int]string)
	barrierMarkers := 0
	slices := 0
	for _, ev := range trace.TraceEvents {
		if ev.PID < 0 || ev.PID >= nodes {
			t.Fatalf("event %q on invalid pid %d", ev.Name, ev.PID)
		}
		switch ev.Phase {
		case "M":
			if ev.Name == "process_name" {
				tracks[ev.PID], _ = ev.Args["name"].(string)
			}
		case "X":
			slices++
		case "i":
			if strings.HasPrefix(ev.Name, "barrier-epoch-") {
				if ev.Scope != "g" {
					t.Fatalf("barrier marker %q not globally scoped", ev.Name)
				}
				barrierMarkers++
			}
		}
	}
	for n := 0; n < nodes; n++ {
		if want := fmt.Sprintf("node %d", n); tracks[n] != want {
			t.Fatalf("pid %d track name = %q, want %q", n, tracks[n], want)
		}
	}
	if slices == 0 {
		t.Fatal("trace contains no event slices")
	}
	if barrierMarkers == 0 {
		t.Fatal("trace contains no barrier-epoch markers")
	}
}
