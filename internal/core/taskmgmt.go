package core

import (
	"fmt"
	"sync"

	"hamster/internal/vclock"
)

// TaskMgr is the Task Management module (§4.2). It deliberately does not
// define a thread API of its own — that would impose semantics on the
// models — but provides the mechanisms thread models are built from:
// node-targeted task spawning (the forwarding primitive of §5.2) and
// joinable handles. Thread models keep platform-native semantics by
// layering their own call signatures over these services.
type TaskMgr struct {
	e *Env
}

// Task is a joinable spawned task.
type Task struct {
	id     uint64
	node   int
	done   *Event
	result int64 // word-sized exit value (pthread-style return/exit codes)
	mu     sync.Mutex
}

// Node returns the node the task runs on.
func (t *Task) Node() int { return t.node }

// Result returns the task's exit value; valid after Join.
func (t *Task) Result() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.result
}

var taskSeq struct {
	mu sync.Mutex
	n  uint64
}

// SpawnOn starts fn as a task on the given node and returns a joinable
// handle. The spawn request travels as a forwarded call over the
// cluster-control messaging layer: the caller pays the send cost and the
// task begins no earlier than the request's arrival. The task's execution
// charges the target node's clock; in Threaded mode, substrate access from
// concurrent same-node tasks is serialized (time-sharing one CPU).
func (t *TaskMgr) SpawnOn(node int, fn func(e *Env) int64) (*Task, error) {
	t.e.charge(ModTask)
	rt := t.e.rt
	if node < 0 || node >= rt.sub.Nodes() {
		return nil, fmt.Errorf("core: spawn on invalid node %d", node)
	}

	taskSeq.mu.Lock()
	taskSeq.n++
	id := taskSeq.n
	taskSeq.mu.Unlock()

	target := rt.envs[node]
	task := &Task{id: id, node: node}
	task.done = t.e.Sync.NewEvent()

	// Forwarding cost: one message to the target node.
	caller := rt.sub.Clock(t.e.id)
	var startAt vclock.Time
	if node == t.e.id {
		caller.Advance(500) // local dispatch
		startAt = caller.Now()
	} else {
		link := rt.msgs.Link()
		caller.AdvanceCat(vclock.CatNetwork, link.SendSWNs)
		startAt = caller.Now() + vclock.Time(link.LatencyNs) + vclock.Time(link.RecvSWNs)
	}

	go func() {
		rt.sub.Clock(node).AdvanceToCat(vclock.CatNetwork, startAt)
		res := fn(target)
		task.mu.Lock()
		task.result = res
		task.mu.Unlock()
		target.Sync.Signal(task.done)
	}()
	return task, nil
}

// Join blocks until the task completes, reconciling the joiner's clock
// with the task's completion time.
func (t *TaskMgr) Join(task *Task) int64 {
	t.e.charge(ModTask)
	t.e.Sync.Wait(task.done)
	return task.Result()
}

// Self returns this task's node id.
func (t *TaskMgr) Self() int { return t.e.id }

// N returns the cluster size.
func (t *TaskMgr) N() int { return t.e.rt.sub.Nodes() }

// Threaded reports whether same-node task concurrency is enabled.
func (t *TaskMgr) Threaded() bool { return t.e.rt.cfg.Threaded }
