package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hamster/internal/platform"
	"hamster/internal/vclock"
)

// samplerSlot holds the optionally attached external sampler.
type samplerSlot = atomic.Pointer[Sampler]

// Monitor is the performance-monitoring service (§4.3). Each module keeps
// its own statistics independently of what the substrate provides; the
// monitor exposes per-module query and reset services so that
// applications, run-time systems, or external tools can observe behavior
// in an architecture- and model-independent way.
type Monitor struct {
	e *Env
}

// Calls returns how many service calls this node issued to a module since
// the last reset.
func (m *Monitor) Calls(mod Module) uint64 {
	return m.e.calls[mod].Load()
}

// TotalCalls sums service calls across all modules.
func (m *Monitor) TotalCalls() uint64 {
	var total uint64
	for i := Module(0); i < moduleCount; i++ {
		total += m.e.calls[i].Load()
	}
	return total
}

// Reset clears one module's call counter. Substrate counters and recorded
// protocol events are left alone; use ResetAll for the full story.
func (m *Monitor) Reset(mod Module) {
	m.e.calls[mod].Store(0)
}

// ResetAll clears this node's complete monitoring state: every module call
// counter, the substrate's activity counters, and the node's recorded
// protocol events. Virtual clocks (and their category attribution) are
// never reset — they are the simulation's timeline, not monitoring state.
// Call while the node is quiescent (between phases or outside the run).
func (m *Monitor) ResetAll() {
	for i := Module(0); i < moduleCount; i++ {
		m.e.calls[i].Store(0)
	}
	m.e.rt.sub.ResetStats(m.e.id)
	if rec := m.e.rt.perf; rec != nil {
		rec.ResetNode(m.e.id)
	}
}

// TimeBreakdown snapshots this node's virtual-time attribution. The
// category totals sum exactly to the node's clock: every nanosecond the
// simulation charged is tagged compute, memory, protocol, network, or
// stolen.
func (m *Monitor) TimeBreakdown() vclock.Breakdown {
	return m.e.rt.sub.Clock(m.e.id).Breakdown()
}

// Substrate snapshots the base architecture's per-node counters (page
// faults, diffs, invalidations, remote accesses, ...). Call while the node
// is quiescent.
func (m *Monitor) Substrate() platform.Stats {
	return m.e.rt.sub.NodeStats(m.e.id)
}

// Report renders a human-readable monitoring summary for this node.
func (m *Monitor) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "node %d on %s\n", m.e.id, m.e.rt.sub.Kind())
	mods := []Module{ModMem, ModCons, ModSync, ModTask, ModCluster}
	for _, mod := range mods {
		fmt.Fprintf(&b, "  %-16s %8d calls\n", mod, m.Calls(mod))
	}
	st := m.Substrate()
	rows := []struct {
		k string
		v uint64
	}{
		{"reads", st.Reads}, {"writes", st.Writes},
		{"page faults", st.PageFaults},
		{"remote reads", st.RemoteReads}, {"remote writes", st.RemoteWrites},
		{"twins", st.TwinsCreated}, {"diffs", st.DiffsCreated},
		{"diff bytes", st.DiffBytes}, {"invalidations", st.Invalidations},
		{"lock acquires", st.LockAcquires}, {"barriers", st.BarrierCrossings},
		{"evictions", st.Evictions}, {"cache misses", st.CacheMisses},
		{"protocol msgs", st.ProtocolMsgs},
		{"diff batches", st.DiffBatches}, {"batched diffs", st.BatchedDiffs},
		{"prefetch runs", st.PrefetchRuns}, {"prefetch pages", st.PrefetchPages},
		{"prefetch hits", st.PrefetchHits}, {"prefetch waste", st.PrefetchWaste},
	}
	for _, r := range rows {
		if r.v != 0 {
			fmt.Fprintf(&b, "  %-16s %8d\n", r.k, r.v)
		}
	}
	bd := m.TimeBreakdown()
	if total := bd.Total(); total > 0 {
		fmt.Fprintf(&b, "  time breakdown (total %d ns):\n", uint64(total))
		for c := vclock.Category(0); int(c) < vclock.NumCategories; c++ {
			v := bd.Get(c)
			if v == 0 {
				continue
			}
			fmt.Fprintf(&b, "    %-10s %14d ns %5.1f%%\n",
				c, uint64(v), 100*float64(v)/float64(total))
		}
	}
	for _, sec := range m.e.reportSections {
		if sec.title != "" {
			fmt.Fprintf(&b, "  %s:\n", sec.title)
		}
		b.WriteString(sec.render())
	}
	return b.String()
}

// ClusterReport aggregates Report output for every node, in node order.
func ClusterReport(rt *Runtime) string {
	var b strings.Builder
	ids := make([]int, rt.Nodes())
	for i := range ids {
		ids[i] = i
	}
	sort.Ints(ids)
	for _, id := range ids {
		b.WriteString(rt.Env(id).Mon.Report())
	}
	return b.String()
}

// Sample is one node's monitoring snapshot at a barrier crossing.
type Sample struct {
	Node  int
	Epoch uint64
	At    vclock.Time
	Stats platform.Stats
	Calls [moduleCount]uint64
}

// Sampler is an externally attached monitoring collector (§4.3: "an
// independent monitoring system may attach externally"). While attached,
// every barrier crossing appends a per-node snapshot, yielding a
// phase-by-phase time series without touching the application.
type Sampler struct {
	mu      sync.Mutex
	samples []Sample
}

// Samples returns all collected snapshots in collection order.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Series returns one node's snapshots in epoch order.
func (s *Sampler) Series(node int) []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Sample
	for _, sm := range s.samples {
		if sm.Node == node {
			out = append(out, sm)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// Timeline renders one node's fault/diff/lock activity per barrier epoch
// — the view a dynamic optimizer (or a human) tunes against.
func (s *Sampler) Timeline(node int) string {
	series := s.Series(node)
	var b strings.Builder
	fmt.Fprintf(&b, "node %d activity by barrier epoch (cumulative counters):\n", node)
	fmt.Fprintf(&b, "%6s %14s %8s %8s %8s %8s\n", "epoch", "vtime", "faults", "diffs", "inval", "locks")
	for _, sm := range series {
		fmt.Fprintf(&b, "%6d %14v %8d %8d %8d %8d\n",
			sm.Epoch, sm.At, sm.Stats.PageFaults, sm.Stats.DiffsCreated,
			sm.Stats.Invalidations, sm.Stats.LockAcquires)
	}
	return b.String()
}

func (s *Sampler) record(sm Sample) {
	s.mu.Lock()
	s.samples = append(s.samples, sm)
	s.mu.Unlock()
}

// AttachSampler starts external monitoring collection and returns the
// collector. Only one sampler is active at a time.
func (rt *Runtime) AttachSampler() *Sampler {
	s := &Sampler{}
	rt.sampler.Store(s)
	return s
}

// DetachSampler stops collection (nil if none was attached).
func (rt *Runtime) DetachSampler() *Sampler {
	return rt.sampler.Swap(nil)
}

// sampleBarrier records a snapshot for one node if a sampler is attached.
func (e *Env) sampleBarrier() {
	s := e.rt.sampler.Load()
	if s == nil {
		return
	}
	e.epochs++
	var calls [moduleCount]uint64
	for i := Module(0); i < moduleCount; i++ {
		calls[i] = e.calls[i].Load()
	}
	s.record(Sample{
		Node:  e.id,
		Epoch: e.epochs,
		At:    e.Now(),
		Stats: e.rt.sub.NodeStats(e.id),
		Calls: calls,
	})
}
