package core

import (
	"encoding/binary"

	"hamster/internal/memsim"
	"hamster/internal/simnet"
)

// Message kinds on the cluster-control messaging layer.
const (
	kindUserMsg        = simnet.UserKindBase
	kindRegionAnnounce = simnet.UserKindBase + 1
	kindForwardedCall  = simnet.UserKindBase + 2
)

// msgT aliases the wire message type for the module's receive filters.
type msgT = simnet.Message

func toNodeID(id int) simnet.NodeID { return simnet.NodeID(id) }

// ClusterCtl is the Cluster Control module (§4.2): node identification,
// node-parameter queries, and the simple messaging layer used both for
// initialization and — uniquely among the modules — as a service exported
// to applications (§3.3 exposes the coalesced interconnect "to the user
// for external messaging").
type ClusterCtl struct {
	e *Env
}

// Self returns this node's id.
func (c *ClusterCtl) Self() int { return c.e.id }

// NumNodes returns the cluster size.
func (c *ClusterCtl) NumNodes() int { return c.e.rt.sub.Nodes() }

// NodeParams describes one node for parameter queries.
type NodeParams struct {
	ID       int
	Platform string
	CPUs     int
	FlopNs   uint64
}

// QueryNode returns a node's parameters.
func (c *ClusterCtl) QueryNode(id int) NodeParams {
	c.e.charge(ModCluster)
	p := c.e.rt.sub.Params()
	return NodeParams{
		ID:       id,
		Platform: c.e.rt.sub.Kind().String(),
		CPUs:     1,
		FlopNs:   uint64(p.CPU.FlopNs),
	}
}

// Send transmits a user message to another node over the integrated
// messaging layer.
func (c *ClusterCtl) Send(to int, tag uint32, payload []byte) {
	c.e.charge(ModCluster)
	c.e.rt.msgs.Send(toNodeID(c.e.id), toNodeID(to), kindUserMsg, tag, payload)
}

// Recv blocks until a user message with the given tag arrives and returns
// its payload and sender. Returns ok=false if the runtime is closed.
func (c *ClusterCtl) Recv(tag uint32) (payload []byte, from int, ok bool) {
	c.e.charge(ModCluster)
	m := c.e.rt.msgs.Recv(toNodeID(c.e.id), kindUserMsg, func(m *msgT) bool {
		return m.Tag == tag
	})
	if m == nil {
		return nil, 0, false
	}
	payload, from = m.Payload, int(m.From)
	m.Free()
	return payload, from, true
}

// RecvAny blocks until any user message arrives.
func (c *ClusterCtl) RecvAny() (payload []byte, tag uint32, from int, ok bool) {
	c.e.charge(ModCluster)
	m := c.e.rt.msgs.Recv(toNodeID(c.e.id), kindUserMsg, nil)
	if m == nil {
		return nil, 0, 0, false
	}
	payload, tag, from = m.Payload, m.Tag, int(m.From)
	m.Free()
	return payload, tag, from, true
}

// TryRecv is the non-blocking variant of Recv.
func (c *ClusterCtl) TryRecv(tag uint32) (payload []byte, from int, ok bool) {
	c.e.charge(ModCluster)
	m := c.e.rt.msgs.TryRecv(toNodeID(c.e.id), kindUserMsg, func(m *msgT) bool {
		return m.Tag == tag
	})
	if m == nil {
		return nil, 0, false
	}
	payload, from = m.Payload, int(m.From)
	m.Free()
	return payload, from, true
}

// Broadcast sends a user message to all other nodes.
func (c *ClusterCtl) Broadcast(tag uint32, payload []byte) {
	c.e.charge(ModCluster)
	c.e.rt.msgs.Broadcast(toNodeID(c.e.id), kindUserMsg, tag, payload)
}

// Traffic reports cumulative messaging-layer activity (for monitoring).
func (c *ClusterCtl) Traffic() (msgs, bytes uint64) {
	return c.e.rt.msgs.TotalTraffic()
}

// encodeRegion/decodeRegion serialize region metadata for Distribute.
func encodeRegion(r memsim.Region) []byte {
	buf := make([]byte, 0, 24)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Base))
	buf = binary.LittleEndian.AppendUint64(buf, r.Size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Policy))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.FixedNode))
	return buf
}

func decodeRegion(b []byte) memsim.Region {
	return memsim.Region{
		Base:      memsim.Addr(binary.LittleEndian.Uint64(b)),
		Size:      binary.LittleEndian.Uint64(b[8:]),
		Policy:    memsim.Policy(binary.LittleEndian.Uint32(b[16:])),
		FixedNode: int(int32(binary.LittleEndian.Uint32(b[20:]))),
	}
}
