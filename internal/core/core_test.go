package core

import (
	"testing"

	"hamster/internal/machine"
	"hamster/internal/memsim"
	"hamster/internal/platform"
)

func newRT(t testing.TB, kind platform.Kind, nodes int) *Runtime {
	t.Helper()
	rt, err := New(Config{Platform: kind, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Platform: platform.SWDSM, Nodes: 0}); err == nil {
		t.Fatal("expected error for zero nodes")
	}
	if _, err := New(Config{Platform: platform.Kind(77), Nodes: 2}); err == nil {
		t.Fatal("expected error for unknown platform")
	}
}

func TestAllPlatformsConstruct(t *testing.T) {
	for _, k := range []platform.Kind{platform.SMP, platform.HybridDSM, platform.SWDSM} {
		rt := newRT(t, k, 2)
		if rt.Nodes() != 2 {
			t.Fatalf("%v: nodes = %d", k, rt.Nodes())
		}
		if rt.Substrate().Kind() != k {
			t.Fatalf("%v: wrong substrate", k)
		}
	}
}

func TestCollectiveAlloc(t *testing.T) {
	rt := newRT(t, platform.SWDSM, 4)
	regions := make([]memsim.Region, 4)
	rt.Run(func(e *Env) {
		r, err := e.Mem.Alloc(memsim.PageSize, AllocOpts{Name: "g", Policy: memsim.Block, Collective: true})
		if err != nil {
			panic(err)
		}
		regions[e.ID()] = r
	})
	for i := 1; i < 4; i++ {
		if regions[i] != regions[0] {
			t.Fatalf("node %d got different region: %+v vs %+v", i, regions[i], regions[0])
		}
	}
}

func TestCollectiveAllocSequence(t *testing.T) {
	// Two collective allocations in program order must pair up correctly.
	rt := newRT(t, platform.SMP, 3)
	var a, b [3]memsim.Region
	rt.Run(func(e *Env) {
		r1, _ := e.Mem.Alloc(memsim.PageSize, AllocOpts{Name: "a", Collective: true})
		r2, _ := e.Mem.Alloc(2*memsim.PageSize, AllocOpts{Name: "b", Collective: true})
		a[e.ID()], b[e.ID()] = r1, r2
	})
	for i := 1; i < 3; i++ {
		if a[i] != a[0] || b[i] != b[0] {
			t.Fatal("collective allocation sequence mismatch")
		}
	}
	if a[0].Base == b[0].Base {
		t.Fatal("distinct allocations must not alias")
	}
}

func TestDistributeAndAccept(t *testing.T) {
	rt := newRT(t, platform.SWDSM, 2)
	var got memsim.Region
	rt.Run(func(e *Env) {
		if e.ID() == 0 {
			r, err := e.Mem.Alloc(memsim.PageSize, AllocOpts{Name: "tmk", Policy: memsim.Fixed})
			if err != nil {
				panic(err)
			}
			e.Mem.Distribute(r)
			got = r
		} else {
			r, ok := e.Mem.AcceptRegion()
			if !ok {
				panic("AcceptRegion failed")
			}
			if r.Size != memsim.PageSize {
				panic("wrong region distributed")
			}
		}
	})
	if got.Size == 0 {
		t.Fatal("allocation failed")
	}
}

func TestAllocRejectsUnsupportedPolicy(t *testing.T) {
	rt := newRT(t, platform.SMP, 2)
	e := rt.Env(0)
	if !e.Mem.Probe().HardwareCoherent {
		t.Fatal("SMP must be hardware coherent")
	}
	// All policies are accepted on our substrates; verify the error path
	// with an out-of-range fixed node instead.
	if _, err := e.Mem.Alloc(10, AllocOpts{Policy: memsim.Fixed, FixedNode: 99}); err == nil {
		t.Fatal("expected error for bad fixed node")
	}
}

func TestSyncLockProtectsCounter(t *testing.T) {
	for _, kind := range []platform.Kind{platform.SMP, platform.HybridDSM, platform.SWDSM} {
		t.Run(kind.String(), func(t *testing.T) {
			rt := newRT(t, kind, 3)
			var region memsim.Region
			var lock int
			rt.Run(func(e *Env) {
				r, _ := e.Mem.Alloc(memsim.PageSize, AllocOpts{Name: "c", Collective: true})
				if e.ID() == 0 {
					region = r
					lock = e.Sync.NewLock()
				}
				e.Sync.Barrier()
				for i := 0; i < 20; i++ {
					e.Sync.Lock(lock)
					e.WriteI64(r.Base, e.ReadI64(r.Base)+1)
					e.Sync.Unlock(lock)
				}
				e.Sync.Barrier()
			})
			e := rt.Env(0)
			e.Sync.Lock(lock)
			got := e.ReadI64(region.Base)
			e.Sync.Unlock(lock)
			if got != 60 {
				t.Fatalf("counter = %d, want 60", got)
			}
		})
	}
}

func TestRawLockMutualExclusion(t *testing.T) {
	rt := newRT(t, platform.SWDSM, 2)
	var id int
	order := make(chan int, 4)
	rt.Run(func(e *Env) {
		if e.ID() == 0 {
			id = e.Sync.NewRawLock()
		}
		e.Sync.Barrier()
		e.Sync.RawLock(id)
		order <- e.ID()
		e.Compute(1000)
		order <- e.ID()
		e.Sync.RawUnlock(id)
	})
	close(order)
	var seq []int
	for v := range order {
		seq = append(seq, v)
	}
	if len(seq) != 4 || seq[0] != seq[1] || seq[2] != seq[3] {
		t.Fatalf("critical sections interleaved: %v", seq)
	}
}

func TestEventSignalWait(t *testing.T) {
	rt := newRT(t, platform.SMP, 2)
	ev := rt.Env(0).Sync.NewEvent()
	rt.Run(func(e *Env) {
		if e.ID() == 0 {
			e.Compute(100000)
			e.Sync.Signal(ev)
		} else {
			e.Sync.Wait(ev)
			if !ev.Fired() {
				panic("event not fired after Wait")
			}
		}
	})
	// Waiter's clock must be past the signaler's signal time.
	if rt.Env(1).Now() < rt.Env(0).Now()/2 {
		t.Fatal("waiter clock not reconciled with signaler")
	}
}

func TestEventSticky(t *testing.T) {
	rt := newRT(t, platform.SMP, 1)
	e := rt.Env(0)
	ev := e.Sync.NewEvent()
	e.Sync.Signal(ev)
	e.Sync.Wait(ev) // must not block
}

func TestTaskSpawnOnAndJoin(t *testing.T) {
	rt, err := New(Config{Platform: platform.SMP, Nodes: 2, Threaded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	e0 := rt.Env(0)
	task, err := e0.Task.SpawnOn(1, func(e *Env) int64 {
		if e.ID() != 1 {
			t.Errorf("task ran on node %d, want 1", e.ID())
		}
		e.Compute(5000)
		return 42
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e0.Task.Join(task); got != 42 {
		t.Fatalf("join result = %d", got)
	}
	if task.Node() != 1 {
		t.Fatal("wrong task node")
	}
	// Forwarded execution charged the target node's clock.
	if rt.Env(1).Now() == 0 {
		t.Fatal("target clock not charged")
	}
}

func TestTaskSpawnInvalidNode(t *testing.T) {
	rt := newRT(t, platform.SMP, 2)
	if _, err := rt.Env(0).Task.SpawnOn(9, func(*Env) int64 { return 0 }); err == nil {
		t.Fatal("expected error")
	}
}

func TestClusterMessaging(t *testing.T) {
	rt := newRT(t, platform.SWDSM, 3)
	rt.Run(func(e *Env) {
		switch e.ID() {
		case 0:
			e.Cluster.Send(1, 7, []byte("to1"))
			e.Cluster.Broadcast(9, []byte("all"))
		case 1:
			p, from, ok := e.Cluster.Recv(7)
			if !ok || from != 0 || string(p) != "to1" {
				panic("direct message corrupted")
			}
			p, _, _, ok = e.Cluster.RecvAny()
			if !ok || string(p) != "all" {
				panic("broadcast missing")
			}
		case 2:
			p, from, ok := e.Cluster.Recv(9)
			if !ok || from != 0 || string(p) != "all" {
				panic("broadcast corrupted")
			}
		}
	})
	msgs, bytes := rt.Env(0).Cluster.Traffic()
	if msgs != 3 || bytes != 9 {
		t.Fatalf("traffic = %d msgs / %d bytes", msgs, bytes)
	}
}

func TestClusterTryRecv(t *testing.T) {
	rt := newRT(t, platform.SMP, 2)
	e1 := rt.Env(1)
	if _, _, ok := e1.Cluster.TryRecv(5); ok {
		t.Fatal("TryRecv on empty queue must fail")
	}
	rt.Env(0).Cluster.Send(1, 5, []byte("x"))
	if p, _, ok := e1.Cluster.TryRecv(5); !ok || string(p) != "x" {
		t.Fatal("TryRecv after send failed")
	}
}

func TestQueryNode(t *testing.T) {
	rt := newRT(t, platform.HybridDSM, 2)
	np := rt.Env(0).Cluster.QueryNode(1)
	if np.ID != 1 || np.Platform != "hybrid-dsm" || np.FlopNs == 0 {
		t.Fatalf("QueryNode = %+v", np)
	}
}

func TestMonitorCounts(t *testing.T) {
	rt := newRT(t, platform.SMP, 2)
	e := rt.Env(0)
	e.Sync.NewLock()
	l := 0
	e.Sync.Lock(l)
	e.Sync.Unlock(l)
	if e.Mon.Calls(ModSync) != 3 {
		t.Fatalf("sync calls = %d, want 3", e.Mon.Calls(ModSync))
	}
	e.Mem.Probe() // uncharged (pure query)
	if _, err := e.Mem.Alloc(10, AllocOpts{}); err != nil {
		t.Fatal(err)
	}
	if e.Mon.Calls(ModMem) != 1 {
		t.Fatalf("mem calls = %d, want 1", e.Mon.Calls(ModMem))
	}
	if e.Mon.TotalCalls() != 4 {
		t.Fatalf("total = %d", e.Mon.TotalCalls())
	}
	e.Mon.Reset(ModSync)
	if e.Mon.Calls(ModSync) != 0 || e.Mon.Calls(ModMem) != 1 {
		t.Fatal("Reset must be per-module")
	}
	e.Mon.ResetAll()
	if e.Mon.TotalCalls() != 0 {
		t.Fatal("ResetAll failed")
	}
	if rep := e.Mon.Report(); rep == "" {
		t.Fatal("empty report")
	}
	if rep := ClusterReport(rt); rep == "" {
		t.Fatal("empty cluster report")
	}
}

func TestServiceCallsCostTime(t *testing.T) {
	rt := newRT(t, platform.SMP, 1)
	e := rt.Env(0)
	before := e.Now()
	e.Sync.NewLock()
	if e.Now() <= before {
		t.Fatal("service call must advance the clock (CallNs)")
	}
}

func TestConsFenceAndModels(t *testing.T) {
	rt := newRT(t, platform.SWDSM, 2)
	e := rt.Env(0)
	if e.Cons.Native() != Scope {
		t.Fatalf("native model = %v", e.Cons.Native())
	}
	if e.Cons.Supports(Sequential) {
		t.Fatal("a scope engine must not claim sequential consistency")
	}
	if !e.Cons.Supports(Scope) || !e.Cons.Supports(Entry) {
		t.Fatal("scope engine must support scope and weaker models")
	}
	if err := e.Cons.Require(Scope); err != nil {
		t.Fatalf("Require(Scope) on scope engine: %v", err)
	}
	if err := e.Cons.Require(Sequential); err == nil {
		t.Fatal("Require(Sequential) on scope engine must error")
	}
	r, _ := e.Mem.Alloc(memsim.PageSize, AllocOpts{Policy: memsim.Fixed, FixedNode: 1})
	e.Cons.SeqWriteF64(r.Base, 3.5)
	if got := e.Cons.SeqReadF64(r.Base); got != 3.5 {
		t.Fatalf("seq read = %v", got)
	}
	e.Cons.Fence()
	lk := e.Sync.NewLock()
	e.Cons.BindRegion(lk, r)
	if bs := e.Cons.Bindings(lk); len(bs) != 1 || bs[0] != r {
		t.Fatal("binding not recorded")
	}
}

func TestConsModelStrings(t *testing.T) {
	for m, want := range map[ConsModel]string{
		Sequential: "sequential", Processor: "processor",
		Release: "release", Scope: "scope", Entry: "entry",
	} {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestModuleStrings(t *testing.T) {
	for m, want := range map[Module]string{
		ModMem: "memory", ModCons: "consistency", ModSync: "synchronization",
		ModTask: "task", ModCluster: "cluster",
	} {
		if m.String() != want {
			t.Fatalf("module %d = %q", int(m), m.String())
		}
	}
}

func TestSeparateMessagingIsSlower(t *testing.T) {
	run := func(mode machine.MessagingMode) uint64 {
		rt, err := New(Config{Platform: platform.SWDSM, Nodes: 2, Messaging: mode})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		rt.Run(func(e *Env) {
			r, _ := e.Mem.Alloc(memsim.PageSize, AllocOpts{Name: "x", Policy: memsim.Fixed, Collective: true})
			for i := 0; i < 10; i++ {
				if e.ID() == 1 {
					e.WriteF64(r.Base, float64(i))
				}
				e.Sync.Barrier()
			}
		})
		return uint64(rt.MaxTime())
	}
	coal := run(machine.Coalesced)
	sep := run(machine.Separate)
	if coal >= sep {
		t.Fatalf("coalesced (%d) must beat separate (%d)", coal, sep)
	}
}

func TestIdenticalProgramAcrossPlatforms(t *testing.T) {
	// The §5.4 claim at the core-API level: one program, three platforms,
	// same numerical result.
	program := func(rt *Runtime) float64 {
		var region memsim.Region
		var lock int
		rt.Run(func(e *Env) {
			r, _ := e.Mem.Alloc(memsim.PageSize, AllocOpts{Name: "acc", Collective: true})
			if e.ID() == 0 {
				region = r
				lock = e.Sync.NewLock()
			}
			e.Sync.Barrier()
			partial := 0.0
			for i := e.ID(); i < 100; i += e.N() {
				partial += float64(i)
			}
			e.Sync.Lock(lock)
			e.WriteF64(r.Base, e.ReadF64(r.Base)+partial)
			e.Sync.Unlock(lock)
			e.Sync.Barrier()
		})
		e := rt.Env(0)
		e.Sync.Lock(lock)
		defer e.Sync.Unlock(lock)
		return e.ReadF64(region.Base)
	}
	want := 4950.0
	for _, kind := range []platform.Kind{platform.SMP, platform.HybridDSM, platform.SWDSM} {
		rt := newRT(t, kind, 4)
		if got := program(rt); got != want {
			t.Fatalf("%v: result = %v, want %v", kind, got, want)
		}
	}
}

func TestNewWithSubstrate(t *testing.T) {
	rtBase := newRT(t, platform.SMP, 2)
	rt := NewWithSubstrate(rtBase.Substrate(), machine.Default().BusLink(), false)
	if rt.Nodes() != 2 || rt.Env(1).ID() != 1 {
		t.Fatal("NewWithSubstrate wiring broken")
	}
}

func TestTimingHelpers(t *testing.T) {
	rt := newRT(t, platform.SMP, 1)
	e := rt.Env(0)
	start := e.Now()
	e.Compute(1_000_000)
	if e.Elapsed(start) == 0 {
		t.Fatal("Elapsed must reflect compute")
	}
	if rt.MaxTime() == 0 {
		t.Fatal("MaxTime zero after work")
	}
	if e.Runtime() != rt {
		t.Fatal("Runtime accessor broken")
	}
}

func TestTracingDetectsRace(t *testing.T) {
	rt := newRT(t, platform.SWDSM, 2)
	var region memsim.Region
	rt.Run(func(e *Env) {
		r, _ := e.Mem.Alloc(memsim.PageSize, AllocOpts{Name: "racy", Collective: true})
		if e.ID() == 0 {
			region = r
		}
	})
	rt.StartTrace()
	rt.Run(func(e *Env) {
		// Deliberate race: both nodes write the same word, no sync.
		e.WriteF64(region.Base, float64(e.ID()))
	})
	rep := rt.CheckConsistency()
	if rep.DRF() {
		t.Fatalf("racy program not flagged: %s", rep)
	}
}

func TestTracingCleanProgramIsDRF(t *testing.T) {
	rt := newRT(t, platform.SWDSM, 3)
	rt.StartTrace()
	var lock int
	rt.Run(func(e *Env) {
		r, _ := e.Mem.Alloc(memsim.PageSize, AllocOpts{Name: "clean", Collective: true})
		if e.ID() == 0 {
			lock = e.Sync.NewLock()
		}
		e.Sync.Barrier()
		for i := 0; i < 5; i++ {
			e.Sync.Lock(lock)
			e.WriteI64(r.Base, e.ReadI64(r.Base)+1)
			e.Sync.Unlock(lock)
		}
		e.Sync.Barrier()
		e.ReadI64(r.Base) // read after barrier: ordered
	})
	rep := rt.CheckConsistency()
	if !rep.DRF() {
		t.Fatalf("clean program flagged: %s", rep)
	}
	if rep.Events == 0 || rep.Words == 0 {
		t.Fatal("trace empty")
	}
	if len(rep.Lockset) != 0 {
		t.Fatalf("lockset warnings on disciplined program: %v", rep.Lockset)
	}
}

func TestTracingOffByDefault(t *testing.T) {
	rt := newRT(t, platform.SMP, 1)
	rt.Run(func(e *Env) {
		r, _ := e.Mem.Alloc(memsim.PageSize, AllocOpts{})
		e.WriteF64(r.Base, 1)
	})
	if rec := rt.StopTrace(); rec != nil {
		t.Fatal("tracing was on without StartTrace")
	}
	if rep := rt.CheckConsistency(); rep.Events != 0 {
		t.Fatal("report from disabled tracing must be empty")
	}
}

func TestSamplerCollectsEpochSeries(t *testing.T) {
	rt := newRT(t, platform.SWDSM, 2)
	sampler := rt.AttachSampler()
	rt.Run(func(e *Env) {
		r, _ := e.Mem.Alloc(memsim.PageSize, AllocOpts{Name: "s", Policy: memsim.Fixed, Collective: true})
		for it := 0; it < 3; it++ {
			if e.ID() == 1 {
				e.WriteF64(r.Base, float64(it))
			}
			e.Sync.Barrier()
		}
	})
	rt.DetachSampler()

	series := sampler.Series(1)
	// Three explicit loop barriers (the collective-alloc barrier is a
	// service-internal rendezvous and is not sampled).
	if len(series) != 3 {
		t.Fatalf("node 1 samples = %d, want 3", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].Epoch != series[i-1].Epoch+1 {
			t.Fatal("epochs not consecutive")
		}
		if series[i].At < series[i-1].At {
			t.Fatal("virtual time not monotone across epochs")
		}
	}
	// Node 1's activity (twins/diffs) must grow over the writing epochs.
	last := series[len(series)-1]
	if last.Stats.DiffsCreated == 0 {
		t.Fatal("sampler missed diff activity")
	}
	if last.Calls[ModSync] == 0 {
		t.Fatal("sampler missed module call counters")
	}
	if tl := sampler.Timeline(1); tl == "" {
		t.Fatal("empty timeline")
	}
	if got := len(sampler.Samples()); got != 6 {
		t.Fatalf("total samples = %d, want 6 (2 nodes x 3 epochs)", got)
	}
}

func TestSamplerDetached(t *testing.T) {
	rt := newRT(t, platform.SMP, 2)
	if rt.DetachSampler() != nil {
		t.Fatal("detach with no sampler must return nil")
	}
	rt.Run(func(e *Env) { e.Sync.Barrier() })
	// No panic, nothing sampled.
}

func TestThreadedModeSerializesSameNodeTasks(t *testing.T) {
	// Two tasks time-sharing one node must not corrupt substrate state:
	// they hammer DSM accesses concurrently under Threaded serialization.
	rt, err := New(Config{Platform: platform.SWDSM, Nodes: 2, Threaded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	e0 := rt.Env(0)
	r, _ := e0.Mem.Alloc(4*memsim.PageSize, AllocOpts{Name: "t", Policy: memsim.Fixed, FixedNode: 1})
	lock := e0.Sync.NewLock()

	var tasks []*Task
	for k := 0; k < 3; k++ {
		task, err := e0.Task.SpawnOn(0, func(e *Env) int64 {
			for i := 0; i < 50; i++ {
				e.Sync.Lock(lock)
				a := r.Base + memsim.Addr(8*(i%100))
				e.WriteI64(a, e.ReadI64(a)+1)
				e.Sync.Unlock(lock)
			}
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	for _, task := range tasks {
		e0.Task.Join(task)
	}
	// Validate totals.
	total := int64(0)
	e0.Sync.Lock(lock)
	for i := 0; i < 100; i++ {
		total += e0.ReadI64(r.Base + memsim.Addr(8*i))
	}
	e0.Sync.Unlock(lock)
	if total != 150 {
		t.Fatalf("total = %d, want 150", total)
	}
}
