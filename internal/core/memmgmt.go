package core

import (
	"fmt"

	"hamster/internal/memsim"
	"hamster/internal/platform"
)

// MemMgr is the Memory Management module (§4.2): global allocation with
// coherence constraints and distribution annotations, plus the capability
// test that lets models probe what the memory subsystem supports.
type MemMgr struct {
	e *Env
}

// AllocOpts parameterizes a global allocation — the service's flexibility
// knobs (§4.1) that let each model map its own allocation call directly.
type AllocOpts struct {
	// Name labels the region for diagnostics.
	Name string
	// Policy is the distribution annotation.
	Policy memsim.Policy
	// FixedNode is the target of the Fixed policy.
	FixedNode int
	// Collective makes the allocation SPMD-wide: every node calls, all
	// receive the same region, with an implicit barrier (the JiaJia/HLRC
	// and SPMD-model allocation style; TreadMarks instead allocates on one
	// node and calls Distribute).
	Collective bool
}

// Alloc reserves global shared memory.
func (m *MemMgr) Alloc(size uint64, opts AllocOpts) (memsim.Region, error) {
	m.e.charge(ModMem)
	if !m.Probe().SupportsPolicy(opts.Policy) {
		return memsim.Region{}, fmt.Errorf("core: substrate %v does not support %v placement",
			m.e.rt.sub.Kind(), opts.Policy)
	}
	if opts.Collective {
		return m.e.rt.collectiveAlloc(m.e, size, opts.Name, opts.Policy, opts.FixedNode)
	}
	return m.e.rt.sub.Alloc(size, opts.Name, opts.Policy, opts.FixedNode)
}

// Free releases a region. Not collective; models add their own semantics.
func (m *MemMgr) Free(r memsim.Region) error {
	m.e.charge(ModMem)
	return m.e.rt.sub.Free(r)
}

// Distribute announces a single-node allocation to all other nodes
// (TreadMarks-style: Tmk_malloc on one node, then Tmk_distribute). The
// region metadata travels as a broadcast over the cluster-control
// messaging layer.
func (m *MemMgr) Distribute(r memsim.Region) {
	m.e.charge(ModMem)
	payload := encodeRegion(r)
	m.e.rt.msgs.Broadcast(toNodeID(m.e.id), kindRegionAnnounce, 0, payload)
}

// AcceptRegion receives a region distributed by another node.
func (m *MemMgr) AcceptRegion() (memsim.Region, bool) {
	m.e.charge(ModMem)
	msg := m.e.rt.msgs.Recv(toNodeID(m.e.id), kindRegionAnnounce, nil)
	if msg == nil {
		return memsim.Region{}, false
	}
	r := decodeRegion(msg.Payload)
	msg.Free()
	return r, true
}

// Probe returns the substrate's memory-system capabilities — the
// "capability test routine" of §4.2.
func (m *MemMgr) Probe() platform.Caps {
	return m.e.rt.sub.Caps()
}

// Allocated reports the total live global memory.
func (m *MemMgr) Allocated() uint64 {
	return m.e.rt.sub.Space().Allocated()
}

// RegionOf looks up the region containing an address.
func (m *MemMgr) RegionOf(a memsim.Addr) (memsim.Region, bool) {
	return m.e.rt.sub.Space().RegionOf(a)
}
