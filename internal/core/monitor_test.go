package core

import (
	"strings"
	"testing"

	"hamster/internal/platform"
	"hamster/internal/vclock"
)

// The single Reset story: Monitor.ResetAll clears this node's module call
// counters, the substrate's activity counters, and the node's recorded
// protocol events — and never touches the virtual clock or its
// attribution.
func TestMonitorResetAllStory(t *testing.T) {
	rt := newRT(t, platform.SWDSM, 2)
	rt.Perf().Enable()
	rt.Run(func(e *Env) {
		e.Compute(1000)
		e.Sync.Barrier()
	})
	rt.Perf().Disable()

	m := rt.Env(0).Mon
	if m.TotalCalls() == 0 {
		t.Fatal("no module calls recorded before reset")
	}
	if m.Substrate().BarrierCrossings == 0 {
		t.Fatal("no substrate activity recorded before reset")
	}
	if rt.Perf().Len(0) == 0 {
		t.Fatal("no protocol events recorded before reset")
	}
	before := rt.Env(0).Now()
	bdBefore := m.TimeBreakdown()

	m.ResetAll()

	if got := m.TotalCalls(); got != 0 {
		t.Fatalf("module calls after ResetAll = %d, want 0", got)
	}
	if st := m.Substrate(); st.BarrierCrossings != 0 || st.Reads != 0 || st.Writes != 0 {
		t.Fatalf("substrate stats after ResetAll: %+v", st)
	}
	if got := rt.Perf().Len(0); got != 0 {
		t.Fatalf("protocol events after ResetAll = %d, want 0", got)
	}
	// Clocks are the simulation's timeline, not monitoring state.
	if got := rt.Env(0).Now(); got != before {
		t.Fatalf("ResetAll moved the clock: %d -> %d", before, got)
	}
	if got := m.TimeBreakdown(); got != bdBefore {
		t.Fatalf("ResetAll changed the attribution: %+v -> %+v", bdBefore, got)
	}

	// Node 1 is untouched by node 0's reset.
	if rt.Env(1).Mon.TotalCalls() == 0 {
		t.Fatal("ResetAll on node 0 cleared node 1's counters")
	}
	if rt.Perf().Len(1) == 0 {
		t.Fatal("ResetAll on node 0 cleared node 1's events")
	}

	// Reset(mod) stays narrow: one module's counter only.
	rt.Env(1).Mon.Reset(ModSync)
	if got := rt.Env(1).Mon.Calls(ModSync); got != 0 {
		t.Fatalf("Reset(ModSync) left %d calls", got)
	}
	if rt.Env(1).Mon.Substrate().BarrierCrossings == 0 {
		t.Fatal("Reset(mod) must not clear substrate stats")
	}
}

// The monitoring report includes the attribution block, and the breakdown
// it prints satisfies the exact-sum invariant.
func TestMonitorReportBreakdown(t *testing.T) {
	rt := newRT(t, platform.SWDSM, 2)
	rt.Run(func(e *Env) {
		e.Compute(1000)
		e.Sync.Barrier()
	})
	m := rt.Env(0).Mon
	bd := m.TimeBreakdown()
	if got, want := bd.Total(), vclock.Duration(rt.Env(0).Now()); got != want {
		t.Fatalf("breakdown sums to %d, clock is %d", got, want)
	}
	rep := m.Report()
	if !strings.Contains(rep, "time breakdown") || !strings.Contains(rep, "compute") {
		t.Fatalf("report missing attribution block:\n%s", rep)
	}
}
