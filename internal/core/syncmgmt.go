package core

import (
	"sync"

	"hamster/internal/conscheck"
	"hamster/internal/platform"
	"hamster/internal/vclock"
)

// rawLockTraceBase offsets raw-lock ids in traces so they never collide
// with consistency-lock ids.
const rawLockTraceBase = 1 << 20

// SyncMgr is the Synchronization Management module (§4.2): locks and
// barriers optimized for the base architecture, plus event signals from
// which model-specific constructs (condition variables, joins, semaphores)
// are assembled.
type SyncMgr struct {
	e *Env
}

// NewLock creates a global lock with full consistency semantics: acquiring
// it performs the substrate's consistency entry actions. Create locks
// before the parallel phase or from a single node; the returned id is
// valid cluster-wide. On a resumed runtime the first creations replay:
// the restored substrate already holds the snapshot's locks, so the call
// hands out their ids in creation order instead of growing the table.
func (s *SyncMgr) NewLock() int {
	s.e.charge(ModSync)
	rt := s.e.rt
	if rs := rt.resume; rs != nil {
		if idx := int(rt.resumeLockIdx.Add(1)) - 1; idx < rs.locks {
			return idx
		}
	}
	return rt.sub.NewLock()
}

// Lock acquires a consistency lock.
func (s *SyncMgr) Lock(id int) {
	s.e.charge(ModSync)
	s.e.rt.sub.Acquire(s.e.id, id)
	s.e.traceSync(conscheck.Acquire, id)
}

// Unlock releases a consistency lock.
func (s *SyncMgr) Unlock(id int) {
	s.e.charge(ModSync)
	s.e.traceSync(conscheck.Release, id)
	s.e.rt.sub.Release(s.e.id, id)
}

// Barrier crosses the global barrier (all nodes participate).
func (s *SyncMgr) Barrier() {
	s.e.charge(ModSync)
	s.e.traceSync(conscheck.Barrier, 0)
	s.e.rt.sub.Barrier(s.e.id)
	s.e.sampleBarrier()
	// The barrier is the consistent cut; the checkpoint coordinator (when
	// configured) counts crossings and captures here. Nil check only —
	// checkpointing off costs nothing on this path.
	if c := s.e.rt.ckpt; c != nil {
		c.AtBarrier(s.e.id)
	}
}

// syncCost returns the platform's sync-message cost for coordination that
// bypasses the consistency machinery.
func (s *SyncMgr) syncCost() vclock.Duration {
	p := s.e.rt.sub.Params()
	switch s.e.rt.sub.Kind() {
	case platform.SMP:
		return p.Bus.SyncNs
	case platform.HybridDSM:
		return p.SAN.SyncMsgNs
	default:
		return p.Ethernet.MsgCost(16)
	}
}

// NewRawLock creates a mutual-exclusion-only lock: no consistency actions,
// just serialization priced at the platform's sync cost. The paper's
// services are "highly parameterizable" (§4.1) — this is the
// consistency-free parameterization for models that manage consistency
// themselves.
func (s *SyncMgr) NewRawLock() int {
	s.e.charge(ModSync)
	rt := s.e.rt
	rt.rawMu.Lock()
	defer rt.rawMu.Unlock()
	id := len(rt.rawLocks)
	rt.rawLocks = append(rt.rawLocks, vclock.NewVLock())
	return id
}

func (s *SyncMgr) rawLock(id int) *vclock.VLock {
	rt := s.e.rt
	rt.rawMu.Lock()
	defer rt.rawMu.Unlock()
	return rt.rawLocks[id]
}

// RawLock acquires a mutual-exclusion-only lock. Raw locks order
// execution (and are traced as acquires on a disjoint id space) but
// perform no consistency actions.
func (s *SyncMgr) RawLock(id int) {
	s.e.charge(ModSync)
	s.rawLock(id).Acquire(s.e.rt.sub.Clock(s.e.id), s.syncCost(), 0)
	s.e.traceSync(conscheck.Acquire, rawLockTraceBase+id)
}

// RawUnlock releases a mutual-exclusion-only lock.
func (s *SyncMgr) RawUnlock(id int) {
	s.e.charge(ModSync)
	s.e.traceSync(conscheck.Release, rawLockTraceBase+id)
	s.rawLock(id).Release(s.e.rt.sub.Clock(s.e.id), s.syncCost())
}

// Event is a sticky cluster-wide event: once signaled, all current and
// future waiters proceed, with their clocks advanced past the signal time.
// Joins and completion notifications in the thread models build on it.
type Event struct {
	mu    sync.Mutex
	cond  *sync.Cond
	fired bool
	at    vclock.Time
}

// NewEvent creates an unfired event.
func (s *SyncMgr) NewEvent() *Event {
	s.e.charge(ModSync)
	ev := &Event{}
	ev.cond = sync.NewCond(&ev.mu)
	return ev
}

// Signal fires the event.
func (s *SyncMgr) Signal(ev *Event) {
	s.e.charge(ModSync)
	clk := s.e.rt.sub.Clock(s.e.id)
	clk.AdvanceCat(vclock.CatProtocol, s.syncCost())
	now := clk.Now()
	ev.mu.Lock()
	ev.fired = true
	if now > ev.at {
		ev.at = now
	}
	ev.cond.Broadcast()
	ev.mu.Unlock()
}

// Wait blocks until the event has fired.
func (s *SyncMgr) Wait(ev *Event) {
	s.e.charge(ModSync)
	ev.mu.Lock()
	for !ev.fired {
		ev.cond.Wait()
	}
	t := ev.at
	ev.mu.Unlock()
	clk := s.e.rt.sub.Clock(s.e.id)
	clk.AdvanceToCat(vclock.CatProtocol, t)
	clk.AdvanceCat(vclock.CatProtocol, s.syncCost())
}

// Fired reports whether the event has been signaled (non-blocking probe).
func (ev *Event) Fired() bool {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return ev.fired
}

// TryLock attempts Lock without blocking; true means the lock is held.
func (s *SyncMgr) TryLock(id int) bool {
	s.e.charge(ModSync)
	ok := s.e.rt.sub.TryAcquire(s.e.id, id)
	if ok {
		s.e.traceSync(conscheck.Acquire, id)
	}
	return ok
}

// CondVar is a cluster-wide condition variable: a non-sticky wait/notify
// primitive from which thread models assemble pthread_cond_t and Win32
// event semantics. Unlike Event, a signal only wakes waiters already
// waiting.
type CondVar struct {
	vc *vclock.VCond
}

// NewCond creates a condition variable.
func (s *SyncMgr) NewCond() *CondVar {
	s.e.charge(ModSync)
	return &CondVar{vc: vclock.NewVCond()}
}

// CondWait atomically releases the caller's mutex (via unlock), waits for
// a signal, and reacquires it (via relock) — the standard condition-wait
// contract. unlock/relock are callbacks so any mutex flavor (consistency
// lock, raw lock, model-level lock) composes.
func (s *SyncMgr) CondWait(cv *CondVar, unlock, relock func()) {
	s.e.charge(ModSync)
	clk := s.e.rt.sub.Clock(s.e.id)
	cv.vc.WaitWith(clk, s.syncCost(), unlock)
	relock()
}

// CondBroadcast wakes all current waiters.
func (s *SyncMgr) CondBroadcast(cv *CondVar) {
	s.e.charge(ModSync)
	cv.vc.Broadcast(s.e.rt.sub.Clock(s.e.id), s.syncCost())
}

// CondSignal wakes waiters. The virtual-time condition primitive wakes
// all current waiters per generation; single-wakeup semantics are
// recovered by the waiter's predicate loop, exactly as POSIX permits
// (spurious wakeups are allowed).
func (s *SyncMgr) CondSignal(cv *CondVar) {
	s.e.charge(ModSync)
	cv.vc.Broadcast(s.e.rt.sub.Clock(s.e.id), s.syncCost())
}

// Semaphore is a cluster-wide counting semaphore.
type Semaphore struct {
	vs *vclock.VSemaphore
}

// NewSemaphore creates a semaphore with an initial count and a maximum
// (0 = unbounded).
func (s *SyncMgr) NewSemaphore(initial, max int) *Semaphore {
	s.e.charge(ModSync)
	return &Semaphore{vs: vclock.NewVSemaphore(initial, max)}
}

// SemAcquire takes one unit, blocking while the count is zero.
func (s *SyncMgr) SemAcquire(sem *Semaphore) {
	s.e.charge(ModSync)
	sem.vs.Acquire(s.e.rt.sub.Clock(s.e.id), s.syncCost())
}

// SemTryAcquire takes one unit without blocking.
func (s *SyncMgr) SemTryAcquire(sem *Semaphore) bool {
	s.e.charge(ModSync)
	return sem.vs.TryAcquire(s.e.rt.sub.Clock(s.e.id), s.syncCost())
}

// SemRelease returns n units; false if the maximum would be exceeded.
func (s *SyncMgr) SemRelease(sem *Semaphore, n int) bool {
	s.e.charge(ModSync)
	return sem.vs.Release(s.e.rt.sub.Clock(s.e.id), n, s.syncCost())
}
