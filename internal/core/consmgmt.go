package core

import (
	"fmt"

	"hamster/internal/conscheck"
	"hamster/internal/memsim"
)

// ConsModel names a memory consistency model supported by the consistency
// API (§4.5): "optimized implementations of all widely used models".
type ConsModel int

// Supported consistency models, strongest first.
const (
	// Sequential: every access is globally ordered. Implemented by fencing
	// around accesses — correct everywhere, catastrophically slow on
	// loosely coupled systems (the ablation that motivates relaxed models).
	Sequential ConsModel = iota
	// Processor: writes from one processor are seen in order (SMP
	// hardware's native model).
	Processor
	// Release: consistency actions tied to acquire/release pairs.
	Release
	// Scope: release consistency restricted to the scope (lock) under
	// which modifications happened — JiaJia's native model.
	Scope
	// Entry: consistency restricted to data explicitly bound to the sync
	// object. Implemented on the scope machinery: per-lock write notices
	// already confine invalidations to the pages modified under the lock,
	// so binding data to its lock yields entry semantics.
	Entry
)

// String names the model.
func (m ConsModel) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case Processor:
		return "processor"
	case Release:
		return "release"
	case Scope:
		return "scope"
	case Entry:
		return "entry"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// ConsMgr is the Consistency Management module (§4.2, §4.5). In
// conjunction with the Synchronization module's constructs it recreates
// any relaxed consistency model a programming model needs.
type ConsMgr struct {
	e *Env
}

// Native returns the substrate's native consistency model.
func (c *ConsMgr) Native() ConsModel {
	switch c.e.rt.sub.Caps().ConsistencyModel {
	case "processor":
		return Processor
	case "release":
		return Release
	case "scope":
		return Scope
	default:
		return Release
	}
}

// Supports reports whether a software model can run on this substrate. A
// weaker software model always maps onto a stronger hardware model (§4.5);
// the substrate's sync-attached invalidation machinery covers the relaxed
// ones, and fencing covers Sequential.
func (c *ConsMgr) Supports(m ConsModel) bool {
	_ = m
	return true
}

// Acquire performs the consistency entry action of a sync object without
// taking the lock itself: stale copies covered by the object's write
// notices are discarded. Exposed for models (like shmem) that need
// one-sided consistency control.
func (c *ConsMgr) Acquire(lock int) {
	c.e.charge(ModCons)
	c.e.rt.sub.Acquire(c.e.id, lock)
	c.e.rt.sub.Release(c.e.id, lock)
}

// Fence enforces full local consistency: all local modifications become
// globally visible and all stale local copies are dropped. This is the
// strongest (and most expensive) consistency action.
func (c *ConsMgr) Fence() {
	c.e.charge(ModCons)
	c.e.traceSync(conscheck.Fence, 0)
	c.e.rt.sub.Fence(c.e.id)
}

// SeqReadF64 and SeqWriteF64 are the Sequential model's access path:
// fence, access, fence. Provided for completeness and for the consistency
// ablation; real codes use relaxed models.
func (c *ConsMgr) SeqReadF64(a memsim.Addr) float64 {
	c.e.rt.sub.Fence(c.e.id)
	return c.e.ReadF64(a)
}

// SeqWriteF64 is the Sequential model's write path.
func (c *ConsMgr) SeqWriteF64(a memsim.Addr, v float64) {
	c.e.WriteF64(a, v)
	c.e.rt.sub.Fence(c.e.id)
}

// BindRegion associates a region with a lock for Entry consistency. The
// binding is advisory on the scope substrates (their per-lock notices
// already confine invalidation); it is recorded so monitoring tools can
// verify the discipline.
func (c *ConsMgr) BindRegion(lock int, r memsim.Region) {
	c.e.charge(ModCons)
	rt := c.e.rt
	rt.bindMu.Lock()
	if rt.bindings == nil {
		rt.bindings = make(map[int][]memsim.Region)
	}
	rt.bindings[lock] = append(rt.bindings[lock], r)
	rt.bindMu.Unlock()
}

// Bindings returns the regions bound to a lock.
func (c *ConsMgr) Bindings(lock int) []memsim.Region {
	rt := c.e.rt
	rt.bindMu.Lock()
	defer rt.bindMu.Unlock()
	return append([]memsim.Region(nil), rt.bindings[lock]...)
}
