package core

import (
	"fmt"

	"hamster/internal/conscheck"
	"hamster/internal/consengine"
	"hamster/internal/memsim"
)

// ConsModel names a memory consistency model supported by the consistency
// API (§4.5): "optimized implementations of all widely used models". It
// is the engine layer's model type; see consengine.Model for the
// strongest-first ordering contract.
type ConsModel = consengine.Model

// Supported consistency models, strongest first.
const (
	// Sequential: every access is globally ordered. The IVY engine
	// provides it natively; on relaxed engines it exists only through
	// explicit fencing (SeqReadF64/SeqWriteF64).
	Sequential = consengine.Sequential
	// Processor: writes from one processor are seen in order (SMP
	// hardware's native model).
	Processor = consengine.Processor
	// Release: consistency actions tied to acquire/release pairs.
	Release = consengine.Release
	// Scope: release consistency restricted to the scope (lock) under
	// which modifications happened — JiaJia's native model.
	Scope = consengine.Scope
	// Entry: consistency restricted to data explicitly bound to the sync
	// object (provided by the scope machinery's per-lock notices).
	Entry = consengine.Entry
)

// ConsMgr is the Consistency Management module (§4.2, §4.5). In
// conjunction with the Synchronization module's constructs it recreates
// any relaxed consistency model a programming model needs.
type ConsMgr struct {
	e *Env
}

// Native returns the active engine's declared consistency model: the
// engine's own declaration when the substrate is a consistency engine,
// else the substrate's capability string.
func (c *ConsMgr) Native() ConsModel {
	m, _ := declaredModel(c.e.rt.sub)
	return m
}

// Supports reports whether the active engine provides a model at least
// as strong as m for data-race-free programs. A request the engine
// cannot honor returns false — it is NOT silently mapped onto weaker
// semantics; use Require for a descriptive error, or the explicit
// fencing accessors (SeqReadF64/SeqWriteF64) to buy Sequential behavior
// access-by-access on a relaxed engine.
func (c *ConsMgr) Supports(m ConsModel) bool {
	return c.Native().AtLeast(m)
}

// Require fails with a descriptive setup error when the active engine's
// declared model is weaker than m. Programming models with a fixed model
// contract call this once at initialization, so a misconfigured run
// stops before computing anything under silently weaker semantics.
func (c *ConsMgr) Require(m ConsModel) error {
	native, name := declaredModel(c.e.rt.sub)
	if !native.AtLeast(m) {
		return fmt.Errorf("core: consistency model %v requires a stronger engine: %s declares %v (select one with Config.Engine, e.g. %q for sequential consistency)",
			m, name, native, consengine.IVYName)
	}
	return nil
}

// Acquire performs the consistency entry action of a sync object without
// taking the lock itself: stale copies covered by the object's write
// notices are discarded. Exposed for models (like shmem) that need
// one-sided consistency control.
func (c *ConsMgr) Acquire(lock int) {
	c.e.charge(ModCons)
	c.e.rt.sub.Acquire(c.e.id, lock)
	c.e.rt.sub.Release(c.e.id, lock)
}

// Fence enforces full local consistency: all local modifications become
// globally visible and all stale local copies are dropped. This is the
// strongest (and most expensive) consistency action.
func (c *ConsMgr) Fence() {
	c.e.charge(ModCons)
	c.e.traceSync(conscheck.Fence, 0)
	c.e.rt.sub.Fence(c.e.id)
}

// SeqReadF64 and SeqWriteF64 are the Sequential model's access path on a
// relaxed engine: fence, access, fence. Provided for completeness and for
// the consistency ablation; real codes use relaxed models (or the IVY
// engine, which is sequentially consistent without fencing).
func (c *ConsMgr) SeqReadF64(a memsim.Addr) float64 {
	c.e.rt.sub.Fence(c.e.id)
	return c.e.ReadF64(a)
}

// SeqWriteF64 is the Sequential model's write path.
func (c *ConsMgr) SeqWriteF64(a memsim.Addr, v float64) {
	c.e.WriteF64(a, v)
	c.e.rt.sub.Fence(c.e.id)
}

// BindRegion associates a region with a lock for Entry consistency. The
// binding is advisory on the scope substrates (their per-lock notices
// already confine invalidation); it is recorded so monitoring tools can
// verify the discipline.
func (c *ConsMgr) BindRegion(lock int, r memsim.Region) {
	c.e.charge(ModCons)
	rt := c.e.rt
	rt.bindMu.Lock()
	if rt.bindings == nil {
		rt.bindings = make(map[int][]memsim.Region)
	}
	rt.bindings[lock] = append(rt.bindings[lock], r)
	rt.bindMu.Unlock()
}

// Bindings returns the regions bound to a lock.
func (c *ConsMgr) Bindings(lock int) []memsim.Region {
	rt := c.e.rt
	rt.bindMu.Lock()
	defer rt.bindMu.Unlock()
	return append([]memsim.Region(nil), rt.bindings[lock]...)
}
