package core

// Checkpoint/restart wiring: the Cluster Control half of fault tolerance.
// The coordinator itself lives in internal/checkpoint; this file connects
// it to the runtime — construction from Config, the barrier hook, the
// model-level state registry, and NewResumed, which rebuilds a runtime
// from a materialized snapshot chain through the same construction path
// as a fresh boot (the unified-startup requirement of §3.3).

import (
	"fmt"
	"sort"

	"hamster/internal/amsg"
	"hamster/internal/checkpoint"
	"hamster/internal/memsim"
	"hamster/internal/perfmon"
	"hamster/internal/vclock"
)

// resumeState carries the parts of a restored snapshot the program replays
// into rather than reads back: collective allocations and lock creations
// return the restored objects (in program order), and registered
// model-level state is handed to its restore callback at registration.
type resumeState struct {
	regions []memsim.Region
	locks   int
	app     [][][]byte // [node][registration order]
}

// attachCheckpointer builds the checkpoint coordinator for a runtime whose
// Config enables it. Only the software DSM has the page-granular capture
// surface; other substrates reject the configuration.
func (rt *Runtime) attachCheckpointer() error {
	type ckptSub interface {
		checkpoint.Provider
		Layer() *amsg.Layer
	}
	sub, ok := rt.sub.(ckptSub)
	if !ok {
		return fmt.Errorf("core: checkpointing requires the software DSM substrate, not %v", rt.sub.Kind())
	}
	p := rt.sub.Params()
	c, err := checkpoint.NewCoordinator(checkpoint.Options{
		Every:       rt.cfg.CheckpointEvery,
		Incremental: rt.cfg.CheckpointIncremental,
		Sink:        rt.cfg.CheckpointSink,
		Keep:        rt.cfg.CheckpointKeep,
		PageCopyNs:  p.CPU.PageCopyNs,
		DiffScanNs:  p.CPU.DiffScanNs,
		AppState:    func(node int) [][]byte { return rt.envs[node].appState() },
	}, sub, sub.Layer(), substrateClocks(rt.sub), rt.perf)
	if err != nil {
		return err
	}
	rt.ckpt = c
	return nil
}

// Checkpoints returns the checkpoint coordinator, or nil when Config did
// not enable checkpointing.
func (rt *Runtime) Checkpoints() *checkpoint.Coordinator { return rt.ckpt }

// RegisterCheckpointable registers model-level state with the checkpoint
// subsystem: save is called at every capture (on this node's goroutine, at
// the quiescent cut), and on a resumed runtime restore is called once,
// right here, with the captured blob. Returns whether state was restored —
// the program's signal to skip already-completed work. Registration order
// must match between the original and resumed run (same binary, same
// calls), exactly like collective allocation. Registration itself costs no
// virtual time: with checkpointing disabled it is pure bookkeeping and
// modeled times are untouched.
func (e *Env) RegisterCheckpointable(name string, save func() []byte, restore func([]byte)) bool {
	if save == nil {
		panic(fmt.Sprintf("core: RegisterCheckpointable(%q) needs a save function", name))
	}
	idx := len(e.ckptSaves)
	e.ckptSaves = append(e.ckptSaves, save)
	if rs := e.rt.resume; rs != nil && e.id < len(rs.app) && idx < len(rs.app[e.id]) && restore != nil {
		restore(rs.app[e.id][idx])
		return true
	}
	return false
}

// appState collects the node's registered state blobs, in registration
// order (the coordinator's AppState hook).
func (e *Env) appState() [][]byte {
	if len(e.ckptSaves) == 0 {
		return nil
	}
	out := make([][]byte, len(e.ckptSaves))
	for i, f := range e.ckptSaves {
		out[i] = f()
	}
	return out
}

// NewResumed builds a runtime and rolls it forward to a materialized
// snapshot: address space and page table, home frames, protocol metadata,
// cached-page sets, locks, and per-node clocks are restored before any
// node goroutine exists, and the replay registries (collective
// allocations, lock creations, registered model state) are primed so the
// program's setup calls return the restored objects. rs == nil is a plain
// New — recovery with no checkpoint yet restarts from scratch through the
// identical path. The restore itself is charged as modeled memory time
// (one page copy per restored page) on top of the captured clocks.
func NewResumed(cfg Config, rs *checkpoint.RestoreSet) (*Runtime, error) {
	rt, err := New(cfg)
	if err != nil || rs == nil {
		return rt, err
	}
	prov, ok := rt.sub.(checkpoint.Provider)
	if !ok {
		rt.Close()
		return nil, fmt.Errorf("core: restore requires the software DSM substrate, not %v", rt.sub.Kind())
	}
	if err := prov.Space().Restore(rs.Space); err != nil {
		rt.Close()
		return nil, err
	}
	app := make([][][]byte, len(rs.Nodes))
	for node, nr := range rs.Nodes {
		pages := make([]memsim.PageID, 0, len(nr.Pages))
		for p := range nr.Pages {
			pages = append(pages, p)
		}
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		for _, p := range pages {
			prov.WritePage(node, p, nr.Pages[p])
		}
		prov.RestoreProtocolState(node, nr.Epoch)
		app[node] = nr.App
	}
	prov.EnsureLocks(rs.Locks)
	// Cache repopulation reads home frames, so it runs only after every
	// node's pages are installed.
	for node, nr := range rs.Nodes {
		prov.RestoreCached(node, nr.Cached)
	}
	pageCopy := rt.sub.Params().CPU.PageCopyNs
	for node, nr := range rs.Nodes {
		clk := rt.sub.Clock(node)
		clk.Restore(nr.Clock)
		clk.AdvanceCat(vclock.CatMemory, pageCopy*vclock.Duration(len(nr.Pages)))
		if rt.perf != nil && rt.perf.Enabled() {
			rt.perf.Record(node, perfmon.EvRestore, clk.Now(), 0, rs.Seq, uint64(len(nr.Pages)))
		}
	}
	rt.resume = &resumeState{
		regions: append([]memsim.Region(nil), rs.Space.Regions...),
		locks:   rs.Locks,
		app:     app,
	}
	if rt.ckpt != nil {
		rt.ckpt.Seed(rs)
	}
	return rt, nil
}
