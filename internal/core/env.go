package core

import (
	"sync"
	"sync/atomic"

	"hamster/internal/conscheck"
	"hamster/internal/memsim"
	"hamster/internal/vclock"
)

// Module identifies one management module for monitoring purposes.
type Module int

// The five HAMSTER management modules (§4.2).
const (
	ModMem Module = iota
	ModCons
	ModSync
	ModTask
	ModCluster
	moduleCount
)

// String names the module.
func (m Module) String() string {
	switch m {
	case ModMem:
		return "memory"
	case ModCons:
		return "consistency"
	case ModSync:
		return "synchronization"
	case ModTask:
		return "task"
	case ModCluster:
		return "cluster"
	default:
		return "unknown"
	}
}

// Env is one node's handle on the HAMSTER interface: the five service
// modules plus monitoring and raw global-memory access.
//
// Memory accesses are raw — once global memory is established, loads and
// stores hit the (simulated) hardware directly with no middleware on the
// path, exactly as in the real framework. Only service calls pay the thin
// per-call dispatch cost evaluated in Figure 2.
type Env struct {
	rt      *Runtime
	id      int
	serial  *sync.Mutex // non-nil in Threaded mode
	collIdx int

	calls  [moduleCount]atomic.Uint64
	epochs uint64 // barrier crossings observed by the sampler

	// ckptSaves holds the node's registered checkpointable-state readers,
	// in registration order. Touched only from this node's goroutine.
	ckptSaves []func() []byte

	// reportSections holds workload-registered report extensions, in
	// registration order. Touched only from this node's goroutine;
	// rendered at quiescence by Monitor.Report.
	reportSections []reportSection

	// The service modules.
	Mem     *MemMgr
	Cons    *ConsMgr
	Sync    *SyncMgr
	Task    *TaskMgr
	Cluster *ClusterCtl
	Mon     *Monitor
}

func newEnv(rt *Runtime, id int) *Env {
	e := &Env{rt: rt, id: id}
	if rt.cfg.Threaded {
		e.serial = &sync.Mutex{}
	}
	e.Mem = &MemMgr{e: e}
	e.Cons = &ConsMgr{e: e}
	e.Sync = &SyncMgr{e: e}
	e.Task = &TaskMgr{e: e}
	e.Cluster = &ClusterCtl{e: e}
	e.Mon = &Monitor{e: e}
	return e
}

// ID returns the node index.
func (e *Env) ID() int { return e.id }

// N returns the cluster size.
func (e *Env) N() int { return e.rt.sub.Nodes() }

// charge records one service call for module m and pays the thin-layer
// dispatch cost.
func (e *Env) charge(m Module) {
	e.calls[m].Add(1)
	e.rt.sub.Clock(e.id).Advance(e.rt.sub.Params().CPU.CallNs)
}

func (e *Env) lockSerial() {
	if e.serial != nil {
		e.serial.Lock()
	}
}

func (e *Env) unlockSerial() {
	if e.serial != nil {
		e.serial.Unlock()
	}
}

// ReadF64 reads one float64 from global memory.
func (e *Env) ReadF64(a memsim.Addr) float64 {
	e.traceAccess(conscheck.Read, a)
	e.lockSerial()
	v := e.rt.sub.ReadF64(e.id, a)
	e.unlockSerial()
	return v
}

// WriteF64 writes one float64 to global memory.
func (e *Env) WriteF64(a memsim.Addr, v float64) {
	e.traceAccess(conscheck.Write, a)
	e.lockSerial()
	e.rt.sub.WriteF64(e.id, a, v)
	e.unlockSerial()
}

// ReadI64 reads one int64 from global memory.
func (e *Env) ReadI64(a memsim.Addr) int64 {
	e.traceAccess(conscheck.Read, a)
	e.lockSerial()
	v := e.rt.sub.ReadI64(e.id, a)
	e.unlockSerial()
	return v
}

// WriteI64 writes one int64 to global memory.
func (e *Env) WriteI64(a memsim.Addr, v int64) {
	e.traceAccess(conscheck.Write, a)
	e.lockSerial()
	e.rt.sub.WriteI64(e.id, a, v)
	e.unlockSerial()
}

// ReadF64Block reads a contiguous float64 run through the substrate's
// bulk fast path. Modeled cost and consistency actions are identical to
// the per-word loop; only the real (simulator) cost is amortized.
func (e *Env) ReadF64Block(a memsim.Addr, dst []float64) {
	e.traceBlock(conscheck.Read, a, len(dst))
	e.lockSerial()
	e.rt.sub.ReadF64Block(e.id, a, dst)
	e.unlockSerial()
}

// WriteF64Block writes a contiguous float64 run through the bulk path.
func (e *Env) WriteF64Block(a memsim.Addr, src []float64) {
	e.traceBlock(conscheck.Write, a, len(src))
	e.lockSerial()
	e.rt.sub.WriteF64Block(e.id, a, src)
	e.unlockSerial()
}

// ReadI64Block reads a contiguous int64 run through the bulk path.
func (e *Env) ReadI64Block(a memsim.Addr, dst []int64) {
	e.traceBlock(conscheck.Read, a, len(dst))
	e.lockSerial()
	e.rt.sub.ReadI64Block(e.id, a, dst)
	e.unlockSerial()
}

// WriteI64Block writes a contiguous int64 run through the bulk path.
func (e *Env) WriteI64Block(a memsim.Addr, src []int64) {
	e.traceBlock(conscheck.Write, a, len(src))
	e.lockSerial()
	e.rt.sub.WriteI64Block(e.id, a, src)
	e.unlockSerial()
}

// ReadBytes copies a global span into buf.
func (e *Env) ReadBytes(a memsim.Addr, buf []byte) {
	e.traceAccess(conscheck.Read, a)
	e.lockSerial()
	e.rt.sub.ReadBytes(e.id, a, buf)
	e.unlockSerial()
}

// WriteBytes copies data into a global span.
func (e *Env) WriteBytes(a memsim.Addr, data []byte) {
	e.traceAccess(conscheck.Write, a)
	e.lockSerial()
	e.rt.sub.WriteBytes(e.id, a, data)
	e.unlockSerial()
}

// Compute charges flops of local CPU work.
func (e *Env) Compute(flops uint64) {
	e.rt.sub.Compute(e.id, flops)
}

// Now returns this node's virtual time. Part of the platform-independent
// timing support of §4.4.
func (e *Env) Now() vclock.Time {
	return e.rt.sub.Clock(e.id).Now()
}

// Elapsed returns the virtual time since a previous Now.
func (e *Env) Elapsed(since vclock.Time) vclock.Duration {
	return vclock.Since(since, e.Now())
}

// Runtime returns the owning runtime.
func (e *Env) Runtime() *Runtime { return e.rt }

// reportSection is one workload-registered extension of the node's
// monitoring report.
type reportSection struct {
	title  string
	render func() string
}

// AddReportSection registers a workload-specific section appended to
// this node's Monitor.Report output. The render callback runs at
// quiescence (report time), so it may read state the workload is still
// mutating during the run. Call only from this node's goroutine, like
// checkpoint registration.
func (e *Env) AddReportSection(title string, render func() string) {
	e.reportSections = append(e.reportSections, reportSection{title: title, render: render})
}
