package core

import (
	"sync"
	"sync/atomic"

	"hamster/internal/conscheck"
	"hamster/internal/memsim"
)

// TraceRecorder collects an execution trace for the consistency checker
// (internal/conscheck) — the §6 "formal mechanism for reasoning about
// memory consistency". Recording is global-order: events are appended
// under one mutex, so the trace order is consistent with the
// synchronization that actually happened.
type TraceRecorder struct {
	mu     sync.Mutex
	events []conscheck.Event
}

// Events returns the recorded trace.
func (t *TraceRecorder) Events() []conscheck.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]conscheck.Event, len(t.events))
	copy(out, t.events)
	return out
}

func (t *TraceRecorder) record(ev conscheck.Event) {
	t.mu.Lock()
	ev.Seq = len(t.events)
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// tracer is attached to the runtime; nil means tracing is off (the hot
// path pays one atomic load).
type tracerSlot = atomic.Pointer[TraceRecorder]

// StartTrace enables consistency tracing and returns the recorder. Call
// before the traced parallel phase; tracing is intended for
// verification-sized runs.
func (rt *Runtime) StartTrace() *TraceRecorder {
	t := &TraceRecorder{}
	rt.tracer.Store(t)
	return t
}

// StopTrace disables tracing and returns the recorder (nil if tracing was
// never started).
func (rt *Runtime) StopTrace() *TraceRecorder {
	t := rt.tracer.Swap(nil)
	return t
}

// CheckConsistency stops tracing and runs the conscheck analyses over the
// recorded trace.
func (rt *Runtime) CheckConsistency() conscheck.Report {
	t := rt.StopTrace()
	if t == nil {
		return conscheck.Report{}
	}
	return conscheck.Analyze(t.Events(), rt.Nodes())
}

// traceAccess records one word access if tracing is on.
func (e *Env) traceAccess(kind conscheck.Kind, a memsim.Addr) {
	t := e.rt.tracer.Load()
	if t == nil {
		return
	}
	t.record(conscheck.Event{
		Node: e.id,
		Kind: kind,
		Addr: a - a%memsim.WordSize,
	})
}

// traceBlock records a block access as its per-word events if tracing is
// on — the checker sees exactly the trace the equivalent word loop would
// produce, so block accesses participate in race detection word by word.
func (e *Env) traceBlock(kind conscheck.Kind, a memsim.Addr, words int) {
	t := e.rt.tracer.Load()
	if t == nil {
		return
	}
	a -= a % memsim.WordSize
	for i := 0; i < words; i++ {
		t.record(conscheck.Event{
			Node: e.id,
			Kind: kind,
			Addr: a + memsim.Addr(i*memsim.WordSize),
		})
	}
}

// traceSync records a synchronization event if tracing is on.
func (e *Env) traceSync(kind conscheck.Kind, lock int) {
	t := e.rt.tracer.Load()
	if t == nil {
		return
	}
	t.record(conscheck.Event{Node: e.id, Kind: kind, Lock: lock})
}
