package core

import (
	"strings"
	"testing"

	"hamster/internal/consengine"
	"hamster/internal/machine"
	"hamster/internal/memsim"
	"hamster/internal/platform"
	"hamster/internal/swdsm"
)

func TestEngineSelection(t *testing.T) {
	for _, tc := range []struct {
		engine string
		want   ConsModel
		name   string
	}{
		{"", Scope, "scope"},
		{"scope", Scope, "scope"},
		{"eager-rc", Release, "eager-rc"},
		{"ivy", Sequential, "ivy"},
	} {
		rt, err := New(Config{Platform: platform.SWDSM, Nodes: 2, Engine: tc.engine})
		if err != nil {
			t.Fatalf("Engine %q: %v", tc.engine, err)
		}
		if got := rt.Env(0).Cons.Native(); got != tc.want {
			t.Fatalf("Engine %q: native model = %v, want %v", tc.engine, got, tc.want)
		}
		eng, ok := rt.Substrate().(consengine.Engine)
		if !ok {
			t.Fatalf("Engine %q: substrate is not a consengine.Engine", tc.engine)
		}
		if eng.EngineName() != tc.name {
			t.Fatalf("Engine %q: EngineName = %q, want %q", tc.engine, eng.EngineName(), tc.name)
		}
		rt.Close()
	}
}

func TestEngineSelectionSeparateMessaging(t *testing.T) {
	rt, err := New(Config{Platform: platform.SWDSM, Nodes: 2, Engine: "ivy",
		Messaging: machine.Separate})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.AMsg() == nil {
		t.Fatal("separate-messaging ivy must expose its private amsg layer")
	}
	e := rt.Env(0)
	r, err := e.Mem.Alloc(memsim.PageSize, AllocOpts{Policy: memsim.Fixed, FixedNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.WriteF64(r.Base, 2.5)
	if got := rt.Env(1).ReadF64(r.Base); got != 2.5 {
		t.Fatalf("cross-node read = %v", got)
	}
}

func TestEngineValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		frag string
	}{
		{"unknown name", Config{Platform: platform.SWDSM, Nodes: 2, Engine: "tso"}, "tso"},
		{"non-DSM platform", Config{Platform: platform.SMP, Nodes: 2, Engine: "ivy"}, "software DSM"},
		{"ivy+checkpoint", Config{Platform: platform.SWDSM, Nodes: 2, Engine: "ivy", CheckpointEvery: 4}, "checkpointing"},
		{"ivy+aggregation", Config{Platform: platform.SWDSM, Nodes: 2, Engine: "ivy",
			SWDSMAggregation: swdsm.Aggregation{Batch: true}}, "aggregation"},
		{"ivy+migration", Config{Platform: platform.SWDSM, Nodes: 2, Engine: "ivy", SWDSMMigrateAfter: 3}, "home migration"},
		{"ivy+cachecap", Config{Platform: platform.SWDSM, Nodes: 2, Engine: "ivy", SWDSMCachePages: 8}, "cache-page cap"},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if err == nil {
			t.Fatalf("%s: expected a setup error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
}

func TestRequireModel(t *testing.T) {
	// A sequential requirement on the default (scope) engine must fail at
	// setup — not silently run under weaker semantics.
	_, err := New(Config{Platform: platform.SWDSM, Nodes: 2, RequireModel: "sequential"})
	if err == nil {
		t.Fatal("RequireModel sequential on the scope engine must fail")
	}
	if !strings.Contains(err.Error(), "scope") || !strings.Contains(err.Error(), "sequential") {
		t.Fatalf("error %q must name both models", err)
	}
	// The same requirement is satisfiable by selecting the ivy engine.
	rt, err := New(Config{Platform: platform.SWDSM, Nodes: 2, Engine: "ivy", RequireModel: "sequential"})
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	// Weaker requirements pass on the default engine.
	rt, err = New(Config{Platform: platform.SWDSM, Nodes: 2, RequireModel: "entry"})
	if err != nil {
		t.Fatal(err)
	}
	rt.Close()
	// Unknown model names are rejected with the valid set.
	if _, err := New(Config{Platform: platform.SWDSM, Nodes: 2, RequireModel: "causal"}); err == nil {
		t.Fatal("unknown RequireModel must fail")
	}
}

func TestRequireOnSMP(t *testing.T) {
	rt := newRT(t, platform.SMP, 2)
	c := rt.Env(0).Cons
	if c.Native() != Processor {
		t.Fatalf("SMP native = %v", c.Native())
	}
	if err := c.Require(Release); err != nil {
		t.Fatalf("Require(Release) on SMP: %v", err)
	}
	if err := c.Require(Sequential); err == nil {
		t.Fatal("Require(Sequential) on SMP must error")
	}
}

func TestIVYEngineEndToEnd(t *testing.T) {
	rt, err := New(Config{Platform: platform.SWDSM, Nodes: 4, Engine: "ivy"})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var r memsim.Region
	rt.Run(func(e *Env) {
		got, aerr := e.Mem.Alloc(4*memsim.PageSize, AllocOpts{Name: "v", Policy: memsim.Block, Collective: true})
		if aerr != nil {
			panic(aerr)
		}
		if e.ID() == 0 {
			r = got
		}
		// Each node writes its stripe, then everyone sums the lot.
		base := got.Base + memsim.Addr(e.ID())*memsim.PageSize
		for w := 0; w < 8; w++ {
			e.WriteF64(base+memsim.Addr(w*8), float64(e.ID()*8+w))
		}
		e.Sync.Barrier()
		var sum float64
		for p := 0; p < 4; p++ {
			for w := 0; w < 8; w++ {
				sum += e.ReadF64(got.Base + memsim.Addr(p)*memsim.PageSize + memsim.Addr(w*8))
			}
		}
		if sum != 496 { // 0+1+...+31
			panic("bad sum")
		}
	})
	if r.Size == 0 {
		t.Fatal("allocation did not happen")
	}
}
