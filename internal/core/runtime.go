// Package core implements the HAMSTER middleware: the five orthogonal
// management modules (§4.2) — Memory, Consistency, Synchronization, Task,
// and Cluster Control management — plus per-module performance monitoring
// (§4.3) and platform-independent timing, all on top of an exchangeable
// base architecture (package platform).
//
// Programming models (package models/...) are thin layers over these
// services: most API calls map directly onto one parameterized service
// call, which is what keeps the per-model implementation effort of Table 2
// in the tens of lines per call.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hamster/internal/amsg"
	"hamster/internal/checkpoint"
	"hamster/internal/consengine"
	"hamster/internal/hybriddsm"
	"hamster/internal/ivy"
	"hamster/internal/machine"
	"hamster/internal/memsim"
	"hamster/internal/perfmon"
	"hamster/internal/platform"
	"hamster/internal/simnet"
	"hamster/internal/smp"
	"hamster/internal/swdsm"
	"hamster/internal/vclock"
)

// Config selects and parameterizes the base architecture. This is the
// "configuration file" of §5.4: changing only this between runs retargets
// identical application binaries across platforms.
type Config struct {
	// Platform picks the base architecture.
	Platform platform.Kind
	// Nodes is the cluster size (or CPU count on SMP).
	Nodes int
	// Params is the cost model; zero value means machine.Default().
	Params machine.Params
	// Messaging selects the §3.3 integration mode. Coalesced (default) is
	// HAMSTER's single shared messaging layer; Separate models
	// unintegrated stacks competing for the NIC and exists for the
	// native-execution baseline and the messaging ablation.
	Messaging machine.MessagingMode
	// Threaded enables same-node task concurrency (thread programming
	// models): substrate access is then serialized per node, modeling
	// threads time-sharing one CPU.
	Threaded bool
	// ParallelNodes gates queued-message delivery on a conservative
	// lookahead engine (vclock.Engine over the user-messaging network):
	// a node consumes a message only once no peer can still produce an
	// earlier virtual arrival, making delivery order a pure function of
	// virtual time — Chandy–Misra–Bryant-style conservative parallel
	// execution — instead of relying on receive-filter discipline. Off,
	// the free-running scheduler is the sequential reference path; the
	// two are pinned identical on virtual times, checksums, stats, and
	// perfmon streams by the bench identity gates. Incompatible with
	// Threaded: co-located tasks can send mid-receive, which breaks the
	// engine's blocked-receiver bound.
	ParallelNodes bool

	// Engine selects the software DSM's consistency engine: "" or "scope"
	// (the default home-based scope-consistency protocol), "eager-rc"
	// (eager release consistency on the same twin/diff machinery), or
	// "ivy" (write-invalidate with distributed dynamic ownership —
	// sequentially consistent). Software DSM only. The IVY engine has no
	// twins, diffs, or barrier epochs, so checkpointing, protocol
	// aggregation, home migration, and the cache-page cap are rejected
	// with it rather than silently ignored.
	Engine string
	// Topology names the simulated switch fabric: "" or "flat" (the
	// all-to-all legacy network, bit-identical to the pre-topology
	// fabric), "rack" (top-of-rack switches, 4:1 oversubscribed uplinks),
	// or "fattree" (three switch tiers, full bisection bandwidth). See
	// simnet.TopologyPreset. Software DSM only — the SMP bus and the
	// hybrid SAN have no switch fabric to shape. Above hsync.Threshold
	// nodes the DSM also switches to tree barriers and distributed lock
	// queues aligned with the topology.
	Topology string
	// RequireModel, when non-empty, names the weakest consistency model
	// the program needs ("sequential", "processor", "release", "scope",
	// "entry"). New fails with a descriptive error when the selected
	// engine declares a weaker model, instead of silently running the
	// program under weaker semantics.
	RequireModel string

	// SWDSMCachePages caps the software DSM's per-node page cache.
	SWDSMCachePages int
	// SWDSMMigrateAfter enables the software DSM's home migration after
	// that many consecutive single-writer intervals (0 = off).
	SWDSMMigrateAfter int
	// SWDSMAggregation configures the software DSM's protocol aggregation
	// layer (batched diff flush, notice piggybacking, adaptive prefetch).
	// The zero value is off and bit-identical to the baseline protocol.
	SWDSMAggregation swdsm.Aggregation
	// HybridCacheThreshold tunes the hybrid DSM's read-caching trigger
	// (negative disables caching).
	HybridCacheThreshold int
	// HybridDisablePostedWrites makes hybrid remote writes synchronous.
	HybridDisablePostedWrites bool

	// PerfEventCap overrides the per-node capacity of the protocol event
	// recorder (0 = perfmon.DefaultCapacity). The recorder is always
	// attached but starts disabled; enable it with Runtime.Perf().Enable().
	PerfEventCap int

	// CheckpointEvery enables coordinated checkpointing: a consistent
	// snapshot at every Nth framework barrier (0 = off — no hook is
	// installed and no cost of any kind exists). Software DSM only.
	CheckpointEvery int
	// CheckpointIncremental switches captures after the first to
	// dirty-page deltas against the previous epoch.
	CheckpointIncremental bool
	// CheckpointSink overrides the snapshot store (nil = an in-memory
	// ring of the last CheckpointKeep epochs).
	CheckpointSink checkpoint.Sink
	// CheckpointKeep bounds the default in-memory ring (0 = the
	// checkpoint package's default).
	CheckpointKeep int
}

// Runtime is one HAMSTER instance: a configured base architecture plus the
// service modules, one Env per node.
type Runtime struct {
	cfg  Config
	sub  platform.Substrate
	envs []*Env
	msgs *simnet.Network // user-level messaging (Cluster Control module)
	am   *amsg.Layer     // the substrate's active-message layer; nil when it has none

	collMu     sync.Mutex
	collAllocs []collResult

	rawMu    sync.Mutex
	rawLocks []*vclock.VLock

	bindMu   sync.Mutex
	bindings map[int][]memsim.Region

	tracer  tracerSlot
	sampler samplerSlot

	perf *perfmon.Recorder // protocol event recorder, attached but disabled

	ckpt          *checkpoint.Coordinator // nil unless Config enables it
	resume        *resumeState            // nil unless built by NewResumed
	resumeLockIdx atomic.Uint64           // NewLock replay cursor on resume
}

type collResult struct {
	region memsim.Region
	err    error
}

// New builds a runtime, constructing the requested substrate.
func New(cfg Config) (*Runtime, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("core: need at least one node, got %d", cfg.Nodes)
	}
	params := cfg.Params
	if params.Name == "" {
		params = machine.Default()
	}
	engine, err := consengine.NormalizeName(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Engine != "" && cfg.Platform != platform.SWDSM {
		return nil, fmt.Errorf("core: Config.Engine %q selects a software DSM consistency engine; platform %v has a fixed hardware protocol", cfg.Engine, cfg.Platform)
	}
	topo, err := simnet.TopologyPreset(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if !topo.IsFlat() && cfg.Platform != platform.SWDSM {
		return nil, fmt.Errorf("core: Config.Topology %q shapes the software DSM's switched interconnect; platform %v has no switch fabric (the SMP bus and the hybrid SAN are not topology-aware)", cfg.Topology, cfg.Platform)
	}
	if cfg.ParallelNodes && cfg.Threaded {
		return nil, fmt.Errorf("core: ParallelNodes is incompatible with Threaded: co-located tasks can send while their node blocks in a receive, which breaks the conservative engine's blocked-receiver horizon bound")
	}
	if engine == consengine.IVYName {
		switch {
		case cfg.CheckpointEvery > 0:
			return nil, fmt.Errorf("core: the ivy engine does not support checkpointing (CheckpointEvery=%d): snapshots hook the scope protocol's barrier epochs", cfg.CheckpointEvery)
		case cfg.SWDSMAggregation.Enabled():
			return nil, fmt.Errorf("core: the ivy engine does not support protocol aggregation: batched diff flush and write-notice piggybacking are scope-protocol machinery")
		case cfg.SWDSMMigrateAfter > 0:
			return nil, fmt.Errorf("core: the ivy engine does not support home migration (SWDSMMigrateAfter=%d): ownership already migrates to writers", cfg.SWDSMMigrateAfter)
		case cfg.SWDSMCachePages > 0:
			return nil, fmt.Errorf("core: the ivy engine does not support a cache-page cap (SWDSMCachePages=%d): read copies are tracked by owners, not evicted locally", cfg.SWDSMCachePages)
		}
	}
	rt := &Runtime{cfg: cfg}

	switch cfg.Platform {
	case platform.SWDSM:
		eff := params.WithMessaging(cfg.Messaging)
		if cfg.Messaging == machine.Coalesced {
			// One layer carries the DSM protocol AND user messaging.
			clocks := make([]*vclock.Clock, cfg.Nodes)
			for i := range clocks {
				clocks[i] = &vclock.Clock{}
			}
			net := simnet.NewTopo(eff.Ethernet, clocks, topo)
			layer := amsg.New(net, eff.Ethernet)
			sub, err := buildEngine(cfg, engine, eff, layer, topo)
			if err != nil {
				return nil, err
			}
			rt.sub = sub
			rt.msgs = net
			rt.am = layer
		} else {
			sub, err := buildEngine(cfg, engine, eff, nil, topo)
			if err != nil {
				return nil, err
			}
			rt.sub = sub
			rt.msgs = simnet.NewTopo(eff.Ethernet, substrateClocks(sub), topo)
			rt.am = layerOf(sub)
		}
	case platform.HybridDSM:
		d, err := hybriddsm.New(hybriddsm.Config{
			Nodes: cfg.Nodes, Params: params,
			CacheThreshold:      cfg.HybridCacheThreshold,
			DisablePostedWrites: cfg.HybridDisablePostedWrites,
		})
		if err != nil {
			return nil, err
		}
		rt.sub = d
		rt.msgs = simnet.New(params.SANLink(), substrateClocks(d))
	case platform.SMP:
		s, err := smp.New(smp.Config{CPUs: cfg.Nodes, Params: params})
		if err != nil {
			return nil, err
		}
		rt.sub = s
		rt.msgs = simnet.New(params.BusLink(), substrateClocks(s))
	default:
		return nil, fmt.Errorf("core: unknown platform %v", cfg.Platform)
	}
	if cfg.RequireModel != "" {
		want, err := consengine.ParseModel(cfg.RequireModel)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		native, name := declaredModel(rt.sub)
		if !native.AtLeast(want) {
			return nil, fmt.Errorf("core: Config.RequireModel %q: engine %s declares %v consistency, weaker than %v — select a stronger engine (e.g. Engine: %q for sequential)",
				cfg.RequireModel, name, native, want, consengine.IVYName)
		}
	}
	if cfg.ParallelNodes {
		// Installed before any node goroutine exists, so the gate pointer
		// is published by goroutine creation. Only the user-messaging
		// network carries queued traffic — active-message calls execute
		// handlers synchronously on the caller's goroutine and charge the
		// target with commutative stolen cycles, which need no ordering
		// (see DESIGN §5i) — so that is the fabric the engine gates.
		rt.msgs.EnableGate()
	}
	rt.attachRecorder(cfg.PerfEventCap)
	if cfg.CheckpointEvery > 0 {
		if err := rt.attachCheckpointer(); err != nil {
			return nil, err
		}
	}
	rt.buildEnvs()
	return rt, nil
}

// buildEngine constructs the selected software-DSM consistency engine.
// A non-nil layer is the coalesced-messaging case: protocol and user
// messages share it. The default path hands swdsm.New the exact
// configuration the pre-engine code did, keeping default runs
// bit-identical (gated by TestEngineDefaultIdentity and benchcheck.sh).
func buildEngine(cfg Config, engine string, eff machine.Params, layer *amsg.Layer, topo simnet.Topology) (platform.Substrate, error) {
	if engine == consengine.IVYName {
		return ivy.New(ivy.Config{Nodes: cfg.Nodes, Params: eff, Layer: layer, Topology: topo})
	}
	sc := swdsm.Config{
		Nodes: cfg.Nodes, Params: eff,
		CachePages: cfg.SWDSMCachePages, Layer: layer,
		MigrateAfter: cfg.SWDSMMigrateAfter,
		Aggregation:  cfg.SWDSMAggregation,
		Topology:     topo,
	}
	if engine == consengine.EagerRCName {
		sc.Protocol = swdsm.EagerRC
	}
	return swdsm.New(sc)
}

// layerOf extracts a substrate's private active-message layer, when it
// has one (separate-messaging software DSM engines).
func layerOf(sub platform.Substrate) *amsg.Layer {
	if ld, ok := sub.(interface{ Layer() *amsg.Layer }); ok {
		return ld.Layer()
	}
	return nil
}

// declaredModel resolves a substrate's native consistency model and a
// human-readable engine name: consistency engines declare both
// themselves; hardware substrates are mapped from their capability
// string.
func declaredModel(sub platform.Substrate) (consengine.Model, string) {
	if e, ok := sub.(consengine.Engine); ok {
		return e.DeclaredModel(), e.EngineName()
	}
	name := sub.Kind().String()
	switch sub.Caps().ConsistencyModel {
	case "sequential":
		return consengine.Sequential, name
	case "processor":
		return consengine.Processor, name
	case "scope":
		return consengine.Scope, name
	case "entry":
		return consengine.Entry, name
	default:
		return consengine.Release, name
	}
}

// NewWithSubstrate wraps an existing substrate (used by tests and by the
// overhead experiments that need to control substrate construction).
func NewWithSubstrate(sub platform.Substrate, msgLink machine.Link, threaded bool) *Runtime {
	rt := &Runtime{
		cfg: Config{Platform: sub.Kind(), Nodes: sub.Nodes(), Threaded: threaded},
		sub: sub,
	}
	rt.msgs = simnet.New(msgLink, substrateClocks(sub))
	if ld, ok := sub.(interface{ Layer() *amsg.Layer }); ok {
		rt.am = ld.Layer()
	}
	rt.attachRecorder(0)
	rt.buildEnvs()
	return rt
}

// attachRecorder creates the (initially disabled) protocol event recorder
// and distributes it to the substrate and the user-messaging network.
// Attachment happens before any node goroutine starts, so the recorder
// pointers are published by goroutine creation and the hot-path check is a
// single atomic load of the enable flag.
func (rt *Runtime) attachRecorder(capacity int) {
	rt.perf = perfmon.New(rt.sub.Nodes(), capacity)
	rt.sub.SetRecorder(rt.perf)
	rt.msgs.SetRecorder(rt.perf)
}

// Perf returns the runtime's protocol event recorder. It is attached to
// every layer at construction but disabled; call Enable before the run to
// start collecting events, and read them out once the run is quiescent.
func (rt *Runtime) Perf() *perfmon.Recorder { return rt.perf }

// Network returns the user-messaging network. With coalesced messaging on
// software DSM it is the same network the DSM protocol rides.
func (rt *Runtime) Network() *simnet.Network { return rt.msgs }

// AMsg returns the substrate's active-message layer, or nil for
// substrates (hybrid DSM, SMP) that communicate through hardware paths
// instead.
func (rt *Runtime) AMsg() *amsg.Layer { return rt.am }

// SetFaults installs a fault plan on every interconnect of this runtime:
// the user-messaging network and, when the substrate has a separate
// active-message network, that one too. An all-zero plan restores
// fault-free operation.
func (rt *Runtime) SetFaults(p simnet.FaultPlan) {
	rt.msgs.SetFaults(p)
	if rt.am != nil && rt.am.Network() != rt.msgs {
		rt.am.Network().SetFaults(p)
	}
}

// TimeBreakdowns snapshots every node's virtual-time attribution, indexed
// by node. Each breakdown's Total() equals the node's clock exactly.
func (rt *Runtime) TimeBreakdowns() []vclock.Breakdown {
	out := make([]vclock.Breakdown, rt.sub.Nodes())
	for i := range out {
		out[i] = rt.sub.Clock(i).Breakdown()
	}
	return out
}

func substrateClocks(sub platform.Substrate) []*vclock.Clock {
	clocks := make([]*vclock.Clock, sub.Nodes())
	for i := range clocks {
		clocks[i] = sub.Clock(i)
	}
	return clocks
}

func (rt *Runtime) buildEnvs() {
	rt.envs = make([]*Env, rt.sub.Nodes())
	for i := range rt.envs {
		rt.envs[i] = newEnv(rt, i)
	}
}

// Nodes returns the cluster size.
func (rt *Runtime) Nodes() int { return rt.sub.Nodes() }

// Substrate exposes the base architecture (monitoring, experiments).
func (rt *Runtime) Substrate() platform.Substrate { return rt.sub }

// Env returns the service handle for one node.
func (rt *Runtime) Env(node int) *Env { return rt.envs[node] }

// Run executes fn as an SPMD program: one task per node, joined on return.
// This is HAMSTER's inherent task model (§4.4); richer task structures are
// built with the Task Management module. A panic on any node (such as
// jia_error aborting the application) is re-raised on the caller after the
// other nodes finish.
func (rt *Runtime) Run(fn func(e *Env)) {
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var firstPanic any
	for _, e := range rt.envs {
		// A fresh run revives nodes a previous Run retired from the
		// conservative gate's horizon (no-op when ungated).
		rt.msgs.SetNodeRetired(toNodeID(e.id), false)
	}
	for _, e := range rt.envs {
		wg.Add(1)
		go func(e *Env) {
			defer wg.Done()
			// Runs before the panic handler on unwind: either way this
			// node will never send again, so it stops bounding peers'
			// delivery horizons (no-op when ungated).
			defer rt.msgs.SetNodeRetired(toNodeID(e.id), true)
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					first := firstPanic == nil
					if first {
						firstPanic = r
					}
					panicMu.Unlock()
					// Unblock peers: poison barriers/locks so nobody waits
					// for a node that will never arrive, then close the
					// network to wake blocked receivers and retry loops.
					// Peers woken this way panic in turn and land back
					// here; only the first panic is re-raised.
					if first {
						reason := fmt.Sprintf("node %d failed: %v", e.id, r)
						if ab, ok := rt.sub.(interface{ AbortSync(string) }); ok {
							ab.AbortSync(reason)
						}
						if rt.ckpt != nil {
							rt.ckpt.Abort(reason)
						}
					}
					rt.msgs.Close()
				}
			}()
			fn(e)
		}(e)
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
}

// Close shuts the runtime down, unblocking any waiting receivers.
func (rt *Runtime) Close() {
	rt.msgs.Close()
	rt.sub.Close()
}

// MaxTime returns the largest per-node virtual time — the wall-clock
// equivalent of an SPMD run.
func (rt *Runtime) MaxTime() vclock.Time {
	return vclock.MaxAll(substrateClocks(rt.sub))
}

// collectiveAlloc implements SPMD-wide allocation: every node calls it with
// identical arguments in the same program order; node 0 allocates, a
// barrier publishes, everyone returns the same region. On a resumed
// runtime the first allocations replay instead: the restored address space
// already holds the regions, so the call returns the matching restored
// region (validated against the program's arguments) rather than
// allocating anew.
func (rt *Runtime) collectiveAlloc(e *Env, size uint64, name string, pol memsim.Policy, fixed int) (memsim.Region, error) {
	if e.id == 0 {
		var res collResult
		if rs := rt.resume; rs != nil && e.collIdx < len(rs.regions) {
			r := rs.regions[e.collIdx]
			if r.Name != name || r.Size < size {
				res.err = fmt.Errorf("core: resumed allocation %d is %q (%d bytes) but the program asked for %q (%d bytes) — snapshot does not match this binary",
					e.collIdx, r.Name, r.Size, name, size)
			} else {
				res.region = r
			}
		} else {
			res.region, res.err = rt.sub.Alloc(size, name, pol, fixed)
		}
		rt.collMu.Lock()
		rt.collAllocs = append(rt.collAllocs, res)
		rt.collMu.Unlock()
	}
	rt.sub.Barrier(e.id)
	rt.collMu.Lock()
	res := rt.collAllocs[e.collIdx]
	rt.collMu.Unlock()
	e.collIdx++
	return res.region, res.err
}
