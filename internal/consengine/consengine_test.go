package consengine_test

import (
	"strings"
	"testing"

	"hamster/internal/consengine"
	"hamster/internal/smp"
	"hamster/internal/swdsm"
)

func TestModelOrderAndNames(t *testing.T) {
	order := []consengine.Model{consengine.Sequential, consengine.Processor,
		consengine.Release, consengine.Scope, consengine.Entry}
	names := []string{"sequential", "processor", "release", "scope", "entry"}
	for i, m := range order {
		if m.String() != names[i] {
			t.Errorf("%d: String() = %q, want %q", i, m.String(), names[i])
		}
		got, err := consengine.ParseModel(names[i])
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v", names[i], got, err)
		}
		for j, o := range order {
			if want := i <= j; m.AtLeast(o) != want {
				t.Errorf("%v.AtLeast(%v) = %v, want %v", m, o, !want, want)
			}
		}
	}
	if _, err := consengine.ParseModel("causal"); err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Fatalf("ParseModel(causal) err = %v", err)
	}
	if consengine.Model(99).String() != "model(99)" {
		t.Fatalf("out-of-range String() = %q", consengine.Model(99).String())
	}
}

func TestNormalizeName(t *testing.T) {
	if n, err := consengine.NormalizeName(""); err != nil || n != consengine.ScopeName {
		t.Fatalf("empty selector: %q, %v", n, err)
	}
	for _, n := range consengine.Names() {
		if got, err := consengine.NormalizeName(n); err != nil || got != n {
			t.Fatalf("NormalizeName(%q) = %q, %v", n, got, err)
		}
	}
	if _, err := consengine.NormalizeName("tso"); err == nil || !strings.Contains(err.Error(), "scope, eager-rc, ivy") {
		t.Fatalf("unknown selector err = %v", err)
	}
}

// TestWrap: engines pass through untouched; hardware substrates get a
// declaration derived from their capability string.
func TestWrap(t *testing.T) {
	d, err := swdsm.New(swdsm.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if e := consengine.Wrap(d); e != consengine.Engine(d) {
		t.Fatal("Wrap changed an engine")
	}

	s, err := smp.New(smp.Config{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := consengine.Wrap(s)
	if e.DeclaredModel() != consengine.Processor {
		t.Fatalf("smp declares %v, want processor", e.DeclaredModel())
	}
	if e.EngineName() != s.Kind().String() {
		t.Fatalf("EngineName = %q", e.EngineName())
	}
}
