// Package consengine defines the pluggable consistency-engine contract
// (§4.2/§4.5, ROADMAP item 4): a consistency engine is a complete
// coherence protocol — page-fault handling, acquire/release/barrier/fence
// actions, write-notice generation, invalidation policy — packaged as a
// platform.Substrate plus a declaration of the memory model it
// implements. The declaration is load-bearing: core.ConsMgr refuses model
// requests stronger than the declaration, and the conscheck litmus
// harness checks every engine's observed outcomes against its declared
// model's allowed-outcome set, so a protocol experiment can't silently
// weaken semantics.
//
// The package carries no protocol state of its own and is safe from any
// goroutine; concurrency contracts live with the engines implementing
// the interfaces.
package consengine

import (
	"fmt"
	"strings"

	"hamster/internal/memsim"
	"hamster/internal/platform"
)

// Model names a memory consistency model, strongest first — the order is
// part of the contract (see AtLeast).
type Model int

// Supported consistency models, strongest first.
const (
	// Sequential: every access is globally ordered (Lamport). IVY's
	// synchronous write-invalidate protocol provides it natively; on
	// relaxed engines it exists only via explicit fencing.
	Sequential Model = iota
	// Processor: writes from one processor are seen in order (SMP
	// hardware's native model).
	Processor
	// Release: consistency actions tied to acquire/release pairs.
	Release
	// Scope: release consistency restricted to the scope (lock) under
	// which modifications happened — JiaJia's native model.
	Scope
	// Entry: consistency restricted to data explicitly bound to the sync
	// object. Implemented on the scope machinery: per-lock write notices
	// already confine invalidations to the pages modified under the lock,
	// so binding data to its lock yields entry semantics.
	Entry
)

// String names the model.
func (m Model) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case Processor:
		return "processor"
	case Release:
		return "release"
	case Scope:
		return "scope"
	case Entry:
		return "entry"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// AtLeast reports whether m's guarantees subsume o's: an engine declaring
// m correctly serves every program written against o. Models are ordered
// strongest first, so this is a simple comparison.
func (m Model) AtLeast(o Model) bool { return m <= o }

// ParseModel resolves a model name (as used by Config.RequireModel and
// CLI flags) to its Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "sequential":
		return Sequential, nil
	case "processor":
		return Processor, nil
	case "release":
		return Release, nil
	case "scope":
		return Scope, nil
	case "entry":
		return Entry, nil
	default:
		return 0, fmt.Errorf("consengine: unknown consistency model %q (valid: sequential, processor, release, scope, entry)", s)
	}
}

// Engine is one pluggable consistency engine: a complete substrate whose
// coherence protocol is self-contained, plus its identity and model
// declaration.
type Engine interface {
	platform.Substrate
	// EngineName returns the engine's canonical selector name (one of
	// Names).
	EngineName() string
	// DeclaredModel is the strongest model the engine claims to
	// implement for data-race-free programs — the claim the conscheck
	// litmus harness verifies.
	DeclaredModel() Model
}

// Composable is an Engine whose consistency actions can be driven by an
// external synchronization layer — the hook multi-DSM composition (§6)
// uses to unify two engines under one lock/barrier layer. Both methods
// must be called from the node's own goroutine.
type Composable interface {
	Engine
	// FlushInterval publishes the node's interval modifications and
	// returns its write notices (empty for engines, like IVY, whose
	// writes are globally visible immediately).
	FlushInterval(node int) []memsim.PageID
	// InvalidatePages applies foreign write notices: the node drops any
	// stale local copies of the given pages. Pages the engine does not
	// hold (or whose copies cannot be stale) are ignored.
	InvalidatePages(node int, pages []memsim.PageID)
}

// capsEngine adapts a substrate that does not declare itself (the
// hardware platforms) into an Engine via its capability string.
type capsEngine struct {
	platform.Substrate
}

func (c capsEngine) EngineName() string { return c.Kind().String() }

func (c capsEngine) DeclaredModel() Model {
	if m, err := ParseModel(c.Caps().ConsistencyModel); err == nil {
		return m
	}
	return Release
}

// Wrap presents any substrate as an Engine: substrates that already are
// one (the software-DSM engines, multi-DSM compositions) pass through;
// hardware substrates get their declaration derived from the capability
// string. This is what lets the conformance harness run one battery over
// every substrate kind.
func Wrap(sub platform.Substrate) Engine {
	if e, ok := sub.(Engine); ok {
		return e
	}
	return capsEngine{sub}
}

// Canonical engine selector names (Config.Engine, hamsterrun -engine).
const (
	// ScopeName is the default home-based Scope Consistency protocol
	// (JiaJia-style twins/diffs, write notices with locks).
	ScopeName = "scope"
	// EagerRCName is the eager Release Consistency variant of the scope
	// engine: notices broadcast at release, applied at any acquire.
	EagerRCName = "eager-rc"
	// IVYName is the IVY-style write-invalidate engine with distributed
	// dynamic ownership (sequential consistency).
	IVYName = "ivy"
)

// Names lists the selectable software-DSM consistency engines.
func Names() []string { return []string{ScopeName, EagerRCName, IVYName} }

// NormalizeName maps the empty selector to the default engine and
// validates the name, returning a descriptive error listing the valid
// selectors otherwise.
func NormalizeName(s string) (string, error) {
	if s == "" {
		return ScopeName, nil
	}
	for _, n := range Names() {
		if s == n {
			return s, nil
		}
	}
	return "", fmt.Errorf("consengine: unknown engine %q (valid: %s)", s, strings.Join(Names(), ", "))
}
