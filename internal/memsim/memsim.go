// Package memsim implements the global shared-memory abstraction that every
// HAMSTER base architecture must provide (§3.1): a global address space in
// which memory can be allocated with placement annotations, and in which any
// node can issue reads and writes.
//
// The address space is a flat range of byte addresses divided into 4 KiB
// pages. A global allocator hands out page-tracked regions; a page table
// maps every page to its home node according to the region's placement
// policy. Actual storage lives in frame stores — one per node for substrates
// with per-node copies (software DSM), or a single distributed store for
// substrates with one authoritative copy (hybrid DSM, SMP).
//
// Because the simulated MMU cannot raise page faults (Go hides signals),
// substrates detect remote/invalid accesses by software checks on this
// page table — the state machine is the same as a fault-driven DSM, only
// the detection point differs.
//
// Concurrency: the allocator and page table are shared by all node
// goroutines and internally synchronized (the home map uses atomics on
// the hot lookup path). The package is cost-free by design — it never
// advances a virtual clock; substrates charge access costs themselves.
package memsim

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"hamster/internal/machine"
)

// PageSize is the DSM page size in bytes.
const PageSize = machine.PageSize

// WordSize is the accessor granularity in bytes.
const WordSize = machine.WordSize

// Addr is a global byte address.
type Addr uint64

// PageID identifies one global page.
type PageID uint64

// PageOf returns the page containing addr.
func PageOf(a Addr) PageID { return PageID(a / PageSize) }

// PageBase returns the first address of page p.
func PageBase(p PageID) Addr { return Addr(p) * PageSize }

// Offset returns the byte offset of addr within its page.
func Offset(a Addr) int { return int(a % PageSize) }

// PagesSpanned returns the pages overlapped by [base, base+size).
func PagesSpanned(base Addr, size uint64) []PageID {
	if size == 0 {
		return nil
	}
	first := PageOf(base)
	last := PageOf(base + Addr(size) - 1)
	out := make([]PageID, 0, last-first+1)
	for p := first; p <= last; p++ {
		out = append(out, p)
	}
	return out
}

// WordRuns splits the word span [a, a+WordSize*words) into maximal
// per-page runs and calls fn once per run with the page, the byte offset
// of the run's first word, and the run's word count. Bulk accessors use
// this to pay page-granular costs (home lookup, frame resolution, twin
// creation) once per page instead of once per word. The address must be
// word-aligned — the same alignment the word accessors and the diff
// protocol assume.
func WordRuns(a Addr, words int, fn func(p PageID, off, count int)) {
	if a%WordSize != 0 {
		panic(fmt.Sprintf("memsim: unaligned block access at %#x", uint64(a)))
	}
	for words > 0 {
		p := PageOf(a)
		off := Offset(a)
		count := (PageSize - off) / WordSize
		if count > words {
			count = words
		}
		fn(p, off, count)
		words -= count
		a += Addr(count * WordSize)
	}
}

// Policy selects how a region's pages are distributed across nodes.
// These are the "distribution annotations" of the Memory Management module.
type Policy int

const (
	// Block splits the region into contiguous per-node chunks.
	Block Policy = iota
	// Cyclic places consecutive pages on consecutive nodes round-robin.
	Cyclic
	// FirstTouch defers home assignment until a node first accesses the
	// page; until then the page table reports NoHome.
	FirstTouch
	// Fixed places every page of the region on Region.FixedNode.
	Fixed
)

// String implements fmt.Stringer for diagnostics.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case FirstTouch:
		return "first-touch"
	case Fixed:
		return "fixed"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// NoHome is returned by Home for first-touch pages that nobody touched yet.
const NoHome = -1

// Region describes one global allocation.
type Region struct {
	Base      Addr
	Size      uint64
	Name      string
	Policy    Policy
	FixedNode int
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Space is a global address space: allocator plus page table.
// All methods are safe for concurrent use.
type Space struct {
	mu      sync.RWMutex
	nodes   int
	next    Addr
	regions []Region
	free    []Region // freed blocks, page-granular, sorted by Base
	// homes is published copy-on-write: Home() is on the word-access hot
	// path of every substrate, and even a reader lock there serializes
	// the whole cluster's goroutines on one cache line. Mutators hold
	// s.mu, clone the map, and swap the pointer; readers just load it.
	homes atomic.Pointer[map[PageID]int]
}

// NewSpace creates an address space for a cluster of n nodes. Address 0 is
// reserved (a zero Addr can then act as a null pointer for models that
// need one), so the first allocation starts at PageSize.
func NewSpace(nodes int) *Space {
	if nodes <= 0 {
		panic("memsim: nodes must be positive")
	}
	s := &Space{nodes: nodes, next: PageSize}
	m := make(map[PageID]int)
	s.homes.Store(&m)
	return s
}

// mutateHomesLocked clones the homes snapshot, applies fn, and publishes
// the result. The caller must hold s.mu (for write).
func (s *Space) mutateHomesLocked(fn func(map[PageID]int)) {
	old := *s.homes.Load()
	m := make(map[PageID]int, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	fn(m)
	s.homes.Store(&m)
}

// Nodes returns the cluster size the space was built for.
func (s *Space) Nodes() int { return s.nodes }

// Alloc reserves size bytes with the given placement policy and assigns
// page homes. Sizes are rounded up to whole pages: page-granularity is what
// a page-based DSM can manage, and it guarantees no false sharing between
// separate allocations. fixedNode is used only by the Fixed policy.
func (s *Space) Alloc(size uint64, name string, pol Policy, fixedNode int) (Region, error) {
	if size == 0 {
		return Region{}, fmt.Errorf("memsim: zero-size allocation %q", name)
	}
	if pol == Fixed && (fixedNode < 0 || fixedNode >= s.nodes) {
		return Region{}, fmt.Errorf("memsim: fixed node %d out of range", fixedNode)
	}
	rounded := (size + PageSize - 1) / PageSize * PageSize

	s.mu.Lock()
	defer s.mu.Unlock()

	base, ok := s.takeFreeLocked(rounded)
	if !ok {
		base = s.next
		s.next += Addr(rounded)
	}
	r := Region{Base: base, Size: rounded, Name: name, Policy: pol, FixedNode: fixedNode}
	s.regions = append(s.regions, r)
	s.assignHomesLocked(r)
	return r, nil
}

func (s *Space) takeFreeLocked(size uint64) (Addr, bool) {
	for i, f := range s.free {
		if f.Size >= size {
			base := f.Base
			if f.Size == size {
				s.free = append(s.free[:i], s.free[i+1:]...)
			} else {
				s.free[i].Base += Addr(size)
				s.free[i].Size -= size
			}
			return base, true
		}
	}
	return 0, false
}

func (s *Space) assignHomesLocked(r Region) {
	pages := PagesSpanned(r.Base, r.Size)
	s.mutateHomesLocked(func(homes map[PageID]int) {
		switch r.Policy {
		case Block:
			per := (len(pages) + s.nodes - 1) / s.nodes
			for i, p := range pages {
				homes[p] = i / per
			}
		case Cyclic:
			for i, p := range pages {
				homes[p] = i % s.nodes
			}
		case Fixed:
			for _, p := range pages {
				homes[p] = r.FixedNode
			}
		case FirstTouch:
			// Homes assigned lazily by TouchHome.
		}
	})
}

// Free returns a region's pages to the allocator and clears their homes.
func (s *Space) Free(r Region) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := -1
	for i, reg := range s.regions {
		if reg.Base == r.Base && reg.Size == r.Size {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("memsim: Free of unknown region base=%d size=%d", r.Base, r.Size)
	}
	s.regions = append(s.regions[:idx], s.regions[idx+1:]...)
	s.mutateHomesLocked(func(homes map[PageID]int) {
		for _, p := range PagesSpanned(r.Base, r.Size) {
			delete(homes, p)
		}
	})
	s.free = append(s.free, Region{Base: r.Base, Size: r.Size})
	sort.Slice(s.free, func(i, j int) bool { return s.free[i].Base < s.free[j].Base })
	s.coalesceLocked()
	return nil
}

func (s *Space) coalesceLocked() {
	out := s.free[:0]
	for _, f := range s.free {
		if n := len(out); n > 0 && out[n-1].End() == f.Base {
			out[n-1].Size += f.Size
		} else {
			out = append(out, f)
		}
	}
	s.free = out
}

// Home returns the home node of a page, or NoHome for untouched
// first-touch pages and unallocated addresses.
func (s *Space) Home(p PageID) int {
	if h, ok := (*s.homes.Load())[p]; ok {
		return h
	}
	return NoHome
}

// TouchHome assigns node as the home of page p if it has none yet, and
// returns the page's (possibly pre-existing) home. This implements
// first-touch placement.
func (s *Space) TouchHome(p PageID, node int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := (*s.homes.Load())[p]; ok {
		return h
	}
	s.mutateHomesLocked(func(homes map[PageID]int) { homes[p] = node })
	return node
}

// SetHome reassigns a page's home (home migration support).
func (s *Space) SetHome(p PageID, node int) {
	s.mu.Lock()
	s.mutateHomesLocked(func(homes map[PageID]int) { homes[p] = node })
	s.mu.Unlock()
}

// RegionOf returns the region containing addr.
func (s *Space) RegionOf(a Addr) (Region, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, r := range s.regions {
		if r.Contains(a) {
			return r, true
		}
	}
	return Region{}, false
}

// Regions returns a snapshot of all live regions.
func (s *Space) Regions() []Region {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Region, len(s.regions))
	copy(out, s.regions)
	return out
}

// SpaceSnapshot is a deep copy of a Space's allocator and page-table
// state, taken at a quiescent instant (a barrier). The checkpoint
// subsystem serializes it; Restore installs it into a fresh Space.
type SpaceSnapshot struct {
	Nodes   int
	Next    Addr
	Regions []Region
	Free    []Region
	Homes   map[PageID]int
}

// Snapshot deep-copies the allocator and page-table state. The caller
// must guarantee quiescence (no concurrent Alloc/Free/TouchHome) for the
// copy to be a consistent cut; the method itself only takes the usual
// locks.
func (s *Space) Snapshot() SpaceSnapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sn := SpaceSnapshot{
		Nodes:   s.nodes,
		Next:    s.next,
		Regions: append([]Region(nil), s.regions...),
		Free:    append([]Region(nil), s.free...),
		Homes:   make(map[PageID]int, len(*s.homes.Load())),
	}
	for p, h := range *s.homes.Load() {
		sn.Homes[p] = h
	}
	return sn
}

// Restore replaces the space's allocator and page-table state with a
// snapshot. The snapshot's cluster size must match. Must not race with
// other use (recovery installs it before any node goroutine starts).
func (s *Space) Restore(sn SpaceSnapshot) error {
	if sn.Nodes != s.nodes {
		return fmt.Errorf("memsim: snapshot for %d nodes restored into %d-node space", sn.Nodes, s.nodes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next = sn.Next
	s.regions = append(s.regions[:0], sn.Regions...)
	s.free = append(s.free[:0], sn.Free...)
	m := make(map[PageID]int, len(sn.Homes))
	for p, h := range sn.Homes {
		m[p] = h
	}
	s.homes.Store(&m)
	return nil
}

// Allocated reports the total bytes currently allocated.
func (s *Space) Allocated() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total uint64
	for _, r := range s.regions {
		total += r.Size
	}
	return total
}

// FrameStore holds page frames (the actual bytes). One store models one
// node's physical memory; frames are allocated zeroed on first use, like
// anonymous mmap.
type FrameStore struct {
	mu     sync.RWMutex
	frames map[PageID][]byte
}

// NewFrameStore returns an empty store.
func NewFrameStore() *FrameStore {
	return &FrameStore{frames: make(map[PageID][]byte)}
}

// Frame returns the frame for page p, allocating a zeroed one if needed.
func (f *FrameStore) Frame(p PageID) []byte {
	f.mu.RLock()
	fr, ok := f.frames[p]
	f.mu.RUnlock()
	if ok {
		return fr
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if fr, ok = f.frames[p]; ok {
		return fr
	}
	fr = make([]byte, PageSize)
	f.frames[p] = fr
	return fr
}

// Peek returns the frame if present without allocating.
func (f *FrameStore) Peek(p PageID) ([]byte, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	fr, ok := f.frames[p]
	return fr, ok
}

// Drop discards the frame for page p.
func (f *FrameStore) Drop(p PageID) {
	f.mu.Lock()
	delete(f.frames, p)
	f.mu.Unlock()
}

// Len reports how many frames are resident.
func (f *FrameStore) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.frames)
}

// GetF64 reads a float64 at byte offset off in a frame.
func GetF64(frame []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(frame[off:]))
}

// PutF64 writes a float64 at byte offset off in a frame.
func PutF64(frame []byte, off int, v float64) {
	binary.LittleEndian.PutUint64(frame[off:], math.Float64bits(v))
}

// GetU64 reads a uint64 at byte offset off.
func GetU64(frame []byte, off int) uint64 {
	return binary.LittleEndian.Uint64(frame[off:])
}

// PutU64 writes a uint64 at byte offset off.
func PutU64(frame []byte, off int, v uint64) {
	binary.LittleEndian.PutUint64(frame[off:], v)
}

// GetI64 reads an int64 at byte offset off.
func GetI64(frame []byte, off int) int64 { return int64(GetU64(frame, off)) }

// PutI64 writes an int64 at byte offset off.
func PutI64(frame []byte, off int, v int64) { PutU64(frame, off, uint64(v)) }

// GetF64Slice decodes len(dst) consecutive float64 words starting at byte
// offset off.
func GetF64Slice(frame []byte, off int, dst []float64) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(frame[off+8*i:]))
	}
}

// PutF64Slice encodes src as consecutive float64 words starting at byte
// offset off.
func PutF64Slice(frame []byte, off int, src []float64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(frame[off+8*i:], math.Float64bits(v))
	}
}

// GetI64Slice decodes len(dst) consecutive int64 words starting at byte
// offset off.
func GetI64Slice(frame []byte, off int, dst []int64) {
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(frame[off+8*i:]))
	}
}

// PutI64Slice encodes src as consecutive int64 words starting at byte
// offset off.
func PutI64Slice(frame []byte, off int, src []int64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(frame[off+8*i:], uint64(v))
	}
}
