package memsim

import (
	"testing"
	"testing/quick"
)

func TestPageArithmetic(t *testing.T) {
	if PageOf(0) != 0 || PageOf(PageSize-1) != 0 || PageOf(PageSize) != 1 {
		t.Fatal("PageOf broken")
	}
	if PageBase(3) != 3*PageSize {
		t.Fatal("PageBase broken")
	}
	if Offset(PageSize+17) != 17 {
		t.Fatal("Offset broken")
	}
	ps := PagesSpanned(PageSize-1, 2) // straddles pages 0 and 1
	if len(ps) != 2 || ps[0] != 0 || ps[1] != 1 {
		t.Fatalf("PagesSpanned = %v", ps)
	}
	if PagesSpanned(0, 0) != nil {
		t.Fatal("zero-size span must be empty")
	}
}

func TestAllocRoundsToPages(t *testing.T) {
	s := NewSpace(4)
	r, err := s.Alloc(10, "tiny", Block, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != PageSize {
		t.Fatalf("size = %d, want %d", r.Size, PageSize)
	}
	if r.Base%PageSize != 0 {
		t.Fatalf("base %d not page aligned", r.Base)
	}
	if r.Base == 0 {
		t.Fatal("address 0 must stay reserved")
	}
}

func TestAllocZeroSizeFails(t *testing.T) {
	s := NewSpace(2)
	if _, err := s.Alloc(0, "empty", Block, 0); err == nil {
		t.Fatal("expected error for zero-size alloc")
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	s := NewSpace(2)
	a, _ := s.Alloc(3*PageSize, "a", Block, 0)
	b, _ := s.Alloc(PageSize, "b", Cyclic, 0)
	if a.End() > b.Base && b.End() > a.Base {
		t.Fatalf("regions overlap: %+v %+v", a, b)
	}
}

func TestBlockPlacement(t *testing.T) {
	s := NewSpace(4)
	r, _ := s.Alloc(8*PageSize, "m", Block, 0)
	pages := PagesSpanned(r.Base, r.Size)
	// 8 pages over 4 nodes: 2 each, contiguous.
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i, p := range pages {
		if got := s.Home(p); got != want[i] {
			t.Fatalf("page %d home = %d, want %d", i, got, want[i])
		}
	}
}

func TestCyclicPlacement(t *testing.T) {
	s := NewSpace(3)
	r, _ := s.Alloc(6*PageSize, "m", Cyclic, 0)
	pages := PagesSpanned(r.Base, r.Size)
	for i, p := range pages {
		if got := s.Home(p); got != i%3 {
			t.Fatalf("page %d home = %d, want %d", i, got, i%3)
		}
	}
}

func TestFixedPlacement(t *testing.T) {
	s := NewSpace(4)
	r, _ := s.Alloc(3*PageSize, "m", Fixed, 2)
	for _, p := range PagesSpanned(r.Base, r.Size) {
		if got := s.Home(p); got != 2 {
			t.Fatalf("home = %d, want 2", got)
		}
	}
	if _, err := s.Alloc(PageSize, "bad", Fixed, 9); err == nil {
		t.Fatal("expected error for out-of-range fixed node")
	}
}

func TestFirstTouchPlacement(t *testing.T) {
	s := NewSpace(4)
	r, _ := s.Alloc(2*PageSize, "m", FirstTouch, 0)
	p := PageOf(r.Base)
	if s.Home(p) != NoHome {
		t.Fatal("untouched first-touch page must have NoHome")
	}
	if got := s.TouchHome(p, 3); got != 3 {
		t.Fatalf("TouchHome = %d, want 3", got)
	}
	// Second toucher does not steal the home.
	if got := s.TouchHome(p, 1); got != 3 {
		t.Fatalf("second TouchHome = %d, want 3", got)
	}
	if s.Home(p) != 3 {
		t.Fatal("home not recorded")
	}
}

func TestSetHomeMigration(t *testing.T) {
	s := NewSpace(2)
	r, _ := s.Alloc(PageSize, "m", Block, 0)
	p := PageOf(r.Base)
	s.SetHome(p, 1)
	if s.Home(p) != 1 {
		t.Fatal("SetHome did not migrate")
	}
}

func TestFreeAndReuse(t *testing.T) {
	s := NewSpace(2)
	a, _ := s.Alloc(2*PageSize, "a", Block, 0)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if s.Home(PageOf(a.Base)) != NoHome {
		t.Fatal("freed pages must lose their homes")
	}
	b, _ := s.Alloc(PageSize, "b", Cyclic, 0)
	if b.Base != a.Base {
		t.Fatalf("free block not reused: got base %d, want %d", b.Base, a.Base)
	}
	// Remainder of the freed block still usable.
	c, _ := s.Alloc(PageSize, "c", Cyclic, 0)
	if c.Base != a.Base+PageSize {
		t.Fatalf("free remainder not reused: got %d, want %d", c.Base, a.Base+PageSize)
	}
}

func TestFreeUnknownRegionFails(t *testing.T) {
	s := NewSpace(2)
	if err := s.Free(Region{Base: 12345, Size: PageSize}); err == nil {
		t.Fatal("expected error freeing unknown region")
	}
}

func TestFreeCoalesces(t *testing.T) {
	s := NewSpace(2)
	a, _ := s.Alloc(PageSize, "a", Block, 0)
	b, _ := s.Alloc(PageSize, "b", Block, 0)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(b); err != nil {
		t.Fatal(err)
	}
	// Coalesced: a 2-page alloc must fit in the combined hole.
	c, _ := s.Alloc(2*PageSize, "c", Block, 0)
	if c.Base != a.Base {
		t.Fatalf("coalesced hole not used: got %d, want %d", c.Base, a.Base)
	}
}

func TestRegionOfAndAllocated(t *testing.T) {
	s := NewSpace(2)
	r, _ := s.Alloc(2*PageSize, "named", Block, 0)
	got, ok := s.RegionOf(r.Base + 100)
	if !ok || got.Name != "named" {
		t.Fatalf("RegionOf = %+v, %v", got, ok)
	}
	if _, ok := s.RegionOf(r.End()); ok {
		t.Fatal("RegionOf past end must miss")
	}
	if s.Allocated() != 2*PageSize {
		t.Fatalf("Allocated = %d", s.Allocated())
	}
	if len(s.Regions()) != 1 {
		t.Fatal("Regions snapshot wrong")
	}
}

// Property: regions returned by a random sequence of allocs never overlap
// and are always page-aligned.
func TestAllocNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewSpace(3)
		var regs []Region
		for _, sz := range sizes {
			r, err := s.Alloc(uint64(sz)+1, "r", Cyclic, 0)
			if err != nil {
				return false
			}
			if r.Base%PageSize != 0 || r.Size%PageSize != 0 {
				return false
			}
			regs = append(regs, r)
		}
		for i := range regs {
			for j := i + 1; j < len(regs); j++ {
				if regs[i].End() > regs[j].Base && regs[j].End() > regs[i].Base {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every page of every allocation has a home (for non-first-touch
// policies) within the node range.
func TestHomesAlwaysValidProperty(t *testing.T) {
	f := func(sizes []uint16, polSeed uint8) bool {
		nodes := 1 + int(polSeed%7)
		s := NewSpace(nodes)
		pols := []Policy{Block, Cyclic, Fixed}
		for i, sz := range sizes {
			pol := pols[i%len(pols)]
			r, err := s.Alloc(uint64(sz)+1, "r", pol, i%nodes)
			if err != nil {
				return false
			}
			for _, p := range PagesSpanned(r.Base, r.Size) {
				h := s.Home(p)
				if h < 0 || h >= nodes {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameStore(t *testing.T) {
	fs := NewFrameStore()
	if _, ok := fs.Peek(5); ok {
		t.Fatal("Peek must miss before Frame")
	}
	fr := fs.Frame(5)
	if len(fr) != PageSize {
		t.Fatalf("frame len = %d", len(fr))
	}
	for _, b := range fr {
		if b != 0 {
			t.Fatal("frame must be zeroed")
		}
	}
	fr[0] = 42
	again := fs.Frame(5)
	if again[0] != 42 {
		t.Fatal("Frame must return the same storage")
	}
	if fs.Len() != 1 {
		t.Fatalf("Len = %d", fs.Len())
	}
	fs.Drop(5)
	if fs.Len() != 0 {
		t.Fatal("Drop failed")
	}
}

func TestWordCodecs(t *testing.T) {
	fr := make([]byte, 64)
	PutF64(fr, 8, 2.718281828)
	if got := GetF64(fr, 8); got != 2.718281828 {
		t.Fatalf("F64 = %v", got)
	}
	PutU64(fr, 16, 1<<63)
	if GetU64(fr, 16) != 1<<63 {
		t.Fatal("U64 round trip failed")
	}
	PutI64(fr, 24, -99)
	if GetI64(fr, 24) != -99 {
		t.Fatal("I64 round trip failed")
	}
}

func TestWordCodecProperty(t *testing.T) {
	fr := make([]byte, PageSize)
	f := func(off uint16, v float64) bool {
		o := int(off) % (PageSize - WordSize)
		o -= o % WordSize
		PutF64(fr, o, v)
		got := GetF64(fr, o)
		return got == v || (got != got && v != v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewSpacePanicsOnBadNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSpace(0)
}
