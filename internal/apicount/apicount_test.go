package apicount

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCountPackageStripsCommentsAndBlanks(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "m.go", `// Package m is a model.
package m

// Exported is an API call.
func Exported() int {
	// internal comment

	return 1
}

func unexported() {}

// Also counts methods.
type T struct{}

// M is another API call.
func (T) M() {}
`)
	row, err := CountPackage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if row.APICalls != 2 {
		t.Fatalf("APICalls = %d, want 2 (Exported, M)", row.APICalls)
	}
	// package + func sig + return + close + func + type + method lines:
	// exact count depends on printing, but comments/blank lines must be gone.
	if row.Lines < 6 || row.Lines > 10 {
		t.Fatalf("Lines = %d, outside plausible comment-free range", row.Lines)
	}
	if row.LinesPerCall() <= 0 {
		t.Fatal("LinesPerCall must be positive")
	}
}

func TestCountPackageSkipsTests(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "m.go", "package m\n\nfunc A() {}\n")
	writeFile(t, dir, "m_test.go", "package m\n\nfunc TestA(t *testingT) {}\ntype testingT struct{}\nfunc B() {}\n")
	row, err := CountPackage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if row.APICalls != 1 {
		t.Fatalf("APICalls = %d, want 1 — test files must be excluded", row.APICalls)
	}
}

func TestCountModelsOnRealTree(t *testing.T) {
	rows, err := CountModels("../../models")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("found %d models, want 10 (the paper's nine plus the openmp extension)", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Model] = true
		if r.APICalls == 0 {
			t.Fatalf("model %s has no API calls", r.Model)
		}
		lpc := r.LinesPerCall()
		if lpc < 1 || lpc > 40 {
			t.Fatalf("model %s lines/call = %.1f, outside the paper's plausible range", r.Model, lpc)
		}
	}
	for _, want := range []string{"spmd", "smpspmd", "anl", "treadmarks", "hlrc", "jiajia", "pthreads", "win32", "shmem", "openmp"} {
		if !names[want] {
			t.Fatalf("model %s missing from count", want)
		}
	}
	out := Render(rows)
	if !strings.Contains(out, "Lines/call") || !strings.Contains(out, "jiajia") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestZeroCallRow(t *testing.T) {
	if (Row{Lines: 10}).LinesPerCall() != 0 {
		t.Fatal("zero calls must yield zero ratio")
	}
}

func TestCountPackageMissingDir(t *testing.T) {
	if _, err := CountPackage("/nonexistent/path"); err == nil {
		t.Fatal("expected error")
	}
}
