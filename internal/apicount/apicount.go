// Package apicount reproduces the methodology behind the paper's Table 2
// ("Implementation Complexity of Programming Models Using HAMSTER"): for
// each programming-model package it counts the lines of code implementing
// the model and the number of API calls exported, yielding lines-per-call.
//
// Per §5.2, "each count is computed by a simple script that first removes
// comments and empty lines, and then (to a certain degree) standardizes
// the coding style". This implementation does the same with a real parser:
// comments and blank lines are stripped, gofmt has already standardized
// style, and counting is done on the formatted, comment-free source.
// Exported functions and methods constitute the API calls.
package apicount

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Row is one model's complexity measurement.
type Row struct {
	Model    string
	Lines    int
	APICalls int
}

// LinesPerCall returns the Table 2 ratio.
func (r Row) LinesPerCall() float64 {
	if r.APICalls == 0 {
		return 0
	}
	return float64(r.Lines) / float64(r.APICalls)
}

// CountPackage measures one package directory (non-test Go files).
func CountPackage(dir string) (Row, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Row{}, err
	}
	row := Row{Model: filepath.Base(dir)}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, 0) // comments dropped
		if err != nil {
			return Row{}, fmt.Errorf("apicount: %s: %w", path, err)
		}
		lines, calls, err := countFile(fset, f)
		if err != nil {
			return Row{}, err
		}
		row.Lines += lines
		row.APICalls += calls
	}
	return row, nil
}

func countFile(fset *token.FileSet, f *ast.File) (lines, calls int, err error) {
	// Re-print the comment-free AST in standard style, then count
	// non-blank lines: this is the "standardize the coding style" step.
	var b strings.Builder
	cfg := printer.Config{Mode: printer.TabIndent, Tabwidth: 8}
	if err := cfg.Fprint(&b, fset, f); err != nil {
		return 0, 0, err
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.TrimSpace(line) != "" {
			lines++
		}
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || !fd.Name.IsExported() {
			continue
		}
		calls++
	}
	return lines, calls, nil
}

// CountModels measures every package directly under modelsDir, sorted by
// model name.
func CountModels(modelsDir string) ([]Row, error) {
	entries, err := os.ReadDir(modelsDir)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		row, err := CountPackage(filepath.Join(modelsDir, ent.Name()))
		if err != nil {
			return nil, err
		}
		if row.Lines > 0 {
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Model < rows[j].Model })
	return rows, nil
}

// Render formats rows as the paper's Table 2.
func Render(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %10s %12s\n", "Programming Model", "#Lines", "#APIcalls", "Lines/call")
	var totalLines, totalCalls int
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %8d %10d %12.1f\n", r.Model, r.Lines, r.APICalls, r.LinesPerCall())
		totalLines += r.Lines
		totalCalls += r.APICalls
	}
	if totalCalls > 0 {
		fmt.Fprintf(&b, "%-28s %8d %10d %12.1f\n", "(all models)",
			totalLines, totalCalls, float64(totalLines)/float64(totalCalls))
	}
	return b.String()
}
