// Package machine defines the cost model for the simulated platforms.
//
// The paper's testbed (§5.1) is a four-node Linux cluster of dual 450 MHz
// Intel Xeon SMPs with 512 MB per node, connected both by Dolphin SCI (a
// System Area Network with remote memory access) and by switched Fast
// Ethernet. All costs in this package are virtual nanoseconds charged to
// node clocks (see internal/vclock); they are calibrated to the published
// characteristics of that era's hardware:
//
//   - 450 MHz Xeon: ~2.2 ns/cycle, ~2 cycles per FLOP on this kernel mix.
//   - Switched Fast Ethernet + TCP/IP: ~55 µs one-way latency, 12.5 MB/s
//     wire bandwidth, tens of µs of per-message protocol-stack CPU time.
//   - Dolphin SCI: ~2.5 µs remote read per 8-byte word (PIO), sub-µs posted
//     remote writes, ~80 MB/s block transfer bandwidth.
//
// Absolute numbers are not the reproduction target — the shape of the
// results is — but starting from realistic constants makes the shapes
// emerge from the model rather than being baked in.
package machine

import "hamster/internal/vclock"

// PageSize is the size of a DSM page in bytes. JiaJia and the SCI-VM both
// operate on 4 KiB hardware pages.
const PageSize = 4096

// WordSize is the access granularity of the accessor API in bytes.
const WordSize = 8

// CPU describes per-node processor costs.
type CPU struct {
	// FlopNs is the cost of one floating-point operation.
	FlopNs vclock.Duration
	// AccessNs is the software cost of one accessor operation (the DSM
	// access check plus the cache-hit memory reference). Charged on every
	// read/write regardless of platform.
	AccessNs vclock.Duration
	// PageCopyNs is the cost of copying one 4 KiB page in local memory
	// (twin creation, diff application targets, etc.).
	PageCopyNs vclock.Duration
	// DiffScanNs is the cost of scanning one page word-by-word against its
	// twin to build a diff.
	DiffScanNs vclock.Duration
	// CallNs is the cost of one programming-model API call dispatching into
	// a HAMSTER service (the "thin layer" of §2). This is the per-call
	// overhead evaluated in Figure 2.
	CallNs vclock.Duration
}

// Link describes a message-passing interconnect.
type Link struct {
	// LatencyNs is the one-way wire+switch latency for a minimal message.
	LatencyNs vclock.Duration
	// NsPerByte is the inverse bandwidth for message payloads.
	NsPerByte vclock.Duration
	// SendSWNs / RecvSWNs are the per-message software (protocol stack)
	// costs at the sender and receiver.
	SendSWNs vclock.Duration
	RecvSWNs vclock.Duration
	// HandlerNs is the CPU cost of running an active-message handler at the
	// receiver (charged as stolen cycles when handled asynchronously).
	HandlerNs vclock.Duration
}

// MsgCost returns the end-to-end cost of moving a message of size bytes
// from a sender to a receiver over the link, excluding handler time.
func (l Link) MsgCost(size int) vclock.Duration {
	return l.SendSWNs + l.LatencyNs + vclock.Duration(size)*l.NsPerByte + l.RecvSWNs
}

// RTTCost returns the cost of a minimal request/response exchange carrying
// reqSize and respSize payload bytes.
func (l Link) RTTCost(reqSize, respSize int) vclock.Duration {
	return l.MsgCost(reqSize) + l.HandlerNs + l.MsgCost(respSize)
}

// SAN describes a System Area Network with remote memory access (SCI-like).
type SAN struct {
	// RemoteReadNs is the cost of one uncached remote word read (PIO).
	RemoteReadNs vclock.Duration
	// RemoteWriteNs is the cost of one posted remote word write.
	RemoteWriteNs vclock.Duration
	// StoreBarrierNs is the cost of flushing the posted-write buffer.
	StoreBarrierNs vclock.Duration
	// PageFetchNs is the cost of block-transferring one 4 KiB page.
	PageFetchNs vclock.Duration
	// SyncMsgNs is the cost of one synchronization message (lock/barrier
	// token) over the SAN, end to end.
	SyncMsgNs vclock.Duration
}

// Bus describes a shared SMP memory bus.
type Bus struct {
	// DRAMAccessNs is the cost of a memory access that misses the cache.
	DRAMAccessNs vclock.Duration
	// ContentionPerCPU is the multiplier numerator: the effective DRAM cost
	// is DRAMAccessNs * (100 + ContentionPerCPU*(activeCPUs-1)) / 100.
	ContentionPerCPU vclock.Duration
	// CacheLines is the per-CPU cache size expressed in DSM pages for the
	// page-granularity locality model (512 KiB L2 / 4 KiB = 128).
	CachePages int
	// SyncNs is the cost of an SMP atomic synchronization operation.
	SyncNs vclock.Duration
}

// EffectiveDRAM returns the contention-scaled DRAM access cost when
// activeCPUs processors share the bus.
func (b Bus) EffectiveDRAM(activeCPUs int) vclock.Duration {
	if activeCPUs < 1 {
		activeCPUs = 1
	}
	scale := 100 + uint64(b.ContentionPerCPU)*uint64(activeCPUs-1)
	return vclock.Duration(uint64(b.DRAMAccessNs) * scale / 100)
}

// Params bundles the full cost model for one simulated testbed.
type Params struct {
	Name string
	CPU  CPU
	// Ethernet is the loosely-coupled interconnect used by the software
	// DSM and by the integrated messaging layer on Beowulf configurations.
	Ethernet Link
	// SAN is the SCI-like interconnect used by the hybrid DSM.
	SAN SAN
	// Bus is the SMP memory system.
	Bus Bus
}

// Default returns the cost model calibrated to the paper's testbed.
func Default() Params {
	return Params{
		Name: "4x dual Xeon 450MHz, SCI + switched Fast Ethernet",
		CPU: CPU{
			FlopNs:     4,     // ~2 cycles at 450 MHz
			AccessNs:   11,    // ~5 cycles software check + L1/L2 reference
			PageCopyNs: 8200,  // 4 KiB at ~500 MB/s memcpy
			DiffScanNs: 12300, // word-compare scan of a 4 KiB page
			CallNs:     4_000, // parameterized service dispatch + monitoring (~1800 cycles)
		},
		Ethernet: Link{
			LatencyNs: 55_000, // switched Fast Ethernet + IP stack
			NsPerByte: 80,     // 12.5 MB/s
			SendSWNs:  25_000, // TCP/IP send path on a 450 MHz CPU
			RecvSWNs:  25_000,
			HandlerNs: 15_000, // SIGIO handler + protocol work
		},
		SAN: SAN{
			RemoteReadNs:   2_500,  // PIO remote read, one word
			RemoteWriteNs:  300,    // posted remote store
			StoreBarrierNs: 2_000,  // drain posted-write FIFO
			PageFetchNs:    53_000, // 4 KiB at ~80 MB/s + setup
			SyncMsgNs:      5_000,  // remote-write-based sync token
		},
		Bus: Bus{
			DRAMAccessNs:     180, // ~80 cycles to DRAM
			ContentionPerCPU: 70,  // second CPU adds 70% to miss cost
			CachePages:       128, // 512 KiB L2
			SyncNs:           400, // locked bus transaction
		},
	}
}

// SANLink derives a message-passing link profile for user-level messaging
// carried over the SAN (remote-write message queues, as SCI message layers
// did). Used by the Cluster Control module on hybrid-DSM platforms.
func (p Params) SANLink() Link {
	return Link{
		LatencyNs: p.SAN.SyncMsgNs / 2,
		NsPerByte: 12, // ~80 MB/s block transfer
		SendSWNs:  1_000,
		RecvSWNs:  1_000,
		HandlerNs: 1_000,
	}
}

// BusLink derives a message-passing link profile for "messaging" between
// CPUs of one SMP: a shared-memory queue handoff.
func (p Params) BusLink() Link {
	return Link{
		LatencyNs: p.Bus.SyncNs,
		NsPerByte: 1,
		SendSWNs:  p.Bus.SyncNs / 2,
		RecvSWNs:  p.Bus.SyncNs / 2,
		HandlerNs: p.Bus.SyncNs / 2,
	}
}

// MessagingMode selects how the communication frameworks are integrated
// (§3.3): Coalesced is HAMSTER's single shared messaging layer; Separate
// models the unintegrated systems competing for the interconnect, each
// paying its own signaling overhead.
type MessagingMode int

const (
	// Coalesced: one messaging layer shared by DSM internals and user
	// messaging. This is the HAMSTER integration.
	Coalesced MessagingMode = iota
	// Separate: two uncoordinated messaging stacks. Each message pays an
	// extra demultiplexing/signaling penalty.
	Separate
)

// SeparateStackPenaltyNs is the extra per-message cost paid when two
// uncoordinated communication frameworks share the NIC (duplicate signal
// handling and socket demultiplexing).
const SeparateStackPenaltyNs = 2_000

// WithMessaging returns a copy of p with the Ethernet link adjusted for
// the chosen messaging integration mode.
func (p Params) WithMessaging(mode MessagingMode) Params {
	if mode == Separate {
		p.Ethernet.SendSWNs += SeparateStackPenaltyNs / 2
		p.Ethernet.RecvSWNs += SeparateStackPenaltyNs / 2
		p.Ethernet.HandlerNs += SeparateStackPenaltyNs / 3
	}
	return p
}

// PageCache is a direct-mapped, page-granularity cache model charged on
// local memory references. It exists to make *locality* visible to the
// cost model on every platform: a node sweeping a working set larger than
// its cache (or conflicting allocations) pays DRAM costs, a node iterating
// its own block does not. Direct mapping keeps the per-access cost of the
// simulation itself to a couple of nanoseconds.
//
// One PageCache models one CPU's cache; it must only be touched by that
// CPU's goroutine.
type PageCache struct {
	slots []uint64
}

// NewPageCache builds a cache with the given number of page slots.
func NewPageCache(pages int) *PageCache {
	if pages <= 0 {
		pages = 1
	}
	c := &PageCache{slots: make([]uint64, pages)}
	for i := range c.slots {
		c.slots[i] = ^uint64(0)
	}
	return c
}

// Touch references a page and reports whether it hit.
func (c *PageCache) Touch(page uint64) bool {
	idx := page % uint64(len(c.slots))
	if c.slots[idx] == page {
		return true
	}
	c.slots[idx] = page
	return false
}

// MissCost returns the DRAM cost of one modeled cache miss for a node
// with private memory (DSM cluster node).
func (b Bus) MissCost() vclock.Duration { return b.DRAMAccessNs }
