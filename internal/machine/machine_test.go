package machine

import (
	"testing"
	"testing/quick"

	"hamster/internal/vclock"
)

func TestDefaultSane(t *testing.T) {
	p := Default()
	if p.CPU.FlopNs == 0 || p.CPU.AccessNs == 0 {
		t.Fatal("CPU costs must be non-zero")
	}
	if p.Ethernet.LatencyNs <= p.SAN.SyncMsgNs {
		t.Fatal("Ethernet must be slower than SAN sync — the whole point of hybrid DSM")
	}
	if p.SAN.RemoteReadNs <= p.SAN.RemoteWriteNs {
		t.Fatal("SCI posted writes must be cheaper than PIO reads")
	}
	if p.Bus.CachePages <= 0 {
		t.Fatal("cache must hold at least one page")
	}
}

func TestMsgCostComposition(t *testing.T) {
	l := Link{LatencyNs: 100, NsPerByte: 2, SendSWNs: 10, RecvSWNs: 20, HandlerNs: 5}
	if got := l.MsgCost(0); got != 130 {
		t.Fatalf("MsgCost(0) = %d, want 130", got)
	}
	if got := l.MsgCost(50); got != 230 {
		t.Fatalf("MsgCost(50) = %d, want 230", got)
	}
	if got := l.RTTCost(0, 8); got != 130+5+130+16 {
		t.Fatalf("RTTCost = %d, want %d", got, 130+5+130+16)
	}
}

func TestMsgCostMonotonicInSize(t *testing.T) {
	l := Default().Ethernet
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return l.MsgCost(x) <= l.MsgCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveDRAMContention(t *testing.T) {
	b := Bus{DRAMAccessNs: 100, ContentionPerCPU: 70}
	if got := b.EffectiveDRAM(1); got != 100 {
		t.Fatalf("1 CPU: %d, want 100", got)
	}
	if got := b.EffectiveDRAM(2); got != 170 {
		t.Fatalf("2 CPUs: %d, want 170", got)
	}
	if got := b.EffectiveDRAM(0); got != 100 {
		t.Fatalf("0 CPUs clamps to 1: %d, want 100", got)
	}
}

func TestEffectiveDRAMMonotonicInCPUs(t *testing.T) {
	b := Default().Bus
	f := func(n uint8) bool {
		return b.EffectiveDRAM(int(n)) <= b.EffectiveDRAM(int(n)+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithMessagingSeparateIsSlower(t *testing.T) {
	base := Default()
	sep := base.WithMessaging(Separate)
	coal := base.WithMessaging(Coalesced)
	if coal.Ethernet != base.Ethernet {
		t.Fatal("Coalesced must not change the link")
	}
	if sep.Ethernet.MsgCost(100) <= coal.Ethernet.MsgCost(100) {
		t.Fatal("Separate stacks must cost more per message")
	}
	// Original must be unmodified (value semantics).
	if base.Ethernet.SendSWNs != Default().Ethernet.SendSWNs {
		t.Fatal("WithMessaging mutated its receiver")
	}
}

func TestPageFaultVsRemoteReadTradeoff(t *testing.T) {
	// The cost model must reproduce the paper's central trade-off: a
	// SW-DSM page fault over Ethernet costs hundreds of µs but amortizes
	// over a whole page, while SAN remote reads are µs-scale per word.
	p := Default()
	fault := p.Ethernet.RTTCost(64, PageSize)
	if fault < 300_000 || fault > 1_000_000 {
		t.Fatalf("SW-DSM page fault cost %v outside plausible 0.3–1 ms", fault)
	}
	wordsPerPage := PageSize / WordSize
	sanFullPage := vclock.Duration(wordsPerPage) * p.SAN.RemoteReadNs
	if sanFullPage < fault/4 {
		t.Fatalf("dense remote reads (%v) should not be dramatically cheaper than a page fault (%v)", sanFullPage, fault)
	}
	if p.SAN.PageFetchNs >= fault/4 {
		t.Fatalf("SAN page fetch (%v) must be far cheaper than an Ethernet fault (%v)", p.SAN.PageFetchNs, fault)
	}
}

func TestPageCacheDirectMapped(t *testing.T) {
	c := NewPageCache(4)
	if c.Touch(0) {
		t.Fatal("first touch must miss")
	}
	if !c.Touch(0) {
		t.Fatal("second touch must hit")
	}
	// Page 4 maps to the same slot as page 0: conflict.
	if c.Touch(4) {
		t.Fatal("conflicting page must miss")
	}
	if c.Touch(0) {
		t.Fatal("page 0 must have been evicted by the conflict")
	}
	// Distinct slots coexist.
	c.Touch(1)
	c.Touch(2)
	if !c.Touch(1) || !c.Touch(2) {
		t.Fatal("non-conflicting pages must stay resident")
	}
}

func TestPageCacheZeroSlots(t *testing.T) {
	c := NewPageCache(0) // clamps to one slot
	c.Touch(1)
	if !c.Touch(1) {
		t.Fatal("single-slot cache must still hit")
	}
}

func TestPageCacheWorkingSetProperty(t *testing.T) {
	// Property: a working set no larger than the cache with distinct
	// slots never misses after the first sweep.
	f := func(slots uint8) bool {
		n := int(slots%16) + 1
		c := NewPageCache(n)
		for p := 0; p < n; p++ {
			c.Touch(uint64(p))
		}
		for p := 0; p < n; p++ {
			if !c.Touch(uint64(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMissCost(t *testing.T) {
	b := Bus{DRAMAccessNs: 123}
	if b.MissCost() != 123 {
		t.Fatal("MissCost must be the private-bus DRAM cost")
	}
}
