// Package loadgen provides the deterministic building blocks of the
// open-loop load generator that drives the server-shaped workloads in
// internal/serve: a seeded SplitMix64 draw stream, a Zipfian key-
// popularity sampler, virtual-time Poisson arrival processes, and a
// log-bucketed latency histogram with exact merge semantics.
//
// Everything in this package is a pure function of its seed and inputs —
// no wall clock, no global RNG, no floating-point library calls whose
// results could differ between runs. That purity is what lets the serve
// campaign (BENCH_8) replay bit-identically and run cell-parallel with
// byte-identical JSON: every op a node generates, every key it picks,
// and every histogram bucket it fills is reproducible from (seed, node,
// draw index) alone. The same SplitMix64 finalizer as internal/simnet's
// fault draws is used, so the whole simulator shares one mixing
// function.
//
// Concurrency: a Stream/Arrivals/Hist belongs to one goroutine; Zipf is
// immutable after construction and safe to share.
package loadgen

import (
	"encoding/binary"
	"math"
	"math/bits"
)

// mix64 is the SplitMix64 finalizer (Steele et al.), the same mixer
// internal/simnet uses for fault draws.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Mix64 exposes the shared SplitMix64 finalizer for key scattering and
// checksum folding (serve hashes keys to shards with it).
func Mix64(x uint64) uint64 { return mix64(x) }

// Stream is a SplitMix64 sequence: the golden-ratio increment walks the
// state, the finalizer whitens each output. State is one word, so a
// stream checkpoints as 8 bytes and restores exactly.
type Stream struct {
	state uint64
}

// NewStream seeds a stream. Distinct seeds give independent streams;
// serve derives per-node streams as seed ^ Mix64(node).
func NewStream(seed uint64) *Stream { return &Stream{state: seed} }

// Next returns the next 64-bit draw.
func (s *Stream) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix64(s.state)
}

// Float64 returns the next draw as a uniform in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Next()>>11) / float64(uint64(1)<<53)
}

// Intn returns a uniform integer in [0, n). n must be > 0.
func (s *Stream) Intn(n int) int {
	return int(s.Next() % uint64(n))
}

// ExpNs draws an exponential with the given mean in nanoseconds,
// floored at 1 ns so arrival times strictly advance.
func (s *Stream) ExpNs(meanNs float64) uint64 {
	u := s.Float64()
	d := -math.Log(1-u) * meanNs
	if d < 1 {
		return 1
	}
	return uint64(d)
}

// State returns the stream position for checkpointing.
func (s *Stream) State() uint64 { return s.state }

// SetState restores a checkpointed stream position.
func (s *Stream) SetState(v uint64) { s.state = v }

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^skew. skew = 0 degrades to the uniform distribution; the
// serving literature's standard skew is ~0.99 (YCSB's zipfian). The
// sampler precomputes the CDF once and answers each draw with a binary
// search, so sampling is deterministic, allocation-free, and O(log n).
type Zipf struct {
	cdf  []float64
	skew float64
}

// NewZipf builds a sampler over n ranks. n must be > 0; skew must be
// >= 0.
func NewZipf(n int, skew float64) *Zipf {
	z := &Zipf{cdf: make([]float64, n), skew: skew}
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), skew)
		z.cdf[k] = sum
	}
	inv := 1 / sum
	for k := range z.cdf {
		z.cdf[k] *= inv
	}
	z.cdf[n-1] = 1 // guard against rounding shortfall
	return z
}

// N returns the rank-space size.
func (z *Zipf) N() int { return len(z.cdf) }

// Skew returns the configured skew.
func (z *Zipf) Skew() float64 { return z.skew }

// Prob returns rank k's probability mass (tests check the sampler
// against these).
func (z *Zipf) Prob(k int) float64 {
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// Sample draws a rank using the stream.
func (z *Zipf) Sample(s *Stream) int {
	u := s.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Arrivals is an open-loop Poisson arrival process in virtual
// nanoseconds: the aggregate stream of a node's many client sessions,
// merged (the superposition of independent Poisson processes is Poisson
// with the summed rate). Peek/Take split lookahead from consumption so
// a caller can drain exactly the arrivals inside a time window.
type Arrivals struct {
	s    Stream
	next uint64
	mean float64
}

// NewArrivals builds a process with the given mean inter-arrival gap in
// virtual nanoseconds.
func NewArrivals(seed uint64, meanGapNs float64) *Arrivals {
	a := &Arrivals{s: Stream{state: seed}, mean: meanGapNs}
	a.next = a.s.ExpNs(a.mean)
	return a
}

// Peek returns the next arrival time without consuming it.
func (a *Arrivals) Peek() uint64 { return a.next }

// Take consumes and returns the next arrival time.
func (a *Arrivals) Take() uint64 {
	t := a.next
	a.next += a.s.ExpNs(a.mean)
	return t
}

// Draws exposes the embedded gap stream. Drawing from it interleaves
// with the arrival gaps on the same stream; callers who need decision
// draws (key choice, op mix) independent of the arrival process should
// keep a separate Stream and use this only for state capture.
func (a *Arrivals) Draws() *Stream { return &a.s }

// State captures the process for checkpointing (stream position plus
// pending arrival time).
func (a *Arrivals) State() (stream, next uint64) { return a.s.state, a.next }

// SetState restores a captured process.
func (a *Arrivals) SetState(stream, next uint64) { a.s.state, a.next = stream, next }

// histBuckets bounds the bucket array: values below 64 ns are exact,
// larger values land in 32 sub-buckets per power of two (~3% relative
// resolution) up to 2^63 ns.
const histBuckets = 64 + 32*57

// Hist is a log-bucketed latency histogram. Adds are O(1), merges are
// element-wise sums, and quantiles are exact bucket upper bounds — so
// any way of partitioning the same set of samples across nodes merges
// to the identical histogram, which is what makes per-node collection
// safe for a bit-reproducible campaign.
type Hist struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < 64 {
		return int(v)
	}
	e := bits.Len64(v) - 7 // v in [64<<e, 128<<e)
	return 64 + 32*e + int((v-(64<<e))>>(e+1))
}

// bucketMax returns a bucket's inclusive upper bound.
func bucketMax(i int) uint64 {
	if i < 64 {
		return uint64(i)
	}
	e := (i - 64) / 32
	sub := uint64((i - 64) % 32)
	return (64 << e) + (sub+1)<<(e+1) - 1
}

// Add records one sample in nanoseconds.
func (h *Hist) Add(ns uint64) {
	h.buckets[bucketOf(ns)]++
	h.count++
	h.sum += ns
}

// Merge folds another histogram into this one.
func (h *Hist) Merge(o *Hist) {
	for i, v := range o.buckets {
		h.buckets[i] += v
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the total of all recorded samples.
func (h *Hist) Sum() uint64 { return h.sum }

// Mean returns the average sample (0 when empty).
func (h *Hist) Mean() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding that sample — a deterministic, mergeable
// approximation with ~3% relative error. Returns 0 when empty.
func (h *Hist) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, v := range h.buckets {
		seen += v
		if seen >= target {
			return bucketMax(i)
		}
	}
	return bucketMax(histBuckets - 1)
}

// histBlobLen is the wire size of an encoded histogram.
const histBlobLen = 8 * (histBuckets + 2)

// Encode serializes the histogram for checkpoint capture.
func (h *Hist) Encode(dst []byte) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], h.count)
	dst = append(dst, b[:]...)
	binary.LittleEndian.PutUint64(b[:], h.sum)
	dst = append(dst, b[:]...)
	for _, v := range h.buckets {
		binary.LittleEndian.PutUint64(b[:], v)
		dst = append(dst, b[:]...)
	}
	return dst
}

// Decode restores an encoded histogram and returns the remaining bytes
// (ok = false on a short buffer).
func (h *Hist) Decode(src []byte) (rest []byte, ok bool) {
	if len(src) < histBlobLen {
		return src, false
	}
	h.count = binary.LittleEndian.Uint64(src[0:])
	h.sum = binary.LittleEndian.Uint64(src[8:])
	for i := range h.buckets {
		h.buckets[i] = binary.LittleEndian.Uint64(src[16+8*i:])
	}
	return src[histBlobLen:], true
}
