package loadgen

import (
	"math"
	"testing"
)

// goldenDraws pins the first 64 outputs of a Stream seeded with 0x5EED.
// The generator feeds every campaign cell; any change to the recurrence
// or the finalizer silently invalidates every pinned benchmark artifact,
// so the raw draws themselves are frozen here.
var goldenDraws = [64]uint64{
	0x09f1fd9d03f0a9b4, 0x553274161bbf8475, 0x5d5bca4696b343b3, 0x70d29b6c7d22528d,
	0x0bf2b716f9915475, 0x5eb7f92b95387cca, 0x296cd0f2c21d7f90, 0x1289a69805c125b1,
	0xdaa27fb8dacb9e73, 0x3ed08d59cb3f4727, 0x58a5f17b6c15c659, 0x651ac042fa7b481a,
	0x22af6aeaa88e8dcc, 0x2d2bae64640abfb9, 0xad0e83a710231b07, 0x9d30ff2169d91f12,
	0xf5ff07c9523504dd, 0x1273c823ba66eec0, 0x47e1dbe249cb520b, 0xbbea42bd69484adc,
	0xc33e61bc6ef9e4c4, 0x752cd583231b5114, 0xe53dc6e1988622e5, 0x928eb721ed361ba3,
	0x10bf7972f379031e, 0x974041d15ad75c38, 0xff9b273f42286387, 0x2601349fef087eb0,
	0x5753f8ef429a4a7e, 0x2663e5e9dcbcbaba, 0xa8bb872e52c6235c, 0xe1774d56b0dc91ac,
	0x8634930f702b6452, 0x1674658f30892ddd, 0x2f957488e4fd469e, 0x656ed1cb9a126362,
	0x5325662609163089, 0x3ba278a39643a1bc, 0x0efa3dda544646d9, 0x4cc8c74c1fb520cc,
	0x626c1ef331f85c18, 0x01457b862cc7b3c9, 0x3825403df6f9ad71, 0x272c78c413c9d42d,
	0x4dde6838b289c9ce, 0x1467a1289e64eb89, 0x00eb8b8a36b5b98d, 0xf2443b542bf81344,
	0x278641cad03ad4be, 0x5a71cd3d503faeee, 0x2c58daa06446969a, 0x79559ff0f9d26976,
	0x4a127fe7aac0fffd, 0xbca4883827803ecc, 0xb60627c1559d3728, 0x0d1d73ce3f48b12d,
	0x78e74b9eb7b50e87, 0xeb26c664ba822e65, 0xef794a8dca9dcb0a, 0x89119cbf1ee9784b,
	0x180b37dff135de45, 0xbe1b67d3e6055f33, 0x6fbe6fba62ce02c8, 0x1fbf7b87b4f36bc8,
}

func TestStreamGoldenDraws(t *testing.T) {
	s := NewStream(0x5EED)
	for i, want := range goldenDraws {
		if got := s.Next(); got != want {
			t.Fatalf("draw %d = %#x, want %#x — the stream recurrence changed; "+
				"every pinned campaign artifact is now invalid", i, got, want)
		}
	}
}

func TestStreamStateRoundTrip(t *testing.T) {
	s := NewStream(42)
	for i := 0; i < 17; i++ {
		s.Next()
	}
	saved := s.State()
	var want [8]uint64
	for i := range want {
		want[i] = s.Next()
	}
	s.SetState(saved)
	for i := range want {
		if got := s.Next(); got != want[i] {
			t.Fatalf("resumed draw %d = %#x, want %#x", i, got, want[i])
		}
	}
}

// The inter-arrival gaps must be exponential with the configured mean:
// over 200k draws the sample mean lands within 2% and consecutive
// arrival times strictly increase (ExpNs floors at 1 ns).
func TestArrivalsPoissonMean(t *testing.T) {
	const mean = 4000.0
	const n = 200_000
	a := NewArrivals(99, mean)
	var prev uint64
	var sum float64
	for i := 0; i < n; i++ {
		at := a.Take()
		if at <= prev {
			t.Fatalf("arrival %d at %d does not advance past %d", i, at, prev)
		}
		sum += float64(at - prev)
		prev = at
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("mean inter-arrival gap %.1f ns, want %.0f ±2%%", got, mean)
	}
}

func TestArrivalsPeekIsTake(t *testing.T) {
	a := NewArrivals(7, 1000)
	for i := 0; i < 100; i++ {
		p := a.Peek()
		if got := a.Take(); got != p {
			t.Fatalf("draw %d: Peek %d != Take %d", i, p, got)
		}
	}
}

// Zipf sampling must match its own analytic distribution: a chi-squared
// test of 100k samples against the Prob masses over 64 ranks. With 63
// degrees of freedom the 99.9th percentile of chi-squared is ~103, so a
// sound sampler stays far below the 140 failure bar while real skew
// bugs (off-by-one rank, un-normalized CDF) blow past it.
func TestZipfChiSquared(t *testing.T) {
	for _, skew := range []float64{0, 0.99, 1.5} {
		const ranks = 64
		const samples = 100_000
		z := NewZipf(ranks, skew)
		s := NewStream(0xC0FFEE)
		var counts [ranks]int
		for i := 0; i < samples; i++ {
			r := z.Sample(s)
			if r < 0 || r >= ranks {
				t.Fatalf("skew %v: sample %d out of range", skew, r)
			}
			counts[r]++
		}
		var chi2 float64
		for r := 0; r < ranks; r++ {
			expect := z.Prob(r) * samples
			if expect <= 0 {
				t.Fatalf("skew %v: rank %d has non-positive mass", skew, r)
			}
			d := float64(counts[r]) - expect
			chi2 += d * d / expect
		}
		if chi2 > 140 {
			t.Fatalf("skew %v: chi-squared %.1f over 63 dof — sampler does not match its own distribution", skew, chi2)
		}
		if skew > 0 && counts[0] <= counts[ranks-1] {
			t.Fatalf("skew %v: rank 0 (%d) not hotter than rank %d (%d)", skew, counts[0], ranks-1, counts[ranks-1])
		}
	}
}

// With skew 0 every rank has identical mass.
func TestZipfUniformAtZeroSkew(t *testing.T) {
	z := NewZipf(10, 0)
	for r := 0; r < 10; r++ {
		if math.Abs(z.Prob(r)-0.1) > 1e-12 {
			t.Fatalf("rank %d mass %v, want 0.1", r, z.Prob(r))
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	for v := uint64(1); v <= 1000; v++ {
		h.Add(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	// Bucket upper bounds overestimate by at most the bucket width
	// (1/32 relative above the linear range).
	p50 := h.Quantile(0.50)
	if p50 < 500 || p50 > 532 {
		t.Fatalf("p50 = %d, want ~500", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 990 || p99 > 1024 {
		t.Fatalf("p99 = %d, want ~990", p99)
	}
	if got := h.Quantile(0); got < 1 || got > 2 {
		t.Fatalf("p0 = %d, want ~1", got)
	}
}

func TestHistMergeEncodeDecode(t *testing.T) {
	var a, b Hist
	s := NewStream(5)
	for i := 0; i < 5000; i++ {
		a.Add(s.Next() % 1_000_000)
		b.Add(s.Next() % 300)
	}
	var m Hist
	m.Merge(&a)
	m.Merge(&b)
	if m.Count() != a.Count()+b.Count() || m.Sum() != a.Sum()+b.Sum() {
		t.Fatal("merge lost mass")
	}
	blob := m.Encode(nil)
	var d Hist
	rest, ok := d.Decode(blob)
	if !ok || len(rest) != 0 {
		t.Fatalf("decode failed (ok=%v, %d trailing bytes)", ok, len(rest))
	}
	if d.Count() != m.Count() || d.Sum() != m.Sum() || d.Quantile(0.95) != m.Quantile(0.95) {
		t.Fatal("decode round-trip changed the histogram")
	}
	if _, ok := d.Decode(blob[:10]); ok {
		t.Fatal("truncated blob decoded")
	}
}

// Every representable value must land in a bucket whose recorded upper
// bound is >= the value, and bucket indexes must be monotone in v —
// the quantile overestimate-never-underestimate contract.
func TestHistBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 63, 64, 65, 127, 128, 1 << 12, 1<<40 + 12345, math.MaxUint64 >> 1} {
		i := bucketOf(v)
		if i < prev {
			t.Fatalf("bucket index not monotone at %d", v)
		}
		prev = i
		if ub := bucketMax(i); ub < v {
			t.Fatalf("value %d lands in bucket %d with upper bound %d", v, i, ub)
		}
	}
}
