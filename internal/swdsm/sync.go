package swdsm

import (
	"fmt"
	"slices"

	"hamster/internal/amsg"
	"hamster/internal/hsync"
	"hamster/internal/memsim"
	"hamster/internal/notices"
	"hamster/internal/perfmon"
	"hamster/internal/simnet"
	"hamster/internal/vclock"
)

// lockState is one global lock. The lock lives at a home node (id % nodes,
// like JiaJia's static lock distribution); acquisition and release are
// modeled as messages to the home plus the virtual-time serialization of
// vclock.VLock. The pending map carries the scope's write notices: when a
// node releases, the pages it modified are queued for every other node and
// delivered (as invalidations) on that node's next acquire of this lock.
type lockState struct {
	id      int
	home    int
	vl      *vclock.VLock
	pending *notices.Board
	// dl replaces the single-home request path above hsync.Threshold
	// nodes: the token migrates to the acquirer along probable-holder
	// hint chains (IVY's probable-owner machinery applied to locks), so
	// no node serializes every acquire. nil below the threshold.
	dl *hsync.DLock
}

// NewLock implements platform.Substrate. Locks are distributed across
// nodes round-robin.
func (d *DSM) NewLock() int {
	d.lockMu.Lock()
	defer d.lockMu.Unlock()
	id := len(d.locks)
	st := &lockState{
		id:      id,
		home:    id % len(d.nodes),
		vl:      vclock.NewVLock(),
		pending: notices.NewBoard(),
	}
	if d.hier {
		st.dl = hsync.NewDLock(st.vl, len(d.nodes), st.home)
	}
	d.locks = append(d.locks, st)
	return id
}

// msgCost prices one protocol message between two specific nodes under
// the adopted topology (the flat preset reduces to the uniform
// Ethernet.MsgCost the pre-topology protocol charged).
func (d *DSM) msgCost(from, to, bytes int) vclock.Duration {
	return d.topo.MsgCost(d.params.Ethernet, from, to, bytes)
}

func (d *DSM) stealAt(node int, dur vclock.Duration) { d.clocks[node].Steal(dur) }

func (d *DSM) lock(id int) *lockState {
	d.lockMu.Lock()
	defer d.lockMu.Unlock()
	if id < 0 || id >= len(d.locks) {
		panic(fmt.Sprintf("swdsm: unknown lock %d", id))
	}
	return d.locks[id]
}

// noticeMsgBytes is the wire size of a notice list.
func noticeMsgBytes(n int) int { return 16 + 8*n }

// Acquire implements platform.Substrate: take the lock, then invalidate
// the cached copies of every page covered by the lock's pending write
// notices (scope consistency's entry action).
func (d *DSM) Acquire(nodeID, lock int) {
	n := d.access(nodeID)
	st := d.lock(lock)
	clk := d.clocks[nodeID]
	t0 := clk.Now()

	prev := st.home
	var reqCost vclock.Duration
	switch {
	case st.dl != nil:
		// Distributed queue: the request forwards along the
		// probable-holder chain to the current tail; every hop is one
		// message on the acquirer's timeline and one stolen interrupt at
		// the forwarder.
		p, fwd, hops := st.dl.Request(nodeID, noticeMsgBytes(0), d.msgCost, d.stealAt, d.params.Ethernet.HandlerNs)
		prev = p
		if prev == nodeID {
			reqCost = amsg.LocalCallNs
		} else {
			reqCost = fwd
			n.stats.ProtocolMsgs += uint64(hops)
		}
	case st.home != nodeID:
		reqCost = d.msgCost(nodeID, st.home, noticeMsgBytes(0))
		d.clocks[st.home].Steal(d.params.Ethernet.HandlerNs)
		n.stats.ProtocolMsgs++
	default:
		reqCost = amsg.LocalCallNs
	}
	st.vl.Acquire(clk, reqCost, 0)

	// Drain into the node's reusable scratch: the boards keep their queue
	// capacity (TakeInto), the node keeps the drained list's, so steady
	// acquire/release cycles allocate nothing for notices.
	pages := st.pending.TakeInto(nodeID, n.noticeScratch[:0])
	if d.protocol == EagerRC {
		// Eager RC: any acquire applies every pending notice, regardless
		// of which lock published it.
		pages = d.rcPending.TakeInto(nodeID, pages)
	}
	n.noticeScratch = pages
	if st.dl != nil {
		if prev != nodeID {
			// The token grant from the predecessor carries the pending
			// write notices: one message, priced for where the two nodes
			// sit, with the predecessor paying the grant interrupt.
			clk.AdvanceCat(vclock.CatNetwork, d.msgCost(prev, nodeID, noticeMsgBytes(len(pages))))
			d.stealAt(prev, d.params.Ethernet.HandlerNs)
			n.stats.ProtocolMsgs++
		}
	} else if st.home != nodeID {
		if d.agg.Batch {
			// Piggybacked: the notice list rides the grant reply, so only
			// its payload bytes cost anything — the baseline's separate
			// notice message disappears.
			clk.AdvanceCat(vclock.CatNetwork, d.piggybackNoticeCost(len(pages)))
		} else {
			clk.AdvanceCat(vclock.CatNetwork, d.msgCost(nodeID, st.home, noticeMsgBytes(len(pages))))
			n.stats.ProtocolMsgs++
		}
	}
	n.invalidate(pages)
	n.stats.LockAcquires++
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(nodeID, perfmon.EvLockAcquire, t0, vclock.Since(t0, clk.Now()), uint64(lock), 0)
		if len(pages) > 0 {
			rec.Record(nodeID, perfmon.EvInvalidate, clk.Now(), 0, uint64(len(pages)), 0)
		}
	}
}

// Release implements platform.Substrate: flush this node's modifications
// to their homes, attach the write notices to the lock, and free it.
func (d *DSM) Release(nodeID, lock int) {
	n := d.access(nodeID)
	st := d.lock(lock)
	clk := d.clocks[nodeID]
	t0 := clk.Now()

	pages := n.flushAll()
	if d.protocol == EagerRC {
		// Eager RC: publish the notices toward every peer at release,
		// paying one message per peer (the eagerness the lazy protocols
		// were invented to avoid).
		d.rcPending.AddForOthers(nodeID, len(d.nodes), pages)
		if len(pages) > 0 {
			if d.hier {
				// Per-pair pricing: a cross-rack peer costs more than a
				// rack neighbor.
				var sum vclock.Duration
				for m := range d.nodes {
					if m != nodeID {
						sum += d.msgCost(nodeID, m, noticeMsgBytes(len(pages)))
					}
				}
				clk.AdvanceCat(vclock.CatNetwork, sum)
			} else {
				clk.AdvanceCat(vclock.CatNetwork, vclock.Duration(len(d.nodes)-1)*
					d.params.Ethernet.MsgCost(noticeMsgBytes(len(pages))))
			}
			n.stats.ProtocolMsgs += uint64(len(d.nodes) - 1)
			for m := range d.nodes {
				if m != nodeID {
					d.clocks[m].Steal(d.params.Ethernet.HandlerNs)
				}
			}
		}
	} else {
		st.pending.AddForOthers(nodeID, len(d.nodes), pages)
	}
	if rec := d.rec; rec != nil && rec.Enabled() && len(pages) > 0 {
		rec.Record(nodeID, perfmon.EvWriteNotice, clk.Now(), 0, uint64(len(pages)), uint64(lock))
	}

	var relCost vclock.Duration
	switch {
	case st.dl != nil:
		// Distributed queue: release keeps the token local — the next
		// acquirer's grant pays the handoff — so releasing costs only the
		// local bookkeeping call.
		relCost = amsg.LocalCallNs
	case st.home != nodeID:
		relCost = d.msgCost(nodeID, st.home, noticeMsgBytes(len(pages)))
		d.clocks[st.home].Steal(d.params.Ethernet.HandlerNs)
		n.stats.ProtocolMsgs++
	default:
		relCost = amsg.LocalCallNs
	}
	st.vl.Release(clk, relCost)
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(nodeID, perfmon.EvLockRelease, t0, vclock.Since(t0, clk.Now()), uint64(lock), 0)
	}
}

// invalidate drops cached copies of the noticed pages. A page that is
// locally dirty (false sharing across scopes) is flushed home first so no
// modification is lost — the multiple-writer guarantee.
func (n *node) invalidate(pages []memsim.PageID) {
	if n.dsm.dropInval {
		// Config.DropInvalidations: the deliberately broken engine the
		// conformance harness's negative test must catch. Stale copies
		// (and unflushed false-sharing diffs) survive synchronization.
		return
	}
	n.bumpGen()
	for _, p := range pages {
		cp, ok := n.cache[p]
		if !ok {
			continue
		}
		if cp.twin != nil {
			n.flushPage(p, cp)
		}
		n.notePrefetchDrop(p)
		n.lru.remove(cp)
		delete(n.cache, p)
		delete(n.dirty, p)
		putCpage(cp)
		n.stats.Invalidations++
	}
}

// flushPage diffs one dirty page against its twin and applies the diff at
// the home. The page stays cached and clean.
func (n *node) flushPage(p memsim.PageID, cp *cpage) {
	d := n.dsm
	clk := d.clocks[n.id]
	t0 := clk.Now()
	clk.AdvanceCat(vclock.CatProtocol, d.params.CPU.DiffScanNs)
	diff := buildDiff(cp.data, cp.twin)
	putTwin(cp.twin)
	cp.twin = nil
	delete(n.dirty, p)
	if len(diff) == 0 {
		putDiff(diff)
		return
	}
	home := d.space.Home(p)
	// Enc.Blob copies the diff into the request, so the scratch buffer can
	// be recycled as soon as the call returns — and the encoder with it.
	enc := amsg.GetEnc()
	req := enc.U64(uint64(p)).Blob(diff).Bytes()
	n.stats.ProtocolMsgs++
	if _, err := d.layer.CallErr(simnet.NodeID(n.id), simnet.NodeID(home), kindApplyDiff, req); err != nil {
		// A diff that cannot reach the authoritative copy means writes
		// are lost; no safe degradation exists, so stop with a diagnostic.
		panic(fmt.Sprintf("swdsm: node %d cannot flush page %d to home node %d (%d modified bytes would be lost): %v",
			n.id, p, home, len(diff), err))
	}
	enc.Free()
	n.stats.DiffsCreated++
	n.stats.DiffBytes += uint64(len(diff))
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(n.id, perfmon.EvDiffCreate, t0, vclock.Since(t0, clk.Now()), uint64(p), uint64(len(diff)))
	}
	putDiff(diff)
	cp.diffStreak++
}

// flushAll flushes every dirty cached page home and returns the write
// notices for this interval: all pages this node modified, cached or
// home-resident. Pages are flushed in sorted order, never map order: the
// fault-injection draw streams pair each transmission on a link with a
// fixed fate position, so the sequence of flush calls (and their diff
// sizes) must be a pure function of program state for seeded campaigns
// to replay bit-identically.
func (n *node) flushAll() []memsim.PageID {
	n.bumpGen()
	out := make([]memsim.PageID, 0, len(n.dirty)+len(n.homeDirty))
	for p := range n.dirty {
		out = append(out, p)
	}
	slices.Sort(out)
	if n.dsm.agg.Batch {
		n.flushBatched(out)
	} else {
		for _, p := range out {
			if cp, ok := n.cache[p]; ok && cp.twin != nil {
				n.flushPage(p, cp)
			}
		}
	}
	homeStart := len(out)
	for p := range n.homeDirty {
		out = append(out, p)
		delete(n.homeDirty, p)
		n.markCkptDirty(p)
	}
	slices.Sort(out[homeStart:])
	return out
}

// barrierState coordinates the global barrier: a virtual-time barrier plus
// per-epoch merged write notices.
type barrierState struct {
	vb       *vclock.VBarrier
	exchange *notices.EpochExchange
}

func newBarrierState(parties int) *barrierState {
	return &barrierState{
		vb:       vclock.NewVBarrier(parties),
		exchange: notices.NewEpochExchange(parties),
	}
}

// Barrier implements platform.Substrate. The barrier manager is node 0
// (matching JiaJia's centralized barrier): every node flushes its
// modifications home, deposits its write notices, and after the rendezvous
// invalidates its cached copies of every page any other node modified.
func (d *DSM) Barrier(nodeID int) {
	n := d.access(nodeID)
	clk := d.clocks[nodeID]
	b := d.barrier
	const manager = 0

	t0 := clk.Now()
	mine := n.flushAll()
	epoch := n.epoch
	n.epoch++

	b.exchange.Deposit(epoch, nodeID, mine)
	if rec := d.rec; rec != nil && rec.Enabled() && len(mine) > 0 {
		rec.Record(nodeID, perfmon.EvWriteNotice, clk.Now(), 0, uint64(len(mine)), ^uint64(0))
	}

	var arriveCost vclock.Duration
	switch {
	case nodeID == manager:
		arriveCost = amsg.LocalCallNs
	case d.hier:
		// Tree barrier: the arrival message climbs the reduction tree —
		// its full path bounds when the root can release — but only the
		// direct parent takes the arrival interrupt; ancestors see one
		// aggregated message per subtree instead of one per node, which
		// is what removes the manager incast at 64–256 nodes.
		arriveCost = d.tree.PathCost(nodeID, noticeMsgBytes(len(mine)), d.msgCost)
		d.stealAt(d.tree.Parent(nodeID), d.params.Ethernet.HandlerNs)
		n.stats.ProtocolMsgs++
	default:
		arriveCost = d.msgCost(nodeID, manager, noticeMsgBytes(len(mine)))
		d.clocks[manager].Steal(d.params.Ethernet.HandlerNs)
		n.stats.ProtocolMsgs++
	}
	b.vb.Arrive(clk, arriveCost, 0)

	// Collect everyone else's notices for this epoch.
	others := b.exchange.CollectOthers(epoch, nodeID)

	if nodeID != manager {
		switch {
		case d.hier:
			// The release wave carries the merged notices back down the
			// tree; each node pays its root path once.
			clk.AdvanceCat(vclock.CatNetwork, d.tree.PathCost(nodeID, noticeMsgBytes(len(others)), d.msgCost))
			n.stats.ProtocolMsgs++
		case d.agg.Batch:
			// Piggybacked: the merged notices ride the barrier-release
			// broadcast the manager sends anyway (see Acquire).
			clk.AdvanceCat(vclock.CatNetwork, d.piggybackNoticeCost(len(others)))
		default:
			clk.AdvanceCat(vclock.CatNetwork, d.msgCost(nodeID, manager, noticeMsgBytes(len(others))))
			n.stats.ProtocolMsgs++
		}
	}
	n.invalidate(others)
	if rec := d.rec; rec != nil && rec.Enabled() && len(others) > 0 {
		rec.Record(nodeID, perfmon.EvInvalidate, clk.Now(), 0, uint64(len(others)), 0)
	}

	// Drain pending per-lock notices too: a barrier is a global
	// synchronization point, so modifications published under any lock
	// become visible here.
	d.lockMu.Lock()
	locks := append([]*lockState(nil), d.locks...)
	d.lockMu.Unlock()
	for _, st := range locks {
		n.noticeScratch = st.pending.TakeInto(nodeID, n.noticeScratch[:0])
		n.invalidate(n.noticeScratch)
	}
	n.noticeScratch = d.rcPending.TakeInto(nodeID, n.noticeScratch[:0])
	n.invalidate(n.noticeScratch)

	// Home migration phase (when enabled): a second rendezvous opens a
	// quiescent window in which the winning nodes retarget page homes.
	if d.migrateAfter > 0 {
		d.migration.depositWishes(epoch, nodeID, n.migrationWishes())
		arrive := d.msgCost(nodeID, manager, 16)
		if nodeID == manager {
			arrive = amsg.LocalCallNs
		} else {
			n.stats.ProtocolMsgs++
		}
		d.vbMig.Arrive(clk, arrive, 0)
		if d.migration.peekAny(epoch) {
			n.performMigrations(d.migration.grants(epoch, nodeID))
			if nodeID != manager {
				n.stats.ProtocolMsgs++
			}
			d.vbMig.Arrive(clk, arrive, 0)
		}
		d.migration.finish(epoch, len(d.nodes))
	}
	n.stats.BarrierCrossings++
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(nodeID, perfmon.EvBarrier, t0, vclock.Since(t0, clk.Now()), epoch, 0)
	}
}

// Fence implements platform.Substrate: flush all local modifications home
// and drop every cached page, forcing refetches. Together with every other
// node fencing, this yields sequential-consistency-like behavior (at great
// cost — exactly why relaxed models exist).
func (d *DSM) Fence(nodeID int) {
	n := d.access(nodeID)
	n.bumpGen()
	n.flushAll()
	cached := make([]memsim.PageID, 0, len(n.cache))
	for p := range n.cache {
		cached = append(cached, p)
	}
	slices.Sort(cached) // deterministic flush order (see flushAll)
	for _, p := range cached {
		cp := n.cache[p]
		if cp.twin != nil {
			n.flushPage(p, cp)
		}
		n.notePrefetchDrop(p)
		n.lru.remove(cp)
		delete(n.cache, p)
		putCpage(cp)
		n.stats.Invalidations++
	}
	for p := range n.dirty {
		delete(n.dirty, p)
	}
}

// TryAcquire implements platform.Substrate: non-blocking Acquire. On
// success the pending write notices are consumed and applied exactly as in
// Acquire.
func (d *DSM) TryAcquire(nodeID, lock int) bool {
	n := d.access(nodeID)
	st := d.lock(lock)
	clk := d.clocks[nodeID]
	t0 := clk.Now()

	prev := st.home
	var reqCost vclock.Duration
	switch {
	case st.dl != nil:
		// Probe prices the forwarding chain without claiming the token —
		// a failed try must leave the probable-holder state untouched.
		p, fwd := st.dl.Probe(nodeID, noticeMsgBytes(0), d.msgCost)
		prev = p
		if prev == nodeID {
			reqCost = amsg.LocalCallNs
		} else {
			reqCost = fwd
			n.stats.ProtocolMsgs++
		}
	case st.home != nodeID:
		reqCost = d.msgCost(nodeID, st.home, noticeMsgBytes(0))
		d.clocks[st.home].Steal(d.params.Ethernet.HandlerNs)
		n.stats.ProtocolMsgs++
	default:
		reqCost = amsg.LocalCallNs
	}
	if !st.vl.TryAcquire(clk, reqCost, 0) {
		return false
	}
	if st.dl != nil {
		st.dl.Commit(nodeID)
	}
	pages := st.pending.TakeInto(nodeID, n.noticeScratch[:0])
	if d.protocol == EagerRC {
		pages = d.rcPending.TakeInto(nodeID, pages)
	}
	n.noticeScratch = pages
	if st.dl != nil {
		if prev != nodeID {
			clk.AdvanceCat(vclock.CatNetwork, d.msgCost(prev, nodeID, noticeMsgBytes(len(pages))))
			d.stealAt(prev, d.params.Ethernet.HandlerNs)
			n.stats.ProtocolMsgs++
		}
	} else if st.home != nodeID {
		if d.agg.Batch {
			clk.AdvanceCat(vclock.CatNetwork, d.piggybackNoticeCost(len(pages)))
		} else {
			clk.AdvanceCat(vclock.CatNetwork, d.msgCost(nodeID, st.home, noticeMsgBytes(len(pages))))
			n.stats.ProtocolMsgs++
		}
	}
	n.invalidate(pages)
	n.stats.LockAcquires++
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(nodeID, perfmon.EvLockAcquire, t0, vclock.Since(t0, clk.Now()), uint64(lock), 0)
	}
	return true
}

// FlushInterval flushes this node's interval modifications home and
// returns the write notices — the engine-level hook multi-DSM composition
// (§6) uses to attach this engine's consistency actions to an external
// synchronization object. Call from the node's own goroutine.
func (d *DSM) FlushInterval(nodeID int) []memsim.PageID {
	return d.access(nodeID).flushAll()
}

// InvalidatePages drops this node's cached copies of the given pages
// (flushing dirty ones first) — the acquire-side hook for multi-DSM
// composition. Pages this engine does not cache are ignored.
func (d *DSM) InvalidatePages(nodeID int, pages []memsim.PageID) {
	d.access(nodeID).invalidate(pages)
}
