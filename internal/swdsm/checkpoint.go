package swdsm

// Checkpoint provider surface: the structural interface the checkpoint
// coordinator (internal/checkpoint) captures and restores a DSM through.
// This file implements it using only memsim/pagestore/builtin types so
// the dependency points one way — checkpoint imports swdsm (for the
// exported diff codec), never the reverse.
//
// Capture runs at a barrier, i.e. at quiescence: every twin has been
// flushed, every diff applied, so the home frames ARE the global memory
// image (the consistent-cut argument of DESIGN.md §5c). The per-frame
// mutexes still guard every copy because commit traffic of other nodes'
// captures may steal handler time concurrently.

import (
	"slices"

	"hamster/internal/memsim"
)

// CheckpointPages returns the node's resident home pages in ascending
// order — the capture walk order, so snapshot layout is deterministic.
func (d *DSM) CheckpointPages(node int) []memsim.PageID {
	return d.access(node).home.Pages()
}

// ReadPage copies a home frame into dst under the frame mutex. Returns
// false when the page is not resident at this node (e.g. its home
// migrated away since the caller enumerated pages).
func (d *DSM) ReadPage(node int, p memsim.PageID, dst []byte) bool {
	return d.access(node).home.CopyFrame(p, dst)
}

// WritePage installs page bytes into the node's home store (restore
// path; the frame is created if absent). Does not mark checkpoint dirt:
// restored bytes are the new incremental baseline, not a mutation.
func (d *DSM) WritePage(node int, p memsim.PageID, src []byte) {
	hp := d.access(node).home.Frame(p)
	hp.Mu.Lock()
	copy(hp.Data, src)
	hp.Mu.Unlock()
}

// CachedPages returns the node's cached (non-home) page ids in ascending
// order. At a barrier every surviving cached copy is clean and equal to
// its home frame, so ids alone fully describe the cache.
func (d *DSM) CachedPages(node int) []memsim.PageID {
	n := d.access(node)
	out := make([]memsim.PageID, 0, len(n.cache))
	for p := range n.cache {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// RestoreCached repopulates the node's page cache from the current home
// frames (restore path, before any node goroutine runs). Pages whose
// home is now this node, or whose frame does not exist anywhere, are
// skipped; the capacity cap is respected.
func (d *DSM) RestoreCached(node int, pages []memsim.PageID) {
	n := d.access(node)
	// The rebuilt cache has no speculative history: a stale prefetch
	// pending set would misattribute post-restore evictions as waste.
	n.resetPrefetch()
	for _, p := range pages {
		if len(n.cache) >= d.cacheCap {
			return
		}
		home := d.space.Home(p)
		if home == memsim.NoHome || home == n.id {
			continue
		}
		data := getPage()
		if !d.access(home).home.CopyFrame(p, data) {
			putPage(data)
			continue
		}
		cp := getCpage()
		cp.data = data
		cp.page = p
		n.lru.pushFront(cp)
		n.cache[p] = cp
	}
}

// DirtyPages returns (and clears) the set of home pages mutated since
// the last call, in ascending order — the incremental capture list.
func (d *DSM) DirtyPages(node int) []memsim.PageID {
	n := d.access(node)
	n.ckptMu.Lock()
	out := make([]memsim.PageID, 0, len(n.ckptDirty))
	for p := range n.ckptDirty {
		out = append(out, p)
	}
	n.ckptDirty = nil
	n.ckptMu.Unlock()
	slices.Sort(out)
	return out
}

// SetCheckpointTracking toggles dirty-page tracking. Tracking is pure
// real-time bookkeeping: it never advances a virtual clock, so enabling
// it cannot perturb modeled times.
func (d *DSM) SetCheckpointTracking(on bool) { d.ckptTrack.Store(on) }

// ProtocolEpoch returns the node's barrier-interval counter. Call at
// quiescence (the node's own goroutine inside a capture).
func (d *DSM) ProtocolEpoch(node int) uint64 { return d.access(node).epoch }

// RestoreProtocolState rewinds the node's barrier-interval counter
// (restore path, pre-run).
func (d *DSM) RestoreProtocolState(node int, epoch uint64) {
	d.access(node).epoch = epoch
}

// LockCount reports how many global locks exist.
func (d *DSM) LockCount() int {
	d.lockMu.Lock()
	defer d.lockMu.Unlock()
	return len(d.locks)
}

// EnsureLocks creates locks until the cluster has at least n. NewLock's
// round-robin home placement is a pure function of the lock id, so the
// recreated locks match the captured ones.
func (d *DSM) EnsureLocks(n int) {
	for d.LockCount() < n {
		d.NewLock()
	}
}
