package swdsm

// Protocol message aggregation (the coalesced-messaging claim of §3.3
// applied to the DSM protocol itself, §4.3): per-message software overhead
// dominates the Fast Ethernet cost model (SendSW+RecvSW = 50µs against
// 80ns/byte), so the aggregation layer trades many small protocol messages
// for few large ones.
//
// Three mechanisms, all gated by Config.Aggregation:
//
//  1. Batched diff flush: at release/barrier/fence time every dirty page's
//     diff destined for the same home travels in one kindApplyDiffBatch
//     call — one request/ack plus the summed payload instead of one round
//     trip per page.
//  2. Write-notice piggybacking: the notice list of a scope rides the
//     lock-grant reply (and the barrier-release broadcast) that the
//     protocol sends anyway, so only the payload bytes cost anything; the
//     separate notice message of the baseline protocol disappears.
//  3. Adaptive sequential prefetch: a per-node stride tracker watches the
//     miss stream, and once it turns sequential fetches a run of up to
//     PrefetchDegree same-home pages in one kindFetchPages call.
//     Mispredictions (prefetched pages evicted or invalidated unused)
//     halve the degree and impose a cooldown, so an irregular phase cannot
//     keep paying for wasted transfers.
//
// The zero-value Aggregation is the off mode and is bit-identical to the
// baseline protocol: same messages in the same order, same virtual times
// (enforced by TestAggregationOffIdentity against the committed BENCH
// files). With aggregation on, message sequences remain a pure function of
// program state — batches and prefetch runs assemble pages in sorted
// (ascending) order — so seeded fault campaigns still replay
// bit-identically (the draw streams are positional per link).

import (
	"fmt"
	"slices"

	"hamster/internal/amsg"
	"hamster/internal/memsim"
	"hamster/internal/perfmon"
	"hamster/internal/simnet"
	"hamster/internal/vclock"
)

// Batched-protocol active-message kinds (the singleton kinds live in
// swdsm.go and migrate.go: kindFetchPage=1, kindApplyDiff=2, kindMigrate=3).
const (
	// kindApplyDiffBatch carries [count u32] then per page [page u64]
	// [diff blob], pages ascending; the home applies each diff in order.
	kindApplyDiffBatch amsg.Kind = 4
	// kindFetchPages carries [count u32] then [page u64]..., pages
	// ascending and all homed at the target; the reply is the concatenated
	// page frames.
	kindFetchPages amsg.Kind = 5
)

// DefaultPrefetchDegree caps a prefetch run when the configuration leaves
// Aggregation.PrefetchDegree zero.
const DefaultPrefetchDegree = 8

// Prefetch policy constants: a miss stream must look sequential for
// prefetchMinStreak consecutive faults before the first speculative fetch,
// and a tracker that mispredicted down to degree 1 sits out
// prefetchCooldown faults before trying again.
const (
	prefetchMinStreak = 2
	prefetchCooldown  = 16
)

// Aggregation configures the protocol aggregation layer. The zero value
// disables everything and is bit-identical to the baseline protocol.
type Aggregation struct {
	// Batch enables batched diff flushes and write-notice piggybacking
	// (the two are one mechanism economically: both replace per-item
	// messages with payload riding on traffic that must flow anyway).
	Batch bool
	// Prefetch enables adaptive sequential page prefetch.
	Prefetch bool
	// PrefetchDegree caps the pages fetched per speculative run
	// (0 = DefaultPrefetchDegree).
	PrefetchDegree int
}

// Enabled reports whether any aggregation mechanism is on.
func (a Aggregation) Enabled() bool { return a.Batch || a.Prefetch }

// prefetcher is one node's stride tracker. Owned exclusively by the node's
// goroutine, like the page cache it feeds.
type prefetcher struct {
	last   memsim.PageID // page of the most recent demand fault
	streak int           // consecutive +1-stride faults observed
	degree int           // current run cap (adaptive, 1..maxDegree)
	hitRun int           // prefetched pages consumed since the last waste
	cool   int           // faults to sit out after collapsing to degree 1
	max    int           // configured degree ceiling

	// pending tracks installed-but-unreferenced prefetched pages: a first
	// access moves one to the hit column, an eviction or invalidation
	// before that moves it to the waste column.
	pending map[memsim.PageID]struct{}
}

func newPrefetcher(degree int) *prefetcher {
	if degree <= 0 {
		degree = DefaultPrefetchDegree
	}
	start := 2
	if start > degree {
		start = degree
	}
	return &prefetcher{
		degree:  start,
		max:     degree,
		pending: make(map[memsim.PageID]struct{}),
	}
}

// registerAggHandlers installs the home-side handlers of the batched
// protocol. They are registered unconditionally (the kinds are part of the
// wire protocol whether or not this node's peers aggregate), but never
// fire unless a peer sends batched traffic.
func (d *DSM) registerAggHandlers(n *node) {
	id := simnet.NodeID(n.id)
	d.layer.Register(id, kindApplyDiffBatch, func(from amsg.NodeID, req []byte) ([]byte, vclock.Duration) {
		dec := amsg.MakeDec(req)
		count := int(dec.U32())
		var total vclock.Duration
		for i := 0; i < count; i++ {
			p := memsim.PageID(dec.U64())
			diff := dec.Blob()
			hp := n.home.Frame(p)
			hp.Mu.Lock()
			err := applyDiff(hp.Data, diff)
			hp.Mu.Unlock()
			if err != nil {
				panic(err) // internal protocol corruption
			}
			n.markCkptDirty(p)
			// Same per-diff apply cost as the unbatched handler; batching
			// saves messages, never modeled CPU work.
			cost := d.params.CPU.PageCopyNs * vclock.Duration(len(diff)+1) / memsim.PageSize
			if rec := d.rec; rec != nil && rec.Enabled() {
				rec.Record(n.id, perfmon.EvDiffApply, d.clocks[n.id].Now(), cost, uint64(p), uint64(len(diff)))
			}
			total += cost
		}
		return nil, total
	})
	d.layer.Register(id, kindFetchPages, func(_ amsg.NodeID, req []byte) ([]byte, vclock.Duration) {
		dec := amsg.MakeDec(req)
		pages := dec.U64s()
		// One allocation amortized over the whole run; the requester carves
		// it into per-page windows that retire individually (see pool.go).
		out := make([]byte, len(pages)*memsim.PageSize)
		for i, v := range pages {
			hp := n.home.Frame(memsim.PageID(v))
			hp.Mu.Lock()
			copy(out[i*memsim.PageSize:(i+1)*memsim.PageSize], hp.Data)
			hp.Mu.Unlock()
		}
		return out, vclock.Duration(len(pages)) * d.params.CPU.PageCopyNs
	})
}

// homeDiff is one page's encoded diff tagged with its home node — the
// element type of the node's reusable flush-grouping scratch.
type homeDiff struct {
	home int
	p    memsim.PageID
	diff []byte
}

// flushBatched is the aggregated replacement for flushAll's per-page flush
// loop: diff every dirty cached page (sorted order — the scan sequence and
// its costs must stay a pure function of program state), group the
// non-empty diffs by home, and deliver each group in one call. Charges one
// request/ack plus the summed payload per home instead of one round trip
// per page.
func (n *node) flushBatched(pages []memsim.PageID) {
	d := n.dsm
	clk := d.clocks[n.id]
	batch := n.flushScratch[:0]
	for _, p := range pages {
		cp, ok := n.cache[p]
		if !ok || cp.twin == nil {
			continue
		}
		t0 := clk.Now()
		clk.AdvanceCat(vclock.CatProtocol, d.params.CPU.DiffScanNs)
		diff := buildDiff(cp.data, cp.twin)
		putTwin(cp.twin)
		cp.twin = nil
		delete(n.dirty, p)
		if len(diff) == 0 {
			putDiff(diff)
			continue
		}
		n.stats.DiffsCreated++
		n.stats.DiffBytes += uint64(len(diff))
		if rec := d.rec; rec != nil && rec.Enabled() {
			rec.Record(n.id, perfmon.EvDiffCreate, t0, vclock.Since(t0, clk.Now()), uint64(p), uint64(len(diff)))
		}
		cp.diffStreak++
		batch = append(batch, homeDiff{home: d.space.Home(p), p: p, diff: diff})
	}
	// Group by home with an in-place stable sort over the node's reusable
	// scratch (no per-flush map, no per-home slices — the marginal
	// allocation cost of a flushed page must be zero). Input pages are
	// ascending, so stability keeps each home's batch ascending and homes
	// emerge in ascending order: the exact message sequence the old
	// map-plus-sorted-homes grouping produced, which seeded fault replay
	// depends on (draw streams are positional per link).
	slices.SortStableFunc(batch, func(a, b homeDiff) int { return a.home - b.home })
	for lo := 0; lo < len(batch); {
		hi := lo
		for hi < len(batch) && batch[hi].home == batch[lo].home {
			hi++
		}
		group := batch[lo:hi]
		home := batch[lo].home
		enc := amsg.GetEnc()
		enc.U32(uint32(len(group)))
		for _, e := range group {
			enc.U64(uint64(e.p)).Blob(e.diff)
		}
		t0 := clk.Now()
		if _, err := d.layer.CallErr(simnet.NodeID(n.id), simnet.NodeID(home), kindApplyDiffBatch, enc.Bytes()); err != nil {
			// Like flushPage: a diff batch that cannot reach the
			// authoritative copies means writes are lost; stop loudly.
			panic(fmt.Sprintf("swdsm: node %d cannot flush %d-page diff batch to home node %d: %v",
				n.id, len(group), home, err))
		}
		enc.Free()
		for _, e := range group {
			putDiff(e.diff)
		}
		n.stats.ProtocolMsgs++
		n.stats.DiffBatches++
		n.stats.BatchedDiffs += uint64(len(group))
		if rec := d.rec; rec != nil && rec.Enabled() {
			rec.Record(n.id, perfmon.EvBatchFlush, t0, vclock.Since(t0, clk.Now()), uint64(home), uint64(len(group)))
		}
		lo = hi
	}
	for i := range batch {
		batch[i].diff = nil // scratch must not pin recycled diff buffers
	}
	n.flushScratch = batch[:0]
}

// piggybackNoticeCost is the cost of a notice list riding a message the
// protocol sends anyway (lock grant, barrier release): only the payload
// bytes, none of the per-message software overhead — that is the whole
// point of piggybacking. Zero for an empty list.
func (d *DSM) piggybackNoticeCost(pages int) vclock.Duration {
	return vclock.Duration(8*pages) * d.params.Ethernet.NsPerByte
}

// maybePrefetch runs at the tail of every demand fault: update the stride
// tracker and, when the miss stream is sequential, speculatively fetch the
// next run of same-home pages in one message. Prefetch is strictly an
// optimization — on any failure it backs off and lets demand faults make
// progress — and it only fills free cache capacity, never evicts.
func (n *node) maybePrefetch(p memsim.PageID, home int) {
	pf := n.pf
	if pf == nil {
		return
	}
	if p == pf.last+1 {
		pf.streak++
	} else {
		pf.streak = 0
	}
	pf.last = p
	if pf.cool > 0 {
		pf.cool--
		return
	}
	if pf.streak < prefetchMinStreak {
		return
	}
	limit := n.dsm.cacheCap - len(n.cache)
	if limit > pf.degree {
		limit = pf.degree
	}
	run := make([]uint64, 0, pf.degree)
	for q := p + 1; len(run) < limit; q++ {
		// Only extend the run while the next page is already homed at the
		// same node: an unassigned page must never be first-touch-claimed
		// on speculation, and a differently-homed one belongs to another
		// run. Stop at the first cached page — past it we would be
		// re-fetching the node's own working set.
		if n.dsm.space.Home(q) != home {
			break
		}
		if _, cached := n.cache[q]; cached {
			break
		}
		run = append(run, uint64(q))
	}
	if len(run) == 0 {
		return
	}
	clk := n.dsm.clocks[n.id]
	t0 := clk.Now()
	enc := amsg.GetEnc()
	req := enc.U64s(run).Bytes()
	data, err := n.dsm.layer.CallErr(simnet.NodeID(n.id), simnet.NodeID(home), kindFetchPages, req)
	enc.Free()
	n.stats.ProtocolMsgs++
	if err != nil || len(data) != len(run)*memsim.PageSize {
		pf.degree = 1
		pf.cool = prefetchCooldown
		return
	}
	for i, v := range run {
		q := memsim.PageID(v)
		// Disjoint full-slice subslices of the one response buffer: each
		// page writes only its own window, so sharing the backing array is
		// safe and avoids a copy per page.
		cp := getCpage()
		cp.data = data[i*memsim.PageSize : (i+1)*memsim.PageSize : (i+1)*memsim.PageSize]
		cp.page = q
		n.lru.pushFront(cp)
		n.cache[q] = cp
		pf.pending[q] = struct{}{}
	}
	clk.AdvanceCat(vclock.CatMemory, vclock.Duration(len(run))*n.dsm.params.CPU.PageCopyNs) // install copies
	n.stats.PrefetchRuns++
	n.stats.PrefetchPages += uint64(len(run))
	if rec := n.dsm.rec; rec != nil && rec.Enabled() {
		rec.Record(n.id, perfmon.EvPrefetch, t0, vclock.Since(t0, clk.Now()), uint64(run[0]), uint64(len(run)))
	}
}

// notePrefetchHit moves a pending prefetched page to the hit column on its
// first real access. A sustained hit run doubles the degree toward the
// configured ceiling.
func (n *node) notePrefetchHit(p memsim.PageID) {
	pf := n.pf
	if pf == nil || len(pf.pending) == 0 {
		return
	}
	if _, ok := pf.pending[p]; !ok {
		return
	}
	delete(pf.pending, p)
	n.stats.PrefetchHits++
	pf.hitRun++
	if pf.hitRun >= 2*pf.degree && pf.degree < pf.max {
		pf.degree *= 2
		if pf.degree > pf.max {
			pf.degree = pf.max
		}
		pf.hitRun = 0
	}
}

// notePrefetchDrop charges a misprediction: a prefetched page left the
// cache (eviction, invalidation, fence) before any access used it. The
// degree halves; collapsing to 1 imposes the cooldown.
func (n *node) notePrefetchDrop(p memsim.PageID) {
	pf := n.pf
	if pf == nil || len(pf.pending) == 0 {
		return
	}
	if _, ok := pf.pending[p]; !ok {
		return
	}
	delete(pf.pending, p)
	n.stats.PrefetchWaste++
	pf.hitRun = 0
	pf.degree /= 2
	if pf.degree < 1 {
		pf.degree = 1
		pf.cool = prefetchCooldown
	}
	if rec := n.dsm.rec; rec != nil && rec.Enabled() {
		rec.Record(n.id, perfmon.EvPrefetchWaste, n.dsm.clocks[n.id].Now(), 0, uint64(p), 0)
	}
}

// resetPrefetch clears the tracker (checkpoint restore: the rebuilt cache
// has no speculative history).
func (n *node) resetPrefetch() {
	if n.pf == nil {
		return
	}
	deg := n.pf.max
	n.pf = newPrefetcher(deg)
}
