package swdsm

import (
	"bytes"
	"testing"

	"hamster/internal/memsim"
)

func newAggDSM(t testing.TB, nodes int, agg Aggregation) *DSM {
	t.Helper()
	d, err := New(Config{Nodes: nodes, Aggregation: agg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// allocPages carves out an n-page region homed entirely at one node.
func allocPages(t testing.TB, d *DSM, n, home int) memsim.Region {
	t.Helper()
	r, err := d.Alloc(uint64(n)*memsim.PageSize, "agg", memsim.Fixed, home)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestBatchFlushDelivery drives the same four-page dirty interval through
// the per-page and the batched flush path and checks both that the batch
// delivers every diff to the home and that the message economics are what
// aggregation promises: one kindApplyDiffBatch call instead of four
// kindApplyDiff round trips.
func TestBatchFlushDelivery(t *testing.T) {
	const pages = 4
	run := func(agg Aggregation) (*DSM, memsim.Region) {
		d := newAggDSM(t, 2, agg)
		r := allocPages(t, d, pages, 0)
		for i := 0; i < pages; i++ {
			d.WriteF64(1, r.Base+memsim.Addr(i*memsim.PageSize), float64(100+i))
		}
		d.FlushInterval(1)
		return d, r
	}

	dOff, rOff := run(Aggregation{})
	dOn, rOn := run(Aggregation{Batch: true})

	for i := 0; i < pages; i++ {
		want := float64(100 + i)
		if got := dOff.ReadF64(0, rOff.Base+memsim.Addr(i*memsim.PageSize)); got != want {
			t.Fatalf("off mode: home page %d = %v, want %v", i, got, want)
		}
		if got := dOn.ReadF64(0, rOn.Base+memsim.Addr(i*memsim.PageSize)); got != want {
			t.Fatalf("batch mode: home page %d = %v, want %v", i, got, want)
		}
	}

	off, on := dOff.NodeStats(1), dOn.NodeStats(1)
	if off.DiffsCreated != pages || on.DiffsCreated != pages {
		t.Fatalf("diffs created: off=%d on=%d, want %d each", off.DiffsCreated, on.DiffsCreated, pages)
	}
	if off.DiffBatches != 0 || off.BatchedDiffs != 0 {
		t.Fatalf("off mode must not batch: %+v", off)
	}
	if on.DiffBatches != 1 || on.BatchedDiffs != pages {
		t.Fatalf("batch mode: batches=%d batched=%d, want 1/%d", on.DiffBatches, on.BatchedDiffs, pages)
	}
	// Both modes fault 4 pages (4 msgs); the flush is 4 msgs unbatched
	// against 1 batched.
	if off.ProtocolMsgs != 2*pages || on.ProtocolMsgs != pages+1 {
		t.Fatalf("protocol msgs: off=%d on=%d, want %d/%d", off.ProtocolMsgs, on.ProtocolMsgs, 2*pages, pages+1)
	}
	if off.DiffBytes != on.DiffBytes {
		t.Fatalf("diff bytes moved: off=%d on=%d", off.DiffBytes, on.DiffBytes)
	}
}

// TestBatchFlushMultipleHomes checks that one flush interval with dirty
// pages homed at different nodes produces one batch per home, in home
// order, and every home sees its diffs.
func TestBatchFlushMultipleHomes(t *testing.T) {
	d := newAggDSM(t, 3, Aggregation{Batch: true})
	r1 := allocPages(t, d, 2, 1)
	r2 := allocPages(t, d, 2, 2)
	for i := 0; i < 2; i++ {
		d.WriteF64(0, r1.Base+memsim.Addr(i*memsim.PageSize), float64(10+i))
		d.WriteF64(0, r2.Base+memsim.Addr(i*memsim.PageSize), float64(20+i))
	}
	d.FlushInterval(0)
	st := d.NodeStats(0)
	if st.DiffBatches != 2 || st.BatchedDiffs != 4 {
		t.Fatalf("batches=%d batched=%d, want 2/4", st.DiffBatches, st.BatchedDiffs)
	}
	for i := 0; i < 2; i++ {
		if got := d.ReadF64(1, r1.Base+memsim.Addr(i*memsim.PageSize)); got != float64(10+i) {
			t.Fatalf("home 1 page %d = %v", i, got)
		}
		if got := d.ReadF64(2, r2.Base+memsim.Addr(i*memsim.PageSize)); got != float64(20+i) {
			t.Fatalf("home 2 page %d = %v", i, got)
		}
	}
}

// TestPrefetchSequentialRun walks a 16-page remote region page by page and
// checks the stride tracker turns most of the demand faults into
// prefetched hits — and that every prefetched byte is correct.
func TestPrefetchSequentialRun(t *testing.T) {
	const pages = 16
	d := newAggDSM(t, 2, Aggregation{Prefetch: true})
	r := allocPages(t, d, pages, 0)
	for i := 0; i < pages; i++ {
		d.WriteF64(0, r.Base+memsim.Addr(i*memsim.PageSize), float64(i)*1.5)
	}
	for i := 0; i < pages; i++ {
		if got := d.ReadF64(1, r.Base+memsim.Addr(i*memsim.PageSize)); got != float64(i)*1.5 {
			t.Fatalf("page %d = %v, want %v", i, got, float64(i)*1.5)
		}
	}
	st := d.NodeStats(1)
	if st.PrefetchHits == 0 {
		t.Fatal("sequential walk produced no prefetch hits")
	}
	if st.PrefetchWaste != 0 {
		t.Fatalf("sequential walk wasted %d prefetched pages", st.PrefetchWaste)
	}
	// Every page was either demand-faulted or prefetched and then used.
	if st.PageFaults+st.PrefetchHits != pages {
		t.Fatalf("faults %d + hits %d != %d pages", st.PageFaults, st.PrefetchHits, pages)
	}
	if st.PageFaults >= pages {
		t.Fatalf("prefetch saved no faults: %d demand faults for %d pages", st.PageFaults, pages)
	}
	// The aggregated walk must also use fewer messages than one per page.
	if msgs := st.ProtocolMsgs; msgs >= pages {
		t.Fatalf("protocol msgs = %d, want < %d", msgs, pages)
	}
}

// TestPrefetchStopsAtForeignHome checks a speculative run never crosses
// into pages homed elsewhere and never first-touch-claims unassigned pages.
func TestPrefetchStopsAtForeignHome(t *testing.T) {
	d := newAggDSM(t, 3, Aggregation{Prefetch: true})
	// Two adjacent regions with different homes; a run starting in r1 must
	// stop at the r1/r2 boundary.
	r1 := allocPages(t, d, 4, 1)
	r2 := allocPages(t, d, 4, 2)
	for i := 0; i < 4; i++ {
		d.WriteF64(1, r1.Base+memsim.Addr(i*memsim.PageSize), 1.0)
		d.WriteF64(2, r2.Base+memsim.Addr(i*memsim.PageSize), 2.0)
	}
	for i := 0; i < 4; i++ {
		if got := d.ReadF64(0, r1.Base+memsim.Addr(i*memsim.PageSize)); got != 1.0 {
			t.Fatalf("r1 page %d = %v", i, got)
		}
	}
	for i := 0; i < 4; i++ {
		if got := d.ReadF64(0, r2.Base+memsim.Addr(i*memsim.PageSize)); got != 2.0 {
			t.Fatalf("r2 page %d = %v", i, got)
		}
	}
	// No prefetched page may have come from the wrong home: all reads above
	// verified content, so it suffices that nothing was wasted (a cross-home
	// prefetch would have installed pages never hit in order).
	if st := d.NodeStats(0); st.PrefetchWaste != 0 {
		t.Fatalf("boundary crossing wasted %d prefetches", st.PrefetchWaste)
	}
}

// TestPrefetchBackoffOnWaste invalidates installed-but-unused prefetched
// pages (via a fence) and checks the tracker charges them as waste.
func TestPrefetchBackoffOnWaste(t *testing.T) {
	d := newAggDSM(t, 2, Aggregation{Prefetch: true})
	r := allocPages(t, d, 8, 0)
	// Three sequential faults trigger a prefetch of the following pages.
	for i := 0; i < 3; i++ {
		d.ReadF64(1, r.Base+memsim.Addr(i*memsim.PageSize))
	}
	if st := d.NodeStats(1); st.PrefetchPages == 0 {
		t.Fatal("no prefetch issued; test premise broken")
	}
	d.Fence(1) // drops the cache, pending prefetches included
	st := d.NodeStats(1)
	if st.PrefetchWaste == 0 {
		t.Fatal("fenced-away prefetched pages were not counted as waste")
	}
	if st.PrefetchWaste != st.PrefetchPages-st.PrefetchHits {
		t.Fatalf("waste %d != pages %d - hits %d", st.PrefetchWaste, st.PrefetchPages, st.PrefetchHits)
	}
	// The protocol must still be correct after the backoff.
	for i := 0; i < 8; i++ {
		if got := d.ReadF64(1, r.Base+memsim.Addr(i*memsim.PageSize)); got != 0 {
			t.Fatalf("page %d = %v after fence, want 0", i, got)
		}
	}
}

// TestBlockAccessStraddlesPrefetchedFrames runs ReadBytes/WriteBytes spans
// across a mix of demand-faulted and prefetched frames: the bulk accessors
// must see identical bytes, and writes landing in prefetched frames must
// flush home like any other dirty page.
func TestBlockAccessStraddlesPrefetchedFrames(t *testing.T) {
	const pages = 8
	d := newAggDSM(t, 2, Aggregation{Batch: true, Prefetch: true})
	r := allocPages(t, d, pages, 0)
	want := make([]byte, pages*memsim.PageSize)
	for i := range want {
		want[i] = byte(i * 7)
	}
	d.WriteBytes(0, r.Base, want)

	// One straddling read covers all eight pages; the stride tracker sees
	// the page sequence and prefetches into the middle of the span.
	got := make([]byte, len(want))
	d.ReadBytes(1, r.Base, got)
	if !bytes.Equal(got, want) {
		t.Fatal("straddling read across prefetched frames corrupted data")
	}
	if st := d.NodeStats(1); st.PrefetchHits == 0 {
		t.Fatal("straddling read never hit a prefetched frame")
	}

	// A straddling write beginning mid-page dirties prefetched and
	// demand-faulted frames alike; after the flush the home must agree.
	patch := make([]byte, 3*memsim.PageSize)
	for i := range patch {
		patch[i] = byte(200 - i%100)
	}
	off := 2*memsim.PageSize + 100
	d.WriteBytes(1, r.Base+memsim.Addr(off), patch)
	d.FlushInterval(1)
	copy(want[off:], patch)

	check := make([]byte, len(want))
	d.ReadBytes(0, r.Base, check)
	if !bytes.Equal(check, want) {
		t.Fatal("straddling write through prefetched frames lost data at the home")
	}
}

// TestAggregationOffIsZeroValue pins the config contract: the zero value
// reports disabled and leaves the prefetch hook unwired.
func TestAggregationOffIsZeroValue(t *testing.T) {
	var a Aggregation
	if a.Enabled() {
		t.Fatal("zero-value Aggregation must be off")
	}
	if (Aggregation{Batch: true}).Enabled() != true ||
		(Aggregation{Prefetch: true}).Enabled() != true {
		t.Fatal("Enabled() must report each mechanism")
	}
	d := newAggDSM(t, 2, Aggregation{})
	for _, n := range d.nodes {
		if n.pf != nil {
			t.Fatal("off mode must not allocate a prefetcher")
		}
	}
}
