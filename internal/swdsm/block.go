package swdsm

import (
	"hamster/internal/memsim"
	"hamster/internal/vclock"
)

// Block accessors: the bulk fast path of platform.Substrate. A run of
// words within one page pays ONE access check, ONE frame resolution, and
// ONE batched clock charge, but the modeled cost is word-for-word what
// the per-word loop charges: AccessNs per word, one fault (if any) for
// the whole run exactly as the first word of the loop would fault, and
// one CPU-cache touch (repeated touches of one page are idempotent in
// the direct-mapped model). Twin creation, diffing, and write notices
// are untouched — a block write dirties the page exactly once per
// interval, the same as N word writes.
//
// Prefetched frames (aggregate.go) need no special handling here: a
// speculatively installed page is an ordinary clean cache entry, so
// frameForRead/prepareWrite resolve it like any cache hit (scoring the
// prefetch-hit on first touch) and a page-straddling run simply crosses
// from a prefetched frame into a demand-faulted one.

// ReadF64Block implements platform.Substrate.
func (d *DSM) ReadF64Block(nodeID int, a memsim.Addr, dst []float64) {
	n := d.access(nodeID)
	n.stats.BlockReads++
	clk := d.clocks[nodeID]
	memsim.WordRuns(a, len(dst), func(p memsim.PageID, off, count int) {
		clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*vclock.Duration(count))
		n.stats.Reads += uint64(count)
		n.touchLocal(p)
		fr, hp := n.frameForRead(p)
		memsim.GetF64Slice(fr, off, dst[:count])
		if hp != nil {
			hp.Mu.Unlock()
		}
		dst = dst[count:]
	})
}

// WriteF64Block implements platform.Substrate.
func (d *DSM) WriteF64Block(nodeID int, a memsim.Addr, src []float64) {
	n := d.access(nodeID)
	n.stats.BlockWrites++
	clk := d.clocks[nodeID]
	memsim.WordRuns(a, len(src), func(p memsim.PageID, off, count int) {
		clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*vclock.Duration(count))
		n.stats.Writes += uint64(count)
		n.touchLocal(p)
		fr, hp := n.prepareWrite(p)
		memsim.PutF64Slice(fr, off, src[:count])
		if hp != nil {
			hp.Mu.Unlock()
		}
		src = src[count:]
	})
}

// ReadI64Block implements platform.Substrate.
func (d *DSM) ReadI64Block(nodeID int, a memsim.Addr, dst []int64) {
	n := d.access(nodeID)
	n.stats.BlockReads++
	clk := d.clocks[nodeID]
	memsim.WordRuns(a, len(dst), func(p memsim.PageID, off, count int) {
		clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*vclock.Duration(count))
		n.stats.Reads += uint64(count)
		n.touchLocal(p)
		fr, hp := n.frameForRead(p)
		memsim.GetI64Slice(fr, off, dst[:count])
		if hp != nil {
			hp.Mu.Unlock()
		}
		dst = dst[count:]
	})
}

// WriteI64Block implements platform.Substrate.
func (d *DSM) WriteI64Block(nodeID int, a memsim.Addr, src []int64) {
	n := d.access(nodeID)
	n.stats.BlockWrites++
	clk := d.clocks[nodeID]
	memsim.WordRuns(a, len(src), func(p memsim.PageID, off, count int) {
		clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*vclock.Duration(count))
		n.stats.Writes += uint64(count)
		n.touchLocal(p)
		fr, hp := n.prepareWrite(p)
		memsim.PutI64Slice(fr, off, src[:count])
		if hp != nil {
			hp.Mu.Unlock()
		}
		src = src[count:]
	})
}
