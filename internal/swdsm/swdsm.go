// Package swdsm implements a software distributed shared memory system in
// the style of JiaJia (Hu, Shi, Tang 1999): home-based Scope Consistency
// with a multiple-writer protocol.
//
// Every global page has a home node holding the authoritative copy. Other
// nodes cache pages on demand; a first write after validation creates a
// twin, and at release points (lock release, barrier, fence) the writer
// diffs its copy against the twin and sends the diff to the home. Write
// notices — the identities of modified pages — travel with synchronization:
// a lock carries the notices of critical sections protected by it (the
// scope), a barrier merges everyone's notices globally. Acquiring nodes
// invalidate their cached copies of noticed pages and refetch from the home
// on next access.
//
// The paper integrates JiaJia as its Beowulf-architecture substrate (§3.2)
// after replacing its startup and messaging with HAMSTER's coalesced layer
// (§3.3); this package correspondingly accepts an externally provided
// active-message layer, and the page cache is intentionally per-node real
// storage: a protocol bug produces wrong benchmark results, not just wrong
// cost numbers.
package swdsm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hamster/internal/amsg"
	"hamster/internal/consengine"
	"hamster/internal/hsync"
	"hamster/internal/machine"
	"hamster/internal/memsim"
	"hamster/internal/notices"
	"hamster/internal/pagestore"
	"hamster/internal/perfmon"
	"hamster/internal/platform"
	"hamster/internal/simnet"
	"hamster/internal/vclock"
)

// Active-message kinds used by the protocol.
const (
	kindFetchPage amsg.Kind = iota + 1
	kindApplyDiff
)

// DefaultCachePages is the per-node cached-page capacity when the
// configuration leaves it zero (16 MiB of remote data per node).
const DefaultCachePages = 4096

// Protocol selects the consistency protocol variant (§4.5: the
// consistency API carries "optimized implementations of all widely used
// models").
type Protocol int

const (
	// ScopeConsistency (the default, JiaJia's model): write notices
	// travel with the lock under which the writes happened; acquiring a
	// lock invalidates only that scope's pages.
	ScopeConsistency Protocol = iota
	// EagerRC is eager Release Consistency: every release publishes its
	// write notices toward all nodes immediately (paying a message per
	// peer), and any subsequent acquire — of any lock — invalidates them.
	// Stronger than scope, correspondingly noisier.
	EagerRC
)

// String names the protocol.
func (p Protocol) String() string {
	if p == EagerRC {
		return "eager-rc"
	}
	return "scope"
}

// Config parameterizes a DSM instance.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// Params is the cost model; zero value means machine.Default().
	Params machine.Params
	// CachePages caps the per-node page cache (0 = DefaultCachePages).
	CachePages int
	// Layer optionally supplies a shared active-message layer (HAMSTER's
	// coalesced messaging). When nil the DSM builds a private network —
	// the "native JiaJia" configuration.
	Layer *amsg.Layer
	// Topology places the nodes in a switch fabric (see simnet.Topology);
	// the zero value is the flat legacy network. Ignored when Layer is
	// set — the layer's network already has a topology, which the DSM
	// adopts for its own synchronization cost arithmetic.
	Topology simnet.Topology
	// Space optionally supplies a shared global address space (multi-DSM
	// composition, §6). When nil the DSM owns a private space.
	Space *memsim.Space
	// Clocks optionally supplies shared per-node clocks (multi-DSM
	// composition). Length must equal Nodes. Ignored when Layer is set
	// (the layer's network already carries the clocks).
	Clocks []*vclock.Clock
	// MigrateAfter enables home migration (JiaJia's single-writer
	// optimization): a page whose cached copy produced this many
	// consecutive diffs without an intervening invalidation migrates its
	// home to the writer at the next barrier. 0 disables migration.
	MigrateAfter int
	// Protocol selects Scope Consistency (default) or eager Release
	// Consistency.
	Protocol Protocol
	// Aggregation configures the protocol aggregation layer (batched diff
	// flush, write-notice piggybacking, adaptive prefetch — see
	// aggregate.go). The zero value is off and bit-identical to the
	// baseline protocol.
	Aggregation Aggregation
	// DropInvalidations deliberately breaks the protocol: acquire- and
	// barrier-side invalidations are silently skipped, so stale copies
	// survive synchronization. It exists ONLY as the conformance
	// harness's negative control (a broken engine the litmus battery
	// must catch); never set it outside tests.
	DropInvalidations bool
}

// DSM is one software-DSM cluster.
type DSM struct {
	params machine.Params
	space  *memsim.Space
	clocks []*vclock.Clock
	layer  *amsg.Layer
	nodes  []*node

	// topo is the adopted network topology; hier switches locks and
	// barriers to the hierarchical primitives (tree barriers, migrating
	// distributed lock queues) when the cluster exceeds hsync.Threshold.
	topo simnet.Topology
	hier bool
	tree *hsync.Tree

	cacheCap     int
	migrateAfter int
	protocol     Protocol
	agg          Aggregation
	dropInval    bool           // conformance-harness negative control
	rcPending    *notices.Board // EagerRC: one global notice board
	migration    *migrationState
	vbMig        *vclock.VBarrier

	lockMu sync.Mutex
	locks  []*lockState

	barrier *barrierState

	// ckptTrack gates the checkpoint dirty-page tracking hooks. Off by
	// default so runs without incremental checkpointing pay a single
	// atomic load on the (real-time-only) hook sites — virtual costs are
	// never charged by tracking either way.
	ckptTrack atomic.Bool

	rec *perfmon.Recorder // protocol event recorder; nil until attached
}

// cpage is one cached remote page. Owned exclusively by the node's
// goroutine; structs and their page buffers recycle through pools (see
// pool.go), with prev/next linking the entry into the node's intrusive
// recency list.
type cpage struct {
	data       []byte
	twin       []byte // non-nil while the page is dirty
	page       memsim.PageID
	prev, next *cpage
	// diffStreak counts consecutive intervals in which this node diffed
	// the page without anyone else's write notice invalidating it — the
	// single-writer detector for home migration.
	diffStreak int
}

// fastFrame caches a recently resolved frame so that repeated accesses
// to a small working set of pages skip the home lookup and the cache-map
// probe. An entry is valid only while its generation matches the node's:
// every consistency action (acquire, release, barrier, fence), eviction,
// and home migration bumps the generation, so the fast path can never
// serve a frame across a synchronization point — Scope Consistency is
// untouched. Home-resident frames still take the per-access frame mutex,
// and cached frames still refresh their LRU position, so eviction order
// is identical to the slow path's.
type fastFrame struct {
	ok    bool
	page  memsim.PageID
	gen   uint64
	data  []byte
	hp    *pagestore.Frame // non-nil when home-resident
	cp    *cpage           // cache entry of a cached (non-home) frame
	dirty bool             // write-ready: twin exists / homeDirty recorded
}

// fastWays is the size of the per-node fast-frame set. Four entries cover
// the stencil and matrix kernels' hot patterns (e.g., SOR's up/own/down
// rows plus the write page; MatMult's interleaved A row and B column).
const fastWays = 4

type node struct {
	id   int
	dsm  *DSM
	home *pagestore.Store
	// pcache models this node's CPU cache for local references (see
	// machine.PageCache); misses pay the private-bus DRAM cost.
	pcache *machine.PageCache

	// Owner-goroutine state: the page cache and interval tracking. Only
	// the node's own goroutine touches these (invalidations are applied
	// by the owner when it acquires), so no locking is needed.
	cache     map[memsim.PageID]*cpage
	lru       pageLRU // front = most recent
	dirty     map[memsim.PageID]struct{}
	homeDirty map[memsim.PageID]struct{}
	epoch     uint64
	gen       uint64 // invalidates the fast set when bumped
	fast      [fastWays]fastFrame
	fastNext  int // round-robin victim index

	// Reusable interval buffers (owner goroutine only): the acquire-side
	// notice list and the release-side batch grouping grow to the interval
	// working size once, then recycle — the marginal allocation cost of a
	// flushed or invalidated page is zero (gated by the bench package's
	// TestDiffFlushMarginalZeroAlloc).
	noticeScratch []memsim.PageID
	flushScratch  []homeDiff

	// ckptDirty records home pages mutated since the last checkpoint
	// capture (local drains, remote diffs, migration installs). Unlike the
	// owner-goroutine maps above it is written from protocol handlers on
	// other goroutines, hence the mutex.
	ckptMu    sync.Mutex
	ckptDirty map[memsim.PageID]struct{}

	// pf is the adaptive prefetch tracker; nil unless Aggregation.Prefetch
	// is on, so the off mode pays one nil check per hook site.
	pf *prefetcher

	stats platform.Stats
}

// markCkptDirty records a home-frame mutation for incremental checkpoint
// capture. No-op (one atomic load) unless tracking is enabled.
func (n *node) markCkptDirty(p memsim.PageID) {
	if !n.dsm.ckptTrack.Load() {
		return
	}
	n.ckptMu.Lock()
	if n.ckptDirty == nil {
		n.ckptDirty = make(map[memsim.PageID]struct{})
	}
	n.ckptDirty[p] = struct{}{}
	n.ckptMu.Unlock()
}

// bumpGen invalidates the cached-frame fast path.
func (n *node) bumpGen() { n.gen++ }

// fastLookup returns the valid fast-set entry for page p, or nil.
func (n *node) fastLookup(p memsim.PageID) *fastFrame {
	for i := range n.fast {
		if f := &n.fast[i]; f.ok && f.page == p && f.gen == n.gen {
			return f
		}
	}
	return nil
}

// fastRecord installs a fast-set entry, replacing a stale entry for the
// same page if present, else the round-robin victim.
func (n *node) fastRecord(f fastFrame) {
	for i := range n.fast {
		if n.fast[i].ok && n.fast[i].page == f.page {
			n.fast[i] = f
			return
		}
	}
	n.fast[n.fastNext] = f
	n.fastNext = (n.fastNext + 1) % fastWays
}

// New builds a software-DSM cluster.
func New(cfg Config) (*DSM, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("swdsm: need at least one node, got %d", cfg.Nodes)
	}
	params := cfg.Params
	if params.Name == "" {
		params = machine.Default()
	}
	space := cfg.Space
	if space == nil {
		space = memsim.NewSpace(cfg.Nodes)
	}
	d := &DSM{
		params: params,
		space:  space,
		clocks: make([]*vclock.Clock, cfg.Nodes),
		nodes:  make([]*node, cfg.Nodes),
	}
	if cfg.Clocks != nil {
		if len(cfg.Clocks) != cfg.Nodes {
			return nil, fmt.Errorf("swdsm: %d clocks for %d nodes", len(cfg.Clocks), cfg.Nodes)
		}
		copy(d.clocks, cfg.Clocks)
	} else {
		for i := range d.clocks {
			d.clocks[i] = &vclock.Clock{}
		}
	}
	if cfg.Layer != nil {
		if cfg.Layer.Network().Size() != cfg.Nodes {
			return nil, fmt.Errorf("swdsm: shared layer has %d nodes, want %d",
				cfg.Layer.Network().Size(), cfg.Nodes)
		}
		d.layer = cfg.Layer
		for i := range d.clocks {
			d.clocks[i] = cfg.Layer.Network().Clock(simnet.NodeID(i))
		}
	} else {
		net := simnet.NewTopo(params.Ethernet, d.clocks, cfg.Topology)
		d.layer = amsg.New(net, params.Ethernet)
	}
	d.topo = d.layer.Network().Topology()
	d.hier = cfg.Nodes > hsync.Threshold
	if d.hier {
		d.tree = hsync.NewTree(cfg.Nodes, d.topo)
	}
	cap := cfg.CachePages
	if cap <= 0 {
		cap = DefaultCachePages
	}
	for i := range d.nodes {
		n := &node{
			id:        i,
			dsm:       d,
			home:      pagestore.New(),
			pcache:    machine.NewPageCache(params.Bus.CachePages),
			cache:     make(map[memsim.PageID]*cpage),
			dirty:     make(map[memsim.PageID]struct{}),
			homeDirty: make(map[memsim.PageID]struct{}),
		}
		if cfg.Aggregation.Prefetch {
			n.pf = newPrefetcher(cfg.Aggregation.PrefetchDegree)
		}
		d.nodes[i] = n
		d.registerHandlers(n)
		d.registerAggHandlers(n)
		d.registerMigrateHandler(n)
	}
	d.cacheCap = cap
	d.protocol = cfg.Protocol
	d.agg = cfg.Aggregation
	d.dropInval = cfg.DropInvalidations
	d.rcPending = notices.NewBoard()
	d.migrateAfter = cfg.MigrateAfter
	d.migration = newMigrationState()
	d.vbMig = vclock.NewVBarrier(cfg.Nodes)
	d.barrier = newBarrierState(cfg.Nodes)
	// Under an active call-fault plan, retry timeouts desynchronize
	// barrier arrivals; switch to the quiescent-instant release so seeded
	// campaigns replay bit-identically (fault-free runs keep the legacy
	// snapshot convention and its exact numbers).
	d.vbMig.SetLiveRelease(d.layer.Network().CallFaultsActive)
	d.barrier.vb.SetLiveRelease(d.layer.Network().CallFaultsActive)
	return d, nil
}

func (d *DSM) registerHandlers(n *node) {
	id := simnet.NodeID(n.id)
	d.layer.Register(id, kindFetchPage, func(_ amsg.NodeID, req []byte) ([]byte, vclock.Duration) {
		dec := amsg.MakeDec(req)
		p := memsim.PageID(dec.U64())
		hp := n.home.Frame(p)
		hp.Mu.Lock()
		// The reply buffer comes from the page pool and will BECOME the
		// requester's cached copy; it re-enters the pool when that copy is
		// retired (see pool.go for the ownership chain).
		out := getPage()
		copy(out, hp.Data)
		hp.Mu.Unlock()
		return out, d.params.CPU.PageCopyNs
	})
	d.layer.Register(id, kindApplyDiff, func(from amsg.NodeID, req []byte) ([]byte, vclock.Duration) {
		dec := amsg.MakeDec(req)
		p := memsim.PageID(dec.U64())
		diff := dec.Blob()
		hp := n.home.Frame(p)
		hp.Mu.Lock()
		err := applyDiff(hp.Data, diff)
		hp.Mu.Unlock()
		if err != nil {
			panic(err) // internal protocol corruption
		}
		n.markCkptDirty(p)
		// Applying a diff costs roughly a proportional share of a page copy.
		cost := d.params.CPU.PageCopyNs * vclock.Duration(len(diff)+1) / memsim.PageSize
		if rec := d.rec; rec != nil && rec.Enabled() {
			rec.Record(n.id, perfmon.EvDiffApply, d.clocks[n.id].Now(), cost, uint64(p), uint64(len(diff)))
		}
		return nil, cost
	})
}

// Kind implements platform.Substrate.
func (d *DSM) Kind() platform.Kind { return platform.SWDSM }

// Nodes implements platform.Substrate.
func (d *DSM) Nodes() int { return len(d.nodes) }

// Clock implements platform.Substrate.
func (d *DSM) Clock(node int) *vclock.Clock { return d.clocks[node] }

// Space implements platform.Substrate.
func (d *DSM) Space() *memsim.Space { return d.space }

// Params implements platform.Substrate.
func (d *DSM) Params() machine.Params { return d.params }

// Layer exposes the active-message layer (for the integration tests and
// the coalesced-messaging configuration).
func (d *DSM) Layer() *amsg.Layer { return d.layer }

// EngineName implements consengine.Engine: the protocol variant's name.
func (d *DSM) EngineName() string { return d.protocol.String() }

// DeclaredModel implements consengine.Engine: the model this protocol
// claims for data-race-free programs — Scope for the default protocol,
// Release for the eager variant (any acquire applies every notice). The
// conformance harness in internal/conscheck verifies the claim.
func (d *DSM) DeclaredModel() consengine.Model {
	if d.protocol == EagerRC {
		return consengine.Release
	}
	return consengine.Scope
}

// Caps implements platform.Substrate.
func (d *DSM) Caps() platform.Caps {
	return platform.Caps{
		PageCaching:      true,
		ConsistencyModel: d.protocol.String(),
		Placement: []memsim.Policy{
			memsim.Block, memsim.Cyclic, memsim.FirstTouch, memsim.Fixed,
		},
	}
}

// Alloc implements platform.Substrate.
func (d *DSM) Alloc(size uint64, name string, pol memsim.Policy, fixedNode int) (memsim.Region, error) {
	return d.space.Alloc(size, name, pol, fixedNode)
}

// Free implements platform.Substrate.
func (d *DSM) Free(r memsim.Region) error { return d.space.Free(r) }

// Compute implements platform.Substrate.
func (d *DSM) Compute(node int, flops uint64) {
	d.clocks[node].Advance(vclock.Duration(flops) * d.params.CPU.FlopNs)
}

// NodeStats implements platform.Substrate. Call only while the node's
// program is quiescent (e.g., after the SPMD run joined).
func (d *DSM) NodeStats(node int) platform.Stats { return d.nodes[node].stats }

// ResetStats implements platform.Substrate. Quiescent use only.
func (d *DSM) ResetStats(node int) { d.nodes[node].stats = platform.Stats{} }

// SetRecorder implements platform.Substrate: attaches the recorder to the
// protocol and to the messaging stack underneath it (the active-message
// layer and its network), so one call instruments the whole path whether
// the layer is private or HAMSTER's shared coalesced layer.
func (d *DSM) SetRecorder(rec *perfmon.Recorder) {
	d.rec = rec
	d.layer.SetRecorder(rec)
}

// Close implements platform.Substrate.
func (d *DSM) Close() { d.layer.Network().Close() }

// AbortSync poisons every synchronization object of the cluster so that
// no goroutine stays blocked waiting for a failed peer: parties blocked
// at (or later reaching) the barrier, the migration rendezvous, or any
// global lock panic with the reason instead of deadlocking. The core
// runtime calls it from its per-node panic recovery when a node
// fail-stops, turning a would-be hang into one clean diagnostic.
func (d *DSM) AbortSync(reason string) {
	d.barrier.vb.Abort(reason)
	d.vbMig.Abort(reason)
	d.lockMu.Lock()
	locks := append([]*lockState(nil), d.locks...)
	d.lockMu.Unlock()
	for _, st := range locks {
		st.vl.Abort(reason)
	}
}

// homeOf resolves (and first-touch assigns) the home of a page for an
// accessing node.
func (n *node) homeOf(p memsim.PageID) int {
	h := n.dsm.space.Home(p)
	if h == memsim.NoHome {
		h = n.dsm.space.TouchHome(p, n.id)
	}
	return h
}

// frameForRead returns the bytes of the page containing a, fetching it
// into the cache on a miss. When the page is homed locally the returned
// homePage is non-nil and its mutex is HELD: the caller must release it
// after performing the access. This keeps the owner's in-place home
// accesses coherent with remote fetch/diff handlers running on other
// goroutines (false sharing between nodes is legal in DRF programs).
func (n *node) frameForRead(p memsim.PageID) ([]byte, *pagestore.Frame) {
	if f := n.fastLookup(p); f != nil {
		// Fast path: the page was resolved earlier in this interval and no
		// consistency action has intervened. Cached frames still refresh
		// their LRU position so eviction order matches the slow path.
		if f.hp != nil {
			f.hp.Mu.Lock()
			return f.hp.Data, f.hp
		}
		n.lru.moveToFront(f.cp)
		return f.data, nil
	}
	home := n.homeOf(p)
	if home == n.id {
		hp := n.home.Frame(p)
		_, hd := n.homeDirty[p]
		n.fastRecord(fastFrame{ok: true, page: p, gen: n.gen, hp: hp, dirty: hd})
		hp.Mu.Lock()
		return hp.Data, hp
	}
	if cp, ok := n.cache[p]; ok {
		n.notePrefetchHit(p)
		n.lru.moveToFront(cp)
		n.fastRecord(fastFrame{ok: true, page: p, gen: n.gen, data: cp.data, cp: cp, dirty: cp.twin != nil})
		return cp.data, nil
	}
	cp := n.fault(p, home)
	n.fastRecord(fastFrame{ok: true, page: p, gen: n.gen, data: cp.data, cp: cp})
	return cp.data, nil
}

// fault fetches a remote page into the cache.
func (n *node) fault(p memsim.PageID, home int) *cpage {
	clk := n.dsm.clocks[n.id]
	t0 := clk.Now()
	enc := amsg.GetEnc()
	req := enc.U64(uint64(p)).Bytes()
	n.stats.ProtocolMsgs++
	data, err := n.dsm.layer.CallErr(simnet.NodeID(n.id), simnet.NodeID(home), kindFetchPage, req)
	if err != nil {
		// The home may have migrated between the lookup and the call;
		// a re-resolved home gets one more chance. Beyond that the run is
		// lost — the authoritative copy lives nowhere else — so fail with
		// a diagnostic instead of computing on stale data.
		if cur := n.dsm.space.Home(p); cur != home {
			home = cur
			n.stats.ProtocolMsgs++
			data, err = n.dsm.layer.CallErr(simnet.NodeID(n.id), simnet.NodeID(home), kindFetchPage, req)
		}
		if err != nil {
			panic(fmt.Sprintf("swdsm: node %d cannot fetch page %d from home node %d: %v", n.id, p, home, err))
		}
	}
	enc.Free()                                                    // the call returned: no reference to the request remains
	clk.AdvanceCat(vclock.CatMemory, n.dsm.params.CPU.PageCopyNs) // install copy
	if rec := n.dsm.rec; rec != nil && rec.Enabled() {
		rec.Record(n.id, perfmon.EvPageFault, t0, vclock.Since(t0, clk.Now()), uint64(p), uint64(home))
	}
	cp := getCpage()
	cp.data = data
	cp.page = p
	n.lru.pushFront(cp)
	n.cache[p] = cp
	n.stats.PageFaults++
	n.evictIfNeeded()
	n.maybePrefetch(p, home)
	return cp
}

func (n *node) evictIfNeeded() {
	for len(n.cache) > n.dsm.cacheCap {
		cp := n.lru.back()
		if cp == nil {
			return
		}
		n.bumpGen()
		p := cp.page
		if cp.twin != nil {
			n.flushPage(p, cp)
		}
		n.notePrefetchDrop(p)
		n.lru.remove(cp)
		delete(n.cache, p)
		delete(n.dirty, p)
		putCpage(cp)
		n.stats.Evictions++
	}
}

// prepareWrite returns the writable frame for page p, creating a twin for
// remote pages on the first write of an interval. Like frameForRead, a
// non-nil homePage is returned locked and must be released by the caller.
func (n *node) prepareWrite(p memsim.PageID) ([]byte, *pagestore.Frame) {
	if f := n.fastLookup(p); f != nil && f.dirty {
		// Fast path: the page is already write-ready for this interval
		// (twin created / homeDirty recorded), so the slow path would be
		// pure bookkeeping re-checks. See frameForRead on LRU order.
		if f.hp != nil {
			f.hp.Mu.Lock()
			return f.hp.Data, f.hp
		}
		n.lru.moveToFront(f.cp)
		return f.data, nil
	}
	home := n.homeOf(p)
	if home == n.id {
		n.homeDirty[p] = struct{}{}
		hp := n.home.Frame(p)
		n.fastRecord(fastFrame{ok: true, page: p, gen: n.gen, hp: hp, dirty: true})
		hp.Mu.Lock()
		return hp.Data, hp
	}
	cp, ok := n.cache[p]
	if !ok {
		cp = n.fault(p, home)
	} else {
		n.notePrefetchHit(p)
		n.lru.moveToFront(cp)
	}
	if cp.twin == nil {
		clk := n.dsm.clocks[n.id]
		t0 := clk.Now()
		cp.twin = getTwin()
		copy(cp.twin, cp.data)
		clk.AdvanceCat(vclock.CatMemory, n.dsm.params.CPU.PageCopyNs)
		n.stats.TwinsCreated++
		n.dirty[p] = struct{}{}
		if rec := n.dsm.rec; rec != nil && rec.Enabled() {
			rec.Record(n.id, perfmon.EvTwinCreate, t0, vclock.Since(t0, clk.Now()), uint64(p), 0)
		}
	}
	n.fastRecord(fastFrame{ok: true, page: p, gen: n.gen, data: cp.data, cp: cp, dirty: true})
	return cp.data, nil
}

// touchLocal charges the CPU-cache model for one local page reference.
func (n *node) touchLocal(p memsim.PageID) {
	if !n.pcache.Touch(uint64(p)) {
		n.dsm.clocks[n.id].AdvanceCat(vclock.CatMemory, n.dsm.params.Bus.MissCost())
		n.stats.CacheMisses++
	}
}

func (d *DSM) access(nodeID int) *node {
	if nodeID < 0 || nodeID >= len(d.nodes) {
		panic(fmt.Sprintf("swdsm: invalid node %d", nodeID))
	}
	return d.nodes[nodeID]
}

// ReadF64 implements platform.Substrate.
func (d *DSM) ReadF64(nodeID int, a memsim.Addr) float64 {
	n := d.access(nodeID)
	d.clocks[nodeID].AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs)
	n.stats.Reads++
	n.touchLocal(memsim.PageOf(a))
	fr, hp := n.frameForRead(memsim.PageOf(a))
	v := memsim.GetF64(fr, memsim.Offset(a))
	if hp != nil {
		hp.Mu.Unlock()
	}
	return v
}

// WriteF64 implements platform.Substrate.
func (d *DSM) WriteF64(nodeID int, a memsim.Addr, v float64) {
	n := d.access(nodeID)
	d.clocks[nodeID].AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs)
	n.stats.Writes++
	n.touchLocal(memsim.PageOf(a))
	fr, hp := n.prepareWrite(memsim.PageOf(a))
	memsim.PutF64(fr, memsim.Offset(a), v)
	if hp != nil {
		hp.Mu.Unlock()
	}
}

// ReadI64 implements platform.Substrate.
func (d *DSM) ReadI64(nodeID int, a memsim.Addr) int64 {
	n := d.access(nodeID)
	d.clocks[nodeID].AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs)
	n.stats.Reads++
	n.touchLocal(memsim.PageOf(a))
	fr, hp := n.frameForRead(memsim.PageOf(a))
	v := memsim.GetI64(fr, memsim.Offset(a))
	if hp != nil {
		hp.Mu.Unlock()
	}
	return v
}

// WriteI64 implements platform.Substrate.
func (d *DSM) WriteI64(nodeID int, a memsim.Addr, v int64) {
	n := d.access(nodeID)
	d.clocks[nodeID].AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs)
	n.stats.Writes++
	n.touchLocal(memsim.PageOf(a))
	fr, hp := n.prepareWrite(memsim.PageOf(a))
	memsim.PutI64(fr, memsim.Offset(a), v)
	if hp != nil {
		hp.Mu.Unlock()
	}
}

// ReadBytes implements platform.Substrate; the span may cross pages.
func (d *DSM) ReadBytes(nodeID int, a memsim.Addr, buf []byte) {
	n := d.access(nodeID)
	for len(buf) > 0 {
		p := memsim.PageOf(a)
		off := memsim.Offset(a)
		chunk := memsim.PageSize - off
		if chunk > len(buf) {
			chunk = len(buf)
		}
		d.clocks[nodeID].AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*
			vclock.Duration(1+chunk/memsim.WordSize))
		n.stats.Reads++
		n.touchLocal(p)
		fr, hp := n.frameForRead(p)
		copy(buf[:chunk], fr[off:off+chunk])
		if hp != nil {
			hp.Mu.Unlock()
		}
		buf = buf[chunk:]
		a += memsim.Addr(chunk)
	}
}

// WriteBytes implements platform.Substrate; the span may cross pages.
func (d *DSM) WriteBytes(nodeID int, a memsim.Addr, data []byte) {
	n := d.access(nodeID)
	for len(data) > 0 {
		p := memsim.PageOf(a)
		off := memsim.Offset(a)
		chunk := memsim.PageSize - off
		if chunk > len(data) {
			chunk = len(data)
		}
		d.clocks[nodeID].AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*
			vclock.Duration(1+chunk/memsim.WordSize))
		n.stats.Writes++
		n.touchLocal(p)
		fr, hp := n.prepareWrite(p)
		copy(fr[off:off+chunk], data[:chunk])
		if hp != nil {
			hp.Mu.Unlock()
		}
		data = data[chunk:]
		a += memsim.Addr(chunk)
	}
}
