package swdsm

import (
	"sync"
	"testing"
	"testing/quick"

	"hamster/internal/memsim"
	"hamster/internal/platform"
	"hamster/internal/vclock"
)

func newDSM(t testing.TB, nodes int) *DSM {
	t.Helper()
	d, err := New(Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// spmd runs fn on every node concurrently and waits for completion.
func spmd(d *DSM, fn func(id int)) {
	var wg sync.WaitGroup
	for id := 0; id < d.Nodes(); id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fn(id)
		}(id)
	}
	wg.Wait()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Fatal("expected error for zero nodes")
	}
}

func TestCapsAndKind(t *testing.T) {
	d := newDSM(t, 2)
	if d.Kind() != platform.SWDSM {
		t.Fatal("wrong kind")
	}
	c := d.Caps()
	if !c.PageCaching || c.HardwareCoherent || c.ConsistencyModel != "scope" {
		t.Fatalf("caps = %+v", c)
	}
	if !c.SupportsPolicy(memsim.Cyclic) {
		t.Fatal("cyclic placement must be supported")
	}
}

func TestLocalHomeReadWrite(t *testing.T) {
	d := newDSM(t, 2)
	r, err := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.WriteF64(0, r.Base, 3.5)
	if got := d.ReadF64(0, r.Base); got != 3.5 {
		t.Fatalf("got %v", got)
	}
	st := d.NodeStats(0)
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PageFaults != 0 {
		t.Fatal("home access must not fault")
	}
}

func TestRemoteFetchAndCaching(t *testing.T) {
	d := newDSM(t, 2)
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	d.WriteI64(0, r.Base, 77)
	// Make the home write visible: writer fences (flush is a no-op for
	// home writes, data is in place) — reader faults fresh.
	if got := d.ReadI64(1, r.Base); got != 77 {
		t.Fatalf("remote read = %d", got)
	}
	if f := d.NodeStats(1).PageFaults; f != 1 {
		t.Fatalf("faults = %d, want 1", f)
	}
	// Second read hits the cache: no new fault.
	d.ReadI64(1, r.Base+8)
	if f := d.NodeStats(1).PageFaults; f != 1 {
		t.Fatalf("faults after cached read = %d, want 1", f)
	}
}

func TestFaultCostMatchesEthernetRTT(t *testing.T) {
	d := newDSM(t, 2)
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	before := d.Clock(1).Now()
	d.ReadF64(1, r.Base)
	elapsed := d.Clock(1).Now() - before
	// A fault must cost at least two wire latencies plus the page payload
	// serialization (~440µs with defaults).
	link := d.Params().Ethernet
	min := 2*link.LatencyNs + vclock.Duration(memsim.PageSize)*link.NsPerByte
	if uint64(elapsed) < uint64(min) {
		t.Fatalf("fault cost %d < minimum %d", elapsed, min)
	}
}

func TestLockReleaseAcquirePropagates(t *testing.T) {
	d := newDSM(t, 2)
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	l := d.NewLock()

	// Node 1 writes under the lock; node 0 (the home) sees the diff after
	// its own acquire.
	d.Acquire(1, l)
	d.WriteF64(1, r.Base, 9.25)
	d.Release(1, l)

	d.Acquire(0, l)
	if got := d.ReadF64(0, r.Base); got != 9.25 {
		t.Fatalf("home read after acquire = %v, want 9.25", got)
	}
	d.Release(0, l)

	st := d.NodeStats(1)
	if st.TwinsCreated != 1 || st.DiffsCreated != 1 {
		t.Fatalf("writer stats = %+v", st)
	}
}

func TestScopeInvalidationOnAcquire(t *testing.T) {
	d := newDSM(t, 3)
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	l := d.NewLock()

	// Node 2 caches the page with the initial value.
	d.Acquire(2, l)
	if got := d.ReadF64(2, r.Base); got != 0 {
		t.Fatalf("initial = %v", got)
	}
	d.Release(2, l)

	// Node 1 updates it under the lock.
	d.Acquire(1, l)
	d.WriteF64(1, r.Base, 4.5)
	d.Release(1, l)

	// Node 2 re-acquires: its copy must be invalidated and refetched.
	d.Acquire(2, l)
	if got := d.ReadF64(2, r.Base); got != 4.5 {
		t.Fatalf("after reacquire = %v, want 4.5", got)
	}
	d.Release(2, l)
	if inv := d.NodeStats(2).Invalidations; inv != 1 {
		t.Fatalf("invalidations = %d, want 1", inv)
	}
}

func TestScopeConsistencyAllowsStaleWithoutAcquire(t *testing.T) {
	// Scope consistency: a node that does NOT synchronize keeps its stale
	// copy. This is the semantics gap that makes ScC cheap.
	d := newDSM(t, 3)
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	l := d.NewLock()

	d.ReadF64(2, r.Base) // node 2 caches value 0

	d.Acquire(1, l)
	d.WriteF64(1, r.Base, 1.5)
	d.Release(1, l)

	if got := d.ReadF64(2, r.Base); got != 0 {
		t.Fatalf("unsynchronized read = %v, want stale 0", got)
	}
}

func TestBarrierPropagatesAllWrites(t *testing.T) {
	d := newDSM(t, 4)
	r, _ := d.Alloc(4*memsim.PageSize, "x", memsim.Block, 0)

	spmd(d, func(id int) {
		// Everyone reads everything once (caches all pages).
		for p := 0; p < 4; p++ {
			d.ReadF64(id, r.Base+memsim.Addr(p*memsim.PageSize))
		}
		d.Barrier(id)
		// Each node writes one word on a page homed elsewhere.
		target := (id + 1) % 4
		d.WriteF64(id, r.Base+memsim.Addr(target*memsim.PageSize), float64(id+1))
		d.Barrier(id)
		// Everyone must observe everyone's writes.
		for w := 0; w < 4; w++ {
			target := (w + 1) % 4
			got := d.ReadF64(id, r.Base+memsim.Addr(target*memsim.PageSize))
			if got != float64(w+1) {
				panic("stale read after barrier")
			}
		}
		d.Barrier(id)
	})
	for id := 0; id < 4; id++ {
		if b := d.NodeStats(id).BarrierCrossings; b != 3 {
			t.Fatalf("node %d barriers = %d, want 3", id, b)
		}
	}
}

func TestMultipleWriterFalseSharing(t *testing.T) {
	// Two nodes write disjoint words of the SAME page (homed on a third
	// node) between barriers; both writes must survive the diff merge.
	d := newDSM(t, 3)
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 2)

	spmd(d, func(id int) {
		d.Barrier(id)
		if id == 0 {
			d.WriteF64(0, r.Base, 10)
		}
		if id == 1 {
			d.WriteF64(1, r.Base+8, 20)
		}
		d.Barrier(id)
		a := d.ReadF64(id, r.Base)
		b := d.ReadF64(id, r.Base+8)
		if a != 10 || b != 20 {
			panic("multiple-writer merge lost a write")
		}
		d.Barrier(id)
	})
}

func TestLockMutualExclusionCounter(t *testing.T) {
	d := newDSM(t, 4)
	r, _ := d.Alloc(memsim.PageSize, "counter", memsim.Fixed, 0)
	l := d.NewLock()
	const perNode = 25

	spmd(d, func(id int) {
		for i := 0; i < perNode; i++ {
			d.Acquire(id, l)
			v := d.ReadI64(id, r.Base)
			d.WriteI64(id, r.Base, v+1)
			d.Release(id, l)
		}
		d.Barrier(id)
	})
	if got := d.ReadI64(0, r.Base); got != 4*perNode {
		t.Fatalf("counter = %d, want %d", got, 4*perNode)
	}
}

func TestFirstTouchHomesFollowToucher(t *testing.T) {
	d := newDSM(t, 2)
	r, _ := d.Alloc(2*memsim.PageSize, "ft", memsim.FirstTouch, 0)
	d.WriteF64(1, r.Base, 1) // node 1 touches page 0 first
	if h := d.Space().Home(memsim.PageOf(r.Base)); h != 1 {
		t.Fatalf("home = %d, want 1", h)
	}
	// Touch is a home write: no fault, no twin.
	st := d.NodeStats(1)
	if st.PageFaults != 0 || st.TwinsCreated != 0 {
		t.Fatalf("first-touch write must be local: %+v", st)
	}
}

func TestEvictionFlushesDirtyPages(t *testing.T) {
	d, err := New(Config{Nodes: 2, CachePages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r, _ := d.Alloc(8*memsim.PageSize, "big", memsim.Fixed, 0)

	// Node 1 writes one word on each of 8 remote pages: cache cap 2
	// forces evictions, which must flush the dirty data home.
	for p := 0; p < 8; p++ {
		d.WriteF64(1, r.Base+memsim.Addr(p*memsim.PageSize), float64(p+1))
	}
	if ev := d.NodeStats(1).Evictions; ev < 6 {
		t.Fatalf("evictions = %d, want >= 6", ev)
	}
	d.Fence(1) // flush the (still cached) last pages home too
	// All values must now be at the home.
	for p := 0; p < 8; p++ {
		if got := d.ReadF64(0, r.Base+memsim.Addr(p*memsim.PageSize)); got != float64(p+1) {
			t.Fatalf("page %d home value = %v", p, got)
		}
	}
}

func TestFenceMakesWritesGloballyVisible(t *testing.T) {
	d := newDSM(t, 2)
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	d.ReadF64(1, r.Base) // node 1 caches stale copy

	d.WriteF64(1, r.Base, 6.75)
	d.Fence(1) // flush + drop cache
	if got := d.ReadF64(0, r.Base); got != 6.75 {
		t.Fatalf("home after fence = %v", got)
	}
	// Node 1's cache was dropped: next read refetches (fault count grows).
	before := d.NodeStats(1).PageFaults
	d.ReadF64(1, r.Base)
	if d.NodeStats(1).PageFaults != before+1 {
		t.Fatal("fence must drop cached pages")
	}
}

func TestReadWriteBytesCrossPage(t *testing.T) {
	d := newDSM(t, 2)
	r, _ := d.Alloc(2*memsim.PageSize, "span", memsim.Fixed, 0)
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i + 1)
	}
	start := r.Base + memsim.Addr(memsim.PageSize-50) // straddles the page boundary
	d.WriteBytes(1, start, data)
	d.Fence(1)

	buf := make([]byte, 100)
	d.ReadBytes(0, start, buf)
	for i := range buf {
		if buf[i] != byte(i+1) {
			t.Fatalf("byte %d = %d, want %d", i, buf[i], i+1)
		}
	}
}

func TestBarrierAdvancesClocksTogether(t *testing.T) {
	d := newDSM(t, 4)
	spmd(d, func(id int) {
		d.Clock(id).Advance(vclock.Duration(id) * 1_000_000)
		d.Barrier(id)
	})
	max := d.Clock(0).Now()
	for id := 1; id < 4; id++ {
		if d.Clock(id).Now() < max {
			t.Fatalf("node %d left the barrier before the slowest node's arrival", id)
		}
	}
}

func TestComputeChargesFlops(t *testing.T) {
	d := newDSM(t, 1)
	before := d.Clock(0).Now()
	d.Compute(0, 1000)
	want := vclock.Duration(1000) * d.Params().CPU.FlopNs
	if got := vclock.Duration(d.Clock(0).Now() - before); got != want {
		t.Fatalf("compute charge = %d, want %d", got, want)
	}
}

func TestUnknownLockPanics(t *testing.T) {
	d := newDSM(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Acquire(0, 3)
}

// --- diff codec tests ---

func TestBuildApplyDiffRoundTrip(t *testing.T) {
	twin := make([]byte, memsim.PageSize)
	data := make([]byte, memsim.PageSize)
	copy(data, twin)
	memsim.PutF64(data, 0, 1.5)
	memsim.PutF64(data, 128, 2.5)
	memsim.PutF64(data, memsim.PageSize-8, 3.5)

	diff := buildDiff(data, twin)
	if len(diff) == 0 {
		t.Fatal("diff must not be empty")
	}
	home := make([]byte, memsim.PageSize)
	copy(home, twin)
	if err := applyDiff(home, diff); err != nil {
		t.Fatal(err)
	}
	for i := range home {
		if home[i] != data[i] {
			t.Fatalf("byte %d differs after apply", i)
		}
	}
}

func TestEmptyDiff(t *testing.T) {
	page := make([]byte, memsim.PageSize)
	if diff := buildDiff(page, page); diff != nil {
		t.Fatalf("identical pages must produce nil diff, got %d bytes", len(diff))
	}
}

func TestFullPageDiff(t *testing.T) {
	twin := make([]byte, memsim.PageSize)
	data := make([]byte, memsim.PageSize)
	for i := range data {
		data[i] = 0xFF
	}
	diff := buildDiff(data, twin)
	// One run covering the page: header + full payload. But runs are
	// capped by uint16 length (max 65535 > 4096), so exactly one run.
	if len(diff) != diffRunHeader+memsim.PageSize {
		t.Fatalf("full-page diff = %d bytes, want %d", len(diff), diffRunHeader+memsim.PageSize)
	}
}

func TestApplyDiffRejectsCorrupt(t *testing.T) {
	frame := make([]byte, memsim.PageSize)
	if err := applyDiff(frame, []byte{1, 2, 3}); err == nil {
		t.Fatal("truncated header must fail")
	}
	// Run pointing past the page.
	bad := []byte{0xF8, 0x0F, 0x10, 0x00} // off=4088, len=16 -> 4104 > 4096
	if err := applyDiff(frame, bad); err == nil {
		t.Fatal("overflowing run must fail")
	}
}

// Property: for arbitrary word-aligned modifications, applying the diff to
// a copy of the twin reconstructs the data exactly, and the diff is never
// larger than header-per-run + changed bytes would require.
func TestDiffProperty(t *testing.T) {
	f := func(mods []struct {
		Off uint16
		Val uint64
	}) bool {
		twin := make([]byte, memsim.PageSize)
		for i := range twin {
			twin[i] = byte(i * 7)
		}
		data := make([]byte, memsim.PageSize)
		copy(data, twin)
		for _, m := range mods {
			off := int(m.Off) % (memsim.PageSize - 8)
			off -= off % 8
			memsim.PutU64(data, off, m.Val)
		}
		diff := buildDiff(data, twin)
		rebuilt := make([]byte, memsim.PageSize)
		copy(rebuilt, twin)
		if err := applyDiff(rebuilt, diff); err != nil {
			return false
		}
		for i := range rebuilt {
			if rebuilt[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNoticesCodecRoundTrip(t *testing.T) {
	f := func(raw []uint64) bool {
		pages := make([]memsim.PageID, len(raw))
		for i, v := range raw {
			pages[i] = memsim.PageID(v)
		}
		got, err := decodeNotices(encodeNotices(pages))
		if err != nil || len(got) != len(pages) {
			return false
		}
		for i := range got {
			if got[i] != pages[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNoticesMalformed(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short header", []byte{1, 0}},
		{"truncated payload", func() []byte {
			enc := encodeNotices([]memsim.PageID{1, 2, 3})
			return enc[:len(enc)-5]
		}()},
		{"huge declared count", []byte{0xff, 0xff, 0xff, 0xff}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got, err := decodeNotices(c.b); err == nil {
				t.Fatalf("decodeNotices(%v) = %v, want error", c.b, got)
			}
		})
	}
}

func BenchmarkLocalRead(b *testing.B) {
	d := newDSM(b, 2)
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ReadF64(0, r.Base)
	}
}

func BenchmarkCachedRemoteRead(b *testing.B) {
	d := newDSM(b, 2)
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	d.ReadF64(1, r.Base) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ReadF64(1, r.Base)
	}
}

func BenchmarkLockRoundTrip(b *testing.B) {
	d := newDSM(b, 2)
	l := d.NewLock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Acquire(1, l)
		d.Release(1, l)
	}
}

func TestHomeMigrationSingleWriter(t *testing.T) {
	d, err := New(Config{Nodes: 2, MigrateAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r, _ := d.Alloc(memsim.PageSize, "hot", memsim.Fixed, 0)

	// Node 1 is the single writer of a page homed on node 0: after two
	// diffed intervals the home must migrate to node 1.
	spmd(d, func(id int) {
		for it := 0; it < 4; it++ {
			if id == 1 {
				d.WriteF64(1, r.Base, float64(it))
			}
			d.Barrier(id)
		}
	})
	p := memsim.PageOf(r.Base)
	if h := d.Space().Home(p); h != 1 {
		t.Fatalf("home = %d, want 1 (migrated)", h)
	}
	if mig := d.NodeStats(1).HomeMigrations; mig != 1 {
		t.Fatalf("migrations = %d, want 1", mig)
	}
	// Post-migration writes are home-local: no new twins.
	before := d.NodeStats(1).TwinsCreated
	spmd(d, func(id int) {
		if id == 1 {
			d.WriteF64(1, r.Base, 9)
		}
		d.Barrier(id)
	})
	if d.NodeStats(1).TwinsCreated != before {
		t.Fatal("writer still paying twins after migration")
	}
	// Data survived the migration and stays coherent.
	if got := d.ReadF64(0, r.Base); got != 9 {
		t.Fatalf("reader sees %v, want 9", got)
	}
}

func TestHomeMigrationPreservesData(t *testing.T) {
	d, err := New(Config{Nodes: 3, MigrateAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r, _ := d.Alloc(2*memsim.PageSize, "data", memsim.Fixed, 0)

	spmd(d, func(id int) {
		// Node 0 populates both pages (home writes).
		if id == 0 {
			for i := 0; i < 16; i++ {
				d.WriteF64(0, r.Base+memsim.Addr(8*i), float64(100+i))
			}
		}
		d.Barrier(id)
		// Node 2 becomes the single writer of word 0 only.
		for it := 0; it < 3; it++ {
			if id == 2 {
				d.WriteF64(2, r.Base, float64(it))
			}
			d.Barrier(id)
		}
		// Every node validates ALL data: migrated page kept its other
		// words, second page untouched.
		for i := 1; i < 16; i++ {
			want := float64(100 + i)
			if got := d.ReadF64(id, r.Base+memsim.Addr(8*i)); got != want {
				panic("migration lost data")
			}
		}
		d.Barrier(id)
	})
	if d.Space().Home(memsim.PageOf(r.Base)) != 2 {
		t.Fatal("page 0 should have migrated to node 2")
	}
}

func TestMigrationDisabledByDefault(t *testing.T) {
	d := newDSM(t, 2)
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	spmd(d, func(id int) {
		for it := 0; it < 5; it++ {
			if id == 1 {
				d.WriteF64(1, r.Base, float64(it))
			}
			d.Barrier(id)
		}
	})
	if d.Space().Home(memsim.PageOf(r.Base)) != 0 {
		t.Fatal("home moved with migration disabled")
	}
}

func TestMigrationContention(t *testing.T) {
	// Two single-writer pages with different writers, plus a page both
	// write (streaks reset by invalidations): only the single-writer
	// pages migrate, each to its writer.
	d, err := New(Config{Nodes: 2, MigrateAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	shared, _ := d.Alloc(memsim.PageSize, "shared", memsim.Fixed, 0)
	a, _ := d.Alloc(memsim.PageSize, "a", memsim.Fixed, 0)
	b, _ := d.Alloc(memsim.PageSize, "b", memsim.Fixed, 1)

	spmd(d, func(id int) {
		for it := 0; it < 6; it++ {
			d.WriteF64(id, shared.Base+memsim.Addr(8*id), float64(it))
			if id == 1 {
				d.WriteF64(1, a.Base, float64(it)) // homed 0, writer 1
			}
			if id == 0 {
				d.WriteF64(0, b.Base, float64(it)) // homed 1, writer 0
			}
			d.Barrier(id)
		}
	})
	if h := d.Space().Home(memsim.PageOf(a.Base)); h != 1 {
		t.Fatalf("page a home = %d, want 1", h)
	}
	if h := d.Space().Home(memsim.PageOf(b.Base)); h != 0 {
		t.Fatalf("page b home = %d, want 0", h)
	}
	if h := d.Space().Home(memsim.PageOf(shared.Base)); h != 0 {
		t.Fatalf("contended page home = %d, want 0 (unmigrated)", h)
	}
}

func TestEagerRCCrossLockVisibility(t *testing.T) {
	// Under eager RC, writes published at ANY release become visible at
	// the next acquire of ANY lock — the cross-scope case that Scope
	// Consistency deliberately leaves stale.
	build := func(proto Protocol) *DSM {
		d, err := New(Config{Nodes: 2, Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Close)
		return d
	}
	run := func(d *DSM) float64 {
		r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
		l1, l2 := d.NewLock(), d.NewLock()
		d.ReadF64(1, r.Base) // node 1 caches 0
		d.Acquire(0, l1)
		d.WriteF64(0, r.Base, 5.5)
		d.Release(0, l1)
		d.Acquire(1, l2) // DIFFERENT lock
		v := d.ReadF64(1, r.Base)
		d.Release(1, l2)
		return v
	}
	if got := run(build(ScopeConsistency)); got != 0 {
		t.Fatalf("scope: cross-lock read = %v, want stale 0", got)
	}
	if got := run(build(EagerRC)); got != 5.5 {
		t.Fatalf("eager RC: cross-lock read = %v, want 5.5", got)
	}
}

func TestEagerRCReleaseCostsScaleWithPeers(t *testing.T) {
	// Eager RC pays a message per peer at release; scope does not.
	cost := func(proto Protocol) vclock.Duration {
		d, err := New(Config{Nodes: 4, Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
		l := d.NewLock()
		d.Acquire(1, l)
		d.WriteF64(1, r.Base, 1)
		before := d.Clock(1).Now()
		d.Release(1, l)
		return vclock.Duration(d.Clock(1).Now() - before)
	}
	scope := cost(ScopeConsistency)
	eager := cost(EagerRC)
	if eager <= scope {
		t.Fatalf("eager release (%v) must cost more than scope release (%v)", eager, scope)
	}
}

func TestProtocolString(t *testing.T) {
	if ScopeConsistency.String() != "scope" || EagerRC.String() != "eager-rc" {
		t.Fatal("protocol names wrong")
	}
	d, err := New(Config{Nodes: 1, Protocol: EagerRC})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Caps().ConsistencyModel != "eager-rc" {
		t.Fatal("caps must reflect the protocol")
	}
}
