package swdsm

// Buffer and cache-entry recycling for the page-fetch hot path.
//
// Ownership chain of a remote page buffer: the home's fetch handler takes
// a buffer from pagePool and fills it from the frame; the reply travels
// (by reference — the active-message fast path never copies) to the
// requester, which installs it as the cached copy; the buffer returns to
// the pool only when that cached copy is retired (eviction, invalidation,
// fence, home migration, checkpoint restore rebuild). Exactly one owner
// at every step, so a pooled buffer can never be recycled while a reader
// still holds it — the aliasing race test (pool_test.go) hammers this
// chain under -race.
//
// Prefetch replies are the one exception to one-buffer-per-page: a
// kindFetchPages reply is a single allocation carved into PageSize
// windows by three-index subslices (len == cap == PageSize, so no write
// through one window can reach another). The windows retire individually
// into pagePool like any other page buffer; the shared backing array is
// simply reclaimed window by window.

import (
	"sync"

	"hamster/internal/memsim"
)

// The pool stores *[PageSize]byte rather than []byte: putting a slice
// into a sync.Pool boxes its three-word header into an interface — one
// heap allocation per recycle, which is exactly what the pool exists to
// avoid. Slice ⇄ array-pointer conversions are free.
var pagePool = sync.Pool{
	New: func() any { return new([memsim.PageSize]byte) },
}

// getPage returns a PageSize buffer with undefined contents.
func getPage() []byte { return pagePool.Get().(*[memsim.PageSize]byte)[:] }

// putPage recycles a page buffer. Buffers whose shape is not exactly one
// page (len == cap == PageSize) are left to the garbage collector — the
// pool must never hand out a buffer through which a neighboring window
// could be reached.
func putPage(b []byte) {
	if len(b) == memsim.PageSize && cap(b) == memsim.PageSize {
		pagePool.Put((*[memsim.PageSize]byte)(b))
	}
}

var cpagePool = sync.Pool{New: func() any { return new(cpage) }}

// getCpage returns a zeroed cache entry.
func getCpage() *cpage { return cpagePool.Get().(*cpage) }

// putCpage retires a cache entry: the page buffer goes back to pagePool,
// the struct to cpagePool. The caller must have unlinked it from the LRU
// and flushed any twin first.
func putCpage(cp *cpage) {
	putPage(cp.data)
	*cp = cpage{}
	cpagePool.Put(cp)
}

// pageLRU is an intrusive doubly-linked recency list over cpage entries
// (front = most recent). Intrusive rather than container/list so that
// moving a page to the front on every access — the single hottest
// list operation in the DSM — touches no allocator and no interface
// boxing. Owned, like the cache map, by the node's goroutine.
type pageLRU struct {
	head, tail *cpage
}

func (l *pageLRU) pushFront(cp *cpage) {
	cp.prev = nil
	cp.next = l.head
	if l.head != nil {
		l.head.prev = cp
	}
	l.head = cp
	if l.tail == nil {
		l.tail = cp
	}
}

func (l *pageLRU) remove(cp *cpage) {
	if cp.prev != nil {
		cp.prev.next = cp.next
	} else {
		l.head = cp.next
	}
	if cp.next != nil {
		cp.next.prev = cp.prev
	} else {
		l.tail = cp.prev
	}
	cp.prev, cp.next = nil, nil
}

func (l *pageLRU) moveToFront(cp *cpage) {
	if l.head == cp {
		return
	}
	l.remove(cp)
	l.pushFront(cp)
}

// back returns the least recently used entry, nil when empty.
func (l *pageLRU) back() *cpage { return l.tail }
