package swdsm

import (
	"fmt"
	"sync"
	"testing"

	"hamster/internal/memsim"
)

// TestPooledBufferAliasing hammers the pooled-buffer ownership chain
// documented in pool.go: page buffers travel home → requester → cache →
// pool, twins and diffs recycle within an interval, and prefetch replies
// are carved into per-page windows of one backing array. Four nodes churn
// fetch/evict/invalidate/flush concurrently (run under -race this also
// proves no recycled buffer is touched by two owners): a writer
// continuously re-stamps a shared region with a version number under a
// lock while readers acquire the same lock and verify every sampled word
// carries one consistent, monotonically advancing version. A recycled
// buffer that were still aliased by a cache entry, a diff in flight, or a
// sibling prefetch window would surface as a torn or regressed version.
func TestPooledBufferAliasing(t *testing.T) {
	const (
		pages  = 8
		words  = 4   // sampled words per page
		rounds = 150 // writer re-stamp cycles
	)
	d, err := New(Config{
		Nodes:      4,
		CachePages: 4, // < pages: every scan evicts, retiring buffers mid-use
		Aggregation: Aggregation{
			Batch:          true,
			Prefetch:       true,
			PrefetchDegree: 4, // carved multi-page reply windows
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.SetCheckpointTracking(true)

	shared, err := d.Alloc(pages*memsim.PageSize, "aliasing", memsim.Fixed, 0)
	if err != nil {
		t.Fatal(err)
	}
	lock := d.NewLock()
	wordAddr := func(p, w int) memsim.Addr {
		return shared.Base + memsim.Addr(p*memsim.PageSize+w*memsim.WordSize)
	}

	// Seed version 0 so readers never observe uninitialized frames.
	for p := 0; p < pages; p++ {
		for w := 0; w < words; w++ {
			d.WriteF64(0, wordAddr(p, w), 0)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 4)

	// Writer: node 0 stamps every sampled word with the round number under
	// the lock. Its pages are home-local, so the remote traffic all comes
	// from the readers — exactly the fetch/invalidate/flush churn the pool
	// chain must survive.
	wg.Add(1)
	go func() {
		defer wg.Done()
		scratch := make([]byte, memsim.PageSize)
		for v := 1; v <= rounds; v++ {
			d.Acquire(0, lock)
			for p := 0; p < pages; p++ {
				for w := 0; w < words; w++ {
					d.WriteF64(0, wordAddr(p, w), float64(v))
				}
			}
			d.Release(0, lock)
			if v%16 == 0 {
				// Checkpoint-style capture: read home frames while reader
				// releases apply diffs to them concurrently.
				for _, p := range d.CheckpointPages(0) {
					d.ReadPage(0, p, scratch)
				}
			}
		}
	}()

	// Readers: nodes 1..3 acquire the lock (invalidating their cached
	// copies), refetch the whole region — sequential scans trigger
	// prefetch runs, the small cache forces evictions — and verify all
	// sampled words agree on a single non-regressing version. Each also
	// dirties a private region so releases build twins and flush diffs.
	for nid := 1; nid <= 3; nid++ {
		priv, err := d.Alloc(2*memsim.PageSize, "priv", memsim.Fixed, 0)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(nid int, priv memsim.Region) {
			defer wg.Done()
			last := 0.0
			for i := 0; i < rounds; i++ {
				d.Acquire(nid, lock)
				v := d.ReadF64(nid, wordAddr(0, 0))
				for p := 0; p < pages; p++ {
					for w := 0; w < words; w++ {
						if got := d.ReadF64(nid, wordAddr(p, w)); got != v {
							errc <- errAliasing(nid, p, w, got, v)
							d.Release(nid, lock)
							return
						}
					}
				}
				if v < last {
					errc <- errRegressed(nid, v, last)
					d.Release(nid, lock)
					return
				}
				last = v
				d.WriteF64(nid, priv.Base+memsim.Addr((i%2)*memsim.PageSize), float64(i))
				d.Release(nid, lock)
				if i%32 == 31 {
					d.Fence(nid) // retire every cached buffer at once
				}
			}
		}(nid, priv)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func errAliasing(nid, p, w int, got, want float64) error {
	return fmt.Errorf("node %d: page %d word %d reads %.0f, rest of interval reads %.0f — pooled buffer aliased",
		nid, p, w, got, want)
}

func errRegressed(nid int, got, last float64) error {
	return fmt.Errorf("node %d: version regressed: read %.0f after %.0f", nid, got, last)
}
