package swdsm

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"hamster/internal/amsg"
	"hamster/internal/memsim"
	"hamster/internal/perfmon"
	"hamster/internal/simnet"
	"hamster/internal/vclock"
)

// Home migration (JiaJia's single-writer optimization): when one node
// keeps producing diffs for a page nobody else touches, the page's home
// migrates to that writer, turning every subsequent access into a local
// one. Detection is a per-page consecutive-diff counter (diffStreak),
// reset whenever the page is invalidated by someone else's write notice.
//
// Migration mutates the global home map, so it only runs inside a
// quiescent window: when any node has candidates, the barrier performs a
// second rendezvous — between the two rendezvous everyone is inside
// Barrier() and nobody touches data, so the fetch-install-retarget
// sequence cannot race with accesses or diff traffic.

// kindMigrate transfers a page's authoritative copy to a new home.
const kindMigrate amsg.Kind = 3

// migrationState coordinates one barrier's migration phase.
type migrationState struct {
	mu      sync.Mutex
	pending map[uint64]map[memsim.PageID]int // epoch -> page -> claiming node
	any     map[uint64]bool
	fetched map[uint64]int
}

func newMigrationState() *migrationState {
	return &migrationState{
		pending: make(map[uint64]map[memsim.PageID]int),
		any:     make(map[uint64]bool),
		fetched: make(map[uint64]int),
	}
}

// depositWishes records a node's migration candidates for an epoch; the
// first claimant of a page wins.
func (m *migrationState) depositWishes(epoch uint64, node int, pages []memsim.PageID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.pending[epoch]
	if ep == nil {
		ep = make(map[memsim.PageID]int)
		m.pending[epoch] = ep
	}
	for _, p := range pages {
		if _, taken := ep[p]; !taken {
			ep[p] = node
			m.any[epoch] = true
		}
	}
}

// grants returns the pages a node won for an epoch.
func (m *migrationState) grants(epoch uint64, node int) []memsim.PageID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []memsim.PageID
	for p, n := range m.pending[epoch] {
		if n == node {
			out = append(out, p)
		}
	}
	return out
}

// peekAny reports whether the epoch has migration work.
func (m *migrationState) peekAny(epoch uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.any[epoch]
}

// finish reclaims an epoch's state once every node has passed through.
func (m *migrationState) finish(epoch uint64, nodes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fetched[epoch]++
	if m.fetched[epoch] == nodes {
		delete(m.pending, epoch)
		delete(m.any, epoch)
		delete(m.fetched, epoch)
	}
}

// registerMigrateHandler installs the old-home side of a migration: give
// up the authoritative frame and return its contents.
func (d *DSM) registerMigrateHandler(n *node) {
	d.layer.Register(simnet.NodeID(n.id), kindMigrate, func(_ amsg.NodeID, req []byte) ([]byte, vclock.Duration) {
		dec := amsg.MakeDec(req)
		p := memsim.PageID(dec.U64())
		data := n.home.Drop(p)
		if data == nil {
			// Never materialized at the old home: hand over a zero page.
			data = make([]byte, memsim.PageSize)
		}
		return data, d.params.CPU.PageCopyNs
	})
}

// migrationWishes collects this node's candidate pages (consecutive-diff
// streak at or above the threshold).
func (n *node) migrationWishes() []memsim.PageID {
	if n.dsm.migrateAfter <= 0 {
		return nil
	}
	var out []memsim.PageID
	for p, cp := range n.cache {
		if cp.diffStreak >= n.dsm.migrateAfter {
			out = append(out, p)
		}
	}
	// Sorted, not map order: wish lists feed the grant protocol and its
	// fetch calls, whose fault draws must replay deterministically.
	slices.Sort(out)
	return out
}

// performMigrations runs inside the quiescent window: fetch each granted
// page's authoritative copy from its old home, install it locally, and
// retarget the global home map.
func (n *node) performMigrations(pages []memsim.PageID) {
	d := n.dsm
	n.bumpGen()
	for _, p := range pages {
		oldHome := d.space.Home(p)
		if oldHome == n.id || oldHome == memsim.NoHome {
			continue
		}
		clk := d.clocks[n.id]
		t0 := clk.Now()
		enc := amsg.GetEnc()
		req := enc.U64(uint64(p)).Bytes()
		n.stats.ProtocolMsgs++
		data, err := d.layer.CallErr(simnet.NodeID(n.id), simnet.NodeID(oldHome), kindMigrate, req)
		enc.Free()
		if err != nil {
			// Migration is an optimization, not a correctness requirement:
			// when the old home never saw the request, the current
			// assignment stays valid and the cached copy keeps serving.
			// But if the handler may have run (request delivered, acks
			// lost), the old home already dropped its frame and nobody
			// holds the authoritative copy — that is unrecoverable.
			var ue *amsg.UnreachableError
			if errors.As(err, &ue) && !ue.Executed {
				continue
			}
			panic(fmt.Sprintf("swdsm: node %d: page %d home handover from node %d failed mid-flight: %v",
				n.id, p, oldHome, err))
		}
		hp := n.home.Frame(p)
		hp.Mu.Lock()
		copy(hp.Data, data)
		hp.Mu.Unlock()
		// The handover reply was copied into the home frame; the buffer
		// (the old home's dropped frame) is dead and can serve page fetches.
		putPage(data)
		clk.AdvanceCat(vclock.CatMemory, d.params.CPU.PageCopyNs)
		d.space.SetHome(p, n.id)
		n.markCkptDirty(p)
		if rec := d.rec; rec != nil && rec.Enabled() {
			rec.Record(n.id, perfmon.EvHomeMigrate, t0, vclock.Since(t0, clk.Now()), uint64(p), uint64(oldHome))
		}
		// The page is now home-resident: retire the cached copy.
		if cp, ok := n.cache[p]; ok {
			n.lru.remove(cp)
			delete(n.cache, p)
			delete(n.dirty, p)
			putCpage(cp)
		}
		n.stats.HomeMigrations++
	}
}
