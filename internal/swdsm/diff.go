package swdsm

import (
	"encoding/binary"
	"fmt"
	"sync"

	"hamster/internal/memsim"
)

// A diff encodes the words of a page that changed relative to its twin, as
// a sequence of runs: [offset uint16][length uint16][length bytes]. Offsets
// and lengths are byte-granular but always word-aligned because the scan
// compares 8-byte words, matching classic multiple-writer DSM protocols:
// two nodes writing disjoint words of the same page produce disjoint diffs
// that merge cleanly at the home.
//
// This wire format is shared verbatim by the aggregated protocol: a
// kindApplyDiffBatch message (aggregate.go) is just a count-prefixed
// sequence of [page][diff-blob] entries, each blob exactly the encoding
// below, so the home applies batched and singleton diffs with the same
// applyDiff and batching can never change what lands in a frame.

const diffRunHeader = 4 // uint16 offset + uint16 length

// maxDiffBytes is the worst-case encoded diff size: a single run covering
// the whole page (one header plus PageSize bytes). Any other run layout is
// smaller — k runs need k-1 unchanged gap words, so header growth is more
// than offset by payload shrinkage.
const maxDiffBytes = diffRunHeader + memsim.PageSize

// Twin pages and diff scratch buffers are the protocol's hot allocations:
// one twin per written page per interval, one diff per flush. Both are
// strictly node-local and dead by the time they are released (Enc.Blob
// copies the diff into the message; the twin is discarded after the scan),
// so they recycle through pools.
// Both pools store array pointers, not slices: Put-ting a []byte boxes
// its header into an interface and allocates — see pagePool (pool.go).
var twinPool = sync.Pool{
	New: func() any { return new([memsim.PageSize]byte) },
}

var diffPool = sync.Pool{
	New: func() any { return new([maxDiffBytes]byte) },
}

func getTwin() []byte { return twinPool.Get().(*[memsim.PageSize]byte)[:] }

func putTwin(b []byte) {
	if cap(b) >= memsim.PageSize {
		twinPool.Put((*[memsim.PageSize]byte)(b[:memsim.PageSize]))
	}
}

// putDiff recycles a buildDiff result. Safe on the nil empty-diff return.
func putDiff(b []byte) {
	if cap(b) == maxDiffBytes {
		diffPool.Put((*[maxDiffBytes]byte)(b[:maxDiffBytes]))
	}
}

// buildDiff scans data against twin and returns the encoded diff. A nil
// return means the page is unchanged. Non-nil results come from diffPool;
// callers on the protocol path hand them back via putDiff once encoded.
func buildDiff(data, twin []byte) []byte {
	if len(data) != memsim.PageSize || len(twin) != memsim.PageSize {
		panic(fmt.Sprintf("swdsm: buildDiff on short buffers %d/%d", len(data), len(twin)))
	}
	buf := diffPool.Get().(*[maxDiffBytes]byte)
	out := buf[:0]
	const w = memsim.WordSize
	runStart := -1
	for off := 0; off <= memsim.PageSize; off += w {
		differs := false
		if off < memsim.PageSize {
			differs = binary.LittleEndian.Uint64(data[off:]) != binary.LittleEndian.Uint64(twin[off:])
		}
		switch {
		case differs && runStart < 0:
			runStart = off
		case !differs && runStart >= 0:
			runLen := off - runStart
			out = binary.LittleEndian.AppendUint16(out, uint16(runStart))
			out = binary.LittleEndian.AppendUint16(out, uint16(runLen))
			out = append(out, data[runStart:runStart+runLen]...)
			runStart = -1
		}
	}
	if len(out) == 0 {
		diffPool.Put(buf)
		return nil
	}
	return out
}

// applyDiff patches a home frame with an encoded diff.
func applyDiff(frame, diff []byte) error {
	for i := 0; i < len(diff); {
		if len(diff)-i < diffRunHeader {
			return fmt.Errorf("swdsm: truncated diff header at %d", i)
		}
		off := int(binary.LittleEndian.Uint16(diff[i:]))
		n := int(binary.LittleEndian.Uint16(diff[i+2:]))
		i += diffRunHeader
		if n == 0 || off+n > memsim.PageSize || len(diff)-i < n {
			return fmt.Errorf("swdsm: bad diff run off=%d len=%d", off, n)
		}
		copy(frame[off:off+n], diff[i:i+n])
		i += n
	}
	return nil
}

// BuildDiff is the exported form of buildDiff for the checkpoint
// subsystem's incremental capture: it returns a caller-owned copy (nil
// when data and shadow are identical) instead of a pooled buffer, so the
// result can be retained in a snapshot.
func BuildDiff(data, shadow []byte) []byte {
	d := buildDiff(data, shadow)
	if d == nil {
		return nil
	}
	out := append([]byte(nil), d...)
	putDiff(d)
	return out
}

// ApplyDiff is the exported form of applyDiff: it patches frame with an
// encoded diff (checkpoint materialization replaying incremental epochs
// onto a full snapshot).
func ApplyDiff(frame, diff []byte) error { return applyDiff(frame, diff) }

// encodeNotices serializes a write-notice page list.
func encodeNotices(pages []memsim.PageID) []byte {
	out := make([]byte, 0, 4+8*len(pages))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(pages)))
	for _, p := range pages {
		out = binary.LittleEndian.AppendUint64(out, uint64(p))
	}
	return out
}

// decodeNotices parses a write-notice page list, validating the payload
// length against the declared count so a truncated or corrupt message
// surfaces as an error instead of an index panic.
func decodeNotices(b []byte) ([]memsim.PageID, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("swdsm: notice list too short: %d bytes", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if want := 4 + 8*n; len(b) < want {
		return nil, fmt.Errorf("swdsm: truncated notice list: %d pages need %d bytes, have %d",
			n, want, len(b))
	}
	out := make([]memsim.PageID, n)
	for i := 0; i < n; i++ {
		out[i] = memsim.PageID(binary.LittleEndian.Uint64(b[4+8*i:]))
	}
	return out, nil
}
