package swdsm

import (
	"encoding/binary"
	"fmt"

	"hamster/internal/memsim"
)

// A diff encodes the words of a page that changed relative to its twin, as
// a sequence of runs: [offset uint16][length uint16][length bytes]. Offsets
// and lengths are byte-granular but always word-aligned because the scan
// compares 8-byte words, matching classic multiple-writer DSM protocols:
// two nodes writing disjoint words of the same page produce disjoint diffs
// that merge cleanly at the home.

const diffRunHeader = 4 // uint16 offset + uint16 length

// buildDiff scans data against twin and returns the encoded diff. A nil
// return means the page is unchanged.
func buildDiff(data, twin []byte) []byte {
	if len(data) != memsim.PageSize || len(twin) != memsim.PageSize {
		panic(fmt.Sprintf("swdsm: buildDiff on short buffers %d/%d", len(data), len(twin)))
	}
	var out []byte
	const w = memsim.WordSize
	runStart := -1
	for off := 0; off <= memsim.PageSize; off += w {
		differs := false
		if off < memsim.PageSize {
			differs = binary.LittleEndian.Uint64(data[off:]) != binary.LittleEndian.Uint64(twin[off:])
		}
		switch {
		case differs && runStart < 0:
			runStart = off
		case !differs && runStart >= 0:
			runLen := off - runStart
			out = binary.LittleEndian.AppendUint16(out, uint16(runStart))
			out = binary.LittleEndian.AppendUint16(out, uint16(runLen))
			out = append(out, data[runStart:runStart+runLen]...)
			runStart = -1
		}
	}
	return out
}

// applyDiff patches a home frame with an encoded diff.
func applyDiff(frame, diff []byte) error {
	for i := 0; i < len(diff); {
		if len(diff)-i < diffRunHeader {
			return fmt.Errorf("swdsm: truncated diff header at %d", i)
		}
		off := int(binary.LittleEndian.Uint16(diff[i:]))
		n := int(binary.LittleEndian.Uint16(diff[i+2:]))
		i += diffRunHeader
		if n == 0 || off+n > memsim.PageSize || len(diff)-i < n {
			return fmt.Errorf("swdsm: bad diff run off=%d len=%d", off, n)
		}
		copy(frame[off:off+n], diff[i:i+n])
		i += n
	}
	return nil
}

// encodeNotices serializes a write-notice page list.
func encodeNotices(pages []memsim.PageID) []byte {
	out := make([]byte, 0, 4+8*len(pages))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(pages)))
	for _, p := range pages {
		out = binary.LittleEndian.AppendUint64(out, uint64(p))
	}
	return out
}

// decodeNotices parses a write-notice page list.
func decodeNotices(b []byte) []memsim.PageID {
	n := int(binary.LittleEndian.Uint32(b))
	out := make([]memsim.PageID, n)
	for i := 0; i < n; i++ {
		out[i] = memsim.PageID(binary.LittleEndian.Uint64(b[4+8*i:]))
	}
	return out
}
