package serve

import (
	"fmt"

	"hamster"
	"hamster/internal/apps"
	"hamster/internal/loadgen"
	"hamster/internal/platform"
	"hamster/internal/simnet"
)

// Report is the aggregate outcome of one serve run. Every field is a
// deterministic function of the configuration and seed: the latency
// quantiles come from the merged per-consumer histograms, the busy
// horizon from the queue model, and the checksum from the store pages —
// none of them depend on goroutine scheduling, which is what lets the
// campaign pin these values byte-for-byte.
type Report struct {
	Cfg     Config
	Nodes   int
	PerNode []NodeResult

	Checksum uint64
	Routed   uint64
	Applied  uint64
	Stalled  uint64
	// Sessions is how many distinct client sessions issued traffic.
	Sessions uint64

	// OfferedPerSec is the configured open-loop arrival rate;
	// AchievedPerSec is applied ops over the busy horizon. They diverge
	// when a hot node's backlog outgrows the arrival horizon.
	OfferedPerSec  float64
	AchievedPerSec float64

	MeanNs uint64
	P50Ns  uint64
	P95Ns  uint64
	P99Ns  uint64

	// HorizonNs is the arrival horizon (windows × width); MaxBusyNs the
	// latest modeled completion across consumers.
	HorizonNs uint64
	MaxBusyNs uint64

	// Recoveries counts crash recoveries (recoverable runs only).
	Recoveries int
}

// buildReport aggregates and cross-checks per-node results: every node
// must have computed the identical global checksum and totals, and in
// routed mode every routed op must have been applied.
func buildReport(cfg Config, rows []NodeResult) (*Report, error) {
	r := &Report{Cfg: cfg, Nodes: len(rows), PerNode: rows}
	var hist loadgen.Hist
	for i := range rows {
		nr := &rows[i]
		if nr.Checksum != rows[0].Checksum {
			return nil, fmt.Errorf("serve: node %d checksum %#x disagrees with node 0's %#x",
				nr.Node, nr.Checksum, rows[0].Checksum)
		}
		if nr.TotalApplied != rows[0].TotalApplied || nr.TotalRouted != rows[0].TotalRouted {
			return nil, fmt.Errorf("serve: node %d global totals disagree with node 0's", nr.Node)
		}
		hist.Merge(&nr.Hist)
		if nr.BusyNs > r.MaxBusyNs {
			r.MaxBusyNs = nr.BusyNs
		}
	}
	r.Checksum = rows[0].Checksum
	r.Routed = rows[0].TotalRouted
	r.Applied = rows[0].TotalApplied
	r.Stalled = rows[0].TotalStalled
	r.Sessions = rows[0].TotalSessions
	if !cfg.Direct && r.Applied != r.Routed {
		return nil, fmt.Errorf("serve: %d ops routed but %d applied — fabric lost or duplicated work",
			r.Routed, r.Applied)
	}
	r.MeanNs = hist.Mean()
	r.P50Ns = hist.Quantile(0.50)
	r.P95Ns = hist.Quantile(0.95)
	r.P99Ns = hist.Quantile(0.99)
	if !cfg.Direct {
		r.HorizonNs = uint64(cfg.Windows) * cfg.WindowNs
		r.OfferedPerSec = float64(cfg.producers(len(rows))) / cfg.MeanGapNs * 1e9
		denom := r.HorizonNs
		if r.MaxBusyNs > denom {
			denom = r.MaxBusyNs
		}
		if denom > 0 {
			r.AchievedPerSec = float64(r.Applied) / float64(denom) * 1e9
		}
	}
	return r, nil
}

// RunOnSubstrate executes the workload directly on a bare substrate —
// any platform.Substrate, including the bare consistency-engine
// clusters the campaigns build.
func RunOnSubstrate(cfg Config, sub platform.Substrate) (*Report, error) {
	cfg = cfg.WithDefaults(sub.Nodes())
	if err := cfg.Validate(sub.Nodes()); err != nil {
		return nil, err
	}
	rows := make([]NodeResult, sub.Nodes())
	apps.RunOnSubstrate(sub, Kernel(cfg, rows))
	return buildReport(cfg, rows)
}

// RunOnRuntime executes the workload through the HAMSTER core services.
// The monitor gains per-shard serve sections (Monitor.Report), and the
// runtime's checkpoint service — when configured — captures the
// fabric's round-boundary state.
func RunOnRuntime(cfg Config, rt *hamster.Runtime) (*Report, error) {
	cfg = cfg.WithDefaults(rt.Nodes())
	if err := cfg.Validate(rt.Nodes()); err != nil {
		return nil, err
	}
	rows := make([]NodeResult, rt.Nodes())
	apps.RunOnEnv(rt, Kernel(cfg, rows))
	return buildReport(cfg, rows)
}

// RunRecoverable executes the workload through the core services under
// a fault plan, recovering planned mid-traffic crashes through the
// cluster orchestrator. The returned report's checksum must equal a
// fault-free run's — the fabric re-executes interrupted rounds from
// round-boundary checkpoints with commutative applies, so recovery
// shifts timing, never results.
func RunRecoverable(cfg Config, hcfg hamster.Config, plan simnet.FaultPlan) (*Report, int, error) {
	cfg = cfg.WithDefaults(hcfg.Nodes)
	if err := cfg.Validate(hcfg.Nodes); err != nil {
		return nil, 0, err
	}
	rows := make([]NodeResult, hcfg.Nodes)
	_, rt, recoveries, err := apps.RunRecoverable(hcfg, plan, Kernel(cfg, rows))
	if err != nil {
		return nil, recoveries, err
	}
	defer rt.Close()
	rep, err := buildReport(cfg, rows)
	if err != nil {
		return nil, recoveries, err
	}
	rep.Recoveries = recoveries
	return rep, recoveries, nil
}
