// Package serve is the server-shaped workload family (ROADMAP item 3):
// a sharded key-value store, a producer-consumer event pipeline, and a
// multi-client sync/replication scenario — all laid out on DSM pages and
// driven by a deterministic open-loop load generator (internal/loadgen)
// that multiplexes millions of lightweight simulated client sessions
// onto the node goroutines.
//
// Unlike the HPC kernels in internal/apps, these workloads stress locks,
// contention, skew, churn, and crash recovery under load. They are
// written against the same apps.Machine interface, so the identical
// workload code runs on every substrate (smp/hybriddsm/swdsm/ivy) and
// consistency engine, bare or through the HAMSTER core services — the
// paper's portability claim under serving traffic instead of SOR sweeps.
//
// # Execution model
//
// A run is a sequence of rounds, each three barrier-separated phases:
//
//	route:  producers drain their Poisson arrival streams up to the
//	        round's window end, pick keys by Zipfian popularity, and
//	        write the ops into bounded SPSC ring buffers in shared
//	        memory (one ring per producer/consumer pair, pages homed at
//	        the consumer). Full rings exert backpressure: overflow ops
//	        carry over to the next round and are counted as stalls.
//	        The route phase also drains the previous round's dirty-
//	        shard latches (one lock acquire/release per dirtied shard
//	        through the ordinary lock/hsync tier — the batch-latching
//	        discipline of a real shard server).
//	ingest: consumers read the producers' publication cursors, fetch
//	        the new ring slots, and merge all producers' ops into one
//	        queue ordered by (arrival time, producer) — a total order,
//	        since each producer's arrivals strictly increase.
//	apply:  consumers execute the merged ops against their own shard
//	        pages. Every page touched here is home-local by layout, so
//	        the phase is communication-free on every substrate; the
//	        per-op service times measured inside it are bit-identical
//	        across schedules, which is what makes the latency
//	        histograms a regression instrument.
//
// Per-op latency uses a single-server queue model per consumer:
// start = max(queue-free time, arrival + routing hop), done = start +
// measured virtual service time; latency = done − arrival. Offered load
// comes from the configured arrival rate; achieved load is applied ops
// over the busy horizon — the two diverge exactly when skew saturates a
// hot shard's home node.
//
// # Determinism
//
// Every draw comes from seeded SplitMix64 streams; arrivals, keys, and
// session ids are pure functions of (seed, node, draw index). Apply
// order is a deterministic merge; service times are measured in a
// communication-free phase; the final checksum folds shard pages and
// the loser digest with order-independent (commutative) update rules,
// so it is identical across substrates, engines, schedules, and
// crash/recovery — the conformance and fault tests assert exactly that.
package serve

import (
	"fmt"

	"hamster/internal/apps"
	"hamster/internal/memsim"
	"hamster/internal/perfmon"
)

// Workload names.
const (
	// WorkloadKV is the sharded key-value store: every node produces
	// and consumes; ops are Get (50%), Put (40%), Scan (10%).
	WorkloadKV = "kv"
	// WorkloadPipeline is the event pipeline: the first half of the
	// nodes produce, the rest consume; every op is a published event.
	WorkloadPipeline = "pipeline"
	// WorkloadSyncLog is the multi-client sync engine: sessions push
	// (60%) and pull (40%) entity versions; pushes merge last-write-
	// wins by (timestamp, session) with losing versions preserved in a
	// bounded loser ring and a commutative loser digest.
	WorkloadSyncLog = "synclog"
)

// Workloads lists the valid Workload values.
var Workloads = []string{WorkloadKV, WorkloadPipeline, WorkloadSyncLog}

// Fixed layout parameters. A shard is exactly one page: 128 slots of 4
// words (key-slot identity is positional). Ring slots are 4 words too.
const (
	slotWords = 4
	// SlotsPerShard is how many key slots one shard page holds.
	SlotsPerShard = memsim.PageSize / (8 * slotWords)
	ringSlotBytes = 8 * slotWords

	// routeFlops/applyFlops model the CPU cost of parsing a request and
	// executing it against the store.
	routeFlops = 32
	applyFlops = 64
	// pipeHopNs is the modeled routing hop between a client's arrival
	// and the earliest moment its op can start service.
	pipeHopNs = 2000
)

// Op kinds, carried in ring slots and perfmon spans.
const (
	OpGet = iota
	OpPut
	OpScan
	OpPush
	OpPull
	OpEvent
)

// scanSlots is how many consecutive slots a Scan reads.
const scanSlots = 8

// Config parameterizes one serve run. The zero value is not runnable;
// use WithDefaults to fill unset fields for a given node count.
type Config struct {
	// Workload is one of Workloads.
	Workload string
	// Sessions is the simulated client-session population, spread
	// evenly over the producer nodes. Session ids attach to ops; the
	// run reports how many distinct sessions issued traffic.
	Sessions uint64
	// Windows is how many arrival windows producers generate traffic
	// for; draining backpressure carryover may add a few extra rounds.
	Windows int
	// WindowNs is the width of one arrival window in virtual ns.
	WindowNs uint64
	// MeanGapNs is the mean inter-arrival gap of one producer node's
	// merged session stream (open-loop offered load = producers/gap).
	MeanGapNs float64
	// ZipfSkew shapes key popularity: 0 = uniform, ~0.99 = the
	// standard serving-benchmark hot-key skew.
	ZipfSkew float64
	// Seed feeds every generator stream.
	Seed uint64
	// ShardsPerNode sets the shard count (total = per-node × nodes).
	// 0 = auto: min(8, LockTableSize/nodes), so every shard has a
	// private latch in the lock table.
	ShardsPerNode int
	// RingSlots bounds each producer→consumer ring (multiple of 128 so
	// rings are whole pages). 0 = 256.
	RingSlots int
	// Direct switches to direct mode: no routing fabric — every node
	// applies locked increments straight to the shards under per-shard
	// locks. Real lock contention, order-independent checksums, no
	// latency model; this is the conformance and lock-stress mode.
	Direct bool
	// DirectOps is the per-node op count in direct mode.
	DirectOps int
	// Recorder, when non-nil and enabled, receives one EvServeOp span
	// per applied op (modeled start/duration, shard, kind).
	Recorder *perfmon.Recorder
}

// WithDefaults returns the config with unset sizing fields filled for a
// cluster of n nodes.
func (c Config) WithDefaults(n int) Config {
	if c.Workload == "" {
		c.Workload = WorkloadKV
	}
	if c.ShardsPerNode == 0 {
		c.ShardsPerNode = apps.LockTableSize / n
		if c.ShardsPerNode > 8 {
			c.ShardsPerNode = 8
		}
		if c.ShardsPerNode < 1 {
			c.ShardsPerNode = 1
		}
	}
	if c.RingSlots == 0 {
		c.RingSlots = 256
	}
	if c.Windows == 0 {
		c.Windows = 24
	}
	if c.WindowNs == 0 {
		c.WindowNs = 500_000
	}
	if c.MeanGapNs == 0 {
		c.MeanGapNs = 4000
	}
	if c.Sessions == 0 {
		c.Sessions = 100_000
	}
	if c.DirectOps == 0 {
		c.DirectOps = 2000
	}
	return c
}

// Validate rejects configurations the fabric cannot run on n nodes,
// with messages precise enough to act on.
func (c Config) Validate(n int) error {
	ok := false
	for _, w := range Workloads {
		if c.Workload == w {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("serve: unknown workload %q (want one of %v)", c.Workload, Workloads)
	}
	if n < 2 {
		return fmt.Errorf("serve: need at least 2 nodes, have %d", n)
	}
	if c.ShardsPerNode < 1 {
		return fmt.Errorf("serve: ShardsPerNode must be >= 1, have %d", c.ShardsPerNode)
	}
	if c.ShardsPerNode*n > apps.LockTableSize {
		return fmt.Errorf("serve: %d shards (%d/node × %d nodes) exceed the %d-entry lock table — every shard needs a private latch",
			c.ShardsPerNode*n, c.ShardsPerNode, n, apps.LockTableSize)
	}
	if c.ZipfSkew < 0 {
		return fmt.Errorf("serve: ZipfSkew must be >= 0, have %v", c.ZipfSkew)
	}
	if c.Direct {
		if c.DirectOps < 1 {
			return fmt.Errorf("serve: DirectOps must be >= 1 in direct mode, have %d", c.DirectOps)
		}
		return nil
	}
	if c.RingSlots < 128 || c.RingSlots%128 != 0 {
		return fmt.Errorf("serve: RingSlots must be a positive multiple of 128 (whole ring pages), have %d", c.RingSlots)
	}
	if c.Windows < 1 {
		return fmt.Errorf("serve: Windows must be >= 1, have %d", c.Windows)
	}
	if c.WindowNs < 1 {
		return fmt.Errorf("serve: WindowNs must be >= 1, have %d", c.WindowNs)
	}
	if c.MeanGapNs <= 0 {
		return fmt.Errorf("serve: MeanGapNs must be > 0, have %v", c.MeanGapNs)
	}
	if c.Sessions < 1 {
		return fmt.Errorf("serve: Sessions must be >= 1, have %d", c.Sessions)
	}
	if c.Workload == WorkloadPipeline && n < 2 {
		return fmt.Errorf("serve: pipeline needs at least one producer and one consumer")
	}
	return nil
}

// producers returns how many nodes generate traffic: all of them,
// except in the pipeline workload where the first half produce and the
// rest consume.
func (c Config) producers(n int) int {
	if c.Workload == WorkloadPipeline {
		return (n + 1) / 2
	}
	return n
}

// layout is the shared-memory map of a run. All regions use Block
// placement with page counts exactly divisible by the node count, so
// the home assignment is the closed form the fabric relies on:
//
//	kv     shards pages, one shard per page; shard s homed at
//	       s/ShardsPerNode — the consumer that applies its ops.
//	ring   N×N rings of RingSlots×4 words, consumer-major, so the
//	       pages of ring (p→c) are homed at consumer c.
//	wcur   one page per producer: words[0..N-1] cumulative ops written
//	       per consumer, word[N] the backpressure carryover count.
//	acur   one page per consumer: words[0..N-1] cumulative ops
//	       consumed per producer.
//	stat   one page per node for the final checksum/total exchange.
//	loser  (synclog) one page per node: a bounded ring of displaced
//	       losing versions.
type layout struct {
	nodes     int
	prods     int
	shards    int
	keys      int
	ringSlots int
	ringBytes uint64

	kv    memsim.Addr
	ring  memsim.Addr
	wcur  memsim.Addr
	acur  memsim.Addr
	stat  memsim.Addr
	loser memsim.Addr

	// routable maps a key's shard index (key % nRoutable) to a global
	// shard id. In kv/synclog every shard is routable; in pipeline only
	// consumer-homed shards receive traffic.
	routable []int
	// keyStride scatters Zipf ranks across the key space (coprime with
	// keys), so the popularity ladder does not walk one shard.
	keyStride uint64
}

func buildLayout(c Config, n int) *layout {
	l := &layout{
		nodes:     n,
		prods:     c.producers(n),
		shards:    c.ShardsPerNode * n,
		ringSlots: c.RingSlots,
		ringBytes: uint64(c.RingSlots * ringSlotBytes),
	}
	for s := 0; s < l.shards; s++ {
		if c.Workload != WorkloadPipeline || l.shardHome(s, c) >= l.prods {
			l.routable = append(l.routable, s)
		}
	}
	l.keys = len(l.routable) * SlotsPerShard
	l.keyStride = uint64(float64(l.keys)*0.6180339887) | 1
	for gcd(l.keyStride, uint64(l.keys)) != 1 {
		l.keyStride += 2
	}
	return l
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// shardHome is the node that homes (and applies) shard s.
func (l *layout) shardHome(s int, c Config) int { return s / c.ShardsPerNode }

// keyFor scatters a popularity rank into the key space.
func (l *layout) keyFor(rank int) uint64 {
	return (uint64(rank) * l.keyStride) % uint64(l.keys)
}

// shardOf returns the shard and slot a key lives in.
func (l *layout) shardOf(key uint64) (shard, slot int) {
	nr := uint64(len(l.routable))
	return l.routable[key%nr], int(key / nr)
}

// Address helpers.
func (l *layout) slotAddr(shard, slot int) memsim.Addr {
	return l.kv + memsim.Addr(shard)*memsim.PageSize + memsim.Addr(slot*slotWords*8)
}

func (l *layout) ringSlot(p, c, idx int) memsim.Addr {
	return l.ring + memsim.Addr((uint64(c*l.nodes+p)*uint64(l.ringSlots)+uint64(idx))*ringSlotBytes)
}

func (l *layout) wcurAddr(p int) memsim.Addr  { return l.wcur + memsim.Addr(p)*memsim.PageSize }
func (l *layout) acurAddr(c int) memsim.Addr  { return l.acur + memsim.Addr(c)*memsim.PageSize }
func (l *layout) statAddr(id int) memsim.Addr { return l.stat + memsim.Addr(id)*memsim.PageSize }
func (l *layout) loserAddr(id int) memsim.Addr {
	return l.loser + memsim.Addr(id)*memsim.PageSize
}

// loserSlots is how many displaced versions one node's loser ring keeps.
const loserSlots = memsim.PageSize / (8 * slotWords)

// op is one client request in flight through the fabric.
type op struct {
	key     uint64
	kind    int64
	arrival uint64
	session uint64
}
