package serve

import (
	"encoding/binary"
	"fmt"
)

// The checkpoint blob is a committed round-boundary snapshot of one
// node's generator and fabric state. commit() runs at registration,
// after warmup, and at the end of every apply phase — never mid-phase —
// so whatever barrier a checkpoint seals at, the blob describes the
// start of the round in progress. The route and ingest phases are
// idempotent re-executions from that boundary (the streams re-draw the
// identical arrivals, cursor writes are absolute, slot writes are
// positional), which is the whole recovery argument.

func putU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

type blobReader struct {
	b   []byte
	bad bool
}

func (r *blobReader) u64() uint64 {
	if len(r.b) < 8 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

// commit serializes the live round-boundary state into st.blob. Skipped
// entirely when no checkpoint service captured the registration — bare
// substrate runs pay nothing.
func (st *nodeState) commit() {
	if !st.ckpt {
		return
	}
	b := make([]byte, 0, 64+8*(4*st.n+st.n*st.n+2*st.l.shards+len(st.sessBits))+st.pendBytes())
	b = putU64(b, uint64(st.round))
	var inited uint64
	if st.inited {
		inited = 1
	}
	b = putU64(b, inited)
	as, an := st.arr.State()
	b = putU64(b, as)
	b = putU64(b, an)
	b = putU64(b, st.dec.State())
	for _, v := range st.written {
		b = putU64(b, v)
	}
	for _, v := range st.consumed {
		b = putU64(b, v)
	}
	for _, v := range st.pmirror {
		b = putU64(b, v)
	}
	for _, row := range st.wmirror {
		for _, v := range row {
			b = putU64(b, v)
		}
	}
	for _, q := range st.pendq {
		b = putU64(b, uint64(len(q)))
		for _, o := range q {
			b = putU64(b, o.key)
			b = putU64(b, uint64(o.kind))
			b = putU64(b, o.arrival)
			b = putU64(b, o.session)
		}
	}
	b = putU64(b, st.routed)
	b = putU64(b, st.applied)
	b = putU64(b, st.stalled)
	for _, v := range st.sessBits {
		b = putU64(b, v)
	}
	b = st.hist.Encode(b)
	b = putU64(b, st.nextFree)
	b = putU64(b, st.opDigest)
	b = putU64(b, st.loserDigest)
	b = putU64(b, st.loserCur)
	b = putU64(b, st.lockWaitNs)
	for _, v := range st.shardOps {
		b = putU64(b, v)
	}
	for _, v := range st.shardSvcNs {
		b = putU64(b, v)
	}
	var sweep uint64 // shards <= LockTableSize, so one word of flags
	for s, d := range st.sweep {
		if d {
			sweep |= 1 << uint(s)
		}
	}
	b = putU64(b, sweep)
	st.blob = b
}

func (st *nodeState) pendBytes() int {
	total := 8 * st.n
	for _, q := range st.pendq {
		total += 32 * len(q)
	}
	return total
}

// restore rebuilds the live state from a sealed blob.
func (st *nodeState) restore(b []byte) {
	r := &blobReader{b: b}
	st.round = int64(r.u64())
	st.inited = r.u64() != 0
	as := r.u64()
	an := r.u64()
	st.arr.SetState(as, an)
	st.dec.SetState(r.u64())
	for i := range st.written {
		st.written[i] = r.u64()
	}
	for i := range st.consumed {
		st.consumed[i] = r.u64()
	}
	for i := range st.pmirror {
		st.pmirror[i] = r.u64()
	}
	for i := range st.wmirror {
		for j := range st.wmirror[i] {
			st.wmirror[i][j] = r.u64()
		}
	}
	for c := range st.pendq {
		count := int(r.u64())
		st.pendq[c] = st.pendq[c][:0]
		for k := 0; k < count && !r.bad; k++ {
			st.pendq[c] = append(st.pendq[c], op{
				key:     r.u64(),
				kind:    int64(r.u64()),
				arrival: r.u64(),
				session: r.u64(),
			})
		}
	}
	st.routed = r.u64()
	st.applied = r.u64()
	st.stalled = r.u64()
	for i := range st.sessBits {
		st.sessBits[i] = r.u64()
	}
	rest, ok := st.hist.Decode(r.b)
	if !ok {
		r.bad = true
	}
	r.b = rest
	st.nextFree = r.u64()
	st.opDigest = r.u64()
	st.loserDigest = r.u64()
	st.loserCur = r.u64()
	st.lockWaitNs = r.u64()
	for i := range st.shardOps {
		st.shardOps[i] = r.u64()
	}
	for i := range st.shardSvcNs {
		st.shardSvcNs[i] = r.u64()
	}
	sweep := r.u64()
	for s := range st.sweep {
		st.sweep[s] = sweep&(1<<uint(s)) != 0
	}
	if r.bad {
		panic(fmt.Sprintf("serve: node %d: corrupt checkpoint blob (%d bytes)", st.id, len(b)))
	}
	st.blob = b
}
