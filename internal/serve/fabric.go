package serve

import (
	"fmt"
	"math/bits"
	"sort"

	"hamster/internal/apps"
	"hamster/internal/loadgen"
	"hamster/internal/memsim"
	"hamster/internal/perfmon"
	"hamster/internal/vclock"
)

// qop is an op tagged with its producer for the deterministic merge.
type qop struct {
	op
	prod int
}

// nodeState is one node's view of a run. Everything here is touched
// only by the owning node's goroutine.
type nodeState struct {
	cfg Config
	m   apps.Machine
	l   *layout
	id  int
	n   int

	isProd bool
	isCons bool

	perNodeSessions uint64
	sessBase        uint64

	arr  *loadgen.Arrivals
	dec  loadgen.Stream
	zipf *loadgen.Zipf

	// Round-boundary state (captured by the checkpoint blob).
	round    int64
	inited   bool
	pendq    [][]op     // per-consumer backpressure carryover
	written  []uint64   // self as producer: cumulative pushes per consumer
	consumed []uint64   // self as consumer: cumulative pops per producer
	wmirror  [][]uint64 // wcur mirror from the last ingest phase
	pmirror  []uint64   // carryover counts from the last ingest phase

	routed, applied, stalled uint64
	sessBits                 []uint64
	hist                     loadgen.Hist
	nextFree                 uint64
	opDigest                 uint64
	loserDigest              uint64
	loserCur                 uint64
	shardOps                 []uint64
	shardSvcNs               []uint64
	lockWaitNs               uint64
	sweep                    []bool // shards dirtied by the last apply phase

	// Transient (rebuilt every round, never checkpointed).
	acked   []uint64 // acur mirror for self, refreshed each route phase
	queue   []qop
	ringBuf []int64
	ioBuf   []int64
	ckpt    bool   // a checkpoint service captured our blob
	blob    []byte // committed round-boundary snapshot
	t0      vclock.Time
}

func newNodeState(cfg Config, m apps.Machine) *nodeState {
	n := m.N()
	l := buildLayout(cfg, n)
	st := &nodeState{
		cfg: cfg, m: m, l: l, id: m.ID(), n: n,
		isProd: m.ID() < l.prods,
		isCons: cfg.Workload != WorkloadPipeline || m.ID() >= l.prods,
	}
	st.perNodeSessions = (cfg.Sessions + uint64(l.prods) - 1) / uint64(l.prods)
	if st.perNodeSessions == 0 {
		st.perNodeSessions = 1
	}
	st.sessBase = uint64(st.id) * st.perNodeSessions
	st.arr = loadgen.NewArrivals(cfg.Seed^loadgen.Mix64(uint64(st.id)*2+1), cfg.MeanGapNs)
	st.dec = *loadgen.NewStream(cfg.Seed ^ loadgen.Mix64(uint64(st.id)*2+2))
	st.zipf = loadgen.NewZipf(l.keys, cfg.ZipfSkew)
	st.pendq = make([][]op, n)
	st.written = make([]uint64, n)
	st.consumed = make([]uint64, n)
	st.wmirror = make([][]uint64, n)
	for i := range st.wmirror {
		st.wmirror[i] = make([]uint64, n)
	}
	st.pmirror = make([]uint64, n)
	st.sessBits = make([]uint64, (st.perNodeSessions+63)/64)
	st.shardOps = make([]uint64, l.shards)
	st.shardSvcNs = make([]uint64, l.shards)
	st.sweep = make([]bool, l.shards)
	st.acked = make([]uint64, n)
	st.ringBuf = make([]int64, cfg.RingSlots*slotWords)
	st.ioBuf = make([]int64, n+1)
	return st
}

// allocRegions performs the collective allocations in a fixed order.
// All region page counts divide evenly by the node count, so Block
// placement realizes exactly the homes the layout arithmetic assumes.
func (st *nodeState) allocRegions() {
	l, m := st.l, st.m
	l.kv = m.Alloc(uint64(l.shards)*memsim.PageSize, "serve.kv", memsim.Block)
	if !st.cfg.Direct {
		l.ring = m.Alloc(uint64(st.n*st.n)*l.ringBytes, "serve.ring", memsim.Block)
		l.wcur = m.Alloc(uint64(st.n)*memsim.PageSize, "serve.wcur", memsim.Block)
		l.acur = m.Alloc(uint64(st.n)*memsim.PageSize, "serve.acur", memsim.Block)
	}
	l.stat = m.Alloc(uint64(st.n)*memsim.PageSize, "serve.stat", memsim.Block)
	if st.cfg.Workload == WorkloadSyncLog {
		l.loser = m.Alloc(uint64(st.n)*memsim.PageSize, "serve.loser", memsim.Block)
	}
}

// register wires the round-boundary blob into the machine's checkpoint
// service when it has one. The blob is committed only at round
// boundaries; a seal at a mid-round barrier therefore restores to the
// round's start, and the route/ingest phases are idempotent
// re-executions (absolute cumulative cursors, positional slot writes),
// so resuming from any barrier replays without losing or doubling ops.
func (st *nodeState) register() {
	if c, ok := st.m.(apps.Checkpointer); ok {
		st.ckpt = c.RegisterCheckpointable("serve.state",
			func() []byte { return st.blob },
			st.restore)
	}
	st.commit()
}

// warmup claims every page this node homes with one write, so that
// ownership-migrating engines (ivy) settle into the steady layout
// before measurement, and first-fault costs land outside the loop.
func (st *nodeState) warmup() {
	if !st.inited {
		l, m := st.l, st.m
		for s := 0; s < l.shards; s++ {
			if l.shardHome(s, st.cfg) == st.id {
				m.WriteI64(l.kv+memsim.Addr(s)*memsim.PageSize, 0)
			}
		}
		if !st.cfg.Direct {
			ringPages := int(l.ringBytes / memsim.PageSize)
			for p := 0; p < st.n; p++ {
				base := l.ring + memsim.Addr(uint64(st.id*st.n+p)*l.ringBytes)
				for pg := 0; pg < ringPages; pg++ {
					m.WriteI64(base+memsim.Addr(pg)*memsim.PageSize, 0)
				}
			}
			m.WriteI64(l.wcurAddr(st.id), 0)
			m.WriteI64(l.acurAddr(st.id), 0)
		}
		m.WriteI64(l.statAddr(st.id), 0)
		if st.cfg.Workload == WorkloadSyncLog {
			m.WriteI64(l.loserAddr(st.id), 0)
		}
		st.inited = true
		st.commit()
	}
	st.m.Barrier()
}

// runFabric executes the routed workload: rounds of route/ingest/apply
// until every generated op has been consumed and applied.
func (st *nodeState) runFabric() NodeResult {
	maxRounds := int64(st.cfg.Windows)*4 + 64
	for {
		if st.round > maxRounds {
			panic(fmt.Sprintf("serve: node %d still draining after %d rounds (windows=%d) — fabric stuck",
				st.id, st.round, st.cfg.Windows))
		}
		if st.phaseRoute() {
			break
		}
		st.m.Barrier()
		st.phaseIngest()
		st.m.Barrier()
		st.phaseApply()
		st.m.Barrier()
	}
	return st.finish()
}

// phaseRoute is phase A: termination check, dirty-shard latch sweep,
// arrival generation, and ring publication. Returns true when the run
// is complete (all nodes agree — the predicate reads only barrier-
// published shared state).
func (st *nodeState) phaseRoute() bool {
	l, m, n := st.l, st.m, st.n
	// Refresh consumption cursors: acur rows feed both the producers'
	// backpressure capacity and the global termination predicate.
	abuf := st.ioBuf[:l.prods]
	var consumedTotal uint64
	for c := 0; c < n; c++ {
		m.ReadI64Block(l.acurAddr(c), abuf)
		for p := 0; p < l.prods; p++ {
			consumedTotal += uint64(abuf[p])
		}
		if st.isProd {
			st.acked[c] = uint64(abuf[st.id])
		}
	}
	var writtenTotal, pendingTotal uint64
	for p := 0; p < l.prods; p++ {
		pendingTotal += st.pmirror[p]
		for c := 0; c < n; c++ {
			writtenTotal += st.wmirror[p][c]
		}
	}
	if st.round >= int64(st.cfg.Windows) && pendingTotal == 0 && writtenTotal == consumedTotal {
		return true
	}

	// Latch sweep: take and drop each shard lock dirtied by the last
	// apply phase. This is the shard server's batch-latching discipline;
	// it also flushes the shard pages' write notices through the lock
	// tier instead of letting them pile up unacknowledged.
	for s := 0; s < l.shards; s++ {
		if st.sweep[s] {
			st.sweep[s] = false
			t0 := m.Now()
			m.Lock(s)
			m.Unlock(s)
			st.lockWaitNs += uint64(vclock.Since(t0, m.Now()))
		}
	}

	if !st.isProd {
		return false
	}
	// Drain this window's arrivals. Three stream draws per op — kind,
	// key rank, session — so the draw schedule is a pure function of
	// the op index.
	var generated uint64
	if st.round < int64(st.cfg.Windows) {
		windowEnd := (uint64(st.round) + 1) * st.cfg.WindowNs
		for st.arr.Peek() < windowEnd {
			t := st.arr.Take()
			kindDraw := st.dec.Next() % 100
			rank := st.zipf.Sample(&st.dec)
			sess := st.dec.Next() % st.perNodeSessions
			key := l.keyFor(rank)
			shard, _ := l.shardOf(key)
			o := op{key: key, kind: st.kindFor(kindDraw), arrival: t, session: st.sessBase + sess}
			st.markSession(sess)
			c := l.shardHome(shard, st.cfg)
			st.pendq[c] = append(st.pendq[c], o)
			st.routed++
			generated++
		}
	}
	// Push per-consumer queues into the rings, up to each ring's free
	// capacity; the overflow carries over and counts as stall events.
	var pushed, pendLeft uint64
	for c := 0; c < n; c++ {
		q := st.pendq[c]
		avail := st.cfg.RingSlots - int(st.written[c]-st.acked[c])
		k := len(q)
		if k > avail {
			k = avail
		}
		if k > 0 {
			st.writeRing(c, int(st.written[c]), q[:k])
			st.written[c] += uint64(k)
			pushed += uint64(k)
		}
		st.stalled += uint64(len(q) - k)
		pendLeft += uint64(len(q) - k)
		st.pendq[c] = append(st.pendq[c][:0], q[k:]...)
	}
	// Publish the write cursors and carryover count.
	wbuf := st.ioBuf[:n+1]
	for c := 0; c < n; c++ {
		wbuf[c] = int64(st.written[c])
	}
	wbuf[n] = int64(pendLeft)
	m.WriteI64Block(l.wcurAddr(st.id), wbuf)
	m.Compute((generated + pushed) * routeFlops)
	return false
}

// writeRing publishes ops into ring (self → c) starting at cursor
// start, wrapping at the ring size (at most two block writes).
func (st *nodeState) writeRing(c, start int, ops []op) {
	rs := st.cfg.RingSlots
	for i := 0; i < len(ops); {
		idx := (start + i) % rs
		run := rs - idx
		if run > len(ops)-i {
			run = len(ops) - i
		}
		buf := st.ringBuf[:run*slotWords]
		for j := 0; j < run; j++ {
			o := ops[i+j]
			buf[slotWords*j] = int64(o.key)
			buf[slotWords*j+1] = o.kind
			buf[slotWords*j+2] = int64(o.arrival)
			buf[slotWords*j+3] = int64(o.session)
		}
		st.m.WriteI64Block(st.l.ringSlot(st.id, c, idx), buf)
		i += run
	}
}

// phaseIngest is phase B: every node mirrors the producers' cursors
// (the termination predicate needs the global view), and consumers pop
// their rings and merge all producers' ops into arrival order.
func (st *nodeState) phaseIngest() {
	l, m, n := st.l, st.m, st.n
	wbuf := st.ioBuf[:n+1]
	for p := 0; p < l.prods; p++ {
		m.ReadI64Block(l.wcurAddr(p), wbuf)
		for c := 0; c < n; c++ {
			st.wmirror[p][c] = uint64(wbuf[c])
		}
		st.pmirror[p] = uint64(wbuf[n])
	}
	if !st.isCons {
		return
	}
	st.queue = st.queue[:0]
	for p := 0; p < l.prods; p++ {
		newOps := st.wmirror[p][st.id] - st.consumed[p]
		if newOps > 0 {
			st.readRing(p, int(st.consumed[p]), int(newOps))
			st.consumed[p] += newOps
		}
	}
	// (arrival, producer) is a total order: one producer's arrivals
	// strictly increase, so ties across producers break by rank.
	sort.Slice(st.queue, func(i, j int) bool {
		a, b := &st.queue[i], &st.queue[j]
		if a.arrival != b.arrival {
			return a.arrival < b.arrival
		}
		return a.prod < b.prod
	})
	abuf := st.ioBuf[:l.prods]
	for p := 0; p < l.prods; p++ {
		abuf[p] = int64(st.consumed[p])
	}
	m.WriteI64Block(l.acurAddr(st.id), abuf)
}

// readRing pops count ops from ring (p → self) starting at cursor
// start (at most two block reads).
func (st *nodeState) readRing(p, start, count int) {
	rs := st.cfg.RingSlots
	for i := 0; i < count; {
		idx := (start + i) % rs
		run := rs - idx
		if run > count-i {
			run = count - i
		}
		buf := st.ringBuf[:run*slotWords]
		st.m.ReadI64Block(st.l.ringSlot(p, st.id, idx), buf)
		for j := 0; j < run; j++ {
			st.queue = append(st.queue, qop{op{
				key:     uint64(buf[slotWords*j]),
				kind:    buf[slotWords*j+1],
				arrival: uint64(buf[slotWords*j+2]),
				session: uint64(buf[slotWords*j+3]),
			}, p})
		}
		i += run
	}
}

// phaseApply is phase C: consumers execute the merged queue against
// their home-local shard pages. The phase is communication-free by
// layout and service times come from the serviceNs model table, so the
// latency histogram is bit-deterministic on every substrate, engine,
// and goroutine schedule.
func (st *nodeState) phaseApply() {
	if st.isCons {
		for i := range st.queue {
			q := &st.queue[i]
			digest, shard := st.apply(q)
			st.m.Compute(applyFlops)
			svc := serviceNs(q.kind)
			// Single-server queue model: service starts when the
			// consumer frees up, never before the op has crossed the
			// routing hop.
			start := st.nextFree
			if a := q.arrival + pipeHopNs; a > start {
				start = a
			}
			done := start + svc
			st.hist.Add(done - q.arrival)
			st.nextFree = done
			st.applied++
			st.opDigest += digest
			st.shardOps[shard]++
			st.shardSvcNs[shard] += svc
			st.sweep[shard] = true
			if r := st.cfg.Recorder; r != nil && r.Enabled() {
				r.Record(st.id, perfmon.EvServeOp, vclock.Time(start), vclock.Duration(svc),
					uint64(shard), uint64(q.kind))
			}
		}
	}
	st.round++
	st.commit()
}

// serviceNs returns the modeled per-op service time of the queue
// model, by op kind. Deliberately a model table rather than a clock
// delta: concurrent protocol traffic steals handler charges onto the
// consumer's clock at schedule-dependent instants, and the latency
// histogram must stay a pure function of the op stream. The substrate
// is still charged its real access costs in apply — virtual-time
// attribution is unaffected; only the queue model reads this table.
func serviceNs(kind int64) uint64 {
	switch kind {
	case OpScan:
		return 900 // reads a scanSlots-slot stripe
	case OpPut, OpEvent:
		return 380 // read-modify-write of one slot
	case OpPush:
		return 420 // LWW merge, possible loser preservation
	default: // OpGet, OpPull: one slot read + digest fold
		return 300
	}
}

// runDirect executes direct mode: per-op shard locks, no routing. The
// whole op loop is one checkpoint phase — there are no interior
// barriers, so a crash resumes from the pre-loop snapshot and re-runs
// it in full.
func (st *nodeState) runDirect() NodeResult {
	if st.round < 1 {
		for i := 0; i < st.cfg.DirectOps; i++ {
			kindDraw := st.dec.Next() % 100
			rank := st.zipf.Sample(&st.dec)
			sess := st.dec.Next() % st.perNodeSessions
			_ = kindDraw // direct mode is all locked increments
			key := st.l.keyFor(rank)
			shard, _ := st.l.shardOf(key)
			st.markSession(sess)
			t0 := st.m.Now()
			st.m.Lock(shard)
			st.lockWaitNs += uint64(vclock.Since(t0, st.m.Now()))
			digest, _ := st.apply(&qop{op: op{key: key, kind: OpPut, session: st.sessBase + sess}})
			st.m.Compute(applyFlops)
			st.m.Unlock(shard)
			st.opDigest += digest
			st.shardOps[shard]++
			st.routed++
			st.applied++
		}
		st.round = 1
		st.commit()
	}
	st.m.Barrier()
	return st.finish()
}

// finish folds the shard pages into the global checksum through the
// stat pages: every node folds what it homes, publishes, and reads all
// folds back, so each node independently computes the identical global
// checksum and totals.
func (st *nodeState) finish() NodeResult {
	l, m := st.l, st.m
	var fold uint64
	page := make([]int64, memsim.PageSize/8)
	for s := 0; s < l.shards; s++ {
		if l.shardHome(s, st.cfg) != st.id {
			continue
		}
		m.ReadI64Block(l.kv+memsim.Addr(s)*memsim.PageSize, page)
		for i, w := range page {
			if w != 0 {
				fold += loadgen.Mix64(uint64(w) ^ loadgen.Mix64(uint64(s*len(page)+i)))
			}
		}
	}
	fold += st.loserDigest
	var sessions uint64
	for _, w := range st.sessBits {
		sessions += uint64(bits.OnesCount64(w))
	}
	sbuf := []int64{int64(fold), int64(st.routed), int64(st.applied), int64(st.stalled), int64(sessions)}
	m.WriteI64Block(l.statAddr(st.id), sbuf)
	m.Barrier()
	nr := NodeResult{
		Node:       st.id,
		Rounds:     st.round,
		Routed:     st.routed,
		Applied:    st.applied,
		Stalled:    st.stalled,
		Sessions:   sessions,
		Hist:       st.hist,
		OpDigest:   st.opDigest,
		BusyNs:     st.nextFree,
		LockWaitNs: st.lockWaitNs,
		ShardOps:   st.shardOps,
		ShardSvcNs: st.shardSvcNs,
	}
	rbuf := make([]int64, len(sbuf))
	for i := 0; i < st.n; i++ {
		m.ReadI64Block(l.statAddr(i), rbuf)
		nr.Checksum = loadgen.Mix64(nr.Checksum ^ uint64(rbuf[0]))
		nr.TotalRouted += uint64(rbuf[1])
		nr.TotalApplied += uint64(rbuf[2])
		nr.TotalStalled += uint64(rbuf[3])
		nr.TotalSessions += uint64(rbuf[4])
	}
	m.Barrier()
	return nr
}

func (st *nodeState) markSession(local uint64) {
	st.sessBits[local/64] |= 1 << (local % 64)
}

// NodeResult is one node's outcome. Checksum and the Total* fields are
// global (identical on every node); the rest are per-node.
type NodeResult struct {
	Node       int
	Rounds     int64
	Routed     uint64
	Applied    uint64
	Stalled    uint64
	Sessions   uint64
	Hist       loadgen.Hist
	OpDigest   uint64
	BusyNs     uint64
	LockWaitNs uint64
	ShardOps   []uint64
	ShardSvcNs []uint64

	Checksum      uint64
	TotalRouted   uint64
	TotalApplied  uint64
	TotalStalled  uint64
	TotalSessions uint64
}

// sectionAdder is the optional Machine extension for attaching a
// monitor report section (implemented by the core-services bindings).
type sectionAdder interface {
	AddReportSection(title string, render func() string)
}

// runNode is the SPMD body: one node's full run, depositing the rich
// result into out[id] and returning the apps-level summary.
func runNode(cfg Config, m apps.Machine, out []NodeResult) apps.Result {
	st := newNodeState(cfg, m)
	st.t0 = m.Now()
	if sa, ok := m.(sectionAdder); ok {
		id := st.id
		sa.AddReportSection("", func() string {
			return renderNodeSection(cfg, st.l, &out[id])
		})
	}
	st.allocRegions()
	st.register()
	st.warmup()
	var nr NodeResult
	if cfg.Direct {
		nr = st.runDirect()
	} else {
		nr = st.runFabric()
	}
	out[m.ID()] = nr
	return apps.Result{
		Check: float64(nr.Checksum % (1 << 52)),
		T:     apps.Timings{Total: vclock.Since(st.t0, m.Now())},
	}
}

// Kernel adapts a serve run to the apps.Kernel shape so every existing
// runner (bare substrate, core services, jiajia, recoverable) can
// execute it. out must have one slot per node.
func Kernel(cfg Config, out []NodeResult) apps.Kernel {
	return func(m apps.Machine) apps.Result { return runNode(cfg, m, out) }
}
