package serve

import (
	"fmt"
	"sort"
	"strings"

	"hamster/internal/memsim"
)

// renderNodeSection renders one node's serve activity for
// Monitor.Report: the hot-shard ranking (with the backing page ids)
// and the lock-contention picture, so skew is visible without a trace
// viewer.
func renderNodeSection(cfg Config, l *layout, nr *NodeResult) string {
	var b strings.Builder
	if nr.Routed == 0 && nr.Applied == 0 {
		fmt.Fprintf(&b, "  serve: %s workload, no activity on this node\n", cfg.Workload)
		return b.String()
	}
	fmt.Fprintf(&b, "  serve: %s workload  routed %d  applied %d  stalled %d\n",
		cfg.Workload, nr.Routed, nr.Applied, nr.Stalled)
	if nr.Hist.Count() > 0 {
		fmt.Fprintf(&b, "    latency p50/p95/p99 %d/%d/%d ns  busy %d ns\n",
			nr.Hist.Quantile(0.50), nr.Hist.Quantile(0.95), nr.Hist.Quantile(0.99), nr.BusyNs)
	}
	if nr.LockWaitNs > 0 {
		per := uint64(0)
		if nr.Applied > 0 {
			per = nr.LockWaitNs / nr.Applied
		}
		fmt.Fprintf(&b, "    lock contention: %d ns total latch wait (%d ns/op)\n", nr.LockWaitNs, per)
	}
	type hot struct {
		shard int
		ops   uint64
	}
	var hots []hot
	for s, n := range nr.ShardOps {
		if n > 0 {
			hots = append(hots, hot{s, n})
		}
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].ops != hots[j].ops {
			return hots[i].ops > hots[j].ops
		}
		return hots[i].shard < hots[j].shard
	})
	if len(hots) > 5 {
		hots = hots[:5]
	}
	for _, h := range hots {
		avg := uint64(0)
		if h.ops > 0 {
			avg = nr.ShardSvcNs[h.shard] / h.ops
		}
		fmt.Fprintf(&b, "    hot shard %2d (page %d, home %d): %d ops, %d ns/op\n",
			h.shard, memsim.PageOf(l.kv)+memsim.PageID(h.shard), l.shardHome(h.shard, cfg), h.ops, avg)
	}
	return b.String()
}

// Render is the human-readable run summary.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serve %s: %d nodes, %d shards, zipf %.2f, seed %d\n",
		r.Cfg.Workload, r.Nodes, r.Cfg.ShardsPerNode*r.Nodes, r.Cfg.ZipfSkew, r.Cfg.Seed)
	fmt.Fprintf(&b, "  sessions %d  ops %d (stall events %d)  checksum %#016x\n",
		r.Sessions, r.Applied, r.Stalled, r.Checksum)
	if !r.Cfg.Direct {
		fmt.Fprintf(&b, "  offered %.0f ops/s  achieved %.0f ops/s  horizon %d ns  busy %d ns\n",
			r.OfferedPerSec, r.AchievedPerSec, r.HorizonNs, r.MaxBusyNs)
		fmt.Fprintf(&b, "  latency mean %d ns  p50 %d  p95 %d  p99 %d\n",
			r.MeanNs, r.P50Ns, r.P95Ns, r.P99Ns)
	}
	if r.Recoveries > 0 {
		fmt.Fprintf(&b, "  recovered from %d crash(es) mid-traffic\n", r.Recoveries)
	}
	return b.String()
}
