package serve_test

import (
	"reflect"
	"strings"
	"testing"

	"hamster"
	"hamster/internal/bench"
	"hamster/internal/checkpoint"
	"hamster/internal/consengine"
	"hamster/internal/hybriddsm"
	"hamster/internal/perfmon"
	"hamster/internal/platform"
	"hamster/internal/serve"
	"hamster/internal/simnet"
	"hamster/internal/smp"
	"hamster/internal/swdsm"
)

// substrates builds one of every bare substrate plus one bare cluster
// per consistency engine, all with n nodes. Callers own Close.
func substrates(t testing.TB, n int) map[string]platform.Substrate {
	t.Helper()
	sm, err := smp.New(smp.Config{CPUs: n})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := swdsm.New(swdsm.Config{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hybriddsm.New(hybriddsm.Config{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]platform.Substrate{"smp": sm, "swdsm": sw, "hybrid": hy}
	for _, e := range []string{consengine.ScopeName, consengine.EagerRCName, consengine.IVYName} {
		d, err := bench.BuildEngineTopo(e, n, simnet.TopoFlat)
		if err != nil {
			t.Fatal(err)
		}
		out["engine-"+e] = d
	}
	t.Cleanup(func() {
		for _, s := range out {
			s.Close()
		}
	})
	return out
}

func TestServeValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		cfg  serve.Config
		n    int
		want string
	}{
		{"unknown workload", serve.Config{Workload: "webscale"}, 4, "unknown workload"},
		{"one node", serve.Config{Workload: serve.WorkloadKV}, 1, "at least 2 nodes"},
		{"too many shards", serve.Config{Workload: serve.WorkloadKV, ShardsPerNode: 20}, 4, "lock table"},
		{"negative skew", serve.Config{Workload: serve.WorkloadKV, ZipfSkew: -1}, 4, "ZipfSkew"},
		{"ragged rings", serve.Config{Workload: serve.WorkloadKV, RingSlots: 100}, 4, "RingSlots"},
		{"bad gap", serve.Config{Workload: serve.WorkloadKV, MeanGapNs: -3}, 4, "MeanGapNs"},
	}
	for _, c := range cases {
		cfg := c.cfg.WithDefaults(c.n)
		if c.cfg.ShardsPerNode != 0 {
			cfg.ShardsPerNode = c.cfg.ShardsPerNode
		}
		if c.cfg.RingSlots != 0 {
			cfg.RingSlots = c.cfg.RingSlots
		}
		if c.cfg.MeanGapNs != 0 {
			cfg.MeanGapNs = c.cfg.MeanGapNs
		}
		err := cfg.Validate(c.n)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// Two runs of the same seeded config must agree on every reported
// field — histograms, digests, per-shard counters, checksums.
func TestServeDeterministicReplay(t *testing.T) {
	for _, w := range serve.Workloads {
		run := func() *serve.Report {
			sm, err := smp.New(smp.Config{CPUs: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer sm.Close()
			rep, err := serve.RunOnSubstrate(serve.Config{
				Workload: w, Seed: 11, Windows: 8, Sessions: 20_000, ZipfSkew: 0.99,
			}, sm)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two identically seeded runs disagree", w)
		}
		if a.Applied == 0 || a.Sessions == 0 {
			t.Fatalf("%s: run did nothing (applied %d, sessions %d)", w, a.Applied, a.Sessions)
		}
	}
}

// The conformance gate (wired into scripts/check.sh under -race): the
// same seeded workload must produce the identical checksum on every
// substrate and every consistency engine, in both the routed-fabric and
// the direct locked-increment modes.
func TestServeEngineConformance(t *testing.T) {
	type mode struct {
		name string
		cfg  serve.Config
	}
	modes := []mode{
		{"kv-routed", serve.Config{Workload: serve.WorkloadKV, Seed: 7, Windows: 6, Sessions: 5000, ZipfSkew: 0.99}},
		{"pipeline-routed", serve.Config{Workload: serve.WorkloadPipeline, Seed: 7, Windows: 6, Sessions: 5000}},
		{"synclog-routed", serve.Config{Workload: serve.WorkloadSyncLog, Seed: 7, Windows: 6, Sessions: 5000}},
		{"kv-direct", serve.Config{Workload: serve.WorkloadKV, Seed: 7, Direct: true, DirectOps: 600}},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			var refName string
			var ref *serve.Report
			for name, sub := range substrates(t, 4) {
				rep, err := serve.RunOnSubstrate(m.cfg, sub)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if ref == nil {
					refName, ref = name, rep
					continue
				}
				if rep.Checksum != ref.Checksum || rep.Applied != ref.Applied {
					t.Fatalf("%s: checksum %#x / applied %d diverge from %s's %#x / %d",
						name, rep.Checksum, rep.Applied, refName, ref.Checksum, ref.Applied)
				}
				// The measured apply phase is communication-free, so the
				// latency distribution is substrate-invariant too.
				if rep.P50Ns != ref.P50Ns || rep.P99Ns != ref.P99Ns {
					t.Fatalf("%s: latency quantiles %d/%d diverge from %s's %d/%d",
						name, rep.P50Ns, rep.P99Ns, refName, ref.P50Ns, ref.P99Ns)
				}
			}
		})
	}
}

// Shrinking the rings to the minimum must exert real backpressure
// (stall events) without changing what the fabric computes.
func TestServeBackpressure(t *testing.T) {
	run := func(slots int) *serve.Report {
		sm, err := smp.New(smp.Config{CPUs: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer sm.Close()
		rep, err := serve.RunOnSubstrate(serve.Config{
			Workload: serve.WorkloadKV, Seed: 3, Windows: 8, Sessions: 10_000, ZipfSkew: 1.2,
			MeanGapNs: 800, RingSlots: slots,
		}, sm)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	tight, roomy := run(128), run(1024)
	if tight.Stalled == 0 {
		t.Fatal("128-slot rings under 1.2-skew hot traffic produced no stall events")
	}
	if tight.Checksum != roomy.Checksum || tight.Applied != roomy.Applied {
		t.Fatalf("backpressure changed results: %#x/%d vs %#x/%d",
			tight.Checksum, tight.Applied, roomy.Checksum, roomy.Applied)
	}
}

// A planned mid-traffic crash with a lossy network, recovered through
// the cluster orchestrator, must land on the fault-free checksum; the
// whole crash-and-recover history must replay bit-identically.
func TestServeRecoverable(t *testing.T) {
	cfg := serve.Config{Workload: serve.WorkloadKV, Seed: 7, Windows: 6, Sessions: 5000, ZipfSkew: 0.99}
	base := hamster.Config{Platform: platform.SWDSM, Nodes: 4}

	rt, err := hamster.New(base)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := serve.RunOnRuntime(cfg, rt)
	rt.Close()
	if err != nil {
		t.Fatal(err)
	}

	recCfg := base
	recCfg.CheckpointEvery = 4
	recCfg.CheckpointSink = checkpoint.NewMemorySink(64)
	plan := simnet.FaultPlan{
		NodeFaults: []simnet.NodeFault{{Node: 1, CrashAt: 1_500_000}},
		DropProb:   0.05,
		Recover:    true,
		Seed:       3,
	}
	rec, recs, err := serve.RunRecoverable(cfg, recCfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if recs < 1 {
		t.Fatal("planned crash needed no recovery")
	}
	if rec.Checksum != clean.Checksum || rec.Applied != clean.Applied {
		t.Fatalf("recovered run diverged: %#x/%d, want %#x/%d",
			rec.Checksum, rec.Applied, clean.Checksum, clean.Applied)
	}

	repCfg := base
	repCfg.CheckpointEvery = 4
	repCfg.CheckpointSink = checkpoint.NewMemorySink(64)
	rep, repRecs, err := serve.RunRecoverable(cfg, repCfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if repRecs != recs || rep.Checksum != rec.Checksum || rep.Applied != rec.Applied {
		t.Fatalf("recovery replay diverged: recoveries %d vs %d, %#x/%d vs %#x/%d",
			repRecs, recs, rep.Checksum, rep.Applied, rec.Checksum, rec.Applied)
	}
}

// Through the core services the monitor report grows the serve section:
// hot shards with their backing pages and the latch-contention row.
func TestServeMonitorSections(t *testing.T) {
	rt, err := hamster.New(hamster.Config{Platform: platform.SWDSM, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := serve.RunOnRuntime(serve.Config{
		Workload: serve.WorkloadKV, Seed: 7, Windows: 6, Sessions: 5000, ZipfSkew: 0.99,
	}, rt); err != nil {
		t.Fatal(err)
	}
	rep := rt.Env(0).Mon.Report()
	for _, want := range []string{"serve: kv workload", "hot shard", "lock contention", "latency p50/p95/p99"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("monitor report missing %q:\n%s", want, rep)
		}
	}
}

// With a recorder attached, every applied op emits one EvServeOp span.
func TestServePerfmonSpans(t *testing.T) {
	sm, err := smp.New(smp.Config{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	rec := perfmon.New(4, 1<<16)
	rec.Enable()
	rep, err := serve.RunOnSubstrate(serve.Config{
		Workload: serve.WorkloadKV, Seed: 7, Windows: 4, Sessions: 2000, Recorder: rec,
	}, sm)
	if err != nil {
		t.Fatal(err)
	}
	var spans uint64
	for n := 0; n < 4; n++ {
		for _, ev := range rec.Events(n) {
			if ev.Kind == perfmon.EvServeOp {
				spans++
				if ev.Dur <= 0 {
					t.Fatalf("serve-op span with non-positive duration %d", ev.Dur)
				}
			}
		}
	}
	if spans != rep.Applied {
		t.Fatalf("recorded %d serve-op spans, applied %d ops", spans, rep.Applied)
	}
}

// Session multiplexing: a session population far beyond the op count
// still reports distinct-touched sessions bounded by both.
func TestServeSessionAccounting(t *testing.T) {
	sm, err := smp.New(smp.Config{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	rep, err := serve.RunOnSubstrate(serve.Config{
		Workload: serve.WorkloadKV, Seed: 5, Windows: 6, Sessions: 1_000_000,
	}, sm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions == 0 || rep.Sessions > rep.Applied || rep.Sessions > 1_000_000 {
		t.Fatalf("distinct sessions %d out of range (applied %d)", rep.Sessions, rep.Applied)
	}
}
