package serve

import (
	"hamster/internal/loadgen"
	"hamster/internal/memsim"
)

// kindFor maps a percentile draw to this workload's op mix.
func (st *nodeState) kindFor(draw uint64) int64 {
	switch st.cfg.Workload {
	case WorkloadKV:
		switch {
		case draw < 50:
			return OpGet
		case draw < 90:
			return OpPut
		default:
			return OpScan
		}
	case WorkloadSyncLog:
		if draw < 60 {
			return OpPush
		}
		return OpPull
	default: // pipeline
		return OpEvent
	}
}

// apply executes one op against its shard slot and returns a read
// digest plus the shard touched. Mutating ops use commutative update
// rules (wrapping sums, max-merge), so the final store state — and the
// checksum folded from it — is independent of apply order. That is what
// keeps checksums identical across engines, schedules, and
// crash/recovery round shifts.
//
// Slot layouts (4 words):
//
//	kv/pipeline: [value, version, sessionSum, 0]
//	synclog:     [ts, session, value, versions]
func (st *nodeState) apply(q *qop) (digest uint64, shard int) {
	shard, slot := st.l.shardOf(q.key)
	a := st.l.slotAddr(shard, slot)
	buf := st.ringBuf[:slotWords]
	switch q.kind {
	case OpGet:
		st.m.ReadI64Block(a, buf)
		digest = foldSlot(buf, q.key)

	case OpPut, OpEvent:
		st.m.ReadI64Block(a, buf)
		term := loadgen.Mix64(q.key)
		if q.kind == OpEvent {
			term = loadgen.Mix64(q.key ^ loadgen.Mix64(q.session))
		}
		buf[0] = int64(uint64(buf[0]) + term)
		buf[1]++
		buf[2] = int64(uint64(buf[2]) + q.session)
		st.m.WriteI64Block(a, buf)

	case OpScan:
		first := slot - slot%scanSlots
		count := scanSlots
		if first+count > SlotsPerShard {
			count = SlotsPerShard - first
		}
		sbuf := st.ringBuf[:count*slotWords]
		st.m.ReadI64Block(st.l.slotAddr(shard, first), sbuf)
		for i := 0; i < count; i++ {
			digest += foldSlot(sbuf[i*slotWords:(i+1)*slotWords], q.key)
		}

	case OpPush:
		st.m.ReadI64Block(a, buf)
		nts, nsess := q.arrival, q.session
		nval := loadgen.Mix64(q.key ^ q.arrival)
		if buf[3] == 0 {
			// First version of this entity: install, no loser.
			st.m.WriteI64Block(a, []int64{int64(nts), int64(nsess), int64(nval), 1})
			break
		}
		ots, osess, oval := uint64(buf[0]), uint64(buf[1]), uint64(buf[2])
		// Last-write-wins by (timestamp, session) — a total order, since
		// one session's pushes carry strictly increasing timestamps.
		var lts, lsess, lval uint64 // the losing version
		if nts > ots || (nts == ots && nsess > osess) {
			lts, lsess, lval = ots, osess, oval
			buf[0], buf[1], buf[2] = int64(nts), int64(nsess), int64(nval)
		} else {
			lts, lsess, lval = nts, nsess, nval
		}
		buf[3]++
		st.m.WriteI64Block(a, buf)
		st.recordLoser(lts, lsess, lval, q.key)

	case OpPull:
		st.m.ReadI64Block(a, buf)
		digest = foldSlot(buf, q.key)
	}
	return digest, shard
}

// recordLoser preserves a displaced version: it lands in this node's
// bounded loser ring in shared memory (the sync client's "conflict
// copy") and folds into the commutative loser digest that joins the
// global checksum. The set of losers is order-independent — for any
// apply order, every version of an entity except the (ts, session)
// maximum loses exactly once.
func (st *nodeState) recordLoser(ts, sess, val, key uint64) {
	a := st.l.loserAddr(st.id) + memsim.Addr((st.loserCur%loserSlots)*slotWords*8)
	st.m.WriteI64Block(a, []int64{int64(ts), int64(sess), int64(val), int64(key)})
	st.loserCur++
	st.loserDigest += loadgen.Mix64(ts ^ loadgen.Mix64(sess) ^ val)
}

// foldSlot digests a slot read for the per-node op digest.
func foldSlot(buf []int64, key uint64) uint64 {
	h := loadgen.Mix64(key)
	for _, w := range buf {
		h = loadgen.Mix64(h ^ uint64(w))
	}
	return h
}
