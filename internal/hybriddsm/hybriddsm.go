// Package hybriddsm implements a hybrid hardware/software DSM in the style
// of the SCI-VM (Schulz 1999), the system this paper's framework grew out
// of.
//
// A Shared Memory Cluster interconnect (SCI-like SAN) lets any node read
// and write remote memory directly, with no software protocol on the data
// path: remote reads are µs-scale PIO loads, remote writes are cheap posted
// stores drained by an explicit store barrier. Memory management remains in
// software — pages are distributed across nodes by placement policy — which
// is what makes the system "hybrid".
//
// Two software optimizations sit on top of the raw hardware path, both
// controlled by relaxed consistency:
//
//   - Read caching: a remote page that a node keeps reading is fetched in
//     one block transfer and cached locally; cached copies are invalidated
//     by write notices at acquire/barrier points, exactly like a software
//     DSM but with ~50× cheaper synchronization messages.
//   - Posted writes: remote stores complete locally and drain in the
//     background; release points pay one store-barrier flush.
//
// There are no twins and no diffs: writes go straight to the home copy.
// That asymmetry versus package swdsm is the paper's Figure 3 — write-heavy
// phases (LU initialization) and synchronization-heavy codes benefit most.
package hybriddsm

import (
	"fmt"
	"math"
	"sync"

	"hamster/internal/machine"
	"hamster/internal/memsim"
	"hamster/internal/notices"
	"hamster/internal/pagestore"
	"hamster/internal/perfmon"
	"hamster/internal/platform"
	"hamster/internal/vclock"
)

// DefaultCachePages caps each node's read cache (16 MiB).
const DefaultCachePages = 4096

// DefaultCacheThreshold is the number of remote reads of one page within
// an interval that triggers caching the page locally.
const DefaultCacheThreshold = 16

// Config parameterizes a hybrid-DSM cluster.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// Params is the cost model; zero value means machine.Default().
	Params machine.Params
	// CachePages caps the per-node read cache (0 = DefaultCachePages).
	CachePages int
	// CacheThreshold is the remote-read count that triggers page caching
	// (0 = DefaultCacheThreshold, negative = caching disabled).
	CacheThreshold int
	// DisablePostedWrites makes remote writes synchronous PIO stores
	// (ablation knob: each write pays the full remote-read latency).
	DisablePostedWrites bool
	// Space optionally supplies a shared global address space (multi-DSM
	// composition, §6).
	Space *memsim.Space
	// Clocks optionally supplies shared per-node clocks (multi-DSM
	// composition). Length must equal Nodes.
	Clocks []*vclock.Clock
}

// DSM is one hybrid-DSM cluster.
type DSM struct {
	params    machine.Params
	space     *memsim.Space
	clocks    []*vclock.Clock
	nodes     []*node
	cacheCap  int
	threshold int
	posted    bool

	lockMu sync.Mutex
	locks  []*lockState

	vb       *vclock.VBarrier
	exchange *notices.EpochExchange

	rec *perfmon.Recorder // protocol event recorder; nil until attached
}

type lockState struct {
	vl      *vclock.VLock
	pending *notices.Board
}

// cpage is one read-cached remote page, linked into the node's intrusive
// recency list. Structs and page buffers recycle through pools — the read
// cache churns on every invalidation wave, and a hot loop must not pay
// the allocator for it (same engineering as swdsm's page path).
type cpage struct {
	data       []byte
	page       memsim.PageID
	prev, next *cpage
}

// Array pointers, not slices: Put-ting a []byte would box its header
// into an interface and allocate on every recycle.
var pagePool = sync.Pool{
	New: func() any { return new([memsim.PageSize]byte) },
}

func getPage() []byte { return pagePool.Get().(*[memsim.PageSize]byte)[:] }

var cpagePool = sync.Pool{New: func() any { return new(cpage) }}

// retire recycles a cache entry and its buffer. The caller must have
// unlinked it from the LRU; only exact page-shaped buffers re-enter the
// pool.
func retire(cp *cpage) {
	if len(cp.data) == memsim.PageSize && cap(cp.data) == memsim.PageSize {
		pagePool.Put((*[memsim.PageSize]byte)(cp.data))
	}
	*cp = cpage{}
	cpagePool.Put(cp)
}

// pageLRU is an intrusive recency list (front = most recent); see the
// swdsm twin for rationale. Owned by the node's goroutine.
type pageLRU struct {
	head, tail *cpage
}

func (l *pageLRU) pushFront(cp *cpage) {
	cp.prev = nil
	cp.next = l.head
	if l.head != nil {
		l.head.prev = cp
	}
	l.head = cp
	if l.tail == nil {
		l.tail = cp
	}
}

func (l *pageLRU) remove(cp *cpage) {
	if cp.prev != nil {
		cp.prev.next = cp.next
	} else {
		l.head = cp.next
	}
	if cp.next != nil {
		cp.next.prev = cp.prev
	} else {
		l.tail = cp.prev
	}
	cp.prev, cp.next = nil, nil
}

func (l *pageLRU) moveToFront(cp *cpage) {
	if l.head == cp {
		return
	}
	l.remove(cp)
	l.pushFront(cp)
}

type node struct {
	id   int
	dsm  *DSM
	home *pagestore.Store
	// pcache models this node's CPU cache for local references.
	pcache *machine.PageCache

	// Owner-goroutine state.
	cache     map[memsim.PageID]*cpage
	lru       pageLRU
	readCount map[memsim.PageID]int
	written   map[memsim.PageID]struct{}
	postedOut int // posted writes since the last store barrier
	epoch     uint64

	stats platform.Stats
}

// New builds a hybrid-DSM cluster.
func New(cfg Config) (*DSM, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("hybriddsm: need at least one node, got %d", cfg.Nodes)
	}
	params := cfg.Params
	if params.Name == "" {
		params = machine.Default()
	}
	space := cfg.Space
	if space == nil {
		space = memsim.NewSpace(cfg.Nodes)
	}
	d := &DSM{
		params:   params,
		space:    space,
		clocks:   make([]*vclock.Clock, cfg.Nodes),
		nodes:    make([]*node, cfg.Nodes),
		posted:   !cfg.DisablePostedWrites,
		vb:       vclock.NewVBarrier(cfg.Nodes),
		exchange: notices.NewEpochExchange(cfg.Nodes),
	}
	if cfg.Clocks != nil {
		if len(cfg.Clocks) != cfg.Nodes {
			return nil, fmt.Errorf("hybriddsm: %d clocks for %d nodes", len(cfg.Clocks), cfg.Nodes)
		}
		copy(d.clocks, cfg.Clocks)
	}
	d.cacheCap = cfg.CachePages
	if d.cacheCap <= 0 {
		d.cacheCap = DefaultCachePages
	}
	switch {
	case cfg.CacheThreshold < 0:
		d.threshold = 0 // disabled
	case cfg.CacheThreshold == 0:
		d.threshold = DefaultCacheThreshold
	default:
		d.threshold = cfg.CacheThreshold
	}
	for i := range d.nodes {
		if d.clocks[i] == nil {
			d.clocks[i] = &vclock.Clock{}
		}
		d.nodes[i] = &node{
			id:        i,
			dsm:       d,
			home:      pagestore.New(),
			pcache:    machine.NewPageCache(params.Bus.CachePages),
			cache:     make(map[memsim.PageID]*cpage),
			readCount: make(map[memsim.PageID]int),
			written:   make(map[memsim.PageID]struct{}),
		}
	}
	return d, nil
}

// Kind implements platform.Substrate.
func (d *DSM) Kind() platform.Kind { return platform.HybridDSM }

// Nodes implements platform.Substrate.
func (d *DSM) Nodes() int { return len(d.nodes) }

// Clock implements platform.Substrate.
func (d *DSM) Clock(node int) *vclock.Clock { return d.clocks[node] }

// Space implements platform.Substrate.
func (d *DSM) Space() *memsim.Space { return d.space }

// Params implements platform.Substrate.
func (d *DSM) Params() machine.Params { return d.params }

// Caps implements platform.Substrate.
func (d *DSM) Caps() platform.Caps {
	return platform.Caps{
		RemoteAccess:     true,
		PageCaching:      d.threshold > 0,
		ConsistencyModel: "release",
		Placement: []memsim.Policy{
			memsim.Block, memsim.Cyclic, memsim.FirstTouch, memsim.Fixed,
		},
	}
}

// Alloc implements platform.Substrate.
func (d *DSM) Alloc(size uint64, name string, pol memsim.Policy, fixedNode int) (memsim.Region, error) {
	return d.space.Alloc(size, name, pol, fixedNode)
}

// Free implements platform.Substrate.
func (d *DSM) Free(r memsim.Region) error { return d.space.Free(r) }

// Compute implements platform.Substrate.
func (d *DSM) Compute(node int, flops uint64) {
	d.clocks[node].Advance(vclock.Duration(flops) * d.params.CPU.FlopNs)
}

// NodeStats implements platform.Substrate. Call while the node is
// quiescent.
func (d *DSM) NodeStats(node int) platform.Stats { return d.nodes[node].stats }

// ResetStats implements platform.Substrate. Quiescent use only.
func (d *DSM) ResetStats(node int) { d.nodes[node].stats = platform.Stats{} }

// SetRecorder implements platform.Substrate.
func (d *DSM) SetRecorder(rec *perfmon.Recorder) { d.rec = rec }

// Close implements platform.Substrate.
func (d *DSM) Close() {}

func (d *DSM) access(nodeID int) *node {
	if nodeID < 0 || nodeID >= len(d.nodes) {
		panic(fmt.Sprintf("hybriddsm: invalid node %d", nodeID))
	}
	return d.nodes[nodeID]
}

// touchLocal charges the CPU-cache model for one local page reference.
func (n *node) touchLocal(p memsim.PageID) {
	if !n.pcache.Touch(uint64(p)) {
		n.dsm.clocks[n.id].AdvanceCat(vclock.CatMemory, n.dsm.params.Bus.MissCost())
		n.stats.CacheMisses++
	}
}

func (n *node) homeOf(p memsim.PageID) int {
	h := n.dsm.space.Home(p)
	if h == memsim.NoHome {
		h = n.dsm.space.TouchHome(p, n.id)
	}
	return h
}

// readWord performs one word-granularity read.
func (n *node) readWord(a memsim.Addr, get func(fr []byte, off int) uint64) uint64 {
	d := n.dsm
	clk := d.clocks[n.id]
	clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs)
	n.stats.Reads++
	p := memsim.PageOf(a)
	off := memsim.Offset(a)
	home := n.homeOf(p)

	if home == n.id {
		n.touchLocal(p)
		hp := n.home.Frame(p)
		hp.Mu.Lock()
		v := get(hp.Data, off)
		hp.Mu.Unlock()
		return v
	}
	if cp, ok := n.cache[p]; ok {
		n.touchLocal(p)
		n.lru.moveToFront(cp)
		return get(cp.data, off)
	}
	// Uncached remote read: PIO load over the SAN.
	clk.AdvanceCat(vclock.CatNetwork, d.params.SAN.RemoteReadNs)
	n.stats.RemoteReads++
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(n.id, perfmon.EvRemoteRead, clk.Now(), 0, uint64(p), 1)
	}
	hf := d.nodes[home].home.Frame(p)
	hf.Mu.Lock()
	v := get(hf.Data, off)
	n.maybeCache(p, hf.Data)
	hf.Mu.Unlock()
	return v
}

// maybeCache fetches a hot remote page into the local read cache. Called
// with the home frame lock held; the copy happens under it.
func (n *node) maybeCache(p memsim.PageID, homeData []byte) {
	if n.dsm.threshold <= 0 {
		return
	}
	n.readCount[p]++
	if n.readCount[p] < n.dsm.threshold {
		return
	}
	d := n.dsm
	clk := d.clocks[n.id]
	t0 := clk.Now()
	clk.AdvanceCat(vclock.CatNetwork, d.params.SAN.PageFetchNs)
	clk.AdvanceCat(vclock.CatMemory, d.params.CPU.PageCopyNs)
	cp := cpagePool.Get().(*cpage)
	cp.data = getPage()
	copy(cp.data, homeData)
	cp.page = p
	n.lru.pushFront(cp)
	n.cache[p] = cp
	n.stats.PageFaults++ // block transfers counted as "faults" for parity
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(n.id, perfmon.EvPageFault, t0, vclock.Since(t0, clk.Now()), uint64(p), uint64(d.space.Home(p)))
	}
	delete(n.readCount, p)
	for len(n.cache) > d.cacheCap {
		victim := n.lru.tail
		n.lru.remove(victim)
		delete(n.cache, victim.page)
		retire(victim)
		n.stats.Evictions++
	}
}

// writeWord performs one word-granularity write, straight through to the
// home copy (no twins, no diffs).
func (n *node) writeWord(a memsim.Addr, put func(fr []byte, off int)) {
	d := n.dsm
	clk := d.clocks[n.id]
	clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs)
	n.stats.Writes++
	p := memsim.PageOf(a)
	off := memsim.Offset(a)
	home := n.homeOf(p)
	n.written[p] = struct{}{}

	if home == n.id {
		n.touchLocal(p)
		hp := n.home.Frame(p)
		hp.Mu.Lock()
		put(hp.Data, off)
		hp.Mu.Unlock()
		return
	}
	if d.posted {
		clk.AdvanceCat(vclock.CatNetwork, d.params.SAN.RemoteWriteNs)
		n.postedOut++
	} else {
		clk.AdvanceCat(vclock.CatNetwork, d.params.SAN.RemoteReadNs) // synchronous PIO store
	}
	n.stats.RemoteWrites++
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(n.id, perfmon.EvRemoteWrite, clk.Now(), 0, uint64(p), 1)
	}
	hf := d.nodes[home].home.Frame(p)
	hf.Mu.Lock()
	put(hf.Data, off)
	hf.Mu.Unlock()
	// Keep a locally cached copy coherent with our own store.
	if cp, ok := n.cache[p]; ok {
		put(cp.data, off)
	}
}

// ReadF64 implements platform.Substrate.
func (d *DSM) ReadF64(nodeID int, a memsim.Addr) float64 {
	return math.Float64frombits(d.access(nodeID).readWord(a, memsim.GetU64))
}

// WriteF64 implements platform.Substrate.
func (d *DSM) WriteF64(nodeID int, a memsim.Addr, v float64) {
	d.access(nodeID).writeWord(a, func(fr []byte, off int) {
		memsim.PutF64(fr, off, v)
	})
}

// ReadI64 implements platform.Substrate.
func (d *DSM) ReadI64(nodeID int, a memsim.Addr) int64 {
	return int64(d.access(nodeID).readWord(a, memsim.GetU64))
}

// WriteI64 implements platform.Substrate.
func (d *DSM) WriteI64(nodeID int, a memsim.Addr, v int64) {
	d.access(nodeID).writeWord(a, func(fr []byte, off int) {
		memsim.PutI64(fr, off, v)
	})
}

// ReadBytes implements platform.Substrate.
func (d *DSM) ReadBytes(nodeID int, a memsim.Addr, buf []byte) {
	n := d.access(nodeID)
	for len(buf) > 0 {
		p := memsim.PageOf(a)
		off := memsim.Offset(a)
		chunk := memsim.PageSize - off
		if chunk > len(buf) {
			chunk = len(buf)
		}
		n.readSpan(p, off, buf[:chunk])
		buf = buf[chunk:]
		a += memsim.Addr(chunk)
	}
}

func (n *node) readSpan(p memsim.PageID, off int, buf []byte) {
	d := n.dsm
	clk := d.clocks[n.id]
	words := vclock.Duration(1 + len(buf)/memsim.WordSize)
	clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*words)
	n.stats.Reads++
	home := n.homeOf(p)
	if home == n.id {
		n.touchLocal(p)
		hp := n.home.Frame(p)
		hp.Mu.Lock()
		copy(buf, hp.Data[off:off+len(buf)])
		hp.Mu.Unlock()
		return
	}
	if cp, ok := n.cache[p]; ok {
		n.touchLocal(p)
		n.lru.moveToFront(cp)
		copy(buf, cp.data[off:off+len(buf)])
		return
	}
	clk.AdvanceCat(vclock.CatNetwork, d.params.SAN.RemoteReadNs*words)
	n.stats.RemoteReads += uint64(words)
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(n.id, perfmon.EvRemoteRead, clk.Now(), 0, uint64(p), uint64(words))
	}
	hf := d.nodes[home].home.Frame(p)
	hf.Mu.Lock()
	copy(buf, hf.Data[off:off+len(buf)])
	n.maybeCache(p, hf.Data)
	hf.Mu.Unlock()
}

// WriteBytes implements platform.Substrate.
func (d *DSM) WriteBytes(nodeID int, a memsim.Addr, data []byte) {
	n := d.access(nodeID)
	for len(data) > 0 {
		p := memsim.PageOf(a)
		off := memsim.Offset(a)
		chunk := memsim.PageSize - off
		if chunk > len(data) {
			chunk = len(data)
		}
		n.writeSpan(p, off, data[:chunk])
		data = data[chunk:]
		a += memsim.Addr(chunk)
	}
}

func (n *node) writeSpan(p memsim.PageID, off int, data []byte) {
	d := n.dsm
	clk := d.clocks[n.id]
	words := vclock.Duration(1 + len(data)/memsim.WordSize)
	clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*words)
	n.stats.Writes++
	n.written[p] = struct{}{}
	home := n.homeOf(p)
	if home == n.id {
		n.touchLocal(p)
		hp := n.home.Frame(p)
		hp.Mu.Lock()
		copy(hp.Data[off:off+len(data)], data)
		hp.Mu.Unlock()
		return
	}
	if d.posted {
		clk.AdvanceCat(vclock.CatNetwork, d.params.SAN.RemoteWriteNs*words)
		n.postedOut += int(words)
	} else {
		clk.AdvanceCat(vclock.CatNetwork, d.params.SAN.RemoteReadNs*words)
	}
	n.stats.RemoteWrites += uint64(words)
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(n.id, perfmon.EvRemoteWrite, clk.Now(), 0, uint64(p), uint64(words))
	}
	hf := d.nodes[home].home.Frame(p)
	hf.Mu.Lock()
	copy(hf.Data[off:off+len(data)], data)
	hf.Mu.Unlock()
	if cp, ok := n.cache[p]; ok {
		copy(cp.data[off:off+len(data)], data)
	}
}

// storeBarrier drains the posted-write FIFO.
func (n *node) storeBarrier() {
	if n.postedOut > 0 {
		n.dsm.clocks[n.id].AdvanceCat(vclock.CatNetwork, n.dsm.params.SAN.StoreBarrierNs)
		n.postedOut = 0
	}
}

// collectNotices empties the interval's written-page set.
func (n *node) collectNotices() []memsim.PageID {
	out := make([]memsim.PageID, 0, len(n.written))
	for p := range n.written {
		out = append(out, p)
		delete(n.written, p)
	}
	return out
}

// invalidate drops cached copies of noticed pages.
func (n *node) invalidate(pages []memsim.PageID) {
	for _, p := range pages {
		delete(n.readCount, p)
		cp, ok := n.cache[p]
		if !ok {
			continue
		}
		n.lru.remove(cp)
		delete(n.cache, p)
		retire(cp)
		n.stats.Invalidations++
	}
}

// NewLock implements platform.Substrate. SAN locks are implemented with
// remote atomic operations — no CPU is interrupted at any home node.
func (d *DSM) NewLock() int {
	d.lockMu.Lock()
	defer d.lockMu.Unlock()
	id := len(d.locks)
	d.locks = append(d.locks, &lockState{vl: vclock.NewVLock(), pending: notices.NewBoard()})
	return id
}

func (d *DSM) lock(id int) *lockState {
	d.lockMu.Lock()
	defer d.lockMu.Unlock()
	if id < 0 || id >= len(d.locks) {
		panic(fmt.Sprintf("hybriddsm: unknown lock %d", id))
	}
	return d.locks[id]
}

// Acquire implements platform.Substrate.
func (d *DSM) Acquire(nodeID, lock int) {
	n := d.access(nodeID)
	st := d.lock(lock)
	clk := d.clocks[nodeID]
	t0 := clk.Now()
	st.vl.Acquire(clk, d.params.SAN.SyncMsgNs, d.params.SAN.SyncMsgNs)
	n.invalidate(st.pending.Take(nodeID))
	n.stats.LockAcquires++
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(nodeID, perfmon.EvLockAcquire, t0, vclock.Since(t0, clk.Now()), uint64(lock), 0)
	}
}

// Release implements platform.Substrate.
func (d *DSM) Release(nodeID, lock int) {
	n := d.access(nodeID)
	st := d.lock(lock)
	clk := d.clocks[nodeID]
	t0 := clk.Now()
	n.storeBarrier()
	notes := n.collectNotices()
	st.pending.AddForOthers(nodeID, len(d.nodes), notes)
	if rec := d.rec; rec != nil && rec.Enabled() && len(notes) > 0 {
		rec.Record(nodeID, perfmon.EvWriteNotice, clk.Now(), 0, uint64(len(notes)), uint64(lock))
	}
	st.vl.Release(clk, d.params.SAN.SyncMsgNs)
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(nodeID, perfmon.EvLockRelease, t0, vclock.Since(t0, clk.Now()), uint64(lock), 0)
	}
}

// Barrier implements platform.Substrate.
func (d *DSM) Barrier(nodeID int) {
	n := d.access(nodeID)
	clk := d.clocks[nodeID]
	t0 := clk.Now()
	n.storeBarrier()
	epoch := n.epoch
	n.epoch++
	notes := n.collectNotices()
	d.exchange.Deposit(epoch, nodeID, notes)
	if rec := d.rec; rec != nil && rec.Enabled() && len(notes) > 0 {
		rec.Record(nodeID, perfmon.EvWriteNotice, clk.Now(), 0, uint64(len(notes)), ^uint64(0))
	}
	d.vb.Arrive(clk, d.params.SAN.SyncMsgNs, d.params.SAN.SyncMsgNs)
	n.invalidate(d.exchange.CollectOthers(epoch, nodeID))

	d.lockMu.Lock()
	locks := append([]*lockState(nil), d.locks...)
	d.lockMu.Unlock()
	for _, st := range locks {
		n.invalidate(st.pending.Take(nodeID))
	}
	n.stats.BarrierCrossings++
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(nodeID, perfmon.EvBarrier, t0, vclock.Since(t0, clk.Now()), epoch, 0)
	}
}

// Fence implements platform.Substrate: drain posted writes and drop the
// whole read cache.
func (d *DSM) Fence(nodeID int) {
	n := d.access(nodeID)
	n.storeBarrier()
	for p, cp := range n.cache {
		n.lru.remove(cp)
		delete(n.cache, p)
		retire(cp)
		n.stats.Invalidations++
	}
	for p := range n.readCount {
		delete(n.readCount, p)
	}
}

// TryAcquire implements platform.Substrate: non-blocking Acquire.
func (d *DSM) TryAcquire(nodeID, lock int) bool {
	n := d.access(nodeID)
	st := d.lock(lock)
	clk := d.clocks[nodeID]
	t0 := clk.Now()
	if !st.vl.TryAcquire(clk, d.params.SAN.SyncMsgNs, d.params.SAN.SyncMsgNs) {
		return false
	}
	n.invalidate(st.pending.Take(nodeID))
	n.stats.LockAcquires++
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(nodeID, perfmon.EvLockAcquire, t0, vclock.Since(t0, clk.Now()), uint64(lock), 0)
	}
	return true
}

// FlushInterval drains this node's posted writes and returns the
// interval's write notices — the engine-level hook for multi-DSM
// composition (§6). Call from the node's own goroutine.
func (d *DSM) FlushInterval(nodeID int) []memsim.PageID {
	n := d.access(nodeID)
	n.storeBarrier()
	return n.collectNotices()
}

// InvalidatePages drops this node's cached copies of the given pages —
// the acquire-side hook for multi-DSM composition.
func (d *DSM) InvalidatePages(nodeID int, pages []memsim.PageID) {
	d.access(nodeID).invalidate(pages)
}
