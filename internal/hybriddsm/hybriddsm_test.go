package hybriddsm

import (
	"sync"
	"testing"

	"hamster/internal/memsim"
	"hamster/internal/platform"
	"hamster/internal/vclock"
)

func newDSM(t testing.TB, nodes int) *DSM {
	t.Helper()
	d, err := New(Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func spmd(d *DSM, fn func(id int)) {
	var wg sync.WaitGroup
	for id := 0; id < d.Nodes(); id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fn(id)
		}(id)
	}
	wg.Wait()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Fatal("expected error for zero nodes")
	}
}

func TestCaps(t *testing.T) {
	d := newDSM(t, 2)
	c := d.Caps()
	if !c.RemoteAccess || c.HardwareCoherent {
		t.Fatalf("caps = %+v", c)
	}
	if d.Kind() != platform.HybridDSM {
		t.Fatal("wrong kind")
	}
}

func TestRemoteWriteIsImmediatelyAtHome(t *testing.T) {
	// The defining hybrid property: writes go straight through to the home
	// copy — no release needed for the home to see them.
	d := newDSM(t, 2)
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	d.WriteF64(1, r.Base, 13.5)
	if got := d.ReadF64(0, r.Base); got != 13.5 {
		t.Fatalf("home read = %v, want 13.5 (write-through)", got)
	}
	st := d.NodeStats(1)
	if st.RemoteWrites != 1 || st.TwinsCreated != 0 || st.DiffsCreated != 0 {
		t.Fatalf("writer stats = %+v (no twins/diffs in hybrid DSM)", st)
	}
}

func TestRemoteReadCostIsPerWord(t *testing.T) {
	d, err := New(Config{Nodes: 2, CacheThreshold: -1}) // caching off
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	before := d.Clock(1).Now()
	d.ReadF64(1, r.Base)
	cost := vclock.Duration(d.Clock(1).Now() - before)
	want := d.Params().CPU.AccessNs + d.Params().SAN.RemoteReadNs
	if cost != want {
		t.Fatalf("remote read cost = %d, want %d", cost, want)
	}
}

func TestPostedWritesCheaperThanPIO(t *testing.T) {
	posted := newDSM(t, 2)
	pio, err := New(Config{Nodes: 2, DisablePostedWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pio.Close()

	rp, _ := posted.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	rq, _ := pio.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	for i := 0; i < 100; i++ {
		posted.WriteF64(1, rp.Base+memsim.Addr(8*i), 1)
		pio.WriteF64(1, rq.Base+memsim.Addr(8*i), 1)
	}
	if posted.Clock(1).Now() >= pio.Clock(1).Now() {
		t.Fatalf("posted writes (%d) must be cheaper than PIO writes (%d)",
			posted.Clock(1).Now(), pio.Clock(1).Now())
	}
}

func TestHotPageGetsCached(t *testing.T) {
	d, err := New(Config{Nodes: 2, CacheThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	for i := 0; i < 10; i++ {
		d.ReadF64(1, r.Base+memsim.Addr(8*i))
	}
	st := d.NodeStats(1)
	if st.PageFaults != 1 {
		t.Fatalf("block transfers = %d, want 1", st.PageFaults)
	}
	// First 4 reads remote, rest from cache.
	if st.RemoteReads != 4 {
		t.Fatalf("remote reads = %d, want 4", st.RemoteReads)
	}
}

func TestCachedCopyInvalidatedAtBarrier(t *testing.T) {
	d, err := New(Config{Nodes: 2, CacheThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)

	spmd(d, func(id int) {
		if id == 1 {
			d.ReadF64(1, r.Base) // caches the page (threshold 1)
		}
		d.Barrier(id)
		if id == 0 {
			d.WriteF64(0, r.Base, 7.5)
		}
		d.Barrier(id)
		if id == 1 {
			if got := d.ReadF64(1, r.Base); got != 7.5 {
				panic("stale cached copy after barrier")
			}
		}
		d.Barrier(id)
	})
	if inv := d.NodeStats(1).Invalidations; inv != 1 {
		t.Fatalf("invalidations = %d, want 1", inv)
	}
}

func TestStaleCachedReadWithoutSync(t *testing.T) {
	// Relaxed consistency: no sync, no visibility guarantee for cached
	// copies — the reader legitimately sees the old value.
	d, err := New(Config{Nodes: 3, CacheThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	d.ReadF64(2, r.Base) // node 2 caches 0
	d.WriteF64(1, r.Base, 3.0)
	if got := d.ReadF64(2, r.Base); got != 0 {
		t.Fatalf("cached read = %v, want stale 0", got)
	}
}

func TestOwnWritesUpdateOwnCache(t *testing.T) {
	d, err := New(Config{Nodes: 2, CacheThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	d.ReadF64(1, r.Base) // cache it
	d.WriteF64(1, r.Base, 5.5)
	if got := d.ReadF64(1, r.Base); got != 5.5 {
		t.Fatalf("own cached read after own write = %v, want 5.5", got)
	}
}

func TestLockTransfersScope(t *testing.T) {
	d, err := New(Config{Nodes: 2, CacheThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	l := d.NewLock()

	d.ReadF64(1, r.Base) // node 1 caches 0

	d.Acquire(0, l)
	d.WriteF64(0, r.Base, 2.25)
	d.Release(0, l)

	d.Acquire(1, l)
	if got := d.ReadF64(1, r.Base); got != 2.25 {
		t.Fatalf("read after acquire = %v, want 2.25", got)
	}
	d.Release(1, l)
}

func TestLockCounterMutualExclusion(t *testing.T) {
	d := newDSM(t, 4)
	r, _ := d.Alloc(memsim.PageSize, "counter", memsim.Fixed, 0)
	l := d.NewLock()
	const perNode = 25
	spmd(d, func(id int) {
		for i := 0; i < perNode; i++ {
			d.Acquire(id, l)
			d.WriteI64(id, r.Base, d.ReadI64(id, r.Base)+1)
			d.Release(id, l)
		}
		d.Barrier(id)
	})
	if got := d.ReadI64(0, r.Base); got != 4*perNode {
		t.Fatalf("counter = %d, want %d", got, 4*perNode)
	}
}

func TestSyncMuchCheaperThanSWDSM(t *testing.T) {
	// The hybrid's sync tokens ride on remote writes (~µs), not Ethernet
	// messages (~100µs): a lock round trip must cost well under 100µs.
	d := newDSM(t, 2)
	l := d.NewLock()
	before := d.Clock(1).Now()
	d.Acquire(1, l)
	d.Release(1, l)
	cost := vclock.Duration(d.Clock(1).Now() - before)
	if cost > 50_000 {
		t.Fatalf("hybrid lock round trip = %v, want < 50µs", cost)
	}
}

func TestReadWriteBytesCrossPage(t *testing.T) {
	d := newDSM(t, 2)
	r, _ := d.Alloc(2*memsim.PageSize, "span", memsim.Fixed, 0)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(200 - i)
	}
	start := r.Base + memsim.Addr(memsim.PageSize-32)
	d.WriteBytes(1, start, data)
	buf := make([]byte, 64)
	d.ReadBytes(0, start, buf)
	for i := range buf {
		if buf[i] != byte(200-i) {
			t.Fatalf("byte %d = %d", i, buf[i])
		}
	}
}

func TestStoreBarrierChargedOncePerDrain(t *testing.T) {
	d := newDSM(t, 2)
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	l := d.NewLock()
	d.Acquire(1, l)
	for i := 0; i < 10; i++ {
		d.WriteF64(1, r.Base+memsim.Addr(8*i), 1)
	}
	before := d.Clock(1).Now()
	d.Release(1, l)
	relCost := vclock.Duration(d.Clock(1).Now() - before)
	// Release = store barrier + sync message, both µs-scale.
	max := d.Params().SAN.StoreBarrierNs + d.Params().SAN.SyncMsgNs + 1000
	if relCost > max {
		t.Fatalf("release cost = %v, want <= %v", relCost, max)
	}
}

func TestFirstTouch(t *testing.T) {
	d := newDSM(t, 2)
	r, _ := d.Alloc(memsim.PageSize, "ft", memsim.FirstTouch, 0)
	d.WriteF64(1, r.Base, 1)
	if h := d.Space().Home(memsim.PageOf(r.Base)); h != 1 {
		t.Fatalf("home = %d, want 1", h)
	}
	if d.NodeStats(1).RemoteWrites != 0 {
		t.Fatal("first-touch write must be local")
	}
}

func TestCacheEviction(t *testing.T) {
	d, err := New(Config{Nodes: 2, CacheThreshold: 1, CachePages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r, _ := d.Alloc(8*memsim.PageSize, "big", memsim.Fixed, 0)
	for p := 0; p < 8; p++ {
		d.ReadF64(1, r.Base+memsim.Addr(p*memsim.PageSize))
	}
	st := d.NodeStats(1)
	if st.Evictions < 6 {
		t.Fatalf("evictions = %d, want >= 6", st.Evictions)
	}
}

func TestBarrierReconcilesClocks(t *testing.T) {
	d := newDSM(t, 4)
	spmd(d, func(id int) {
		d.Clock(id).Advance(vclock.Duration(id) * 500_000)
		d.Barrier(id)
	})
	max := d.Clock(3).Now()
	for id := 0; id < 4; id++ {
		if d.Clock(id).Now() < max-vclock.Time(2*d.Params().SAN.SyncMsgNs) {
			t.Fatalf("node %d clock %v too far behind %v", id, d.Clock(id).Now(), max)
		}
	}
}

func TestFenceDropsCache(t *testing.T) {
	d, err := New(Config{Nodes: 2, CacheThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	d.ReadF64(1, r.Base) // cached
	d.WriteF64(0, r.Base, 4.0)
	d.Fence(1)
	if got := d.ReadF64(1, r.Base); got != 4.0 {
		t.Fatalf("read after fence = %v, want 4.0", got)
	}
}

func BenchmarkRemoteRead(b *testing.B) {
	d, _ := New(Config{Nodes: 2, CacheThreshold: -1})
	defer d.Close()
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ReadF64(1, r.Base)
	}
}

func BenchmarkPostedRemoteWrite(b *testing.B) {
	d, _ := New(Config{Nodes: 2})
	defer d.Close()
	r, _ := d.Alloc(memsim.PageSize, "x", memsim.Fixed, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteF64(1, r.Base, 1)
	}
}
