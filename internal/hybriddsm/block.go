package hybriddsm

import (
	"hamster/internal/memsim"
	"hamster/internal/perfmon"
	"hamster/internal/vclock"
)

// Block accessors: the bulk fast path of platform.Substrate. Each maximal
// within-page run resolves the page's home ONCE and charges the clock in
// ONE batched Advance, but the charged amounts, counters, and protocol
// state transitions are word-for-word identical to the per-word loop —
// including the read-caching threshold: a run that crosses the threshold
// mid-way pays per-word PIO cost up to the trigger, then the block fetch,
// then cache-hit cost for the remainder, exactly as N readWord calls
// would.

// readRun performs one within-page run of count words; get copies count
// words out of a frame starting at byte offset off.
func (n *node) readRun(p memsim.PageID, off, count int, get func(fr []byte)) {
	d := n.dsm
	clk := d.clocks[n.id]
	home := n.homeOf(p)

	if home == n.id {
		clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*vclock.Duration(count))
		n.stats.Reads += uint64(count)
		n.touchLocal(p)
		hp := n.home.Frame(p)
		hp.Mu.Lock()
		get(hp.Data)
		hp.Mu.Unlock()
		return
	}
	if cp, ok := n.cache[p]; ok {
		clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*vclock.Duration(count))
		n.stats.Reads += uint64(count)
		n.touchLocal(p)
		n.lru.moveToFront(cp)
		get(cp.data)
		return
	}

	// Uncached remote run. The first `pio` words are PIO loads over the
	// SAN; if they push the page's read count to the caching threshold the
	// page is fetched in one block transfer and the remaining words are
	// local cache hits — the same state machine readWord steps through.
	pio := count
	caches := false
	if d.threshold > 0 {
		if left := d.threshold - n.readCount[p]; left <= count {
			pio = left
			caches = true
		}
	}
	clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*vclock.Duration(pio))
	clk.AdvanceCat(vclock.CatNetwork, d.params.SAN.RemoteReadNs*vclock.Duration(pio))
	n.stats.Reads += uint64(pio)
	n.stats.RemoteReads += uint64(pio)
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(n.id, perfmon.EvRemoteRead, clk.Now(), 0, uint64(p), uint64(pio))
	}

	hf := d.nodes[home].home.Frame(p)
	hf.Mu.Lock()
	get(hf.Data)
	if !caches {
		if d.threshold > 0 {
			n.readCount[p] += pio
		}
		hf.Mu.Unlock()
		return
	}
	// Threshold reached: install the page (the readCount bookkeeping and
	// eviction mirror maybeCache) and serve the rest from the cache.
	t0 := clk.Now()
	clk.AdvanceCat(vclock.CatNetwork, d.params.SAN.PageFetchNs)
	clk.AdvanceCat(vclock.CatMemory, d.params.CPU.PageCopyNs)
	cp := cpagePool.Get().(*cpage)
	cp.data = getPage()
	copy(cp.data, hf.Data)
	hf.Mu.Unlock()
	cp.page = p
	n.lru.pushFront(cp)
	n.cache[p] = cp
	n.stats.PageFaults++
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(n.id, perfmon.EvPageFault, t0, vclock.Since(t0, clk.Now()), uint64(p), uint64(home))
	}
	delete(n.readCount, p)
	for len(n.cache) > d.cacheCap {
		victim := n.lru.tail
		n.lru.remove(victim)
		delete(n.cache, victim.page)
		retire(victim)
		n.stats.Evictions++
	}
	if rest := count - pio; rest > 0 {
		clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*vclock.Duration(rest))
		n.stats.Reads += uint64(rest)
		n.touchLocal(p)
	}
}

// writeRun performs one within-page run of count words; put copies count
// words into a frame starting at byte offset off.
func (n *node) writeRun(p memsim.PageID, off, count int, put func(fr []byte)) {
	d := n.dsm
	clk := d.clocks[n.id]
	clk.AdvanceCat(vclock.CatMemory, d.params.CPU.AccessNs*vclock.Duration(count))
	n.stats.Writes += uint64(count)
	n.written[p] = struct{}{}
	home := n.homeOf(p)

	if home == n.id {
		n.touchLocal(p)
		hp := n.home.Frame(p)
		hp.Mu.Lock()
		put(hp.Data)
		hp.Mu.Unlock()
		return
	}
	if d.posted {
		clk.AdvanceCat(vclock.CatNetwork, d.params.SAN.RemoteWriteNs*vclock.Duration(count))
		n.postedOut += count
	} else {
		clk.AdvanceCat(vclock.CatNetwork, d.params.SAN.RemoteReadNs*vclock.Duration(count))
	}
	n.stats.RemoteWrites += uint64(count)
	if rec := d.rec; rec != nil && rec.Enabled() {
		rec.Record(n.id, perfmon.EvRemoteWrite, clk.Now(), 0, uint64(p), uint64(count))
	}
	hf := d.nodes[home].home.Frame(p)
	hf.Mu.Lock()
	put(hf.Data)
	hf.Mu.Unlock()
	if cp, ok := n.cache[p]; ok {
		put(cp.data)
	}
}

// ReadF64Block implements platform.Substrate.
func (d *DSM) ReadF64Block(nodeID int, a memsim.Addr, dst []float64) {
	n := d.access(nodeID)
	n.stats.BlockReads++
	memsim.WordRuns(a, len(dst), func(p memsim.PageID, off, count int) {
		out := dst[:count]
		n.readRun(p, off, count, func(fr []byte) { memsim.GetF64Slice(fr, off, out) })
		dst = dst[count:]
	})
}

// WriteF64Block implements platform.Substrate.
func (d *DSM) WriteF64Block(nodeID int, a memsim.Addr, src []float64) {
	n := d.access(nodeID)
	n.stats.BlockWrites++
	memsim.WordRuns(a, len(src), func(p memsim.PageID, off, count int) {
		in := src[:count]
		n.writeRun(p, off, count, func(fr []byte) { memsim.PutF64Slice(fr, off, in) })
		src = src[count:]
	})
}

// ReadI64Block implements platform.Substrate.
func (d *DSM) ReadI64Block(nodeID int, a memsim.Addr, dst []int64) {
	n := d.access(nodeID)
	n.stats.BlockReads++
	memsim.WordRuns(a, len(dst), func(p memsim.PageID, off, count int) {
		out := dst[:count]
		n.readRun(p, off, count, func(fr []byte) { memsim.GetI64Slice(fr, off, out) })
		dst = dst[count:]
	})
}

// WriteI64Block implements platform.Substrate.
func (d *DSM) WriteI64Block(nodeID int, a memsim.Addr, src []int64) {
	n := d.access(nodeID)
	n.stats.BlockWrites++
	memsim.WordRuns(a, len(src), func(p memsim.PageID, off, count int) {
		in := src[:count]
		n.writeRun(p, off, count, func(fr []byte) { memsim.PutI64Slice(fr, off, in) })
		src = src[count:]
	})
}
