package vclock

// Conservative parallel intra-cell execution (ROADMAP item 2, second
// half): the lookahead engine that lets one simulation's node goroutines
// run on real cores without ever observing a message out of virtual
// order.
//
// The free-running scheduler (the sequential reference path) lets every
// node goroutine execute at host speed and relies on protocol discipline
// — unique receive filters, quiescent-instant reconciliation — to keep
// results schedule-independent. The Engine makes that safety structural,
// in the style of Chandy–Misra–Bryant conservative discrete-event
// simulation: a receiver may consume a queued message stamped with
// virtual arrival T only when no peer can still produce a message that
// would arrive before T. The proof obligation is a lower bound on every
// peer's next-send time:
//
//   - A running node p's clock only moves forward, and a send stamps its
//     departure at or after the sender's current clock, so any future
//     message from p arrives no earlier than clock(p) + lookahead(p→r),
//     where lookahead is the minimum virtual wire latency from p to r —
//     topology-aware: a rack-local peer gives a tighter horizon than a
//     cross-pod one. The lookahead deliberately EXCLUDES the sender-side
//     software cost: a message already charged but not yet enqueued (in
//     flight inside Send) has its software cost spent, so only the wire
//     latency still separates the sender's visible clock from the
//     arrival stamp.
//
//   - A node blocked in a queued receive cannot send until it consumes a
//     message, and consuming advances its clock to at least the consumed
//     arrival. Its next-send bound is therefore the earliest arrival it
//     could consume: the minimum over its queued messages and over what
//     its peers could still send it — a recursive bound the engine
//     resolves with a Dijkstra pass over activation times (lookahead
//     edges are non-negative, so finalizing nodes in increasing
//     activation order is exact). This is what replaces CMB null
//     messages: an idle worker that finished early does not block the
//     cluster's horizon forever, because its activation is provably in
//     the future of whatever would have to wake it.
//
//   - Nodes blocked in virtual-time synchronization (barriers, locks)
//     are treated as running: their frozen clock is a sound — merely
//     loose — bound, since every primitive reconciles a waiter's clock
//     past the release time before it can issue another send.
//
//   - A fail-stopped node no longer bounds anyone: the fault plan eats
//     everything it sends, so MarkDown lifts it out of the horizon.
//
// Equal arrivals need no special case: per-receiver sequence numbers
// break ties, and a message still in the future always enqueues with a
// larger sequence number than anything already queued, so delivering a
// queued message at exactly its horizon is safe.
//
// The engine never touches a clock: gating delays host-time delivery
// decisions, not virtual charges, so a gated run's virtual times,
// checksums, statistics, and event streams are identical to the
// sequential reference schedule (pinned by internal/bench's pnodes
// identity gates).
//
// Liveness does not depend on instrumenting every clock advance (which
// would put a hook on the hottest paths in the simulator): senders kick
// the engine when they enqueue, and a low-frequency ticker re-evaluates
// blocked horizons so progress made through non-kicking paths (barrier
// releases, stolen handler charges) is observed promptly. Host-time
// wake-up latency never affects results — the safety predicate is
// monotone in the clocks, so once a delivery becomes safe it stays safe
// and the chosen message is a pure function of virtual state.

import (
	"fmt"
	"sync"
	"time"
)

// gateTick is the host-time period at which blocked horizon waiters
// re-evaluate their bounds when no sender kick arrives. Purely a
// liveness knob: results never depend on it.
const gateTick = 100 * time.Microsecond

// infTime is the "never" activation bound.
const infTime = ^uint64(0)

// Engine tracks one simulation's node clocks and computes conservative
// delivery horizons. One Engine gates one message fabric; the network
// drives it through the Gate* session API (see internal/simnet).
type Engine struct {
	mu   sync.Mutex
	cond *sync.Cond

	clocks []*Clock
	// la[p][r] is the lookahead: a lower bound on the virtual latency of
	// any not-yet-enqueued message from p to r (wire latency plus
	// topology hop penalty; no software costs, see the package comment).
	la [][]Duration
	// queueMin reports the earliest queued arrival at a node (ok=false
	// when its queue holds nothing). Called with the engine lock held,
	// for ANY node — including one whose own receive is being gated — so
	// the implementation must be lock-free with respect to both the
	// engine and the queues (simnet keeps a per-endpoint atomic).
	queueMin func(node int) (Time, bool)
	// laPos records that every off-diagonal lookahead is strictly
	// positive — the precondition of GateSafe's exactness shortcut.
	laPos bool
	// laUniform records that every off-diagonal lookahead equals la0 —
	// true for any flat topology — which collapses the activation
	// Dijkstra to a closed form (see allBoundsUniformLocked).
	laUniform bool
	la0       Duration

	recvWait []bool // node is blocked in a queued receive
	down     []bool // node is fail-stopped; no longer bounds horizons
	retired  []bool // node's program returned; it will never send again

	waiters int
	ticking bool

	// epoch versions the loosening side of the engine state: sends,
	// receive-wait transitions, down/retired marks, and ticker passes
	// (which stand in for untracked clock progress) bump it. cacheVal is
	// the shared inclusive activation vector (no self-exclusion, see
	// GateSafe) computed at cacheEpoch. Every cached entry is a sound
	// lower bound on that node's next send FOREVER, not just for its
	// epoch: clocks are monotone, a receive-waiting node consumes a
	// message at or after the activation that the vector advertised
	// before it can send, and down marks are permanent. A stale vector is
	// therefore only ever too tight — GateSafe may pass on it without
	// recomputing, and recomputes lazily only when a stale test fails.
	// The one transition that TIGHTENS state — un-retiring a node when a
	// new run starts — zeroes the vector outright (zero lower-bounds
	// everything) instead of relying on the epoch.
	epoch      uint64
	cacheEpoch uint64
	cacheVal   []uint64

	// Dijkstra scratch, reused under mu so horizon evaluation allocates
	// nothing in steady state. snap holds one coherent clock snapshot per
	// pass: an atomic clock read per relaxation edge would dominate the
	// pass, and an older value is merely a looser sound bound.
	val  []uint64
	done []bool
	snap []uint64
}

// NewEngine creates an engine over the given clocks with the given
// lookahead matrix. la[p][r] must lower-bound the wire latency of any
// future message p→r; la[p][p] is ignored.
func NewEngine(clocks []*Clock, la [][]Duration) *Engine {
	n := len(clocks)
	if len(la) != n {
		panic(fmt.Sprintf("vclock: lookahead matrix is %dx, cluster size %d", len(la), n))
	}
	for i, row := range la {
		if len(row) != n {
			panic(fmt.Sprintf("vclock: lookahead row %d has %d entries, cluster size %d", i, len(row), n))
		}
	}
	e := &Engine{
		clocks:   clocks,
		la:       la,
		laPos:    true,
		recvWait: make([]bool, n),
		down:     make([]bool, n),
		retired:  make([]bool, n),
		epoch:    1, // cacheEpoch 0 => first GateSafe computes the vector
		cacheVal: make([]uint64, n),
		val:      make([]uint64, n),
		done:     make([]bool, n),
		snap:     make([]uint64, n),
	}
	e.laUniform = true
	first := true
	for p := range la {
		for r, d := range la[p] {
			if p == r {
				continue
			}
			if d <= 0 {
				e.laPos = false
			}
			if first {
				e.la0, first = d, false
			} else if d != e.la0 {
				e.laUniform = false
			}
		}
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// SetQueueMin installs the pending-queue probe (see the field). Must be
// called before any gated traffic.
func (e *Engine) SetQueueMin(fn func(node int) (Time, bool)) {
	e.mu.Lock()
	e.queueMin = fn
	e.mu.Unlock()
}

// Nodes returns the cluster size the engine tracks.
func (e *Engine) Nodes() int { return len(e.clocks) }

// GateBegin enters a gated delivery session: it acquires the engine
// lock, under which the caller may scan its queue, evaluate GateSafe,
// and sleep with GateWait. Lock ordering is engine → queue: queue locks
// are only ever taken with the engine lock already held (or with no
// engine involvement at all, on the sender's enqueue path).
func (e *Engine) GateBegin() { e.mu.Lock() }

// GateEnd leaves the session.
func (e *Engine) GateEnd() { e.mu.Unlock() }

// GateSafe reports whether a message with virtual arrival t may be
// delivered to node self: no peer can still produce an earlier arrival.
// Requires GateBegin. The caller may hold self's queue lock; the
// engine probes only OTHER nodes' queues.
func (e *Engine) GateSafe(self int, t Time) bool {
	// Fast path: every peer's live clock already guarantees t.
	safe := true
	for p := range e.clocks {
		if p == self || e.down[p] || e.retired[p] {
			continue
		}
		if satAdd(uint64(e.clocks[p].Now()), uint64(e.la[p][self])) < uint64(t) {
			safe = false
			break
		}
	}
	if safe {
		return true
	}
	// Shared bound: one INCLUSIVE activation vector (no self-exclusion)
	// serves every receiver, so a broadcast that wakes all waiters costs
	// at most one Dijkstra pass total instead of one per waiter — the
	// difference between O(n^2) and O(n^3) work per send at cluster
	// scale. Inclusion only lowers entries (an extra relaxation source
	// never raises a shortest activation), so val_incl <= val_excl
	// pointwise and a passing inclusive test is sound. The cached vector
	// is tried even when stale — stale entries are only too tight (see
	// the field comment) — and recomputed lazily only when the stale test
	// fails with loosening epochs unseen.
	if e.cacheBoundLocked(self) >= uint64(t) {
		return true
	}
	if e.cacheEpoch != e.epoch {
		e.allBoundsLocked()
		e.cacheEpoch = e.epoch
		if e.cacheBoundLocked(self) >= uint64(t) {
			return true
		}
	}
	// Exactness shortcut: when self is receive-waiting with earliest
	// queued arrival >= t and every lookahead is strictly positive, an
	// inclusive failure is also an exact failure, so the per-self
	// Dijkstra below can be skipped. Proof sketch: order the relaxations
	// that produced the failing witness val_incl[p*] + la[p*][self] < t.
	// If the witness chain passes through self, self was activated either
	// by its own queue (>= t, so every downstream value is >= t + la > t
	// — it cannot be the failing witness) or by some peer q with
	// val[q] + la[q][self] < its activation; but q also bounds self
	// DIRECTLY by val[q] + la[q][self], a self-free witness that is no
	// larger (relaxation floors are monotone: lowering a value at any
	// stage never raises a later one). Induction yields a self-free
	// failing witness, which evaluates identically in the exclusive
	// graph — so boundLocked(self) < t too. (Clock progress since the
	// vector's epoch can make this verdict conservatively early; the
	// ticker's next epoch bump refreshes it, and results never depend on
	// wake-up timing.)
	if e.laPos && e.recvWait[self] && e.queueMin != nil {
		if qm, ok := e.queueMin(self); ok && uint64(qm) >= uint64(t) {
			return false
		}
	}
	return e.boundLocked(self) >= uint64(t)
}

// GateRecvWait marks self as blocked in a queued receive: it will not
// send until it consumes a message, which peers' horizon bounds may
// exploit. A blocked node's bound is never tighter than its running
// bound, so the transition can only unblock peers — hence the
// broadcast. Requires GateBegin.
func (e *Engine) GateRecvWait(self int) {
	e.recvWait[self] = true
	e.epoch++
	e.cond.Broadcast()
}

// GateRun clears the receive-wait mark. Requires GateBegin. Must be
// called before the delivery's clock charges are applied, so the
// running state (a plain clock lower bound) is in force whenever the
// node's clock can move. It does NOT bump the epoch: the node consumes
// a message whose arrival is at or past the activation that the cached
// vector advertised for it, and its clock then moves to at least that
// arrival — so the stale cached entry stays a sound lower bound on its
// next send.
func (e *Engine) GateRun(self int) { e.recvWait[self] = false }

// GateWait blocks until a kick or the liveness ticker fires, releasing
// the engine lock while asleep. Requires GateBegin.
func (e *Engine) GateWait() {
	e.waiters++
	if !e.ticking {
		e.ticking = true
		go e.tickLoop()
	}
	e.cond.Wait()
	e.waiters--
}

// Kick wakes all gated waiters to re-evaluate their horizons. Senders
// call it after enqueuing; it must never be called while holding a
// queue lock. The epoch bumps even when nobody waits, so the next
// evaluation sees the sender's clock progress.
func (e *Engine) Kick() {
	e.mu.Lock()
	e.epoch++
	if e.waiters > 0 {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// MarkDown removes a fail-stopped node from every horizon: the fault
// plan loses everything the node sends from its crash point on, so its
// frozen clock must not hold back the survivors. Fail-stop is permanent
// for a run.
func (e *Engine) MarkDown(node int) {
	e.mu.Lock()
	e.down[node] = true
	e.epoch++
	e.cond.Broadcast()
	e.mu.Unlock()
}

// SetRetired marks (or unmarks) a node whose program has returned: it
// will never send again, so — like a down node — its frozen clock stops
// bounding peers' horizons. Without this, the last message a node sends
// before finishing could never clear the horizon (the finished sender's
// clock would sit forever short of the arrival stamp) and late receivers
// would deadlock. The runtime retires each node as its SPMD function
// returns and un-retires everyone when a new run starts.
func (e *Engine) SetRetired(node int, v bool) {
	e.mu.Lock()
	e.retired[node] = v
	e.epoch++
	if v {
		e.cond.Broadcast()
	} else {
		// Un-retiring (a new run starting) is the one transition that
		// TIGHTENS state, and GateSafe consults the cached vector even
		// when stale — so the epoch bump is not enough: zero the vector
		// outright. Zero lower-bounds every future send, so the wiped
		// cache is universally sound until the next recompute.
		for i := range e.cacheVal {
			e.cacheVal[i] = 0
		}
	}
	e.mu.Unlock()
}

// Horizon returns the current conservative bound on the earliest
// arrival any peer could still produce at node self (for monitoring and
// tests; infTime-capped saturating arithmetic).
func (e *Engine) Horizon(self int) Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Time(e.boundLocked(self))
}

// tickLoop is the liveness ticker: while any waiter is blocked it
// re-broadcasts at gateTick so horizon progress made without a sender
// kick (barrier releases, stolen charges) is observed. Exits as soon as
// nobody waits; restarted lazily by the next GateWait.
func (e *Engine) tickLoop() {
	for {
		time.Sleep(gateTick)
		e.mu.Lock()
		if e.waiters == 0 {
			e.ticking = false
			e.mu.Unlock()
			return
		}
		e.epoch++ // clocks may have moved through non-kicking paths
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// boundLocked computes a lower bound on the earliest virtual arrival of
// any not-yet-queued message at node self. Requires mu.
//
// val[p] is a lower bound on node p's next-send time: a running node's
// clock (final immediately), or, for a node blocked in a queued
// receive, its activation time — the earliest arrival it could consume,
// resolved by a Dijkstra pass because activations feed each other
// through non-negative lookahead edges. self never contributes: its own
// next send happens only after this delivery completes, and anything it
// influences transitively arrives strictly later than the candidate.
func (e *Engine) boundLocked(self int) uint64 {
	n := len(e.clocks)
	val, done := e.val, e.done
	e.snapClocksLocked()
	for p := 0; p < n; p++ {
		if p == self || e.down[p] || e.retired[p] {
			val[p], done[p] = infTime, true
			continue
		}
		c := e.snap[p]
		if !e.recvWait[p] {
			val[p], done[p] = c, true
			continue
		}
		// Blocked receiver: tentative activation from its own queue;
		// peer contributions are relaxed in below.
		act := infTime
		if e.queueMin != nil {
			if t, ok := e.queueMin(p); ok {
				act = uint64(t)
			}
		}
		val[p], done[p] = maxU64(c, act), false
	}
	// Relax finalized senders into tentative receivers, then finalize in
	// increasing activation order (Dijkstra; edges la >= 0).
	for p := 0; p < n; p++ {
		if !done[p] || val[p] == infTime {
			continue
		}
		e.relaxLocked(val, done, p)
	}
	for {
		best, bestV := -1, infTime
		for p := 0; p < n; p++ {
			if !done[p] && val[p] < bestV {
				best, bestV = p, val[p]
			}
		}
		if best < 0 {
			break
		}
		done[best] = true
		e.relaxLocked(val, done, best)
	}
	bound := infTime
	for p := 0; p < n; p++ {
		if p == self || e.down[p] || e.retired[p] {
			continue
		}
		if b := satAdd(val[p], uint64(e.la[p][self])); b < bound {
			bound = b
		}
	}
	return bound
}

// cacheBoundLocked folds the cached inclusive vector into a delivery
// bound for node self. Requires mu.
func (e *Engine) cacheBoundLocked(self int) uint64 {
	bound := infTime
	for p := range e.clocks {
		if p == self || e.down[p] || e.retired[p] {
			continue
		}
		if b := satAdd(e.cacheVal[p], uint64(e.la[p][self])); b < bound {
			bound = b
		}
	}
	return bound
}

// allBoundsLocked computes the shared inclusive activation vector into
// cacheVal: the same Dijkstra pass as boundLocked but with no excluded
// node, so one result serves every receiver for the current epoch.
// Requires mu.
func (e *Engine) allBoundsLocked() {
	if e.laUniform {
		e.allBoundsUniformLocked()
		return
	}
	e.allBoundsGenericLocked()
}

// allBoundsUniformLocked is the closed form of the inclusive activation
// vector for a uniform lookahead matrix (every off-diagonal entry la0 —
// any flat topology). On a complete graph with one edge weight, a chain
// of two or more hops costs at least 2*la0 past its source, so the only
// relaxation that can ever win is one hop from the globally minimal
// activation m1: val[r] = min(init[r], max(clock_r, m1+la0)). (The m1
// holder itself cannot be lowered — every source is >= m1.) That turns
// the O(n^2) Dijkstra into two O(n) sweeps, which is what keeps the
// recompute affordable at the epoch rates a busy messaging phase
// generates. Requires mu.
func (e *Engine) allBoundsUniformLocked() {
	n := len(e.clocks)
	val := e.cacheVal
	e.snapClocksLocked()
	m1 := infTime
	for p := 0; p < n; p++ {
		if e.down[p] || e.retired[p] {
			val[p] = infTime
			continue
		}
		c := e.snap[p]
		if !e.recvWait[p] {
			val[p] = c
		} else {
			act := infTime
			if e.queueMin != nil {
				if t, ok := e.queueMin(p); ok {
					act = uint64(t)
				}
			}
			val[p] = maxU64(c, act)
		}
		if val[p] < m1 {
			m1 = val[p]
		}
	}
	relaxed := satAdd(m1, uint64(e.la0))
	for p := 0; p < n; p++ {
		if e.down[p] || e.retired[p] || !e.recvWait[p] {
			continue
		}
		if r := maxU64(e.snap[p], relaxed); r < val[p] {
			val[p] = r
		}
	}
}

// allBoundsGenericLocked is the exact Dijkstra pass for an arbitrary
// lookahead matrix. Requires mu.
func (e *Engine) allBoundsGenericLocked() {
	n := len(e.clocks)
	val, done := e.cacheVal, e.done
	e.snapClocksLocked()
	for p := 0; p < n; p++ {
		if e.down[p] || e.retired[p] {
			val[p], done[p] = infTime, true
			continue
		}
		c := e.snap[p]
		if !e.recvWait[p] {
			val[p], done[p] = c, true
			continue
		}
		act := infTime
		if e.queueMin != nil {
			if t, ok := e.queueMin(p); ok {
				act = uint64(t)
			}
		}
		val[p], done[p] = maxU64(c, act), false
	}
	for p := 0; p < n; p++ {
		if !done[p] || val[p] == infTime {
			continue
		}
		e.relaxLocked(val, done, p)
	}
	for {
		best, bestV := -1, infTime
		for p := 0; p < n; p++ {
			if !done[p] && val[p] < bestV {
				best, bestV = p, val[p]
			}
		}
		if best < 0 {
			break
		}
		done[best] = true
		e.relaxLocked(val, done, best)
	}
}

// relaxLocked lowers tentative activations reachable from the finalized
// node p: a send leaving p at val[p] can wake receiver q no earlier
// than val[p] + la[p][q], floored at q's own clock (from the pass's
// snapshot — an older clock is merely a looser sound floor).
func (e *Engine) relaxLocked(val []uint64, done []bool, p int) {
	for q := range e.clocks {
		if done[q] {
			continue
		}
		cand := maxU64(e.snap[q], satAdd(val[p], uint64(e.la[p][q])))
		if cand < val[q] {
			val[q] = cand
		}
	}
}

// snapClocksLocked takes one coherent clock snapshot for a Dijkstra
// pass. Requires mu.
func (e *Engine) snapClocksLocked() {
	for p, c := range e.clocks {
		e.snap[p] = uint64(c.Now())
	}
}

// satAdd adds with saturation at infTime.
func satAdd(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return infTime
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
