// Package vclock implements the virtual-time engine that underlies every
// simulated platform in this repository.
//
// The reproduction runs a whole "cluster" inside one process: each simulated
// node is a goroutine, and instead of measuring wall-clock time each node
// carries a Clock that is advanced explicitly by modeled costs (CPU work,
// memory accesses, network latencies). Synchronization constructs reconcile
// clocks so that causality is preserved conservatively: a clock only ever
// moves forward, and an event that depends on another event can never be
// stamped before it.
//
// Two kinds of charges exist:
//
//   - Owner charges (Advance, AdvanceTo): applied by the node's own
//     goroutine as it executes simulated work.
//   - Stolen charges (Steal): applied asynchronously by protocol handlers
//     that run on behalf of the node (for example, a DSM home node servicing
//     a page fault for a remote node is interrupted; the handler cost is
//     charged to the home node without blocking its goroutine).
//
// Stolen charges model the SIGIO-style interrupt handling of classic
// software DSM systems such as JiaJia: the serving node keeps computing, but
// its total virtual time grows by the handler cost.
package vclock

import (
	"fmt"
	"sync/atomic"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time uint64

// Duration is a span of virtual time in nanoseconds.
type Duration uint64

// Category classifies where a clock charge came from, for the
// performance-monitoring service (§4.3, internal/perfmon). Attribution is
// pure bookkeeping on the side of the clock: tagging a charge never
// changes its amount, so virtual times are bit-identical whether or not
// anyone ever reads a breakdown.
//
// The attribution convention used throughout the substrates:
//
//   - Compute: modeled CPU work (flops), middleware dispatch, and any
//     untagged legacy charge.
//   - Memory: local memory-system costs — per-word access charges, CPU
//     cache-miss DRAM penalties, and page/twin copies performed by the
//     local CPU.
//   - Protocol: consistency and synchronization work — lock/barrier
//     costs and waits, diff scans, write-notice bookkeeping, and the
//     service time of protocol handlers absorbed into a caller's
//     timeline.
//   - Network: wire costs — send/receive software, latency, payload
//     serialization, SAN remote accesses, page fetch transfers, and
//     waits for message arrival. Piggybacked payloads (data riding a
//     message the protocol sends anyway, e.g. write notices on a lock
//     grant under aggregation) charge only their serialization bytes
//     here — the carrying message's software overhead is charged once,
//     by whoever accounts the message itself.
//   - Stolen: asynchronous handler cycles charged by other nodes
//     (Clock.Steal); always its own bucket.
type Category uint8

// The attribution categories. CatStolen is not a local category: stolen
// charges arrive via Steal and are accounted separately.
const (
	CatCompute Category = iota
	CatMemory
	CatProtocol
	CatNetwork
	localCategories // number of owner-charge buckets
	CatStolen       = localCategories
	// NumCategories counts all categories including CatStolen.
	NumCategories = int(localCategories) + 1
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatCompute:
		return "compute"
	case CatMemory:
		return "memory"
	case CatProtocol:
		return "protocol"
	case CatNetwork:
		return "network"
	case CatStolen:
		return "stolen"
	default:
		return "unknown"
	}
}

// Breakdown is a per-category snapshot of one clock's accumulated time.
// At quiescence Total() equals the clock's Now() exactly — the invariant
// internal/perfmon's attribution test enforces on every substrate.
type Breakdown struct {
	Compute  Duration
	Memory   Duration
	Protocol Duration
	Network  Duration
	Stolen   Duration
}

// Total sums all categories.
func (b Breakdown) Total() Duration {
	return b.Compute + b.Memory + b.Protocol + b.Network + b.Stolen
}

// Get returns one category's value.
func (b Breakdown) Get(c Category) Duration {
	switch c {
	case CatCompute:
		return b.Compute
	case CatMemory:
		return b.Memory
	case CatProtocol:
		return b.Protocol
	case CatNetwork:
		return b.Network
	case CatStolen:
		return b.Stolen
	default:
		return 0
	}
}

// Add returns the field-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Compute:  b.Compute + o.Compute,
		Memory:   b.Memory + o.Memory,
		Protocol: b.Protocol + o.Protocol,
		Network:  b.Network + o.Network,
		Stolen:   b.Stolen + o.Stolen,
	}
}

// String formats a virtual time using the most natural unit.
func (t Time) String() string { return Duration(t).String() }

// String formats a duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= 1e9:
		return fmt.Sprintf("%.3fs", float64(d)/1e9)
	case d >= 1e6:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	case d >= 1e3:
		return fmt.Sprintf("%.3fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%dns", uint64(d))
	}
}

// Seconds returns the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros returns the duration in microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Clock is a per-node virtual clock.
//
// All methods are safe for concurrent use. Several tasks time-sharing one
// node (thread programming models forward calls between nodes) may charge
// the same clock: their Advance calls accumulate, which is exactly the
// behavior of work serializing on one CPU.
type Clock struct {
	local  atomic.Uint64 // accumulated execution charges
	stolen atomic.Uint64 // asynchronous protocol-handler charges

	// cats splits local into attribution buckets. Every mutation of
	// local pairs with exactly one cats add of the same amount, so at
	// quiescence sum(cats) == local exactly. The buckets never feed back
	// into Now(): attribution cannot perturb the cost model.
	cats [localCategories]atomic.Uint64
}

// Now returns the node's current virtual time, including stolen cycles.
func (c *Clock) Now() Time {
	return Time(c.local.Load() + c.stolen.Load())
}

// Advance moves the clock forward by d, attributed to CatCompute (the
// default for modeled CPU work and untagged charges).
func (c *Clock) Advance(d Duration) {
	c.AdvanceCat(CatCompute, d)
}

// AdvanceCat moves the clock forward by d, attributing the charge to the
// given category. cat must be a local category (not CatStolen — stolen
// charges arrive via Steal).
func (c *Clock) AdvanceCat(cat Category, d Duration) {
	c.local.Add(uint64(d))
	c.cats[cat].Add(uint64(d))
}

// AdvanceTo moves the clock forward so that Now() >= t, attributing any
// applied jump to CatProtocol (the default: untagged AdvanceTo calls are
// synchronization waits). The clock never moves backwards; if Now()
// already exceeds t this is a no-op.
func (c *Clock) AdvanceTo(t Time) {
	c.AdvanceToCat(CatProtocol, t)
}

// AdvanceToCat moves the clock forward so that Now() >= t, attributing
// the applied delta (if any) to the given category.
func (c *Clock) AdvanceToCat(cat Category, t Time) {
	for {
		st := c.stolen.Load()
		if uint64(t) <= st {
			return
		}
		want := uint64(t) - st
		cur := c.local.Load()
		if want <= cur {
			return
		}
		if c.local.CompareAndSwap(cur, want) {
			c.cats[cat].Add(want - cur)
			return
		}
	}
}

// Steal charges d nanoseconds of asynchronous handler work to the node.
// Safe to call from any goroutine. Stolen time is its own attribution
// category (CatStolen).
func (c *Clock) Steal(d Duration) {
	c.stolen.Add(uint64(d))
}

// Stolen reports the total asynchronously charged time. Useful for
// monitoring how much protocol service work a node absorbed.
func (c *Clock) Stolen() Duration {
	return Duration(c.stolen.Load())
}

// Breakdown snapshots the per-category attribution. Read it at
// quiescence (after an SPMD join): then Breakdown().Total() == Now()
// exactly. Mid-run snapshots are monotone per bucket but may be torn
// across buckets.
func (c *Clock) Breakdown() Breakdown {
	return Breakdown{
		Compute:  Duration(c.cats[CatCompute].Load()),
		Memory:   Duration(c.cats[CatMemory].Load()),
		Protocol: Duration(c.cats[CatProtocol].Load()),
		Network:  Duration(c.cats[CatNetwork].Load()),
		Stolen:   Duration(c.stolen.Load()),
	}
}

// Restore sets the clock to exactly the state described by a breakdown —
// the checkpoint/restart path rewinding a node to a captured instant.
// Must not race with other use. After Restore, Now() == b.Total() and
// Breakdown() == b exactly, so a resumed run accumulates charges on top
// of the captured attribution as if the crash never happened.
func (c *Clock) Restore(b Breakdown) {
	c.cats[CatCompute].Store(uint64(b.Compute))
	c.cats[CatMemory].Store(uint64(b.Memory))
	c.cats[CatProtocol].Store(uint64(b.Protocol))
	c.cats[CatNetwork].Store(uint64(b.Network))
	c.local.Store(uint64(b.Compute + b.Memory + b.Protocol + b.Network))
	c.stolen.Store(uint64(b.Stolen))
}

// Reset returns the clock (and its attribution) to time zero. Must not
// race with other use.
func (c *Clock) Reset() {
	c.local.Store(0)
	c.stolen.Store(0)
	for i := range c.cats {
		c.cats[i].Store(0)
	}
}

// Max returns the larger of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MaxAll returns the maximum Now() across the given clocks, or zero when
// the slice is empty.
func MaxAll(clocks []*Clock) Time {
	var m Time
	for _, c := range clocks {
		if t := c.Now(); t > m {
			m = t
		}
	}
	return m
}

// Since returns t2-t1, clamped at zero (virtual clocks reconcile with max,
// so an "earlier" stamp observed later is not an error).
func Since(t1, t2 Time) Duration {
	if t2 <= t1 {
		return 0
	}
	return Duration(t2 - t1)
}
