// Package vclock implements the virtual-time engine that underlies every
// simulated platform in this repository.
//
// The reproduction runs a whole "cluster" inside one process: each simulated
// node is a goroutine, and instead of measuring wall-clock time each node
// carries a Clock that is advanced explicitly by modeled costs (CPU work,
// memory accesses, network latencies). Synchronization constructs reconcile
// clocks so that causality is preserved conservatively: a clock only ever
// moves forward, and an event that depends on another event can never be
// stamped before it.
//
// Two kinds of charges exist:
//
//   - Owner charges (Advance, AdvanceTo): applied by the node's own
//     goroutine as it executes simulated work.
//   - Stolen charges (Steal): applied asynchronously by protocol handlers
//     that run on behalf of the node (for example, a DSM home node servicing
//     a page fault for a remote node is interrupted; the handler cost is
//     charged to the home node without blocking its goroutine).
//
// Stolen charges model the SIGIO-style interrupt handling of classic
// software DSM systems such as JiaJia: the serving node keeps computing, but
// its total virtual time grows by the handler cost.
package vclock

import (
	"fmt"
	"sync/atomic"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time uint64

// Duration is a span of virtual time in nanoseconds.
type Duration uint64

// String formats a virtual time using the most natural unit.
func (t Time) String() string { return Duration(t).String() }

// String formats a duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= 1e9:
		return fmt.Sprintf("%.3fs", float64(d)/1e9)
	case d >= 1e6:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	case d >= 1e3:
		return fmt.Sprintf("%.3fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%dns", uint64(d))
	}
}

// Seconds returns the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros returns the duration in microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Clock is a per-node virtual clock.
//
// All methods are safe for concurrent use. Several tasks time-sharing one
// node (thread programming models forward calls between nodes) may charge
// the same clock: their Advance calls accumulate, which is exactly the
// behavior of work serializing on one CPU.
type Clock struct {
	local  atomic.Uint64 // accumulated execution charges
	stolen atomic.Uint64 // asynchronous protocol-handler charges
}

// Now returns the node's current virtual time, including stolen cycles.
func (c *Clock) Now() Time {
	return Time(c.local.Load() + c.stolen.Load())
}

// Advance moves the clock forward by d.
func (c *Clock) Advance(d Duration) {
	c.local.Add(uint64(d))
}

// AdvanceTo moves the clock forward so that Now() >= t. The clock never
// moves backwards; if Now() already exceeds t this is a no-op.
func (c *Clock) AdvanceTo(t Time) {
	for {
		st := c.stolen.Load()
		if uint64(t) <= st {
			return
		}
		want := uint64(t) - st
		cur := c.local.Load()
		if want <= cur {
			return
		}
		if c.local.CompareAndSwap(cur, want) {
			return
		}
	}
}

// Steal charges d nanoseconds of asynchronous handler work to the node.
// Safe to call from any goroutine.
func (c *Clock) Steal(d Duration) {
	c.stolen.Add(uint64(d))
}

// Stolen reports the total asynchronously charged time. Useful for
// monitoring how much protocol service work a node absorbed.
func (c *Clock) Stolen() Duration {
	return Duration(c.stolen.Load())
}

// Reset returns the clock to time zero. Must not race with other use.
func (c *Clock) Reset() {
	c.local.Store(0)
	c.stolen.Store(0)
}

// Max returns the larger of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MaxAll returns the maximum Now() across the given clocks, or zero when
// the slice is empty.
func MaxAll(clocks []*Clock) Time {
	var m Time
	for _, c := range clocks {
		if t := c.Now(); t > m {
			m = t
		}
	}
	return m
}

// Since returns t2-t1, clamped at zero (virtual clocks reconcile with max,
// so an "earlier" stamp observed later is not an error).
func Since(t1, t2 Time) Duration {
	if t2 <= t1 {
		return 0
	}
	return Duration(t2 - t1)
}
