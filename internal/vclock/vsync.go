package vclock

import "sync"

// All charges made by the virtual-time synchronization primitives —
// request/grant/release costs and reconciliation waits — are attributed
// to CatProtocol: they are the cost of coordinating, not of computing.

// VBarrier is a virtual-time barrier for a fixed set of participants.
//
// Arrive blocks the calling goroutine until all parties have arrived, then
// advances the caller's clock to the maximum arrival time across all
// parties plus the supplied per-party release cost. This models the
// semantics of any real barrier — nobody leaves before the last arrival —
// while letting each platform charge its own communication cost.
type VBarrier struct {
	mu      sync.Mutex
	parties int
	arrived int
	maxT    Time // accumulating max for the current generation
	gen     uint64
	relT    map[uint64]Time // release times of completed generations
	readers map[uint64]int  // parties that still need to read relT[gen]
	release *sync.Cond
}

// NewVBarrier creates a barrier for the given number of parties.
func NewVBarrier(parties int) *VBarrier {
	if parties <= 0 {
		panic("vclock: barrier parties must be positive")
	}
	b := &VBarrier{
		parties: parties,
		relT:    make(map[uint64]Time),
		readers: make(map[uint64]int),
	}
	b.release = sync.NewCond(&b.mu)
	return b
}

// Parties returns the number of participants.
func (b *VBarrier) Parties() int { return b.parties }

// Arrive enters the barrier at the clock's current time plus arriveCost
// (the cost of announcing arrival), blocks until all parties arrive, and
// leaves with the clock advanced to max(arrivals within THIS generation)
// + releaseCost. Release times are recorded per generation: real-time
// scheduling can let a fast party race ahead into the next barrier
// generation before a slow waiter has woken up, and the fast party's new
// arrival time must never inflate the timestamp handed to the previous
// generation's waiters.
// It returns the reconciled release time.
func (b *VBarrier) Arrive(c *Clock, arriveCost, releaseCost Duration) Time {
	c.AdvanceCat(CatProtocol, arriveCost)
	t := c.Now()

	b.mu.Lock()
	myGen := b.gen
	if t > b.maxT {
		b.maxT = t
	}
	b.arrived++
	if b.arrived == b.parties {
		b.relT[myGen] = b.maxT
		b.readers[myGen] = b.parties
		b.arrived = 0
		b.maxT = 0
		b.gen++
		b.release.Broadcast()
	} else {
		for {
			if _, done := b.relT[myGen]; done {
				break
			}
			b.release.Wait()
		}
	}
	releaseAt := b.relT[myGen]
	b.readers[myGen]--
	if b.readers[myGen] == 0 {
		delete(b.readers, myGen)
		delete(b.relT, myGen)
	}
	b.mu.Unlock()

	c.AdvanceToCat(CatProtocol, releaseAt)
	c.AdvanceCat(CatProtocol, releaseCost)
	return c.Now()
}

// VLock is a virtual-time mutual-exclusion lock.
//
// Virtual time requires locks to serialize not just execution but the
// simulated timeline: the n-th holder cannot acquire before the (n-1)-th
// holder released. VLock tracks the virtual time at which the lock became
// free and pushes each new holder's clock past it.
type VLock struct {
	mu     sync.Mutex
	cond   *sync.Cond
	held   bool
	freeAt Time // virtual time at which the previous holder released
	acqs   uint64
}

// NewVLock returns an unlocked virtual lock.
func NewVLock() *VLock {
	l := &VLock{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Acquire obtains the lock. The caller's clock is advanced by reqCost (the
// cost of issuing the request), then to at least the time the lock became
// free, then by grantCost (the cost of the grant reaching the caller).
// It returns the virtual time at which the caller holds the lock.
func (l *VLock) Acquire(c *Clock, reqCost, grantCost Duration) Time {
	c.AdvanceCat(CatProtocol, reqCost)
	l.mu.Lock()
	for l.held {
		l.cond.Wait()
	}
	l.held = true
	l.acqs++
	free := l.freeAt
	l.mu.Unlock()

	c.AdvanceToCat(CatProtocol, free)
	c.AdvanceCat(CatProtocol, grantCost)
	return c.Now()
}

// TryAcquire attempts to obtain the lock without blocking. On success it
// behaves like Acquire and returns true.
func (l *VLock) TryAcquire(c *Clock, reqCost, grantCost Duration) bool {
	c.AdvanceCat(CatProtocol, reqCost)
	l.mu.Lock()
	if l.held {
		l.mu.Unlock()
		return false
	}
	l.held = true
	l.acqs++
	free := l.freeAt
	l.mu.Unlock()
	c.AdvanceToCat(CatProtocol, free)
	c.AdvanceCat(CatProtocol, grantCost)
	return true
}

// Release frees the lock, charging relCost to the caller first. The lock's
// free time becomes the caller's clock after the charge.
func (l *VLock) Release(c *Clock, relCost Duration) {
	c.AdvanceCat(CatProtocol, relCost)
	now := c.Now()
	l.mu.Lock()
	if !l.held {
		l.mu.Unlock()
		panic("vclock: release of unheld VLock")
	}
	l.held = false
	if now > l.freeAt {
		l.freeAt = now
	}
	l.cond.Signal()
	l.mu.Unlock()
}

// Acquisitions reports how many times the lock has been acquired.
func (l *VLock) Acquisitions() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acqs
}

// VCond is a virtual-time condition signal: waiters block until signaled,
// and a signaled waiter's clock is advanced past the signaler's time plus a
// delivery cost. It models cross-node event notification (e.g., JiaJia's
// jia_wait / thread join) without spinning.
type VCond struct {
	mu       sync.Mutex
	cond     *sync.Cond
	signalT  Time
	signaled uint64 // generation counter
}

// NewVCond returns a new condition signal.
func NewVCond() *VCond {
	c := &VCond{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Wait blocks until Signal or Broadcast is called after Wait began, then
// advances clk past the signal time plus deliverCost.
func (v *VCond) Wait(clk *Clock, deliverCost Duration) {
	v.mu.Lock()
	gen := v.signaled
	for v.signaled == gen {
		v.cond.Wait()
	}
	t := v.signalT
	v.mu.Unlock()
	clk.AdvanceToCat(CatProtocol, t)
	clk.AdvanceCat(CatProtocol, deliverCost)
}

// Broadcast wakes all current waiters with the signaler's time.
func (v *VCond) Broadcast(clk *Clock, sendCost Duration) {
	clk.AdvanceCat(CatProtocol, sendCost)
	now := clk.Now()
	v.mu.Lock()
	if now > v.signalT {
		v.signalT = now
	}
	v.signaled++
	v.cond.Broadcast()
	v.mu.Unlock()
}

// VSemaphore is a virtual-time counting semaphore. Acquire blocks until a
// unit is available and reconciles the acquirer's clock with the release
// that produced the unit.
type VSemaphore struct {
	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	max     int
	availAt Time // virtual time the most recent unit became available
}

// NewVSemaphore creates a semaphore with an initial count and a maximum
// (0 max means unbounded).
func NewVSemaphore(initial, max int) *VSemaphore {
	if initial < 0 || (max > 0 && initial > max) {
		panic("vclock: bad semaphore initial count")
	}
	s := &VSemaphore{count: initial, max: max}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire takes one unit, charging reqCost before the wait.
func (s *VSemaphore) Acquire(c *Clock, reqCost Duration) {
	c.AdvanceCat(CatProtocol, reqCost)
	s.mu.Lock()
	for s.count == 0 {
		s.cond.Wait()
	}
	s.count--
	t := s.availAt
	s.mu.Unlock()
	c.AdvanceToCat(CatProtocol, t)
}

// TryAcquire takes a unit if one is available without blocking.
func (s *VSemaphore) TryAcquire(c *Clock, reqCost Duration) bool {
	c.AdvanceCat(CatProtocol, reqCost)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return false
	}
	s.count--
	c.AdvanceToCat(CatProtocol, s.availAt)
	return true
}

// Release returns n units. It reports false (releasing nothing) when the
// maximum would be exceeded, matching Win32 ReleaseSemaphore semantics.
func (s *VSemaphore) Release(c *Clock, n int, relCost Duration) bool {
	c.AdvanceCat(CatProtocol, relCost)
	now := c.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.max > 0 && s.count+n > s.max {
		return false
	}
	s.count += n
	if now > s.availAt {
		s.availAt = now
	}
	if n == 1 {
		s.cond.Signal()
	} else {
		s.cond.Broadcast()
	}
	return true
}

// Count returns the current unit count.
func (s *VSemaphore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// WaitWith is Wait with an atomic entry: beforeWait runs after the waiter
// is registered (so a signal issued once beforeWait has started can no
// longer be missed) but before blocking. Condition-variable
// implementations pass their mutex-unlock here to get the POSIX
// atomic-release-and-wait contract without lost wakeups.
func (v *VCond) WaitWith(clk *Clock, deliverCost Duration, beforeWait func()) {
	v.mu.Lock()
	gen := v.signaled
	beforeWait()
	for v.signaled == gen {
		v.cond.Wait()
	}
	t := v.signalT
	v.mu.Unlock()
	clk.AdvanceToCat(CatProtocol, t)
	clk.AdvanceCat(CatProtocol, deliverCost)
}
