package vclock

import "sync"

// All charges made by the virtual-time synchronization primitives —
// request/grant/release costs and reconciliation waits — are attributed
// to CatProtocol: they are the cost of coordinating, not of computing.

// VBarrier is a virtual-time barrier for a fixed set of participants.
//
// Arrive blocks the calling goroutine until all parties have arrived, then
// advances the caller's clock to the maximum arrival time across all
// parties plus the supplied per-party release cost. This models the
// semantics of any real barrier — nobody leaves before the last arrival —
// while letting each platform charge its own communication cost.
//
// Reconciliation happens at a quiescent instant. When the last party
// arrives, every other party is blocked inside Arrive, so no stolen
// charge (Clock.Steal runs on the issuing party's goroutine, before that
// party arrives) can still be in flight. The last arriver advances every
// participant's clock to the release time right there, under the barrier
// mutex, before anyone is released. Steals from the next phase can then
// only land after the reconciliation, never race with it, which keeps
// barrier-structured runs bit-identical across schedules even when fault
// retries desynchronize the arrivals.
type VBarrier struct {
	mu       sync.Mutex
	parties  int
	arrived  int
	maxT     Time     // accumulating max arrival for the current generation
	clocks   []*Clock // participants of the current generation
	gen      uint64
	relT     map[uint64]relEntry // releases of completed generations
	readers  map[uint64]int      // parties that still need to read relT[gen]
	release  *sync.Cond
	abortMsg string // non-empty once Abort poisons the barrier

	// liveRelease, when set and returning true, switches the barrier to
	// the deterministic release convention: the release time is the max
	// of the live clocks at the quiescent rendezvous instant (not of the
	// arrival snapshots), and all participants are reconciled under the
	// barrier mutex before anyone is released. The legacy convention
	// absorbs a handler interrupt that lands on an already-arrived or
	// not-yet-woken node into its wait — but which side of an arrival or
	// wakeup a concurrent interrupt lands on is scheduler-dependent, so
	// once fault retries desynchronize the arrivals it stops being a pure
	// function of the program. Substrates set this to their network's
	// CallFaultsActive so that seeded fault campaigns replay
	// bit-identically while fault-free runs keep the legacy numbers.
	liveRelease func() bool
}

// relEntry is one generation's release: the reconciliation target and
// which convention produced it (live = clocks already reconciled at the
// rendezvous; legacy = each waiter reconciles after waking).
type relEntry struct {
	at   Time
	live bool
}

// NewVBarrier creates a barrier for the given number of parties.
func NewVBarrier(parties int) *VBarrier {
	if parties <= 0 {
		panic("vclock: barrier parties must be positive")
	}
	b := &VBarrier{
		parties: parties,
		relT:    make(map[uint64]relEntry),
		readers: make(map[uint64]int),
	}
	b.release = sync.NewCond(&b.mu)
	return b
}

// Parties returns the number of participants.
func (b *VBarrier) Parties() int { return b.parties }

// SetLiveRelease installs the predicate that selects the quiescent
// live-clock release convention (see the liveRelease field). Call it at
// setup, before any Arrive.
func (b *VBarrier) SetLiveRelease(f func() bool) {
	b.mu.Lock()
	b.liveRelease = f
	b.mu.Unlock()
}

// Arrive enters the barrier at the clock's current time plus arriveCost
// (the cost of announcing arrival), blocks until all parties arrive, and
// leaves with the clock advanced to max(clocks within THIS generation)
// + releaseCost. Release times are recorded per generation: real-time
// scheduling can let a fast party race ahead into the next barrier
// generation before a slow waiter has woken up, and the fast party's new
// arrival time must never inflate the timestamp handed to the previous
// generation's waiters.
// It returns the reconciled release time.
func (b *VBarrier) Arrive(c *Clock, arriveCost, releaseCost Duration) Time {
	c.AdvanceCat(CatProtocol, arriveCost)

	b.mu.Lock()
	if b.abortMsg != "" {
		msg := b.abortMsg
		b.mu.Unlock()
		panic(msg)
	}
	myGen := b.gen
	b.clocks = append(b.clocks, c)
	if t := c.Now(); t > b.maxT {
		b.maxT = t
	}
	b.arrived++
	if b.arrived == b.parties {
		rel := relEntry{at: b.maxT}
		if b.liveRelease != nil && b.liveRelease() {
			// Deterministic mode (active fault plan). This is a quiescent
			// instant: every party is inside Arrive, so no stolen charge
			// can still be in flight. Take the release time from the live
			// clocks — whose steal totals are schedule-independent here —
			// rather than the arrival snapshots (which depend on which
			// side of an arrival each interrupt happened to land), and
			// reconcile every participant before anyone leaves, so steals
			// from the next phase can only land after the reconciliation.
			rel.live = true
			for _, pc := range b.clocks {
				if t := pc.Now(); t > rel.at {
					rel.at = t
				}
			}
			for _, pc := range b.clocks {
				pc.AdvanceToCat(CatProtocol, rel.at)
			}
		}
		b.clocks = b.clocks[:0]
		b.relT[myGen] = rel
		b.readers[myGen] = b.parties
		b.arrived = 0
		b.maxT = 0
		b.gen++
		b.release.Broadcast()
	} else {
		for {
			if b.abortMsg != "" {
				msg := b.abortMsg
				b.mu.Unlock()
				panic(msg)
			}
			if _, done := b.relT[myGen]; done {
				break
			}
			b.release.Wait()
		}
	}
	rel := b.relT[myGen]
	b.readers[myGen]--
	if b.readers[myGen] == 0 {
		delete(b.readers, myGen)
		delete(b.relT, myGen)
	}
	b.mu.Unlock()

	if !rel.live {
		// Legacy convention: reconcile after waking, so an interrupt that
		// landed on this waiter in the meantime is absorbed by the wait.
		c.AdvanceToCat(CatProtocol, rel.at)
	}
	c.AdvanceCat(CatProtocol, releaseCost)
	return c.Now()
}

// Abort poisons the barrier: goroutines blocked in Arrive, and any that
// arrive later, panic with the given reason instead of waiting for
// parties that will never come. Graceful-degradation paths use it so a
// fail-stopped node cannot deadlock its peers at a rendezvous; the
// per-node panic recovery in the runtime turns the panics into one clean
// diagnostic.
func (b *VBarrier) Abort(reason string) {
	b.mu.Lock()
	if b.abortMsg == "" {
		b.abortMsg = "vclock: barrier aborted: " + reason
	}
	b.release.Broadcast()
	b.mu.Unlock()
}

// VLock is a virtual-time mutual-exclusion lock.
//
// Virtual time requires locks to serialize not just execution but the
// simulated timeline: the n-th holder cannot acquire before the (n-1)-th
// holder released. VLock tracks the virtual time at which the lock became
// free and pushes each new holder's clock past it.
type VLock struct {
	mu       sync.Mutex
	cond     *sync.Cond
	held     bool
	freeAt   Time // virtual time at which the previous holder released
	acqs     uint64
	abortMsg string // non-empty once Abort poisons the lock
}

// NewVLock returns an unlocked virtual lock.
func NewVLock() *VLock {
	l := &VLock{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Acquire obtains the lock. The caller's clock is advanced by reqCost (the
// cost of issuing the request), then to at least the time the lock became
// free, then by grantCost (the cost of the grant reaching the caller).
// It returns the virtual time at which the caller holds the lock.
func (l *VLock) Acquire(c *Clock, reqCost, grantCost Duration) Time {
	c.AdvanceCat(CatProtocol, reqCost)
	l.mu.Lock()
	for l.held {
		if l.abortMsg != "" {
			msg := l.abortMsg
			l.mu.Unlock()
			panic(msg)
		}
		l.cond.Wait()
	}
	if l.abortMsg != "" {
		msg := l.abortMsg
		l.mu.Unlock()
		panic(msg)
	}
	l.held = true
	l.acqs++
	free := l.freeAt
	l.mu.Unlock()

	c.AdvanceToCat(CatProtocol, free)
	c.AdvanceCat(CatProtocol, grantCost)
	return c.Now()
}

// TryAcquire attempts to obtain the lock without blocking. On success it
// behaves like Acquire and returns true.
func (l *VLock) TryAcquire(c *Clock, reqCost, grantCost Duration) bool {
	c.AdvanceCat(CatProtocol, reqCost)
	l.mu.Lock()
	if l.held {
		l.mu.Unlock()
		return false
	}
	l.held = true
	l.acqs++
	free := l.freeAt
	l.mu.Unlock()
	c.AdvanceToCat(CatProtocol, free)
	c.AdvanceCat(CatProtocol, grantCost)
	return true
}

// Release frees the lock, charging relCost to the caller first. The lock's
// free time becomes the caller's clock after the charge.
func (l *VLock) Release(c *Clock, relCost Duration) {
	c.AdvanceCat(CatProtocol, relCost)
	now := c.Now()
	l.mu.Lock()
	if !l.held {
		l.mu.Unlock()
		panic("vclock: release of unheld VLock")
	}
	l.held = false
	if now > l.freeAt {
		l.freeAt = now
	}
	l.cond.Signal()
	l.mu.Unlock()
}

// Abort poisons the lock: goroutines blocked in Acquire, and any that
// try later, panic with the given reason. The holder (if any) may still
// Release normally. See VBarrier.Abort.
func (l *VLock) Abort(reason string) {
	l.mu.Lock()
	if l.abortMsg == "" {
		l.abortMsg = "vclock: lock aborted: " + reason
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Acquisitions reports how many times the lock has been acquired.
func (l *VLock) Acquisitions() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acqs
}

// VCond is a virtual-time condition signal: waiters block until signaled,
// and a signaled waiter's clock is advanced past the signaler's time plus a
// delivery cost. It models cross-node event notification (e.g., JiaJia's
// jia_wait / thread join) without spinning.
type VCond struct {
	mu       sync.Mutex
	cond     *sync.Cond
	signalT  Time
	signaled uint64 // generation counter
}

// NewVCond returns a new condition signal.
func NewVCond() *VCond {
	c := &VCond{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Wait blocks until Signal or Broadcast is called after Wait began, then
// advances clk past the signal time plus deliverCost.
func (v *VCond) Wait(clk *Clock, deliverCost Duration) {
	v.mu.Lock()
	gen := v.signaled
	for v.signaled == gen {
		v.cond.Wait()
	}
	t := v.signalT
	v.mu.Unlock()
	clk.AdvanceToCat(CatProtocol, t)
	clk.AdvanceCat(CatProtocol, deliverCost)
}

// Broadcast wakes all current waiters with the signaler's time.
func (v *VCond) Broadcast(clk *Clock, sendCost Duration) {
	clk.AdvanceCat(CatProtocol, sendCost)
	now := clk.Now()
	v.mu.Lock()
	if now > v.signalT {
		v.signalT = now
	}
	v.signaled++
	v.cond.Broadcast()
	v.mu.Unlock()
}

// VSemaphore is a virtual-time counting semaphore. Acquire blocks until a
// unit is available and reconciles the acquirer's clock with the release
// that produced the unit.
type VSemaphore struct {
	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	max     int
	availAt Time // virtual time the most recent unit became available
}

// NewVSemaphore creates a semaphore with an initial count and a maximum
// (0 max means unbounded).
func NewVSemaphore(initial, max int) *VSemaphore {
	if initial < 0 || (max > 0 && initial > max) {
		panic("vclock: bad semaphore initial count")
	}
	s := &VSemaphore{count: initial, max: max}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire takes one unit, charging reqCost before the wait.
func (s *VSemaphore) Acquire(c *Clock, reqCost Duration) {
	c.AdvanceCat(CatProtocol, reqCost)
	s.mu.Lock()
	for s.count == 0 {
		s.cond.Wait()
	}
	s.count--
	t := s.availAt
	s.mu.Unlock()
	c.AdvanceToCat(CatProtocol, t)
}

// TryAcquire takes a unit if one is available without blocking.
func (s *VSemaphore) TryAcquire(c *Clock, reqCost Duration) bool {
	c.AdvanceCat(CatProtocol, reqCost)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return false
	}
	s.count--
	c.AdvanceToCat(CatProtocol, s.availAt)
	return true
}

// Release returns n units. It reports false (releasing nothing) when the
// maximum would be exceeded, matching Win32 ReleaseSemaphore semantics.
func (s *VSemaphore) Release(c *Clock, n int, relCost Duration) bool {
	c.AdvanceCat(CatProtocol, relCost)
	now := c.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.max > 0 && s.count+n > s.max {
		return false
	}
	s.count += n
	if now > s.availAt {
		s.availAt = now
	}
	if n == 1 {
		s.cond.Signal()
	} else {
		s.cond.Broadcast()
	}
	return true
}

// Count returns the current unit count.
func (s *VSemaphore) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// WaitWith is Wait with an atomic entry: beforeWait runs after the waiter
// is registered (so a signal issued once beforeWait has started can no
// longer be missed) but before blocking. Condition-variable
// implementations pass their mutex-unlock here to get the POSIX
// atomic-release-and-wait contract without lost wakeups.
func (v *VCond) WaitWith(clk *Clock, deliverCost Duration, beforeWait func()) {
	v.mu.Lock()
	gen := v.signaled
	beforeWait()
	for v.signaled == gen {
		v.cond.Wait()
	}
	t := v.signalT
	v.mu.Unlock()
	clk.AdvanceToCat(CatProtocol, t)
	clk.AdvanceCat(CatProtocol, deliverCost)
}
