package vclock

import (
	"strings"
	"testing"
	"time"
)

// Abort must wake a party blocked in Arrive with a panic carrying the
// reason, and poison later arrivals the same way — a fail-stopped node
// cannot be allowed to deadlock its peers at a rendezvous.
func TestVBarrierAbortWakesWaiters(t *testing.T) {
	b := NewVBarrier(2)
	got := make(chan string, 1)
	go func() {
		defer func() {
			r := recover()
			if r == nil {
				got <- "no panic"
				return
			}
			got <- r.(string)
		}()
		var c Clock
		b.Arrive(&c, 10, 10)
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter block
	b.Abort("node 1 failed")
	select {
	case msg := <-got:
		if !strings.Contains(msg, "barrier aborted: node 1 failed") {
			t.Fatalf("waiter panicked with %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not wake the blocked party")
	}
	// Late arrivals hit the poison immediately.
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "barrier aborted") {
			t.Fatalf("late Arrive: recover = %v", r)
		}
	}()
	var c Clock
	b.Arrive(&c, 0, 0)
}

// Abort on a lock wakes blocked acquirers; the current holder may still
// release cleanly.
func TestVLockAbortWakesWaiters(t *testing.T) {
	l := NewVLock()
	var holder Clock
	l.Acquire(&holder, 0, 0)
	got := make(chan string, 1)
	go func() {
		defer func() {
			r := recover()
			if r == nil {
				got <- "no panic"
				return
			}
			got <- r.(string)
		}()
		var c Clock
		l.Acquire(&c, 0, 0)
	}()
	time.Sleep(5 * time.Millisecond)
	l.Abort("node 2 failed")
	select {
	case msg := <-got:
		if !strings.Contains(msg, "lock aborted: node 2 failed") {
			t.Fatalf("waiter panicked with %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not wake the blocked acquirer")
	}
	l.Release(&holder, 0) // the holder is unaffected
	// New acquirers hit the poison.
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "lock aborted") {
			t.Fatalf("late Acquire: recover = %v", r)
		}
	}()
	var c Clock
	l.Acquire(&c, 0, 0)
}
