package vclock

import "testing"

// engineN builds an n-node engine over fresh clocks with a uniform
// off-diagonal lookahead.
func engineN(n int, la Duration) (*Engine, []*Clock) {
	clocks := make([]*Clock, n)
	for i := range clocks {
		clocks[i] = &Clock{}
	}
	m := make([][]Duration, n)
	for p := range m {
		row := make([]Duration, n)
		for r := range row {
			if p != r {
				row[r] = la
			}
		}
		m[p] = row
	}
	return NewEngine(clocks, m), clocks
}

func safe(e *Engine, self int, t Time) bool {
	e.GateBegin()
	defer e.GateEnd()
	return e.GateSafe(self, t)
}

func TestEngineRunningPeersBoundByClock(t *testing.T) {
	e, clocks := engineN(3, 1000)
	clocks[1].Advance(5000)
	clocks[2].Advance(5000)
	if !safe(e, 0, 6000) {
		t.Fatal("arrival at clock+lookahead must be safe")
	}
	if safe(e, 0, 6001) {
		t.Fatal("arrival past clock+lookahead must not be safe")
	}
	if got := e.Horizon(0); got != 6000 {
		t.Fatalf("Horizon = %d, want 6000", got)
	}
}

func TestEngineRecvWaitActivationBound(t *testing.T) {
	// Node 1 is blocked in a receive with nothing queued; node 2 runs at
	// 10000. Node 1 cannot send before it consumes something node 2
	// sends, so its next-send bound is 10000+1000; node 0's horizon is
	// min(11000+1000, 10000+1000) = 11000 — the blocked peer does NOT
	// pin the horizon at its own frozen clock.
	e, clocks := engineN(3, 1000)
	clocks[2].Advance(10_000)
	e.GateBegin()
	e.GateRecvWait(1)
	e.GateEnd()
	if got := e.Horizon(0); got != 11_000 {
		t.Fatalf("Horizon = %d, want 11000", got)
	}
	if !safe(e, 0, 11_000) || safe(e, 0, 11_001) {
		t.Fatal("horizon edge mis-gated")
	}
}

func TestEngineQueueMinBoundsBlockedPeer(t *testing.T) {
	// Same shape, but node 1 has a message queued arriving at 3000: it
	// could consume it and send immediately after, so node 0's horizon
	// tightens to 3000+1000.
	e, clocks := engineN(3, 1000)
	clocks[2].Advance(10_000)
	e.SetQueueMin(func(node int) (Time, bool) {
		if node == 1 {
			return 3000, true
		}
		return 0, false
	})
	e.GateBegin()
	e.GateRecvWait(1)
	e.GateEnd()
	if got := e.Horizon(0); got != 4000 {
		t.Fatalf("Horizon = %d, want 4000", got)
	}
}

func TestEngineIdleClusterHasInfiniteHorizon(t *testing.T) {
	// Every peer is blocked with an empty queue: nothing can ever wake
	// them (self is excluded — its influence is necessarily later than
	// any candidate delivery), so any arrival is safe. This is the
	// early-finished-worker case: idle nodes never stall the cluster.
	e, _ := engineN(4, 1000)
	e.GateBegin()
	for p := 1; p < 4; p++ {
		e.GateRecvWait(p)
	}
	e.GateEnd()
	if got := e.Horizon(0); got != Time(infTime) {
		t.Fatalf("Horizon = %d, want infinite", got)
	}
	if !safe(e, 0, 1<<60) {
		t.Fatal("idle cluster must not gate any arrival")
	}
}

func TestEngineGateRunRestoresClockBound(t *testing.T) {
	e, _ := engineN(2, 1000)
	e.GateBegin()
	e.GateRecvWait(1)
	e.GateEnd()
	if got := e.Horizon(0); got != Time(infTime) {
		t.Fatalf("Horizon with blocked peer = %d, want infinite", got)
	}
	e.GateBegin()
	e.GateRun(1)
	e.GateEnd()
	if got := e.Horizon(0); got != 1000 {
		t.Fatalf("Horizon with running peer = %d, want 1000", got)
	}
}

func TestEngineDownNodeDropsOutOfHorizon(t *testing.T) {
	e, clocks := engineN(3, 1000)
	clocks[1].Advance(2000) // the laggard
	clocks[2].Advance(9000)
	if got := e.Horizon(0); got != 3000 {
		t.Fatalf("Horizon = %d, want 3000", got)
	}
	e.MarkDown(1)
	if got := e.Horizon(0); got != 10_000 {
		t.Fatalf("Horizon after MarkDown = %d, want 10000", got)
	}
}

func TestEngineChainedActivations(t *testing.T) {
	// 0 asks about its horizon; 1 and 2 are blocked, 3 runs at 20000 but
	// sits far from 0 (lookahead 50000), so 3's direct contribution is
	// not the binding one. 3 can wake a blocked node no earlier than
	// 21000, and the woken node can reach 0 at 22000 — the two-edge
	// chain through the activation graph is the horizon. If blocked
	// nodes were bounded by their frozen clocks the answer would be
	// 1000; if they were ignored it would be 70000.
	clocks := []*Clock{{}, {}, {}, {}}
	la := [][]Duration{
		{0, 1000, 1000, 1000},
		{1000, 0, 1000, 1000},
		{1000, 1000, 0, 1000},
		{50_000, 1000, 1000, 0},
	}
	e := NewEngine(clocks, la)
	clocks[3].Advance(20_000)
	e.GateBegin()
	e.GateRecvWait(1)
	e.GateRecvWait(2)
	e.GateEnd()
	if got := e.Horizon(0); got != 22_000 {
		t.Fatalf("Horizon = %d, want 22000", got)
	}
}

func TestEngineHorizonEvaluationAllocatesNothing(t *testing.T) {
	e, clocks := engineN(64, 1000)
	for i, c := range clocks {
		c.Advance(Duration(1000 * i))
	}
	e.SetQueueMin(func(node int) (Time, bool) { return Time(500 * node), true })
	e.GateBegin()
	for p := 2; p < 64; p += 2 {
		e.GateRecvWait(p)
	}
	e.GateEnd()
	e.Horizon(0) // warm
	if n := testing.AllocsPerRun(100, func() { e.Horizon(0) }); n != 0 {
		t.Fatalf("Horizon allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { safe(e, 0, 1<<40) }); n != 0 {
		t.Fatalf("GateSafe allocates %v per run, want 0", n)
	}
}
