package vclock

import (
	"math/rand"
	"testing"
)

// The uniform-lookahead closed form must agree with the generic Dijkstra
// pass on every reachable engine state: both are exact, the closed form
// is just O(n).
func TestEngineUniformClosedFormMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(9)
		e, clocks := engineN(n, Duration(1+rng.Intn(3))*500)
		qmin := make([]uint64, n)
		for i := range clocks {
			clocks[i].Advance(Duration(rng.Intn(20_000)))
			switch rng.Intn(5) {
			case 0:
				e.GateBegin()
				e.GateRecvWait(i)
				e.GateEnd()
			case 1:
				e.MarkDown(i)
			case 2:
				e.SetRetired(i, true)
			}
			qmin[i] = uint64(rng.Intn(30_000))
		}
		e.SetQueueMin(func(node int) (Time, bool) {
			if qmin[node]%3 == 0 {
				return 0, false
			}
			return Time(qmin[node]), true
		})
		e.mu.Lock()
		e.allBoundsUniformLocked()
		got := append([]uint64(nil), e.cacheVal...)
		e.allBoundsGenericLocked()
		want := append([]uint64(nil), e.cacheVal...)
		e.mu.Unlock()
		for p := range got {
			if got[p] != want[p] {
				t.Fatalf("trial %d node %d: closed form %d, Dijkstra %d (state %+v)",
					trial, p, got[p], want[p], e)
			}
		}
	}
}

// Un-retiring a node (a new run starting) is the one transition that
// tightens engine state. GateSafe consults the cached activation vector
// even when stale, so SetRetired(false) must wipe it — a retired-era
// vector would otherwise admit deliveries past the now-live node.
func TestEngineUnretireInvalidatesCachedVector(t *testing.T) {
	e, clocks := engineN(3, 1000)
	clocks[1].Advance(10_000)
	e.SetRetired(2, true)
	// Force the cached vector to record node 2 as retired (bound = inf).
	if safe(e, 0, 20_000) {
		t.Fatal("arrival past the live peer's horizon must not be safe")
	}
	e.SetRetired(2, false)
	// Node 2 is live again at clock 0: its horizon contribution is 1000,
	// so 5000 must be unsafe even though the retired-era cache says inf.
	if safe(e, 0, 5_000) {
		t.Fatal("stale retired-era cache must not admit past a revived node")
	}
}
