package vclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %d, want 0", c.Now())
	}
	c.Advance(100)
	c.Advance(50)
	if got := c.Now(); got != 150 {
		t.Fatalf("Now = %d, want 150", got)
	}
}

func TestClockAdvanceToMonotonic(t *testing.T) {
	var c Clock
	c.Advance(1000)
	c.AdvanceTo(500) // earlier: must not move backwards
	if got := c.Now(); got != 1000 {
		t.Fatalf("Now = %d after AdvanceTo(500), want 1000", got)
	}
	c.AdvanceTo(2000)
	if got := c.Now(); got != 2000 {
		t.Fatalf("Now = %d after AdvanceTo(2000), want 2000", got)
	}
}

func TestClockSteal(t *testing.T) {
	var c Clock
	c.Advance(100)
	c.Steal(40)
	if got := c.Now(); got != 140 {
		t.Fatalf("Now = %d, want 140", got)
	}
	if got := c.Stolen(); got != 40 {
		t.Fatalf("Stolen = %d, want 40", got)
	}
	// AdvanceTo accounts for stolen time.
	c.AdvanceTo(200)
	if got := c.Now(); got != 200 {
		t.Fatalf("Now = %d, want 200", got)
	}
}

func TestClockStealBelowStolen(t *testing.T) {
	var c Clock
	c.Steal(100)
	c.AdvanceTo(50) // target already passed via stolen time
	if got := c.Now(); got != 100 {
		t.Fatalf("Now = %d, want 100", got)
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Steal(5)
	c.Reset()
	if c.Now() != 0 || c.Stolen() != 0 {
		t.Fatalf("Reset did not zero the clock: now=%d stolen=%d", c.Now(), c.Stolen())
	}
}

func TestClockConcurrentSteal(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Steal(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Stolen(); got != workers*per {
		t.Fatalf("Stolen = %d, want %d", got, workers*per)
	}
}

func TestMaxAndSince(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Fatal("Max broken")
	}
	if Since(10, 5) != 0 {
		t.Fatal("Since must clamp at zero")
	}
	if Since(5, 10) != 5 {
		t.Fatal("Since(5,10) != 5")
	}
}

func TestMaxAll(t *testing.T) {
	if MaxAll(nil) != 0 {
		t.Fatal("MaxAll(nil) != 0")
	}
	a, b, c := &Clock{}, &Clock{}, &Clock{}
	a.Advance(10)
	b.Advance(30)
	c.Advance(20)
	if got := MaxAll([]*Clock{a, b, c}); got != 30 {
		t.Fatalf("MaxAll = %d, want 30", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2_500_000, "2.500ms"},
		{3_000_000_000, "3.000s"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("Duration(%d).String() = %q, want %q", uint64(tc.d), got, tc.want)
		}
	}
}

// Property: AdvanceTo never moves a clock backwards and always reaches the
// target (when reachable by local advance).
func TestAdvanceToProperty(t *testing.T) {
	f := func(start, target uint32) bool {
		var c Clock
		c.Advance(Duration(start))
		before := c.Now()
		c.AdvanceTo(Time(target))
		after := c.Now()
		if after < before {
			return false
		}
		return after >= Time(target)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: interleavings of Advance and Steal always sum.
func TestAdvanceStealSumProperty(t *testing.T) {
	f := func(adv, st []uint16) bool {
		var c Clock
		var want uint64
		for i := 0; i < len(adv) || i < len(st); i++ {
			if i < len(adv) {
				c.Advance(Duration(adv[i]))
				want += uint64(adv[i])
			}
			if i < len(st) {
				c.Steal(Duration(st[i]))
				want += uint64(st[i])
			}
		}
		return c.Now() == Time(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVBarrierReconcilesClocks(t *testing.T) {
	const n = 4
	b := NewVBarrier(n)
	if b.Parties() != n {
		t.Fatalf("Parties = %d, want %d", b.Parties(), n)
	}
	clocks := make([]*Clock, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		clocks[i] = &Clock{}
		clocks[i].Advance(Duration(100 * (i + 1))) // staggered arrivals: max 400
		wg.Add(1)
		go func(c *Clock) {
			defer wg.Done()
			b.Arrive(c, 10, 5)
		}(clocks[i])
	}
	wg.Wait()
	// Max arrival = 400+10 = 410; everyone leaves at 410+5 = 415.
	for i, c := range clocks {
		if got := c.Now(); got != 415 {
			t.Errorf("clock %d = %d, want 415", i, got)
		}
	}
}

func TestVBarrierReusable(t *testing.T) {
	const n = 3
	b := NewVBarrier(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var c Clock
			for round := 0; round < 10; round++ {
				c.Advance(Duration(k + 1))
				b.Arrive(&c, 0, 0)
			}
		}(i)
	}
	wg.Wait() // must not deadlock
}

func TestNewVBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero parties")
		}
	}()
	NewVBarrier(0)
}

func TestVLockSerializesVirtualTime(t *testing.T) {
	l := NewVLock()
	const n = 8
	clocks := make([]*Clock, n)
	times := make([]Time, n)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		clocks[i] = &Clock{}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			at := l.Acquire(clocks[k], 10, 10)
			mu.Lock()
			order = append(order, k)
			times[k] = at
			mu.Unlock()
			clocks[k].Advance(100) // critical section work
			l.Release(clocks[k], 10)
		}(i)
	}
	wg.Wait()
	if l.Acquisitions() != n {
		t.Fatalf("Acquisitions = %d, want %d", l.Acquisitions(), n)
	}
	// In acquisition order, hold times must be strictly increasing by at
	// least the critical section + handoff costs.
	for idx := 1; idx < len(order); idx++ {
		prev, cur := order[idx-1], order[idx]
		if times[cur] < times[prev]+100 {
			t.Fatalf("holder %d at %d overlaps holder %d at %d",
				cur, times[cur], prev, times[prev])
		}
	}
}

func TestVLockTryAcquire(t *testing.T) {
	l := NewVLock()
	var a, b Clock
	if !l.TryAcquire(&a, 1, 1) {
		t.Fatal("first TryAcquire should succeed")
	}
	if l.TryAcquire(&b, 1, 1) {
		t.Fatal("second TryAcquire should fail while held")
	}
	l.Release(&a, 1)
	if !l.TryAcquire(&b, 1, 1) {
		t.Fatal("TryAcquire should succeed after release")
	}
	l.Release(&b, 1)
}

func TestVLockReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for releasing unheld lock")
		}
	}()
	var c Clock
	NewVLock().Release(&c, 0)
}

func TestVCondWaitAfterSignalGeneration(t *testing.T) {
	v := NewVCond()
	var signaler Clock
	signaler.Advance(1000)

	var waiter Clock
	done := make(chan struct{})
	go func() {
		v.Wait(&waiter, 7)
		close(done)
	}()
	// Broadcast repeatedly until the waiter is woken: Wait only observes
	// generations started after it began waiting, so a single broadcast
	// could race with the waiter's registration.
	for woken := false; !woken; {
		v.Broadcast(&signaler, 0)
		select {
		case <-done:
			woken = true
		case <-time.After(time.Millisecond):
		}
	}
	if got := waiter.Now(); got < 1000+7 {
		t.Fatalf("waiter clock = %d, want >= %d", got, 1000+7)
	}
}

func BenchmarkClockAdvance(b *testing.B) {
	var c Clock
	for i := 0; i < b.N; i++ {
		c.Advance(1)
	}
}

func BenchmarkVLockUncontended(b *testing.B) {
	l := NewVLock()
	var c Clock
	for i := 0; i < b.N; i++ {
		l.Acquire(&c, 1, 1)
		l.Release(&c, 1)
	}
}

func TestVSemaphoreBasics(t *testing.T) {
	s := NewVSemaphore(1, 2)
	var c Clock
	s.Acquire(&c, 5)
	if s.Count() != 0 {
		t.Fatal("count after acquire")
	}
	if s.TryAcquire(&c, 1) {
		t.Fatal("TryAcquire must fail at zero")
	}
	if !s.Release(&c, 1, 5) {
		t.Fatal("release failed")
	}
	if !s.TryAcquire(&c, 1) {
		t.Fatal("TryAcquire must succeed after release")
	}
	// Exceeding max fails.
	s.Release(&c, 1, 0)
	s.Release(&c, 1, 0)
	if s.Release(&c, 1, 0) {
		t.Fatal("release beyond max must fail")
	}
}

func TestVSemaphoreBlocksAndReconciles(t *testing.T) {
	s := NewVSemaphore(0, 0)
	var producer, consumer Clock
	producer.Advance(10_000)
	done := make(chan struct{})
	go func() {
		s.Acquire(&consumer, 1)
		close(done)
	}()
	s.Release(&producer, 1, 100)
	<-done
	if consumer.Now() < 10_100 {
		t.Fatalf("consumer clock %d not reconciled with producer", consumer.Now())
	}
}

func TestVSemaphorePanicsOnBadInit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVSemaphore(5, 2)
}

func TestVBarrierGenerationIsolation(t *testing.T) {
	// Regression test: a fast party racing ahead into generation g+1 must
	// not inflate the release time handed to generation g's waiters. Two
	// parties: A arrives at t=10 and t=1000 (gen 0 and 1); B arrives at
	// t=20. B's gen-0 release must be max(10,20)=20, never 1000.
	b := NewVBarrier(2)
	var a, bb Clock
	a.Advance(10)
	bb.Advance(20)

	bArrived := make(chan Time, 1)
	go func() {
		bArrived <- b.Arrive(&bb, 0, 0)
	}()
	a.Advance(0)
	b.Arrive(&a, 0, 0) // completes gen 0 (order of A/B arrival irrelevant)
	// A races ahead: a huge arrival for gen 1 before B reads its release.
	a.AdvanceTo(1000)
	done := make(chan struct{})
	go func() {
		b.Arrive(&a, 0, 0)
		close(done)
	}()
	got := <-bArrived
	if got > 100 {
		t.Fatalf("gen-0 release = %v, polluted by gen-1 arrival", got)
	}
	// Let B join gen 1 so the goroutine finishes.
	b.Arrive(&bb, 0, 0)
	<-done
}
