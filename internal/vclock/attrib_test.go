package vclock

import (
	"sync"
	"testing"
)

// Attribution is pure side bookkeeping: the category buckets must always
// sum to the local charge total, and tagging must never change Now().

func TestAdvanceCatSumsToLocal(t *testing.T) {
	var c Clock
	c.AdvanceCat(CatCompute, 100)
	c.AdvanceCat(CatMemory, 30)
	c.AdvanceCat(CatProtocol, 7)
	c.AdvanceCat(CatNetwork, 12)
	c.Advance(5) // untagged defaults to compute
	c.Steal(40)

	bd := c.Breakdown()
	if bd.Compute != 105 || bd.Memory != 30 || bd.Protocol != 7 || bd.Network != 12 || bd.Stolen != 40 {
		t.Fatalf("unexpected breakdown: %+v", bd)
	}
	if got, want := bd.Total(), Duration(c.Now()); got != want {
		t.Fatalf("Total() = %d, Now() = %d", got, want)
	}
}

func TestAdvanceToCatAttributesDelta(t *testing.T) {
	var c Clock
	c.AdvanceCat(CatCompute, 50)
	c.AdvanceToCat(CatNetwork, 80) // applies a 30ns jump
	if got := c.Breakdown().Network; got != 30 {
		t.Fatalf("network bucket = %d, want 30", got)
	}
	c.AdvanceToCat(CatNetwork, 10) // no-op: clock never moves backwards
	if got := c.Breakdown().Network; got != 30 {
		t.Fatalf("network bucket after no-op = %d, want 30", got)
	}
	if got, want := c.Breakdown().Total(), Duration(c.Now()); got != want {
		t.Fatalf("Total() = %d, Now() = %d", got, want)
	}
}

// AdvanceToCat must also account for stolen time: the applied local delta
// is Now-relative, so the bucket gets exactly what local gained.
func TestAdvanceToCatWithStolenTime(t *testing.T) {
	var c Clock
	c.Steal(100)
	c.AdvanceToCat(CatProtocol, 60) // already past: no-op
	if got := c.Breakdown().Protocol; got != 0 {
		t.Fatalf("protocol bucket = %d, want 0", got)
	}
	c.AdvanceToCat(CatProtocol, 150) // local must reach 50
	bd := c.Breakdown()
	if bd.Protocol != 50 {
		t.Fatalf("protocol bucket = %d, want 50", bd.Protocol)
	}
	if got, want := bd.Total(), Duration(c.Now()); got != want {
		t.Fatalf("Total() = %d, Now() = %d", got, want)
	}
}

func TestAttributionConcurrentSum(t *testing.T) {
	var c Clock
	const (
		workers = 8
		perW    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				switch i % 4 {
				case 0:
					c.AdvanceCat(CatCompute, 3)
				case 1:
					c.AdvanceCat(CatMemory, 2)
				case 2:
					c.AdvanceCat(CatNetwork, 1)
				default:
					c.Steal(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.Breakdown().Total(), Duration(c.Now()); got != want {
		t.Fatalf("Total() = %d, Now() = %d", got, want)
	}
}

func TestResetClearsAttribution(t *testing.T) {
	var c Clock
	c.AdvanceCat(CatMemory, 10)
	c.Steal(5)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Now() = %d after Reset", c.Now())
	}
	if bd := c.Breakdown(); bd.Total() != 0 {
		t.Fatalf("breakdown after Reset: %+v", bd)
	}
}
