// Package simnet simulates the cluster interconnect.
//
// Every simulated node is a goroutine with a virtual clock. The network
// moves byte-payload messages between nodes, charging the sender's and
// receiver's clocks with the costs of the configured link profile (see
// internal/machine). Delivery is reliable and, by default, in arrival-time
// order per receiver; fault injection (see faults.go) can drop, reorder,
// duplicate, jitter, or partition traffic and fail-stop or slow down whole
// nodes to exercise protocol robustness — deterministically, so seeded
// fault campaigns replay bit-identically.
//
// Two communication styles are supported:
//
//   - Queued messages (Send/Recv): the receiver's goroutine explicitly
//     waits for a message. Used for user-level messaging, task forwarding,
//     and startup coordination.
//   - Service calls (Call, in package amsg): the caller's goroutine
//     executes a handler against the target node's state, charging the
//     target with stolen handler cycles. This models interrupt-driven
//     protocol processing (SIGIO in JiaJia) without requiring the target
//     goroutine to poll.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hamster/internal/machine"
	"hamster/internal/perfmon"
	"hamster/internal/vclock"
)

// NodeID identifies a node within a cluster, 0-based.
type NodeID int

// Kind classifies a message for dispatch. Kinds below 1024 are reserved
// for internal protocol layers; user messaging uses kinds >= 1024.
type Kind uint16

// UserKindBase is the first Kind available to applications.
const UserKindBase Kind = 1024

// Message is one unit of communication.
type Message struct {
	From, To NodeID
	Kind     Kind
	Tag      uint32 // protocol- or user-defined discriminator
	Payload  []byte
	// ArriveAt is the virtual time the message reaches the receiver's NIC.
	ArriveAt vclock.Time
	seq      uint64 // per-receiver tiebreaker for deterministic ordering
}

// FaultPlan perturbs message delivery for robustness tests. Every field
// with all-zero values leaves the network byte- and virtual-time-identical
// to running with no plan at all; see faults.go for the deterministic
// draw machinery behind the probabilistic fields.
type FaultPlan struct {
	// DropProb is the probability (0..1) that a transmission is lost on
	// the wire. Queued messages silently vanish; active-message calls see
	// a virtual-time ack timeout and retry (see internal/amsg).
	DropProb float64
	// ReorderProb is the probability (0..1) that an enqueued message is
	// swapped with its queue predecessor.
	ReorderProb float64
	// DuplicateProb is the probability that a message is delivered twice.
	DuplicateProb float64
	// JitterNs adds a per-message uniform random latency in [0, JitterNs)
	// virtual nanoseconds to the arrival time, modeling switch queueing
	// variance. Drawn from the seeded source, so a given (plan, traffic)
	// pair always produces the same delays.
	JitterNs vclock.Duration
	// Partitions lists per-link virtual-time windows during which a node
	// pair cannot communicate.
	Partitions []Partition
	// NodeFaults lists per-node fail-stop and slowdown schedules.
	NodeFaults []NodeFault
	// Recover asks the runtime to survive the plan's crash schedules:
	// when a node is declared down, surviving state is rolled back to the
	// last checkpoint and the run resumes (see internal/cluster and
	// internal/checkpoint). The network itself ignores the flag — it only
	// transports it from the plan's author to the recovery orchestrator.
	Recover bool
	// Seed makes the perturbation deterministic.
	Seed int64
}

// Network connects a fixed set of nodes with a single link profile.
type Network struct {
	link  machine.Link
	nodes []*endpoint
	stats Stats

	// Fault state. linkSeq holds one draw counter per directed link
	// (index from*size+to); crashAt and slow are the per-node schedules
	// denormalized from faults for O(1) lookup. All guarded by faultMu.
	faultMu sync.Mutex
	faults  FaultPlan
	linkSeq []uint64
	crashAt []vclock.Time
	slow    []float64

	closed atomic.Bool
	drops  atomic.Uint64

	rec *perfmon.Recorder // protocol event recorder; nil until attached
}

// Stats aggregates network activity. All fields are protected by the
// owning endpoint or updated atomically via the endpoint mutex.
type Stats struct {
	mu       sync.Mutex
	Messages uint64
	Bytes    uint64
}

// Snapshot returns a copy of the current counters.
func (s *Stats) Snapshot() (msgs, bytes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Messages, s.Bytes
}

func (s *Stats) add(bytes int) {
	s.mu.Lock()
	s.Messages++
	s.Bytes += uint64(bytes)
	s.mu.Unlock()
}

type endpoint struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Message
	nextSq uint64
	clock  *vclock.Clock
	closed bool
}

// New creates a network of len(clocks) nodes over the given link profile.
// Each node's costs are charged to the corresponding clock.
func New(link machine.Link, clocks []*vclock.Clock) *Network {
	n := &Network{
		link:    link,
		nodes:   make([]*endpoint, len(clocks)),
		linkSeq: make([]uint64, len(clocks)*len(clocks)),
		crashAt: make([]vclock.Time, len(clocks)),
		slow:    make([]float64, len(clocks)),
	}
	for i, c := range clocks {
		ep := &endpoint{clock: c}
		ep.cond = sync.NewCond(&ep.mu)
		n.nodes[i] = ep
		n.slow[i] = 1
	}
	return n
}

// SetFaults installs a fault plan, replacing any previous one and
// resetting the per-link draw counters of the seeded decision streams.
// Safe to call at any time, including while traffic is in flight: every
// read of the plan happens under the same mutex this write takes, so
// in-flight messages simply see either the old or the new plan. Messages
// already queued keep the arrival times they were stamped with. Panics
// if a NodeFault names a node outside the cluster.
func (n *Network) SetFaults(p FaultPlan) {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	n.faults = p
	for i := range n.linkSeq {
		n.linkSeq[i] = 0
	}
	for i := range n.crashAt {
		n.crashAt[i] = 0
		n.slow[i] = 1
	}
	for _, f := range p.NodeFaults {
		if f.Node < 0 || int(f.Node) >= len(n.nodes) {
			panic(fmt.Sprintf("simnet: fault plan names node %d (cluster size %d)", f.Node, len(n.nodes)))
		}
		n.crashAt[f.Node] = f.CrashAt
		if f.SlowFactor > 1 {
			n.slow[f.Node] = f.SlowFactor
		}
	}
}

// SetRecorder attaches a protocol event recorder (nil detaches). The
// network records EvMsgSend/EvMsgRecv for queued-message traffic.
func (n *Network) SetRecorder(rec *perfmon.Recorder) { n.rec = rec }

// Size returns the number of nodes.
func (n *Network) Size() int { return len(n.nodes) }

// Link returns the link profile in use.
func (n *Network) Link() machine.Link { return n.link }

// Clock returns the virtual clock of the given node.
func (n *Network) Clock(id NodeID) *vclock.Clock { return n.nodes[id].clock }

func (n *Network) checkID(id NodeID) {
	if id < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("simnet: invalid node id %d (cluster size %d)", id, len(n.nodes)))
	}
}

// Send transmits a message from one node to another. The sender's clock is
// charged the software send cost; the arrival time reflects latency and
// payload serialization. The payload is not copied — callers must not
// mutate it after sending. Under a fault plan the message may be delayed,
// duplicated, reordered, or lost; the sender is charged either way (the
// NIC did its work — the wire ate the packet).
func (n *Network) Send(from, to NodeID, kind Kind, tag uint32, payload []byte) {
	n.checkID(from)
	n.checkID(to)
	src := n.nodes[from]
	t0 := src.clock.Now()
	src.clock.AdvanceCat(vclock.CatNetwork, n.ScaledSW(from, n.link.SendSWNs))
	sendT := src.clock.Now()
	arrive := sendT +
		vclock.Time(n.link.LatencyNs) +
		vclock.Time(uint64(len(payload))*uint64(n.link.NsPerByte))
	n.faultMu.Lock()
	jit := n.faults.JitterNs
	canLose := n.faults.DropProb > 0 || len(n.faults.Partitions) > 0 || len(n.faults.NodeFaults) > 0
	n.faultMu.Unlock()
	if jit > 0 {
		arrive += vclock.Time(n.roll(from, to, saltJitter) * float64(jit))
	}
	m := &Message{From: from, To: to, Kind: kind, Tag: tag, Payload: payload, ArriveAt: arrive}
	n.stats.add(len(payload))
	if rec := n.rec; rec != nil && rec.Enabled() {
		rec.Record(int(from), perfmon.EvMsgSend, t0, vclock.Since(t0, src.clock.Now()), uint64(to), uint64(len(payload)))
	}
	if canLose && n.LinkLost(from, to, sendT) {
		n.drops.Add(1)
		return
	}
	n.deliver(m)
}

func (n *Network) deliver(m *Message) {
	dst := n.nodes[m.To]
	dup := n.LinkDup(m.From, m.To)

	dst.mu.Lock()
	m.seq = dst.nextSq
	dst.nextSq++
	dst.queue = append(dst.queue, m)
	n.maybeReorderLocked(m, dst)
	if dup {
		cp := *m
		cp.seq = dst.nextSq
		dst.nextSq++
		dst.queue = append(dst.queue, &cp)
	}
	dst.cond.Broadcast()
	dst.mu.Unlock()
}

func (n *Network) maybeReorderLocked(m *Message, ep *endpoint) {
	n.faultMu.Lock()
	p := n.faults.ReorderProb
	n.faultMu.Unlock()
	// The draw is consumed whenever the plan can reorder — regardless of
	// queue depth — so the decision stream does not depend on receiver
	// timing.
	if p > 0 && n.roll(m.From, m.To, saltReorder) < p && len(ep.queue) >= 2 {
		k := len(ep.queue)
		ep.queue[k-1], ep.queue[k-2] = ep.queue[k-2], ep.queue[k-1]
	}
}

// Recv blocks the calling node until a message matching the filter is
// available, removes it from the queue, charges receive costs, and
// advances the node's clock past the arrival time. A nil filter matches
// any message. Returns nil if the network is closed while waiting.
func (n *Network) Recv(self NodeID, match func(*Message) bool) *Message {
	n.checkID(self)
	ep := n.nodes[self]
	ep.mu.Lock()
	for {
		best := -1
		for i, m := range ep.queue {
			if match != nil && !match(m) {
				continue
			}
			if best == -1 || less(m, ep.queue[best]) {
				best = i
			}
		}
		if best >= 0 {
			m := ep.queue[best]
			ep.queue = append(ep.queue[:best], ep.queue[best+1:]...)
			ep.mu.Unlock()
			t0 := ep.clock.Now()
			ep.clock.AdvanceToCat(vclock.CatNetwork, m.ArriveAt)
			ep.clock.AdvanceCat(vclock.CatNetwork, n.ScaledSW(self, n.link.RecvSWNs))
			if rec := n.rec; rec != nil && rec.Enabled() {
				rec.Record(int(self), perfmon.EvMsgRecv, t0, vclock.Since(t0, ep.clock.Now()), uint64(m.From), uint64(len(m.Payload)))
			}
			return m
		}
		if ep.closed {
			ep.mu.Unlock()
			return nil
		}
		ep.cond.Wait()
	}
}

// TryRecv is a non-blocking Recv. It returns nil when no matching message
// is queued.
func (n *Network) TryRecv(self NodeID, match func(*Message) bool) *Message {
	n.checkID(self)
	ep := n.nodes[self]
	ep.mu.Lock()
	best := -1
	for i, m := range ep.queue {
		if match != nil && !match(m) {
			continue
		}
		if best == -1 || less(m, ep.queue[best]) {
			best = i
		}
	}
	if best < 0 {
		ep.mu.Unlock()
		return nil
	}
	m := ep.queue[best]
	ep.queue = append(ep.queue[:best], ep.queue[best+1:]...)
	ep.mu.Unlock()
	t0 := ep.clock.Now()
	ep.clock.AdvanceToCat(vclock.CatNetwork, m.ArriveAt)
	ep.clock.AdvanceCat(vclock.CatNetwork, n.ScaledSW(self, n.link.RecvSWNs))
	if rec := n.rec; rec != nil && rec.Enabled() {
		rec.Record(int(self), perfmon.EvMsgRecv, t0, vclock.Since(t0, ep.clock.Now()), uint64(m.From), uint64(len(m.Payload)))
	}
	return m
}

func less(a, b *Message) bool {
	if a.ArriveAt != b.ArriveAt {
		return a.ArriveAt < b.ArriveAt
	}
	return a.seq < b.seq
}

// Broadcast sends the same payload from one node to every other node.
func (n *Network) Broadcast(from NodeID, kind Kind, tag uint32, payload []byte) {
	for id := range n.nodes {
		if NodeID(id) == from {
			continue
		}
		n.Send(from, NodeID(id), kind, tag, payload)
	}
}

// Close unblocks all pending Recv calls with nil and makes subsequent
// active-message retry attempts fail with ErrClosed. Used at teardown.
func (n *Network) Close() {
	n.closed.Store(true)
	for _, ep := range n.nodes {
		ep.mu.Lock()
		ep.closed = true
		ep.cond.Broadcast()
		ep.mu.Unlock()
	}
}

// Pending reports how many messages are queued at a node (for tests).
func (n *Network) Pending(id NodeID) int {
	n.checkID(id)
	ep := n.nodes[id]
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.queue)
}

// TotalTraffic reports cumulative message count and bytes.
func (n *Network) TotalTraffic() (msgs, bytes uint64) {
	return n.stats.Snapshot()
}
