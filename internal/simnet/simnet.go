// Package simnet simulates the cluster interconnect.
//
// Every simulated node is a goroutine with a virtual clock. The network
// moves byte-payload messages between nodes, charging the sender's and
// receiver's clocks with the costs of the configured link profile (see
// internal/machine). Delivery is reliable and, by default, in arrival-time
// order per receiver; fault injection (see faults.go) can drop, reorder,
// duplicate, jitter, or partition traffic and fail-stop or slow down whole
// nodes to exercise protocol robustness — deterministically, so seeded
// fault campaigns replay bit-identically.
//
// Two communication styles are supported:
//
//   - Queued messages (Send/Recv): the receiver's goroutine explicitly
//     waits for a message. Used for user-level messaging, task forwarding,
//     and startup coordination.
//   - Service calls (Call, in package amsg): the caller's goroutine
//     executes a handler against the target node's state, charging the
//     target with stolen handler cycles. This models interrupt-driven
//     protocol processing (SIGIO in JiaJia) without requiring the target
//     goroutine to poll.
//
// Delivery on the queued fabric can additionally be gated by a
// conservative lookahead engine (EnableGate → vclock.Engine): a receiver
// then consumes a message only once no peer can still produce an earlier
// virtual arrival, making delivery order a pure function of virtual time
// — Chandy–Misra–Bryant-style conservative parallel simulation. See
// internal/vclock's engine for the model and the safety argument.
//
// Wall-time engineering: the per-message path is contention-free when no
// fault plan is active. The installed plan lives behind one atomic
// pointer (an immutable faultState), per-node counters are plain atomics,
// and Message structs recycle through a pool (consumers that know a
// message is dead hand it back with Free). Pending messages are indexed
// per (receiver, kind), so a receive filtering on one kind never rescans
// another kind's backlog. The only mutex a fault-free ungated Send/Recv
// pair touches is the receiver endpoint's own queue lock.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hamster/internal/machine"
	"hamster/internal/perfmon"
	"hamster/internal/vclock"
)

// NodeID identifies a node within a cluster, 0-based.
type NodeID int

// Kind classifies a message for dispatch. Kinds below 1024 are reserved
// for internal protocol layers; user messaging uses kinds >= 1024.
// The all-ones value is reserved as the AnyKind receive wildcard.
type Kind uint16

// UserKindBase is the first Kind available to applications.
const UserKindBase Kind = 1024

// AnyKind makes Recv/TryRecv consider every pending kind instead of one
// kind's bucket. Not a valid kind to send with.
const AnyKind = ^Kind(0)

// Message is one unit of communication.
type Message struct {
	From, To NodeID
	Kind     Kind
	Tag      uint32 // protocol- or user-defined discriminator
	Payload  []byte
	// ArriveAt is the virtual time the message reaches the receiver's NIC.
	ArriveAt vclock.Time
	seq      uint64 // per-receiver tiebreaker for deterministic ordering
}

// msgPool recycles Message structs on the send/receive hot path. A struct
// re-enters the pool only through Free, i.e. only when its consumer
// declares it dead; payloads are never pooled here (the sender owns the
// payload bytes — see Send).
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// Free recycles a received message's struct (NOT its payload — payload
// ownership is unaffected and stays with whoever holds the slice). Call
// it only when no reference to the message remains; receiving a message
// does not require freeing it, so callers that let structs reach the
// garbage collector are merely slower, never wrong.
func (m *Message) Free() {
	*m = Message{}
	msgPool.Put(m)
}

// FaultPlan perturbs message delivery for robustness tests. Every field
// with all-zero values leaves the network byte- and virtual-time-identical
// to running with no plan at all; see faults.go for the deterministic
// draw machinery behind the probabilistic fields.
type FaultPlan struct {
	// DropProb is the probability (0..1) that a transmission is lost on
	// the wire. Queued messages silently vanish; active-message calls see
	// a virtual-time ack timeout and retry (see internal/amsg).
	DropProb float64
	// ReorderProb is the probability (0..1) that an enqueued message is
	// swapped with its queue predecessor.
	ReorderProb float64
	// DuplicateProb is the probability that a message is delivered twice.
	DuplicateProb float64
	// JitterNs adds a per-message uniform random latency in [0, JitterNs)
	// virtual nanoseconds to the arrival time, modeling switch queueing
	// variance. Drawn from the seeded source, so a given (plan, traffic)
	// pair always produces the same delays.
	JitterNs vclock.Duration
	// Partitions lists per-link virtual-time windows during which a node
	// pair cannot communicate.
	Partitions []Partition
	// NodeFaults lists per-node fail-stop and slowdown schedules.
	NodeFaults []NodeFault
	// Recover asks the runtime to survive the plan's crash schedules:
	// when a node is declared down, surviving state is rolled back to the
	// last checkpoint and the run resumes (see internal/cluster and
	// internal/checkpoint). The network itself ignores the flag — it only
	// transports it from the plan's author to the recovery orchestrator.
	Recover bool
	// Seed makes the perturbation deterministic.
	Seed int64
}

// Network connects a fixed set of nodes with a single link profile.
type Network struct {
	link  machine.Link
	nodes []*endpoint
	stats Stats

	// topo places nodes in the switch fabric (see topology.go). Stored
	// normalized; topoFlat caches IsFlat so the per-message fast path
	// keeps the legacy arithmetic without a method call.
	topo     Topology
	topoFlat bool

	// gate, when non-nil, is the conservative lookahead engine every
	// queued delivery must clear. Installed by EnableGate before any
	// traffic, then read without synchronization (immutable thereafter).
	gate *vclock.Engine

	// fs is the installed fault plan, denormalized into an immutable
	// faultState and swapped atomically by SetFaults. Never nil — the
	// zero plan is installed at construction — so every per-message
	// decision is one atomic pointer load, no mutex. In-flight messages
	// observe either the old or the new state, never a mix (each Send
	// loads the pointer once).
	fs atomic.Pointer[faultState]

	closed atomic.Bool
	drops  atomic.Uint64

	rec *perfmon.Recorder // protocol event recorder; nil until attached
}

// Stats aggregates network activity. Counters are plain atomics: a
// per-message mutex here would serialize every sender in the cluster
// (the exact software overhead the paper's message economics warns
// about, applied to the host).
type Stats struct {
	messages atomic.Uint64
	bytes    atomic.Uint64
}

// Snapshot returns the current counters.
func (s *Stats) Snapshot() (msgs, bytes uint64) {
	return s.messages.Load(), s.bytes.Load()
}

func (s *Stats) add(bytes int) {
	s.messages.Add(1)
	s.bytes.Add(uint64(bytes))
}

// endpoint is one node's receive side. Pending messages are bucketed by
// kind so a filtered receive scans only its own kind's backlog; delivery
// order is unaffected because selection is by (ArriveAt, seq), which is
// position-independent, and seq is assigned from one per-endpoint
// counter across all buckets (ties are impossible, so even the
// unordered bucket-map iteration of an AnyKind scan has a unique
// minimum).
type endpoint struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buckets map[Kind][]*Message
	pending int
	nextSq  uint64
	clock   *vclock.Clock
	closed  bool

	// Gate-only bookkeeping (set up by EnableGate; skipped entirely on
	// ungated networks so the reference path pays nothing): minArrive
	// mirrors minArrivalLocked as a lock-free atomic — infArrive when the
	// queue is empty — so the engine can probe ANY node's earliest queued
	// arrival without touching its queue lock, including the node whose
	// own receive is being gated. Writers update it under mu; the engine
	// reads it under its own lock, so a probe sees either the value
	// before or after a concurrent enqueue — and an enqueue always kicks
	// the engine afterwards, so staleness only delays, never admits.
	gated     bool
	minArrive atomic.Uint64
}

// infArrive is minArrive's empty-queue sentinel.
const infArrive = ^uint64(0)

// scanLocked finds the earliest (ArriveAt, seq) message matching the
// filter, in one kind's bucket or across all of them for AnyKind.
// Returns the bucket kind and index, or idx -1. Requires mu.
func (ep *endpoint) scanLocked(kind Kind, match func(*Message) bool) (Kind, int) {
	var best *Message
	bk, bi := kind, -1
	if kind != AnyKind {
		for i, m := range ep.buckets[kind] {
			if match != nil && !match(m) {
				continue
			}
			if best == nil || less(m, best) {
				best, bi = m, i
			}
		}
		return bk, bi
	}
	for k, q := range ep.buckets {
		for i, m := range q {
			if match != nil && !match(m) {
				continue
			}
			if best == nil || less(m, best) {
				best, bk, bi = m, k, i
			}
		}
	}
	return bk, bi
}

// takeLocked removes and returns a scanLocked hit. Requires mu.
func (ep *endpoint) takeLocked(k Kind, idx int) *Message {
	q := ep.buckets[k]
	m := q[idx]
	ep.buckets[k] = append(q[:idx], q[idx+1:]...)
	ep.pending--
	if ep.gated && uint64(m.ArriveAt) <= ep.minArrive.Load() {
		// Removed the minimum: rescan. Raising the published value is
		// always sound — it only tightens what peers may borrow.
		if min, ok := ep.minArrivalLocked(); ok {
			ep.minArrive.Store(uint64(min))
		} else {
			ep.minArrive.Store(infArrive)
		}
	}
	return m
}

// minArrivalLocked is the earliest arrival over every pending message,
// regardless of kind or filters. Requires mu.
func (ep *endpoint) minArrivalLocked() (vclock.Time, bool) {
	var min vclock.Time
	found := false
	for _, q := range ep.buckets {
		for _, m := range q {
			if !found || m.ArriveAt < min {
				min, found = m.ArriveAt, true
			}
		}
	}
	return min, found
}

// New creates a network of len(clocks) nodes over the given link profile
// and the flat legacy topology. Each node's costs are charged to the
// corresponding clock.
func New(link machine.Link, clocks []*vclock.Clock) *Network {
	return NewTopo(link, clocks, Topology{})
}

// NewTopo creates a network whose message costs depend on where the two
// endpoints sit in the given topology. A flat (or zero) topology is
// bit-identical to New.
func NewTopo(link machine.Link, clocks []*vclock.Clock, topo Topology) *Network {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	topo = topo.Normalize()
	n := &Network{
		link:     link,
		nodes:    make([]*endpoint, len(clocks)),
		topo:     topo,
		topoFlat: topo.IsFlat(),
	}
	for i, c := range clocks {
		ep := &endpoint{clock: c, buckets: make(map[Kind][]*Message)}
		ep.cond = sync.NewCond(&ep.mu)
		n.nodes[i] = ep
	}
	n.fs.Store(newFaultState(FaultPlan{}, len(clocks)))
	return n
}

// EnableGate builds a conservative lookahead engine over the network's
// clocks and topology and gates all queued delivery on it. The lookahead
// for a pair is the minimum wire latency any future message between them
// can have: base link latency plus the topology's extra hop latency —
// never payload serialization (a future message may be empty), never
// jitter (only added), and never sender software cost (a message already
// in flight has that cost spent before its arrival stamp is visible).
// Must be called before any traffic; returns the engine for MarkDown and
// test introspection.
func (n *Network) EnableGate() *vclock.Engine {
	size := len(n.nodes)
	clocks := make([]*vclock.Clock, size)
	for i, ep := range n.nodes {
		clocks[i] = ep.clock
	}
	la := make([][]vclock.Duration, size)
	for p := 0; p < size; p++ {
		row := make([]vclock.Duration, size)
		for r := 0; r < size; r++ {
			if p == r {
				continue
			}
			row[r] = n.link.LatencyNs
			if !n.topoFlat {
				row[r] += n.topo.ExtraLatencyNs(p, r)
			}
		}
		la[p] = row
	}
	for _, ep := range n.nodes {
		ep.gated = true
		ep.minArrive.Store(infArrive)
	}
	e := vclock.NewEngine(clocks, la)
	e.SetQueueMin(func(node int) (vclock.Time, bool) {
		// Lock-free: see endpoint.minArrive. The engine may probe any
		// node, including one holding its own queue lock in recvGated.
		v := n.nodes[node].minArrive.Load()
		if v == infArrive {
			return 0, false
		}
		return vclock.Time(v), true
	})
	n.gate = e
	return e
}

// Gate returns the installed lookahead engine, or nil when delivery is
// ungated.
func (n *Network) Gate() *vclock.Engine { return n.gate }

// MarkNodeDown tells the gate (if any) that a node is fail-stopped and
// no longer bounds delivery horizons. Callers must only report nodes
// whose outbound traffic the fault plan is eating — the health monitor's
// down verdicts on plan-crashed nodes. No-op when ungated.
func (n *Network) MarkNodeDown(id NodeID) {
	n.checkID(id)
	if g := n.gate; g != nil {
		g.MarkDown(int(id))
	}
}

// SetNodeRetired tells the gate (if any) that a node's program has
// returned and it will never send again (v=true), or that a new run is
// starting and the node is live again (v=false). A finished node's
// frozen clock must not bound peers' horizons — its last sent message
// would otherwise never become deliverable. No-op when ungated.
func (n *Network) SetNodeRetired(id NodeID, v bool) {
	n.checkID(id)
	if g := n.gate; g != nil {
		g.SetRetired(int(id), v)
	}
}

// SetFaults installs a fault plan, replacing any previous one and
// resetting the per-link draw counters of the seeded decision streams.
// Safe to call at any time, including while traffic is in flight: the
// plan is published as one immutable state behind an atomic pointer, so
// in-flight messages simply see either the old or the new plan. Messages
// already queued keep the arrival times they were stamped with. Panics
// if a NodeFault names a node outside the cluster.
func (n *Network) SetFaults(p FaultPlan) {
	for _, f := range p.NodeFaults {
		if f.Node < 0 || int(f.Node) >= len(n.nodes) {
			panic(fmt.Sprintf("simnet: fault plan names node %d (cluster size %d)", f.Node, len(n.nodes)))
		}
	}
	n.fs.Store(newFaultState(p, len(n.nodes)))
}

// SetRecorder attaches a protocol event recorder (nil detaches). The
// network records EvMsgSend/EvMsgRecv for queued-message traffic.
func (n *Network) SetRecorder(rec *perfmon.Recorder) { n.rec = rec }

// Size returns the number of nodes.
func (n *Network) Size() int { return len(n.nodes) }

// Link returns the link profile in use.
func (n *Network) Link() machine.Link { return n.link }

// Clock returns the virtual clock of the given node.
func (n *Network) Clock(id NodeID) *vclock.Clock { return n.nodes[id].clock }

func (n *Network) checkID(id NodeID) {
	if id < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("simnet: invalid node id %d (cluster size %d)", id, len(n.nodes)))
	}
}

// Send transmits a message from one node to another. The sender's clock is
// charged the software send cost; the arrival time reflects latency and
// payload serialization. The payload is not copied — callers must not
// mutate it after sending. Under a fault plan the message may be delayed,
// duplicated, reordered, or lost; the sender is charged either way (the
// NIC did its work — the wire ate the packet).
func (n *Network) Send(from, to NodeID, kind Kind, tag uint32, payload []byte) {
	n.checkID(from)
	n.checkID(to)
	if kind == AnyKind {
		panic("simnet: AnyKind is a receive wildcard, not a sendable kind")
	}
	src := n.nodes[from]
	fs := n.fs.Load()
	t0 := src.clock.Now()
	src.clock.AdvanceCat(vclock.CatNetwork, fs.scaledSW(from, n.link.SendSWNs))
	sendT := src.clock.Now()
	var arrive vclock.Time
	if n.topoFlat {
		arrive = sendT +
			vclock.Time(n.link.LatencyNs) +
			vclock.Time(uint64(len(payload))*uint64(n.link.NsPerByte))
	} else {
		arrive = sendT + vclock.Time(n.WireNs(from, to, len(payload)))
	}
	if fs.plan.JitterNs > 0 {
		arrive += vclock.Time(fs.roll(from, to, saltJitter) * float64(fs.plan.JitterNs))
	}
	n.stats.add(len(payload))
	if rec := n.rec; rec != nil && rec.Enabled() {
		rec.Record(int(from), perfmon.EvMsgSend, t0, vclock.Since(t0, src.clock.Now()), uint64(to), uint64(len(payload)))
	}
	if fs.canLose && fs.linkLost(from, to, sendT) {
		n.drops.Add(1)
		return
	}
	m := msgPool.Get().(*Message)
	*m = Message{From: from, To: to, Kind: kind, Tag: tag, Payload: payload, ArriveAt: arrive}
	n.deliver(m, fs)
	if g := n.gate; g != nil {
		// Never while holding an endpoint lock (engine → queue ordering).
		g.Kick()
	}
}

func (n *Network) deliver(m *Message, fs *faultState) {
	dst := n.nodes[m.To]
	// Fault draws happen before the endpoint lock is taken: the decision
	// streams are per-directed-link (sender program order), so lock hold
	// time never extends a draw's critical section.
	dup := fs.linkDup(m.From, m.To)
	var cp *Message
	if dup {
		cp = msgPool.Get().(*Message)
		*cp = *m
	}
	if fs.plan.ReorderProb > 0 {
		// The reorder draw is consumed whenever the plan can reorder —
		// regardless of queue depth — so the decision stream does not
		// depend on receiver timing. The positional swap the draw used to
		// trigger is not applied: receive selection orders by
		// (ArriveAt, seq), never by queue position, so the swap was
		// observably a no-op and would be meaningless across kind buckets.
		fs.roll(m.From, m.To, saltReorder)
	}

	dst.mu.Lock()
	m.seq = dst.nextSq
	dst.nextSq++
	dst.buckets[m.Kind] = append(dst.buckets[m.Kind], m)
	dst.pending++
	if dup {
		cp.seq = dst.nextSq
		dst.nextSq++
		dst.buckets[cp.Kind] = append(dst.buckets[cp.Kind], cp)
		dst.pending++
	}
	if dst.gated && uint64(m.ArriveAt) < dst.minArrive.Load() {
		// The dup copy shares m's arrival, so one update covers both.
		dst.minArrive.Store(uint64(m.ArriveAt))
	}
	dst.cond.Broadcast()
	dst.mu.Unlock()
}

// Recv blocks the calling node until a message of the given kind (or any
// kind, with AnyKind) matching the filter is available, removes it from
// the queue, charges receive costs, and advances the node's clock past
// the arrival time. A nil filter matches any message of the kind.
// Returns nil if the network is closed while waiting. Under a gate,
// delivery additionally waits for the message's arrival to clear the
// conservative horizon, so the chosen message is a pure function of
// virtual time. The returned message is owned by the caller; hand the
// struct back with Message.Free once it is dead to keep the send path
// allocation-free.
func (n *Network) Recv(self NodeID, kind Kind, match func(*Message) bool) *Message {
	n.checkID(self)
	ep := n.nodes[self]
	if g := n.gate; g != nil {
		return n.recvGated(g, self, ep, kind, match)
	}
	ep.mu.Lock()
	for {
		k, idx := ep.scanLocked(kind, match)
		if idx >= 0 {
			m := ep.takeLocked(k, idx)
			ep.mu.Unlock()
			return n.finishRecv(self, ep, m)
		}
		if ep.closed {
			ep.mu.Unlock()
			return nil
		}
		ep.cond.Wait()
	}
}

// recvGated is Recv under the conservative engine: the whole
// scan-and-decide round runs inside a gate session (engine lock held,
// then the endpoint lock — strictly in that order), and a candidate is
// consumed only when GateSafe proves no earlier arrival can still be
// produced. While blocked — on an empty queue or an unsafe candidate —
// the node is registered as receive-waiting so peers' horizon bounds can
// see through it. After teardown the gate is waived: determinism ends
// where the simulation does, and waiting for dead peers would deadlock
// Close.
func (n *Network) recvGated(g *vclock.Engine, self NodeID, ep *endpoint, kind Kind, match func(*Message) bool) *Message {
	g.GateBegin()
	// Registered as receive-waiting BEFORE the first safety evaluation:
	// peers' horizons may see through this node a wake-up earlier, and
	// the engine's exactness shortcut (which requires the asker to be a
	// marked receiver) applies from the first check. Sound even when the
	// first scan delivers immediately — the node cannot send while it sits
	// here, and GateRun restores the running state before any charge.
	g.GateRecvWait(int(self))
	for {
		ep.mu.Lock()
		k, idx := ep.scanLocked(kind, match)
		if idx >= 0 && (ep.closed || g.GateSafe(int(self), ep.buckets[k][idx].ArriveAt)) {
			// Cleared strictly before the delivery's clock charges:
			// from here on the node's own clock is the (sound) bound.
			g.GateRun(int(self))
			m := ep.takeLocked(k, idx)
			ep.mu.Unlock()
			g.GateEnd()
			return n.finishRecv(self, ep, m)
		}
		if idx < 0 && ep.closed {
			g.GateRun(int(self))
			ep.mu.Unlock()
			g.GateEnd()
			return nil
		}
		ep.mu.Unlock()
		g.GateWait()
	}
}

// finishRecv applies the receive-side charges and recording for a
// delivered message.
func (n *Network) finishRecv(self NodeID, ep *endpoint, m *Message) *Message {
	t0 := ep.clock.Now()
	ep.clock.AdvanceToCat(vclock.CatNetwork, m.ArriveAt)
	ep.clock.AdvanceCat(vclock.CatNetwork, n.fs.Load().scaledSW(self, n.link.RecvSWNs))
	if rec := n.rec; rec != nil && rec.Enabled() {
		rec.Record(int(self), perfmon.EvMsgRecv, t0, vclock.Since(t0, ep.clock.Now()), uint64(m.From), uint64(len(m.Payload)))
	}
	return m
}

// TryRecv is a non-blocking Recv. It returns nil when no matching message
// is queued. Under a gate it is a poll of the safe horizon: a queued
// message whose delivery cannot be proven in-order yet is treated as not
// yet arrived.
func (n *Network) TryRecv(self NodeID, kind Kind, match func(*Message) bool) *Message {
	n.checkID(self)
	ep := n.nodes[self]
	if g := n.gate; g != nil {
		g.GateBegin()
		ep.mu.Lock()
		k, idx := ep.scanLocked(kind, match)
		if idx < 0 || (!ep.closed && !g.GateSafe(int(self), ep.buckets[k][idx].ArriveAt)) {
			ep.mu.Unlock()
			g.GateEnd()
			return nil
		}
		m := ep.takeLocked(k, idx)
		ep.mu.Unlock()
		g.GateEnd()
		return n.finishRecv(self, ep, m)
	}
	ep.mu.Lock()
	k, idx := ep.scanLocked(kind, match)
	if idx < 0 {
		ep.mu.Unlock()
		return nil
	}
	m := ep.takeLocked(k, idx)
	ep.mu.Unlock()
	return n.finishRecv(self, ep, m)
}

func less(a, b *Message) bool {
	if a.ArriveAt != b.ArriveAt {
		return a.ArriveAt < b.ArriveAt
	}
	return a.seq < b.seq
}

// Broadcast sends the same payload from one node to every other node.
func (n *Network) Broadcast(from NodeID, kind Kind, tag uint32, payload []byte) {
	for id := range n.nodes {
		if NodeID(id) == from {
			continue
		}
		n.Send(from, NodeID(id), kind, tag, payload)
	}
}

// Close unblocks all pending Recv calls with nil and makes subsequent
// active-message retry attempts fail with ErrClosed. Used at teardown.
func (n *Network) Close() {
	n.closed.Store(true)
	for _, ep := range n.nodes {
		ep.mu.Lock()
		ep.closed = true
		ep.cond.Broadcast()
		ep.mu.Unlock()
	}
	if g := n.gate; g != nil {
		g.Kick()
	}
}

// Pending reports how many messages are queued at a node (for tests).
func (n *Network) Pending(id NodeID) int {
	n.checkID(id)
	ep := n.nodes[id]
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.pending
}

// TotalTraffic reports cumulative message count and bytes.
func (n *Network) TotalTraffic() (msgs, bytes uint64) {
	return n.stats.Snapshot()
}
