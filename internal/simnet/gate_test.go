package simnet

import (
	"testing"
	"time"

	"hamster/internal/machine"
	"hamster/internal/vclock"
)

func testGatedNet(nodes int) (*Network, []*vclock.Clock) {
	clocks := make([]*vclock.Clock, nodes)
	for i := range clocks {
		clocks[i] = &vclock.Clock{}
	}
	link := machine.Link{LatencyNs: 1000, NsPerByte: 10, SendSWNs: 100, RecvSWNs: 200, HandlerNs: 50}
	n := New(link, clocks)
	n.EnableGate()
	return n, clocks
}

func TestGatedRecvWaitsForHorizon(t *testing.T) {
	n, clocks := testGatedNet(2)
	n.Send(0, 1, UserKindBase, 7, []byte("hello"))
	// Arrival is 1150; node 0's clock is only 100 and its lookahead is
	// 1000, so it could still produce an arrival at 1100 < 1150: the
	// receiver must block.
	got := make(chan *Message, 1)
	go func() { got <- n.Recv(1, AnyKind, nil) }()
	select {
	case m := <-got:
		t.Fatalf("Recv delivered %+v before the horizon cleared", m)
	case <-time.After(20 * time.Millisecond):
	}
	// Advancing the sender past arrival-lookahead makes delivery safe;
	// the engine's liveness ticker picks the clock movement up without a
	// send kick.
	clocks[0].Advance(5000)
	select {
	case m := <-got:
		if m == nil || m.Tag != 7 {
			t.Fatalf("Recv = %+v, want tag 7", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv still blocked after the horizon cleared")
	}
}

func TestGatedTryRecvPollsHorizon(t *testing.T) {
	n, clocks := testGatedNet(2)
	n.Send(0, 1, UserKindBase, 3, []byte("xx"))
	if m := n.TryRecv(1, AnyKind, nil); m != nil {
		t.Fatalf("TryRecv delivered %+v inside the horizon", m)
	}
	clocks[0].Advance(5000)
	if m := n.TryRecv(1, AnyKind, nil); m == nil || m.Tag != 3 {
		t.Fatalf("TryRecv = %+v after the horizon cleared, want tag 3", m)
	}
}

func TestGatedRecvPicksEarliestOnceSafe(t *testing.T) {
	n, clocks := testGatedNet(3)
	clocks[2].Advance(10_000)
	n.Send(2, 1, UserKindBase, 2, []byte{2}) // arrives ~11120
	n.Send(0, 1, UserKindBase, 1, []byte{1}) // arrives ~1110
	clocks[0].Advance(50_000)
	clocks[2].Advance(50_000)
	first := n.Recv(1, AnyKind, nil)
	second := n.Recv(1, AnyKind, nil)
	if first.Tag != 1 || second.Tag != 2 {
		t.Fatalf("gated delivery order: got tags %d, %d", first.Tag, second.Tag)
	}
}

func TestGatedCloseWaivesGate(t *testing.T) {
	n, _ := testGatedNet(2)
	n.Send(0, 1, UserKindBase, 9, []byte("abc"))
	got := make(chan *Message, 1)
	go func() { got <- n.Recv(1, AnyKind, nil) }()
	time.Sleep(5 * time.Millisecond)
	n.Close()
	select {
	case m := <-got:
		// Teardown delivers the queued message even though its horizon
		// never cleared — determinism ends where the simulation does.
		if m == nil || m.Tag != 9 {
			t.Fatalf("Recv at close = %+v, want the queued tag-9 message", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close left the gated receiver blocked")
	}
}

// TestGatedTokenRing runs a token around a ring with every node blocked
// in a gated Recv except the holder — the shape where naive conservative
// gating deadlocks (everyone's clock is frozen). The engine's activation
// bound must see through the blocked chain. The final clocks must equal
// the ungated run's exactly.
func TestGatedTokenRing(t *testing.T) {
	const nodes, rounds = 8, 25
	run := func(gated bool) []vclock.Time {
		clocks := make([]*vclock.Clock, nodes)
		for i := range clocks {
			clocks[i] = &vclock.Clock{}
		}
		link := machine.Link{LatencyNs: 1000, NsPerByte: 10, SendSWNs: 100, RecvSWNs: 200, HandlerNs: 50}
		n := New(link, clocks)
		if gated {
			n.EnableGate()
		}
		done := make(chan struct{})
		for id := 0; id < nodes; id++ {
			go func(id NodeID) {
				defer func() { done <- struct{}{} }()
				// A finished node must leave the horizon or the last
				// token could never be delivered (see Engine.SetRetired).
				defer n.SetNodeRetired(id, true)
				c := clocks[id]
				for r := 0; r < rounds; r++ {
					if !(r == 0 && id == 0) {
						if m := n.Recv(id, UserKindBase, nil); m == nil {
							t.Error("ring receiver saw close")
							return
						} else {
							m.Free()
						}
					}
					c.Advance(vclock.Duration(500 * (int(id) + 1))) // unequal work
					if r == rounds-1 && int(id) == nodes-1 {
						return // token retired
					}
					n.Send(id, (id+1)%nodes, UserKindBase, uint32(r), []byte{byte(r)})
				}
			}(NodeID(id))
		}
		for i := 0; i < nodes; i++ {
			<-done
		}
		n.Close()
		out := make([]vclock.Time, nodes)
		for i, c := range clocks {
			out[i] = c.Now()
		}
		return out
	}
	seq := run(false)
	par := run(true)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("node %d: gated clock %d != ungated %d", i, par[i], seq[i])
		}
	}
}
