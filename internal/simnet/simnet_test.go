package simnet

import (
	"sync"
	"testing"

	"hamster/internal/machine"
	"hamster/internal/vclock"
)

func testNet(nodes int) (*Network, []*vclock.Clock) {
	clocks := make([]*vclock.Clock, nodes)
	for i := range clocks {
		clocks[i] = &vclock.Clock{}
	}
	link := machine.Link{LatencyNs: 1000, NsPerByte: 10, SendSWNs: 100, RecvSWNs: 200, HandlerNs: 50}
	return New(link, clocks), clocks
}

func TestSendRecvCostsAndPayload(t *testing.T) {
	n, clocks := testNet(2)
	payload := []byte("hello")
	n.Send(0, 1, UserKindBase, 7, payload)

	// Sender charged SendSW.
	if got := clocks[0].Now(); got != 100 {
		t.Fatalf("sender clock = %d, want 100", got)
	}
	m := n.Recv(1, AnyKind, nil)
	if m == nil {
		t.Fatal("Recv returned nil")
	}
	if string(m.Payload) != "hello" || m.From != 0 || m.To != 1 || m.Tag != 7 {
		t.Fatalf("bad message: %+v", m)
	}
	// Arrival = 100 (send) + 1000 (lat) + 5*10 (payload) = 1150.
	if m.ArriveAt != 1150 {
		t.Fatalf("ArriveAt = %d, want 1150", m.ArriveAt)
	}
	// Receiver clock = arrival + RecvSW = 1350.
	if got := clocks[1].Now(); got != 1350 {
		t.Fatalf("receiver clock = %d, want 1350", got)
	}
}

func TestRecvOrdersByArrivalTime(t *testing.T) {
	n, clocks := testNet(3)
	clocks[2].Advance(10_000) // node 2 sends later in virtual time
	n.Send(2, 1, UserKindBase, 2, []byte{2})
	n.Send(0, 1, UserKindBase, 1, []byte{1})
	first := n.Recv(1, AnyKind, nil)
	second := n.Recv(1, AnyKind, nil)
	if first.Tag != 1 || second.Tag != 2 {
		t.Fatalf("delivery order wrong: got tags %d, %d", first.Tag, second.Tag)
	}
}

func TestRecvFilter(t *testing.T) {
	n, _ := testNet(2)
	n.Send(0, 1, UserKindBase, 1, nil)
	n.Send(0, 1, UserKindBase+1, 2, nil)
	m := n.Recv(1, UserKindBase+1, nil)
	if m.Tag != 2 {
		t.Fatalf("filter returned tag %d, want 2", m.Tag)
	}
	if n.Pending(1) != 1 {
		t.Fatalf("pending = %d, want 1", n.Pending(1))
	}
}

func TestTryRecv(t *testing.T) {
	n, _ := testNet(2)
	if m := n.TryRecv(1, AnyKind, nil); m != nil {
		t.Fatal("TryRecv on empty queue must return nil")
	}
	n.Send(0, 1, UserKindBase, 9, nil)
	if m := n.TryRecv(1, AnyKind, nil); m == nil || m.Tag != 9 {
		t.Fatalf("TryRecv = %+v, want tag 9", m)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	n, _ := testNet(2)
	got := make(chan *Message)
	go func() { got <- n.Recv(1, AnyKind, nil) }()
	n.Send(0, 1, UserKindBase, 42, nil)
	if m := <-got; m.Tag != 42 {
		t.Fatalf("blocked Recv got tag %d, want 42", m.Tag)
	}
}

func TestBroadcast(t *testing.T) {
	n, _ := testNet(4)
	n.Broadcast(0, UserKindBase, 5, []byte("x"))
	for id := 1; id < 4; id++ {
		m := n.Recv(NodeID(id), AnyKind, nil)
		if m.Tag != 5 || m.From != 0 {
			t.Fatalf("node %d got %+v", id, m)
		}
	}
	if n.Pending(0) != 0 {
		t.Fatal("broadcast must not self-deliver")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	n, _ := testNet(2)
	done := make(chan *Message)
	go func() { done <- n.Recv(1, AnyKind, nil) }()
	n.Close()
	if m := <-done; m != nil {
		t.Fatalf("Recv after Close = %+v, want nil", m)
	}
}

func TestTrafficStats(t *testing.T) {
	n, _ := testNet(2)
	n.Send(0, 1, UserKindBase, 0, make([]byte, 100))
	n.Send(1, 0, UserKindBase, 0, make([]byte, 50))
	msgs, bytes := n.TotalTraffic()
	if msgs != 2 || bytes != 150 {
		t.Fatalf("traffic = %d msgs / %d bytes, want 2/150", msgs, bytes)
	}
}

func TestInvalidNodePanics(t *testing.T) {
	n, _ := testNet(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid node id")
		}
	}()
	n.Send(0, 5, UserKindBase, 0, nil)
}

func TestCausality(t *testing.T) {
	// A receiver can never observe a message "before" it was sent: after
	// Recv, receiver clock >= sender's clock at send time + latency.
	n, clocks := testNet(2)
	clocks[0].Advance(500_000)
	n.Send(0, 1, UserKindBase, 0, nil)
	sendT := clocks[0].Now()
	n.Recv(1, AnyKind, nil)
	if clocks[1].Now() < sendT {
		t.Fatalf("causality violated: recv at %d < send at %d", clocks[1].Now(), sendT)
	}
}

func TestFaultInjectionDuplicates(t *testing.T) {
	n, _ := testNet(2)
	n.SetFaults(FaultPlan{DuplicateProb: 1.0, Seed: 1})
	n.Send(0, 1, UserKindBase, 3, nil)
	a := n.Recv(1, AnyKind, nil)
	b := n.Recv(1, AnyKind, nil)
	if a == nil || b == nil || a.Tag != 3 || b.Tag != 3 {
		t.Fatal("expected duplicated delivery")
	}
}

func TestFaultInjectionReorderStillDeliversAll(t *testing.T) {
	n, _ := testNet(2)
	n.SetFaults(FaultPlan{ReorderProb: 1.0, Seed: 42})
	const total = 20
	for i := 0; i < total; i++ {
		n.Send(0, 1, UserKindBase, uint32(i), nil)
	}
	seen := map[uint32]bool{}
	for i := 0; i < total; i++ {
		m := n.Recv(1, AnyKind, nil)
		seen[m.Tag] = true
	}
	if len(seen) != total {
		t.Fatalf("lost messages under reorder: got %d unique, want %d", len(seen), total)
	}
}

func TestConcurrentSendersOneReceiver(t *testing.T) {
	n, _ := testNet(5)
	const per = 50
	var wg sync.WaitGroup
	for s := 1; s < 5; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n.Send(NodeID(s), 0, UserKindBase, uint32(s), nil)
			}
		}(s)
	}
	count := 0
	for count < 4*per {
		if m := n.Recv(0, AnyKind, nil); m == nil {
			t.Fatal("unexpected nil from Recv")
		}
		count++
	}
	wg.Wait()
	if n.Pending(0) != 0 {
		t.Fatalf("leftover messages: %d", n.Pending(0))
	}
}

func BenchmarkSendRecv(b *testing.B) {
	n, _ := testNet(2)
	payload := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		n.Send(0, 1, UserKindBase, 0, payload)
		n.Recv(1, AnyKind, nil)
	}
}
