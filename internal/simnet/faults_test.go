package simnet

import (
	"sync"
	"testing"

	"hamster/internal/vclock"
)

// Jitter draws from the seeded source: the same plan over the same
// traffic must stamp identical arrival times, and every delay must stay
// inside [0, JitterNs).
func TestJitterDeterministicAndBounded(t *testing.T) {
	run := func(seed int64) []vclock.Time {
		n, _ := testNet(2)
		n.SetFaults(FaultPlan{JitterNs: 5000, Seed: seed})
		var arrivals []vclock.Time
		for i := 0; i < 64; i++ {
			n.Send(0, 1, UserKindBase, uint32(i), []byte{byte(i)})
			m := n.Recv(1, AnyKind, nil)
			arrivals = append(arrivals, m.ArriveAt)
		}
		return arrivals
	}
	a := run(42)
	b := run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d: same seed produced arrivals %d and %d", i, a[i], b[i])
		}
	}

	// Against an unjittered run, each delivery is delayed by < JitterNs.
	base := func() []vclock.Time {
		n, _ := testNet(2)
		var arrivals []vclock.Time
		for i := 0; i < 64; i++ {
			n.Send(0, 1, UserKindBase, uint32(i), []byte{byte(i)})
			m := n.Recv(1, AnyKind, nil)
			arrivals = append(arrivals, m.ArriveAt)
		}
		return arrivals
	}()
	jittered := false
	for i := range a {
		d := int64(a[i]) - int64(base[i])
		if d < 0 || d >= 5000*64 { // receiver clock coupling accumulates, so bound loosely
			t.Fatalf("message %d: jitter delta %d out of range", i, d)
		}
		if d > 0 {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("JitterNs=5000 never perturbed an arrival time")
	}

	if c := run(43); func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical arrival sequences")
	}
}

// Per-message jitter on a single send is bounded by JitterNs exactly:
// isolate one message so no clock coupling accumulates.
func TestJitterSingleMessageBound(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n, _ := testNet(2)
		n.SetFaults(FaultPlan{JitterNs: 300, Seed: seed})
		n.Send(0, 1, UserKindBase, 0, []byte{1})
		m := n.Recv(1, AnyKind, nil)
		// Unjittered arrival: 100 (send SW) + 1000 (latency) + 10 (byte).
		d := int64(m.ArriveAt) - 1110
		if d < 0 || d >= 300 {
			t.Fatalf("seed %d: jitter %d outside [0, 300)", seed, d)
		}
	}
}

// SetFaults is documented safe mid-traffic: hammer it from one goroutine
// while sender/receiver pairs run full speed. Under -race this verifies
// the locking; the assertions verify no message is lost or corrupted.
func TestSetFaultsMidTraffic(t *testing.T) {
	n, _ := testNet(4)
	const perPair = 400

	stop := make(chan struct{})
	var hammer sync.WaitGroup
	hammer.Add(1)
	go func() {
		defer hammer.Done()
		plans := []FaultPlan{
			{},
			{JitterNs: 1000, Seed: 1},
			{DuplicateProb: 0.1, Seed: 2},
			{ReorderProb: 0.2, JitterNs: 500, Seed: 3},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n.SetFaults(plans[i%len(plans)])
		}
	}()

	var traffic sync.WaitGroup
	for pair := 0; pair < 2; pair++ {
		from, to := NodeID(pair*2), NodeID(pair*2+1)
		traffic.Add(2)
		go func() {
			defer traffic.Done()
			for i := 0; i < perPair; i++ {
				n.Send(from, to, UserKindBase, uint32(i), []byte{byte(i)})
			}
		}()
		go func() {
			defer traffic.Done()
			// Plans may reorder and duplicate, so count distinct tags.
			got := make(map[uint32]bool)
			for len(got) < perPair {
				m := n.Recv(to, AnyKind, nil)
				if m == nil {
					t.Errorf("pair %d: network closed early", to)
					return
				}
				if m.From != from || len(m.Payload) != 1 || m.Payload[0] != byte(m.Tag) {
					t.Errorf("pair %d: corrupt message %+v", to, m)
					return
				}
				got[m.Tag] = true
			}
		}()
	}

	traffic.Wait()
	close(stop)
	hammer.Wait()
}
