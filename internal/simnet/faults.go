package simnet

// Fault injection for the simulated interconnect.
//
// A FaultPlan describes everything that can go wrong on the wire: random
// drops and duplicates, reordering, per-message jitter, partition windows
// between node pairs, and per-node fail-stop / slowdown schedules. All of
// it is deterministic: every random decision is a pure function of
// (Seed, directed link, per-link sequence number, purpose salt), so a
// given plan over the same traffic replays bit-identically no matter how
// the Go scheduler interleaves node goroutines. The only ordering that
// matters is each sender's own program order, which IS deterministic —
// there is no shared RNG stream for concurrent senders to race on.
//
// Time in a fault plan is virtual time (see internal/vclock): a crash at
// CrashAt = 5 ms fires when the simulation reaches that point on the
// affected links, not after 5 ms of wall clock.

import (
	"fmt"

	"hamster/internal/vclock"
)

// Partition severs the link between two nodes for a window of virtual
// time. Messages sent in either direction while the window is open are
// lost; traffic before From or at/after Until flows normally.
type Partition struct {
	A, B NodeID
	// From..Until is the half-open window [From, Until) during which the
	// link is severed. Until == 0 means the partition never heals.
	From, Until vclock.Time
}

// openAt reports whether the window is open at time t.
func (w Partition) openAt(t vclock.Time) bool {
	return t >= w.From && (w.Until == 0 || t < w.Until)
}

// NodeFault is one node's failure schedule.
type NodeFault struct {
	Node NodeID
	// CrashAt, when non-zero, fail-stops the node at that virtual time:
	// every message sent from or to it at or after CrashAt is lost. The
	// node's goroutine keeps executing (a simulation cannot kill it), but
	// all its communication times out — which is exactly how a real
	// cluster observes a dead peer.
	CrashAt vclock.Time
	// SlowFactor, when > 1, multiplies the node's per-message software
	// costs (send/receive protocol stacks and handler service), modeling
	// a node degraded by thermal throttling or a failing NIC driver.
	SlowFactor float64
}

// Draw salts keep the per-purpose decision streams independent even
// though they share one per-link sequence counter. Must stay < 8 (they
// are packed into the low bits of the sequence number).
const (
	saltDrop uint64 = iota
	saltDup
	saltReorder
	saltJitter
	saltBackoff
	saltAckDrop
)

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// high-quality bit mixer used to turn (seed, link, seq, salt) into an
// independent uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll consumes the next deterministic draw on the directed link from→to
// and returns a uniform float64 in [0, 1). Concurrent traffic on other
// links cannot perturb the stream; within one link the draws follow the
// sender's program order.
func (n *Network) roll(from, to NodeID, salt uint64) float64 {
	idx := uint64(from)*uint64(len(n.nodes)) + uint64(to)
	n.faultMu.Lock()
	seq := n.linkSeq[idx]
	n.linkSeq[idx]++
	seed := uint64(n.faults.Seed)
	n.faultMu.Unlock()
	h := splitmix64(seed ^ splitmix64(idx+1) ^ splitmix64(seq<<3|salt))
	return float64(h>>11) / float64(uint64(1)<<53)
}

// crashedLocked reports whether node id has fail-stopped by time at.
// Callers hold faultMu.
func (n *Network) crashedLocked(id NodeID, at vclock.Time) bool {
	t := n.crashAt[id]
	return t > 0 && at >= t
}

// NodeCrashed reports whether the fault plan has fail-stopped a node by
// the given virtual time.
func (n *Network) NodeCrashed(id NodeID, at vclock.Time) bool {
	n.checkID(id)
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	return n.crashedLocked(id, at)
}

// SlowFactor returns the software-cost multiplier of a node (1 when the
// plan does not degrade it).
func (n *Network) SlowFactor(id NodeID) float64 {
	n.checkID(id)
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	return n.slow[id]
}

// ScaledSW scales a per-message software cost by a node's slow factor.
// The wire itself (latency, serialization) is never scaled — only the
// CPU-side protocol stack of the degraded node.
func (n *Network) ScaledSW(id NodeID, d vclock.Duration) vclock.Duration {
	n.faultMu.Lock()
	f := n.slow[id]
	n.faultMu.Unlock()
	if f <= 1 {
		return d
	}
	return vclock.Duration(float64(d) * f)
}

// LinkLost decides the fate of one transmission from→to entering the
// wire at virtual time at: lost to the random-drop draw, a partition
// window, or a crashed endpoint. When DropProb > 0 exactly one drop draw
// is consumed per call, so callers must invoke it once per transmission
// attempt to keep replays aligned.
func (n *Network) LinkLost(from, to NodeID, at vclock.Time) bool {
	n.faultMu.Lock()
	lost := n.crashedLocked(from, at) || n.crashedLocked(to, at) ||
		n.faults.partitionedAt(from, to, at)
	dp := n.faults.DropProb
	n.faultMu.Unlock()
	if dp > 0 && n.roll(from, to, saltDrop) < dp {
		lost = true
	}
	return lost
}

// AckLost decides the fate of the ack/response travelling to→from at
// virtual time at. Semantically it is LinkLost for the reverse
// direction, but the drop draw comes from the CALLER's from→to stream
// (with its own salt): the reverse link's counter belongs to node to's
// own outgoing traffic, and two goroutines sharing one counter would
// make the decision stream depend on scheduler interleaving.
func (n *Network) AckLost(from, to NodeID, at vclock.Time) bool {
	n.faultMu.Lock()
	lost := n.crashedLocked(from, at) || n.crashedLocked(to, at) ||
		n.faults.partitionedAt(to, from, at)
	dp := n.faults.DropProb
	n.faultMu.Unlock()
	if dp > 0 && n.roll(from, to, saltAckDrop) < dp {
		lost = true
	}
	return lost
}

// LinkDup reports whether a delivered transmission from→to is duplicated
// by the network. Consumes one draw when DuplicateProb > 0.
func (n *Network) LinkDup(from, to NodeID) bool {
	n.faultMu.Lock()
	p := n.faults.DuplicateProb
	n.faultMu.Unlock()
	return p > 0 && n.roll(from, to, saltDup) < p
}

// FaultJitter returns a deterministic uniform duration in [0, max) drawn
// from the link's seeded stream — the jitter source for retry backoff.
func (n *Network) FaultJitter(from, to NodeID, max vclock.Duration) vclock.Duration {
	if max == 0 {
		return 0
	}
	return vclock.Duration(n.roll(from, to, saltBackoff) * float64(max))
}

// partitionedAt reports whether the plan severs the a↔b link at time t.
func (p *FaultPlan) partitionedAt(a, b NodeID, t vclock.Time) bool {
	for _, w := range p.Partitions {
		if ((w.A == a && w.B == b) || (w.A == b && w.B == a)) && w.openAt(t) {
			return true
		}
	}
	return false
}

// CallFaultsActive reports whether the installed plan can affect
// active-message calls (drops, duplicates, partitions, or node
// schedules). The active-message layer uses it to pick between the
// fault-free fast path and the request/ack protocol; jitter- or
// reorder-only plans perturb queued messages but not calls.
func (n *Network) CallFaultsActive() bool {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	p := &n.faults
	return p.DropProb > 0 || p.DuplicateProb > 0 ||
		len(p.Partitions) > 0 || len(p.NodeFaults) > 0
}

// Closed reports whether Close has been called. The active-message layer
// polls it between retry attempts so that tearing the network down wakes
// callers stuck retrying against a dead peer.
func (n *Network) Closed() bool { return n.closed.Load() }

// Drops reports how many queued messages the fault plan has destroyed
// (random drops, partitions, and crashed endpoints; active-message
// attempts are accounted by the layer's own stats and perfmon events).
func (n *Network) Drops() uint64 { return n.drops.Load() }

// FaultProfiles lists the named fault campaigns understood by
// FaultProfile, for -faults flag help.
func FaultProfiles() []string {
	return []string{
		"off", "lossy-ethernet", "very-lossy", "flaky-switch",
		"partition", "crash-node", "slow-node",
	}
}

// FaultProfile builds a named, seeded fault campaign. Profiles are
// cluster-size independent (they reference nodes 0 and 1, present in any
// cluster of at least two nodes):
//
//   - off: no faults — pins the zero-fault identity.
//   - lossy-ethernet: 1% message loss plus 2 µs switch jitter, the
//     classic mildly congested switched-Ethernet segment.
//   - very-lossy: 5% loss plus 5 µs jitter — a failing link.
//   - flaky-switch: 2% duplicates, 5% reordering, 2 µs jitter.
//   - partition: the 0↔1 link is severed between 2 ms and 6 ms of
//     virtual time, then heals.
//   - crash-node: node 1 fail-stops at 2 ms of virtual time.
//   - slow-node: node 1's protocol stacks run 8× slower.
func FaultProfile(name string, seed int64) (FaultPlan, error) {
	p := FaultPlan{Seed: seed}
	switch name {
	case "off":
	case "lossy-ethernet":
		p.DropProb = 0.01
		p.JitterNs = 2000
	case "very-lossy":
		p.DropProb = 0.05
		p.JitterNs = 5000
	case "flaky-switch":
		p.DuplicateProb = 0.02
		p.ReorderProb = 0.05
		p.JitterNs = 2000
	case "partition":
		p.Partitions = []Partition{{A: 0, B: 1, From: 2_000_000, Until: 6_000_000}}
	case "crash-node":
		p.NodeFaults = []NodeFault{{Node: 1, CrashAt: 2_000_000}}
	case "slow-node":
		p.NodeFaults = []NodeFault{{Node: 1, SlowFactor: 8}}
	default:
		return p, fmt.Errorf("simnet: unknown fault profile %q (have %v)", name, FaultProfiles())
	}
	return p, nil
}
